// Command benchreport maintains the repo's perf-trajectory snapshots.
// It converts `go test -bench` output into a schema-stable BENCH_*.json
// report, validates committed snapshots, and diffs two snapshots so a
// PR's benchmark movement is visible at review time.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchreport -write BENCH_PR4.json
//	benchreport -validate BENCH_PR4.json -min 8
//	benchreport -diff BENCH_PR3.json BENCH_PR4.json
//	benchreport -check -max-regress 0.15 BENCH_PR4.json BENCH_PR5.json
//
// The -write label defaults to the part of the filename between
// "BENCH_" and ".json" (BENCH_PR4.json → PR4).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"rootless/internal/benchfmt"
)

func main() {
	write := flag.String("write", "", "parse `go test -bench` output on stdin and write a report here")
	label := flag.String("label", "", "report label for -write (default: derived from the filename)")
	validate := flag.String("validate", "", "validate this report file")
	min := flag.Int("min", 1, "minimum benchmark count accepted by -validate")
	diff := flag.Bool("diff", false, "diff two report files given as arguments")
	check := flag.Bool("check", false, "like -diff, but exit 1 if any benchmark regressed past -max-regress")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed ns/op growth fraction for -check (0.15 = 15%)")
	flag.Parse()

	switch {
	case *write != "":
		doWrite(*write, *label)
	case *validate != "":
		doValidate(*validate, *min)
	case *diff, *check:
		if flag.NArg() != 2 {
			fatal("-diff/-check need exactly two report files")
		}
		doDiff(flag.Arg(0), flag.Arg(1), *check, *maxRegress)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doWrite(path, label string) {
	entries, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal("%v", err)
	}
	if label == "" {
		label = labelFromPath(path)
	}
	rep := &benchfmt.Report{
		Schema:     benchfmt.Schema,
		Label:      label,
		GoVersion:  runtime.Version(),
		Benchmarks: entries,
		Derived:    benchfmt.Derive(entries),
	}
	if err := benchfmt.Validate(rep, 1); err != nil {
		fatal("refusing to write invalid report: %v", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks, %d derived figures)\n",
		path, len(rep.Benchmarks), len(rep.Derived))
}

func doValidate(path string, min int) {
	rep := load(path)
	if err := benchfmt.Validate(rep, min); err != nil {
		fatal("%s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: %s ok (%s, %d benchmarks)\n",
		path, rep.Label, len(rep.Benchmarks))
}

func doDiff(oldPath, newPath string, check bool, maxRegress float64) {
	oldRep, newRep := load(oldPath), load(newPath)
	for _, pair := range []struct {
		path string
		rep  *benchfmt.Report
	}{{oldPath, oldRep}, {newPath, newRep}} {
		if err := benchfmt.Validate(pair.rep, 1); err != nil {
			fatal("%s: %v", pair.path, err)
		}
	}
	benchfmt.Diff(oldRep, newRep).Render(os.Stdout, oldRep.Label, newRep.Label)
	if !check {
		return
	}
	regs := benchfmt.Regressions(oldRep, newRep, maxRegress)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no benchmark regressed more than %.0f%%\n", maxRegress*100)
		return
	}
	for _, d := range regs {
		fmt.Fprintf(os.Stderr, "benchreport: REGRESSION %s: %.1f → %.1f ns/op (%.2fx)\n",
			d.Name, d.OldNs, d.NewNs, d.Ratio)
	}
	os.Exit(1)
}

func load(path string) *benchfmt.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var rep benchfmt.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal("%s: %v", path, err)
	}
	return &rep
}

// labelFromPath derives a label from the snapshot naming convention:
// BENCH_PR4.json → PR4; anything else falls back to the bare filename.
func labelFromPath(path string) string {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	if rest, ok := strings.CutPrefix(base, "BENCH_"); ok && rest != "" {
		return rest
	}
	return base
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
