// Command loadgen drives a DNS server over real UDP sockets with an
// open-loop query schedule and a B-Root-style query mix, and reports
// response rate and latency tails (p50/p99/p999) as rootless-bench/v1
// JSON — the measurement tool behind the t_serve scaling rows.
//
// Usage:
//
//	loadgen -target 127.0.0.1:5300 -qps 50000 -queries 100000 -workers 4
//	loadgen -target 127.0.0.1:5300 -duration 10s -qps 20000 -json out.json
//
// The mix is expressed in the internal/obs/traffic taxonomy:
//
//	-mix valid=0.35,repeat=0.20,bogus=0.30,chromium=0.15
//
// With -qps 0 the generator sends as fast as the sockets accept
// (saturation mode): achieved-qps × resp-rate is then the serving
// capacity bound of the target.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rootless/internal/benchfmt"
	"rootless/internal/loadgen"
	"rootless/internal/rootzone"
)

func main() {
	target := flag.String("target", "127.0.0.1:5300", "server UDP address to drive")
	qps := flag.Float64("qps", 0, "aggregate open-loop send rate (0 = unpaced saturation)")
	queries := flag.Int("queries", 0, "total queries to send (0 = derive from -duration and -qps)")
	duration := flag.Duration("duration", 0, "send window; with -qps > 0 this sets -queries")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "sender sockets (each with its own receiver)")
	mixStr := flag.String("mix", "", "query mix shares, e.g. valid=0.35,repeat=0.20,bogus=0.30,chromium=0.15 (empty = B-Root default)")
	seed := flag.Int64("seed", 1, "query-pool RNG seed")
	edns := flag.Bool("edns", true, "advertise EDNS0 (4096, DO clear) on queries")
	rootTLDs := flag.Bool("root-tlds", false, "draw valid TLDs from the modeled root zone corpus instead of com/net/org")
	drain := flag.Duration("drain", 500*time.Millisecond, "wait for in-flight responses after the last send")
	jsonPath := flag.String("json", "", "write rootless-bench JSON here (empty = stdout)")
	label := flag.String("label", "loadgen", "report label")
	benchName := flag.String("bench-name", "BenchmarkLoadgen", "benchmark entry name in the report")
	flag.Parse()

	n := *queries
	if n <= 0 {
		if *duration <= 0 || *qps <= 0 {
			fatal("need -queries, or -duration with -qps")
		}
		n = int(*qps * duration.Seconds())
	}
	cfg := loadgen.Config{
		Target:  *target,
		Queries: n,
		QPS:     *qps,
		Workers: *workers,
		Seed:    *seed,
		Drain:   *drain,
		EDNS:    *edns,
	}
	if *mixStr != "" {
		mix, err := parseMix(*mixStr)
		if err != nil {
			fatal("%v", err)
		}
		cfg.Mix = mix
	}
	if *rootTLDs {
		for _, t := range rootzone.TLDsAt(time.Now()) {
			cfg.TLDs = append(cfg.TLDs, t.Name)
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr,
		"loadgen: sent=%d received=%d resp-rate=%.4f achieved-qps=%.0f p50=%.3fms p99=%.3fms p999=%.3fms\n",
		res.Sent, res.Received, res.RespRate, res.AchievedQPS,
		res.P50*1e3, res.P99*1e3, res.P999*1e3)

	rep := &benchfmt.Report{
		Schema:     benchfmt.Schema,
		Label:      *label,
		GoVersion:  runtime.Version(),
		Benchmarks: []benchfmt.Entry{loadgen.BenchEntry(*benchName, res)},
	}
	if err := benchfmt.Validate(rep, 1); err != nil {
		fatal("internal: emitted report invalid: %v", err)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	blob = append(blob, '\n')
	if *jsonPath == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
		fatal("%v", err)
	}
}

func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad -mix component %q", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return m, fmt.Errorf("bad -mix share %q", part)
		}
		switch k {
		case "valid":
			m.Valid = f
		case "repeat":
			m.Repeat = f
		case "bogus":
			m.Bogus = f
		case "chromium":
			m.Chromium = f
		default:
			return m, fmt.Errorf("unknown -mix class %q (valid|repeat|bogus|chromium)", k)
		}
	}
	if m.Valid+m.Repeat+m.Bogus+m.Chromium <= 0 {
		return m, fmt.Errorf("-mix shares sum to zero")
	}
	return m, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
