// Command experiments runs the paper-reproduction harness: every figure
// and table from "On Eliminating Root Nameservers from the DNS"
// (HotNets'19), printing paper-vs-measured rows and exiting non-zero if
// any experiment fails to preserve the paper's finding.
//
// Usage:
//
//	experiments                 run everything
//	experiments -id t_traffic   run one experiment
//	experiments -list           list experiment IDs
//	experiments -markdown       emit EXPERIMENTS.md-style output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rootless/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run only the experiment with this ID (comma-separated for several)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	markdown := flag.Bool("markdown", false, "emit markdown tables instead of text")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, r := range all {
			fmt.Printf("%-12s %s\n", r.ID, r.Title)
		}
		return
	}

	want := map[string]bool{}
	if *id != "" {
		for _, s := range strings.Split(*id, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}

	failed := 0
	ran := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		ran++
		if *markdown {
			printMarkdown(r)
		} else {
			fmt.Print(r.Render())
			fmt.Println()
		}
		if !r.Matches() {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -id=%s (try -list)\n", *id)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) did not preserve the paper's findings\n", failed)
		os.Exit(1)
	}
}

func printMarkdown(r experiments.Result) {
	fmt.Printf("### %s — %s\n\n", r.ID, r.Title)
	fmt.Println("| Metric | Paper | Measured | Match |")
	fmt.Println("|---|---|---|---|")
	for _, row := range r.Rows {
		mark := "yes"
		if !row.Match {
			mark = "**NO**"
		}
		fmt.Printf("| %s | %s | %s | %s |\n", row.Metric, row.Paper, row.Measured, mark)
	}
	if r.Notes != "" {
		fmt.Printf("\n*%s*\n", r.Notes)
	}
	fmt.Println()
}
