// Command ditlgen synthesizes a DITL-style root-traffic trace with the
// composition the paper measured (§2.2), writing the flat text format
// cmd/ditlanalyze consumes.
//
// Usage:
//
//	ditlgen -queries 5700000 -o ditl2018.trace
//	ditlgen -queries 100000 -seed 7 -o - | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"rootless/internal/ditl"
	"rootless/internal/dnswire"
	"rootless/internal/rootzone"
)

func main() {
	queries := flag.Int("queries", 5_700_000, "trace size (the default is 1/1000 of DITL-2018)")
	resolvers := flag.Int("resolvers", 0, "resolver population (0 = scale with -queries)")
	seed := flag.Int64("seed", 2018, "generator seed")
	dateStr := flag.String("date", "2018-04-11", "capture date (fixes the TLD universe)")
	out := flag.String("o", "ditl.trace", "output file (- for stdout)")
	flag.Parse()

	at, err := time.Parse("2006-01-02", *dateStr)
	if err != nil {
		fatal("bad -date: %v", err)
	}
	var tlds []dnswire.Name
	for _, t := range rootzone.TLDsAt(at) {
		tlds = append(tlds, t.Name)
	}
	cfg := ditl.DefaultGenConfig(tlds)
	cfg.Seed = *seed
	cfg.TotalQueries = *queries
	cfg.Start = at
	if *resolvers > 0 {
		cfg.Resolvers = *resolvers
		cfg.BogusOnlyResolvers = int(float64(*resolvers) * 723.0 / 4100.0)
	} else {
		scale := float64(*queries) / 5_700_000.0
		cfg.Resolvers = max(int(4100*scale), 100)
		cfg.BogusOnlyResolvers = max(int(float64(cfg.Resolvers)*723.0/4100.0), 10)
	}

	trace, err := ditl.Generate(cfg)
	if err != nil {
		fatal("%v", err)
	}

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := ditl.WriteTrace(w, trace); err != nil {
		fatal("%v", err)
	}
	if err := w.Flush(); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "ditlgen: wrote %d queries from %d resolvers across %d instances\n",
		len(trace.Queries), cfg.Resolvers, trace.Instances)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ditlgen: "+format+"\n", args...)
	os.Exit(1)
}
