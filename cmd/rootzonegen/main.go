// Command rootzonegen emits a synthetic root zone (and supporting
// artifacts) for a date, as the zone-publisher side of the system.
//
// Usage:
//
//	rootzonegen -date 2019-06-07 -o root.zone
//	rootzonegen -date 2019-06-07 -sign -seed 42 -o root.zone \
//	    -key-out root.ksk -pub-out root.dnskey -hints-out root.hints
//	rootzonegen -compress -o root.zone.gz
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/rootzone"
	"rootless/internal/zone"
)

type seededRand struct{ r *rand.Rand }

func (s seededRand) Read(p []byte) (int, error) { return s.r.Read(p) }

func main() {
	dateStr := flag.String("date", "2019-06-07", "zone snapshot date (YYYY-MM-DD)")
	out := flag.String("o", "root.zone", "output zone file (- for stdout)")
	compress := flag.Bool("compress", false, "gzip the output")
	sign := flag.Bool("sign", false, "DNSSEC-sign the zone (NSEC chain + RRSIGs)")
	seed := flag.Int64("seed", 20190607, "deterministic key seed used with -sign")
	keyOut := flag.String("key-out", "", "write the KSK private key here (with -sign)")
	pubOut := flag.String("pub-out", "", "write the KSK public DNSKEY here (with -sign)")
	hintsOut := flag.String("hints-out", "", "also write the classic root hints file here")
	flag.Parse()

	at, err := time.Parse("2006-01-02", *dateStr)
	if err != nil {
		fatal("bad -date: %v", err)
	}
	z, err := rootzone.Build(at)
	if err != nil {
		fatal("building zone: %v", err)
	}

	if *sign {
		signer, err := dnssec.NewSigner(dnswire.Root, seededRand{rand.New(rand.NewSource(*seed))})
		if err != nil {
			fatal("generating keys: %v", err)
		}
		signer.AddNSEC = true
		signer.Quantize = 14 * 24 * time.Hour
		signer.Validity = 28 * 24 * time.Hour
		if err := signer.SignZone(z, at); err != nil {
			fatal("signing: %v", err)
		}
		if *keyOut != "" {
			if err := writeFile(*keyOut, func(f *os.File) error {
				return dnssec.WriteKey(f, signer.KSK)
			}); err != nil {
				fatal("writing key: %v", err)
			}
		}
		if *pubOut != "" {
			if err := writeFile(*pubOut, func(f *os.File) error {
				return dnssec.WritePublicKey(f, signer.KSK)
			}); err != nil {
				fatal("writing public key: %v", err)
			}
		}
	}

	if *hintsOut != "" {
		if err := os.WriteFile(*hintsOut, []byte(rootzone.HintsText()), 0o644); err != nil {
			fatal("writing hints: %v", err)
		}
	}

	var data []byte
	if *compress {
		data, err = zone.Compress(z)
		if err != nil {
			fatal("compressing: %v", err)
		}
	} else {
		data = []byte(zone.Text(z))
	}
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal("writing: %v", err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d records (%d TLDs), %d bytes, serial %d\n",
		*out, z.Len(), len(z.Delegations()), len(data), z.Serial())
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rootzonegen: "+format+"\n", args...)
	os.Exit(1)
}
