// Command zonedist distributes root zones: it can serve an HTTP mirror
// (with rsync-style delta endpoints) or act as the resolver-side client
// that fetches, verifies and stores a zone copy.
//
// Serve (publisher side):
//
//	zonedist serve -listen 127.0.0.1:8053 -seed 42 -date 2019-06-07
//
// Fetch (resolver side):
//
//	zonedist fetch -mirror http://127.0.0.1:8053 -pub root.dnskey -o root.zone
//
// Observability (serve mode):
//
//	-admin 127.0.0.1:9155   HTTP admin endpoint: /metrics, /healthz, /statusz
//	-pprof                  mount net/http/pprof at /debug/pprof/ on -admin
//	-log-level info         debug | info | warn | error
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rootless/internal/dist"
	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/tsdb"
	"rootless/internal/rootzone"
	"rootless/internal/zone"
)

type seededRand struct{ r *rand.Rand }

func (s seededRand) Read(p []byte) (int, error) { return s.r.Read(p) }

func main() {
	if len(os.Args) < 2 {
		fatal("usage: zonedist serve|fetch [flags]")
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "fetch":
		fetch(os.Args[2:])
	default:
		fatal("unknown subcommand %q (want serve or fetch)", os.Args[1])
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8053", "HTTP listen address")
	seed := fs.Int64("seed", 20190607, "deterministic signing key seed")
	dateStr := fs.String("date", "2019-06-07", "zone snapshot date")
	pubOut := fs.String("pub-out", "", "write the public KSK here for clients")
	republish := fs.Duration("republish", 0, "re-sign and publish a fresh serial at this interval (0 = once)")
	window := fs.Int("window", 16, "delta-chain history depth: serials a client may be behind and still catch up incrementally")
	adminAddr := fs.String("admin", "", "HTTP admin address for /metrics, /healthz, /statusz (e.g. 127.0.0.1:9155; empty to disable)")
	tsInterval := fs.Duration("timeseries", time.Second, "metric history recording interval for /timeseries (0 disables)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof profiling handlers at /debug/pprof/ on the admin endpoint")
	logLevel := fs.String("log-level", "info", "log level: debug | info | warn | error")
	_ = fs.Parse(args)

	logger := obs.NewLogger(os.Stderr, "zonedist", *logLevel)

	at, err := time.Parse("2006-01-02", *dateStr)
	if err != nil {
		fatal("bad -date: %v", err)
	}
	signer, err := dnssec.NewSigner(dnswire.Root, seededRand{rand.New(rand.NewSource(*seed))})
	if err != nil {
		fatal("%v", err)
	}
	signer.AddNSEC = true
	signer.Quantize = 14 * 24 * time.Hour
	signer.Validity = 28 * 24 * time.Hour

	if *pubOut != "" {
		f, err := os.Create(*pubOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := dnssec.WritePublicKey(f, signer.KSK); err != nil {
			fatal("%v", err)
		}
		f.Close()
	}

	mirror := dist.NewMirror(signer, *window)
	publish := func(at time.Time) error {
		z, err := rootzone.Build(at)
		if err != nil {
			return err
		}
		if err := signer.SignZone(z, at); err != nil {
			return err
		}
		if err := mirror.Publish(z); err != nil {
			return err
		}
		logger.Info("published zone", "serial", z.Serial(), "records", z.Len())
		return nil
	}
	if err := publish(at); err != nil {
		fatal("%v", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *adminAddr != "" {
		start := time.Now()
		reg := obs.NewRegistry()
		reg.AddCollector(mirror)
		obs.RegisterProcessMetrics(reg, start)
		admin := &obs.Admin{
			Registry: reg,
			Pprof:    *pprofOn,
			Status: func() map[string]any {
				st := mirror.Stats()
				status := map[string]any{
					"component":      "zonedist",
					"requests":       st.Requests,
					"bundle_bytes":   st.BundleBytes,
					"delta_bytes":    st.DeltaBytes,
					"uptime_seconds": time.Since(start).Seconds(),
				}
				if b := mirror.Current(); b != nil {
					status["zone_serial"] = b.Serial
				}
				return status
			},
		}
		if *tsInterval > 0 {
			rec := tsdb.NewRecorder(reg, tsdb.Options{Interval: *tsInterval})
			admin.Timeseries = rec
			go rec.Run(ctx)
		}
		go func() {
			if err := admin.ListenAndServe(ctx, *adminAddr, logger); err != nil {
				logger.Error("admin server", "err", err)
			}
		}()
	}
	if *republish > 0 {
		go func() {
			day := at
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(*republish):
					day = day.AddDate(0, 0, 1)
					if err := publish(day); err != nil {
						logger.Error("republish failed", "err", err)
					}
				}
			}
		}()
	}

	srv := &http.Server{Addr: *listen, Handler: mirror}
	go func() {
		<-ctx.Done()
		_ = srv.Close()
	}()
	logger.Info("mirror ready", "url", "http://"+*listen)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal("%v", err)
	}
	st := mirror.Stats()
	logger.Info("shutdown", "requests", st.Requests,
		"bundle_bytes", st.BundleBytes, "delta_bytes", st.DeltaBytes)
}

func fetch(args []string) {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	mirrorURL := fs.String("mirror", "http://127.0.0.1:8053", "mirror base URL; may list fallbacks comma-separated, tried in order")
	pubPath := fs.String("pub", "", "public KSK file for verification (required)")
	out := fs.String("o", "root.zone", "where to store the verified zone")
	retries := fs.Int("retries", 0, "extra attempts over the mirror list after a failed pass")
	retryWait := fs.Duration("retry-wait", 2*time.Second, "base pause between retry passes (decorrelated jitter on top)")
	_ = fs.Parse(args)

	if *pubPath == "" {
		fatal("fetch requires -pub (the publisher's DNSKEY)")
	}
	f, err := os.Open(*pubPath)
	if err != nil {
		fatal("%v", err)
	}
	ksk, err := dnssec.ReadPublicKey(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}

	// One verified fetch attempt per mirror per pass; a failing pass
	// backs off with decorrelated jitter so a fleet of cron-driven
	// fetchers does not retry in lockstep.
	mirrors := strings.Split(*mirrorURL, ",")
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	delay := *retryWait
	var z *zone.Zone
	var fetched int64
	for pass := 0; ; pass++ {
		var lastErr error
		for _, m := range mirrors {
			ctx, cancelTO := context.WithTimeout(context.Background(), 30*time.Second)
			client := dist.NewHTTPClient(strings.TrimSpace(m))
			bundle, err := client.Fetch(ctx)
			cancelTO()
			if err != nil {
				lastErr = err
				continue
			}
			if z, err = bundle.Verify(ksk); err != nil {
				lastErr = fmt.Errorf("VERIFICATION FAILED via %s: %w", m, err)
				continue
			}
			fetched = client.BytesFetched()
			break
		}
		if z != nil {
			break
		}
		if pass >= *retries {
			fatal("fetch: %v", lastErr)
		}
		fmt.Fprintf(os.Stderr, "zonedist: pass %d failed (%v), retrying in %v\n", pass+1, lastErr, delay)
		time.Sleep(delay)
		if span := 3*delay - *retryWait; span > 0 {
			delay = *retryWait + time.Duration(rng.Int63n(int64(span)+1))
		}
	}
	if err := os.WriteFile(*out, []byte(zone.Text(z)), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "zonedist: verified serial %d (%d records, %d bytes fetched) -> %s\n",
		z.Serial(), z.Len(), fetched, *out)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "zonedist: "+format+"\n", args...)
	os.Exit(1)
}
