// Command authd is an authoritative DNS server: it loads a zone file and
// answers queries over UDP and TCP (including AXFR and IXFR). Pointing a
// resolver at an authd instance loaded with the root zone is the RFC 7706
// "local root on loopback" arrangement from §3 of the paper.
//
// With -primary, authd instead runs as a replicating secondary: it
// bootstraps the zone with AXFR from the primary, listens for NOTIFY
// pushes, and rides serial changes with IXFR — a self-maintaining local
// root instance.
//
// Usage:
//
//	authd -zone root.zone -origin . -udp 127.0.0.1:5300 -tcp 127.0.0.1:5300
//	authd -primary 127.0.0.1:5300 -origin . -udp 127.0.0.1:5310 -notify 127.0.0.1:5311
//
// Multi-core serving:
//
//	-udp-workers N          parallel UDP workers (default GOMAXPROCS); on
//	                        Linux each worker owns an SO_REUSEPORT listener
//	                        and the kernel flow-hashes clients across them.
//	                        1 = exactly the classic single-socket loop
//	-udp-batch 8            datagrams moved per recvmmsg/sendmmsg syscall
//	                        (Linux amd64/arm64; 1 = single-datagram I/O)
//
// Overload protection:
//
//	-max-inflight 512       concurrent queries admitted; 0 = unlimited
//	-queue-deadline 20ms    how long an over-capacity query may wait for a
//	                        slot before being dropped (0 = fail fast)
//	-per-client-qps 0       token-bucket each client address (0 = unlimited)
//	-rrl-rate 0             response-rate-limit identical responses per
//	                        second per client /24 (0 = disabled)
//	-rrl-slip 2             let every Nth RRL-suppressed response out
//	                        truncated so real clients can retry over TCP
//	                        (0 = drop all suppressed responses)
//
// Observability:
//
//	-admin 127.0.0.1:9154   HTTP admin endpoint: /metrics, /healthz, /statusz,
//	                        /tracez, /timeseries, /topk
//	-trace                  join EDNS0-propagated traces from resolvers
//	                        running -trace-propagate, and record the auth-side
//	                        span tree for /tracez?traceid=<id>
//	-trace-ring 128         how many recent joined traces to retain
//	-latency                observe per-query handle latency into an HDR
//	                        summary (rootless_authserver_handle_seconds
//	                        p50/p99/p999/p9999; needs -admin)
//	-traffic                classify arriving queries into the junk taxonomy
//	                        against the served zone's delegations (default true)
//	-traffic-topk 16        heavy-hitter table size (qnames and clients)
//	-timeseries 1s          record /metrics history for /timeseries (0 disables)
//	-pprof                  mount net/http/pprof at /debug/pprof/ on -admin
//	-log-level info         debug | info | warn | error
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rootless/internal/authserver"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
	"rootless/internal/obs/tsdb"
	"rootless/internal/udpengine"
	"rootless/internal/zone"
)

func main() {
	zonePath := flag.String("zone", "root.zone", "zone file to serve")
	originStr := flag.String("origin", ".", "zone origin")
	udpAddr := flag.String("udp", "127.0.0.1:5300", "UDP listen address (empty to disable)")
	udpWorkers := flag.Int("udp-workers", runtime.GOMAXPROCS(0), "parallel UDP workers, each on its own SO_REUSEPORT listener on Linux (1 = classic single-socket loop)")
	udpBatch := flag.Int("udp-batch", 8, "datagrams moved per recvmmsg/sendmmsg syscall on Linux (1 = single-datagram I/O)")
	tcpAddr := flag.String("tcp", "127.0.0.1:5300", "TCP listen address (empty to disable)")
	ixfr := flag.Int("ixfr", 8, "IXFR journal window in zone versions (0 to disable)")
	tcpTimeout := flag.Duration("tcp-timeout", 0, "per-read/write TCP deadline, also bounds AXFR/IXFR stream writes (0 = default 30s)")
	primaryAddr := flag.String("primary", "", "run as a secondary: AXFR/IXFR from this primary (host:port, TCP)")
	notifyAddr := flag.String("notify", "", "secondary mode: UDP address to receive NOTIFY pushes on")
	maxInflight := flag.Int("max-inflight", 512, "concurrent queries admitted before shedding (0 = unlimited)")
	queueDeadline := flag.Duration("queue-deadline", 20*time.Millisecond, "max wait for an admission slot before a query is dropped (0 = fail fast)")
	perClientQPS := flag.Float64("per-client-qps", 0, "token-bucket each client address at this rate (0 = unlimited)")
	rrlRate := flag.Int("rrl-rate", 0, "response rate limit: identical responses per second per client /24 (0 = disabled)")
	rrlSlip := flag.Int("rrl-slip", 2, "let every Nth RRL-suppressed response out truncated (0 = drop all)")
	ansCache := flag.Int("answer-cache", authserver.DefaultAnswerCacheSize, "precompiled-answer cache capacity in entries (0 to disable)")
	adminAddr := flag.String("admin", "", "HTTP admin address for /metrics, /healthz, /statusz (e.g. 127.0.0.1:9154; empty to disable)")
	traceOn := flag.Bool("trace", false, "join EDNS0-propagated traces from resolvers and serve them at /tracez")
	traceRing := flag.Int("trace-ring", 128, "recent joined traces to retain for /tracez")
	latencyOn := flag.Bool("latency", false, "observe per-query handle latency as an HDR summary (needs -admin)")
	trafficOn := flag.Bool("traffic", true, "classify arriving queries into the junk taxonomy (/topk, rootless_traffic_*)")
	trafficTopK := flag.Int("traffic-topk", 16, "heavy-hitter table size for /topk")
	tsInterval := flag.Duration("timeseries", time.Second, "metric history recording interval for /timeseries (0 disables)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers at /debug/pprof/ on the admin endpoint")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "authd", *logLevel)

	origin, err := dnswire.ParseName(*originStr)
	if err != nil {
		fatal("bad -origin: %v", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var z *zone.Zone
	var secondary *authserver.Secondary
	if *primaryAddr != "" {
		bctx, bcancel := context.WithTimeout(ctx, 60*time.Second)
		sec, err := authserver.NewSecondary(bctx, origin, *primaryAddr)
		bcancel()
		if err != nil {
			fatal("%v", err)
		}
		secondary = sec
		z = sec.Zone()
		logger.Info("bootstrapped as secondary", "primary", *primaryAddr, "serial", z.Serial())
	} else {
		z = loadZoneFile(*zonePath, origin)
	}

	srv := authserver.New(z)
	srv.TCPTimeout = *tcpTimeout
	if *ansCache != authserver.DefaultAnswerCacheSize {
		srv.SetAnswerCache(*ansCache)
	}
	if *ixfr > 0 {
		srv.EnableIXFR(*ixfr)
	}
	if *maxInflight > 0 || *perClientQPS > 0 || *rrlRate > 0 {
		srv.SetOverload(authserver.OverloadConfig{
			MaxInflight:   *maxInflight,
			QueueDeadline: *queueDeadline,
			PerClientQPS:  *perClientQPS,
			RRLRate:       *rrlRate,
			RRLSlip:       *rrlSlip,
		})
		logger.Info("overload protection enabled",
			"max_inflight", *maxInflight, "queue_deadline", *queueDeadline,
			"per_client_qps", *perClientQPS, "rrl_rate", *rrlRate, "rrl_slip", *rrlSlip)
	}
	logger.Info("serving zone", "origin", string(origin), "records", z.Len(), "serial", z.Serial())

	var tracer *obs.Tracer
	if *traceOn {
		tracer = obs.NewTracer(*traceRing, 0)
		tracer.SetEnabled(true)
		srv.SetTracer(tracer)
		logger.Info("trace joining enabled", "ring", *traceRing,
			"edns0_option", dnswire.OptionCodeTrace)
	}

	var analyzer *traffic.Analyzer
	if *trafficOn {
		// The served zone's delegations are the valid-TLD universe (for a
		// root zone that is exactly the TLD set).
		analyzer = traffic.NewAnalyzer(traffic.NewTLDSet(z.Delegations()), *trafficTopK)
		srv.SetTraffic(analyzer)
		logger.Info("traffic analysis enabled", "tlds", len(z.Delegations()), "topk", *trafficTopK)
	}

	// The UDP engine is built before the admin endpoint so its per-worker
	// stats are collectable from the start.
	var eng *udpengine.Engine
	if *udpAddr != "" {
		e, err := udpengine.New(udpengine.Config{
			Addr:      *udpAddr,
			Workers:   *udpWorkers,
			Batch:     *udpBatch,
			Handler:   srv.DatagramHandler(),
			MaxPacket: 64 * 1024,
		})
		if err != nil {
			fatal("udp listen: %v", err)
		}
		eng = e
		logger.Info("udp engine ready", "addr", eng.LocalAddr().String(),
			"workers", eng.Workers(), "batch", eng.Batch(), "reuseport", eng.ReusePort())
	}

	if *adminAddr != "" {
		start := time.Now()
		reg := obs.NewRegistry()
		reg.AddCollector(srv)
		if eng != nil {
			reg.AddCollector(eng)
		}
		if tracer != nil {
			reg.AddCollector(tracer)
		}
		if *latencyOn {
			srv.InstrumentLatency(reg)
		}
		obs.RegisterProcessMetrics(reg, start)
		admin := &obs.Admin{
			Registry: reg,
			Tracer:   tracer,
			Pprof:    *pprofOn,
			Status: func() map[string]any {
				st := srv.Stats()
				cur := srv.Zone()
				doc := map[string]any{
					"component":      "authd",
					"origin":         string(origin),
					"zone_serial":    cur.Serial(),
					"zone_records":   cur.Len(),
					"queries":        st.Queries,
					"answers":        st.Answers,
					"referrals":      st.Referrals,
					"axfrs":          st.AXFRs,
					"ixfrs":          st.IXFRs,
					"shed":           st.Shed,
					"rate_limited":   st.RateLimited,
					"rrl_dropped":    st.RRLDropped,
					"rrl_slipped":    st.RRLSlipped,
					"secondary":      secondary != nil,
					"uptime_seconds": time.Since(start).Seconds(),
					"tracing":        tracer != nil,
				}
				if tail, ok := srv.TailLatencySeconds(); ok {
					doc["latency_p50"] = tail[0]
					doc["latency_p99"] = tail[1]
					doc["latency_p999"] = tail[2]
					doc["latency_p9999"] = tail[3]
				}
				if eng != nil {
					for k, v := range eng.StatusDoc() {
						doc[k] = v
					}
				}
				return doc
			},
		}
		if analyzer != nil {
			admin.TopK = analyzer.Handler()
		}
		if *tsInterval > 0 {
			rec := tsdb.NewRecorder(reg, tsdb.Options{Interval: *tsInterval})
			admin.Timeseries = rec
			go rec.Run(ctx)
		}
		go func() {
			if err := admin.ListenAndServe(ctx, *adminAddr, logger); err != nil {
				logger.Error("admin server", "err", err)
			}
		}()
	}

	errs := make(chan error, 3)
	if secondary != nil {
		secondary.OnUpdate(func(nz *zone.Zone) {
			srv.SetZone(nz)
			if analyzer != nil {
				// Keep the junk taxonomy tracking the replicated TLD set.
				analyzer.SetTLDs(traffic.NewTLDSet(nz.Delegations()))
			}
			logger.Info("replicated zone", "serial", nz.Serial())
		})
		if *notifyAddr != "" {
			nconn, err := net.ListenPacket("udp", *notifyAddr)
			if err != nil {
				fatal("notify listen: %v", err)
			}
			logger.Info("NOTIFY listener ready", "addr", nconn.LocalAddr().String())
			go func() { errs <- secondary.ServeNotify(ctx, nconn) }()
		}
	}

	if eng != nil {
		go func() { errs <- eng.Serve(ctx) }()
	}
	if *tcpAddr != "" {
		l, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatal("tcp listen: %v", err)
		}
		logger.Info("tcp listener ready", "addr", l.Addr().String(), "axfr", true)
		go func() { errs <- srv.ServeTCP(ctx, l) }()
	}
	if *udpAddr == "" && *tcpAddr == "" {
		fatal("nothing to serve: both -udp and -tcp empty")
	}

	select {
	case <-ctx.Done():
	case err := <-errs:
		if err != nil {
			fatal("%v", err)
		}
	}
	st := srv.Stats()
	logger.Info("shutdown",
		"queries", st.Queries, "referrals", st.Referrals, "answers", st.Answers,
		"nxdomain", st.NXDomain, "axfrs", st.AXFRs, "ixfrs", st.IXFRs)
}

func loadZoneFile(path string, origin dnswire.Name) *zone.Zone {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	if strings.HasSuffix(path, ".gz") {
		z, err := zone.Decompress(data, origin)
		if err != nil {
			fatal("parsing %s: %v", path, err)
		}
		return z
	}
	z, err := zone.Parse(strings.NewReader(string(data)), origin)
	if err != nil {
		fatal("parsing %s: %v", path, err)
	}
	return z
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "authd: "+format+"\n", args...)
	os.Exit(1)
}
