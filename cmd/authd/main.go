// Command authd is an authoritative DNS server: it loads a zone file and
// answers queries over UDP and TCP (including AXFR and IXFR). Pointing a
// resolver at an authd instance loaded with the root zone is the RFC 7706
// "local root on loopback" arrangement from §3 of the paper.
//
// With -primary, authd instead runs as a replicating secondary: it
// bootstraps the zone with AXFR from the primary, listens for NOTIFY
// pushes, and rides serial changes with IXFR — a self-maintaining local
// root instance.
//
// Usage:
//
//	authd -zone root.zone -origin . -udp 127.0.0.1:5300 -tcp 127.0.0.1:5300
//	authd -primary 127.0.0.1:5300 -origin . -udp 127.0.0.1:5310 -notify 127.0.0.1:5311
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rootless/internal/authserver"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

func main() {
	zonePath := flag.String("zone", "root.zone", "zone file to serve")
	originStr := flag.String("origin", ".", "zone origin")
	udpAddr := flag.String("udp", "127.0.0.1:5300", "UDP listen address (empty to disable)")
	tcpAddr := flag.String("tcp", "127.0.0.1:5300", "TCP listen address (empty to disable)")
	ixfr := flag.Int("ixfr", 8, "IXFR journal window in zone versions (0 to disable)")
	primaryAddr := flag.String("primary", "", "run as a secondary: AXFR/IXFR from this primary (host:port, TCP)")
	notifyAddr := flag.String("notify", "", "secondary mode: UDP address to receive NOTIFY pushes on")
	flag.Parse()

	origin, err := dnswire.ParseName(*originStr)
	if err != nil {
		fatal("bad -origin: %v", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var z *zone.Zone
	var secondary *authserver.Secondary
	if *primaryAddr != "" {
		bctx, bcancel := context.WithTimeout(ctx, 60*time.Second)
		sec, err := authserver.NewSecondary(bctx, origin, *primaryAddr)
		bcancel()
		if err != nil {
			fatal("%v", err)
		}
		secondary = sec
		z = sec.Zone()
		fmt.Fprintf(os.Stderr, "authd: secondary of %s, bootstrapped serial %d\n",
			*primaryAddr, z.Serial())
	} else {
		z = loadZoneFile(*zonePath, origin)
	}

	srv := authserver.New(z)
	if *ixfr > 0 {
		srv.EnableIXFR(*ixfr)
	}
	fmt.Fprintf(os.Stderr, "authd: serving %s (%d records, serial %d)\n",
		origin, z.Len(), z.Serial())

	errs := make(chan error, 3)
	if secondary != nil {
		secondary.OnUpdate(func(nz *zone.Zone) {
			srv.SetZone(nz)
			fmt.Fprintf(os.Stderr, "authd: replicated serial %d\n", nz.Serial())
		})
		if *notifyAddr != "" {
			nconn, err := net.ListenPacket("udp", *notifyAddr)
			if err != nil {
				fatal("notify listen: %v", err)
			}
			fmt.Fprintf(os.Stderr, "authd: NOTIFY listener on %s\n", nconn.LocalAddr())
			go func() { errs <- secondary.ServeNotify(ctx, nconn) }()
		}
	}

	if *udpAddr != "" {
		conn, err := net.ListenPacket("udp", *udpAddr)
		if err != nil {
			fatal("udp listen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "authd: udp on %s\n", conn.LocalAddr())
		go func() { errs <- srv.ServeUDP(ctx, conn) }()
	}
	if *tcpAddr != "" {
		l, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatal("tcp listen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "authd: tcp on %s (AXFR enabled)\n", l.Addr())
		go func() { errs <- srv.ServeTCP(ctx, l) }()
	}
	if *udpAddr == "" && *tcpAddr == "" {
		fatal("nothing to serve: both -udp and -tcp empty")
	}

	select {
	case <-ctx.Done():
	case err := <-errs:
		if err != nil {
			fatal("%v", err)
		}
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "authd: served %d queries (%d referrals, %d answers, %d nxdomain, %d axfr, %d ixfr)\n",
		st.Queries, st.Referrals, st.Answers, st.NXDomain, st.AXFRs, st.IXFRs)
}

func loadZoneFile(path string, origin dnswire.Name) *zone.Zone {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	if strings.HasSuffix(path, ".gz") {
		z, err := zone.Decompress(data, origin)
		if err != nil {
			fatal("parsing %s: %v", path, err)
		}
		return z
	}
	z, err := zone.Parse(strings.NewReader(string(data)), origin)
	if err != nil {
		fatal("parsing %s: %v", path, err)
	}
	return z
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "authd: "+format+"\n", args...)
	os.Exit(1)
}
