// Command resolverd is a recursive DNS resolver daemon with selectable
// root mode — the component the paper proposes to change.
//
// Modes:
//
//	hints      classic: bootstrap from the root hints, query root servers
//	preload    load a local root zone file into the cache (§3 option 1)
//	lookaside  consult the local root zone per transaction (§3 option 2)
//	localauth  send root queries to a local authoritative server (RFC 7706)
//
// Usage:
//
//	resolverd -listen 127.0.0.1:5301 -mode lookaside -rootzone root.zone
//	resolverd -listen 127.0.0.1:5301 -mode localauth -localauth 127.0.0.1 -localauth-port 5300
//	resolverd -listen 127.0.0.1:5301 -mode hints -hints root.hints
//
// Multi-core serving:
//
//	-udp-workers N          parallel UDP workers (default GOMAXPROCS); on
//	                        Linux each worker owns an SO_REUSEPORT listener.
//	                        1 = exactly the classic single-socket loop
//	-udp-batch 8            datagrams moved per recvmmsg/sendmmsg syscall
//	                        (Linux amd64/arm64; 1 = single-datagram I/O)
//
// DNSSEC validation:
//
//	-validate off           strict | permissive | off: walk the chain of
//	                        trust from the anchor; strict turns bogus
//	                        answers into SERVFAIL, permissive only counts
//	-trust-anchor ta.key    root KSK DNSKEY in zone-file form (required
//	                        unless -validate off)
//	-nsec-aggressive        synthesize NXDOMAIN/NODATA from validated
//	                        NSEC ranges, RFC 8198 (needs -validate)
//	-dnssec-skew 0s         clock-skew tolerance for RRSIG validity windows
//
// Self-refreshing root zone copy (preload/lookaside modes):
//
//	-zone-mirrors URLs      comma-separated zonedist mirror base URLs; the
//	                        resolver fetches, verifies and installs the root
//	                        zone itself (signed delta chains with full-bundle
//	                        fallback, RFC 5011 trust-anchor rollover, rollback
//	                        protection, per-source quarantine). With this set,
//	                        -rootzone becomes an optional cold-start copy.
//	-zone-pub root.dnskey   publisher KSK in zone-file form, the initial
//	                        trust anchor (required with -zone-mirrors)
//	-zone-refresh 42h       planned interval between zone fetches
//	-zone-retry 1h          base retry pause after a failed fetch
//	-zone-expiry 48h        copy age at which staged staleness degrades:
//	                        fresh -> aging -> stale-serve -> expired
//	-zone-stale-for 12h     stale-serve window past expiry: root consults
//	                        still answer, with referral TTLs capped, before
//	                        the copy fails closed
//	-zone-cross-check 0     serial-stuck duration that triggers an
//	                        all-mirror sweep (freeze-attack defense;
//	                        0 = 2x refresh, negative disables)
//
// Overload protection:
//
//	-coalesce               share one upstream flight among concurrent
//	                        identical (qname, qtype) resolutions (default true)
//	-nxdomain-cut           answer queries under a TLD already proven
//	                        nonexistent from cache, RFC 8020 (default true)
//	-max-inflight 256       concurrent resolutions admitted; 0 = unlimited
//	-queue-deadline 50ms    how long an over-capacity resolution may wait
//	                        for a slot before being shed (0 = fail fast)
//	-per-client-qps 0       token-bucket each stub client (0 = unlimited)
//
// Observability:
//
//	-admin 127.0.0.1:9153   HTTP admin endpoint: /metrics (Prometheus or
//	                        ?format=json), /healthz, /tracez, /statusz,
//	                        /timeseries, /topk
//	-trace                  record per-query resolution traces (view at /tracez)
//	-trace-slow 100ms       only keep traces at least this slow (0 = all)
//	-trace-ring 128         how many recent traces to retain
//	-trace-propagate        stamp upstream queries with an EDNS0 trace
//	                        option so a trace-enabled authd joins its spans
//	                        to ours; /tracez?traceid=<id> then shows the
//	                        stitched cross-process tree (needs -trace;
//	                        off = byte-identical queries on the wire)
//	-slo-latency-p99 0      latency SLO target: resolutions slower than
//	                        this burn the 1% error budget; multi-window
//	                        burn-rate alerting as rootless_slo_* (0 = off)
//	-slo-error-rate 0       error-rate SLO budget, the allowed
//	                        SERVFAIL/error fraction, e.g. 0.001 (0 = off)
//	-flight-recorder DIR    keep a fixed-memory ring of per-query digests,
//	                        served at /flightrecorder and dumped to DIR as
//	                        JSON on an SLO burn-rate alert or SIGUSR1
//	-flight-ring 4096       flight-recorder ring size (digests retained)
//	-traffic                classify queries into the junk taxonomy and track
//	                        heavy hitters — /topk, rootless_traffic_* metrics,
//	                        and class tags on /tracez traces (default true)
//	-traffic-topk 16        heavy-hitter table size (qnames and clients)
//	-timeseries 1s          record /metrics history at this interval for
//	                        /timeseries (0 disables; needs -admin)
//	-pprof                  mount net/http/pprof at /debug/pprof/ on -admin
//	-log-level info         debug | info | warn | error
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rootless/internal/anycast"
	"rootless/internal/dist"
	"rootless/internal/dnssec"
	"rootless/internal/dnssec/validator"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
	"rootless/internal/obs/tsdb"
	"rootless/internal/resolver"
	"rootless/internal/rootzone"
	"rootless/internal/udpengine"
	"rootless/internal/zone"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5301", "UDP listen address for stub queries")
	udpWorkers := flag.Int("udp-workers", runtime.GOMAXPROCS(0), "parallel UDP workers, each on its own SO_REUSEPORT listener on Linux (1 = classic single-socket loop)")
	udpBatch := flag.Int("udp-batch", 8, "datagrams moved per recvmmsg/sendmmsg syscall on Linux (1 = single-datagram I/O)")
	modeStr := flag.String("mode", "hints", "root mode: hints | preload | lookaside | localauth")
	rootZonePath := flag.String("rootzone", "", "local root zone file (preload/lookaside)")
	hintsPath := flag.String("hints", "", "root hints file (defaults to built-in hints)")
	localAuth := flag.String("localauth", "127.0.0.1", "local root server address (localauth mode)")
	localAuthPort := flag.Uint("localauth-port", 53, "local root server port (localauth mode)")
	qmin := flag.Bool("qmin", false, "enable QNAME minimisation")
	stale := flag.Bool("serve-stale", false, "serve expired cache entries when upstreams fail (RFC 8767)")
	cacheCap := flag.Int("cache", 0, "cache capacity in RRsets (0 = unlimited)")
	cacheShards := flag.Int("cache-shards", 0, "cache lock shards, rounded down to a power of two (0 = default; 1 = single global LRU)")
	timeout := flag.Duration("timeout", 3*time.Second, "upstream query timeout")
	retryBudget := flag.Int("retry-budget", 0, "failed upstream attempts allowed per resolution (0 = default 16, negative = unlimited)")
	holdDownAfter := flag.Int("holddown-after", 0, "consecutive failures before a server is held down (0 = default 3, negative disables health tracking)")
	holdDown := flag.Duration("holddown", 0, "base hold-down period for a tripped server (0 = default 30s)")
	zoneMirrors := flag.String("zone-mirrors", "", "comma-separated zonedist mirror URLs: self-refresh the local root zone (preload/lookaside)")
	zonePub := flag.String("zone-pub", "", "publisher KSK file, the initial trust anchor (required with -zone-mirrors)")
	zoneRefresh := flag.Duration("zone-refresh", 42*time.Hour, "planned interval between zone fetches")
	zoneRetry := flag.Duration("zone-retry", time.Hour, "base retry pause after a failed zone fetch")
	zoneExpiry := flag.Duration("zone-expiry", 48*time.Hour, "zone copy age at which staleness degrades toward fail-closed")
	zoneStaleFor := flag.Duration("zone-stale-for", 12*time.Hour, "stale-serve window past expiry before root consults fail closed")
	zoneCrossCheck := flag.Duration("zone-cross-check", 0, "serial-stuck duration triggering an all-mirror sweep (0 = 2x refresh, negative disables)")
	validateStr := flag.String("validate", "off", "DNSSEC validation policy: strict | permissive | off")
	anchorPath := flag.String("trust-anchor", "", "trust-anchor file: the root KSK DNSKEY in zone-file form")
	nsecAggressive := flag.Bool("nsec-aggressive", false, "synthesize denials from validated NSEC ranges (RFC 8198; needs -validate)")
	dnssecSkew := flag.Duration("dnssec-skew", 0, "clock-skew tolerance for RRSIG validity windows")
	coalesce := flag.Bool("coalesce", true, "coalesce concurrent identical resolutions into one upstream flight")
	nxCut := flag.Bool("nxdomain-cut", true, "serve NXDOMAIN from cache for anything under a TLD proven nonexistent (RFC 8020)")
	maxInflight := flag.Int("max-inflight", 256, "concurrent resolutions admitted before shedding (0 = unlimited)")
	queueDeadline := flag.Duration("queue-deadline", 50*time.Millisecond, "max wait for an admission slot before a resolution is shed (0 = fail fast)")
	perClientQPS := flag.Float64("per-client-qps", 0, "token-bucket each stub client at this rate (0 = unlimited)")
	adminAddr := flag.String("admin", "", "HTTP admin address for /metrics, /healthz, /tracez, /statusz (e.g. 127.0.0.1:9153; empty to disable)")
	traceOn := flag.Bool("trace", false, "record per-query resolution traces")
	traceSlow := flag.Duration("trace-slow", 0, "retain only traces at least this slow (0 = all)")
	traceRing := flag.Int("trace-ring", 128, "recent traces to retain for /tracez")
	tracePropagate := flag.Bool("trace-propagate", false, "stamp upstream queries with an EDNS0 trace option so auth servers can join their spans (needs -trace)")
	sloLatencyP99 := flag.Duration("slo-latency-p99", 0, "latency SLO target: resolutions slower than this burn the 1% error budget (0 disables)")
	sloErrorRate := flag.Float64("slo-error-rate", 0, "error-rate SLO budget, the allowed SERVFAIL/error fraction, e.g. 0.001 (0 disables)")
	flightDir := flag.String("flight-recorder", "", "directory for flight-recorder dumps; enables the digest ring, /flightrecorder, SIGUSR1 and SLO-burn dumps")
	flightRing := flag.Int("flight-ring", 4096, "flight-recorder ring size (recent query digests retained)")
	trafficOn := flag.Bool("traffic", true, "classify queries into the junk taxonomy (/topk, rootless_traffic_*)")
	trafficTopK := flag.Int("traffic-topk", 16, "heavy-hitter table size for /topk")
	tsInterval := flag.Duration("timeseries", time.Second, "metric history recording interval for /timeseries (0 disables)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers at /debug/pprof/ on the admin endpoint")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "resolverd", *logLevel)

	var mode resolver.RootMode
	switch *modeStr {
	case "hints":
		mode = resolver.RootModeHints
	case "preload":
		mode = resolver.RootModePreload
	case "lookaside":
		mode = resolver.RootModeLookaside
	case "localauth":
		mode = resolver.RootModeLocalAuth
	default:
		fatal("unknown -mode %q", *modeStr)
	}

	policy, err := validator.ParsePolicy(*validateStr)
	if err != nil {
		fatal("%v", err)
	}
	var anchor dnswire.DS
	if policy != validator.PolicyOff {
		if *anchorPath == "" {
			fatal("-validate %s requires -trust-anchor", policy)
		}
		f, err := os.Open(*anchorPath)
		if err != nil {
			fatal("%v", err)
		}
		key, err := dnssec.ReadPublicKey(f)
		f.Close()
		if err != nil {
			fatal("parsing trust anchor: %v", err)
		}
		anchor = dnssec.AnchorDS(dnswire.Root, key)
	} else if *nsecAggressive {
		fatal("-nsec-aggressive needs -validate strict or permissive (synthesis requires validated NSEC records)")
	}

	transport := &resolver.UDPTransport{Timeout: *timeout}
	cfg := resolver.Config{
		Mode:              mode,
		Transport:         transport,
		QNameMinimisation: *qmin,
		ServeStale:        *stale,
		CacheCapacity:     *cacheCap,
		CacheShards:       *cacheShards,
		RetryBudget:       *retryBudget,
		HoldDownAfter:     *holdDownAfter,
		HoldDown:          *holdDown,
		Coalesce:          *coalesce,
		NXDomainCut:       *nxCut,
		Validate:          policy,
		TrustAnchor:       anchor,
		DNSSECSkew:        *dnssecSkew,
		NSECAggressive:    *nsecAggressive,
		MaxInflight:       *maxInflight,
		QueueDeadline:     *queueDeadline,
		TracePropagate:    *tracePropagate,
	}

	// Hints: from file, or the built-in 13-letter set.
	if *hintsPath != "" {
		f, err := os.Open(*hintsPath)
		if err != nil {
			fatal("%v", err)
		}
		hz, err := zone.Parse(f, dnswire.Root)
		f.Close()
		if err != nil {
			fatal("parsing hints: %v", err)
		}
		cfg.Hints = hz.Records()
	} else {
		cfg.Hints = rootzone.Hints()
	}

	switch mode {
	case resolver.RootModePreload, resolver.RootModeLookaside:
		if *rootZonePath == "" && *zoneMirrors == "" {
			fatal("-mode %s requires -rootzone or -zone-mirrors", mode)
		}
		if *rootZonePath != "" {
			z, err := loadZone(*rootZonePath)
			if err != nil {
				fatal("%v", err)
			}
			cfg.LocalZone = z
			logger.Info("loaded local root zone", "serial", z.Serial(), "records", z.Len())
		}
		if *zoneMirrors != "" {
			// Staged staleness only engages when the copy is supposed to
			// refresh itself; a hand-loaded zone file keeps the old
			// serve-forever behavior.
			cfg.ZoneExpiry = *zoneExpiry
			cfg.ZoneRefresh = *zoneRefresh
			cfg.ZoneStaleFor = *zoneStaleFor
		}
	case resolver.RootModeLocalAuth:
		addr, err := netip.ParseAddr(*localAuth)
		if err != nil {
			fatal("bad -localauth: %v", err)
		}
		cfg.LocalAuthAddr = addr
		if *localAuthPort != 53 {
			transport.PortOverrides = map[netip.Addr]uint16{addr: uint16(*localAuthPort)}
		}
	}

	r := resolver.New(cfg)
	if policy != validator.PolicyOff {
		logger.Info("DNSSEC validation enabled", "policy", policy.String(),
			"nsec_aggressive", *nsecAggressive, "skew", *dnssecSkew)
	}
	srv := resolver.NewServer(r)
	if *perClientQPS > 0 {
		srv.SetClientLimit(*perClientQPS, 0)
		logger.Info("per-client limit enabled", "qps", *perClientQPS)
	}

	tracer := obs.NewTracer(*traceRing, *traceSlow)
	tracer.SetEnabled(*traceOn)
	r.SetTracer(tracer)
	if *traceOn {
		logger.Info("query tracing enabled", "ring", *traceRing, "slow_threshold", *traceSlow)
	}
	if *tracePropagate {
		if !*traceOn {
			fatal("-trace-propagate needs -trace (there is no local trace to stitch into)")
		}
		logger.Info("trace propagation enabled", "edns0_option", dnswire.OptionCodeTrace)
	}

	var flight *obs.FlightRecorder
	if *flightDir != "" {
		flight = obs.NewFlightRecorder(*flightRing, *flightDir)
		r.SetFlightRecorder(flight)
		logger.Info("flight recorder enabled", "ring", *flightRing, "dir", *flightDir)
	}
	var watchdog *obs.Watchdog
	if *sloLatencyP99 > 0 || *sloErrorRate > 0 {
		watchdog = obs.NewWatchdog(nil)
		var latSLO, errSLO *obs.SLOTracker
		if *sloLatencyP99 > 0 {
			latSLO = watchdog.Add(obs.SLOConfig{Name: "latency_p99", Budget: 0.01})
		}
		if *sloErrorRate > 0 {
			errSLO = watchdog.Add(obs.SLOConfig{Name: "errors", Budget: *sloErrorRate})
		}
		target := *sloLatencyP99
		r.SetSLOObserver(func(lat time.Duration, rcode dnswire.Rcode, err error) {
			// Trackers are nil-safe; an error counts against both SLOs.
			latSLO.Observe(err == nil && lat <= target)
			errSLO.Observe(err == nil && rcode != dnswire.RcodeServFail)
		})
		watchdog.OnAlert(func(name string, fast, slow float64) {
			logger.Warn("SLO burn-rate alert", "slo", name, "burn_fast", fast, "burn_slow", slow)
			if path, err := flight.Dump("slo-burn:" + name); err != nil {
				logger.Error("flight-recorder dump", "err", err)
			} else if path != "" {
				logger.Warn("flight recorder dumped", "path", path)
			}
		})
		logger.Info("SLO watchdog enabled",
			"latency_p99", *sloLatencyP99, "error_budget", *sloErrorRate)
	}
	if flight != nil {
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		go func() {
			for range usr1 {
				if path, err := flight.Dump("sigusr1"); err != nil {
					logger.Error("flight-recorder dump", "err", err)
				} else {
					logger.Info("flight recorder dumped", "path", path)
				}
			}
		}()
	}

	var analyzer *traffic.Analyzer
	if *trafficOn {
		// The junk taxonomy needs the valid-TLD universe: the local root
		// zone copy when this mode carries one, the modeled corpus otherwise.
		var tlds []dnswire.Name
		if cfg.LocalZone != nil {
			tlds = cfg.LocalZone.Delegations()
		} else {
			for _, t := range rootzone.TLDsAt(time.Now()) {
				tlds = append(tlds, t.Name)
			}
		}
		analyzer = traffic.NewAnalyzer(traffic.NewTLDSet(tlds), *trafficTopK)
		r.SetTraffic(analyzer)
		logger.Info("traffic analysis enabled", "tlds", len(tlds), "topk", *trafficTopK)
	}

	eng, err := udpengine.New(udpengine.Config{
		Addr:      *listen,
		Workers:   *udpWorkers,
		Batch:     *udpBatch,
		Handler:   srv.DatagramHandler(),
		MaxPacket: 64 * 1024,
	})
	if err != nil {
		fatal("listen: %v", err)
	}
	logger.Info("listening", "mode", mode.String(), "addr", eng.LocalAddr().String(),
		"udp_workers", eng.Workers(), "udp_batch", eng.Batch(), "reuseport", eng.ReusePort())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var refresher *dist.Refresher
	if *zoneMirrors != "" {
		if mode != resolver.RootModePreload && mode != resolver.RootModeLookaside {
			fatal("-zone-mirrors needs -mode preload or lookaside (the modes that carry a local zone copy)")
		}
		if *zonePub == "" {
			fatal("-zone-mirrors requires -zone-pub (the publisher's DNSKEY)")
		}
		f, err := os.Open(*zonePub)
		if err != nil {
			fatal("%v", err)
		}
		ksk, err := dnssec.ReadPublicKey(f)
		f.Close()
		if err != nil {
			fatal("parsing -zone-pub: %v", err)
		}
		var sources []dist.Source
		for _, m := range strings.Split(*zoneMirrors, ",") {
			sources = append(sources, dist.NewHTTPClient(strings.TrimSpace(m)))
		}
		refresher, err = dist.NewRefresher(dist.RefresherConfig{
			Source:    sources[0],
			Fallbacks: sources[1:],
			Trust:     dist.NewTrustAnchors(0, ksk),
			Install: func(z *zone.Zone) error {
				r.SetLocalZone(z)
				logger.Info("installed root zone", "serial", z.Serial(), "records", z.Len())
				return nil
			},
			Refresh:    *zoneRefresh,
			Retry:      *zoneRetry,
			Expiry:     *zoneExpiry,
			StaleFor:   *zoneStaleFor,
			CrossCheck: *zoneCrossCheck,
			Tracer:     tracer,
		})
		if err != nil {
			fatal("zone refresher: %v", err)
		}
		// Synchronous first fetch: without a -rootzone cold-start copy the
		// resolver has nothing to serve until a mirror answers.
		refresher.Tick(ctx)
		if st := refresher.State(); !st.HaveZone && cfg.LocalZone == nil {
			fatal("initial zone fetch failed: %v", st.LastErr)
		}
		go refresher.Run(ctx)
		logger.Info("zone refresher started", "mirrors", len(sources),
			"refresh", *zoneRefresh, "expiry", *zoneExpiry, "stale_for", *zoneStaleFor)
	}

	if *adminAddr != "" {
		start := time.Now()
		reg := obs.NewRegistry()
		r.Instrument(reg)
		reg.AddCollector(tracer)
		reg.AddCollector(eng)
		if refresher != nil {
			reg.AddCollector(refresher)
		}
		if watchdog != nil {
			watchdog.Collect(reg)
		}
		if flight != nil {
			flight.Collect(reg)
		}
		obs.RegisterProcessMetrics(reg, start)
		if mode == resolver.RootModeHints {
			// Hints mode still leans on the root-server fleet; expose the
			// modeled deployment it depends on next to the traffic counters.
			reg.AddCollector(anycast.DeploymentCollector{})
		}
		admin := &obs.Admin{
			Registry: reg,
			Tracer:   tracer,
			Pprof:    *pprofOn,
		}
		if analyzer != nil {
			admin.TopK = analyzer.Handler()
		}
		if flight != nil {
			admin.Flight = flight.Handler()
		}
		if *tsInterval > 0 {
			rec := tsdb.NewRecorder(reg, tsdb.Options{Interval: *tsInterval})
			admin.Timeseries = rec
			go rec.Run(ctx)
		}
		base := statusFunc(r, refresher, tracer, watchdog, flight, mode, policy, start)
		admin.Status = func() map[string]any {
			doc := base()
			for k, v := range eng.StatusDoc() {
				doc[k] = v
			}
			return doc
		}
		go func() {
			if err := admin.ListenAndServe(ctx, *adminAddr, logger); err != nil {
				logger.Error("admin server", "err", err)
			}
		}()
	}

	if err := eng.Serve(ctx); err != nil {
		fatal("%v", err)
	}
	st := r.Stats()
	logger.Info("shutdown",
		"resolutions", st.Resolutions, "cache_answers", st.CacheAnswers,
		"upstream_queries", st.TotalQueries, "root_queries", st.RootQueries,
		"local_root_consults", st.LocalRootConsults)
}

func statusFunc(r *resolver.Resolver, refresher *dist.Refresher, tracer *obs.Tracer, watchdog *obs.Watchdog, flight *obs.FlightRecorder, mode resolver.RootMode, policy validator.Policy, start time.Time) func() map[string]any {
	return func() map[string]any {
		st := r.Stats()
		status := map[string]any{
			"component":        "resolverd",
			"mode":             mode.String(),
			"resolutions":      st.Resolutions,
			"cache_answers":    st.CacheAnswers,
			"upstream_queries": st.TotalQueries,
			"root_queries":     st.RootQueries,
			"coalesced":        st.CoalescedResolutions,
			"shed":             st.ShedResolutions,
			"nxdomain_cut":     st.NXDomainCutHits,
			"cache_rrsets":     r.Cache().Len(),
			"cache_pinned":     r.Cache().PinnedLen(),
			"srtt_entries":     r.SRTTStateSize(),
			"uptime_seconds":   time.Since(start).Seconds(),
			"tracing":          tracer.Enabled(),
		}
		if tail, ok := r.TailLatencySeconds(); ok {
			status["latency_p50"] = tail[0]
			status["latency_p99"] = tail[1]
			status["latency_p999"] = tail[2]
			status["latency_p9999"] = tail[3]
		}
		if watchdog != nil {
			status["slo"] = watchdog.Status()
		}
		if flight != nil {
			status["flight_recorded"] = flight.Seen()
			status["flight_dumps"] = flight.Dumps()
		}
		if policy != validator.PolicyOff {
			status["validate"] = policy.String()
			status["secure_answers"] = st.SecureAnswers
			status["insecure_answers"] = st.InsecureAnswers
			status["bogus_answers"] = st.BogusAnswers
			status["bogus_rejected"] = st.BogusRejected
			status["nsec_ranges"] = r.Cache().NSECRangeLen()
			status["nsec_synthesized"] = st.NSECSynthesized
		}
		if an := r.Traffic(); an != nil {
			status["junk_share"] = an.JunkShare()
			status["unique_qnames"] = an.UniqueQnames()
		}
		if serial, age, ok := r.LocalZoneStatus(); ok {
			// The §5.3 staleness metric: how old is our root copy?
			status["zone_serial"] = serial
			status["zone_age_seconds"] = age.Seconds()
		}
		if refresher != nil {
			rst := refresher.State()
			status["zone_freshness"] = r.ZoneFreshness().String()
			status["zone_fetches"] = rst.Fetches
			status["zone_fetch_failures"] = rst.Failures
			status["zone_installs"] = rst.Installs
			status["zone_delta_installs"] = rst.DeltaInstalls
			status["zone_chain_fallbacks"] = rst.ChainFallbacks
			status["zone_rollbacks_rejected"] = rst.RollbacksRejected
			status["zone_cross_checks"] = rst.CrossChecks
			status["zone_source_quarantines"] = rst.Quarantines
			status["zone_trust_anchors_valid"] = rst.Trust.Valid
			status["zone_trust_anchors_pending"] = rst.Trust.Pending
			status["zone_trust_rollovers"] = rst.Trust.Rollovers
		}
		return status
	}
}

func loadZone(path string) (*zone.Zone, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		return zone.Decompress(data, dnswire.Root)
	}
	return zone.Parse(strings.NewReader(string(data)), dnswire.Root)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "resolverd: "+format+"\n", args...)
	os.Exit(1)
}
