package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// metricsDoc mirrors obs.Registry.WriteJSON: metric name → family.
type metricsDoc map[string]metricFamily

type metricFamily struct {
	Kind   string         `json:"kind"`
	Series []metricSeries `json:"series"`
}

type metricSeries struct {
	Labels    map[string]string  `json:"labels"`
	Value     float64            `json:"value"`
	Count     float64            `json:"count"`               // histograms, summaries
	Sum       float64            `json:"sum"`                 // histograms, summaries
	Quantiles map[string]float64 `json:"quantiles,omitempty"` // summaries
}

// total sums Value across a family's series (labels collapse).
func (m metricsDoc) total(name string) (float64, bool) {
	f, ok := m[name]
	if !ok {
		return 0, false
	}
	v := 0.0
	for _, s := range f.Series {
		v += s.Value
	}
	return v, true
}

// byLabel indexes a family's series by one label key's values.
func (m metricsDoc) byLabel(name, label string) map[string]metricSeries {
	out := map[string]metricSeries{}
	for _, s := range m[name].Series {
		out[s.Labels[label]] = s
	}
	return out
}

// topkDoc mirrors the /topk JSON document.
type topkDoc struct {
	Observed      int64            `json:"observed"`
	Clients       int64            `json:"clients_observed"`
	Classes       map[string]int64 `json:"classes"`
	JunkShare     float64          `json:"junk_share"`
	UniqueQnames  float64          `json:"unique_qnames"`
	UniqueClients float64          `json:"unique_clients"`
	TopQnames     []topkRow        `json:"top_qnames"`
	TopClients    []topkRow        `json:"top_clients"`
}

type topkRow struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
	Err   int64  `json:"err"`
}

// sample is one poll of a target's admin endpoint.
type sample struct {
	at      time.Time
	status  map[string]any
	metrics metricsDoc
	topk    *topkDoc // nil when the daemon exposes no /topk
}

// targetState carries the previous sample so rates can be delta-computed.
type targetState struct {
	name string
	base string // admin address, no scheme
	prev *sample
}

type app struct {
	targets []*targetState
	topN    int
	client  *http.Client
}

func newApp(args []string, topN int) *app {
	a := &app{topN: topN, client: &http.Client{Timeout: 2 * time.Second}}
	for _, arg := range args {
		name, base := parseTarget(arg)
		a.targets = append(a.targets, &targetState{name: name, base: base})
	}
	return a
}

func (a *app) getJSON(base, path string, into any) error {
	resp, err := a.client.Get("http://" + base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, into)
}

// poll fetches one sample. /metrics and /statusz are required; /topk is
// optional (404 on daemons without a traffic analyzer).
func (a *app) poll(t *targetState, now time.Time) (*sample, error) {
	s := &sample{at: now, metrics: metricsDoc{}, status: map[string]any{}}
	if err := a.getJSON(t.base, "/metrics?format=json", &s.metrics); err != nil {
		return nil, err
	}
	if err := a.getJSON(t.base, "/statusz", &s.status); err != nil {
		return nil, err
	}
	var tk topkDoc
	if err := a.getJSON(t.base, fmt.Sprintf("/topk?format=json&n=%d", a.topN), &tk); err == nil {
		s.topk = &tk
	}
	return s, nil
}

// frame polls every target and renders the full dashboard.
func (a *app) frame(now time.Time) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rootlesstop — %s\n", now.Format("15:04:05"))
	for _, t := range a.targets {
		sb.WriteByte('\n')
		s, err := a.poll(t, now)
		if err != nil {
			fmt.Fprintf(&sb, "▌ %s — unreachable: %v\n", t.name, err)
			t.prev = nil
			continue
		}
		renderTarget(&sb, t, s)
		t.prev = s
	}
	return sb.String()
}

// qpsCounters are the per-component "arriving work" counters, tried in
// order: resolverd, authd, zonedist.
var qpsCounters = []string{
	"rootless_resolver_resolutions_total",
	"rootless_authserver_queries_total",
	"rootless_dist_requests_total",
}

// hitRatios maps components to their (hits, misses) counter pairs.
var hitRatios = [][2]string{
	{"rootless_cache_hits_total", "rootless_cache_misses_total"},
	{"rootless_authserver_packed_hits_total", "rootless_authserver_packed_misses_total"},
}

func renderTarget(sb *strings.Builder, t *targetState, s *sample) {
	component, _ := s.status["component"].(string)
	if component == "" {
		component = "daemon"
	}
	head := fmt.Sprintf("▌ %s (%s) @ %s", t.name, component, t.base)
	if mode, ok := s.status["mode"].(string); ok {
		head += "  mode=" + mode
	}
	if up, ok := s.status["uptime_seconds"].(float64); ok {
		head += fmt.Sprintf("  up %s", (time.Duration(up) * time.Second).String())
	}
	sb.WriteString(head + "\n")

	// Rates: deltas against the previous sample; cumulative on frame one.
	dt := 0.0
	var prev metricsDoc
	if t.prev != nil {
		dt = s.at.Sub(t.prev.at).Seconds()
		prev = t.prev.metrics
	}
	rate := func(name string) (float64, bool) {
		cur, ok := s.metrics.total(name)
		if !ok {
			return 0, false
		}
		if prev == nil || dt <= 0 {
			return cur, true // cumulative until there is a delta baseline
		}
		was, _ := prev.total(name)
		d := cur - was
		if d < 0 {
			d = 0
		}
		return d / dt, true
	}

	line := "  "
	for _, name := range qpsCounters {
		if v, ok := rate(name); ok {
			unit := "q/s"
			if prev == nil {
				unit = "queries"
			}
			line += fmt.Sprintf("load %.1f %s", v, unit)
			break
		}
	}
	for _, pair := range hitRatios {
		h, ok1 := s.metrics.total(pair[0])
		m, ok2 := s.metrics.total(pair[1])
		if !ok1 || !ok2 {
			continue
		}
		if prev != nil {
			ph, _ := prev.total(pair[0])
			pm, _ := prev.total(pair[1])
			h, m = h-ph, m-pm
		}
		if h+m > 0 {
			line += fmt.Sprintf("   hit rate %.1f%%", 100*h/(h+m))
		}
		break
	}
	if tk := s.topk; tk != nil {
		line += fmt.Sprintf("   junk %.1f%%   ~%.0f qnames   ~%.0f clients",
			100*tk.JunkShare, tk.UniqueQnames, tk.UniqueClients)
	}
	sb.WriteString(line + "\n")

	renderTail(sb, s.metrics)
	renderSLO(sb, s.metrics)
	renderPhases(sb, prev, s.metrics)
	renderComposition(sb, prev, s.metrics, s.topk)
	if s.topk != nil {
		renderTopK(sb, s.topk)
	}
}

// latencySummaries are the per-component HDR latency families, tried in
// order: resolverd, authd.
var latencySummaries = []string{
	"rootless_resolver_resolution_seconds",
	"rootless_authserver_handle_seconds",
}

// tailQuantiles pairs the summary quantile keys with display labels.
var tailQuantiles = [][2]string{
	{"0.5", "p50"}, {"0.99", "p99"}, {"0.999", "p999"}, {"0.9999", "p9999"},
}

// renderTail shows the HDR latency tail (the quantiles a fixed-bucket
// histogram can't resolve) from the first summary family present.
func renderTail(sb *strings.Builder, cur metricsDoc) {
	for _, name := range latencySummaries {
		for _, se := range cur[name].Series {
			if se.Count == 0 {
				continue
			}
			line := "  latency:"
			for _, q := range tailQuantiles {
				if v, ok := se.Quantiles[q[0]]; ok {
					line += fmt.Sprintf(" %s %s", q[1], fmtSeconds(v))
				}
			}
			sb.WriteString(line + "\n")
			return
		}
	}
}

// renderSLO shows every declared SLO's burn rates and alert state.
func renderSLO(sb *strings.Builder, cur metricsDoc) {
	type burns struct{ fast, slow float64 }
	by := map[string]*burns{}
	for _, se := range cur["rootless_slo_burn_rate"].Series {
		b := by[se.Labels["slo"]]
		if b == nil {
			b = &burns{}
			by[se.Labels["slo"]] = b
		}
		if se.Labels["window"] == "fast" {
			b.fast = se.Value
		} else {
			b.slow = se.Value
		}
	}
	if len(by) == 0 {
		return
	}
	alerts := cur.byLabel("rootless_slo_alert", "slo")
	budgets := cur.byLabel("rootless_slo_budget", "slo")
	names := make([]string, 0, len(by))
	for n := range by {
		names = append(names, n)
	}
	sort.Strings(names)
	line := "  slo:"
	for _, n := range names {
		b := by[n]
		line += fmt.Sprintf(" %s burn %.1f/%.1f budget %.3g%%", n, b.fast, b.slow,
			100*budgets[n].Value)
		if alerts[n].Value >= 1 {
			line += " [ALERT]"
		}
	}
	sb.WriteString(line + "\n")
}

// fmtSeconds renders a latency in seconds at dashboard precision.
func fmtSeconds(v float64) string {
	switch d := time.Duration(v * float64(time.Second)); {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

// renderPhases turns the rootless_trace_phase_seconds histogram sums into
// a where-does-the-time-go attribution line.
func renderPhases(sb *strings.Builder, prev, cur metricsDoc) {
	const name = "rootless_trace_phase_seconds"
	curBy := cur.byLabel(name, "phase")
	if len(curBy) == 0 {
		return
	}
	var prevBy map[string]metricSeries
	if prev != nil {
		prevBy = prev.byLabel(name, "phase")
	}
	total := 0.0
	deltas := map[string]float64{}
	for phase, se := range curBy {
		d := se.Sum
		if prevBy != nil {
			d -= prevBy[phase].Sum
		}
		if d < 0 {
			d = 0
		}
		deltas[phase] = d
		total += d
	}
	if total <= 0 {
		return
	}
	phases := make([]string, 0, len(deltas))
	for p := range deltas {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return deltas[phases[i]] > deltas[phases[j]] })
	line := "  phases:"
	for _, p := range phases {
		if share := deltas[p] / total; share >= 0.005 {
			line += fmt.Sprintf(" %s %.0f%%", p, 100*share)
		}
	}
	sb.WriteString(line + "\n")
}

// renderComposition prefers live interval deltas of the class counters;
// /topk's cumulative classes are the fallback for the first frame.
func renderComposition(sb *strings.Builder, prev, cur metricsDoc, tk *topkDoc) {
	const name = "rootless_traffic_class_total"
	curBy := cur.byLabel(name, "class")
	counts := map[string]float64{}
	total := 0.0
	if len(curBy) > 0 {
		var prevBy map[string]metricSeries
		if prev != nil {
			prevBy = prev.byLabel(name, "class")
		}
		for class, se := range curBy {
			d := se.Value
			if prevBy != nil {
				d -= prevBy[class].Value
			}
			if d < 0 {
				d = 0
			}
			counts[class] = d
			total += d
		}
		if total <= 0 {
			// Quiet interval: show the cumulative mix rather than nothing.
			total = 0
			for class, se := range curBy {
				counts[class] = se.Value
				total += se.Value
			}
		}
	} else if tk != nil {
		for class, n := range tk.Classes {
			counts[class] = float64(n)
			total += float64(n)
		}
	}
	if total <= 0 {
		return
	}
	classes := make([]string, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return counts[classes[i]] > counts[classes[j]] })
	line := "  composition:"
	for _, c := range classes {
		if counts[c] > 0 {
			line += fmt.Sprintf(" %s %.1f%%", c, 100*counts[c]/total)
		}
	}
	sb.WriteString(line + "\n")
}

// snapshotDoc is the -json one-shot output: everything a frame renders,
// machine-readable, one poll per target.
type snapshotDoc struct {
	At      string           `json:"at"`
	Targets []targetSnapshot `json:"targets"`
}

type targetSnapshot struct {
	Name    string         `json:"name"`
	Addr    string         `json:"addr"`
	Error   string         `json:"error,omitempty"`
	Status  map[string]any `json:"status,omitempty"`
	Metrics metricsDoc     `json:"metrics,omitempty"`
	TopK    *topkDoc       `json:"topk,omitempty"`
}

// snapshot polls every target once for -json output. Unreachable
// targets appear with an error field rather than failing the snapshot.
func (a *app) snapshot(now time.Time) snapshotDoc {
	doc := snapshotDoc{At: now.UTC().Format(time.RFC3339)}
	for _, t := range a.targets {
		ts := targetSnapshot{Name: t.name, Addr: t.base}
		if s, err := a.poll(t, now); err != nil {
			ts.Error = err.Error()
		} else {
			ts.Status = s.status
			ts.Metrics = s.metrics
			ts.TopK = s.topk
		}
		doc.Targets = append(doc.Targets, ts)
	}
	return doc
}

func renderTopK(sb *strings.Builder, tk *topkDoc) {
	writeRows := func(title string, rows []topkRow) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(sb, "  %s:\n", title)
		for _, r := range rows {
			fmt.Fprintf(sb, "    %10d (±%d)  %s\n", r.Count, r.Err, r.Key)
		}
	}
	writeRows("top qnames", tk.TopQnames)
	writeRows("top clients", tk.TopClients)
}
