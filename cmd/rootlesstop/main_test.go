package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
)

// testDaemon fakes a resolverd admin endpoint: a registry with resolver-
// shaped counters, phase histograms, and a live traffic analyzer.
func testDaemon(t *testing.T) (*httptest.Server, *obs.Registry, *traffic.Analyzer) {
	t.Helper()
	reg := obs.NewRegistry()
	an := traffic.NewAnalyzer(traffic.NewTLDSet([]dnswire.Name{"com.", "net."}), 8)
	reg.AddCollector(obs.CollectorFunc(an.Collect))
	admin := &obs.Admin{
		Registry: reg,
		Status: func() map[string]any {
			return map[string]any{"component": "resolverd", "mode": "lookaside", "uptime_seconds": 12.0}
		},
		TopK: an.Handler(),
	}
	srv := httptest.NewServer(admin.Handler())
	t.Cleanup(srv.Close)
	return srv, reg, an
}

func TestFrameRendersLiveDashboard(t *testing.T) {
	srv, reg, an := testDaemon(t)

	resolutions := reg.Counter("rootless_resolver_resolutions_total", "t", nil)
	hits := reg.Counter("rootless_cache_hits_total", "t", nil)
	misses := reg.Counter("rootless_cache_misses_total", "t", nil)
	netPhase := reg.Histogram("rootless_trace_phase_seconds", "t", obs.Labels{"phase": "net"}, nil)
	cachePhase := reg.Histogram("rootless_trace_phase_seconds", "t", obs.Labels{"phase": "cache"}, nil)

	resolutions.Set(100)
	hits.Set(80)
	misses.Set(20)
	netPhase.Observe(0.9)
	cachePhase.Observe(0.1)
	for i := 0; i < 6; i++ {
		an.Observe("www.example.com.", dnswire.TypeA)
	}
	for i := 0; i < 4; i++ {
		an.Observe("printer.local.", dnswire.TypeA)
	}

	base := strings.TrimPrefix(srv.URL, "http://")
	app := newApp([]string{"res=" + base}, 5)

	t0 := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	first := app.frame(t0)
	for _, want := range []string{
		"▌ res (resolverd) @ " + base,
		"mode=lookaside",
		"load 100.0 queries", // first frame: cumulative
		"hit rate 80.0%",
		// 5 of the 6 www lookups are repeats, and repeats are junk in the
		// paper's taxonomy: (5 repeats + 4 bogus) / 10 observed.
		"junk 90.0%",
		"phases: net 90% cache 10%",
		"composition: valid_repeat 50.0% bogus_tld 40.0% valid 10.0%",
		"top qnames:",
		"www.example.com.",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("first frame missing %q:\n%s", want, first)
		}
	}

	// Advance the world: +50 resolutions, +40 hits, +10 misses over 2s.
	resolutions.Set(150)
	hits.Set(120)
	misses.Set(30)
	second := app.frame(t0.Add(2 * time.Second))
	for _, want := range []string{
		"load 25.0 q/s",  // 50 resolutions / 2s
		"hit rate 80.0%", // 40/(40+10) interval hits
		// No class counter moved this interval, so composition falls back
		// to the cumulative mix.
		"composition: valid_repeat 50.0% bogus_tld 40.0% valid 10.0%",
	} {
		if !strings.Contains(second, want) {
			t.Errorf("second frame missing %q:\n%s", want, second)
		}
	}
}

func TestFrameUnreachableTarget(t *testing.T) {
	app := newApp([]string{"down=127.0.0.1:1"}, 5)
	frame := app.frame(time.Now())
	if !strings.Contains(frame, "unreachable") {
		t.Fatalf("frame = %q", frame)
	}
}

func TestParseTarget(t *testing.T) {
	if n, b := parseTarget("res=127.0.0.1:9153"); n != "res" || b != "127.0.0.1:9153" {
		t.Errorf("got %q %q", n, b)
	}
	if n, b := parseTarget("127.0.0.1:9153"); n != "127.0.0.1:9153" || b != "127.0.0.1:9153" {
		t.Errorf("got %q %q", n, b)
	}
}

// TestFrameTailAndSLO: a daemon exposing an HDR latency summary and SLO
// gauges gets the latency-tail and burn-rate panels.
func TestFrameTailAndSLO(t *testing.T) {
	srv, reg, _ := testDaemon(t)

	lat := reg.HDRTimer("rootless_resolver_resolution_seconds", "t", nil)
	for i := 0; i < 1000; i++ {
		lat.RecordDuration(2 * time.Millisecond)
	}
	lat.RecordDuration(80 * time.Millisecond) // the tail outlier

	clk := time.Unix(1700000000, 0)
	w := obs.NewWatchdog(func() time.Time { return clk })
	tr := w.Add(obs.SLOConfig{Name: "errors", Budget: 0.01, MinEvents: 1,
		FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second})
	for i := 0; i < 100; i++ {
		tr.Observe(false) // 100% bad: burn 100, alert firing
	}
	w.Collect(reg)

	base := strings.TrimPrefix(srv.URL, "http://")
	app := newApp([]string{"res=" + base}, 5)
	frame := app.frame(time.Now())
	for _, want := range []string{
		"latency: p50 2.0ms", "p9999 8", // p9999 lands on the ~80ms outlier
		"slo: errors burn 100.0/100.0 budget 1%", "[ALERT]",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

// TestSnapshotJSON: the -json one-shot carries status, metrics (with
// summary quantiles), and topk; unreachable targets get an error field.
func TestSnapshotJSON(t *testing.T) {
	srv, reg, an := testDaemon(t)
	reg.Counter("rootless_resolver_resolutions_total", "t", nil).Set(3)
	reg.HDRTimer("rootless_resolver_resolution_seconds", "t", nil).
		RecordDuration(5 * time.Millisecond)
	an.Observe("www.example.com.", dnswire.TypeA)

	base := strings.TrimPrefix(srv.URL, "http://")
	app := newApp([]string{"res=" + base, "down=127.0.0.1:1"}, 5)
	doc := app.snapshot(time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC))

	if doc.At != "2026-08-08T12:00:00Z" || len(doc.Targets) != 2 {
		t.Fatalf("snapshot: %+v", doc)
	}
	res := doc.Targets[0]
	if res.Error != "" || res.Status["component"] != "resolverd" || res.TopK == nil {
		t.Fatalf("target: %+v", res)
	}
	if v, _ := res.Metrics.total("rootless_resolver_resolutions_total"); v != 3 {
		t.Errorf("resolutions in snapshot = %v", v)
	}
	sum := res.Metrics["rootless_resolver_resolution_seconds"]
	if len(sum.Series) != 1 || sum.Series[0].Quantiles["0.999"] <= 0 {
		t.Errorf("summary quantiles missing: %+v", sum)
	}
	if down := doc.Targets[1]; down.Error == "" || down.Status != nil {
		t.Errorf("down target: %+v", down)
	}

	// The document round-trips as JSON (what -json prints).
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"quantiles"`) {
		t.Error("marshalled snapshot lacks quantiles")
	}
}

// TestFrameWithoutTopK: a daemon without a traffic analyzer (no /topk)
// still renders its load line.
func TestFrameWithoutTopK(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rootless_authserver_queries_total", "t", nil).Set(7)
	admin := &obs.Admin{Registry: reg, Status: func() map[string]any {
		return map[string]any{"component": "authd"}
	}}
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()
	app := newApp([]string{strings.TrimPrefix(srv.URL, "http://")}, 5)
	frame := app.frame(time.Now())
	if !strings.Contains(frame, "(authd)") || !strings.Contains(frame, "load 7.0 queries") {
		t.Fatalf("frame:\n%s", frame)
	}
	if strings.Contains(frame, "junk") {
		t.Error("junk line rendered without a /topk endpoint")
	}
}
