// Command rootlesstop is a live terminal dashboard over the admin
// endpoints of running rootless daemons — top(1) for a resolverd /
// authd / zonedist fleet. It polls /metrics?format=json, /statusz, and
// /topk?format=json on each target and renders queries/sec, cache hit
// rates, phase-latency attribution, traffic composition shares, and the
// heavy-hitter tables, refreshing in place with plain ANSI (no external
// dependencies, no curses).
//
// Usage:
//
//	rootlesstop 127.0.0.1:9153 127.0.0.1:9154
//	rootlesstop -interval 2s resolver=127.0.0.1:9153 auth=127.0.0.1:9154
//	rootlesstop -once 127.0.0.1:9153        # one frame, no screen control
//	rootlesstop -json 127.0.0.1:9153        # one JSON snapshot for scripts
//
// Daemons running with an SLO watchdog or HDR latency summaries get two
// extra panels: the latency tail (p50/p99/p999/p9999) and per-SLO burn
// rates with an [ALERT] marker while the multi-window alert fires.
//
// Targets are admin addresses (the daemons' -admin flag), optionally
// prefixed with a display name. Rates are computed from deltas between
// consecutive polls; the first frame shows cumulative values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	interval := flag.Duration("interval", time.Second, "poll and refresh interval")
	once := flag.Bool("once", false, "render a single frame without screen control and exit")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON snapshot of every target and exit")
	topN := flag.Int("n", 5, "heavy-hitter rows per table")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rootlesstop [-interval 1s] [-once|-json] [-n 5] [name=]adminaddr ...")
		os.Exit(2)
	}
	app := newApp(flag.Args(), *topN)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(app.snapshot(time.Now())); err != nil {
			fmt.Fprintf(os.Stderr, "rootlesstop: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *once {
		os.Stdout.WriteString(app.frame(time.Now()))
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	// Alternate screen buffer: the shell's scrollback survives exit.
	os.Stdout.WriteString("\x1b[?1049h\x1b[H\x1b[2J")
	defer os.Stdout.WriteString("\x1b[?1049l")
	render := func(now time.Time) {
		// Home the cursor, draw erasing the tail of every overwritten line,
		// then clear whatever the previous (maybe longer) frame left below —
		// flicker-free in-place refresh.
		frame := strings.ReplaceAll(app.frame(now), "\n", "\x1b[K\n")
		os.Stdout.WriteString("\x1b[H" + frame + "\x1b[J")
	}
	render(time.Now())
	for {
		select {
		case <-sig:
			return
		case now := <-tick.C:
			render(now)
		}
	}
}

// parseTarget splits an optional "name=" prefix off an admin address.
func parseTarget(arg string) (name, base string) {
	if i := strings.IndexByte(arg, '='); i > 0 {
		return arg[:i], arg[i+1:]
	}
	return arg, arg
}
