// Command rootlessdig is a minimal dig-alike for exercising authd and
// resolverd.
//
// Usage:
//
//	rootlessdig -server 127.0.0.1:5301 www.example.com A
//	rootlessdig -server 127.0.0.1:5300 -norec com NS
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"rootless/internal/dnswire"
)

func main() {
	server := flag.String("server", "127.0.0.1:53", "server address (host:port)")
	norec := flag.Bool("norec", false, "clear the RD bit (iterative query)")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	flag.Parse()

	if flag.NArg() < 1 {
		fatal("usage: rootlessdig [-server host:port] name [type]")
	}
	name, err := dnswire.ParseName(flag.Arg(0))
	if err != nil {
		fatal("bad name: %v", err)
	}
	qtype := dnswire.TypeA
	if flag.NArg() > 1 {
		qtype, err = dnswire.ParseType(strings.ToUpper(flag.Arg(1)))
		if err != nil {
			fatal("%v", err)
		}
	}

	q := dnswire.NewQuery(uint16(rand.New(rand.NewSource(time.Now().UnixNano())).Intn(1<<16)), name, qtype)
	q.RecursionDesired = !*norec
	q.SetEDNS(dnswire.DefaultEDNSSize, false)
	wire, err := q.Pack()
	if err != nil {
		fatal("%v", err)
	}

	conn, err := net.Dial("udp", *server)
	if err != nil {
		fatal("%v", err)
	}
	defer conn.Close()
	start := time.Now()
	_ = conn.SetDeadline(start.Add(*timeout))
	if _, err := conn.Write(wire); err != nil {
		fatal("%v", err)
	}
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		fatal("no response: %v", err)
	}
	elapsed := time.Since(start)

	var resp dnswire.Message
	if err := resp.Unpack(buf[:n]); err != nil {
		fatal("bad response: %v", err)
	}
	fmt.Print(resp.String())
	fmt.Printf(";; Query time: %v\n;; SERVER: %s\n;; MSG SIZE: %d bytes\n",
		elapsed.Round(time.Microsecond), *server, n)
	if resp.Rcode != dnswire.RcodeSuccess {
		os.Exit(1)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rootlessdig: "+format+"\n", args...)
	os.Exit(1)
}
