// Command ditlanalyze classifies a DITL-style trace exactly as §2.2 of
// the paper does: bogus-TLD share, ideal-cache and 15-minute-cache
// redundancy, valid remainder, per-instance rates, and the new-TLD
// trickle.
//
// Usage:
//
//	ditlanalyze -trace ditl.trace
//	ditlanalyze -trace ditl.trace -window 15m -newtld llc.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rootless/internal/ditl"
	"rootless/internal/dnswire"
	"rootless/internal/rootzone"
)

func main() {
	tracePath := flag.String("trace", "ditl.trace", "trace file from ditlgen")
	window := flag.Duration("window", 15*time.Minute, "relaxed cache window")
	newTLD := flag.String("newtld", "llc.", "TLD whose uptake to report (§5.3)")
	dateStr := flag.String("date", "2018-04-11", "date fixing the valid-TLD universe")
	flag.Parse()

	at, err := time.Parse("2006-01-02", *dateStr)
	if err != nil {
		fatal("bad -date: %v", err)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	trace, err := ditl.ReadTrace(f)
	if err != nil {
		fatal("%v", err)
	}

	var tlds []dnswire.Name
	for _, t := range rootzone.TLDsAt(at) {
		tlds = append(tlds, t.Name)
	}
	nt, err := dnswire.ParseName(*newTLD)
	if err != nil {
		fatal("bad -newtld: %v", err)
	}
	a := ditl.Analyze(trace, tlds, nt, *window)
	fmt.Print(a.Table())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ditlanalyze: "+format+"\n", args...)
	os.Exit(1)
}
