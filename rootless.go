// Package rootless is a full implementation and experimental testbed for
// the proposal in Mark Allman's "On Eliminating Root Nameservers from the
// DNS" (HotNets 2019): recursive resolvers stop querying root nameservers
// and instead bootstrap from a locally held, cryptographically verified
// copy of the root zone file.
//
// The package re-exports the system's public API from the internal
// packages:
//
//   - Resolver: an iterative recursive resolver with four root modes
//     (classic hints, cache preload, per-transaction lookaside, and an
//     RFC 7706 loopback authoritative server).
//   - LocalRoot: the fetch → verify → install → refresh orchestrator that
//     keeps a resolver's root zone copy fresh on the paper's TTL-derived
//     schedule.
//   - Zone, AuthServer: the zone store and authoritative server engine.
//   - Mirror, HTTPClient, Gossip, Refresher: root-zone distribution over
//     HTTP mirrors, rsync-style deltas, and peer-to-peer gossip.
//   - Signer, VerifyZone: DNSSEC signing and validation (Ed25519), with
//     NSEC chains and a whole-zone digest.
//   - BuildRootZone, Hints: the synthetic root zone model used in place
//     of the (non-redistributable) real zone archive.
//
// The experiment harness reproducing every figure and table in the paper
// lives in internal/experiments and is driven by cmd/experiments and the
// benchmarks in bench_test.go. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package rootless

import (
	"time"

	"rootless/internal/authserver"
	"rootless/internal/core"
	"rootless/internal/dist"
	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/resolver"
	"rootless/internal/rootzone"
	"rootless/internal/zone"
)

// Wire format.
type (
	// Name is a fully-qualified, canonical DNS name.
	Name = dnswire.Name
	// Type is a DNS RR type.
	Type = dnswire.Type
	// RR is a resource record.
	RR = dnswire.RR
	// Message is a whole DNS message.
	Message = dnswire.Message
)

// Zones and serving.
type (
	// Zone is an in-memory DNS zone with authoritative lookup.
	Zone = zone.Zone
	// AuthServer answers queries for a zone over netsim, UDP and TCP.
	AuthServer = authserver.Server
)

// Resolution.
type (
	// Resolver is the iterative recursive resolver.
	Resolver = resolver.Resolver
	// ResolverConfig configures a Resolver.
	ResolverConfig = resolver.Config
	// RootMode selects how a resolver learns about the root zone.
	RootMode = resolver.RootMode
)

// Root modes.
const (
	RootModeHints     = resolver.RootModeHints
	RootModePreload   = resolver.RootModePreload
	RootModeLookaside = resolver.RootModeLookaside
	RootModeLocalAuth = resolver.RootModeLocalAuth
)

// DNSSEC.
type (
	// Signer signs zones with a KSK/ZSK pair.
	Signer = dnssec.Signer
)

// Distribution.
type (
	// Mirror serves root zone bundles over HTTP with delta sync.
	Mirror = dist.Mirror
	// HTTPClient fetches bundles and deltas from a Mirror.
	HTTPClient = dist.HTTPClient
	// Bundle is a compressed, signed zone snapshot.
	Bundle = dist.Bundle
	// Gossip simulates peer-to-peer zone propagation.
	Gossip = dist.Gossip
	// AdditionsBundle is the signed §5.3 "recent additions" supplement.
	AdditionsBundle = dist.AdditionsBundle
)

// The proposal itself.
type (
	// LocalRoot keeps a resolver's local root zone fetched, verified and
	// fresh — the paper's replacement for the root nameserver service.
	LocalRoot = core.LocalRoot
	// LocalRootConfig configures a LocalRoot.
	LocalRootConfig = core.Config
	// Migration models the gradual, flag-day-free deployment of §3.
	Migration = core.Migration
)

// NewResolver builds a resolver; see resolver.Config for the knobs.
func NewResolver(cfg ResolverConfig) *Resolver { return resolver.New(cfg) }

// NewLocalRoot builds the fetch/verify/install orchestrator.
func NewLocalRoot(cfg LocalRootConfig) (*LocalRoot, error) { return core.New(cfg) }

// NewAuthServer builds an authoritative server for a zone.
func NewAuthServer(z *Zone) *AuthServer { return authserver.New(z) }

// BuildRootZone synthesizes the modeled root zone as of a date.
func BuildRootZone(at time.Time) (*Zone, error) { return rootzone.Build(at) }

// Hints returns the classic 13-letter root hints records.
func Hints() []RR { return rootzone.Hints() }
