// Benchmarks regenerating every table and figure in the paper (one bench
// per experiment ID from DESIGN.md §4), plus the ablations DESIGN.md §5
// calls out and micro-benchmarks of the hot substrate paths.
//
// Run: go test -bench=. -benchmem
package rootless_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"rootless/internal/anycast"
	"rootless/internal/cache"
	"rootless/internal/dist"
	"rootless/internal/ditl"
	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/experiments"
	"rootless/internal/metrics"
	"rootless/internal/rootzone"
	"rootless/internal/zone"
	"rootless/internal/zonediff"
)

func ymd(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

type seedRand struct{ r *rand.Rand }

func (s seedRand) Read(p []byte) (int, error) { return s.r.Read(p) }

// fixtures are shared, lazily-built heavyweight inputs.
var fixtures struct {
	once       sync.Once
	signer     *dnssec.Signer
	zone2019   *zone.Zone // unsigned, 2019-06-07
	signed2019 *zone.Zone
	compressed []byte
	textDay0   []byte
	textDay1   []byte
}

func setup(b *testing.B) {
	b.Helper()
	fixtures.once.Do(func() {
		s, err := dnssec.NewSigner(dnswire.Root, seedRand{rand.New(rand.NewSource(1))})
		if err != nil {
			panic(err)
		}
		s.AddNSEC = true
		s.Quantize = 14 * 24 * time.Hour
		s.Validity = 28 * 24 * time.Hour
		fixtures.signer = s

		z, err := rootzone.Build(ymd(2019, time.June, 7))
		if err != nil {
			panic(err)
		}
		fixtures.zone2019 = z

		signed := z.Clone()
		if err := s.SignZone(signed, ymd(2019, time.June, 7)); err != nil {
			panic(err)
		}
		fixtures.signed2019 = signed
		fixtures.compressed, err = zone.Compress(signed)
		if err != nil {
			panic(err)
		}

		day0 := signed
		day1, err := rootzone.Build(ymd(2019, time.June, 8))
		if err != nil {
			panic(err)
		}
		if err := s.SignZone(day1, ymd(2019, time.June, 8)); err != nil {
			panic(err)
		}
		fixtures.textDay0 = []byte(zone.Text(day0))
		fixtures.textDay1 = []byte(zone.Text(day1))
	})
	b.ResetTimer()
}

// reportMatches records whether the experiment preserved the paper's
// findings as a benchmark metric (1 = all rows match).
func reportMatches(b *testing.B, r experiments.Result) {
	b.Helper()
	v := 1.0
	if !r.Matches() {
		v = 0
	}
	b.ReportMetric(v, "paper-match")
}

// ---- Figures ----

// BenchmarkFig1RootZoneGrowth regenerates Figure 1's unit operation:
// build the root zone for one sampled date.
func BenchmarkFig1RootZoneGrowth(b *testing.B) {
	dates := []time.Time{
		ymd(2010, time.June, 15), ymd(2013, time.June, 15),
		ymd(2016, time.June, 15), ymd(2019, time.June, 15),
	}
	for i := 0; i < b.N; i++ {
		z, err := rootzone.Build(dates[i%len(dates)])
		if err != nil {
			b.Fatal(err)
		}
		if z.Len() == 0 {
			b.Fatal("empty zone")
		}
	}
}

// BenchmarkFig2InstanceGrowth regenerates Figure 2's unit operation:
// materialize the full anycast deployment at a date.
func BenchmarkFig2InstanceGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dep := anycast.Deployment(ymd(2019, time.May, 15))
		if len(dep) < 900 {
			b.Fatalf("deployment %d", len(dep))
		}
	}
}

// ---- §2 tables ----

// BenchmarkT1HintsFile builds the root hints file.
func BenchmarkT1HintsFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(rootzone.HintsText()) == 0 {
			b.Fatal("empty hints")
		}
	}
}

// BenchmarkT1ZoneFile signs and compresses the full root zone — the
// published artifact whose size §2.1/§5.1 discuss.
func BenchmarkT1ZoneFile(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		z := fixtures.zone2019.Clone()
		if err := fixtures.signer.SignZone(z, ymd(2019, time.June, 7)); err != nil {
			b.Fatal(err)
		}
		blob, err := zone.Compress(z)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(blob)))
	}
}

// BenchmarkT2TrafficClassification runs the §2.2 generate+classify
// pipeline at 100K-query scale.
func BenchmarkT2TrafficClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.TrafficClassification(100_000))
	}
}

// ---- §4 tables ----

// BenchmarkT4ResolutionLatency runs the four-mode latency comparison.
func BenchmarkT4ResolutionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.ResolutionLatency(120))
	}
}

// BenchmarkT4Robustness runs the outage-injection comparison.
func BenchmarkT4Robustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.Robustness())
	}
}

// BenchmarkT4Attack runs the root-manipulation MITM comparison.
func BenchmarkT4Attack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.Attack(40))
	}
}

// BenchmarkT4Privacy runs the exposed-qname comparison.
func BenchmarkT4Privacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.Privacy(60))
	}
}

// BenchmarkT4Complexity runs the SRTT-machinery comparison.
func BenchmarkT4Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.Complexity(60))
	}
}

// ---- §5 tables ----

// BenchmarkT5CachePreload runs the §5.1 cache-impact experiment.
func BenchmarkT5CachePreload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.CachePreload())
	}
}

// BenchmarkT5TLDExtraction measures the paper's "extract one TLD by
// scanning the compressed file" operation (the 37 ms Python script).
func BenchmarkT5TLDExtraction(b *testing.B) {
	setup(b)
	tlds := rootzone.TLDsAt(ymd(2019, time.June, 7))
	for i := 0; i < b.N; i++ {
		rrs, err := zone.ExtractTLD(fixtures.compressed, tlds[i%len(tlds)].Name)
		if err != nil {
			b.Fatal(err)
		}
		if len(rrs) == 0 {
			b.Fatal("no records extracted")
		}
	}
}

// BenchmarkT5TLDExtractionIndexed is the ablation: the same lookup
// against the pre-built per-TLD index ("load the root zone into a
// database").
func BenchmarkT5TLDExtractionIndexed(b *testing.B) {
	setup(b)
	idx := zone.BuildTLDIndex(fixtures.zone2019)
	tlds := rootzone.TLDsAt(ymd(2019, time.June, 7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(idx.Lookup(tlds[i%len(tlds)].Name)) == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkT5DistributionLoad measures the daily rsync delta between two
// consecutive signed snapshots — §5.2's per-resolver transfer cost.
func BenchmarkT5DistributionLoad(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		sig := dist.SignBlocks(fixtures.textDay0, dist.DefaultBlockSize)
		ops := dist.ComputeDelta(sig, fixtures.textDay1)
		b.SetBytes(int64(dist.DeltaSize(ops)))
	}
}

// BenchmarkT5Staleness measures the §5.2 reachability check between two
// month-apart zones.
func BenchmarkT5Staleness(b *testing.B) {
	stale, err := rootzone.Build(ymd(2019, time.April, 1))
	if err != nil {
		b.Fatal(err)
	}
	truth, err := rootzone.Build(ymd(2019, time.May, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := zonediff.CheckReachability(stale, truth)
		if r.Total == 0 {
			b.Fatal("no TLDs")
		}
	}
}

// BenchmarkT5NewTLDLag runs the §5.3 .llc analysis.
func BenchmarkT5NewTLDLag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.NewTLDLag())
	}
}

// BenchmarkT5TTLSweep runs the §5.2 TTL/staleness trade-off table.
func BenchmarkT5TTLSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.TTLSweep())
	}
}

// BenchmarkT5AdditionsChannel runs the §5.3 recent-additions ablation.
func BenchmarkT5AdditionsChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.AdditionsChannel())
	}
}

// BenchmarkT4Infrastructure runs the fleet-decommissioning model.
func BenchmarkT4Infrastructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.Infrastructure())
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationRsyncBlockSize sweeps the delta block size.
func BenchmarkAblationRsyncBlockSize(b *testing.B) {
	for _, bs := range []int{128, 256, 704, 2048, 8192} {
		b.Run(fmt.Sprintf("block%d", bs), func(b *testing.B) {
			setup(b)
			for i := 0; i < b.N; i++ {
				sig := dist.SignBlocks(fixtures.textDay0, bs)
				ops := dist.ComputeDelta(sig, fixtures.textDay1)
				b.ReportMetric(float64(dist.DeltaSize(ops)), "delta-bytes")
			}
		})
	}
}

// BenchmarkAblationVerify compares the paper's whole-file signature
// shortcut against full per-RRset DNSSEC validation.
func BenchmarkAblationVerify(b *testing.B) {
	b.Run("detached", func(b *testing.B) {
		setup(b)
		bundle, err := dist.MakeBundle(fixtures.signed2019, fixtures.signer)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bundle.Verify(fixtures.signer.KSK.DNSKEY); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-dnssec", func(b *testing.B) {
		setup(b)
		anchor := fixtures.signer.TrustAnchor()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dnssec.VerifyZone(fixtures.signed2019, anchor, ymd(2019, time.June, 7)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCacheEviction compares LRU behaviour with and without
// the preloaded root zone pinned.
func BenchmarkAblationCacheEviction(b *testing.B) {
	setup(b)
	_, sets := dnswire.GroupRRsets(fixtures.zone2019.Records())
	run := func(b *testing.B, pin bool) {
		clock := time.Unix(1559900000, 0)
		c := cache.New(20_000, func() time.Time { return clock })
		if pin {
			for _, rrs := range sets {
				c.Put(rrs, true)
			}
		}
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := dnswire.Name(fmt.Sprintf("n%d.example.com.", rng.Intn(50_000)))
			if _, ok := c.Get(name, dnswire.TypeA); !ok {
				c.Put([]dnswire.RR{dnswire.NewRR(name, 3600, dnswire.TXT{Strings: []string{"x"}})}, false)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, false) })
	b.Run("preload-pinned", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationQMIN runs the QNAME-minimisation comparison (the §4
// privacy mitigation inside the classic architecture) and reports whether
// its findings hold — QMIN hides labels from the root path, the local
// root zone removes the path entirely.
func BenchmarkAblationQMIN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportMatches(b, experiments.Privacy(40))
	}
}

// BenchmarkAblationCacheWindow sweeps the §2.2 relaxed-cache window: how
// the "valid" share of root traffic depends on how often a resolver is
// allowed to re-ask (the paper uses 15 minutes / 96 per day).
func BenchmarkAblationCacheWindow(b *testing.B) {
	tlds := func() []dnswire.Name {
		var out []dnswire.Name
		for _, t := range rootzone.TLDsAt(ymd(2018, time.April, 11)) {
			out = append(out, t.Name)
		}
		return out
	}()
	cfg := ditl.DefaultGenConfig(tlds)
	cfg.TotalQueries = 100_000
	cfg.Resolvers = 410
	cfg.BogusOnlyResolvers = 72
	trace, err := ditl.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, window := range []time.Duration{time.Minute, 15 * time.Minute, time.Hour, 24 * time.Hour} {
		b.Run(window.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := ditl.Analyze(trace, tlds, "llc.", window)
				b.ReportMetric(100*a.WindowValidShare(), "valid-%")
			}
		})
	}
}

// ---- Substrate micro-benchmarks ----

// mutexCounter is the pre-atomic metrics.Counter implementation, kept
// here so the benchmark records what the sync/atomic conversion bought.
type mutexCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *mutexCounter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// BenchmarkMetricsCounter compares the lock-free metrics.Counter against
// the old mutex-guarded version under parallel increment load.
func BenchmarkMetricsCounter(b *testing.B) {
	b.Run("atomic", func(b *testing.B) {
		var c metrics.Counter
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
		if c.Value() != int64(b.N) {
			b.Fatalf("count = %d, want %d", c.Value(), b.N)
		}
	})
	b.Run("mutex", func(b *testing.B) {
		var c mutexCounter
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
}

// BenchmarkWireRoundTrip packs and unpacks a referral-sized message.
func BenchmarkWireRoundTrip(b *testing.B) {
	setup(b)
	ans := fixtures.zone2019.Query("www.example.com.", dnswire.TypeA)
	m := &dnswire.Message{
		ID: 1, Response: true,
		Questions:  []dnswire.Question{{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
		Authority:  ans.Authority,
		Additional: ans.Additional,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := m.Pack()
		if err != nil {
			b.Fatal(err)
		}
		var out dnswire.Message
		if err := out.Unpack(wire); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(wire)))
	}
}

// BenchmarkZoneQuery measures the authoritative lookup path.
func BenchmarkZoneQuery(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		ans := fixtures.zone2019.Query("www.example.com.", dnswire.TypeA)
		if len(ans.Authority) == 0 {
			b.Fatal("no referral")
		}
	}
}

// BenchmarkZoneParse measures master-file parsing of the full root zone.
func BenchmarkZoneParse(b *testing.B) {
	setup(b)
	text := zone.Text(fixtures.zone2019)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z, err := zone.Parse(strings.NewReader(text), dnswire.Root)
		if err != nil {
			b.Fatal(err)
		}
		if z.Len() == 0 {
			b.Fatal("empty")
		}
		b.SetBytes(int64(len(text)))
	}
}
