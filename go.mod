module rootless

go 1.22
