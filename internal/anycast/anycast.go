// Package anycast models the root nameserver deployment: the per-letter
// anycast instance counts over time that produce Figure 2 of the paper
// (including the documented e-root and f-root expansion events), instance
// geography, and nearest-instance catchment with a propagation-delay RTT
// model. The resolver-side experiments use this package as the stand-in
// for the real Internet's anycast routing.
package anycast

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"
)

// GeoPoint is a location on the globe.
type GeoPoint struct {
	Lat, Lon float64
}

// DistanceKm returns the great-circle distance to other in kilometres.
func (g GeoPoint) DistanceKm(other GeoPoint) float64 {
	const earthRadiusKm = 6371
	lat1, lon1 := g.Lat*math.Pi/180, g.Lon*math.Pi/180
	lat2, lon2 := other.Lat*math.Pi/180, other.Lon*math.Pi/180
	dlat, dlon := lat2-lat1, lon2-lon1
	a := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dlon/2)*math.Sin(dlon/2)
	return 2 * earthRadiusKm * math.Atan2(math.Sqrt(a), math.Sqrt(1-a))
}

// RTT estimates the round-trip time between two points: great-circle
// propagation in fibre (~100 km/ms one way) with a path-inflation factor
// and a small fixed processing cost. Deterministic.
func RTT(a, b GeoPoint) time.Duration {
	const (
		kmPerMsOneWay = 100.0 // ≈ 2/3 c in fibre
		pathInflation = 1.6   // routes are not great circles
		fixedMs       = 2.0   // serialization + local hops
	)
	ms := fixedMs + 2*a.DistanceKm(b)*pathInflation/kmPerMsOneWay
	return time.Duration(ms * float64(time.Millisecond))
}

// cities is the placement pool for instances and resolvers — major
// population/interconnection centres.
var cities = []struct {
	name string
	loc  GeoPoint
}{
	{"ashburn", GeoPoint{39.0, -77.5}},
	{"newyork", GeoPoint{40.7, -74.0}},
	{"chicago", GeoPoint{41.9, -87.6}},
	{"dallas", GeoPoint{32.8, -96.8}},
	{"losangeles", GeoPoint{34.1, -118.2}},
	{"seattle", GeoPoint{47.6, -122.3}},
	{"saopaulo", GeoPoint{-23.6, -46.6}},
	{"buenosaires", GeoPoint{-34.6, -58.4}},
	{"london", GeoPoint{51.5, -0.1}},
	{"amsterdam", GeoPoint{52.4, 4.9}},
	{"frankfurt", GeoPoint{50.1, 8.7}},
	{"paris", GeoPoint{48.9, 2.4}},
	{"stockholm", GeoPoint{59.3, 18.1}},
	{"moscow", GeoPoint{55.8, 37.6}},
	{"johannesburg", GeoPoint{-26.2, 28.0}},
	{"nairobi", GeoPoint{-1.3, 36.8}},
	{"dubai", GeoPoint{25.2, 55.3}},
	{"mumbai", GeoPoint{19.1, 72.9}},
	{"singapore", GeoPoint{1.35, 103.8}},
	{"hongkong", GeoPoint{22.3, 114.2}},
	{"tokyo", GeoPoint{35.7, 139.7}},
	{"seoul", GeoPoint{37.6, 127.0}},
	{"sydney", GeoPoint{-33.9, 151.2}},
	{"auckland", GeoPoint{-36.8, 174.8}},
	{"beijing", GeoPoint{39.9, 116.4}},
	{"toronto", GeoPoint{43.7, -79.4}},
	{"mexicocity", GeoPoint{19.4, -99.1}},
	{"warsaw", GeoPoint{52.2, 21.0}},
	{"madrid", GeoPoint{40.4, -3.7}},
	{"cairo", GeoPoint{30.0, 31.2}},
}

// CityCount returns the number of placement cities.
func CityCount() int { return len(cities) }

// CityLocation returns the i-th city location (modulo the pool).
func CityLocation(i int) GeoPoint { return cities[((i%len(cities))+len(cities))%len(cities)].loc }

// letterModel drives one root letter's instance count over time.
type letterModel struct {
	letter   byte
	start    int     // instances at 2015-03
	perMonth float64 // baseline growth rate
}

// The baselines are tuned so the total tracks Figure 2: ~420 instances in
// March 2015 growing to ~985 by May 2019, with b/g/h/m staying at six or
// fewer instances and d/e/f/j/l exceeding one hundred.
var letterModels = []letterModel{
	{'a', 6, 0.10},
	{'b', 4, 0.02},
	{'c', 8, 0.10},
	{'d', 60, 1.20},
	{'e', 12, 0.50},
	{'f', 57, 1.00},
	{'g', 6, 0.00},
	{'h', 2, 0.04},
	{'i', 49, 0.70},
	{'j', 80, 1.20},
	{'k', 33, 0.50},
	{'l', 100, 0.90},
	{'m', 5, 0.02},
}

// jump is a documented step change in a letter's deployment.
type jump struct {
	letter byte
	when   time.Time
	delta  int
}

// The paper's §2.1 documented events.
var jumps = []jump{
	{'e', time.Date(2016, time.February, 1, 0, 0, 0, 0, time.UTC), 45},
	{'f', time.Date(2017, time.May, 1, 0, 0, 0, 0, time.UTC), 81},
	{'e', time.Date(2017, time.December, 1, 0, 0, 0, 0, time.UTC), 85},
	{'f', time.Date(2017, time.December, 1, 0, 0, 0, 0, time.UTC), 43},
}

var modelStart = time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)

// monthsSince returns fractional months between two times.
func monthsSince(from, to time.Time) float64 {
	return to.Sub(from).Hours() / (24 * 30.44)
}

// InstanceCountForLetter returns the modeled instance count for one root
// letter at a date.
func InstanceCountForLetter(letter byte, at time.Time) int {
	var m letterModel
	for _, lm := range letterModels {
		if lm.letter == letter {
			m = lm
			break
		}
	}
	if m.letter == 0 {
		return 0
	}
	months := monthsSince(modelStart, at)
	if months < 0 {
		months = 0
	}
	n := m.start + int(m.perMonth*months)
	for _, j := range jumps {
		if j.letter == letter && !at.Before(j.when) {
			n += j.delta
		}
	}
	return n
}

// InstanceCount returns the total modeled root instance count at a date —
// the Figure 2 series.
func InstanceCount(at time.Time) int {
	total := 0
	for _, lm := range letterModels {
		total += InstanceCountForLetter(lm.letter, at)
	}
	return total
}

// Instance is one anycast replica of a root letter.
type Instance struct {
	Letter   byte
	Index    int
	Location GeoPoint
}

// Name returns a human-readable instance identifier.
func (i Instance) Name() string {
	return fmt.Sprintf("%c-root#%d", i.Letter, i.Index)
}

// Deployment returns every root instance at a date, deterministically
// placed: each letter's instances spread across the city pool with
// hash-driven jitter so catchments are stable across runs.
func Deployment(at time.Time) []Instance {
	var out []Instance
	for _, lm := range letterModels {
		n := InstanceCountForLetter(lm.letter, at)
		for i := 0; i < n; i++ {
			out = append(out, Instance{
				Letter:   lm.letter,
				Index:    i,
				Location: placeInstance(lm.letter, i),
			})
		}
	}
	return out
}

func placeInstance(letter byte, i int) GeoPoint {
	h := fnv.New64a()
	fmt.Fprintf(h, "%c/%d", letter, i)
	v := h.Sum64()
	city := cities[v%uint64(len(cities))].loc
	// Jitter within ~200 km so co-city instances are distinct.
	return GeoPoint{
		Lat: city.Lat + float64(int64(v>>8)%300-150)/100.0,
		Lon: city.Lon + float64(int64(v>>16)%300-150)/100.0,
	}
}

// Nearest returns the instance closest to from, which models anycast
// catchment. It returns false if instances is empty.
func Nearest(instances []Instance, from GeoPoint) (Instance, bool) {
	if len(instances) == 0 {
		return Instance{}, false
	}
	best := instances[0]
	bestD := from.DistanceKm(best.Location)
	for _, in := range instances[1:] {
		if d := from.DistanceKm(in.Location); d < bestD {
			best, bestD = in, d
		}
	}
	return best, true
}

// NearestForLetter returns the closest instance of one letter.
func NearestForLetter(instances []Instance, letter byte, from GeoPoint) (Instance, bool) {
	var filtered []Instance
	for _, in := range instances {
		if in.Letter == letter {
			filtered = append(filtered, in)
		}
	}
	return Nearest(filtered, from)
}

// MedianRTTToLetter computes, for a set of client locations, the median
// RTT to each client's nearest instance of a letter — the quantity the
// anycast build-out is optimizing.
func MedianRTTToLetter(instances []Instance, letter byte, clients []GeoPoint) time.Duration {
	if len(clients) == 0 {
		return 0
	}
	rtts := make([]time.Duration, 0, len(clients))
	for _, c := range clients {
		in, ok := NearestForLetter(instances, letter, c)
		if !ok {
			continue
		}
		rtts = append(rtts, RTT(c, in.Location))
	}
	if len(rtts) == 0 {
		return 0
	}
	for i := 1; i < len(rtts); i++ {
		for j := i; j > 0 && rtts[j] < rtts[j-1]; j-- {
			rtts[j], rtts[j-1] = rtts[j-1], rtts[j]
		}
	}
	return rtts[len(rtts)/2]
}
