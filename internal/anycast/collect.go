package anycast

import (
	"fmt"
	"time"

	"rootless/internal/obs"
)

// DeploymentCollector publishes the modeled root-server deployment (the
// Figure 2 instance counts) to a metrics registry: the total and one
// per-letter series, evaluated at Clock() each scrape. The hints-mode
// resolver daemon wires this in so a scrape shows the infrastructure the
// paper proposes to retire next to the traffic still hitting it.
type DeploymentCollector struct {
	// Clock supplies the evaluation date; nil means time.Now.
	Clock func() time.Time
}

// Collect implements obs.Collector.
func (d DeploymentCollector) Collect(reg *obs.Registry) {
	now := time.Now
	if d.Clock != nil {
		now = d.Clock
	}
	at := now()
	reg.Gauge("rootless_anycast_instances", "modeled root anycast instances (all letters)", nil).
		Set(float64(InstanceCount(at)))
	for _, lm := range letterModels {
		reg.Gauge("rootless_anycast_letter_instances", "modeled instances per root letter",
			obs.Labels{"letter": fmt.Sprintf("%c", lm.letter)}).
			Set(float64(InstanceCountForLetter(lm.letter, at)))
	}
}
