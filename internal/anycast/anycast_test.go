package anycast

import (
	"testing"
	"time"
)

func d(y int, m time.Month, day int) time.Time {
	return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
}

func TestInstanceCountShape(t *testing.T) {
	start := InstanceCount(d(2015, time.March, 15))
	if start < 380 || start > 480 {
		t.Errorf("2015-03 total = %d, want ~420", start)
	}
	may2019 := InstanceCount(d(2019, time.May, 15))
	if may2019 < 940 || may2019 > 1040 {
		t.Errorf("2019-05 total = %d, want ~985", may2019)
	}
	// Count must never decrease month over month.
	prev := 0
	for at := d(2015, time.March, 15); at.Before(d(2019, time.August, 1)); at = at.AddDate(0, 1, 0) {
		n := InstanceCount(at)
		if n < prev {
			t.Errorf("count decreased at %s: %d < %d", at.Format("2006-01"), n, prev)
		}
		prev = n
	}
}

func TestDocumentedJumps(t *testing.T) {
	cases := []struct {
		letter   byte
		before   time.Time
		after    time.Time
		minDelta int
	}{
		{'e', d(2016, time.January, 15), d(2016, time.February, 15), 45},
		{'f', d(2017, time.April, 15), d(2017, time.May, 15), 81},
		{'e', d(2017, time.November, 15), d(2017, time.December, 15), 85},
		{'f', d(2017, time.November, 15), d(2017, time.December, 15), 43},
	}
	for _, c := range cases {
		b := InstanceCountForLetter(c.letter, c.before)
		a := InstanceCountForLetter(c.letter, c.after)
		if a-b < c.minDelta {
			t.Errorf("%c-root jump %s: %d -> %d, want +>=%d",
				c.letter, c.after.Format("2006-01"), b, a, c.minDelta)
		}
	}
}

func TestSmallLettersStaySmall(t *testing.T) {
	at := d(2019, time.May, 15)
	for _, letter := range []byte{'b', 'g', 'h', 'm'} {
		if n := InstanceCountForLetter(letter, at); n > 6 {
			t.Errorf("%c-root = %d instances, paper says at most 6", letter, n)
		}
	}
	for _, letter := range []byte{'d', 'e', 'f', 'j', 'l'} {
		if n := InstanceCountForLetter(letter, at); n <= 100 {
			t.Errorf("%c-root = %d instances, paper says over 100", letter, n)
		}
	}
}

func TestDeploymentMatchesCounts(t *testing.T) {
	at := d(2018, time.April, 11)
	dep := Deployment(at)
	if len(dep) != InstanceCount(at) {
		t.Errorf("deployment size %d != count %d", len(dep), InstanceCount(at))
	}
	perLetter := make(map[byte]int)
	for _, in := range dep {
		perLetter[in.Letter]++
	}
	if perLetter['j'] != InstanceCountForLetter('j', at) {
		t.Errorf("j-root deployment %d != model %d", perLetter['j'], InstanceCountForLetter('j', at))
	}
	// j-root had ~160 replicas at DITL 2018.
	if perLetter['j'] < 120 || perLetter['j'] > 200 {
		t.Errorf("j-root at DITL 2018 = %d, want ~160", perLetter['j'])
	}
}

func TestDeploymentDeterministic(t *testing.T) {
	a := Deployment(d(2019, time.January, 1))
	b := Deployment(d(2019, time.January, 1))
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instance %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDistanceAndRTT(t *testing.T) {
	london := GeoPoint{51.5, -0.1}
	nyc := GeoPoint{40.7, -74.0}
	dKm := london.DistanceKm(nyc)
	if dKm < 5300 || dKm > 5800 {
		t.Errorf("London-NYC = %.0f km, want ~5570", dKm)
	}
	if got := london.DistanceKm(london); got > 0.001 {
		t.Errorf("self distance = %f", got)
	}
	rtt := RTT(london, nyc)
	if rtt < 50*time.Millisecond || rtt > 250*time.Millisecond {
		t.Errorf("London-NYC RTT = %v, want transatlantic scale", rtt)
	}
	// Symmetry.
	if RTT(london, nyc) != RTT(nyc, london) {
		t.Error("RTT not symmetric")
	}
	// Local RTT is small but nonzero.
	local := RTT(london, GeoPoint{51.6, 0.0})
	if local < time.Millisecond || local > 10*time.Millisecond {
		t.Errorf("local RTT = %v", local)
	}
}

func TestNearestCatchment(t *testing.T) {
	at := d(2019, time.January, 1)
	dep := Deployment(at)
	tokyo := GeoPoint{35.7, 139.7}
	in, ok := Nearest(dep, tokyo)
	if !ok {
		t.Fatal("no instances")
	}
	if tokyo.DistanceKm(in.Location) > 3000 {
		t.Errorf("nearest instance to Tokyo is %.0f km away (%s)",
			tokyo.DistanceKm(in.Location), in.Name())
	}
	if _, ok := Nearest(nil, tokyo); ok {
		t.Error("empty deployment should return false")
	}
}

func TestAnycastExpansionReducesRTT(t *testing.T) {
	// The point of the build-out: median RTT to a letter's nearest
	// instance should not increase as instances are added.
	clients := make([]GeoPoint, 0, CityCount())
	for i := 0; i < CityCount(); i++ {
		clients = append(clients, CityLocation(i))
	}
	early := Deployment(d(2015, time.April, 1))
	late := Deployment(d(2019, time.April, 1))
	for _, letter := range []byte{'e', 'f', 'j'} {
		rttEarly := MedianRTTToLetter(early, letter, clients)
		rttLate := MedianRTTToLetter(late, letter, clients)
		if rttLate > rttEarly {
			t.Errorf("%c-root median RTT grew with deployment: %v -> %v",
				letter, rttEarly, rttLate)
		}
	}
}

func TestNearestForLetter(t *testing.T) {
	dep := Deployment(d(2018, time.April, 11))
	sydney := GeoPoint{-33.9, 151.2}
	inJ, ok := NearestForLetter(dep, 'j', sydney)
	if !ok || inJ.Letter != 'j' {
		t.Fatalf("NearestForLetter j: %+v ok=%v", inJ, ok)
	}
	if _, ok := NearestForLetter(dep, 'z', sydney); ok {
		t.Error("unknown letter should return false")
	}
}
