package loadgen

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"rootless/internal/authserver"
	"rootless/internal/benchfmt"
	"rootless/internal/dnswire"
	"rootless/internal/obs/traffic"
	"rootless/internal/udpengine"
	"rootless/internal/zone"
)

const testZoneSrc = `
$ORIGIN .
. 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. 2019041100 1800 900 604800 86400
. 518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 198.41.0.4
com. 172800 IN NS a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
net. 172800 IN NS a.gtld-servers.net.
org. 172800 IN NS a0.org.afilias-nst.info.
`

// startAuthd runs a packed-answer authd behind a multi-worker engine on
// loopback and returns its address and the engine (for stats).
func startAuthd(t testing.TB, workers, batch int) (string, *udpengine.Engine) {
	t.Helper()
	z, err := zone.Parse(strings.NewReader(testZoneSrc), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	srv := authserver.New(z)
	eng, err := udpengine.New(udpengine.Config{
		Addr: "127.0.0.1:0", Workers: workers, Batch: batch,
		Handler: srv.DatagramHandler(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("engine: %v", err)
		}
	})
	return eng.LocalAddr().String(), eng
}

// TestSmokeAgainstAuthd is the make-verify smoke: 2k real-socket
// queries against an in-process authd on loopback must come back at
// >= 99% response rate, and the result must round-trip as schema-valid
// rootless-bench JSON.
func TestSmokeAgainstAuthd(t *testing.T) {
	addr, _ := startAuthd(t, runtime.GOMAXPROCS(0), 8)
	res, err := Run(context.Background(), Config{
		Target:  addr,
		Queries: 2000,
		QPS:     10000,
		Workers: 2,
		TLDs:    []dnswire.Name{"com.", "net.", "org."},
		Seed:    1,
		EDNS:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 2000 {
		t.Errorf("sent %d queries, want 2000", res.Sent)
	}
	if res.RespRate < 0.99 {
		t.Errorf("response rate %.4f, want >= 0.99 (received %d/%d)",
			res.RespRate, res.Received, res.Sent)
	}
	if res.P50 <= 0 || res.P999 < res.P50 {
		t.Errorf("implausible latency tail: p50=%v p999=%v", res.P50, res.P999)
	}

	rep := &benchfmt.Report{
		Schema: benchfmt.Schema, Label: "loadgen-smoke", GoVersion: runtime.Version(),
		Benchmarks: []benchfmt.Entry{BenchEntry("BenchmarkLoadgenSmoke", res)},
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back benchfmt.Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.Validate(&back, 1); err != nil {
		t.Errorf("emitted JSON failed schema validation: %v", err)
	}
}

// TestMixMatchesTaxonomy: the generator's classes must land in the
// intended internal/obs/traffic buckets — the generator and the live
// classifier agree on what junk means.
func TestMixMatchesTaxonomy(t *testing.T) {
	counts := Classify(Config{
		Mix:  Mix{Valid: 0.5, Bogus: 0.3, Chromium: 0.2},
		TLDs: []dnswire.Name{"com.", "net.", "org."},
		Seed: 7,
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	if total < poolSize/2 {
		t.Fatalf("classified only %d generated queries", total)
	}
	// Shares within a generous band of the configured mix (the pool is a
	// random draw of poolSize).
	frac := func(c traffic.Class) float64 { return float64(counts[c]) / float64(total) }
	if f := frac(traffic.ClassValid); f < 0.35 || f > 0.65 {
		t.Errorf("valid share %.2f, want ~0.5", f)
	}
	if f := frac(traffic.ClassBogusTLD); f < 0.15 || f > 0.45 {
		t.Errorf("bogus share %.2f, want ~0.3", f)
	}
	if f := frac(traffic.ClassChromiumProbe); f < 0.08 || f > 0.35 {
		t.Errorf("chromium share %.2f, want ~0.2", f)
	}
	if counts[traffic.ClassPTRPrivate] != 0 {
		t.Errorf("unexpected PTR-private queries: %d", counts[traffic.ClassPTRPrivate])
	}
}

// TestRepeatShareRepeats: the repeat class re-asks one fixed qname, so
// a pure-repeat pool has exactly one distinct question.
func TestRepeatShareRepeats(t *testing.T) {
	cfg := Config{Mix: Mix{Repeat: 1}, TLDs: []dnswire.Name{"com."}, Seed: 3}
	p := buildPool(&cfg, rand.New(rand.NewSource(3)))
	names := make(map[string]bool)
	for _, wire := range p.wires {
		var m dnswire.Message
		if err := m.Unpack(wire); err != nil {
			t.Fatal(err)
		}
		names[string(m.Questions[0].Name)] = true
	}
	if len(names) != 1 {
		t.Errorf("pure-repeat pool produced %d distinct names, want 1", len(names))
	}
}

// TestOpenLoopPacing: with a rate configured, the send window must
// stretch to roughly queries/QPS rather than blasting everything out.
func TestOpenLoopPacing(t *testing.T) {
	addr, _ := startAuthd(t, 1, 1)
	start := time.Now()
	res, err := Run(context.Background(), Config{
		Target: addr, Queries: 200, QPS: 2000, Workers: 1,
		Seed: 1, Drain: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 200 {
		t.Fatalf("sent %d", res.Sent)
	}
	// 200 queries at 2000 qps = 100ms schedule; allow wide slop above
	// but fail if the schedule was ignored entirely.
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Errorf("200 queries at 2000 qps finished in %v — pacing not applied", el)
	}
	if res.AchievedQPS > 4000 {
		t.Errorf("achieved %.0f qps against a 2000 qps schedule", res.AchievedQPS)
	}
}
