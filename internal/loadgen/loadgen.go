// Package loadgen is a real-socket, open-loop DNS load generator: the
// measurement half of the multi-core serving work. It drives a target
// server over actual UDP sockets with a configurable query rate and a
// B-Root-style query mix expressed in the internal/obs/traffic taxonomy
// (valid, repeated, bogus-TLD, Chromium-probe shares), and measures
// response rate and latency tails with the obs HDR histogram.
//
// Open loop means the send schedule never waits for responses: each
// worker computes the i-th departure time from the start time and the
// configured rate, sleeps until then, and sends — exactly how load
// arrives at a real root server, and the only discipline under which
// measured latency includes queueing delay honestly (a closed loop
// self-throttles when the server slows down, hiding the queue). With
// QPS 0 the generator degenerates to saturation mode: send as fast as
// the socket accepts.
//
// Each worker owns one connected UDP socket, a sender and a receiver
// goroutine, and a 65536-slot ID→departure-time table; the receiver
// matches responses by DNS message ID (the low 16 bits of a per-worker
// sequence counter), so a response is attributed to its query without
// parsing beyond the header.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rootless/internal/benchfmt"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
)

// Mix is the query composition, by share. Shares are normalized over
// their sum, so {1, 1, 1, 1} means a quarter each.
type Mix struct {
	// Valid queries name a random host under an existing TLD.
	Valid float64
	// Repeat re-asks one fixed (qname, qtype) — the redundancy an
	// upstream cache would absorb (traffic.ClassValidRepeat).
	Repeat float64
	// Bogus queries name a TLD that does not exist (traffic.ClassBogusTLD).
	Bogus float64
	// Chromium queries are single random-alpha labels, the NXDOMAIN
	// middlebox probe shape (traffic.ClassChromiumProbe).
	Chromium float64
}

// DefaultMix approximates the B-Root composition from §2.2 of the
// paper: roughly half the load never needed to reach the root.
func DefaultMix() Mix { return Mix{Valid: 0.35, Repeat: 0.20, Bogus: 0.30, Chromium: 0.15} }

func (m Mix) sum() float64 { return m.Valid + m.Repeat + m.Bogus + m.Chromium }

// Config parameterizes one load run.
type Config struct {
	// Target is the server's UDP address ("host:port").
	Target string
	// Queries is the total number of queries to send across all workers.
	Queries int
	// QPS is the aggregate open-loop send rate. 0 = unpaced (saturation).
	QPS float64
	// Workers is the number of sender sockets. 0 = 1.
	Workers int
	// Mix is the query composition. A zero Mix means DefaultMix.
	Mix Mix
	// TLDs is the valid-TLD universe for generating valid names. Empty
	// defaults to a small built-in set.
	TLDs []dnswire.Name
	// Seed makes the generated query pool reproducible.
	Seed int64
	// Drain is how long to wait for in-flight responses after the last
	// send. 0 = 500ms.
	Drain time.Duration
	// EDNS advertises an EDNS0 OPT (4096, DO clear) on every query,
	// matching what real resolvers send. Default false = plain queries.
	EDNS bool
}

// Result is the measured outcome of a run.
type Result struct {
	Sent     int64
	Received int64
	// RespRate is Received/Sent in [0, 1].
	RespRate float64
	// Elapsed covers first send to end of drain.
	Elapsed time.Duration
	// AchievedQPS is Sent/(send window) — what the open loop actually
	// sustained, which under saturation is the serving capacity bound.
	AchievedQPS float64
	// Latency tails in seconds (p50, p99, p999, p9999) from the merged
	// per-worker HDR histograms.
	P50, P99, P999, P9999 float64
	// Hist is the merged latency histogram (nanosecond values).
	Hist *obs.HDR
}

// pool is the pre-generated query wire set for one worker. Queries are
// packed once up front so the send loop does no message building.
type pool struct {
	wires [][]byte // ID field zeroed; sender patches per send
}

const poolSize = 256

// buildPool generates a worker's query pool honoring the mix shares.
func buildPool(cfg *Config, rng *rand.Rand) pool {
	mix := cfg.Mix
	if mix.sum() <= 0 {
		mix = DefaultMix()
	}
	tlds := cfg.TLDs
	if len(tlds) == 0 {
		tlds = []dnswire.Name{"com.", "net.", "org."}
	}
	randLabel := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	// One fixed repeat target per run: the shape of cacheable redundancy.
	repeatName := dnswire.Name("popular." + string(tlds[rng.Intn(len(tlds))]))
	sum := mix.sum()
	p := pool{wires: make([][]byte, 0, poolSize)}
	for i := 0; i < poolSize; i++ {
		r := rng.Float64() * sum
		var name dnswire.Name
		switch {
		case r < mix.Valid:
			name = dnswire.Name(randLabel(8) + "." + string(tlds[rng.Intn(len(tlds))]))
		case r < mix.Valid+mix.Repeat:
			name = repeatName
		case r < mix.Valid+mix.Repeat+mix.Bogus:
			name = dnswire.Name(randLabel(6) + "." + randLabel(10) + ".")
		default:
			name = dnswire.Name(randLabel(7+rng.Intn(9)) + ".")
		}
		q := dnswire.NewQuery(0, name, dnswire.TypeA)
		if cfg.EDNS {
			q.SetEDNS(dnswire.DefaultEDNSSize, false)
		}
		wire, err := q.Pack()
		if err != nil {
			continue // unpackable generated name; skip the slot
		}
		p.wires = append(p.wires, wire)
	}
	return p
}

// Classify buckets every query in a config's generated pools through
// the live-traffic classifier — the parity hook tests use to prove the
// generator and the taxonomy agree on what "junk" means.
func Classify(cfg Config) map[traffic.Class]int {
	tlds := cfg.TLDs
	if len(tlds) == 0 {
		tlds = []dnswire.Name{"com.", "net.", "org."}
	}
	set := traffic.NewTLDSet(tlds)
	counts := make(map[traffic.Class]int)
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := buildPool(&cfg, rng)
	for _, wire := range p.wires {
		var m dnswire.Message
		if err := m.Unpack(wire); err != nil || len(m.Questions) != 1 {
			continue
		}
		counts[traffic.Classify(m.Questions[0].Name, m.Questions[0].Type, set)]++
	}
	return counts
}

// worker state for one sender/receiver socket pair.
type worker struct {
	conn     *net.UDPConn
	pool     pool
	queries  int
	interval time.Duration // 0 = unpaced

	sent     atomic.Int64
	received atomic.Int64
	hist     *obs.HDR

	// sendNS[id] is the departure time (UnixNano) of the most recent
	// query with that DNS message ID; 0 = no outstanding query.
	sendNS [65536]atomic.Int64
}

func (w *worker) run(ctx context.Context, start time.Time, drain time.Duration) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64*1024)
		for {
			_ = w.conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			n, err := w.conn.Read(buf)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					continue // keep listening; the drain close ends us
				}
				return // conn closed after drain (or a real error)
			}
			if n < 2 {
				continue
			}
			id := int(buf[0])<<8 | int(buf[1])
			if dep := w.sendNS[id].Swap(0); dep != 0 {
				w.received.Add(1)
				w.hist.Record(time.Now().UnixNano() - dep)
			}
		}
	}()

	for i := 0; i < w.queries; i++ {
		if ctx.Err() != nil {
			break
		}
		if w.interval > 0 {
			// Open loop: departure times are fixed on the schedule; a
			// late sender catches up with a burst instead of shifting
			// the schedule (that would be closed-loop self-throttling).
			due := start.Add(time.Duration(i) * w.interval)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		wire := w.pool.wires[i%len(w.pool.wires)]
		id := i & 0xffff
		wire[0], wire[1] = byte(id>>8), byte(id)
		w.sendNS[id].Store(time.Now().UnixNano())
		if _, err := w.conn.Write(wire); err != nil {
			w.sendNS[id].Store(0)
			continue
		}
		w.sent.Add(1)
	}
	// Drain: leave the receiver running for late responses.
	deadline := time.Now().Add(drain)
	for time.Now().Before(deadline) && w.received.Load() < w.sent.Load() {
		time.Sleep(5 * time.Millisecond)
	}
	w.conn.Close()
	wg.Wait()
}

// Run executes the configured load against the target and reports the
// measured response rate and latency tails.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Target == "" {
		return Result{}, fmt.Errorf("loadgen: no target")
	}
	if cfg.Queries <= 0 {
		return Result{}, fmt.Errorf("loadgen: no queries")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > cfg.Queries {
		workers = cfg.Queries
	}
	drain := cfg.Drain
	if drain <= 0 {
		drain = 500 * time.Millisecond
	}

	ws := make([]*worker, workers)
	perWorker := cfg.Queries / workers
	extra := cfg.Queries % workers
	for i := range ws {
		raddr, err := net.ResolveUDPAddr("udp", cfg.Target)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: %w", err)
		}
		conn, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: %w", err)
		}
		n := perWorker
		if i < extra {
			n++
		}
		w := &worker{conn: conn, queries: n, hist: obs.NewHDR()}
		w.pool = buildPool(&cfg, rand.New(rand.NewSource(cfg.Seed+int64(i))))
		if len(w.pool.wires) == 0 {
			conn.Close()
			return Result{}, fmt.Errorf("loadgen: empty query pool")
		}
		if cfg.QPS > 0 {
			w.interval = time.Duration(float64(workers) / cfg.QPS * float64(time.Second))
		}
		ws[i] = w
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(ctx, start, drain)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Elapsed: elapsed, Hist: obs.NewHDR()}
	for _, w := range ws {
		res.Sent += w.sent.Load()
		res.Received += w.received.Load()
		res.Hist.Merge(w.hist)
	}
	if res.Sent > 0 {
		res.RespRate = float64(res.Received) / float64(res.Sent)
	}
	sendWindow := elapsed - drain
	if sendWindow <= 0 {
		sendWindow = elapsed
	}
	res.AchievedQPS = float64(res.Sent) / sendWindow.Seconds()
	tail := res.Hist.TailSeconds()
	res.P50, res.P99, res.P999, res.P9999 = tail[0], tail[1], tail[2], tail[3]
	return res, nil
}

// BenchEntry renders a result as one rootless-bench/v1 entry, so
// loadgen measurements travel through the same snapshot/diff machinery
// as go test benchmarks. Name must carry the standard Benchmark prefix.
func BenchEntry(name string, res Result) benchfmt.Entry {
	var nsPerOp float64
	if res.Sent > 0 {
		nsPerOp = float64(res.Elapsed.Nanoseconds()) / float64(res.Sent)
	}
	return benchfmt.Entry{
		Name:       name,
		Iterations: res.Sent,
		NsPerOp:    nsPerOp,
		Extra: map[string]float64{
			"served-qps": res.AchievedQPS * res.RespRate,
			"sent-qps":   res.AchievedQPS,
			"resp-rate":  res.RespRate,
			"p50-ms":     res.P50 * 1e3,
			"p99-ms":     res.P99 * 1e3,
			"p999-ms":    res.P999 * 1e3,
		},
	}
}
