package loadgen

import (
	"context"
	"testing"
	"time"
)

// BenchmarkServedQPS is the t_serve measurement: real-socket saturation
// load against an in-process packed-answer authd, across engine shapes.
// Iterations are queries; the figures to read are the Extra metrics —
// served-qps (achieved rate x response rate, the serving capacity
// bound), resp-rate, p999-ms, and msgs-per-read (recvmmsg
// amortization). ns/op includes the post-send drain window and, on a
// single-core runner, scheduler time-slicing between the generator and
// the server — it is in benchfmt's wallClockUnreliable set, as is the
// derived udpengine_scaling_4w ratio: with one core, four workers
// cannot beat one (there is no second core to win), so the committed
// snapshot records the ratio honestly and flags it rather than
// fabricating the >= 2.5x a multi-core host shows.
func BenchmarkServedQPS(b *testing.B) {
	configs := []struct {
		name           string
		workers, batch int
	}{
		{"Workers1", 1, 1},
		{"Workers4", 4, 1},
		{"Workers4Batch8", 4, 8},
	}
	for _, tc := range configs {
		b.Run(tc.name, func(b *testing.B) {
			addr, eng := startAuthd(b, tc.workers, tc.batch)
			b.ResetTimer()
			res, err := Run(context.Background(), Config{
				Target:  addr,
				Queries: b.N,
				Workers: tc.workers, // drive with as many senders as servers
				Seed:    1,
				EDNS:    true,
				Drain:   200 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if res.Sent == 0 {
				b.Fatal("nothing sent")
			}
			b.ReportMetric(res.AchievedQPS*res.RespRate, "served-qps")
			b.ReportMetric(res.RespRate, "resp-rate")
			b.ReportMetric(res.P999*1e3, "p999-ms")
			st := eng.Stats()
			if st.Total.Reads > 0 {
				b.ReportMetric(float64(st.Total.Packets)/float64(st.Total.Reads), "msgs-per-read")
			}
		})
	}
}
