package zonediff

import (
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/rootzone"
	"rootless/internal/zone"
)

func d(y int, m time.Month, day int) time.Time {
	return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
}

func build(t *testing.T, at time.Time) *zone.Zone {
	t.Helper()
	z, err := rootzone.Build(at)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestDiffIdenticalZones(t *testing.T) {
	a := build(t, d(2019, time.April, 1))
	b := build(t, d(2019, time.April, 1))
	c := Diff(a, b)
	if len(c.AddedTLDs) != 0 || len(c.RemovedTLDs) != 0 || len(c.ChangedTLDs) != 0 ||
		c.AddedRRs != 0 || c.RemovedRRs != 0 {
		t.Errorf("identical zones diff: %+v", c)
	}
}

func TestDiffAcrossApril2019(t *testing.T) {
	a := build(t, d(2019, time.April, 1))
	b := build(t, d(2019, time.April, 30))
	c := Diff(a, b)
	// The paper: one TLD deleted during April 2019; only the rotating
	// TLDs change their records within the month.
	if len(c.RemovedTLDs) != 1 {
		t.Errorf("removed TLDs = %v, want exactly 1", c.RemovedTLDs)
	}
	if len(c.ChangedTLDs) > 6 {
		t.Errorf("changed TLDs = %d, want only the ~5 rotating ones", len(c.ChangedTLDs))
	}
}

func TestReachabilityFreshZone(t *testing.T) {
	a := build(t, d(2019, time.April, 1))
	r := CheckReachability(a, a)
	if r.Reachable != r.Total || len(r.Broken) != 0 {
		t.Errorf("fresh zone: %d/%d reachable, broken %v", r.Reachable, r.Total, r.Broken)
	}
	if r.ReachableShare() != 1 {
		t.Errorf("share = %f", r.ReachableShare())
	}
}

func TestReachabilityMonthStale(t *testing.T) {
	// §5.2: a zone one month out of date keeps 99.6% of TLDs reachable —
	// all but the ~5 rotating ones.
	stale := build(t, d(2019, time.April, 1))
	truth := build(t, d(2019, time.May, 1))
	r := CheckReachability(stale, truth)
	share := r.ReachableShare()
	if share < 0.99 || share >= 1.0 {
		t.Errorf("month-stale share = %.4f, want ~0.996", share)
	}
	brokenOld := 0
	for _, tld := range r.Broken {
		if info, ok := rootzone.Find(tld); ok && info.Rotating {
			brokenOld++
		}
	}
	if brokenOld < 4 {
		t.Errorf("expected the rotating TLDs among broken; got %v", r.Broken)
	}
}

func TestReachabilityTwoWeeksStale(t *testing.T) {
	// §5.2: rotation overlap guarantees full reachability within 14 days.
	stale := build(t, d(2019, time.April, 1))
	truth := build(t, d(2019, time.April, 14))
	r := CheckReachability(stale, truth)
	for _, tld := range r.Broken {
		if info, ok := rootzone.Find(tld); ok && info.Rotating {
			t.Errorf("rotating TLD %s broken at 14 days despite overlap", tld)
		}
	}
	if r.ReachableShare() < 0.995 {
		t.Errorf("14-day share = %.4f", r.ReachableShare())
	}
}

func TestReachabilityYearStale(t *testing.T) {
	// §5.2: a year-old zone loses ~50 TLDs (~3.3%): churners, rotators
	// and new additions.
	stale := build(t, d(2018, time.April, 1))
	truth := build(t, d(2019, time.April, 1))
	r := CheckReachability(stale, truth)
	share := r.ReachableShare()
	if share < 0.93 || share > 0.99 {
		t.Errorf("year-stale share = %.4f, want ~0.967", share)
	}
	// Paper: ~50 TLDs (3.3%) lose reachability over a year — the rotating
	// TLDs plus the annual churners.
	if n := len(r.Broken); n < 25 || n > 90 {
		t.Errorf("broken after a year = %d, want ~50", n)
	}
	// llc. was added 2018-02-23, so it exists in both — never missing.
	for _, tld := range r.Missing {
		if tld == "llc." {
			t.Error("llc. should exist in the April 2018 zone")
		}
	}
}

func TestRecentAdditions(t *testing.T) {
	old := build(t, d(2018, time.February, 1))
	new := build(t, d(2018, time.April, 11))
	adds := RecentAdditions(old, new)
	if len(adds) == 0 {
		t.Fatal("no recent additions found")
	}
	// llc. was added 2018-02-23 and must appear with NS + glue (glue may
	// live under a shared registry-operator domain rather than nic.llc).
	llcHosts := make(map[dnswire.Name]bool)
	var llcNS, llcGlue bool
	for _, rr := range adds {
		if rr.Name == "llc." && rr.Type == dnswire.TypeNS {
			llcNS = true
			llcHosts[rr.Data.(dnswire.NS).Host] = true
		}
	}
	for _, rr := range adds {
		if rr.Type == dnswire.TypeA && llcHosts[rr.Name] {
			llcGlue = true
		}
	}
	if !llcNS || !llcGlue {
		t.Errorf("llc records missing from additions (NS=%v glue=%v)", llcNS, llcGlue)
	}
	// The supplement is small relative to the zone (the §5.3 point).
	if len(adds) > new.Len()/10 {
		t.Errorf("additions file too large: %d records vs zone %d", len(adds), new.Len())
	}

	// Applying the additions to the stale zone makes the new TLDs
	// reachable.
	patched := old.Clone()
	if err := ApplyAdditions(patched, adds); err != nil {
		t.Fatal(err)
	}
	r := CheckReachability(patched, new)
	for _, tld := range r.Missing {
		if tld == "llc." {
			t.Error("llc. still missing after applying additions")
		}
	}
}

func TestDiffDetectsAdditionsAndChanges(t *testing.T) {
	old := build(t, d(2018, time.February, 1))
	new := build(t, d(2018, time.April, 11))
	c := Diff(old, new)
	found := false
	for _, tld := range c.AddedTLDs {
		if tld == "llc." {
			found = true
		}
	}
	if !found {
		t.Errorf("llc. not in added TLDs: %v", c.AddedTLDs)
	}
	if c.AddedRRs == 0 {
		t.Error("no added records across two months")
	}
}
