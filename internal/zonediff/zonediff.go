// Package zonediff compares root zone snapshots: which TLDs were added,
// removed or renumbered, and — the §5.2 question — whether a resolver
// holding a stale zone copy could still reach each TLD. It also builds
// the paper's §5.3 "recent additions" supplement.
package zonediff

import (
	"sort"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// Changes summarizes the difference between two zone snapshots.
type Changes struct {
	AddedTLDs   []dnswire.Name
	RemovedTLDs []dnswire.Name
	// ChangedTLDs have the same delegation but different records
	// (NS set, glue addresses, or DS).
	ChangedTLDs []dnswire.Name
	// AddedRRs/RemovedRRs count record-level changes across the zone.
	AddedRRs   int
	RemovedRRs int
}

// tldRecords maps each TLD to the presentation strings of its records
// (including glue for its NS hosts).
func tldRecords(z *zone.Zone) map[dnswire.Name]map[string]bool {
	idx := zone.BuildTLDIndex(z)
	out := make(map[dnswire.Name]map[string]bool)
	for _, tld := range z.Delegations() {
		set := make(map[string]bool)
		for _, rr := range idx.Lookup(tld) {
			set[rr.String()] = true
		}
		out[tld] = set
	}
	return out
}

// Diff computes the changes from old to new.
func Diff(old, new *zone.Zone) Changes {
	var c Changes
	oldTLDs := tldRecords(old)
	newTLDs := tldRecords(new)
	for tld, newSet := range newTLDs {
		oldSet, ok := oldTLDs[tld]
		if !ok {
			c.AddedTLDs = append(c.AddedTLDs, tld)
			continue
		}
		same := len(oldSet) == len(newSet)
		if same {
			for s := range newSet {
				if !oldSet[s] {
					same = false
					break
				}
			}
		}
		if !same {
			c.ChangedTLDs = append(c.ChangedTLDs, tld)
		}
	}
	for tld := range oldTLDs {
		if _, ok := newTLDs[tld]; !ok {
			c.RemovedTLDs = append(c.RemovedTLDs, tld)
		}
	}
	oldAll := recordSet(old)
	newAll := recordSet(new)
	for s := range newAll {
		if !oldAll[s] {
			c.AddedRRs++
		}
	}
	for s := range oldAll {
		if !newAll[s] {
			c.RemovedRRs++
		}
	}
	sortNames(c.AddedTLDs)
	sortNames(c.RemovedTLDs)
	sortNames(c.ChangedTLDs)
	return c
}

func recordSet(z *zone.Zone) map[string]bool {
	out := make(map[string]bool)
	for _, rr := range z.Records() {
		out[rr.String()] = true
	}
	return out
}

func sortNames(names []dnswire.Name) {
	sort.Slice(names, func(i, j int) bool { return names[i].Compare(names[j]) < 0 })
}

// Reachability reports, for each TLD delegated in truth, whether a
// resolver holding the stale zone could still contact it: some nameserver
// address in the stale zone's records for the TLD must still be a valid
// address of the TLD's current nameservers. This is exactly the paper's
// "at least one nameserver (by IP address) that is constant" criterion.
type Reachability struct {
	Total     int
	Reachable int
	// Broken lists the TLDs a stale-zone resolver can no longer reach.
	Broken []dnswire.Name
	// Missing lists TLDs that did not exist in the stale zone at all
	// (new additions), a subset of Broken.
	Missing []dnswire.Name
}

// ReachableShare returns the fraction of truth's TLDs still reachable.
func (r Reachability) ReachableShare() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Reachable) / float64(r.Total)
}

// CheckReachability evaluates a stale zone copy against the current truth.
func CheckReachability(stale, truth *zone.Zone) Reachability {
	staleAddrs := tldAddresses(stale)
	truthAddrs := tldAddresses(truth)
	var r Reachability
	tlds := make([]dnswire.Name, 0, len(truthAddrs))
	for tld := range truthAddrs {
		tlds = append(tlds, tld)
	}
	sortNames(tlds)
	for _, tld := range tlds {
		r.Total++
		old, existed := staleAddrs[tld]
		if !existed {
			r.Broken = append(r.Broken, tld)
			r.Missing = append(r.Missing, tld)
			continue
		}
		ok := false
		for addr := range old {
			if truthAddrs[tld][addr] {
				ok = true
				break
			}
		}
		if ok {
			r.Reachable++
		} else {
			r.Broken = append(r.Broken, tld)
		}
	}
	return r
}

// tldAddresses maps each delegated TLD to the set of its nameserver
// addresses (glue) in the zone.
func tldAddresses(z *zone.Zone) map[dnswire.Name]map[string]bool {
	out := make(map[dnswire.Name]map[string]bool)
	for _, tld := range z.Delegations() {
		addrs := make(map[string]bool)
		for _, ns := range z.Lookup(tld, dnswire.TypeNS) {
			host := ns.Data.(dnswire.NS).Host
			for _, rr := range z.Lookup(host, dnswire.TypeA) {
				addrs[rr.Data.String()] = true
			}
			for _, rr := range z.Lookup(host, dnswire.TypeAAAA) {
				addrs[rr.Data.String()] = true
			}
		}
		out[tld] = addrs
	}
	return out
}

// RecentAdditions builds the paper's §5.3 "recent additions" supplement:
// every record belonging to TLDs present in new but not in old. A
// resolver with a stale zone plus this small file can reach new TLDs
// without waiting for its next full refresh.
func RecentAdditions(old, new *zone.Zone) []dnswire.RR {
	oldTLDs := make(map[dnswire.Name]bool)
	for _, tld := range old.Delegations() {
		oldTLDs[tld] = true
	}
	idx := zone.BuildTLDIndex(new)
	var out []dnswire.RR
	for _, tld := range new.Delegations() {
		if !oldTLDs[tld] {
			out = append(out, idx.Lookup(tld)...)
		}
	}
	return out
}

// ApplyAdditions merges a recent-additions supplement into a zone copy.
func ApplyAdditions(z *zone.Zone, additions []dnswire.RR) error {
	for _, rr := range additions {
		if err := z.Add(rr); err != nil {
			return err
		}
	}
	return nil
}

// RRsetDelta computes the RRset-level difference from old to new — the
// unit of IXFR-style signed deltas and Janus-style incremental
// verification. An RRset that changed in any way appears as a removal of
// its key plus a full replacement set in added; RRSIGs ride along as
// ordinary RRsets (all signatures at a name group under one key, so a
// re-signed name replaces its signature set wholesale). Removed keys are
// sorted canonically and added records follow the new zone's RRset order,
// so the delta is deterministic for a given (old, new) pair.
func RRsetDelta(old, new *zone.Zone) (removed []dnswire.RRsetKey, added []dnswire.RR) {
	_, oldSets := dnswire.GroupRRsets(old.Records())
	newOrder, newSets := dnswire.GroupRRsets(new.Records())
	for key, oldSet := range oldSets {
		newSet, ok := newSets[key]
		if !ok || !sameRRset(oldSet, newSet) {
			removed = append(removed, key)
		}
	}
	for _, key := range newOrder {
		if oldSet, ok := oldSets[key]; ok && sameRRset(oldSet, newSets[key]) {
			continue
		}
		added = append(added, newSets[key]...)
	}
	sort.Slice(removed, func(i, j int) bool {
		if c := removed[i].Name.Compare(removed[j].Name); c != 0 {
			return c < 0
		}
		return removed[i].Type < removed[j].Type
	})
	return removed, added
}

// sameRRset reports whether two RRsets hold the same records (order
// independent; TTL and RDATA both count).
func sameRRset(a, b []dnswire.RR) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]int, len(a))
	for _, rr := range a {
		set[rr.String()]++
	}
	for _, rr := range b {
		set[rr.String()]--
		if set[rr.String()] < 0 {
			return false
		}
	}
	return true
}
