package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
	"rootless/internal/zonediff"
)

// Signed delta chains: the Janus-style incremental distribution path.
// Instead of re-fetching and re-verifying the whole zone on every refresh,
// a mirror serves one DeltaBundle per published serial step — the RRsets
// that changed, signed by the publisher's KSK, with hash links binding the
// delta to exactly the zone snapshots it connects. A client several
// serials behind walks the chain (O(delta) per step); any break — a serial
// out of the retention window, a link that doesn't match the installed
// copy, a bad signature — falls back to the full bundle.

// DeltaSource is implemented by sources that can serve signed delta
// chains; the refresher probes for it and prefers O(delta) catch-up over
// full-bundle fetches.
type DeltaSource interface {
	// FetchDeltaChain returns the consecutive deltas leading from
	// fromSerial to the source's current serial, oldest first. An empty
	// chain means the client is already current.
	FetchDeltaChain(ctx context.Context, fromSerial uint32) ([]*DeltaBundle, error)
}

// DeltaBundle is one link of the signed delta chain: the RRset-level
// changes from one published serial to the next, plus the chain digests
// that pin both endpoints, under one detached KSK signature. Verification
// is incremental: the signature covers only the delta, and only the
// changed RRsets' RRSIGs are re-checked after application.
type DeltaBundle struct {
	FromSerial uint32
	ToSerial   uint32
	// FromChain/ToChain are the chain anchors (serial + zone digest
	// commitments) of the two snapshots; a client applies a delta only
	// when FromChain matches the anchor of its installed copy, and adopts
	// the signed ToChain afterwards.
	FromChain [32]byte
	ToChain   [32]byte
	// Removed lists RRsets deleted (or replaced) wholesale.
	Removed []dnswire.RRsetKey
	// Added holds the new and replacement RRsets in master-file form.
	Added []byte
	// Signature is the publisher's detached signature over the payload.
	Signature dnssec.DetachedSignature
}

const deltaMagic = 0x52544C44 // "RTLD"

// Errors from delta application; any of them means "fall back to a full
// bundle" for a client.
var (
	ErrDeltaSerial   = errors.New("dist: delta does not apply to the installed serial")
	ErrChainMismatch = errors.New("dist: delta chain link does not match the installed zone")
)

// ChainAnchor commits to one zone snapshot: a hash over the serial and the
// ZONEMD-style zone digest. Full-bundle installs compute it directly; delta
// installs adopt the signed ToChain, so the chain stays rooted in a digest
// the publisher vouched for.
func ChainAnchor(z *zone.Zone) [32]byte {
	h := sha256.New()
	h.Write([]byte("rootless-chain-v1"))
	var s [4]byte
	binary.BigEndian.PutUint32(s[:], z.Serial())
	h.Write(s[:])
	h.Write(dnssec.ZoneDigest(z))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// MakeDeltaBundle builds and signs the delta from old to new. fromChain is
// the chain anchor of old (normally ChainAnchor(old); passed in so a
// publisher can keep the chain without retaining every snapshot).
func MakeDeltaBundle(old, new *zone.Zone, fromChain [32]byte, signer *dnssec.Signer) (*DeltaBundle, error) {
	removed, added := zonediff.RRsetDelta(old, new)
	var sb strings.Builder
	for _, rr := range added {
		sb.WriteString(rr.String())
		sb.WriteByte('\n')
	}
	d := &DeltaBundle{
		FromSerial: old.Serial(),
		ToSerial:   new.Serial(),
		FromChain:  fromChain,
		ToChain:    ChainAnchor(new),
		Removed:    removed,
		Added:      []byte(sb.String()),
	}
	d.Signature = signer.SignFile(d.payload())
	return d, nil
}

// payload is the signed portion: everything except the signature itself.
func (d *DeltaBundle) payload() []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(u32[:], v)
		buf.Write(u32[:])
	}
	put32(d.FromSerial)
	put32(d.ToSerial)
	buf.Write(d.FromChain[:])
	buf.Write(d.ToChain[:])
	put32(uint32(len(d.Removed)))
	var u16 [2]byte
	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(u16[:], v)
		buf.Write(u16[:])
	}
	for _, key := range d.Removed {
		name := string(key.Name)
		put16(uint16(len(name)))
		buf.WriteString(name)
		put16(uint16(key.Type))
		put16(uint16(key.Class))
	}
	put32(uint32(len(d.Added)))
	buf.Write(d.Added)
	return buf.Bytes()
}

// Encode serializes the delta: magic, keytag, sig, then the signed payload.
func (d *DeltaBundle) Encode() []byte {
	var buf bytes.Buffer
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:], deltaMagic)
	binary.BigEndian.PutUint16(hdr[4:], d.Signature.KeyTag)
	binary.BigEndian.PutUint32(hdr[6:], uint32(len(d.Signature.Signature)))
	buf.Write(hdr[:])
	buf.Write(d.Signature.Signature)
	buf.Write(d.payload())
	return buf.Bytes()
}

// DecodeDeltaBundle parses an encoded delta bundle.
func DecodeDeltaBundle(data []byte) (*DeltaBundle, error) {
	if len(data) < 10 {
		return nil, errors.New("dist: short delta bundle")
	}
	if binary.BigEndian.Uint32(data) != deltaMagic {
		return nil, errors.New("dist: bad delta magic")
	}
	sigLen := int(binary.BigEndian.Uint32(data[6:]))
	if sigLen < 0 || 10+sigLen > len(data) {
		return nil, errors.New("dist: truncated delta signature")
	}
	d := &DeltaBundle{
		Signature: dnssec.DetachedSignature{
			KeyTag:    binary.BigEndian.Uint16(data[4:]),
			Signature: append([]byte(nil), data[10:10+sigLen]...),
		},
	}
	p := data[10+sigLen:]
	if len(p) < 76 {
		return nil, errors.New("dist: short delta payload")
	}
	d.FromSerial = binary.BigEndian.Uint32(p[0:])
	d.ToSerial = binary.BigEndian.Uint32(p[4:])
	copy(d.FromChain[:], p[8:40])
	copy(d.ToChain[:], p[40:72])
	nRemoved := int(binary.BigEndian.Uint32(p[72:]))
	p = p[76:]
	if nRemoved < 0 || nRemoved > len(p)/6 {
		return nil, errors.New("dist: bad delta removal count")
	}
	d.Removed = make([]dnswire.RRsetKey, 0, nRemoved)
	for i := 0; i < nRemoved; i++ {
		if len(p) < 2 {
			return nil, errors.New("dist: truncated delta removal")
		}
		nameLen := int(binary.BigEndian.Uint16(p))
		if len(p) < 2+nameLen+4 {
			return nil, errors.New("dist: truncated delta removal")
		}
		d.Removed = append(d.Removed, dnswire.RRsetKey{
			Name:  dnswire.Name(p[2 : 2+nameLen]),
			Type:  dnswire.Type(binary.BigEndian.Uint16(p[2+nameLen:])),
			Class: dnswire.Class(binary.BigEndian.Uint16(p[2+nameLen+2:])),
		})
		p = p[2+nameLen+4:]
	}
	if len(p) < 4 {
		return nil, errors.New("dist: truncated delta additions")
	}
	addLen := int(binary.BigEndian.Uint32(p))
	if addLen < 0 || addLen != len(p)-4 {
		return nil, errors.New("dist: delta additions length mismatch")
	}
	d.Added = append([]byte(nil), p[4:]...)
	return d, nil
}

// DeltaApplyStats reports the incremental-verification cost of one delta —
// the numbers behind the O(zone) → O(delta) rows in t_dist.
type DeltaApplyStats struct {
	RemovedSets int
	AddedRRs    int
	// SigChecks counts Ed25519 verifications performed: one for the
	// detached delta signature, one for the anchored DNSKEY RRset, and one
	// per changed RRset — versus one per RRset in the zone for a full
	// verification.
	SigChecks int
}

// Apply verifies the delta against the installed zone and the trust
// anchors, applies it to a clone, and incrementally verifies the result:
// the detached signature covers the delta payload (including both chain
// anchors), the apex DNSKEY RRset must carry a signature from an anchored
// key, and every changed authoritative RRset must verify against the
// zone's DNSKEYs. Unchanged RRsets are not re-checked, and the whole-zone
// digest is not recomputed — that is the point: the full O(zone) check
// happens on full-bundle fetches, each delta costs O(delta).
func (d *DeltaBundle) Apply(cur *zone.Zone, curChain [32]byte, anchors []dnswire.DNSKEY, now time.Time) (*zone.Zone, DeltaApplyStats, error) {
	var st DeltaApplyStats
	if cur.Serial() != d.FromSerial {
		return nil, st, fmt.Errorf("%w: delta %d→%d, installed %d",
			ErrDeltaSerial, d.FromSerial, d.ToSerial, cur.Serial())
	}
	if curChain != d.FromChain {
		return nil, st, ErrChainMismatch
	}

	payload := d.payload()
	verified := false
	var sigErr error = dnssec.ErrNoDNSKEY
	for _, key := range anchors {
		if key.KeyTag() != d.Signature.KeyTag {
			continue
		}
		st.SigChecks++
		if sigErr = dnssec.VerifyFile(payload, d.Signature, key); sigErr == nil {
			verified = true
		}
		break
	}
	if !verified {
		return nil, st, fmt.Errorf("dist: delta signature: %w", sigErr)
	}

	next := cur.Clone()
	for _, key := range d.Removed {
		next.Remove(key.Name, key.Type)
		st.RemovedSets++
	}
	var addedKeys []dnswire.RRsetKey
	if len(d.Added) > 0 {
		az, err := zone.Parse(bytes.NewReader(d.Added), dnswire.Root)
		if err != nil {
			return nil, st, fmt.Errorf("dist: delta additions: %w", err)
		}
		rrs := az.Records()
		for _, rr := range rrs {
			if err := next.Add(rr); err != nil {
				return nil, st, fmt.Errorf("dist: applying delta: %w", err)
			}
			st.AddedRRs++
		}
		addedKeys, _ = dnswire.GroupRRsets(rrs)
	}
	if next.Serial() != d.ToSerial {
		return nil, st, fmt.Errorf("dist: delta result serial %d, want %d", next.Serial(), d.ToSerial)
	}

	if err := verifyIncremental(next, addedKeys, anchors, now, &st); err != nil {
		return nil, st, err
	}
	return next, st, nil
}

// verifyIncremental re-checks only what the delta touched: the anchored
// apex DNSKEY RRset (always — it is what every other check chains from)
// plus each added/replaced authoritative RRset's RRSIG.
func verifyIncremental(z *zone.Zone, added []dnswire.RRsetKey, anchors []dnswire.DNSKEY, now time.Time, st *DeltaApplyStats) error {
	apex := z.Origin
	keyRRs := z.Lookup(apex, dnswire.TypeDNSKEY)
	if len(keyRRs) == 0 {
		return dnssec.ErrNoDNSKEY
	}
	zoneKeys := make([]dnswire.DNSKEY, len(keyRRs))
	for i, rr := range keyRRs {
		zoneKeys[i] = rr.Data.(dnswire.DNSKEY)
	}
	apexSigs := z.Lookup(apex, dnswire.TypeRRSIG)
	anchored := false
	var lastErr error = dnssec.ErrNoRRSIG
	for _, sigRR := range apexSigs {
		sig := sigRR.Data.(dnswire.RRSIG)
		if sig.TypeCovered != dnswire.TypeDNSKEY {
			continue
		}
		st.SigChecks++
		if err := dnssec.VerifyRRset(keyRRs, sigRR, anchors, now); err == nil {
			anchored = true
			break
		} else {
			lastErr = err
		}
	}
	if !anchored {
		return fmt.Errorf("dist: delta DNSKEY rrset not anchored: %w", lastErr)
	}

	for _, key := range added {
		if key.Type == dnswire.TypeRRSIG || key.Type == dnswire.TypeDNSKEY {
			continue // RRSIGs are checked with their sets; DNSKEY just was
		}
		if key.Name != apex {
			if key.Type == dnswire.TypeNS {
				continue // delegation: not authoritative, carries no RRSIG
			}
			if isGlueRRset(z, key.Name, key.Type) {
				continue
			}
		}
		rrset := z.Lookup(key.Name, key.Type)
		if len(rrset) == 0 {
			continue // removed again within the same delta text
		}
		verified := false
		lastErr = dnssec.ErrNoRRSIG
		for _, sigRR := range z.Lookup(key.Name, dnswire.TypeRRSIG) {
			if sigRR.Data.(dnswire.RRSIG).TypeCovered != key.Type {
				continue
			}
			st.SigChecks++
			if err := dnssec.VerifyRRset(rrset, sigRR, zoneKeys, now); err == nil {
				verified = true
				break
			} else {
				lastErr = err
			}
		}
		if !verified {
			return fmt.Errorf("dist: delta rrset %s/%s: %w", key.Name, key.Type, lastErr)
		}
	}
	return nil
}

// isGlueRRset reports whether (name, typ) is a glue address RRset: an
// A/AAAA set at or below a delegation cut.
func isGlueRRset(z *zone.Zone, name dnswire.Name, typ dnswire.Type) bool {
	if typ != dnswire.TypeA && typ != dnswire.TypeAAAA {
		return false
	}
	for n := name; !n.IsRoot() && n != z.Origin; n = n.Parent() {
		if len(z.Lookup(n, dnswire.TypeNS)) > 0 {
			return true
		}
	}
	return false
}
