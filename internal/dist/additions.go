package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
	"rootless/internal/zonediff"
)

// The paper's §5.3 mitigation for new-TLD lag: "augment the root zone
// file with a small 'recent additions' or 'diffs' file to allow resolvers
// to cheaply and fairly constantly obtain information about newly added
// TLDs." AdditionsBundle is that file — the records of every TLD added
// since a base serial, signed so it can be applied between full
// refreshes without weakening the trust story.

// AdditionsBundle carries the recent-additions supplement.
type AdditionsBundle struct {
	// FromSerial is the base snapshot the additions apply on top of.
	FromSerial uint32
	// ToSerial is the snapshot the additions bring the TLD set up to.
	ToSerial uint32
	// Text is the additions in master-file form.
	Text []byte
	// Signature is the publisher's detached signature over Text.
	Signature dnssec.DetachedSignature
}

const additionsMagic = 0x52544C41 // "RTLA"

// MakeAdditions builds the signed supplement between two snapshots.
func MakeAdditions(old, new *zone.Zone, signer *dnssec.Signer) (*AdditionsBundle, error) {
	adds := zonediff.RecentAdditions(old, new)
	var sb strings.Builder
	for _, rr := range adds {
		sb.WriteString(rr.String())
		sb.WriteByte('\n')
	}
	text := []byte(sb.String())
	return &AdditionsBundle{
		FromSerial: old.Serial(),
		ToSerial:   new.Serial(),
		Text:       text,
		Signature:  signer.SignFile(text),
	}, nil
}

// Verify checks the signature and parses the additions.
func (a *AdditionsBundle) Verify(ksk dnswire.DNSKEY) ([]dnswire.RR, error) {
	if err := dnssec.VerifyFile(a.Text, a.Signature, ksk); err != nil {
		return nil, fmt.Errorf("dist: additions signature: %w", err)
	}
	z, err := zone.Parse(bytes.NewReader(a.Text), dnswire.Root)
	if err != nil {
		return nil, fmt.Errorf("dist: additions contents: %w", err)
	}
	return z.Records(), nil
}

// Encode serializes the bundle.
func (a *AdditionsBundle) Encode() []byte {
	var buf bytes.Buffer
	var hdr [18]byte
	binary.BigEndian.PutUint32(hdr[0:], additionsMagic)
	binary.BigEndian.PutUint32(hdr[4:], a.FromSerial)
	binary.BigEndian.PutUint32(hdr[8:], a.ToSerial)
	binary.BigEndian.PutUint16(hdr[12:], a.Signature.KeyTag)
	binary.BigEndian.PutUint32(hdr[14:], uint32(len(a.Signature.Signature)))
	buf.Write(hdr[:])
	buf.Write(a.Signature.Signature)
	buf.Write(a.Text)
	return buf.Bytes()
}

// DecodeAdditions parses an encoded bundle.
func DecodeAdditions(data []byte) (*AdditionsBundle, error) {
	if len(data) < 18 {
		return nil, errors.New("dist: short additions bundle")
	}
	if binary.BigEndian.Uint32(data) != additionsMagic {
		return nil, errors.New("dist: bad additions magic")
	}
	sigLen := int(binary.BigEndian.Uint32(data[14:]))
	if 18+sigLen > len(data) {
		return nil, errors.New("dist: truncated additions signature")
	}
	return &AdditionsBundle{
		FromSerial: binary.BigEndian.Uint32(data[4:]),
		ToSerial:   binary.BigEndian.Uint32(data[8:]),
		Signature: dnssec.DetachedSignature{
			KeyTag:    binary.BigEndian.Uint16(data[12:]),
			Signature: append([]byte(nil), data[18:18+sigLen]...),
		},
		Text: append([]byte(nil), data[18+sigLen:]...),
	}, nil
}

// FetchAdditions retrieves the additions from a mirror for the given base
// serial.
func (c *HTTPClient) FetchAdditions(ctx context.Context, fromSerial uint32) (*AdditionsBundle, error) {
	data, _, err := c.get(ctx, fmt.Sprintf("/additions?from=%d", fromSerial))
	if err != nil {
		return nil, err
	}
	return DecodeAdditions(data)
}
