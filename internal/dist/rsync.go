// Package dist distributes root zone files — the replacement the paper
// proposes for the root nameserver service. It provides four transports
// (§3 "Root Zone Distribution"): an HTTP mirror, DNS AXFR (via the
// authserver package), an rsync-style block-delta protocol that ships
// only changes between snapshots, and a gossip/peer-to-peer simulation.
// A Refresher drives the fetch → verify → install loop on the paper's
// TTL-derived schedule (refresh at X+42 h, retry through hour 48).
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultBlockSize is the rsync block granularity. Root-zone master files
// change in record-sized units, so ~700-byte blocks balance signature size
// against delta granularity.
const DefaultBlockSize = 704

// weakSum is the rolling Adler-style checksum (Tridgell §3).
type weakSum struct {
	a, b uint32
	n    int
}

func newWeakSum(data []byte) weakSum {
	var w weakSum
	w.n = len(data)
	for i, c := range data {
		w.a += uint32(c)
		w.b += uint32(len(data)-i) * uint32(c)
	}
	return w
}

// roll slides the window one byte: drop out, add in.
func (w *weakSum) roll(out, in byte) {
	w.a = w.a - uint32(out) + uint32(in)
	w.b = w.b - uint32(w.n)*uint32(out) + w.a
}

func (w weakSum) sum() uint32 { return w.a&0xFFFF | w.b<<16 }

// strongSum is the short collision-resistant block hash.
func strongSum(data []byte) [8]byte {
	h := sha256.Sum256(data)
	var out [8]byte
	copy(out[:], h[:8])
	return out
}

// BlockSig is the per-block signature of a file the receiver already has.
type BlockSig struct {
	BlockSize int
	Weak      []uint32
	Strong    [][8]byte
	TotalLen  int
}

// SignBlocks computes the receiver-side signature of old data.
func SignBlocks(data []byte, blockSize int) BlockSig {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	sig := BlockSig{BlockSize: blockSize, TotalLen: len(data)}
	for off := 0; off < len(data); off += blockSize {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		block := data[off:end]
		sig.Weak = append(sig.Weak, newWeakSum(block).sum())
		sig.Strong = append(sig.Strong, strongSum(block))
	}
	return sig
}

// Op is one delta instruction: copy a block the receiver has, or insert
// literal bytes.
type Op struct {
	// Block is the index into the receiver's blocks; -1 for a literal.
	Block   int
	Literal []byte
}

// ComputeDelta produces the instruction stream turning the receiver's old
// data (described by sig) into new data.
func ComputeDelta(sig BlockSig, newData []byte) []Op {
	bs := sig.BlockSize
	weakIndex := make(map[uint32][]int, len(sig.Weak))
	for i, w := range sig.Weak {
		weakIndex[w] = append(weakIndex[w], i)
	}

	var ops []Op
	var lit []byte
	flushLit := func() {
		if len(lit) > 0 {
			ops = append(ops, Op{Block: -1, Literal: lit})
			lit = nil
		}
	}

	i := 0
	var w weakSum
	haveSum := false
	for i < len(newData) {
		if len(newData)-i < bs {
			// Tail shorter than a block: try to match the (short) final
			// block, else emit as literal.
			tail := newData[i:]
			matched := false
			if len(sig.Weak) > 0 {
				last := len(sig.Weak) - 1
				lastLen := sig.TotalLen - last*bs
				if lastLen == len(tail) && sig.Weak[last] == newWeakSum(tail).sum() &&
					sig.Strong[last] == strongSum(tail) {
					flushLit()
					ops = append(ops, Op{Block: last})
					matched = true
				}
			}
			if !matched {
				lit = append(lit, tail...)
			}
			flushLit()
			return ops
		}
		if !haveSum {
			w = newWeakSum(newData[i : i+bs])
			haveSum = true
		}
		match := -1
		if candidates, ok := weakIndex[w.sum()]; ok {
			strong := strongSum(newData[i : i+bs])
			for _, c := range candidates {
				// Only full-sized blocks match here.
				if cEnd := (c + 1) * bs; cEnd <= sig.TotalLen && sig.Strong[c] == strong {
					match = c
					break
				}
			}
		}
		if match >= 0 {
			flushLit()
			ops = append(ops, Op{Block: match})
			i += bs
			haveSum = false
			continue
		}
		lit = append(lit, newData[i])
		if i+bs < len(newData) {
			w.roll(newData[i], newData[i+bs])
		} else {
			haveSum = false
		}
		i++
	}
	flushLit()
	return ops
}

// ApplyDelta reconstructs the new data from the receiver's old data and
// the delta.
func ApplyDelta(old []byte, sig BlockSig, ops []Op) ([]byte, error) {
	bs := sig.BlockSize
	var out []byte
	for _, op := range ops {
		if op.Block < 0 {
			out = append(out, op.Literal...)
			continue
		}
		start := op.Block * bs
		end := start + bs
		if start >= len(old) {
			return nil, fmt.Errorf("dist: delta references block %d beyond data", op.Block)
		}
		if end > len(old) {
			end = len(old)
		}
		out = append(out, old[start:end]...)
	}
	return out, nil
}

// DeltaSize returns the encoded wire size of a delta: literals dominate;
// block copies cost 4 bytes.
func DeltaSize(ops []Op) int {
	n := 0
	for _, op := range ops {
		if op.Block >= 0 {
			n += 4
		} else {
			n += 4 + len(op.Literal)
		}
	}
	return n
}

// EncodeDelta serializes a delta: sequence of (int32 tag, payload).
// Tag >= 0: block index. Tag < 0: literal of length -tag follows.
func EncodeDelta(ops []Op) []byte {
	var buf bytes.Buffer
	for _, op := range ops {
		var tag [4]byte
		if op.Block >= 0 {
			binary.BigEndian.PutUint32(tag[:], uint32(op.Block))
			buf.Write(tag[:])
		} else {
			binary.BigEndian.PutUint32(tag[:], uint32(0x80000000|len(op.Literal)))
			buf.Write(tag[:])
			buf.Write(op.Literal)
		}
	}
	return buf.Bytes()
}

// DecodeDelta parses an encoded delta.
func DecodeDelta(data []byte) ([]Op, error) {
	var ops []Op
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			return nil, errors.New("dist: truncated delta tag")
		}
		tag := binary.BigEndian.Uint32(data[off:])
		off += 4
		if tag&0x80000000 == 0 {
			ops = append(ops, Op{Block: int(tag)})
			continue
		}
		n := int(tag & 0x7FFFFFFF)
		if off+n > len(data) {
			return nil, errors.New("dist: truncated delta literal")
		}
		ops = append(ops, Op{Block: -1, Literal: append([]byte(nil), data[off:off+n]...)})
		off += n
	}
	return ops, nil
}
