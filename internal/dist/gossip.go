package dist

import (
	"context"
	"errors"
	"math/rand"

	"rootless/internal/obs"
)

// Gossip simulates the §3 peer-to-peer distribution option: resolvers
// form a random mesh and exchange the newest bundle in rounds. The
// simulation answers the deployment question "how quickly does a new
// zone reach everyone, and what does it cost per peer?".
type Gossip struct {
	rng   *rand.Rand
	peers []*gossipPeer
	// Fanout is how many random neighbours each peer pushes to per round.
	Fanout int

	rounds    int
	transfers int64
	bytes     int64
}

type gossipPeer struct {
	bundle *Bundle
}

// NewGossip builds a mesh of n peers, none holding a bundle yet.
func NewGossip(n int, seed int64) *Gossip {
	g := &Gossip{rng: rand.New(rand.NewSource(seed)), Fanout: 3}
	for i := 0; i < n; i++ {
		g.peers = append(g.peers, &gossipPeer{})
	}
	return g
}

// Seed gives the bundle to k initial peers (the publisher's direct
// mirrors).
func (g *Gossip) Seed(b *Bundle, k int) {
	for i := 0; i < k && i < len(g.peers); i++ {
		g.peers[i].bundle = b
	}
}

// Coverage returns the fraction of peers holding the newest serial.
func (g *Gossip) Coverage(serial uint32) float64 {
	if len(g.peers) == 0 {
		return 0
	}
	n := 0
	for _, p := range g.peers {
		if p.bundle != nil && p.bundle.Serial >= serial {
			n++
		}
	}
	return float64(n) / float64(len(g.peers))
}

// Round performs one gossip round: every infected peer pushes to Fanout
// random neighbours. Returns the number of new peers reached.
func (g *Gossip) Round() int {
	g.rounds++
	newly := 0
	// Snapshot infected set so this round's infections spread next round.
	var infected []*gossipPeer
	for _, p := range g.peers {
		if p.bundle != nil {
			infected = append(infected, p)
		}
	}
	for _, p := range infected {
		for f := 0; f < g.Fanout; f++ {
			q := g.peers[g.rng.Intn(len(g.peers))]
			if q.bundle == nil || q.bundle.Serial < p.bundle.Serial {
				q.bundle = p.bundle
				g.transfers++
				g.bytes += int64(len(p.bundle.Compressed))
				newly++
			}
		}
	}
	return newly
}

// RoundsToCoverage runs rounds until the target coverage (0–1] of serial
// is reached, returning how many rounds it took. Errors if the mesh
// stops making progress first.
func (g *Gossip) RoundsToCoverage(serial uint32, target float64) (int, error) {
	start := g.rounds
	for g.Coverage(serial) < target {
		if g.Round() == 0 && g.Coverage(serial) < target {
			return g.rounds - start, errors.New("dist: gossip stalled")
		}
		if g.rounds-start > 10_000 {
			return g.rounds - start, errors.New("dist: gossip did not converge")
		}
	}
	return g.rounds - start, nil
}

// GossipStats reports totals.
type GossipStats struct {
	Rounds    int
	Transfers int64
	Bytes     int64
}

// Stats returns the totals so far.
func (g *Gossip) Stats() GossipStats {
	return GossipStats{Rounds: g.rounds, Transfers: g.transfers, Bytes: g.bytes}
}

// Collect implements obs.Collector. Gossip is a single-threaded
// simulation; collect between rounds (or after the run), not during one.
func (g *Gossip) Collect(reg *obs.Registry) {
	obs.SetCountersFromStruct(reg, "rootless_gossip", "gossip mesh totals", nil, g.Stats())
	reg.Gauge("rootless_gossip_peers", "peers in the mesh", nil).Set(float64(len(g.peers)))
}

// PeerSource lets a gossip peer serve as a Refresher Source.
func (g *Gossip) PeerSource(i int) Source {
	return SourceFunc(func(context.Context) (*Bundle, error) {
		if i < 0 || i >= len(g.peers) || g.peers[i].bundle == nil {
			return nil, errors.New("dist: peer has no bundle")
		}
		return g.peers[i].bundle, nil
	})
}
