package dist

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// TrustAnchors is an RFC 5011-style trust anchor store for the bundle
// verification path. A newly observed KSK (SEP bit, published in the apex
// DNSKEY RRset of a zone that verified under an existing anchor) enters an
// add-hold-down period; once it has been continuously visible for the
// hold-down it becomes a valid anchor, giving the publisher a dual-anchor
// overlap window to switch signing keys without stranding any resolver. A
// key published with the revoke bit — and proving possession by signing
// the DNSKEY RRset with its revoked form — is permanently distrusted.
type TrustAnchors struct {
	mu       sync.Mutex
	holdDown time.Duration
	anchors  map[string]*anchorEntry // keyed by public key bytes

	rollovers   int64
	revocations int64
}

// AnchorState is the lifecycle state of one key in the store.
type AnchorState int

// Anchor lifecycle states.
const (
	// AnchorPending: seen in a verified zone, waiting out add-hold-down.
	AnchorPending AnchorState = iota
	// AnchorValid: trusted for bundle and delta signature verification.
	AnchorValid
	// AnchorRevoked: permanently distrusted (revoke bit + possession proof).
	AnchorRevoked
)

func (s AnchorState) String() string {
	switch s {
	case AnchorPending:
		return "pending"
	case AnchorValid:
		return "valid"
	case AnchorRevoked:
		return "revoked"
	}
	return "unknown"
}

type anchorEntry struct {
	key       dnswire.DNSKEY // as-trusted form (revoke bit clear)
	state     AnchorState
	firstSeen time.Time
}

// DefaultAddHoldDown is the RFC 5011 §2.4.1 add-hold-down default.
const DefaultAddHoldDown = 30 * 24 * time.Hour

// ErrRevokedKey rejects material signed by a revoked trust anchor.
var ErrRevokedKey = errors.New("dist: signed by a revoked key")

// NewTrustAnchors builds a store with the given add-hold-down (0 means
// DefaultAddHoldDown) seeded with already-trusted anchors.
func NewTrustAnchors(addHoldDown time.Duration, initial ...dnswire.DNSKEY) *TrustAnchors {
	if addHoldDown <= 0 {
		addHoldDown = DefaultAddHoldDown
	}
	t := &TrustAnchors{holdDown: addHoldDown, anchors: make(map[string]*anchorEntry)}
	for _, key := range initial {
		t.anchors[string(key.PublicKey)] = &anchorEntry{key: key, state: AnchorValid}
	}
	return t
}

// ValidKeys returns the currently valid anchors, deterministically ordered.
func (t *TrustAnchors) ValidKeys() []dnswire.DNSKEY {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []dnswire.DNSKEY
	for _, e := range t.anchors {
		if e.state == AnchorValid {
			out = append(out, e.key)
		}
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i].PublicKey) < string(out[j].PublicKey) })
	return out
}

// VerifyDetached checks a detached signature against the store: any valid
// anchor may have signed it; a signature by a revoked anchor is reported
// as ErrRevokedKey (the mid-roll compromise case), not as an unknown key.
func (t *TrustAnchors) VerifyDetached(blob []byte, sig dnssec.DetachedSignature) error {
	t.mu.Lock()
	var candidate *anchorEntry
	for _, e := range t.anchors {
		if e.key.KeyTag() == sig.KeyTag {
			candidate = e
			break
		}
	}
	t.mu.Unlock()
	if candidate == nil {
		return dnssec.ErrNoDNSKEY
	}
	switch candidate.state {
	case AnchorRevoked:
		return fmt.Errorf("%w (tag %d)", ErrRevokedKey, sig.KeyTag)
	case AnchorPending:
		return fmt.Errorf("dist: key %d still in add-hold-down: %w", sig.KeyTag, dnssec.ErrNoDNSKEY)
	}
	return dnssec.VerifyFile(blob, sig, candidate.key)
}

// Observe feeds the store one verified zone's apex DNSKEY RRset — the
// RFC 5011 active-refresh probe. New SEP keys enter hold-down; keys past
// their hold-down are promoted to valid anchors; keys carrying the revoke
// bit that prove possession (an RRSIG over the DNSKEY RRset by the revoked
// form) are permanently distrusted; pending keys that disappear restart
// their hold-down from scratch. Only call this with a zone that already
// verified under a current anchor — the store trusts its input.
func (t *TrustAnchors) Observe(z *zone.Zone, now time.Time) {
	apex := z.Origin
	keyRRs := z.Lookup(apex, dnswire.TypeDNSKEY)
	if len(keyRRs) == 0 {
		return
	}
	sigRRs := z.Lookup(apex, dnswire.TypeRRSIG)

	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[string]bool)
	for _, rr := range keyRRs {
		key := rr.Data.(dnswire.DNSKEY)
		if key.Flags&dnswire.DNSKEYFlagSEP == 0 {
			continue // ZSKs are zone material, not anchor candidates
		}
		pk := string(key.PublicKey)
		seen[pk] = true
		entry := t.anchors[pk]
		if key.Flags&dnswire.DNSKEYFlagRevoke != 0 {
			if entry == nil || entry.state == AnchorRevoked {
				continue
			}
			if revokeProven(keyRRs, sigRRs, key, now) {
				entry.state = AnchorRevoked
				t.revocations++
			}
			continue
		}
		switch {
		case entry == nil:
			t.anchors[pk] = &anchorEntry{key: key, state: AnchorPending, firstSeen: now}
		case entry.state == AnchorPending && now.Sub(entry.firstSeen) >= t.holdDown:
			entry.state = AnchorValid
			t.rollovers++
		}
	}
	// A pending key that vanished restarts its hold-down next time it shows.
	for pk, entry := range t.anchors {
		if entry.state == AnchorPending && !seen[pk] {
			delete(t.anchors, pk)
		}
	}
}

// revokeProven checks the RFC 5011 possession proof: the DNSKEY RRset must
// carry a signature verifiable by the revoked key form itself.
func revokeProven(keyRRs, sigRRs []dnswire.RR, revoked dnswire.DNSKEY, now time.Time) bool {
	candidates := []dnswire.DNSKEY{revoked}
	for _, sigRR := range sigRRs {
		sig := sigRR.Data.(dnswire.RRSIG)
		if sig.TypeCovered != dnswire.TypeDNSKEY || sig.KeyTag != revoked.KeyTag() {
			continue
		}
		if dnssec.VerifyRRset(keyRRs, sigRR, candidates, now) == nil {
			return true
		}
	}
	return false
}

// TrustState summarizes the store for State/statusz exports.
type TrustState struct {
	Valid, Pending, Revoked int
	// Rollovers counts pending keys promoted to valid anchors.
	Rollovers int64
	// Revocations counts anchors permanently distrusted.
	Revocations int64
}

// State returns a snapshot of the store.
func (t *TrustAnchors) State() TrustState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TrustState{Rollovers: t.rollovers, Revocations: t.revocations}
	for _, e := range t.anchors {
		switch e.state {
		case AnchorValid:
			st.Valid++
		case AnchorPending:
			st.Pending++
		case AnchorRevoked:
			st.Revoked++
		}
	}
	return st
}
