package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// Bundle is the distributed artifact: one root zone snapshot as a
// gzip-compressed master file plus the detached whole-file signature the
// paper suggests as the fast-validation optimisation. Consumers that want
// the full per-RRset check parse the zone and run dnssec.VerifyZone.
type Bundle struct {
	Serial     uint32
	Compressed []byte
	Signature  dnssec.DetachedSignature
}

const bundleMagic = 0x52544C52 // "RTLR"

// MakeBundle compresses and signs a zone.
func MakeBundle(z *zone.Zone, signer *dnssec.Signer) (*Bundle, error) {
	blob, err := zone.Compress(z)
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Serial:     z.Serial(),
		Compressed: blob,
		Signature:  signer.SignFile(blob),
	}, nil
}

// Verify checks the bundle's detached signature against the publisher's
// KSK and returns the parsed zone. Tampered or mis-keyed bundles fail.
func (b *Bundle) Verify(ksk dnswire.DNSKEY) (*zone.Zone, error) {
	if err := dnssec.VerifyFile(b.Compressed, b.Signature, ksk); err != nil {
		return nil, fmt.Errorf("dist: bundle signature: %w", err)
	}
	z, err := zone.Decompress(b.Compressed, dnswire.Root)
	if err != nil {
		return nil, fmt.Errorf("dist: bundle contents: %w", err)
	}
	if z.Serial() != b.Serial {
		return nil, fmt.Errorf("dist: bundle serial %d != zone serial %d", b.Serial, z.Serial())
	}
	return z, nil
}

// VerifyFull validates the bundle with the complete DNSSEC path — chain
// from a DS trust anchor plus zone digest — instead of the detached
// signature shortcut.
func (b *Bundle) VerifyFull(anchor dnswire.DS, now time.Time) (*zone.Zone, error) {
	z, err := zone.Decompress(b.Compressed, dnswire.Root)
	if err != nil {
		return nil, err
	}
	if err := dnssec.VerifyZone(z, anchor, now); err != nil {
		return nil, err
	}
	return z, nil
}

// Encode serializes the bundle: magic, serial, keytag, sig, blob.
func (b *Bundle) Encode() []byte {
	var buf bytes.Buffer
	var hdr [14]byte
	binary.BigEndian.PutUint32(hdr[0:], bundleMagic)
	binary.BigEndian.PutUint32(hdr[4:], b.Serial)
	binary.BigEndian.PutUint16(hdr[8:], b.Signature.KeyTag)
	binary.BigEndian.PutUint32(hdr[10:], uint32(len(b.Signature.Signature)))
	buf.Write(hdr[:])
	buf.Write(b.Signature.Signature)
	buf.Write(b.Compressed)
	return buf.Bytes()
}

// DecodeBundle parses an encoded bundle.
func DecodeBundle(data []byte) (*Bundle, error) {
	if len(data) < 14 {
		return nil, errors.New("dist: short bundle")
	}
	if binary.BigEndian.Uint32(data) != bundleMagic {
		return nil, errors.New("dist: bad bundle magic")
	}
	sigLen := int(binary.BigEndian.Uint32(data[10:]))
	if 14+sigLen > len(data) {
		return nil, errors.New("dist: truncated bundle signature")
	}
	return &Bundle{
		Serial: binary.BigEndian.Uint32(data[4:]),
		Signature: dnssec.DetachedSignature{
			KeyTag:    binary.BigEndian.Uint16(data[8:]),
			Signature: append([]byte(nil), data[14:14+sigLen]...),
		},
		Compressed: append([]byte(nil), data[14+sigLen:]...),
	}, nil
}
