package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// Bundle is the distributed artifact: one root zone snapshot as a
// gzip-compressed master file plus the detached whole-file signature the
// paper suggests as the fast-validation optimisation. Consumers that want
// the full per-RRset check parse the zone and run dnssec.VerifyZone.
type Bundle struct {
	Serial     uint32
	Compressed []byte
	Signature  dnssec.DetachedSignature
	// Supersession, when present, is the publisher's signed statement that
	// this bundle replaces a specific higher-or-equal serial — the only way
	// a verifying client will ever step its serial backwards (an emergency
	// unpublish). Without it, rollback protection rejects any bundle whose
	// serial is not strictly newer than the installed copy.
	Supersession *Supersession
}

// Supersession is a signed serial-withdrawal statement.
type Supersession struct {
	// Replaces is the serial being withdrawn.
	Replaces uint32
	// Signature covers (Replaces, Serial) under the publisher's KSK.
	Signature dnssec.DetachedSignature
}

const (
	bundleMagic   = 0x52544C52 // "RTLR"
	bundleMagicV2 = 0x52544C53 // "RTLS": bundle with supersession statement
)

// supersessionBlob is the byte string a supersession signature covers.
func supersessionBlob(replaces, serial uint32) []byte {
	blob := make([]byte, 0, 30)
	blob = append(blob, "rootless-supersede-v1"...)
	blob = binary.BigEndian.AppendUint32(blob, replaces)
	blob = binary.BigEndian.AppendUint32(blob, serial)
	return blob
}

// Supersede attaches a signed statement that this bundle replaces the
// given serial, authorizing verifying clients to roll back to it.
func (b *Bundle) Supersede(replaces uint32, signer *dnssec.Signer) {
	b.Supersession = &Supersession{
		Replaces:  replaces,
		Signature: signer.SignFile(supersessionBlob(replaces, b.Serial)),
	}
}

// VerifySupersession checks the supersession statement against a key.
func (b *Bundle) VerifySupersession(ksk dnswire.DNSKEY) error {
	if b.Supersession == nil {
		return errors.New("dist: bundle has no supersession statement")
	}
	return dnssec.VerifyFile(supersessionBlob(b.Supersession.Replaces, b.Serial),
		b.Supersession.Signature, ksk)
}

// MakeBundle compresses and signs a zone.
func MakeBundle(z *zone.Zone, signer *dnssec.Signer) (*Bundle, error) {
	blob, err := zone.Compress(z)
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Serial:     z.Serial(),
		Compressed: blob,
		Signature:  signer.SignFile(blob),
	}, nil
}

// Verify checks the bundle's detached signature against the publisher's
// KSK and returns the parsed zone. Tampered or mis-keyed bundles fail.
func (b *Bundle) Verify(ksk dnswire.DNSKEY) (*zone.Zone, error) {
	if err := dnssec.VerifyFile(b.Compressed, b.Signature, ksk); err != nil {
		return nil, fmt.Errorf("dist: bundle signature: %w", err)
	}
	z, err := zone.Decompress(b.Compressed, dnswire.Root)
	if err != nil {
		return nil, fmt.Errorf("dist: bundle contents: %w", err)
	}
	if z.Serial() != b.Serial {
		return nil, fmt.Errorf("dist: bundle serial %d != zone serial %d", b.Serial, z.Serial())
	}
	return z, nil
}

// VerifyFull validates the bundle with the complete DNSSEC path — chain
// from a DS trust anchor plus zone digest — instead of the detached
// signature shortcut.
func (b *Bundle) VerifyFull(anchor dnswire.DS, now time.Time) (*zone.Zone, error) {
	z, err := zone.Decompress(b.Compressed, dnswire.Root)
	if err != nil {
		return nil, err
	}
	if err := dnssec.VerifyZone(z, anchor, now); err != nil {
		return nil, err
	}
	return z, nil
}

// Encode serializes the bundle: magic, serial, keytag, sig, an optional
// supersession block (v2 magic only), then the blob.
func (b *Bundle) Encode() []byte {
	var buf bytes.Buffer
	var hdr [14]byte
	magic := uint32(bundleMagic)
	if b.Supersession != nil {
		magic = bundleMagicV2
	}
	binary.BigEndian.PutUint32(hdr[0:], magic)
	binary.BigEndian.PutUint32(hdr[4:], b.Serial)
	binary.BigEndian.PutUint16(hdr[8:], b.Signature.KeyTag)
	binary.BigEndian.PutUint32(hdr[10:], uint32(len(b.Signature.Signature)))
	buf.Write(hdr[:])
	buf.Write(b.Signature.Signature)
	if b.Supersession != nil {
		var sup [10]byte
		binary.BigEndian.PutUint32(sup[0:], b.Supersession.Replaces)
		binary.BigEndian.PutUint16(sup[4:], b.Supersession.Signature.KeyTag)
		binary.BigEndian.PutUint32(sup[6:], uint32(len(b.Supersession.Signature.Signature)))
		buf.Write(sup[:])
		buf.Write(b.Supersession.Signature.Signature)
	}
	buf.Write(b.Compressed)
	return buf.Bytes()
}

// DecodeBundle parses an encoded bundle (either wire version).
func DecodeBundle(data []byte) (*Bundle, error) {
	if len(data) < 14 {
		return nil, errors.New("dist: short bundle")
	}
	magic := binary.BigEndian.Uint32(data)
	if magic != bundleMagic && magic != bundleMagicV2 {
		return nil, errors.New("dist: bad bundle magic")
	}
	sigLen := int(binary.BigEndian.Uint32(data[10:]))
	if sigLen < 0 || 14+sigLen > len(data) {
		return nil, errors.New("dist: truncated bundle signature")
	}
	b := &Bundle{
		Serial: binary.BigEndian.Uint32(data[4:]),
		Signature: dnssec.DetachedSignature{
			KeyTag:    binary.BigEndian.Uint16(data[8:]),
			Signature: append([]byte(nil), data[14:14+sigLen]...),
		},
	}
	rest := data[14+sigLen:]
	if magic == bundleMagicV2 {
		if len(rest) < 10 {
			return nil, errors.New("dist: truncated supersession")
		}
		supLen := int(binary.BigEndian.Uint32(rest[6:]))
		if supLen < 0 || 10+supLen > len(rest) {
			return nil, errors.New("dist: truncated supersession signature")
		}
		b.Supersession = &Supersession{
			Replaces: binary.BigEndian.Uint32(rest[0:]),
			Signature: dnssec.DetachedSignature{
				KeyTag:    binary.BigEndian.Uint16(rest[4:]),
				Signature: append([]byte(nil), rest[10:10+supLen]...),
			},
		}
		rest = rest[10+supLen:]
	}
	b.Compressed = append([]byte(nil), rest...)
	return b, nil
}
