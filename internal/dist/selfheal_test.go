package dist

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// signedTestZone builds and DNSSEC-signs a small root zone.
func signedTestZone(t *testing.T, s *dnssec.Signer, serial uint32, extra string, now time.Time) *zone.Zone {
	t.Helper()
	z := testZone(t, serial, extra)
	if err := s.SignZone(z, now); err != nil {
		t.Fatal(err)
	}
	return z
}

// quantizedSigner returns a signer whose re-signings keep unchanged RRset
// signatures stable — what makes consecutive-serial deltas small.
func quantizedSigner(t *testing.T) *dnssec.Signer {
	t.Helper()
	s := testSigner(t)
	s.Quantize = 24 * time.Hour
	s.Validity = 14 * 24 * time.Hour
	return s
}

// ---- signed delta chains ----

func TestDeltaBundleRoundTrip(t *testing.T) {
	s := quantizedSigner(t)
	now := time.Unix(1555000000, 0)
	z1 := signedTestZone(t, s, 1, "", now)
	z2 := signedTestZone(t, s, 2, "new. 172800 IN NS ns.new.\nns.new. 172800 IN A 192.0.2.9\n", now)

	d, err := MakeDeltaBundle(z1, z2, ChainAnchor(z1), s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDeltaBundle(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.FromSerial != 1 || got.ToSerial != 2 {
		t.Fatalf("serials %d→%d, want 1→2", got.FromSerial, got.ToSerial)
	}
	if got.FromChain != d.FromChain || got.ToChain != d.ToChain {
		t.Fatal("chain anchors did not survive the round trip")
	}
	if len(got.Removed) != len(d.Removed) || !bytes.Equal(got.Added, d.Added) {
		t.Fatal("delta contents did not survive the round trip")
	}
	if !bytes.Equal(got.Encode(), d.Encode()) {
		t.Fatal("re-encode mismatch")
	}
}

func TestDeltaApplyIncremental(t *testing.T) {
	s := quantizedSigner(t)
	now := time.Unix(1555000000, 0)
	z1 := signedTestZone(t, s, 1, "", now)
	z2 := signedTestZone(t, s, 2, "new. 172800 IN NS ns.new.\nns.new. 172800 IN A 192.0.2.9\n", now)
	anchors := []dnswire.DNSKEY{s.KSK.DNSKEY}

	d, err := MakeDeltaBundle(z1, z2, ChainAnchor(z1), s)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := d.Apply(z1, ChainAnchor(z1), anchors, now)
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial() != 2 {
		t.Fatalf("applied serial %d, want 2", got.Serial())
	}
	if zone.Text(got) != zone.Text(z2) {
		t.Fatal("delta application did not reproduce the target zone")
	}
	// Incremental verification must cost O(delta), not O(zone): the full
	// zone has one RRSIG per authoritative RRset, the delta touched a
	// handful of sets.
	full := 0
	for _, rr := range z2.Records() {
		if rr.Type == dnswire.TypeRRSIG {
			full++
		}
	}
	if st.SigChecks >= full {
		t.Fatalf("incremental verify did %d sig checks, full zone has %d RRSIGs", st.SigChecks, full)
	}
	if st.SigChecks < 2 {
		t.Fatalf("suspiciously few sig checks (%d): delta + anchored DNSKEY at minimum", st.SigChecks)
	}
}

func TestDeltaApplyRejections(t *testing.T) {
	s := quantizedSigner(t)
	now := time.Unix(1555000000, 0)
	z1 := signedTestZone(t, s, 1, "", now)
	z2 := signedTestZone(t, s, 2, "", now)
	z3 := signedTestZone(t, s, 3, "", now)
	anchors := []dnswire.DNSKEY{s.KSK.DNSKEY}

	d12, err := MakeDeltaBundle(z1, z2, ChainAnchor(z1), s)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong installed serial.
	if _, _, err := d12.Apply(z3, ChainAnchor(z3), anchors, now); !errors.Is(err, ErrDeltaSerial) {
		t.Fatalf("serial mismatch: got %v, want ErrDeltaSerial", err)
	}
	// Right serial, wrong chain anchor (forked history).
	if _, _, err := d12.Apply(z1, ChainAnchor(z2), anchors, now); !errors.Is(err, ErrChainMismatch) {
		t.Fatalf("chain mismatch: got %v, want ErrChainMismatch", err)
	}
	// Tampered payload: flip the target serial after signing.
	forged := *d12
	forged.ToSerial = 9
	if _, _, err := forged.Apply(z1, ChainAnchor(z1), anchors, now); err == nil {
		t.Fatal("tampered delta applied")
	}
	// Signed by a stranger.
	evil := quantizedSigner(t)
	evil.KSK, _ = dnssec.GenerateKey(dnswire.Root, true, detRand{rand.New(rand.NewSource(99))})
	d, err := MakeDeltaBundle(z1, z2, ChainAnchor(z1), evil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Apply(z1, ChainAnchor(z1), anchors, now); err == nil {
		t.Fatal("stranger-signed delta applied")
	}
}

// fakeDeltaSource wraps a Source with a scripted delta chain.
type fakeDeltaSource struct {
	Source
	chain func(ctx context.Context, from uint32) ([]*DeltaBundle, error)
}

func (f *fakeDeltaSource) FetchDeltaChain(ctx context.Context, from uint32) ([]*DeltaBundle, error) {
	return f.chain(ctx, from)
}

func TestRefresherDeltaCatchUp(t *testing.T) {
	s := quantizedSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	m := NewMirror(s, 16)
	if err := m.Publish(signedTestZone(t, s, 1, "", clk.now())); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()

	var installed []uint32
	r, err := NewRefresher(RefresherConfig{
		Source:  NewHTTPClient(srv.URL),
		KSK:     s.KSK.DNSKEY,
		Install: func(z *zone.Zone) error { installed = append(installed, z.Serial()); return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap full fetch failed")
	}
	if st := r.State(); st.DeltaInstalls != 0 || st.Serial != 1 {
		t.Fatalf("bootstrap state %+v", st)
	}

	// One serial ahead: catch up over a single delta link.
	clk.advance(43 * time.Hour)
	if err := m.Publish(signedTestZone(t, s, 2, "new. 172800 IN NS ns.new.\nns.new. 172800 IN A 192.0.2.9\n", clk.now())); err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("delta refresh failed")
	}
	st := r.State()
	if st.Serial != 2 || st.DeltaInstalls != 1 {
		t.Fatalf("after one link: serial %d deltaInstalls %d", st.Serial, st.DeltaInstalls)
	}

	// Several serials behind: walk the multi-link chain in one tick.
	clk.advance(43 * time.Hour)
	for serial := uint32(3); serial <= 5; serial++ {
		if err := m.Publish(signedTestZone(t, s, serial, "", clk.now())); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Tick(context.Background()) {
		t.Fatal("chain catch-up failed")
	}
	st = r.State()
	if st.Serial != 5 || st.DeltaInstalls != 2 || st.ChainFallbacks != 0 {
		t.Fatalf("after chain walk: %+v", st)
	}
	if full, _ := r.Sources().Source(0).(*HTTPClient).Fetches(); full != 1 {
		t.Fatalf("full fetches %d, want only the bootstrap", full)
	}
	if installed[len(installed)-1] != 5 {
		t.Fatalf("installs %v", installed)
	}
}

func TestRefresherDeltaChainBreakFallsBack(t *testing.T) {
	s := quantizedSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	now := clk.now()
	z1 := signedTestZone(t, s, 1, "", now)
	z2 := signedTestZone(t, s, 2, "", now)
	z3 := signedTestZone(t, s, 3, "", now)
	d12, err := MakeDeltaBundle(z1, z2, ChainAnchor(z1), s)
	if err != nil {
		t.Fatal(err)
	}

	current := z1
	full := SourceFunc(func(context.Context) (*Bundle, error) { return MakeBundle(current, s) })
	// A truncated chain: the mirror claims to lead to serial 3 but only
	// serves the 1→2 link, so the walk ends below the advertised serial —
	// and the 2→3 link it does serve next time is for the wrong serial.
	src := &fakeDeltaSource{Source: full, chain: func(_ context.Context, from uint32) ([]*DeltaBundle, error) {
		return []*DeltaBundle{d12, d12}, nil
	}}

	var installed []uint32
	r, err := NewRefresher(RefresherConfig{
		Source:  src,
		KSK:     s.KSK.DNSKEY,
		Install: func(z *zone.Zone) error { installed = append(installed, z.Serial()); return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}
	clk.advance(43 * time.Hour)
	current = z3
	if !r.Tick(context.Background()) {
		t.Fatal("refresh failed")
	}
	st := r.State()
	if st.Serial != 3 {
		t.Fatalf("serial %d, want 3 via full-bundle fallback", st.Serial)
	}
	if st.ChainFallbacks != 1 || st.DeltaInstalls != 0 {
		t.Fatalf("chainFallbacks %d deltaInstalls %d, want 1/0", st.ChainFallbacks, st.DeltaInstalls)
	}
}

// ---- trust-anchor lifecycle ----

func TestTrustAnchorRollover(t *testing.T) {
	oldSigner := quantizedSigner(t)
	newKSK, err := dnssec.GenerateKey(dnswire.Root, true, detRand{rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	holdDown := 48 * time.Hour
	ta := NewTrustAnchors(holdDown, oldSigner.KSK.DNSKEY)
	now := time.Unix(1555000000, 0)

	// Pre-publish phase: the incoming KSK appears in the DNSKEY RRset of a
	// zone still signed by the outgoing key.
	oldSigner.ExtraDNSKEYs = []dnswire.DNSKEY{newKSK.DNSKEY}
	ta.Observe(signedTestZone(t, oldSigner, 1, "", now), now)
	if st := ta.State(); st.Valid != 1 || st.Pending != 1 {
		t.Fatalf("after pre-publish: %+v", st)
	}
	// Still inside add-hold-down: signatures by the new key don't verify.
	blob := []byte("bundle bytes")
	newSig := dnssec.DetachedSignature{KeyTag: newKSK.KeyTag(),
		Signature: oldSigner.SignFile(blob).Signature}
	newSigner := &dnssec.Signer{KSK: newKSK, ZSK: oldSigner.ZSK,
		Validity: oldSigner.Validity, Quantize: oldSigner.Quantize}
	newSig = newSigner.SignFile(blob)
	if err := ta.VerifyDetached(blob, newSig); err == nil {
		t.Fatal("pending key verified a signature inside hold-down")
	}

	// Key stays continuously visible through the hold-down: promoted.
	mid := now.Add(holdDown / 2)
	ta.Observe(signedTestZone(t, oldSigner, 2, "", mid), mid)
	end := now.Add(holdDown)
	ta.Observe(signedTestZone(t, oldSigner, 3, "", end), end)
	if st := ta.State(); st.Valid != 2 || st.Rollovers != 1 {
		t.Fatalf("after hold-down: %+v", st)
	}
	if err := ta.VerifyDetached(blob, newSig); err != nil {
		t.Fatalf("promoted anchor rejected: %v", err)
	}

	// Revocation: the old key publishes its revoked form and proves
	// possession by signing the DNSKEY RRset with it.
	revoked := oldSigner.KSK.Revoked()
	newSigner.ExtraDNSKEYs = []dnswire.DNSKEY{revoked.DNSKEY}
	newSigner.ExtraKSKSigners = []*dnssec.Key{revoked}
	late := end.Add(time.Hour)
	ta.Observe(signedTestZone(t, newSigner, 4, "", late), late)
	st := ta.State()
	if st.Revoked != 1 || st.Valid != 1 || st.Revocations != 1 {
		t.Fatalf("after revocation: %+v", st)
	}
	oldSig := oldSigner.SignFile(blob)
	if err := ta.VerifyDetached(blob, oldSig); !errors.Is(err, ErrRevokedKey) {
		t.Fatalf("revoked key signature: got %v, want ErrRevokedKey", err)
	}
	if err := ta.VerifyDetached(blob, newSig); err != nil {
		t.Fatalf("surviving anchor rejected after revocation: %v", err)
	}
}

func TestTrustAnchorPendingRestartsOnDisappearance(t *testing.T) {
	s := quantizedSigner(t)
	candidate, err := dnssec.GenerateKey(dnswire.Root, true, detRand{rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	holdDown := 48 * time.Hour
	ta := NewTrustAnchors(holdDown, s.KSK.DNSKEY)
	now := time.Unix(1555000000, 0)

	s.ExtraDNSKEYs = []dnswire.DNSKEY{candidate.DNSKEY}
	ta.Observe(signedTestZone(t, s, 1, "", now), now)
	// The candidate vanishes (an attacker-injected key won't stay
	// published): its hold-down restarts from scratch.
	s.ExtraDNSKEYs = nil
	mid := now.Add(holdDown / 2)
	ta.Observe(signedTestZone(t, s, 2, "", mid), mid)
	s.ExtraDNSKEYs = []dnswire.DNSKEY{candidate.DNSKEY}
	end := now.Add(holdDown)
	ta.Observe(signedTestZone(t, s, 3, "", end), end)
	if st := ta.State(); st.Valid != 1 || st.Pending != 1 || st.Rollovers != 0 {
		t.Fatalf("flapping key must restart hold-down: %+v", st)
	}
}

func TestTrustAnchorRevokeNeedsPossessionProof(t *testing.T) {
	s := quantizedSigner(t)
	ta := NewTrustAnchors(time.Hour, s.KSK.DNSKEY)
	now := time.Unix(1555000000, 0)

	// The revoked form appears in the RRset but nothing is signed by it —
	// anyone can publish bytes; revocation requires the RFC 5011 proof.
	revoked := s.KSK.Revoked()
	s.ExtraDNSKEYs = []dnswire.DNSKEY{revoked.DNSKEY}
	ta.Observe(signedTestZone(t, s, 1, "", now), now)
	if st := ta.State(); st.Revoked != 0 || st.Valid != 1 {
		t.Fatalf("revocation without possession proof took effect: %+v", st)
	}
}

// ---- rollback protection ----

func TestRefresherRollbackProtection(t *testing.T) {
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	serve := uint32(5)
	var supersede bool
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		b, err := MakeBundle(testZone(t, serve, ""), s)
		if err == nil && supersede {
			b.Supersede(5, s)
		}
		return b, err
	})
	var installed []uint32
	r, err := NewRefresher(RefresherConfig{
		Source:  src,
		KSK:     s.KSK.DNSKEY,
		Install: func(z *zone.Zone) error { installed = append(installed, z.Serial()); return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}

	// A correctly signed but older bundle must not install.
	clk.advance(43 * time.Hour)
	serve = 3
	if r.Tick(context.Background()) {
		t.Fatal("rollback bundle installed")
	}
	st := r.State()
	if st.Serial != 5 || st.RollbacksRejected != 1 {
		t.Fatalf("after rollback attempt: serial %d rejected %d", st.Serial, st.RollbacksRejected)
	}
	if !errors.Is(st.LastErr, ErrRollback) {
		t.Fatalf("LastErr = %v, want ErrRollback", st.LastErr)
	}

	// The same serial with a signed supersession is an authorized
	// emergency unpublish: it installs and steps the serial backwards.
	// (4h clears the jittered retry delay of at most 3·Retry.)
	clk.advance(4 * time.Hour)
	serve, supersede = 3, true
	if !r.Tick(context.Background()) {
		t.Fatal("superseding bundle refused")
	}
	st = r.State()
	if st.Serial != 3 || st.SupersessionInstalls != 1 {
		t.Fatalf("after supersession: serial %d installs %d", st.Serial, st.SupersessionInstalls)
	}
	if installed[len(installed)-1] != 3 {
		t.Fatalf("installs %v", installed)
	}
}

func TestRollbackDoesNotResetHoldDown(t *testing.T) {
	s := quantizedSigner(t)
	ksk2, err := dnssec.GenerateKey(dnswire.Root, true, detRand{rand.New(rand.NewSource(17))})
	if err != nil {
		t.Fatal(err)
	}
	clk := &vclock{t: time.Unix(1555000000, 0)}
	oldBundle, err := MakeBundle(signedTestZone(t, s, 1, "", clk.now()), s)
	if err != nil {
		t.Fatal(err)
	}
	replayOld := false
	serve := uint32(2)
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		if replayOld {
			return oldBundle, nil
		}
		return MakeBundle(signedTestZone(t, s, serve, "", clk.now()), s)
	})
	ta := NewTrustAnchors(48*time.Hour, s.KSK.DNSKEY)
	r, err := NewRefresher(RefresherConfig{
		Source:  src,
		Trust:   ta,
		Install: func(*zone.Zone) error { return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ExtraDNSKEYs = []dnswire.DNSKEY{ksk2.DNSKEY}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}
	if st := ta.State(); st.Pending != 1 {
		t.Fatalf("incoming KSK not pending: %+v", st)
	}

	// A stale mirror replays the pre-rollover zone: rollback protection
	// rejects it, and — crucially — the replayed DNSKEY RRset (which
	// predates the incoming KSK) must not be fed to the trust store, or a
	// replay could restart the add-hold-down indefinitely and strand the
	// client when the publisher's signing switches over.
	clk.advance(43 * time.Hour)
	replayOld = true
	if r.Tick(context.Background()) {
		t.Fatal("replayed old bundle installed")
	}
	if st := ta.State(); st.Pending != 1 {
		t.Fatalf("replayed old zone restarted the add-hold-down: %+v", st)
	}

	// Past the hold-down, the next verified current zone promotes the key.
	clk.advance(6 * time.Hour)
	replayOld, serve = false, 3
	if !r.Tick(context.Background()) {
		t.Fatal("post-hold-down refresh failed")
	}
	if st := ta.State(); st.Valid != 2 || st.Rollovers != 1 {
		t.Fatalf("incoming KSK not promoted after hold-down: %+v", st)
	}
}

func TestRefresherSameSerialRefreshesWithoutReinstall(t *testing.T) {
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, 9, ""), s)
	})
	installs := 0
	r, err := NewRefresher(RefresherConfig{
		Source:  src,
		KSK:     s.KSK.DNSKEY,
		Install: func(*zone.Zone) error { installs++; return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}
	clk.advance(43 * time.Hour)
	if r.Tick(context.Background()) {
		t.Fatal("unchanged serial reinstalled")
	}
	st := r.State()
	if installs != 1 || st.Serial != 9 || st.RollbacksRejected != 0 {
		t.Fatalf("installs %d state %+v", installs, st)
	}
	// The freshness clock still reset: the copy was re-confirmed current.
	if st.Age != 0 || st.Freshness != FreshnessFresh {
		t.Fatalf("age %v freshness %v after re-confirmation", st.Age, st.Freshness)
	}
}

func TestRefresherCrossCheckDefeatsFreeze(t *testing.T) {
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	// The preferred mirror froze at serial 1 and keeps re-serving it — a
	// same-serial bundle "re-confirms" the client forever. The fallback
	// tracks the real zone.
	frozen := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, 1, ""), s)
	})
	live := uint32(1)
	healthy := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, live, ""), s)
	})
	r, err := NewRefresher(RefresherConfig{
		Source:    frozen,
		Fallbacks: []Source{healthy},
		KSK:       s.KSK.DNSKEY,
		Install:   func(*zone.Zone) error { return nil },
		Clock:     clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}
	// One refresh cycle of frozen re-confirmation: freshness stays green,
	// serial stays pinned — the freeze attack working as intended.
	clk.advance(43 * time.Hour)
	live++
	if r.Tick(context.Background()) {
		t.Fatal("frozen mirror should have re-confirmed, not installed")
	}
	if st := r.State(); st.Serial != 1 || st.Freshness != FreshnessFresh {
		t.Fatalf("freeze setup: %+v", st)
	}
	// Next cycle: the serial has been stuck past CrossCheck (2×Refresh),
	// so the refresher sweeps every source and takes the highest serial.
	clk.advance(43 * time.Hour)
	live++
	if !r.Tick(context.Background()) {
		t.Fatal("cross-check sweep did not install")
	}
	st := r.State()
	if st.Serial != live || st.CrossChecks == 0 {
		t.Fatalf("after sweep: serial %d (want %d), crossChecks %d", st.Serial, live, st.CrossChecks)
	}
}

func TestBundleSupersessionEncoding(t *testing.T) {
	s := testSigner(t)
	b, err := MakeBundle(testZone(t, 3, ""), s)
	if err != nil {
		t.Fatal(err)
	}
	b.Supersede(5, s)
	got, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Supersession == nil || got.Supersession.Replaces != 5 {
		t.Fatalf("supersession lost in encoding: %+v", got.Supersession)
	}
	if err := got.VerifySupersession(s.KSK.DNSKEY); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Verify(s.KSK.DNSKEY); err != nil {
		t.Fatal(err)
	}
	// Tampering with the withdrawn serial invalidates the statement.
	got.Supersession.Replaces = 6
	if err := got.VerifySupersession(s.KSK.DNSKEY); err == nil {
		t.Fatal("forged supersession verified")
	}
}

// ---- quarantine ----

func TestMultiSourceQuarantine(t *testing.T) {
	clk := &vclock{t: time.Unix(1555000000, 0)}
	srcs := make([]Source, 2)
	for i := range srcs {
		srcs[i] = SourceFunc(func(context.Context) (*Bundle, error) { return nil, errors.New("nope") })
	}
	ms, err := NewMultiSource(srcs, []string{"good", "bad"})
	if err != nil {
		t.Fatal(err)
	}
	hold := 30 * time.Minute
	ms.ConfigureQuarantine(3, hold, clk.now)

	// Three strikes put the bad source in hold-down.
	for i := 0; i < 3; i++ {
		ms.NoteBad(1)
	}
	if got := ms.Attempts(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("attempts %v, want only source 0", got)
	}
	if q := ms.Quarantined(); len(q) != 1 || q[0] != "bad" {
		t.Fatalf("quarantined %v", q)
	}
	// The hold expires and the source is probed again.
	clk.advance(hold + time.Minute)
	if got := ms.Attempts(); len(got) != 2 {
		t.Fatalf("attempts after hold expiry %v", got)
	}
	// A re-trip doubles the hold.
	for i := 0; i < 3; i++ {
		ms.NoteBad(1)
	}
	clk.advance(hold + time.Minute)
	if got := ms.Attempts(); len(got) != 1 {
		t.Fatalf("doubled hold should still be in effect: %v", got)
	}
	clk.advance(hold)
	if got := ms.Attempts(); len(got) != 2 {
		t.Fatalf("doubled hold should have expired: %v", got)
	}
	if ms.Quarantines() != 2 {
		t.Fatalf("quarantine count %d, want 2", ms.Quarantines())
	}

	// When every source is held, the soonest-expiring one is force-probed:
	// a possibly-bad mirror beats none.
	for i := 0; i < 3; i++ {
		ms.NoteBad(1)
	}
	for i := 0; i < 3; i++ {
		ms.NoteBad(0)
	}
	got := ms.Attempts()
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("all-held probe %v, want the soonest-expiring source 0", got)
	}
	// Success clears the health record entirely.
	ms.NoteGood(0)
	if got := ms.Attempts(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("attempts after recovery %v", got)
	}
}

func TestRefresherQuarantinesBogusSource(t *testing.T) {
	s := testSigner(t)
	evil := testSigner(t)
	evil.KSK, _ = dnssec.GenerateKey(dnswire.Root, true, detRand{rand.New(rand.NewSource(13))})
	clk := &vclock{t: time.Unix(1555000000, 0)}
	serial := uint32(1)
	primaryDown := true
	evilFetches := 0
	primary := SourceFunc(func(context.Context) (*Bundle, error) {
		if primaryDown {
			return nil, errors.New("primary unreachable")
		}
		return MakeBundle(testZone(t, serial, ""), s)
	})
	bogus := SourceFunc(func(context.Context) (*Bundle, error) {
		evilFetches++
		return MakeBundle(testZone(t, serial+100, ""), evil)
	})
	r, err := NewRefresher(RefresherConfig{
		Source:    primary,
		Fallbacks: []Source{bogus},
		KSK:       s.KSK.DNSKEY,
		Install:   func(*zone.Zone) error { return nil },
		Clock:     clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The primary is down and the only fallback serves mis-signed bundles:
	// every attempt strikes both sources until both trip quarantine.
	for i := 0; i < 3; i++ {
		if r.Tick(context.Background()) {
			t.Fatalf("tick %d installed a bogus bundle", i)
		}
	}
	st := r.State()
	if st.Quarantines != 2 {
		t.Fatalf("quarantines %d, want both sources held: %+v", st.Quarantines, st)
	}
	if q := r.Sources().Quarantined(); len(q) != 2 {
		t.Fatalf("quarantined %v, want both", q)
	}
	// All sources held: the refresher force-probes rather than starving —
	// and the recovered primary delivers. The bogus fallback stays held.
	primaryDown = false
	if !r.Tick(context.Background()) {
		t.Fatal("force-probe of the recovered primary failed")
	}
	st = r.State()
	if st.Serial != serial {
		t.Fatalf("serial %d, want %d", st.Serial, serial)
	}
	if q := r.Sources().Quarantined(); len(q) != 1 || q[0] != "fallback1" {
		t.Fatalf("quarantined %v, want only the bogus fallback", q)
	}
	// Subsequent refreshes prefer the healthy primary; the bogus source is
	// never consulted again even after its hold expires.
	fetchesDuringOutage := evilFetches
	for i := 0; i < 3; i++ {
		clk.advance(43 * time.Hour)
		serial++
		if !r.Tick(context.Background()) {
			t.Fatalf("steady-state tick %d failed", i)
		}
	}
	if evilFetches != fetchesDuringOutage {
		t.Fatalf("bogus source consulted again: %d fetches, had %d", evilFetches, fetchesDuringOutage)
	}
}

// ---- staged staleness ----

func TestFreshnessStages(t *testing.T) {
	refresh, expiry, stale := 42*time.Hour, 48*time.Hour, 6*time.Hour
	cases := []struct {
		age  time.Duration
		want Freshness
	}{
		{0, FreshnessFresh},
		{refresh, FreshnessFresh},
		{refresh + time.Second, FreshnessAging},
		{expiry, FreshnessAging},
		{expiry + time.Second, FreshnessStaleServe},
		{expiry + stale, FreshnessStaleServe},
		{expiry + stale + time.Second, FreshnessExpired},
	}
	for _, tc := range cases {
		if got := FreshnessOf(tc.age, refresh, expiry, stale); got != tc.want {
			t.Errorf("FreshnessOf(%v) = %v, want %v", tc.age, got, tc.want)
		}
	}
	// With no stale-serve window, expiry is final.
	if got := FreshnessOf(expiry+time.Second, refresh, expiry, 0); got != FreshnessExpired {
		t.Errorf("zero StaleFor: got %v, want expired", got)
	}
}

func TestRefresherFreshnessTransitions(t *testing.T) {
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	failing := false
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		if failing {
			return nil, errors.New("unreachable")
		}
		return MakeBundle(testZone(t, 1, ""), s)
	})
	r, err := NewRefresher(RefresherConfig{
		Source:   src,
		KSK:      s.KSK.DNSKEY,
		Install:  func(*zone.Zone) error { return nil },
		StaleFor: 6 * time.Hour,
		Clock:    clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.State(); st.Freshness != FreshnessNone || st.Age != 0 {
		t.Fatalf("pre-bootstrap state %+v", st)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}
	failing = true

	steps := []struct {
		advance time.Duration
		want    Freshness
	}{
		{0, FreshnessFresh},
		{42*time.Hour + time.Minute, FreshnessAging},
		{6 * time.Hour, FreshnessStaleServe},
		{6 * time.Hour, FreshnessExpired},
	}
	for _, step := range steps {
		clk.advance(step.advance)
		if st := r.State(); st.Freshness != step.want {
			t.Fatalf("at age %v: freshness %v, want %v", st.Age, st.Freshness, step.want)
		}
	}
	// Even expired, the refresher keeps retrying and recovers.
	failing = false
	r.Tick(context.Background())
	if st := r.State(); st.Freshness != FreshnessFresh {
		t.Fatalf("post-recovery freshness %v", st.Freshness)
	}
}

// ---- retry scheduling edges (Refresher.fail) ----

func TestRefresherRetryNeverPastExpiry(t *testing.T) {
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, 1, ""), s)
	})
	r, err := NewRefresher(RefresherConfig{
		Source:  src,
		KSK:     s.KSK.DNSKEY,
		Install: func(*zone.Zone) error { return nil },
		Retry:   4 * time.Hour, // base retry larger than the time left
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}
	obtained := clk.now()
	expiry := obtained.Add(48 * time.Hour)

	// Fail 1 hour before expiry: every jitter draw is ≥ the 4h base, so
	// the clamp must pull the retry back to exactly the expiry moment.
	clk.advance(47 * time.Hour)
	r.fail(clk.now(), errors.New("down"))
	r.mu.Lock()
	next := r.nextTry
	r.mu.Unlock()
	if !next.Equal(expiry) {
		t.Fatalf("retry at %v, want clamped to expiry %v", next, expiry)
	}
	// Once past expiry there is nothing left to protect: the clamp no
	// longer applies and normal backoff resumes.
	clk.advance(2 * time.Hour)
	r.fail(clk.now(), errors.New("still down"))
	r.mu.Lock()
	next = r.nextTry
	r.mu.Unlock()
	if !next.After(expiry) {
		t.Fatalf("post-expiry retry %v not after expiry %v", next, expiry)
	}
}

func TestRefresherRetryJitterBounds(t *testing.T) {
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, 1, ""), s)
	})
	retry, cap := time.Hour, 10*time.Hour
	r, err := NewRefresher(RefresherConfig{
		Source:   src,
		KSK:      s.KSK.DNSKEY,
		Install:  func(*zone.Zone) error { return nil },
		Retry:    retry,
		RetryCap: cap,
		Seed:     42,
		Clock:    clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No zone installed: the expiry clamp is out of the picture and the
	// pure decorrelated-jitter invariant holds: Retry ≤ d ≤ min(RetryCap,
	// 3·previous).
	prev := time.Duration(0)
	sawCap := false
	for i := 0; i < 200; i++ {
		r.fail(clk.now(), errors.New("down"))
		d := r.State().RetryDelay
		if d < retry {
			t.Fatalf("draw %d: delay %v below Retry %v", i, d, retry)
		}
		if d > cap {
			t.Fatalf("draw %d: delay %v above RetryCap %v", i, d, cap)
		}
		if hi := 3 * maxDur(prev, retry); d > minDur(hi, cap) {
			t.Fatalf("draw %d: delay %v above 3·prev bound %v", i, d, minDur(hi, cap))
		}
		if d == cap {
			sawCap = true
		}
		prev = d
		clk.advance(d)
	}
	// With 200 draws the backoff must have saturated the cap at least once.
	if !sawCap {
		t.Fatal("backoff never reached RetryCap")
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// ---- fuzz & benchmarks ----

func FuzzDecodeDeltaBundle(f *testing.F) {
	s, err := dnssec.NewSigner(dnswire.Root, detRand{rand.New(rand.NewSource(5))})
	if err != nil {
		f.Fatal(err)
	}
	z1, err := zone.Parse(bytes.NewReader([]byte(
		". 86400 IN SOA a. b. 1 1800 900 604800 86400\n. 518400 IN NS a.root-servers.net.\n")), dnswire.Root)
	if err != nil {
		f.Fatal(err)
	}
	z2, err := zone.Parse(bytes.NewReader([]byte(
		". 86400 IN SOA a. b. 2 1800 900 604800 86400\n. 518400 IN NS a.root-servers.net.\nxyz. 172800 IN NS ns.xyz.\n")), dnswire.Root)
	if err != nil {
		f.Fatal(err)
	}
	d, err := MakeDeltaBundle(z1, z2, ChainAnchor(z1), s)
	if err != nil {
		f.Fatal(err)
	}
	valid := d.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{0x52, 0x54, 0x4C, 0x44, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("not a delta"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDeltaBundle(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to something that decodes to the
		// same delta — no hidden state, no panics.
		d2, err := DecodeDeltaBundle(d.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(d2.Encode(), d.Encode()) {
			t.Fatal("re-encode not stable")
		}
	})
}

// benchZonePair builds two consecutively signed ~n-TLD zones differing in
// a handful of RRsets — the shape of one day's real root-zone churn.
func benchZonePair(b *testing.B, n int) (*zone.Zone, *zone.Zone, *dnssec.Signer, time.Time) {
	b.Helper()
	s, err := dnssec.NewSigner(dnswire.Root, detRand{rand.New(rand.NewSource(5))})
	if err != nil {
		b.Fatal(err)
	}
	s.Quantize = 24 * time.Hour
	s.Validity = 14 * 24 * time.Hour
	now := time.Unix(1555000000, 0)
	build := func(serial uint32, extra string) *zone.Zone {
		var sb bytes.Buffer
		sb.WriteString(". 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. ")
		sb.WriteString(uitoa(serial))
		sb.WriteString(" 1800 900 604800 86400\n. 518400 IN NS a.root-servers.net.\na.root-servers.net. 518400 IN A 198.41.0.4\n")
		for i := 0; i < n; i++ {
			tld := "tld" + uitoa(uint32(i))
			sb.WriteString(tld + ". 172800 IN NS ns." + tld + ".\n")
			sb.WriteString("ns." + tld + ". 172800 IN A 192.0.2." + uitoa(uint32(i%250+1)) + "\n")
		}
		sb.WriteString(extra)
		z, err := zone.Parse(bytes.NewReader(sb.Bytes()), dnswire.Root)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.SignZone(z, now); err != nil {
			b.Fatal(err)
		}
		return z
	}
	z1 := build(1, "")
	z2 := build(2, "fresh. 172800 IN NS ns.fresh.\nns.fresh. 172800 IN A 192.0.2.251\n")
	return z1, z2, s, now
}

func BenchmarkDeltaApply(b *testing.B) {
	z1, z2, s, now := benchZonePair(b, 200)
	d, err := MakeDeltaBundle(z1, z2, ChainAnchor(z1), s)
	if err != nil {
		b.Fatal(err)
	}
	anchors := []dnswire.DNSKEY{s.KSK.DNSKEY}
	chain := ChainAnchor(z1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Apply(z1, chain, anchors, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullBundleVerify(b *testing.B) {
	_, z2, s, now := benchZonePair(b, 200)
	bundle, err := MakeBundle(z2, s)
	if err != nil {
		b.Fatal(err)
	}
	anchor := s.TrustAnchor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bundle.VerifyFull(anchor, now); err != nil {
			b.Fatal(err)
		}
	}
}
