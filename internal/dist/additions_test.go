package dist

import (
	"context"
	"net/http/httptest"
	"testing"

	"rootless/internal/dnswire"
)

func TestAdditionsBundleRoundTrip(t *testing.T) {
	s := testSigner(t)
	old := testZone(t, 1, "")
	new := testZone(t, 2, "fresh. 172800 IN NS ns0.nic.fresh.\nns0.nic.fresh. 172800 IN A 100.9.9.9\n")

	b, err := MakeAdditions(old, new, s)
	if err != nil {
		t.Fatal(err)
	}
	if b.FromSerial != 1 || b.ToSerial != 2 {
		t.Errorf("serials %d->%d", b.FromSerial, b.ToSerial)
	}
	enc := b.Encode()
	dec, err := DecodeAdditions(enc)
	if err != nil {
		t.Fatal(err)
	}
	rrs, err := dec.Verify(s.KSK.DNSKEY)
	if err != nil {
		t.Fatal(err)
	}
	var hasNS, hasGlue bool
	for _, rr := range rrs {
		if rr.Name == "fresh." && rr.Type == dnswire.TypeNS {
			hasNS = true
		}
		if rr.Name == "ns0.nic.fresh." && rr.Type == dnswire.TypeA {
			hasGlue = true
		}
	}
	if !hasNS || !hasGlue {
		t.Errorf("additions incomplete: NS=%v glue=%v (%d rrs)", hasNS, hasGlue, len(rrs))
	}

	// Tampering is caught.
	bad := *dec
	bad.Text = append([]byte(nil), dec.Text...)
	bad.Text[0] ^= 1
	if _, err := bad.Verify(s.KSK.DNSKEY); err == nil {
		t.Error("tampered additions verified")
	}
	// Truncated encodings fail cleanly.
	if _, err := DecodeAdditions(enc[:10]); err == nil {
		t.Error("truncated bundle decoded")
	}
	if _, err := DecodeAdditions([]byte("garbage!")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestAdditionsEmpty(t *testing.T) {
	s := testSigner(t)
	z := testZone(t, 5, "")
	b, err := MakeAdditions(z, z, s)
	if err != nil {
		t.Fatal(err)
	}
	rrs, err := b.Verify(s.KSK.DNSKEY)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 0 {
		t.Errorf("identical zones produced %d additions", len(rrs))
	}
}

func TestAdditionsOverHTTP(t *testing.T) {
	s := testSigner(t)
	m := NewMirror(s, 4)
	if err := m.Publish(testZone(t, 1, "")); err != nil {
		t.Fatal(err)
	}
	if err := m.Publish(testZone(t, 2, "fresh. 172800 IN NS ns0.nic.fresh.\nns0.nic.fresh. 172800 IN A 100.9.9.9\n")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)

	b, err := c.FetchAdditions(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rrs, err := b.Verify(s.KSK.DNSKEY)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) == 0 {
		t.Fatal("no additions over HTTP")
	}
	// The supplement is tiny compared to a full fetch.
	if len(b.Encode()) > 2048 {
		t.Errorf("additions bundle is %d bytes for one TLD", len(b.Encode()))
	}
	// Unknown base serial 404s.
	if _, err := c.FetchAdditions(context.Background(), 999); err == nil {
		t.Error("unknown serial should fail")
	}
}
