package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"rootless/internal/dnssec"
	"rootless/internal/obs"
	"rootless/internal/zone"
)

// Mirror serves root-zone bundles over HTTP — the "set of HTTP mirrors as
// we use for software distribution" option in §3. It also keeps a window
// of past snapshots so delta clients can sync from any recent serial.
//
// Endpoints:
//
//	GET /root.zone.bundle        current bundle (binary)
//	GET /serial                  current serial (text)
//	GET /root.zone.text          current uncompressed master file
//	GET /delta?from=SERIAL       rsync-style delta from an old serial
//	GET /deltachain?from=SERIAL  signed delta-bundle chain from an old serial
type Mirror struct {
	mu        sync.RWMutex
	current   *Bundle
	signer    *dnssec.Signer
	text      map[uint32][]byte // serial -> master file text
	zones     map[uint32]*zone.Zone
	deltas    map[uint32]deltaLink // fromSerial -> signed delta to the next serial
	order     []uint32
	window    int
	blockSize int

	// Stats.
	bundleBytes int64
	deltaBytes  int64
	chainBytes  int64
	requests    int64
}

// deltaLink is one precomputed chain step, kept in encoded form.
type deltaLink struct {
	to   uint32
	data []byte
}

// NewMirror creates a mirror that retains `window` past snapshots for
// delta service.
func NewMirror(signer *dnssec.Signer, window int) *Mirror {
	if window <= 0 {
		window = 8
	}
	return &Mirror{
		signer:    signer,
		text:      make(map[uint32][]byte),
		zones:     make(map[uint32]*zone.Zone),
		deltas:    make(map[uint32]deltaLink),
		window:    window,
		blockSize: DefaultBlockSize,
	}
}

// Publish installs a new zone snapshot and, when the previous snapshot is
// still retained, precomputes the signed delta link so clients can catch
// up at O(delta) instead of refetching the whole bundle.
func (m *Mirror) Publish(z *zone.Zone) error {
	b, err := MakeBundle(z, m.signer)
	if err != nil {
		return err
	}
	text := []byte(zone.Text(z))
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev := m.current; prev != nil && prev.Serial != b.Serial {
		if prevZone := m.zones[prev.Serial]; prevZone != nil {
			db, err := MakeDeltaBundle(prevZone, z, ChainAnchor(prevZone), m.signer)
			if err != nil {
				return err
			}
			m.deltas[prev.Serial] = deltaLink{to: b.Serial, data: db.Encode()}
		}
	}
	m.current = b
	if _, ok := m.text[b.Serial]; !ok {
		m.order = append(m.order, b.Serial)
	}
	m.text[b.Serial] = text
	m.zones[b.Serial] = z
	for len(m.order) > m.window {
		delete(m.text, m.order[0])
		delete(m.zones, m.order[0])
		delete(m.deltas, m.order[0])
		m.order = m.order[1:]
	}
	return nil
}

// Current returns the latest bundle, or nil.
func (m *Mirror) Current() *Bundle {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.current
}

// MirrorStats reports transfer volumes, the §5.2 distribution-load metric.
type MirrorStats struct {
	Requests    int64
	BundleBytes int64
	DeltaBytes  int64
	// ChainBytes counts signed delta-chain transfer volume — the O(delta)
	// distribution path.
	ChainBytes int64
}

// Stats returns a snapshot of the transfer counters.
func (m *Mirror) Stats() MirrorStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return MirrorStats{
		Requests:    m.requests,
		BundleBytes: m.bundleBytes,
		DeltaBytes:  m.deltaBytes,
		ChainBytes:  m.chainBytes,
	}
}

// Collect implements obs.Collector: transfer counters plus gauges for the
// published serial and the delta retention window.
func (m *Mirror) Collect(reg *obs.Registry) {
	obs.SetCountersFromStruct(reg, "rootless_mirror", "mirror transfer volume", nil, m.Stats())
	m.mu.RLock()
	var serial uint32
	if m.current != nil {
		serial = m.current.Serial
	}
	snapshots := len(m.order)
	m.mu.RUnlock()
	reg.Gauge("rootless_mirror_zone_serial", "serial of the published zone", nil).Set(float64(serial))
	reg.Gauge("rootless_mirror_snapshots", "past snapshots retained for delta service", nil).
		Set(float64(snapshots))
}

// ServeHTTP implements http.Handler.
func (m *Mirror) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	m.requests++
	m.mu.Unlock()
	switch r.URL.Path {
	case "/root.zone.bundle":
		b := m.Current()
		if b == nil {
			http.Error(w, "no zone published", http.StatusServiceUnavailable)
			return
		}
		data := b.Encode()
		m.mu.Lock()
		m.bundleBytes += int64(len(data))
		m.mu.Unlock()
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	case "/serial":
		b := m.Current()
		if b == nil {
			http.Error(w, "no zone published", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%d\n", b.Serial)
	case "/root.zone.text":
		m.mu.RLock()
		var text []byte
		if m.current != nil {
			text = m.text[m.current.Serial]
		}
		m.mu.RUnlock()
		if text == nil {
			http.Error(w, "no zone published", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write(text)
	case "/delta":
		m.serveDelta(w, r)
	case "/deltachain":
		m.serveDeltaChain(w, r)
	case "/additions":
		m.serveAdditions(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveDelta returns an encoded delta from the client's serial to the
// current snapshot, prefixed with the current serial. 404 when the old
// serial fell out of the retention window (client must full-fetch).
func (m *Mirror) serveDelta(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 32)
	if err != nil {
		http.Error(w, "bad from serial", http.StatusBadRequest)
		return
	}
	m.mu.RLock()
	oldText, okOld := m.text[uint32(from)]
	var curSerial uint32
	var curText []byte
	if m.current != nil {
		curSerial = m.current.Serial
		curText = m.text[curSerial]
	}
	m.mu.RUnlock()
	if !okOld || curText == nil {
		http.Error(w, "serial not in window", http.StatusNotFound)
		return
	}
	sig := SignBlocks(oldText, m.blockSize)
	ops := ComputeDelta(sig, curText)
	payload := EncodeDelta(ops)
	m.mu.Lock()
	m.deltaBytes += int64(len(payload))
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Zone-Serial", strconv.FormatUint(uint64(curSerial), 10))
	_, _ = w.Write(payload)
}

// serveDeltaChain returns the signed delta links from the client's serial
// to the current snapshot: a uint32 link count, then each encoded
// DeltaBundle length-prefixed with a uint32. An empty chain (count 0)
// means the client is already current. 404 when the client's serial fell
// out of the retention window — the client must full-fetch.
func (m *Mirror) serveDeltaChain(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 32)
	if err != nil {
		http.Error(w, "bad from serial", http.StatusBadRequest)
		return
	}
	m.mu.RLock()
	var curSerial uint32
	if m.current != nil {
		curSerial = m.current.Serial
	}
	var links [][]byte
	cur := uint32(from)
	known := m.zones[cur] != nil
	for cur != curSerial {
		link, ok := m.deltas[cur]
		if !ok {
			known = false
			break
		}
		links = append(links, link.data)
		cur = link.to
	}
	m.mu.RUnlock()
	if m.Current() == nil || !known {
		http.Error(w, "serial not in window", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(links)))
	buf.Write(u32[:])
	for _, data := range links {
		binary.BigEndian.PutUint32(u32[:], uint32(len(data)))
		buf.Write(u32[:])
		buf.Write(data)
	}
	m.mu.Lock()
	m.chainBytes += int64(buf.Len())
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(buf.Bytes())
}

// HTTPClient fetches bundles (and deltas) from a mirror base URL.
type HTTPClient struct {
	BaseURL string
	Client  *http.Client

	// State for delta sync.
	mu     sync.Mutex
	serial uint32
	text   []byte

	// Transfer accounting.
	bytesFetched int64
	fullFetches  int64
	deltaFetches int64
}

// NewHTTPClient creates a client for a mirror.
func NewHTTPClient(baseURL string) *HTTPClient {
	return &HTTPClient{BaseURL: baseURL, Client: http.DefaultClient}
}

// BytesFetched returns the total bytes transferred.
func (c *HTTPClient) BytesFetched() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesFetched
}

// Fetches returns (full, delta) fetch counts.
func (c *HTTPClient) Fetches() (full, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fullFetches, c.deltaFetches
}

func (c *HTTPClient) get(ctx context.Context, path string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.Header, fmt.Errorf("dist: %s: %s", path, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.Header, err
	}
	c.mu.Lock()
	c.bytesFetched += int64(len(data))
	c.mu.Unlock()
	return data, resp.Header, nil
}

// Fetch implements Source: it downloads the current bundle.
func (c *HTTPClient) Fetch(ctx context.Context) (*Bundle, error) {
	data, _, err := c.get(ctx, "/root.zone.bundle")
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.fullFetches++
	c.mu.Unlock()
	return DecodeBundle(data)
}

// FetchDeltaChain implements DeltaSource: it downloads the signed delta
// links from fromSerial to the mirror's current serial. A 404 (serial out
// of the retention window) surfaces as an error, sending the refresher to
// the full-bundle path.
func (c *HTTPClient) FetchDeltaChain(ctx context.Context, fromSerial uint32) ([]*DeltaBundle, error) {
	data, _, err := c.get(ctx, fmt.Sprintf("/deltachain?from=%d", fromSerial))
	if err != nil {
		return nil, err
	}
	if len(data) < 4 {
		return nil, errors.New("dist: short delta chain")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if n < 0 || n > 1<<16 {
		return nil, errors.New("dist: bad delta chain length")
	}
	chain := make([]*DeltaBundle, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, errors.New("dist: truncated delta chain")
		}
		linkLen := int(binary.BigEndian.Uint32(data))
		if linkLen < 0 || 4+linkLen > len(data) {
			return nil, errors.New("dist: truncated delta chain link")
		}
		db, err := DecodeDeltaBundle(data[4 : 4+linkLen])
		if err != nil {
			return nil, err
		}
		chain = append(chain, db)
		data = data[4+linkLen:]
	}
	c.mu.Lock()
	c.deltaFetches++
	c.mu.Unlock()
	return chain, nil
}

// SyncText updates the client's master-file copy, preferring a delta when
// the mirror still remembers our serial, falling back to a full text
// fetch. It returns the new text, the new serial, and the bytes this sync
// transferred.
func (c *HTTPClient) SyncText(ctx context.Context) ([]byte, uint32, int64, error) {
	c.mu.Lock()
	oldSerial, oldText := c.serial, c.text
	c.mu.Unlock()

	before := c.BytesFetched()
	if oldText != nil {
		payload, hdr, err := c.get(ctx, fmt.Sprintf("/delta?from=%d", oldSerial))
		if err == nil {
			newSerial, err := strconv.ParseUint(hdr.Get("X-Zone-Serial"), 10, 32)
			if err != nil {
				return nil, 0, 0, errors.New("dist: delta reply missing serial")
			}
			ops, err := DecodeDelta(payload)
			if err != nil {
				return nil, 0, 0, err
			}
			sig := SignBlocks(oldText, DefaultBlockSize)
			newText, err := ApplyDelta(oldText, sig, ops)
			if err != nil {
				return nil, 0, 0, err
			}
			c.mu.Lock()
			c.serial, c.text = uint32(newSerial), newText
			c.deltaFetches++
			c.mu.Unlock()
			return newText, uint32(newSerial), c.BytesFetched() - before, nil
		}
	}

	text, _, err := c.get(ctx, "/root.zone.text")
	if err != nil {
		return nil, 0, 0, err
	}
	serialData, _, err := c.get(ctx, "/serial")
	if err != nil {
		return nil, 0, 0, err
	}
	serial, err := strconv.ParseUint(string(trimNL(serialData)), 10, 32)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("dist: bad serial: %w", err)
	}
	c.mu.Lock()
	c.serial, c.text = uint32(serial), text
	c.fullFetches++
	c.mu.Unlock()
	return text, uint32(serial), c.BytesFetched() - before, nil
}

func trimNL(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// serveAdditions returns the signed §5.3 recent-additions supplement from
// an old serial to the current snapshot. 404 when the base serial fell
// out of the retention window.
func (m *Mirror) serveAdditions(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 32)
	if err != nil {
		http.Error(w, "bad from serial", http.StatusBadRequest)
		return
	}
	m.mu.RLock()
	oldZone := m.zones[uint32(from)]
	var curZone *zone.Zone
	if m.current != nil {
		curZone = m.zones[m.current.Serial]
	}
	m.mu.RUnlock()
	if oldZone == nil || curZone == nil {
		http.Error(w, "serial not in window", http.StatusNotFound)
		return
	}
	bundle, err := MakeAdditions(oldZone, curZone, m.signer)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(bundle.Encode())
}
