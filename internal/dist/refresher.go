package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/zone"
)

// Source produces root zone bundles; implemented by HTTPClient, the gossip
// peer, and test fakes.
type Source interface {
	Fetch(ctx context.Context) (*Bundle, error)
}

// SourceFunc adapts a function to Source.
type SourceFunc func(ctx context.Context) (*Bundle, error)

// Fetch implements Source.
func (f SourceFunc) Fetch(ctx context.Context) (*Bundle, error) { return f(ctx) }

// ErrRollback rejects a bundle whose serial is behind the installed copy
// without a signed supersession — a stale or malicious mirror must not be
// able to roll a resolver back to an old zone.
var ErrRollback = errors.New("dist: serial rollback without signed supersession")

// Freshness is the staged staleness state machine driving resolver
// behavior: a copy is fresh until its planned refresh, aging through the
// retry window, served stale with capped TTLs for a bounded window past
// expiry, and finally expired — at which point policy fails closed.
type Freshness int

// Freshness stages.
const (
	// FreshnessNone: no zone has ever been installed.
	FreshnessNone Freshness = iota
	// FreshnessFresh: age ≤ Refresh; normal operation.
	FreshnessFresh
	// FreshnessAging: refresh overdue but the copy is still valid — the
	// paper's §4 retry window between X+42h and X+48h.
	FreshnessAging
	// FreshnessStaleServe: past Expiry but within StaleFor; answers are
	// still served, with capped TTLs, while the refresher keeps retrying.
	FreshnessStaleServe
	// FreshnessExpired: past Expiry+StaleFor; fail closed per policy.
	FreshnessExpired
)

func (f Freshness) String() string {
	switch f {
	case FreshnessNone:
		return "none"
	case FreshnessFresh:
		return "fresh"
	case FreshnessAging:
		return "aging"
	case FreshnessStaleServe:
		return "stale-serve"
	case FreshnessExpired:
		return "expired"
	}
	return "unknown"
}

// FreshnessOf places an installed copy's age on the state machine.
func FreshnessOf(age, refresh, expiry, staleFor time.Duration) Freshness {
	switch {
	case age <= refresh:
		return FreshnessFresh
	case age <= expiry:
		return FreshnessAging
	case age <= expiry+staleFor:
		return FreshnessStaleServe
	}
	return FreshnessExpired
}

// RefresherConfig sets the refresh policy. The defaults encode the
// paper's §4 robustness arithmetic: with two-day TTLs a copy obtained at
// time X is refreshed at X+42 h, leaving a 6-hour retry window before the
// copy expires at X+48 h and lookups are actually impacted.
type RefresherConfig struct {
	Source Source
	// KSK verifies bundle signatures. Ignored when Trust is set.
	KSK dnswire.DNSKEY
	// Trust, when set, replaces the single static KSK with an RFC
	// 5011-style anchor store: bundles verify against any currently valid
	// anchor, and every verified zone's DNSKEY RRset feeds the rollover
	// state machine (add-hold-down, revoke bit, dual-anchor overlap).
	Trust *TrustAnchors
	// Install receives each verified zone (e.g. resolver.SetLocalZone).
	Install func(*zone.Zone) error
	// Refresh is the planned interval between fetches (default 42 h).
	Refresh time.Duration
	// Retry is the base pause after a failure (default 1 h). Successive
	// failures back off with decorrelated jitter — delay = min(RetryCap,
	// rand[Retry, 3·previous]) — so a resolver population that lost its
	// distribution channel does not retry in lockstep (§5.2's load
	// concern). The retry is never scheduled past the copy's expiry
	// moment: the last attempt inside the freshness window always runs.
	Retry time.Duration
	// RetryCap bounds backoff growth (default Expiry, the 48 h window).
	RetryCap time.Duration
	// Expiry is the zone copy's maximum age (default 48 h).
	Expiry time.Duration
	// StaleFor is the stale-serve window past Expiry before the copy is
	// fully expired (default 0: expiry is final, the paper's strict
	// arithmetic). Only the Freshness state machine consumes it; the
	// refresher itself never stops retrying.
	StaleFor time.Duration
	// CrossCheck guards against a freeze attack: a stale-but-reachable
	// mirror can keep "re-confirming" the installed serial (same-serial
	// bundles, empty delta chains) and quietly pin a resolver to an old
	// zone. Once the serial has not advanced for this long, a refresh asks
	// every source and installs the highest verified serial instead of
	// stopping at the first answer. Default 2×Refresh; negative disables.
	CrossCheck time.Duration
	// Fallbacks are alternative bundle sources (gossip peers, secondary
	// mirrors) tried in order when Source fails — §3's organic delivery
	// forms as failover. Every source's bundle passes the same
	// verification, so a fallback peer substitutes availability, never
	// content. Internally the primary and fallbacks fold into one
	// MultiSource with sticky preference and per-source quarantine.
	Fallbacks []Source
	// Seed makes the retry jitter deterministic (experiments/tests).
	Seed int64
	// Clock supplies time (virtual in experiments); nil = time.Now.
	Clock func() time.Time
	// Tracer, when set and enabled, records one trace per attempted
	// refresh cycle with fetch/verify/install spans, so zone-distribution
	// time shows up on /tracez next to resolution traces.
	Tracer *obs.Tracer
}

// Refresher drives the periodic fetch → verify → install loop. It is
// clock-driven rather than goroutine-driven so experiments can step
// virtual time; Tick must be called whenever time may have passed (a
// convenience Run loop exists for real deployments). State and Collect
// are safe to call from an admin scrape while Run ticks.
//
// Robustness properties, all tested by t_dist_chaos:
//   - catch-up prefers signed delta chains (O(delta) transfer + verify)
//     and falls back to the full bundle on any chain break;
//   - a bundle with serial ≤ the installed copy is rejected unless it
//     carries a signed supersession naming the installed serial;
//   - sources serving bogus, stale, or rolled-back bundles accumulate
//     quarantine strikes and are held out of the rotation;
//   - trust anchors roll per RFC 5011 without a refresh gap.
type Refresher struct {
	cfg   RefresherConfig
	ms    *MultiSource
	trust *TrustAnchors

	mu          sync.Mutex
	rng         *rand.Rand // retry jitter; guarded by mu
	obtained    time.Time  // when the current copy was fetched
	lastAdvance time.Time  // when the installed serial last changed
	nextTry     time.Time
	retryDelay  time.Duration // last backoff delay drawn (0 after success)
	serial      uint32
	haveZone    bool
	curZone     *zone.Zone
	chain       [32]byte // chain anchor of the installed copy
	fetches     int64
	failures    int64
	installs    int64
	fallbacks   int64 // bundles obtained from a non-primary source
	deltas      int64 // installs that arrived as delta chains
	chainFalls  int64 // delta chains abandoned for a full bundle
	rollbacks   int64 // bundles rejected by rollback protection
	supersedes  int64 // rollbacks accepted via signed supersession
	crossChecks int64 // all-source sweeps forced by a stuck serial
	lastErr     error
}

// NewRefresher validates the config and applies defaults.
func NewRefresher(cfg RefresherConfig) (*Refresher, error) {
	if cfg.Source == nil || cfg.Install == nil {
		return nil, errors.New("dist: Refresher needs Source and Install")
	}
	if cfg.Refresh == 0 {
		cfg.Refresh = 42 * time.Hour
	}
	if cfg.Retry == 0 {
		cfg.Retry = time.Hour
	}
	if cfg.Expiry == 0 {
		cfg.Expiry = 48 * time.Hour
	}
	if cfg.RetryCap == 0 {
		cfg.RetryCap = cfg.Expiry
	}
	if cfg.CrossCheck == 0 {
		cfg.CrossCheck = 2 * cfg.Refresh
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &Refresher{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if ms, ok := cfg.Source.(*MultiSource); ok && len(cfg.Fallbacks) == 0 {
		r.ms = ms
		r.ms.ConfigureQuarantine(0, 0, cfg.Clock)
	} else {
		sources := append([]Source{cfg.Source}, cfg.Fallbacks...)
		labels := make([]string, len(sources))
		labels[0] = "primary"
		for i := 1; i < len(labels); i++ {
			labels[i] = fmt.Sprintf("fallback%d", i)
		}
		ms, err := NewMultiSource(sources, labels)
		if err != nil {
			return nil, err
		}
		// Quarantine holds scale with the retry cadence: three bad
		// refresh attempts take a source out for a few cycles.
		ms.ConfigureQuarantine(0, 4*cfg.Retry, cfg.Clock)
		r.ms = ms
	}
	r.trust = cfg.Trust
	if r.trust == nil {
		r.trust = NewTrustAnchors(0, cfg.KSK)
	}
	return r, nil
}

// Trust exposes the anchor store (statusz, experiments).
func (r *Refresher) Trust() *TrustAnchors { return r.trust }

// Sources exposes the failover chain (statusz, experiments).
func (r *Refresher) Sources() *MultiSource { return r.ms }

// State reports the refresher's externally visible condition.
type State struct {
	HaveZone bool
	// Fresh is false once the copy is older than Expiry — the moment the
	// paper says lookups are actually impacted.
	Fresh bool
	// Freshness is the staged state (fresh/aging/stale-serve/expired).
	Freshness Freshness
	Serial    uint32
	// Age is the installed copy's age; zero until HaveZone.
	Age      time.Duration
	Fetches  int64
	Failures int64
	Installs int64
	// FallbackFetches counts bundles that came from a fallback source
	// after the primary failed.
	FallbackFetches int64
	// DeltaInstalls counts installs that arrived as signed delta chains
	// rather than full bundles.
	DeltaInstalls int64
	// ChainFallbacks counts delta chains abandoned mid-walk for a full
	// bundle (broken link, bad signature, serial mismatch).
	ChainFallbacks int64
	// RollbacksRejected counts bundles refused by rollback protection.
	RollbacksRejected int64
	// SupersessionInstalls counts rollbacks accepted because the bundle
	// carried a valid signed supersession of the installed serial.
	SupersessionInstalls int64
	// CrossChecks counts all-source sweeps forced by a serial that had
	// not advanced for CrossCheck (the freeze-attack defense).
	CrossChecks int64
	// Quarantines counts sources placed in hold-down.
	Quarantines int64
	// Trust summarizes the anchor store.
	Trust TrustState
	// RetryDelay is the current backoff delay (0 while healthy).
	RetryDelay time.Duration
	LastErr    error
}

// State returns the current state.
func (r *Refresher) State() State {
	now := r.cfg.Clock()
	quar := r.ms.Quarantines()
	trust := r.trust.State()
	r.mu.Lock()
	defer r.mu.Unlock()
	var age time.Duration
	freshness := FreshnessNone
	if r.haveZone {
		age = now.Sub(r.obtained)
		freshness = FreshnessOf(age, r.cfg.Refresh, r.cfg.Expiry, r.cfg.StaleFor)
	}
	return State{
		HaveZone:             r.haveZone,
		Fresh:                r.haveZone && age <= r.cfg.Expiry,
		Freshness:            freshness,
		Serial:               r.serial,
		Age:                  age,
		Fetches:              r.fetches,
		Failures:             r.failures,
		Installs:             r.installs,
		FallbackFetches:      r.fallbacks,
		DeltaInstalls:        r.deltas,
		ChainFallbacks:       r.chainFalls,
		RollbacksRejected:    r.rollbacks,
		SupersessionInstalls: r.supersedes,
		CrossChecks:          r.crossChecks,
		Quarantines:          quar,
		Trust:                trust,
		RetryDelay:           r.retryDelay,
		LastErr:              r.lastErr,
	}
}

// Collect implements obs.Collector: fetch/install counters plus the
// freshness gauges the paper's §4 robustness arithmetic is about.
func (r *Refresher) Collect(reg *obs.Registry) {
	st := r.State()
	reg.Counter("rootless_refresher_fetches_total", "fetch attempts", nil).Set(st.Fetches)
	reg.Counter("rootless_refresher_failures_total", "failed fetch/verify/install attempts", nil).Set(st.Failures)
	reg.Counter("rootless_refresher_installs_total", "verified zones installed", nil).Set(st.Installs)
	reg.Counter("rootless_refresher_fallback_fetches_total",
		"bundles obtained from a fallback source after the primary failed", nil).Set(st.FallbackFetches)
	reg.Counter("rootless_refresher_delta_installs_total",
		"installs that arrived as signed delta chains", nil).Set(st.DeltaInstalls)
	reg.Counter("rootless_refresher_chain_fallbacks_total",
		"delta chains abandoned for a full bundle", nil).Set(st.ChainFallbacks)
	reg.Counter("rootless_refresher_rollbacks_rejected_total",
		"bundles refused by serial rollback protection", nil).Set(st.RollbacksRejected)
	reg.Counter("rootless_refresher_supersession_installs_total",
		"rollbacks accepted via signed supersession", nil).Set(st.SupersessionInstalls)
	reg.Counter("rootless_refresher_cross_checks_total",
		"all-source sweeps forced by a stuck serial", nil).Set(st.CrossChecks)
	reg.Counter("rootless_refresher_source_quarantines_total",
		"bundle sources placed in quarantine hold-down", nil).Set(st.Quarantines)
	reg.Counter("rootless_refresher_trust_rollovers_total",
		"trust anchors promoted after add-hold-down", nil).Set(st.Trust.Rollovers)
	reg.Counter("rootless_refresher_trust_revocations_total",
		"trust anchors revoked", nil).Set(st.Trust.Revocations)
	reg.Gauge("rootless_refresher_trust_anchors", "currently valid trust anchors", nil).
		Set(float64(st.Trust.Valid))
	reg.Gauge("rootless_refresher_retry_delay_seconds",
		"current jittered retry backoff (0 while healthy)", nil).Set(st.RetryDelay.Seconds())
	fresh := 0.0
	if st.Fresh {
		fresh = 1
	}
	reg.Gauge("rootless_refresher_fresh", "1 while the copy is younger than Expiry", nil).Set(fresh)
	reg.Gauge("rootless_refresher_freshness_state",
		"staleness stage: 0 none, 1 fresh, 2 aging, 3 stale-serve, 4 expired", nil).
		Set(float64(st.Freshness))
	reg.Gauge("rootless_refresher_zone_serial", "serial of the installed copy", nil).Set(float64(st.Serial))
	if st.HaveZone {
		reg.Gauge("rootless_refresher_zone_age_seconds", "staleness age of the installed copy", nil).
			Set(st.Age.Seconds())
	}
}

// Due reports whether Tick would attempt a fetch now.
func (r *Refresher) Due() bool {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.haveZone || !now.Before(r.nextTry)
}

// attemptResult is one successful refresh outcome: either a new zone to
// install, or zone == nil meaning the installed copy was re-confirmed
// current (same serial) and only the freshness clock resets.
type attemptResult struct {
	zone       *zone.Zone
	serial     uint32
	chain      [32]byte
	deltaLinks int
	srcIdx     int
	superseded bool
}

// Tick attempts a fetch if one is due. It returns true if a new zone was
// installed. The fetch itself runs unlocked; only state updates are
// serialised (one Run loop drives Tick, scrapes read concurrently).
func (r *Refresher) Tick(ctx context.Context) bool {
	now := r.cfg.Clock()
	r.mu.Lock()
	if r.haveZone && now.Before(r.nextTry) {
		r.mu.Unlock()
		return false
	}
	r.fetches++
	haveZone, serial, curZone, chain := r.haveZone, r.serial, r.curZone, r.chain
	r.mu.Unlock()
	// The refresh trace uses a pseudo-question: the "query" a refresh
	// cycle answers is "what is the current root zone bundle".
	tr := r.cfg.Tracer.Begin("root-zone-refresh.", "BUNDLE")
	res, err := r.attempt(ctx, tr, now, haveZone, serial, curZone, chain)
	if err != nil {
		r.fail(now, err)
		tr.Finish("FAIL", 0, 0, err)
		return false
	}
	if res.zone == nil {
		tr.Eventf("refreshed", "serial %d re-confirmed current", serial)
		tr.Finish("OK", 0, 0, nil)
		r.success(now, res, false)
		return false
	}
	isp := tr.StartSpan(obs.PhaseOther, "install")
	err = r.cfg.Install(res.zone)
	isp.End()
	if err != nil {
		r.fail(now, err)
		tr.Finish("FAIL", 0, 0, err)
		return false
	}
	if res.deltaLinks > 0 {
		tr.Eventf("installed", "serial %d via %d delta links", res.serial, res.deltaLinks)
	} else {
		tr.Eventf("installed", "serial %d", res.serial)
	}
	tr.Finish("OK", 0, 0, nil)
	r.success(now, res, true)
	return true
}

// success commits a refresh outcome under the lock.
func (r *Refresher) success(now time.Time, res attemptResult, installed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastErr = nil
	r.obtained = now
	r.nextTry = now.Add(r.cfg.Refresh)
	r.retryDelay = 0
	if res.srcIdx != 0 {
		r.fallbacks++
	}
	if !installed {
		return
	}
	r.installs++
	r.serial = res.serial
	r.curZone = res.zone
	r.chain = res.chain
	r.haveZone = true
	r.lastAdvance = now
	if res.deltaLinks > 0 {
		r.deltas++
	}
	if res.superseded {
		r.supersedes++
	}
}

// attempt walks the failover chain: for each non-quarantined source it
// prefers signed delta catch-up (when the source supports it and a copy is
// installed), then the full bundle, verifying everything against the trust
// anchors and enforcing rollback protection. Normally the first source
// that delivers wins; once the serial has been stuck for CrossCheck, every
// source is consulted and the highest verified serial wins instead, so one
// frozen mirror cannot pin the population to an old zone. The staleness
// stage also drives desperation: with no zone installed, or once the copy
// has aged into the retry window, quarantine holds stop gating attempts —
// probing a possibly-bad mirror beats expiring. Every failed source
// contributes a labeled error to the returned errors.Join.
func (r *Refresher) attempt(ctx context.Context, tr *obs.Trace, now time.Time,
	haveZone bool, serial uint32, curZone *zone.Zone, chain [32]byte) (attemptResult, error) {
	r.mu.Lock()
	crossCheck := haveZone && r.cfg.CrossCheck > 0 && now.Sub(r.lastAdvance) >= r.cfg.CrossCheck
	desperate := !haveZone || now.Sub(r.obtained) > r.cfg.Refresh
	r.mu.Unlock()
	attempts := r.ms.Attempts()
	if desperate {
		attempts = r.ms.AllAttempts()
	}
	var errs []error
	var best attemptResult
	bestOK := false
	for _, idx := range attempts {
		label := r.ms.Label(idx)
		if idx != 0 {
			tr.Eventf("fallback", "trying %s", label)
		}
		res, err := r.trySource(ctx, tr, now, idx, haveZone, serial, curZone, chain)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", label, err))
			if ctx.Err() != nil {
				break
			}
			continue
		}
		res.srcIdx = idx
		if !crossCheck {
			r.ms.NoteGood(idx)
			return res, nil
		}
		if !bestOK || res.serial > best.serial || (res.zone != nil && best.zone == nil && res.serial == best.serial) {
			best, bestOK = res, true
		}
	}
	if bestOK {
		r.ms.NoteGood(best.srcIdx)
		r.mu.Lock()
		r.crossChecks++
		r.mu.Unlock()
		tr.Eventf("cross-check", "serial stuck at %d: best of all sources is %d from %s",
			serial, best.serial, r.ms.Label(best.srcIdx))
		return best, nil
	}
	return attemptResult{}, fmt.Errorf("dist: all sources failed: %w", errors.Join(errs...))
}

// trySource attempts one source: signed delta catch-up when supported,
// then the full bundle, with verification and rollback protection.
func (r *Refresher) trySource(ctx context.Context, tr *obs.Trace, now time.Time, idx int,
	haveZone bool, serial uint32, curZone *zone.Zone, chain [32]byte) (attemptResult, error) {
	label := r.ms.Label(idx)
	if haveZone && curZone != nil {
		if ds, ok := r.ms.Source(idx).(DeltaSource); ok {
			if res, ok := r.tryDeltaChain(ctx, tr, ds, now, curZone, chain); ok {
				return res, nil
			}
		}
	}
	fsp := tr.StartSpan(obs.PhaseNet, "fetch")
	bundle, err := r.ms.FetchIndex(ctx, idx)
	fsp.End()
	if err != nil {
		return attemptResult{}, err
	}
	vsp := tr.StartSpan(obs.PhaseAuth, "verify")
	z, err := r.verifyBundle(bundle)
	vsp.End()
	if err != nil {
		r.ms.NoteBad(idx)
		return attemptResult{}, err
	}
	res := attemptResult{zone: z, serial: bundle.Serial}
	if haveZone && bundle.Serial <= serial {
		switch {
		case bundle.Supersession != nil && bundle.Supersession.Replaces == serial &&
			r.verifySupersession(bundle) == nil:
			tr.Eventf("supersession", "serial %d supersedes %d", bundle.Serial, serial)
			res.superseded = true
		case bundle.Serial == serial:
			r.trust.Observe(z, now)
			return attemptResult{serial: serial, chain: chain}, nil
		default:
			r.mu.Lock()
			r.rollbacks++
			r.mu.Unlock()
			r.ms.NoteBad(idx)
			tr.Eventf("rollback", "%s offered serial %d, installed %d", label, bundle.Serial, serial)
			return attemptResult{}, fmt.Errorf("%w (offered %d, installed %d)",
				ErrRollback, bundle.Serial, serial)
		}
	}
	// Feed the trust store only zones that are current or advancing. A
	// replayed old zone predates a pending key, and observing it would
	// restart the key's RFC 5011 add-hold-down — letting a stale mirror
	// indefinitely delay a rollover until the publisher's signing switch
	// strands the client.
	r.trust.Observe(z, now)
	res.chain = ChainAnchor(z)
	return res, nil
}

// tryDeltaChain fetches and applies a signed delta chain from one source.
// Any failure — fetch error, broken link, bad signature — reports false,
// sending the caller to the full-bundle path for this source.
func (r *Refresher) tryDeltaChain(ctx context.Context, tr *obs.Trace, ds DeltaSource,
	now time.Time, curZone *zone.Zone, chain [32]byte) (attemptResult, bool) {
	dsp := tr.StartSpan(obs.PhaseNet, "delta-fetch")
	dbs, err := ds.FetchDeltaChain(ctx, curZone.Serial())
	dsp.End()
	if err != nil {
		return attemptResult{}, false
	}
	if len(dbs) == 0 {
		// Already current: a delta-capable source positively confirmed our
		// serial is its latest.
		return attemptResult{serial: curZone.Serial(), chain: chain}, true
	}
	asp := tr.StartSpan(obs.PhaseAuth, "delta-apply")
	defer asp.End()
	anchors := r.trust.ValidKeys()
	z, ch := curZone, chain
	for _, db := range dbs {
		if db.ToSerial <= z.Serial() {
			err = fmt.Errorf("%w: link %d→%d does not advance", ErrRollback, db.FromSerial, db.ToSerial)
		} else {
			z2, _, applyErr := db.Apply(z, ch, anchors, now)
			if applyErr == nil {
				z, ch = z2, db.ToChain
				continue
			}
			err = applyErr
		}
		r.mu.Lock()
		r.chainFalls++
		r.mu.Unlock()
		tr.Eventf("delta-chain", "broken at %d→%d (%v); falling back to full bundle",
			db.FromSerial, db.ToSerial, err)
		return attemptResult{}, false
	}
	r.trust.Observe(z, now)
	return attemptResult{zone: z, serial: z.Serial(), chain: ch, deltaLinks: len(dbs)}, true
}

// verifyBundle checks a bundle's detached signature against the anchor
// store and parses the zone.
func (r *Refresher) verifyBundle(b *Bundle) (*zone.Zone, error) {
	if err := r.trust.VerifyDetached(b.Compressed, b.Signature); err != nil {
		return nil, fmt.Errorf("dist: bundle signature: %w", err)
	}
	z, err := zone.Decompress(b.Compressed, dnswire.Root)
	if err != nil {
		return nil, fmt.Errorf("dist: bundle contents: %w", err)
	}
	if z.Serial() != b.Serial {
		return nil, fmt.Errorf("dist: bundle serial %d != zone serial %d", b.Serial, z.Serial())
	}
	return z, nil
}

// verifySupersession checks a bundle's supersession statement against any
// valid trust anchor.
func (r *Refresher) verifySupersession(b *Bundle) error {
	var lastErr error = ErrRollback
	for _, key := range r.trust.ValidKeys() {
		if key.KeyTag() != b.Supersession.Signature.KeyTag {
			continue
		}
		return b.VerifySupersession(key)
	}
	return lastErr
}

func (r *Refresher) fail(now time.Time, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures++
	r.lastErr = err
	// Decorrelated jitter: delay = min(RetryCap, rand[Retry, 3·previous]).
	base, ceil := r.cfg.Retry, r.cfg.RetryCap
	prev := r.retryDelay
	if prev < base {
		prev = base
	}
	d := base
	if span := 3*prev - base; span > 0 {
		d = base + time.Duration(r.rng.Int63n(int64(span)+1))
	}
	if d > ceil {
		d = ceil
	}
	// Never schedule the retry past the copy's expiry: the final attempt
	// inside the freshness window always happens.
	if r.haveZone {
		if exp := r.obtained.Add(r.cfg.Expiry); now.Before(exp) && now.Add(d).After(exp) {
			d = exp.Sub(now)
		}
	}
	r.retryDelay = d
	r.nextTry = now.Add(d)
}

// Run drives Tick on real time until ctx is cancelled. Experiments use
// Tick directly with a virtual clock instead.
func (r *Refresher) Run(ctx context.Context) {
	for {
		r.Tick(ctx)
		r.mu.Lock()
		next := r.nextTry
		r.mu.Unlock()
		wait := next.Sub(r.cfg.Clock())
		if wait < time.Second {
			wait = time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}
