package dist

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/zone"
)

// Source produces root zone bundles; implemented by HTTPClient, the gossip
// peer, and test fakes.
type Source interface {
	Fetch(ctx context.Context) (*Bundle, error)
}

// SourceFunc adapts a function to Source.
type SourceFunc func(ctx context.Context) (*Bundle, error)

// Fetch implements Source.
func (f SourceFunc) Fetch(ctx context.Context) (*Bundle, error) { return f(ctx) }

// RefresherConfig sets the refresh policy. The defaults encode the
// paper's §4 robustness arithmetic: with two-day TTLs a copy obtained at
// time X is refreshed at X+42 h, leaving a 6-hour retry window before the
// copy expires at X+48 h and lookups are actually impacted.
type RefresherConfig struct {
	Source Source
	// KSK verifies bundle signatures.
	KSK dnswire.DNSKEY
	// Install receives each verified zone (e.g. resolver.SetLocalZone).
	Install func(*zone.Zone) error
	// Refresh is the planned interval between fetches (default 42 h).
	Refresh time.Duration
	// Retry is the base pause after a failure (default 1 h). Successive
	// failures back off with decorrelated jitter — delay = min(RetryCap,
	// rand[Retry, 3·previous]) — so a resolver population that lost its
	// distribution channel does not retry in lockstep (§5.2's load
	// concern). The retry is never scheduled past the copy's expiry
	// moment: the last attempt inside the freshness window always runs.
	Retry time.Duration
	// RetryCap bounds backoff growth (default Expiry, the 48 h window).
	RetryCap time.Duration
	// Expiry is the zone copy's maximum age (default 48 h).
	Expiry time.Duration
	// Fallbacks are alternative bundle sources (gossip peers, secondary
	// mirrors) tried in order when Source fails — §3's organic delivery
	// forms as failover. Every source's bundle passes the same KSK
	// verification, so a fallback peer substitutes availability, never
	// content.
	Fallbacks []Source
	// Seed makes the retry jitter deterministic (experiments/tests).
	Seed int64
	// Clock supplies time (virtual in experiments); nil = time.Now.
	Clock func() time.Time
	// Tracer, when set and enabled, records one trace per attempted
	// refresh cycle with fetch/verify/install spans, so zone-distribution
	// time shows up on /tracez next to resolution traces.
	Tracer *obs.Tracer
}

// Refresher drives the periodic fetch → verify → install loop. It is
// clock-driven rather than goroutine-driven so experiments can step
// virtual time; Tick must be called whenever time may have passed (a
// convenience Run loop exists for real deployments). State and Collect
// are safe to call from an admin scrape while Run ticks.
type Refresher struct {
	cfg RefresherConfig

	mu         sync.Mutex
	rng        *rand.Rand // retry jitter; guarded by mu
	obtained   time.Time  // when the current copy was fetched
	nextTry    time.Time
	retryDelay time.Duration // last backoff delay drawn (0 after success)
	serial     uint32
	haveZone   bool
	fetches    int64
	failures   int64
	installs   int64
	fallbacks  int64 // bundles obtained from a fallback source
	lastErr    error
}

// NewRefresher validates the config and applies defaults.
func NewRefresher(cfg RefresherConfig) (*Refresher, error) {
	if cfg.Source == nil || cfg.Install == nil {
		return nil, errors.New("dist: Refresher needs Source and Install")
	}
	if cfg.Refresh == 0 {
		cfg.Refresh = 42 * time.Hour
	}
	if cfg.Retry == 0 {
		cfg.Retry = time.Hour
	}
	if cfg.Expiry == 0 {
		cfg.Expiry = 48 * time.Hour
	}
	if cfg.RetryCap == 0 {
		cfg.RetryCap = cfg.Expiry
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Refresher{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// State reports the refresher's externally visible condition.
type State struct {
	HaveZone bool
	// Fresh is false once the copy is older than Expiry — the moment the
	// paper says lookups are actually impacted.
	Fresh    bool
	Serial   uint32
	Age      time.Duration
	Fetches  int64
	Failures int64
	Installs int64
	// FallbackFetches counts bundles that came from a fallback source
	// after the primary failed.
	FallbackFetches int64
	// RetryDelay is the current backoff delay (0 while healthy).
	RetryDelay time.Duration
	LastErr    error
}

// State returns the current state.
func (r *Refresher) State() State {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	age := now.Sub(r.obtained)
	return State{
		HaveZone:        r.haveZone,
		Fresh:           r.haveZone && age <= r.cfg.Expiry,
		Serial:          r.serial,
		Age:             age,
		Fetches:         r.fetches,
		Failures:        r.failures,
		Installs:        r.installs,
		FallbackFetches: r.fallbacks,
		RetryDelay:      r.retryDelay,
		LastErr:         r.lastErr,
	}
}

// Collect implements obs.Collector: fetch/install counters plus the
// freshness gauges the paper's §4 robustness arithmetic is about.
func (r *Refresher) Collect(reg *obs.Registry) {
	st := r.State()
	reg.Counter("rootless_refresher_fetches_total", "fetch attempts", nil).Set(st.Fetches)
	reg.Counter("rootless_refresher_failures_total", "failed fetch/verify/install attempts", nil).Set(st.Failures)
	reg.Counter("rootless_refresher_installs_total", "verified zones installed", nil).Set(st.Installs)
	reg.Counter("rootless_refresher_fallback_fetches_total",
		"bundles obtained from a fallback source after the primary failed", nil).Set(st.FallbackFetches)
	reg.Gauge("rootless_refresher_retry_delay_seconds",
		"current jittered retry backoff (0 while healthy)", nil).Set(st.RetryDelay.Seconds())
	fresh := 0.0
	if st.Fresh {
		fresh = 1
	}
	reg.Gauge("rootless_refresher_fresh", "1 while the copy is younger than Expiry", nil).Set(fresh)
	reg.Gauge("rootless_refresher_zone_serial", "serial of the installed copy", nil).Set(float64(st.Serial))
	if st.HaveZone {
		reg.Gauge("rootless_refresher_zone_age_seconds", "staleness age of the installed copy", nil).
			Set(st.Age.Seconds())
	}
}

// Due reports whether Tick would attempt a fetch now.
func (r *Refresher) Due() bool {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.haveZone || !now.Before(r.nextTry)
}

// Tick attempts a fetch if one is due. It returns true if a new zone was
// installed. The fetch itself runs unlocked; only state updates are
// serialised (one Run loop drives Tick, scrapes read concurrently).
func (r *Refresher) Tick(ctx context.Context) bool {
	now := r.cfg.Clock()
	r.mu.Lock()
	if r.haveZone && now.Before(r.nextTry) {
		r.mu.Unlock()
		return false
	}
	r.fetches++
	r.mu.Unlock()
	// The refresh trace uses a pseudo-question: the "query" a refresh
	// cycle answers is "what is the current root zone bundle".
	tr := r.cfg.Tracer.Begin("root-zone-refresh.", "BUNDLE")
	bundle, z, err := r.fetchVerify(ctx, tr)
	if err != nil {
		r.fail(now, err)
		tr.Finish("FAIL", 0, 0, err)
		return false
	}
	isp := tr.StartSpan(obs.PhaseOther, "install")
	err = r.cfg.Install(z)
	isp.End()
	if err != nil {
		r.fail(now, err)
		tr.Finish("FAIL", 0, 0, err)
		return false
	}
	tr.Eventf("installed", "serial %d", bundle.Serial)
	tr.Finish("OK", 0, 0, nil)
	r.mu.Lock()
	r.installs++
	r.lastErr = nil
	r.obtained = now
	r.serial = bundle.Serial
	r.haveZone = true
	r.nextTry = now.Add(r.cfg.Refresh)
	r.retryDelay = 0
	r.mu.Unlock()
	return true
}

// fetchVerify tries the primary source, then each fallback in order,
// until a bundle both fetches and verifies. The first error is reported
// (the primary's failure is the interesting one; fallbacks are the
// workaround).
func (r *Refresher) fetchVerify(ctx context.Context, tr *obs.Trace) (*Bundle, *zone.Zone, error) {
	var firstErr error
	for i, src := range append([]Source{r.cfg.Source}, r.cfg.Fallbacks...) {
		if i > 0 {
			tr.Eventf("fallback", "primary failed; trying fallback source %d", i)
		}
		fsp := tr.StartSpan(obs.PhaseNet, "fetch")
		bundle, err := src.Fetch(ctx)
		fsp.End()
		if err == nil {
			var z *zone.Zone
			vsp := tr.StartSpan(obs.PhaseAuth, "verify")
			z, err = bundle.Verify(r.cfg.KSK)
			vsp.End()
			if err == nil {
				if i > 0 {
					r.mu.Lock()
					r.fallbacks++
					r.mu.Unlock()
				}
				return bundle, z, nil
			}
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, nil, firstErr
}

func (r *Refresher) fail(now time.Time, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures++
	r.lastErr = err
	// Decorrelated jitter: delay = min(RetryCap, rand[Retry, 3·previous]).
	base, ceil := r.cfg.Retry, r.cfg.RetryCap
	prev := r.retryDelay
	if prev < base {
		prev = base
	}
	d := base
	if span := 3*prev - base; span > 0 {
		d = base + time.Duration(r.rng.Int63n(int64(span)+1))
	}
	if d > ceil {
		d = ceil
	}
	// Never schedule the retry past the copy's expiry: the final attempt
	// inside the freshness window always happens.
	if r.haveZone {
		if exp := r.obtained.Add(r.cfg.Expiry); now.Before(exp) && now.Add(d).After(exp) {
			d = exp.Sub(now)
		}
	}
	r.retryDelay = d
	r.nextTry = now.Add(d)
}

// Run drives Tick on real time until ctx is cancelled. Experiments use
// Tick directly with a virtual clock instead.
func (r *Refresher) Run(ctx context.Context) {
	for {
		r.Tick(ctx)
		r.mu.Lock()
		next := r.nextTry
		r.mu.Unlock()
		wait := next.Sub(r.cfg.Clock())
		if wait < time.Second {
			wait = time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}
