package dist

import (
	"context"
	"errors"
	"sync"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/zone"
)

// Source produces root zone bundles; implemented by HTTPClient, the gossip
// peer, and test fakes.
type Source interface {
	Fetch(ctx context.Context) (*Bundle, error)
}

// SourceFunc adapts a function to Source.
type SourceFunc func(ctx context.Context) (*Bundle, error)

// Fetch implements Source.
func (f SourceFunc) Fetch(ctx context.Context) (*Bundle, error) { return f(ctx) }

// RefresherConfig sets the refresh policy. The defaults encode the
// paper's §4 robustness arithmetic: with two-day TTLs a copy obtained at
// time X is refreshed at X+42 h, leaving a 6-hour retry window before the
// copy expires at X+48 h and lookups are actually impacted.
type RefresherConfig struct {
	Source Source
	// KSK verifies bundle signatures.
	KSK dnswire.DNSKEY
	// Install receives each verified zone (e.g. resolver.SetLocalZone).
	Install func(*zone.Zone) error
	// Refresh is the planned interval between fetches (default 42 h).
	Refresh time.Duration
	// Retry is the pause between attempts after a failure (default 1 h).
	Retry time.Duration
	// Expiry is the zone copy's maximum age (default 48 h).
	Expiry time.Duration
	// Clock supplies time (virtual in experiments); nil = time.Now.
	Clock func() time.Time
}

// Refresher drives the periodic fetch → verify → install loop. It is
// clock-driven rather than goroutine-driven so experiments can step
// virtual time; Tick must be called whenever time may have passed (a
// convenience Run loop exists for real deployments). State and Collect
// are safe to call from an admin scrape while Run ticks.
type Refresher struct {
	cfg RefresherConfig

	mu       sync.Mutex
	obtained time.Time // when the current copy was fetched
	nextTry  time.Time
	serial   uint32
	haveZone bool
	fetches  int64
	failures int64
	installs int64
	lastErr  error
}

// NewRefresher validates the config and applies defaults.
func NewRefresher(cfg RefresherConfig) (*Refresher, error) {
	if cfg.Source == nil || cfg.Install == nil {
		return nil, errors.New("dist: Refresher needs Source and Install")
	}
	if cfg.Refresh == 0 {
		cfg.Refresh = 42 * time.Hour
	}
	if cfg.Retry == 0 {
		cfg.Retry = time.Hour
	}
	if cfg.Expiry == 0 {
		cfg.Expiry = 48 * time.Hour
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Refresher{cfg: cfg}, nil
}

// State reports the refresher's externally visible condition.
type State struct {
	HaveZone bool
	// Fresh is false once the copy is older than Expiry — the moment the
	// paper says lookups are actually impacted.
	Fresh    bool
	Serial   uint32
	Age      time.Duration
	Fetches  int64
	Failures int64
	Installs int64
	LastErr  error
}

// State returns the current state.
func (r *Refresher) State() State {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	age := now.Sub(r.obtained)
	return State{
		HaveZone: r.haveZone,
		Fresh:    r.haveZone && age <= r.cfg.Expiry,
		Serial:   r.serial,
		Age:      age,
		Fetches:  r.fetches,
		Failures: r.failures,
		Installs: r.installs,
		LastErr:  r.lastErr,
	}
}

// Collect implements obs.Collector: fetch/install counters plus the
// freshness gauges the paper's §4 robustness arithmetic is about.
func (r *Refresher) Collect(reg *obs.Registry) {
	st := r.State()
	reg.Counter("rootless_refresher_fetches_total", "fetch attempts", nil).Set(st.Fetches)
	reg.Counter("rootless_refresher_failures_total", "failed fetch/verify/install attempts", nil).Set(st.Failures)
	reg.Counter("rootless_refresher_installs_total", "verified zones installed", nil).Set(st.Installs)
	fresh := 0.0
	if st.Fresh {
		fresh = 1
	}
	reg.Gauge("rootless_refresher_fresh", "1 while the copy is younger than Expiry", nil).Set(fresh)
	reg.Gauge("rootless_refresher_zone_serial", "serial of the installed copy", nil).Set(float64(st.Serial))
	if st.HaveZone {
		reg.Gauge("rootless_refresher_zone_age_seconds", "staleness age of the installed copy", nil).
			Set(st.Age.Seconds())
	}
}

// Due reports whether Tick would attempt a fetch now.
func (r *Refresher) Due() bool {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.haveZone || !now.Before(r.nextTry)
}

// Tick attempts a fetch if one is due. It returns true if a new zone was
// installed. The fetch itself runs unlocked; only state updates are
// serialised (one Run loop drives Tick, scrapes read concurrently).
func (r *Refresher) Tick(ctx context.Context) bool {
	now := r.cfg.Clock()
	r.mu.Lock()
	if r.haveZone && now.Before(r.nextTry) {
		r.mu.Unlock()
		return false
	}
	r.fetches++
	r.mu.Unlock()
	bundle, err := r.cfg.Source.Fetch(ctx)
	if err != nil {
		r.fail(now, err)
		return false
	}
	z, err := bundle.Verify(r.cfg.KSK)
	if err != nil {
		r.fail(now, err)
		return false
	}
	if err := r.cfg.Install(z); err != nil {
		r.fail(now, err)
		return false
	}
	r.mu.Lock()
	r.installs++
	r.lastErr = nil
	r.obtained = now
	r.serial = bundle.Serial
	r.haveZone = true
	r.nextTry = now.Add(r.cfg.Refresh)
	r.mu.Unlock()
	return true
}

func (r *Refresher) fail(now time.Time, err error) {
	r.mu.Lock()
	r.failures++
	r.lastErr = err
	r.nextTry = now.Add(r.cfg.Retry)
	r.mu.Unlock()
}

// Run drives Tick on real time until ctx is cancelled. Experiments use
// Tick directly with a virtual clock instead.
func (r *Refresher) Run(ctx context.Context) {
	for {
		r.Tick(ctx)
		r.mu.Lock()
		next := r.nextTry
		r.mu.Unlock()
		wait := next.Sub(r.cfg.Clock())
		if wait < time.Second {
			wait = time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}
