package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) { return d.r.Read(p) }

func testSigner(t *testing.T) *dnssec.Signer {
	t.Helper()
	s, err := dnssec.NewSigner(dnswire.Root, detRand{rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testZone(t *testing.T, serial uint32, extra string) *zone.Zone {
	t.Helper()
	src := `
. 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. ` +
		// serial patched below
		`SERIAL 1800 900 604800 86400
. 518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 198.41.0.4
com. 172800 IN NS a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
org. 172800 IN NS a0.org.afilias-nst.info.
a0.org.afilias-nst.info. 172800 IN A 199.19.56.1
` + extra
	src = strings.Replace(src, "SERIAL", itoa(serial), 1)
	z, err := zone.Parse(strings.NewReader(src), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func itoa(v uint32) string {
	return strings.TrimSpace(strings.ReplaceAll(strings.Join([]string{string(rune(0))}, ""), "\x00", "")) + uitoa(v)
}

func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// ---- rsync algorithm ----

func TestRsyncIdentical(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox\n", 200))
	sig := SignBlocks(data, 64)
	ops := ComputeDelta(sig, data)
	for _, op := range ops {
		if op.Block < 0 {
			t.Fatalf("identical data produced literal of %d bytes", len(op.Literal))
		}
	}
	out, err := ApplyDelta(data, sig, ops)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("reconstruction failed: %v", err)
	}
	if DeltaSize(ops) >= len(data)/4 {
		t.Errorf("identical-data delta too large: %d vs %d", DeltaSize(ops), len(data))
	}
}

func TestRsyncSmallChange(t *testing.T) {
	old := []byte(strings.Repeat("record line with some content here\n", 500))
	new := append([]byte{}, old...)
	// Change one byte in the middle and insert a line near the end.
	new[len(new)/2] = 'X'
	insert := []byte("a brand new TLD line appears\n")
	pos := len(new) - 100
	new = append(new[:pos], append(insert, new[pos:]...)...)

	sig := SignBlocks(old, DefaultBlockSize)
	ops := ComputeDelta(sig, new)
	out, err := ApplyDelta(old, sig, ops)
	if err != nil || !bytes.Equal(out, new) {
		t.Fatalf("reconstruction failed: %v", err)
	}
	if ds := DeltaSize(ops); ds > len(new)/3 {
		t.Errorf("delta %d bytes for small change to %d-byte file", ds, len(new))
	}
}

func TestRsyncFromEmpty(t *testing.T) {
	sig := SignBlocks(nil, 64)
	data := []byte("fresh content never seen before")
	ops := ComputeDelta(sig, data)
	out, err := ApplyDelta(nil, sig, ops)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("from-empty failed: %v", err)
	}
}

func TestRsyncEncodeDecode(t *testing.T) {
	ops := []Op{{Block: 3}, {Block: -1, Literal: []byte("abc")}, {Block: 0}, {Block: -1, Literal: []byte{}}}
	enc := EncodeDelta(ops)
	dec, err := DecodeDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 4 || dec[0].Block != 3 || string(dec[1].Literal) != "abc" || dec[2].Block != 0 {
		t.Fatalf("decode mismatch: %+v", dec)
	}
	if _, err := DecodeDelta(enc[:3]); err == nil {
		t.Error("truncated tag accepted")
	}
	bad := EncodeDelta([]Op{{Block: -1, Literal: []byte("xyz")}})
	if _, err := DecodeDelta(bad[:5]); err == nil {
		t.Error("truncated literal accepted")
	}
}

func TestRsyncRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		old := make([]byte, r.Intn(5000))
		r.Read(old)
		// Mutate: random splices.
		new := append([]byte{}, old...)
		for k := 0; k < r.Intn(5); k++ {
			if len(new) == 0 {
				break
			}
			pos := r.Intn(len(new))
			switch r.Intn(3) {
			case 0: // flip
				new[pos] ^= 0xFF
			case 1: // insert
				ins := make([]byte, 1+r.Intn(100))
				r.Read(ins)
				new = append(new[:pos], append(ins, new[pos:]...)...)
			default: // delete
				end := pos + r.Intn(len(new)-pos)
				new = append(new[:pos], new[end:]...)
			}
		}
		bs := 16 << r.Intn(5)
		sig := SignBlocks(old, bs)
		ops := ComputeDelta(sig, new)
		enc := EncodeDelta(ops)
		dec, err := DecodeDelta(enc)
		if err != nil {
			return false
		}
		out, err := ApplyDelta(old, sig, dec)
		return err == nil && bytes.Equal(out, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// ---- bundles ----

func TestBundleRoundTripAndVerify(t *testing.T) {
	s := testSigner(t)
	z := testZone(t, 2019060700, "")
	b, err := MakeBundle(z, s)
	if err != nil {
		t.Fatal(err)
	}
	enc := b.Encode()
	dec, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Verify(s.KSK.DNSKEY)
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial() != 2019060700 || got.Len() != z.Len() {
		t.Errorf("verified zone: serial=%d len=%d", got.Serial(), got.Len())
	}
	// Tampering breaks verification.
	bad := *dec
	bad.Compressed = append([]byte(nil), dec.Compressed...)
	bad.Compressed[10] ^= 1
	if _, err := bad.Verify(s.KSK.DNSKEY); err == nil {
		t.Error("tampered bundle verified")
	}
	// Wrong key breaks verification.
	other := testSigner(t)
	otherKey, _ := dnssec.GenerateKey(dnswire.Root, true, detRand{rand.New(rand.NewSource(99))})
	_ = other
	if _, err := dec.Verify(otherKey.DNSKEY); err == nil {
		t.Error("foreign key verified")
	}
	// Garbage decodes fail cleanly.
	if _, err := DecodeBundle([]byte("nope")); err == nil {
		t.Error("garbage bundle decoded")
	}
	if _, err := DecodeBundle(enc[:10]); err == nil {
		t.Error("truncated bundle decoded")
	}
}

func TestBundleVerifyFull(t *testing.T) {
	s := testSigner(t)
	z := testZone(t, 2019060700, "")
	now := time.Unix(1559900000, 0)
	if err := s.SignZone(z, now); err != nil {
		t.Fatal(err)
	}
	b, err := MakeBundle(z, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.VerifyFull(s.TrustAnchor(), now)
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial() != 2019060700 {
		t.Errorf("serial = %d", got.Serial())
	}
}

// ---- mirror over real HTTP ----

func TestMirrorHTTPFull(t *testing.T) {
	s := testSigner(t)
	m := NewMirror(s, 4)
	if err := m.Publish(testZone(t, 100, "")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()

	c := NewHTTPClient(srv.URL)
	b, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if b.Serial != 100 {
		t.Errorf("serial = %d", b.Serial)
	}
	if _, err := b.Verify(s.KSK.DNSKEY); err != nil {
		t.Fatal(err)
	}
	if c.BytesFetched() == 0 {
		t.Error("no bytes accounted")
	}
}

// bulkTLDs generates n synthetic TLD delegation lines so the zone text is
// large enough for delta syncs to pay off, as the real root zone is.
func bulkTLDs(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "tld%04d. 172800 IN NS ns0.nic.tld%04d.\n", i, i)
		fmt.Fprintf(&sb, "ns0.nic.tld%04d. 172800 IN A 100.64.%d.%d\n", i, i/250, 1+i%250)
	}
	return sb.String()
}

func TestMirrorDeltaSync(t *testing.T) {
	s := testSigner(t)
	m := NewMirror(s, 4)
	if err := m.Publish(testZone(t, 100, bulkTLDs(400))); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)

	// First sync is a full fetch.
	text1, serial1, bytes1, err := c.SyncText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if serial1 != 100 || len(text1) == 0 {
		t.Fatalf("sync1: serial=%d len=%d", serial1, len(text1))
	}

	// Publish a slightly changed zone; second sync must be a small delta.
	if err := m.Publish(testZone(t, 101, bulkTLDs(400)+"newtld. 172800 IN NS ns0.nic.newtld.\nns0.nic.newtld. 172800 IN A 100.1.2.3\n")); err != nil {
		t.Fatal(err)
	}
	text2, serial2, bytes2, err := c.SyncText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if serial2 != 101 {
		t.Fatalf("sync2 serial = %d", serial2)
	}
	if !strings.Contains(string(text2), "newtld.") {
		t.Error("delta-synced text missing new TLD")
	}
	if bytes2 >= bytes1 {
		t.Errorf("delta sync (%d B) not smaller than full fetch (%d B)", bytes2, bytes1)
	}
	full, delta := c.Fetches()
	if full != 1 || delta != 1 {
		t.Errorf("fetches: full=%d delta=%d", full, delta)
	}
	// The delta-synced text must reparse into the published zone.
	z2, err := zone.Parse(strings.NewReader(string(text2)), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	if z2.Serial() != 101 {
		t.Errorf("reparsed serial = %d", z2.Serial())
	}
}

func TestMirrorDeltaWindowEviction(t *testing.T) {
	s := testSigner(t)
	m := NewMirror(s, 2)
	for serial := uint32(1); serial <= 5; serial++ {
		if err := m.Publish(testZone(t, serial, "")); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(m)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	// Pretend we hold serial 1 (evicted): delta must 404 and the client
	// must transparently fall back to a full fetch.
	c.mu.Lock()
	c.serial, c.text = 1, []byte("stale")
	c.mu.Unlock()
	_, serial, _, err := c.SyncText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if serial != 5 {
		t.Errorf("fallback sync serial = %d", serial)
	}
	full, _ := c.Fetches()
	if full != 1 {
		t.Errorf("full fetches = %d", full)
	}
}

// ---- refresher ----

// vclock is a settable virtual clock.
type vclock struct{ t time.Time }

func (v *vclock) now() time.Time          { return v.t }
func (v *vclock) advance(d time.Duration) { v.t = v.t.Add(d) }

func TestRefresherHappyPath(t *testing.T) {
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	serial := uint32(1)
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, serial, ""), s)
	})
	var installed []uint32
	r, err := NewRefresher(RefresherConfig{
		Source: src,
		KSK:    s.KSK.DNSKEY,
		Install: func(z *zone.Zone) error {
			installed = append(installed, z.Serial())
			return nil
		},
		Clock: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("initial fetch failed")
	}
	st := r.State()
	if !st.HaveZone || !st.Fresh || st.Serial != 1 {
		t.Fatalf("state: %+v", st)
	}
	// Not due before 42 h.
	clk.advance(41 * time.Hour)
	if r.Tick(context.Background()) {
		t.Error("refreshed before schedule")
	}
	// Due at 42 h; new serial arrives.
	serial = 2
	clk.advance(2 * time.Hour)
	if !r.Tick(context.Background()) {
		t.Error("did not refresh on schedule")
	}
	if got := r.State().Serial; got != 2 {
		t.Errorf("serial = %d", got)
	}
	if len(installed) != 2 {
		t.Errorf("installs = %v", installed)
	}
}

func TestRefresherRetryWindow(t *testing.T) {
	// The paper's robustness arithmetic: fetch at X, refresh attempt at
	// X+42 h fails, jittered retries follow; no retry is ever scheduled
	// past X+48 h, so if the source recovers inside the 6-hour window the
	// copy never goes stale.
	s := testSigner(t)
	t0 := time.Unix(1555000000, 0)
	clk := &vclock{t: t0}
	failing := true
	serial := uint32(7)
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		if failing {
			return nil, errors.New("mirror unreachable")
		}
		return MakeBundle(testZone(t, serial, ""), s)
	})
	r, err := NewRefresher(RefresherConfig{
		Source:  src,
		KSK:     s.KSK.DNSKEY,
		Install: func(*zone.Zone) error { return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	failing = false
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}
	failing = true

	// At X+42h the refresh fails. Walk the retry schedule: every attempt
	// must land at or before the X+48h expiry moment, and the copy stays
	// fresh throughout.
	exp := t0.Add(48 * time.Hour)
	clk.t = t0.Add(42 * time.Hour)
	retries := 0
	for clk.t.Before(exp) {
		r.Tick(context.Background())
		if st := r.State(); !st.Fresh {
			t.Fatalf("copy went stale at %v (age %v): %+v", clk.t.Sub(t0), st.Age, st)
		}
		r.mu.Lock()
		next := r.nextTry
		r.mu.Unlock()
		if next.After(exp) {
			t.Fatalf("retry scheduled at %v, past the expiry window end %v",
				next.Sub(t0), exp.Sub(t0))
		}
		clk.t = next
		retries++
		if retries > 100 {
			t.Fatal("retry schedule did not reach the expiry window end")
		}
	}
	if retries < 2 {
		t.Fatalf("only %d retries fit in the 6-hour window", retries)
	}
	// Source recovers for the final attempt, which lands exactly at the
	// expiry moment: freshness restored without any stale period.
	failing = false
	serial = 8
	if !r.Tick(context.Background()) {
		t.Fatal("recovery fetch failed")
	}
	if st := r.State(); !st.Fresh || st.Failures == 0 || st.RetryDelay != 0 {
		t.Fatalf("state after recovery: %+v", st)
	}
}

func TestRefresherBackoffJitter(t *testing.T) {
	// Retry delays follow decorrelated jitter: each within [Retry,
	// RetryCap], growing from the base, and reproducible from the seed.
	delaySeq := func(seed int64) []time.Duration {
		s := testSigner(t)
		clk := &vclock{t: time.Unix(1555000000, 0)}
		failing := false
		src := SourceFunc(func(context.Context) (*Bundle, error) {
			if failing {
				return nil, errors.New("mirror unreachable")
			}
			return MakeBundle(testZone(t, 1, ""), s)
		})
		r, err := NewRefresher(RefresherConfig{
			Source:   src,
			KSK:      s.KSK.DNSKEY,
			Install:  func(*zone.Zone) error { return nil },
			Expiry:   1000 * time.Hour, // keep the expiry clamp out of the way
			RetryCap: 8 * time.Hour,
			Seed:     seed,
			Clock:    clk.now,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Tick(context.Background()) {
			t.Fatal("bootstrap failed")
		}
		failing = true
		clk.advance(42 * time.Hour)
		var seq []time.Duration
		for i := 0; i < 10; i++ {
			before := clk.t
			r.Tick(context.Background())
			r.mu.Lock()
			next := r.nextTry
			r.mu.Unlock()
			seq = append(seq, next.Sub(before))
			clk.t = next
		}
		return seq
	}

	seq := delaySeq(42)
	for i, d := range seq {
		if d < time.Hour || d > 8*time.Hour {
			t.Errorf("delay[%d] = %v, want within [1h, 8h]", i, d)
		}
	}
	grew := false
	for _, d := range seq {
		if d > time.Hour {
			grew = true
		}
	}
	if !grew {
		t.Errorf("backoff never grew past the base: %v", seq)
	}

	// Determinism: same seed, same schedule; different seed diverges.
	same := delaySeq(42)
	for i := range seq {
		if seq[i] != same[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, seq[i], same[i])
		}
	}
	other := delaySeq(1)
	diverged := false
	for i := range seq {
		if seq[i] != other[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical jitter schedules")
	}
}

func TestRefresherFallbackSources(t *testing.T) {
	// When the primary channel fails, the refresher fails over to its
	// fallback sources (gossip peers) — and the fallback's bundle still
	// has to verify against the KSK.
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	primary := SourceFunc(func(context.Context) (*Bundle, error) {
		return nil, errors.New("mirror unreachable")
	})
	evil, err := dnssec.NewSigner(dnswire.Root, detRand{rand.New(rand.NewSource(99))})
	if err != nil {
		t.Fatal(err)
	}
	badPeer := SourceFunc(func(context.Context) (*Bundle, error) {
		// Signed with the wrong key: the bundle must be rejected even
		// though the peer is reachable.
		return MakeBundle(testZone(t, 9, ""), evil)
	})
	goodPeer := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, 3, ""), s)
	})
	var installed []uint32
	r, err := NewRefresher(RefresherConfig{
		Source: primary,
		KSK:    s.KSK.DNSKEY,
		Install: func(z *zone.Zone) error {
			installed = append(installed, z.Serial())
			return nil
		},
		Fallbacks: []Source{badPeer, goodPeer},
		Clock:     clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("fetch did not fail over to the good peer")
	}
	st := r.State()
	if st.Serial != 3 || st.FallbackFetches != 1 {
		t.Fatalf("state after failover: %+v", st)
	}
	if len(installed) != 1 || installed[0] != 3 {
		t.Fatalf("installed = %v, want the peer's serial 3 only", installed)
	}
}

func TestRefresherExpiry(t *testing.T) {
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	calls := 0
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		calls++
		if calls == 1 {
			return MakeBundle(testZone(t, 1, ""), s)
		}
		return nil, errors.New("mirror down hard")
	})
	r, err := NewRefresher(RefresherConfig{
		Source:  src,
		KSK:     s.KSK.DNSKEY,
		Install: func(*zone.Zone) error { return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Tick(context.Background())
	clk.advance(49 * time.Hour)
	r.Tick(context.Background()) // fails
	st := r.State()
	if st.Fresh {
		t.Error("copy still fresh after 49h with no refresh")
	}
	if !st.HaveZone {
		t.Error("zone should still be present, merely stale")
	}
	if st.LastErr == nil {
		t.Error("LastErr not recorded")
	}
}

func TestRefresherRejectsBadSignature(t *testing.T) {
	s := testSigner(t)
	evil, _ := dnssec.NewSigner(dnswire.Root, detRand{rand.New(rand.NewSource(666))})
	clk := &vclock{t: time.Unix(1555000000, 0)}
	src := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, 1, "poisoned. 172800 IN NS evil.attacker.\n"), evil)
	})
	installs := 0
	r, err := NewRefresher(RefresherConfig{
		Source:  src,
		KSK:     s.KSK.DNSKEY, // trusts the honest KSK
		Install: func(*zone.Zone) error { installs++; return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tick(context.Background()) {
		t.Fatal("evil bundle installed")
	}
	if installs != 0 {
		t.Fatal("install ran for unverified zone")
	}
	if r.State().Failures != 1 {
		t.Errorf("state: %+v", r.State())
	}
}

func TestNewRefresherValidation(t *testing.T) {
	if _, err := NewRefresher(RefresherConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

// ---- gossip ----

func TestGossipPropagation(t *testing.T) {
	s := testSigner(t)
	b, err := MakeBundle(testZone(t, 42, ""), s)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGossip(1000, 7)
	g.Seed(b, 5)
	rounds, err := g.RoundsToCoverage(42, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	// Epidemic spread reaches ~everyone in O(log n) rounds.
	if rounds > 15 {
		t.Errorf("gossip took %d rounds for 1000 peers", rounds)
	}
	if g.Coverage(42) < 0.999 {
		t.Error("coverage target not reached")
	}
	st := g.Stats()
	if st.Transfers < 990 || st.Bytes == 0 {
		t.Errorf("stats: %+v", st)
	}
	// A peer can then act as a refresher source.
	if _, err := g.PeerSource(0).Fetch(context.Background()); err != nil {
		t.Error(err)
	}
	if _, err := g.PeerSource(len(g.peers)).Fetch(context.Background()); err == nil {
		t.Error("out-of-range peer fetched")
	}
}

func TestMultiSourceFailover(t *testing.T) {
	s := testSigner(t)
	good, err := MakeBundle(testZone(t, 9, ""), s)
	if err != nil {
		t.Fatal(err)
	}
	downA, downB := true, false
	srcA := SourceFunc(func(context.Context) (*Bundle, error) {
		if downA {
			return nil, errors.New("mirror A unreachable")
		}
		return good, nil
	})
	srcB := SourceFunc(func(context.Context) (*Bundle, error) {
		if downB {
			return nil, errors.New("mirror B unreachable")
		}
		return good, nil
	})
	ms, err := NewMultiSource([]Source{srcA, srcB}, []string{"mirror-a", "mirror-b"})
	if err != nil {
		t.Fatal(err)
	}

	// A down: fetch succeeds via B and B becomes preferred.
	if _, err := ms.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ms.Preferred() != "mirror-b" || ms.Failovers() != 1 {
		t.Errorf("preferred=%s failovers=%d", ms.Preferred(), ms.Failovers())
	}
	// B keeps serving without touching A (sticky preference).
	if _, err := ms.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ms.Failovers() != 1 {
		t.Errorf("failovers = %d after steady fetch", ms.Failovers())
	}
	// B dies, A recovers: failover back.
	downA, downB = false, true
	if _, err := ms.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ms.Preferred() != "mirror-a" || ms.Failovers() != 2 {
		t.Errorf("preferred=%s failovers=%d", ms.Preferred(), ms.Failovers())
	}
	// Everything down: aggregate error names both sources.
	downA = true
	_, err = ms.Fetch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "mirror-a") || !strings.Contains(err.Error(), "mirror-b") {
		t.Errorf("aggregate error: %v", err)
	}
}

func TestMultiSourceValidation(t *testing.T) {
	if _, err := NewMultiSource(nil, nil); err == nil {
		t.Error("empty source list accepted")
	}
	src := SourceFunc(func(context.Context) (*Bundle, error) { return nil, nil })
	if _, err := NewMultiSource([]Source{src}, []string{"a", "b"}); err == nil {
		t.Error("mismatched labels accepted")
	}
}

func TestMultiSourceWithRefresher(t *testing.T) {
	// The failover chain slots straight into the Refresher: a resolver
	// survives its primary mirror dying mid-deployment.
	s := testSigner(t)
	clk := &vclock{t: time.Unix(1555000000, 0)}
	serial := uint32(1)
	primaryUp := true
	primary := SourceFunc(func(context.Context) (*Bundle, error) {
		if !primaryUp {
			return nil, errors.New("primary down")
		}
		return MakeBundle(testZone(t, serial, ""), s)
	})
	backup := SourceFunc(func(context.Context) (*Bundle, error) {
		return MakeBundle(testZone(t, serial, ""), s)
	})
	ms, err := NewMultiSource([]Source{primary, backup}, []string{"primary", "backup"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRefresher(RefresherConfig{
		Source: ms, KSK: s.KSK.DNSKEY,
		Install: func(*zone.Zone) error { return nil },
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}
	primaryUp = false
	serial = 2
	clk.advance(43 * time.Hour)
	if !r.Tick(context.Background()) {
		t.Fatal("refresh via backup failed")
	}
	if r.State().Serial != 2 || ms.Preferred() != "backup" {
		t.Errorf("serial=%d preferred=%s", r.State().Serial, ms.Preferred())
	}
}
