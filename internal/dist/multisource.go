package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// MultiSource fails over across several bundle sources — the §3 point
// that delivery "can take many forms and develop organically": a resolver
// might try two HTTP mirrors, then an AXFR server, then a gossip peer.
// The most-recently-working source is tried first on subsequent fetches
// (sticky preference), and a fetch succeeds if any source does.
type MultiSource struct {
	mu        sync.Mutex
	sources   []Source
	labels    []string
	preferred int
	failovers int64
}

// NewMultiSource builds a failover chain. Labels are used in errors and
// stats; len(labels) must equal len(sources) (or be nil).
func NewMultiSource(sources []Source, labels []string) (*MultiSource, error) {
	if len(sources) == 0 {
		return nil, errors.New("dist: MultiSource needs at least one source")
	}
	if labels == nil {
		labels = make([]string, len(sources))
		for i := range labels {
			labels[i] = fmt.Sprintf("source%d", i)
		}
	}
	if len(labels) != len(sources) {
		return nil, errors.New("dist: labels/sources length mismatch")
	}
	return &MultiSource{sources: sources, labels: labels}, nil
}

// Fetch implements Source: it tries the preferred source first, then the
// rest in order, returning the first success.
func (m *MultiSource) Fetch(ctx context.Context) (*Bundle, error) {
	m.mu.Lock()
	start := m.preferred
	n := len(m.sources)
	m.mu.Unlock()

	var errs []error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		b, err := m.sources[idx].Fetch(ctx)
		if err == nil {
			m.mu.Lock()
			if idx != m.preferred {
				m.failovers++
				m.preferred = idx
			}
			m.mu.Unlock()
			return b, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", m.labels[idx], err))
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("dist: all sources failed: %w", errors.Join(errs...))
}

// Failovers reports how many times the preferred source changed.
func (m *MultiSource) Failovers() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// Preferred returns the label of the currently preferred source.
func (m *MultiSource) Preferred() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.labels[m.preferred]
}
