package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Quarantine scoring defaults — the same trip-and-hold idiom the resolver
// uses for unresponsive authoritative servers (internal/resolver/health.go):
// a source that keeps failing is held out of the rotation entirely, the
// hold period doubles on re-trips up to a cap, and a held source is probed
// again once its hold expires (or immediately, when every source is held —
// a possibly-bad mirror beats none).
const (
	defaultQuarantineAfter = 3
	defaultQuarantineHold  = 30 * time.Minute
	maxQuarantineFactor    = 16
)

// MultiSource fails over across several bundle sources — the §3 point
// that delivery "can take many forms and develop organically": a resolver
// might try two HTTP mirrors, then an AXFR server, then a gossip peer.
// The most-recently-working source is tried first on subsequent fetches
// (sticky preference), a fetch succeeds if any source does, and sources
// that repeatedly fail — including ones whose bundles fetch fine but fail
// verification, which the refresher reports via NoteBad — are quarantined.
type MultiSource struct {
	mu        sync.Mutex
	sources   []Source
	labels    []string
	preferred int
	failovers int64

	clock       func() time.Time
	quarAfter   int
	quarHold    time.Duration
	health      map[int]*sourceHealth
	quarantines int64
}

type sourceHealth struct {
	fails      int
	holdPeriod time.Duration
	heldUntil  time.Time
}

// NewMultiSource builds a failover chain. Labels are used in errors and
// stats; len(labels) must equal len(sources) (or be nil).
func NewMultiSource(sources []Source, labels []string) (*MultiSource, error) {
	if len(sources) == 0 {
		return nil, errors.New("dist: MultiSource needs at least one source")
	}
	if labels == nil {
		labels = make([]string, len(sources))
		for i := range labels {
			labels[i] = fmt.Sprintf("source%d", i)
		}
	}
	if len(labels) != len(sources) {
		return nil, errors.New("dist: labels/sources length mismatch")
	}
	return &MultiSource{
		sources:   sources,
		labels:    labels,
		clock:     time.Now,
		quarAfter: defaultQuarantineAfter,
		quarHold:  defaultQuarantineHold,
		health:    make(map[int]*sourceHealth),
	}, nil
}

// ConfigureQuarantine tunes the hold-down policy: after strikes a source
// is held for hold (doubling on re-trips, capped at 16×). Zero/nil
// arguments keep the current values. clock drives hold expiry — virtual
// in experiments.
func (m *MultiSource) ConfigureQuarantine(after int, hold time.Duration, clock func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if after > 0 {
		m.quarAfter = after
	}
	if hold > 0 {
		m.quarHold = hold
	}
	if clock != nil {
		m.clock = clock
	}
}

// Attempts returns source indices in try order: the preferred source
// first, then the rest, skipping quarantined sources. When every source is
// held, the one whose hold expires soonest is offered as a forced probe.
func (m *MultiSource) Attempts() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	n := len(m.sources)
	var ready []int
	heldBest, heldAny := -1, false
	for i := 0; i < n; i++ {
		idx := (m.preferred + i) % n
		h := m.health[idx]
		if h != nil && now.Before(h.heldUntil) {
			heldAny = true
			if heldBest == -1 || h.heldUntil.Before(m.health[heldBest].heldUntil) {
				heldBest = idx
			}
			continue
		}
		ready = append(ready, idx)
	}
	if len(ready) == 0 && heldAny {
		ready = append(ready, heldBest)
	}
	return ready
}

// AllAttempts returns every source index preferred-first, ignoring
// quarantine holds — the desperation order the refresher switches to when
// no zone is installed yet or the copy has aged past its planned refresh,
// when probing a possibly-bad mirror beats expiring.
func (m *MultiSource) AllAttempts() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.sources)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, (m.preferred+i)%n)
	}
	return out
}

// Source returns the source at index i (for capability probes like
// DeltaSource).
func (m *MultiSource) Source(i int) Source { return m.sources[i] }

// Label returns the label of source i.
func (m *MultiSource) Label(i int) string { return m.labels[i] }

// Len returns the number of sources.
func (m *MultiSource) Len() int { return len(m.sources) }

// FetchIndex fetches from one specific source, recording a strike on
// fetch failure. Verification outcomes are the caller's to report via
// NoteGood/NoteBad.
func (m *MultiSource) FetchIndex(ctx context.Context, i int) (*Bundle, error) {
	b, err := m.sources[i].Fetch(ctx)
	if err != nil {
		m.NoteBad(i)
		return nil, err
	}
	return b, nil
}

// NoteGood reports that source i delivered a bundle that fetched and
// verified: its health record clears and it becomes the preferred source.
func (m *MultiSource) NoteGood(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.health, i)
	if i != m.preferred {
		m.failovers++
		m.preferred = i
	}
}

// NoteBad reports a strike against source i — a failed fetch, a bundle
// that failed verification, or a rollback attempt. Enough strikes trip the
// quarantine hold-down, doubling on repeat offenses.
func (m *MultiSource) NoteBad(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.health[i]
	if h == nil {
		h = &sourceHealth{}
		m.health[i] = h
	}
	h.fails++
	if h.fails < m.quarAfter {
		return
	}
	h.fails = 0
	if h.holdPeriod == 0 {
		h.holdPeriod = m.quarHold
	} else if h.holdPeriod < time.Duration(maxQuarantineFactor)*m.quarHold {
		h.holdPeriod *= 2
	}
	h.heldUntil = m.clock().Add(h.holdPeriod)
	m.quarantines++
}

// Fetch implements Source: it tries the sources in Attempts order,
// returning the first success and a labeled errors.Join of every failed
// attempt otherwise.
func (m *MultiSource) Fetch(ctx context.Context) (*Bundle, error) {
	var errs []error
	for _, idx := range m.Attempts() {
		b, err := m.FetchIndex(ctx, idx)
		if err == nil {
			m.NoteGood(idx)
			return b, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", m.labels[idx], err))
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("dist: all sources failed: %w", errors.Join(errs...))
}

// Failovers reports how many times the preferred source changed.
func (m *MultiSource) Failovers() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// Preferred returns the label of the currently preferred source.
func (m *MultiSource) Preferred() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.labels[m.preferred]
}

// Quarantines reports how many times any source entered quarantine.
func (m *MultiSource) Quarantines() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quarantines
}

// Quarantined returns the labels of sources currently in hold-down.
func (m *MultiSource) Quarantined() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	var out []string
	for i, h := range m.health {
		if now.Before(h.heldUntil) {
			out = append(out, m.labels[i])
		}
	}
	return out
}
