package netsim

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rootless/internal/anycast"
	"rootless/internal/authserver"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

var (
	rootAddr = netip.MustParseAddr("198.41.0.4")
	london   = anycast.GeoPoint{Lat: 51.5, Lon: -0.1}
	nyc      = anycast.GeoPoint{Lat: 40.7, Lon: -74.0}
	tokyo    = anycast.GeoPoint{Lat: 35.7, Lon: 139.7}
	simStart = time.Unix(1555000000, 0)
)

func newRootServer(t *testing.T) *authserver.Server {
	t.Helper()
	src := `
. 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. 1 1800 900 604800 86400
. 518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 198.41.0.4
com. 172800 IN NS a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
`
	z, err := zone.Parse(strings.NewReader(src), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return authserver.New(z)
}

func TestExchangeBasic(t *testing.T) {
	net := New(1, simStart)
	srv := newRootServer(t)
	net.AddHost("a-root", rootAddr, nyc, srv)

	q := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA)
	resp, rtt, err := net.Exchange(london, rootAddr, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Data.(dnswire.NS).Host != "a.gtld-servers.net." {
		t.Fatalf("referral: %+v", resp.Authority)
	}
	if rtt < 50*time.Millisecond || rtt > 300*time.Millisecond {
		t.Errorf("transatlantic rtt = %v", rtt)
	}
	if got := net.Now().Sub(simStart); got != rtt {
		t.Errorf("clock advanced %v, want %v", got, rtt)
	}
	st := net.Stats()
	if st.Exchanges != 1 || st.BytesUp == 0 || st.BytesDown == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestAnycastNearestInstance(t *testing.T) {
	net := New(1, simStart)
	srv := newRootServer(t)
	net.AddHost("a-root-nyc", rootAddr, nyc, srv)
	net.AddHost("a-root-tokyo", rootAddr, tokyo, srv)

	q := dnswire.NewQuery(2, "example.com.", dnswire.TypeNS)
	_, rttFromTokyoClient, err := net.Exchange(anycast.GeoPoint{Lat: 34, Lon: 135}, rootAddr, q)
	if err != nil {
		t.Fatal(err)
	}
	// Osaka client should hit Tokyo instance: RTT ≈ few ms, not ~200ms.
	if rttFromTokyoClient > 50*time.Millisecond {
		t.Errorf("anycast did not pick nearest: rtt = %v", rttFromTokyoClient)
	}
}

func TestOutageFailsOverToOtherInstance(t *testing.T) {
	net := New(1, simStart)
	srv := newRootServer(t)
	hTokyo := net.AddHost("a-root-tokyo", rootAddr, tokyo, srv)
	net.AddHost("a-root-nyc", rootAddr, nyc, srv)

	osaka := anycast.GeoPoint{Lat: 34, Lon: 135}
	net.SetHostDown(hTokyo, true)
	_, rtt, err := net.Exchange(osaka, rootAddr, dnswire.NewQuery(3, "example.com.", dnswire.TypeNS))
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 100*time.Millisecond {
		t.Errorf("with Tokyo down, rtt should be transpacific, got %v", rtt)
	}
	// All instances down: timeout.
	net.SetAddrDown(rootAddr, true)
	_, rtt, err = net.Exchange(osaka, rootAddr, dnswire.NewQuery(4, "example.com.", dnswire.TypeNS))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected timeout, got %v", err)
	}
	if rtt != QueryTimeout {
		t.Errorf("timeout cost = %v", rtt)
	}
	if net.Stats().Timeouts != 1 {
		t.Errorf("stats: %+v", net.Stats())
	}
	// Back up: recovers.
	net.SetAddrDown(rootAddr, false)
	if _, _, err := net.Exchange(osaka, rootAddr, dnswire.NewQuery(5, "example.com.", dnswire.TypeNS)); err != nil {
		t.Errorf("after recovery: %v", err)
	}
}

func TestNoRoute(t *testing.T) {
	net := New(1, simStart)
	_, _, err := net.Exchange(london, netip.MustParseAddr("203.0.113.99"),
		dnswire.NewQuery(1, "example.com.", dnswire.TypeA))
	if !errors.Is(err, ErrNoRoute) || !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoss(t *testing.T) {
	net := New(7, simStart)
	srv := newRootServer(t)
	net.AddHost("a-root", rootAddr, nyc, srv)
	net.SetLossRate(1.0)
	_, _, err := net.Exchange(london, rootAddr, dnswire.NewQuery(1, "example.com.", dnswire.TypeNS))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected loss timeout, got %v", err)
	}
	net.SetLossRate(0)
	if _, _, err := net.Exchange(london, rootAddr, dnswire.NewQuery(2, "example.com.", dnswire.TypeNS)); err != nil {
		t.Fatal(err)
	}

	// Statistical check: ~30% loss should drop roughly 30% of queries.
	net2 := New(42, simStart)
	net2.AddHost("a-root", rootAddr, nyc, newRootServer(t))
	net2.SetLossRate(0.3)
	lost := 0
	for i := 0; i < 500; i++ {
		if _, _, err := net2.Exchange(london, rootAddr, dnswire.NewQuery(uint16(i), "example.com.", dnswire.TypeNS)); err != nil {
			lost++
		}
	}
	if lost < 100 || lost > 200 {
		t.Errorf("lost %d/500 at 30%% loss", lost)
	}
}

func TestObserverSeesQueries(t *testing.T) {
	net := New(1, simStart)
	net.AddHost("a-root", rootAddr, nyc, newRootServer(t))
	var seen []dnswire.Name
	net.AddObserver(func(_ anycast.GeoPoint, dst netip.Addr, q *dnswire.Message) {
		if dst == rootAddr {
			seen = append(seen, q.Questions[0].Name)
		}
	})
	_, _, _ = net.Exchange(london, rootAddr, dnswire.NewQuery(1, "www.secret.example.com.", dnswire.TypeA))
	if len(seen) != 1 || seen[0] != "www.secret.example.com." {
		t.Fatalf("observer saw %v", seen)
	}
}

func TestInterceptorForgesReplies(t *testing.T) {
	net := New(1, simStart)
	net.AddHost("a-root", rootAddr, nyc, newRootServer(t))
	evil := netip.MustParseAddr("203.0.113.66")
	net.SetInterceptor(func(_ anycast.GeoPoint, dst netip.Addr, q *dnswire.Message) (*dnswire.Message, bool) {
		if dst != rootAddr {
			return nil, false
		}
		forged := &dnswire.Message{
			ID: q.ID, Response: true, Questions: q.Questions,
			Authority:  []dnswire.RR{dnswire.NewRR("com.", 172800, dnswire.NS{Host: "evil.attacker."})},
			Additional: []dnswire.RR{dnswire.NewRR("evil.attacker.", 172800, dnswire.A{Addr: evil})},
		}
		return forged, true
	})
	resp, _, err := net.Exchange(london, rootAddr, dnswire.NewQuery(9, "www.example.com.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Authority[0].Data.(dnswire.NS).Host != "evil.attacker." {
		t.Fatal("interception failed")
	}
	// Clearing the interceptor restores honest answers.
	net.SetInterceptor(nil)
	resp, _, err = net.Exchange(london, rootAddr, dnswire.NewQuery(10, "www.example.com.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Authority[0].Data.(dnswire.NS).Host != "a.gtld-servers.net." {
		t.Fatal("honest path broken after clearing interceptor")
	}
}

func TestAdvanceClock(t *testing.T) {
	net := New(1, simStart)
	net.Advance(42 * time.Hour)
	if got := net.Now().Sub(simStart); got != 42*time.Hour {
		t.Errorf("Advance: %v", got)
	}
}

func TestHandlerFuncAdapter(t *testing.T) {
	net := New(1, simStart)
	net.AddHost("echo", rootAddr, nyc, HandlerFunc(func(q *dnswire.Message, _ netip.Addr) *dnswire.Message {
		return &dnswire.Message{ID: q.ID, Response: true, Rcode: dnswire.RcodeRefused, Questions: q.Questions}
	}))
	resp, _, err := net.Exchange(london, rootAddr, dnswire.NewQuery(5, "x.", dnswire.TypeA))
	if err != nil || resp.Rcode != dnswire.RcodeRefused {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
}

func TestNetworkDeterminismProperty(t *testing.T) {
	// Two networks built identically and driven identically produce
	// byte-identical outcomes: same replies, same RTTs, same clock.
	build := func() *Network {
		n := New(99, simStart)
		srv := authserver.New(mustTestZone())
		for i := 0; i < 3; i++ {
			n.AddHost("r", rootAddr, anycast.GeoPoint{Lat: float64(10 * i), Lon: float64(5 * i)}, srv)
		}
		n.SetLossRate(0.2)
		return n
	}
	n1, n2 := build(), build()
	for i := 0; i < 200; i++ {
		q := dnswire.NewQuery(uint16(i), "www.example.com.", dnswire.TypeA)
		r1, rtt1, err1 := n1.Exchange(london, rootAddr, q)
		r2, rtt2, err2 := n2.Exchange(london, rootAddr, q)
		if (err1 == nil) != (err2 == nil) || rtt1 != rtt2 {
			t.Fatalf("step %d diverged: %v/%v vs %v/%v", i, rtt1, err1, rtt2, err2)
		}
		if err1 == nil {
			w1, _ := r1.Pack()
			w2, _ := r2.Pack()
			if string(w1) != string(w2) {
				t.Fatalf("step %d: replies differ", i)
			}
		}
	}
	if !n1.Now().Equal(n2.Now()) {
		t.Fatal("clocks diverged")
	}
	if n1.Stats() != n2.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", n1.Stats(), n2.Stats())
	}
}

// mustTestZone builds the shared root test zone without a *testing.T.
func mustTestZone() *zone.Zone {
	src := `
. 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. 1 1800 900 604800 86400
. 518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 198.41.0.4
com. 172800 IN NS a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
`
	z, err := zone.Parse(strings.NewReader(src), dnswire.Root)
	if err != nil {
		panic(err)
	}
	return z
}

func TestClientTransport(t *testing.T) {
	net := New(1, simStart)
	net.AddHost("a-root", rootAddr, nyc, authserver.New(mustTestZone()))
	client := net.Client(london)
	resp, rtt, err := client.Exchange(rootAddr, dnswire.NewQuery(5, "com.", dnswire.TypeNS))
	if err != nil || resp == nil || rtt <= 0 {
		t.Fatalf("client exchange: %v %v %v", resp, rtt, err)
	}
}
