// Package netsim is a deterministic simulated network for DNS
// experiments. Hosts are placed geographically; an address may be served
// by many hosts (anycast), in which case clients reach the nearest live
// instance. Exchanges round-trip real wire-format messages through the
// dnswire codec, cost virtual time derived from great-circle RTTs, suffer
// configurable loss, and can be observed or intercepted by an on-path
// attacker — everything §4's robustness, security and privacy experiments
// need, with no real sockets or wall-clock sleeps.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"rootless/internal/anycast"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// Handler answers DNS queries at a simulated host.
type Handler interface {
	Handle(query *dnswire.Message, from netip.Addr) *dnswire.Message
}

// TracedHandler is optionally implemented by handlers (authserver does)
// that can hang their own spans and events — gate and RRL decisions,
// zone lookup time — off the client's trace when one rides along.
type TracedHandler interface {
	HandleTraced(tr *obs.Trace, query *dnswire.Message, from netip.Addr) *dnswire.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(query *dnswire.Message, from netip.Addr) *dnswire.Message

// Handle implements Handler.
func (f HandlerFunc) Handle(q *dnswire.Message, from netip.Addr) *dnswire.Message {
	return f(q, from)
}

// Host is one simulated machine.
type Host struct {
	Name     string
	Addr     netip.Addr
	Location anycast.GeoPoint
	Handler  Handler
	down     bool
}

// Errors returned by Exchange.
var (
	ErrTimeout   = errors.New("netsim: query timed out")
	ErrNoRoute   = errors.New("netsim: no host at address")
	ErrMalformed = errors.New("netsim: malformed message")
)

// QueryTimeout is the virtual-time cost of an unanswered query.
const QueryTimeout = 3 * time.Second

// Observer sees every query that traverses the network; used to model
// on-path monitoring for the privacy analysis.
type Observer func(from anycast.GeoPoint, dst netip.Addr, query *dnswire.Message)

// Interceptor may answer a query instead of the real destination — the
// paper's "root manipulation" man-in-the-middle. Returning (nil, false)
// lets the query through.
type Interceptor func(from anycast.GeoPoint, dst netip.Addr, query *dnswire.Message) (*dnswire.Message, bool)

// Fault is a per-exchange verdict from a FaultPolicy: drop the query,
// inflate its round trip, substitute a synthesized reply (SERVFAIL, lame
// referral, ...), or truncate the real one. The zero value means "no
// fault".
type Fault struct {
	// Drop loses the query; the client sees a timeout.
	Drop bool
	// ExtraRTT is added to the exchange's round-trip cost.
	ExtraRTT time.Duration
	// Reply, when non-nil, is returned instead of asking the host's
	// handler (its ID is corrected to match the query).
	Reply *dnswire.Message
	// TruncateReply delivers the real reply with TC set and its record
	// sections stripped, as a UDP server over-size response would.
	TruncateReply bool
	// Tamper, when non-nil, mutates the real reply after the codec round
	// trip — an on-path attacker rewriting records or corrupting
	// signatures. Ignored when Reply is set (there is no real reply).
	Tamper func(*dnswire.Message)
}

// FaultPolicy lets a fault-injection layer (internal/faults) steer the
// network: HostAvailable withdraws hosts for scheduled outages (consulted
// during anycast instance selection), QueryFault perturbs individual
// exchanges. Implementations must not call back into the Network — they
// may be invoked with its lock held.
type FaultPolicy interface {
	HostAvailable(now time.Time, from anycast.GeoPoint, h *Host) bool
	QueryFault(now time.Time, from anycast.GeoPoint, h *Host, query *dnswire.Message) Fault
}

// Network is the simulated internet.
type Network struct {
	mu          sync.Mutex
	hosts       map[netip.Addr][]*Host
	clock       time.Time
	lossRate    float64
	rng         *rand.Rand
	observers   []Observer
	interceptor Interceptor
	faults      FaultPolicy

	// Stats.
	exchanges int64
	timeouts  int64
	bytesUp   int64
	bytesDown int64
}

// New creates an empty network with a deterministic RNG and a virtual
// clock starting at start.
func New(seed int64, start time.Time) *Network {
	return &Network{
		hosts: make(map[netip.Addr][]*Host),
		clock: start,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the virtual time.
func (n *Network) Now() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clock
}

// Advance moves the virtual clock forward.
func (n *Network) Advance(d time.Duration) {
	n.mu.Lock()
	n.clock = n.clock.Add(d)
	n.mu.Unlock()
}

// SetLossRate sets the independent per-query drop probability.
func (n *Network) SetLossRate(p float64) {
	n.mu.Lock()
	n.lossRate = p
	n.mu.Unlock()
}

// AddHost registers a host. Multiple hosts may share an address to form
// an anycast group.
func (n *Network) AddHost(name string, addr netip.Addr, loc anycast.GeoPoint, h Handler) *Host {
	host := &Host{Name: name, Addr: addr, Location: loc, Handler: h}
	n.mu.Lock()
	n.hosts[addr] = append(n.hosts[addr], host)
	n.mu.Unlock()
	return host
}

// SetHostDown marks a single host (anycast instance) up or down.
func (n *Network) SetHostDown(h *Host, down bool) {
	n.mu.Lock()
	h.down = down
	n.mu.Unlock()
}

// SetAddrDown marks every instance of an address up or down — a whole
// root letter failing, or a network partition to it.
func (n *Network) SetAddrDown(addr netip.Addr, down bool) {
	n.mu.Lock()
	for _, h := range n.hosts[addr] {
		h.down = down
	}
	n.mu.Unlock()
}

// AddObserver attaches an on-path monitor.
func (n *Network) AddObserver(o Observer) {
	n.mu.Lock()
	n.observers = append(n.observers, o)
	n.mu.Unlock()
}

// SetInterceptor installs (or clears, with nil) the on-path attacker.
func (n *Network) SetInterceptor(i Interceptor) {
	n.mu.Lock()
	n.interceptor = i
	n.mu.Unlock()
}

// SetFaultPolicy installs (or clears, with nil) the fault-injection
// policy consulted on every exchange.
func (n *Network) SetFaultPolicy(p FaultPolicy) {
	n.mu.Lock()
	n.faults = p
	n.mu.Unlock()
}

// Stats reports network-level counters.
type Stats struct {
	Exchanges int64
	Timeouts  int64
	BytesUp   int64
	BytesDown int64
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{Exchanges: n.exchanges, Timeouts: n.timeouts,
		BytesUp: n.bytesUp, BytesDown: n.bytesDown}
}

// nearestLive picks the closest live instance of an address.
func (n *Network) nearestLive(addr netip.Addr, from anycast.GeoPoint) *Host {
	var best *Host
	bestD := 0.0
	for _, h := range n.hosts[addr] {
		if h.down {
			continue
		}
		if n.faults != nil && !n.faults.HostAvailable(n.clock, from, h) {
			continue
		}
		d := from.DistanceKm(h.Location)
		if best == nil || d < bestD {
			best, bestD = h, d
		}
	}
	return best
}

// Exchange sends a query from a client at loc to dst and returns the
// reply plus the virtual round-trip cost. The query and reply both pass
// through real wire encoding. On timeout the returned duration is
// QueryTimeout and the error is ErrTimeout.
func (n *Network) Exchange(loc anycast.GeoPoint, dst netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	return n.ExchangeTraced(nil, loc, dst, query)
}

// ExchangeTraced is Exchange carrying a client-side trace through the
// simulated wire: a "transit" span covers serialization and the server's
// handler (which may nest its own auth spans via TracedHandler). A nil
// trace makes it identical to Exchange.
func (n *Network) ExchangeTraced(tr *obs.Trace, loc anycast.GeoPoint, dst netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	wire, err := query.Pack()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}

	n.mu.Lock()
	n.exchanges++
	n.bytesUp += int64(len(wire))
	observers := n.observers
	interceptor := n.interceptor
	policy := n.faults
	now := n.clock
	dropped := n.lossRate > 0 && n.rng.Float64() < n.lossRate
	target := n.nearestLive(dst, loc)
	n.mu.Unlock()

	// The wire buffer is freshly allocated per exchange and never reused,
	// so the zero-copy unpacker can alias it safely.
	var parsed dnswire.Message
	if err := parsed.UnpackShared(wire); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	for _, o := range observers {
		o(loc, dst, &parsed)
	}

	if interceptor != nil {
		if forged, ok := interceptor(loc, dst, &parsed); ok {
			rtt := 10 * time.Millisecond // attacker is on-path and close
			n.account(forged, rtt)
			return forged, rtt, nil
		}
	}

	var fault Fault
	if policy != nil && target != nil {
		fault = policy.QueryFault(now, loc, target, &parsed)
	}

	if dropped || fault.Drop || target == nil || target.Handler == nil {
		n.mu.Lock()
		n.timeouts++
		n.clock = n.clock.Add(QueryTimeout)
		n.mu.Unlock()
		if target == nil && !dropped {
			return nil, QueryTimeout, fmt.Errorf("%w (%s): %w", ErrNoRoute, dst, ErrTimeout)
		}
		return nil, QueryTimeout, ErrTimeout
	}

	if fault.Reply != nil {
		// A misbehaving server still answers over the real path, so the
		// synthesized reply costs the geographic round trip.
		rtt := anycast.RTT(loc, target.Location) + fault.ExtraRTT
		fault.Reply.ID = parsed.ID
		n.account(fault.Reply, rtt)
		return fault.Reply, rtt, nil
	}

	// The transit span wraps the server's handler plus the codec round
	// trips; its wall self-time is serialization overhead while the
	// handler's own auth span accounts for server-side work.
	tsp := tr.StartSpan(obs.PhaseNet, "transit")
	if tsp != nil {
		tsp.SetDetail(target.Name)
	}
	var reply *dnswire.Message
	if th, ok := target.Handler.(TracedHandler); ok && tr != nil {
		reply = th.HandleTraced(tr, &parsed, netip.Addr{})
	} else {
		reply = target.Handler.Handle(&parsed, netip.Addr{})
	}
	if reply == nil {
		tsp.End()
		n.mu.Lock()
		n.timeouts++
		n.clock = n.clock.Add(QueryTimeout)
		n.mu.Unlock()
		return nil, QueryTimeout, ErrTimeout
	}
	rtt := anycast.RTT(loc, target.Location) + fault.ExtraRTT
	// Round-trip the reply through the codec too.
	replyWire, err := reply.Pack()
	if err != nil {
		tsp.End()
		return nil, rtt, fmt.Errorf("%w: server reply: %v", ErrMalformed, err)
	}
	var replyParsed dnswire.Message
	if err := replyParsed.UnpackShared(replyWire); err != nil {
		tsp.End()
		return nil, rtt, fmt.Errorf("%w: server reply: %v", ErrMalformed, err)
	}
	tsp.End()
	if fault.TruncateReply {
		replyParsed.Truncated = true
		replyParsed.Answers = nil
		replyParsed.Authority = nil
		replyParsed.Additional = nil
	}
	if fault.Tamper != nil {
		fault.Tamper(&replyParsed)
	}
	n.mu.Lock()
	n.bytesDown += int64(len(replyWire))
	n.clock = n.clock.Add(rtt)
	n.mu.Unlock()
	return &replyParsed, rtt, nil
}

// Client is a network endpoint at a fixed location. It satisfies the
// resolver's Transport interface.
type Client struct {
	net *Network
	Loc anycast.GeoPoint
}

// Client returns an endpoint at loc.
func (n *Network) Client(loc anycast.GeoPoint) *Client {
	return &Client{net: n, Loc: loc}
}

// Exchange sends a query from the client's location.
func (c *Client) Exchange(dst netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	return c.net.Exchange(c.Loc, dst, query)
}

// ExchangeTraced sends a query carrying the client's trace across the
// simulated wire (the resolver's TracedTransport interface).
func (c *Client) ExchangeTraced(tr *obs.Trace, dst netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	return c.net.ExchangeTraced(tr, c.Loc, dst, query)
}

func (n *Network) account(reply *dnswire.Message, rtt time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reply != nil {
		if w, err := reply.Pack(); err == nil {
			n.bytesDown += int64(len(w))
		}
	}
	n.clock = n.clock.Add(rtt)
}
