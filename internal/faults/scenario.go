package faults

import (
	"net/netip"
	"time"
)

// Event is one timed fault in a scenario: Kind applied to Target from
// offset At for duration For (0 = until the end of the run).
type Event struct {
	At   time.Duration
	For  time.Duration
	Kind Kind
	// Target/Addrs select the victims; Addrs expands to one rule per
	// address (convenient with OutageSample).
	Target Target
	Addrs  []netip.Addr
	// Rate, Extra, Jitter and From parameterise the kind as in Rule.
	Rate   float64
	Extra  time.Duration
	Jitter time.Duration
	From   *Region
}

// Scenario is a deterministic, replayable chaos script: a seed for every
// probabilistic decision plus an ordered list of timed events. Compiling
// the same scenario against the same start time always produces the same
// injector behaviour, so a chaos run is a regression test.
type Scenario struct {
	Name   string
	Seed   int64
	Events []Event
}

// Compile materialises the scenario against a start time (usually the
// network's virtual clock) and returns a fresh injector carrying it.
func (s Scenario) Compile(start time.Time) *Injector {
	in := NewInjector(s.Seed)
	for _, e := range s.Events {
		w := Window{From: start.Add(e.At)}
		if e.For > 0 {
			w.To = start.Add(e.At + e.For)
		}
		base := Rule{
			Kind:   e.Kind,
			Window: w,
			Rate:   e.Rate,
			Extra:  e.Extra,
			Jitter: e.Jitter,
			From:   e.From,
		}
		if len(e.Addrs) == 0 {
			base.Target = e.Target
			in.Add(base)
			continue
		}
		for _, a := range e.Addrs {
			r := base
			r.Target = Target{Addr: a, NamePrefix: e.Target.NamePrefix}
			in.Add(r)
		}
	}
	return in
}
