package faults

import (
	"context"
	"errors"
	"sync"
	"time"

	"rootless/internal/dist"
	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/zone"
)

// Distribution-layer faults: where the netsim rules attack query traffic,
// these wrap dist.Source so a chaos scenario can hand the refresher a
// population of misbehaving zone mirrors — stale mirrors replaying old
// serials, forked mirrors publishing an alternative history, truncated
// delta chains, mirrors that flap, and a mid-rollover KSK compromise. All
// wrappers share one DistFaults counter block and the scenario's virtual
// clock, so a soak run can report exactly what was injected next to what
// the refresher survived.

// DistStats counts injected distribution faults by effect.
type DistStats struct {
	RollbacksServed  int64 // stale bundles replayed by rollback mirrors
	FreezesServed    int64 // "you are current" lies from rollback mirrors
	ForksServed      int64 // forked-history bundles served
	ChainTruncations int64 // delta chains served with links removed
	Flaps            int64 // fetches refused by flapping sources
	StolenKeyBundles int64 // bundles signed with the compromised KSK
}

// DistFaults builds fault-wrapped bundle sources and aggregates their
// injection counters.
type DistFaults struct {
	mu    sync.Mutex
	clock func() time.Time
	stats DistStats
}

// NewDistFaults creates the wrapper factory on the scenario clock (nil
// means real time).
func NewDistFaults(clock func() time.Time) *DistFaults {
	if clock == nil {
		clock = time.Now
	}
	return &DistFaults{clock: clock}
}

// Stats returns a snapshot of the injection counters.
func (d *DistFaults) Stats() DistStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Collect implements obs.Collector.
func (d *DistFaults) Collect(reg *obs.Registry) {
	obs.SetCountersFromStruct(reg, "rootless_dist_faults", "injected distribution faults", nil, d.Stats())
}

func (d *DistFaults) count(f func(*DistStats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}

// errNoDelta pushes the refresher to the full-bundle path for sources
// that cannot (or will not) serve a delta chain.
var errNoDelta = errors.New("faults: no delta chain available")

// deltaChain forwards to the inner source's delta support, if any.
func deltaChain(ctx context.Context, inner dist.Source, from uint32) ([]*dist.DeltaBundle, error) {
	if ds, ok := inner.(dist.DeltaSource); ok {
		return ds.FetchDeltaChain(ctx, from)
	}
	return nil, errNoDelta
}

// ---- rollback mirror ----

// rollbackMirror freezes on whatever snapshot it holds when the window
// opens and serves it for the window's duration. A client that already
// moved past the snapshot sees a serial rollback; a client sitting exactly
// at the snapshot's serial is told "you are current" forever (the freeze
// attack) — both of which the refresher must survive.
type rollbackMirror struct {
	d      *DistFaults
	inner  dist.Source
	window Window
	mu     sync.Mutex
	frozen *dist.Bundle
}

// RollbackMirror wraps a source as a mirror stuck on an old snapshot
// during the window.
func (d *DistFaults) RollbackMirror(inner dist.Source, w Window) dist.Source {
	return &rollbackMirror{d: d, inner: inner, window: w}
}

// freeze captures the inner source's current bundle on first access inside
// the window and returns it for every access thereafter.
func (m *rollbackMirror) freeze(ctx context.Context) (*dist.Bundle, error) {
	m.mu.Lock()
	frozen := m.frozen
	m.mu.Unlock()
	if frozen != nil {
		return frozen, nil
	}
	b, err := m.inner.Fetch(ctx)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.frozen == nil {
		m.frozen = b
	}
	frozen = m.frozen
	m.mu.Unlock()
	return frozen, nil
}

func (m *rollbackMirror) thaw() {
	m.mu.Lock()
	m.frozen = nil
	m.mu.Unlock()
}

func (m *rollbackMirror) Fetch(ctx context.Context) (*dist.Bundle, error) {
	if !m.window.contains(m.d.clock()) {
		m.thaw()
		return m.inner.Fetch(ctx)
	}
	b, err := m.freeze(ctx)
	if err != nil {
		return nil, err
	}
	m.d.count(func(s *DistStats) { s.RollbacksServed++ })
	return b, nil
}

func (m *rollbackMirror) FetchDeltaChain(ctx context.Context, from uint32) ([]*dist.DeltaBundle, error) {
	if !m.window.contains(m.d.clock()) {
		m.thaw()
		return deltaChain(ctx, m.inner, from)
	}
	b, err := m.freeze(ctx)
	if err != nil {
		return nil, err
	}
	if from == b.Serial {
		// The freeze lie: "you are already current".
		m.d.count(func(s *DistStats) { s.FreezesServed++ })
		return nil, nil
	}
	// A stale mirror has no deltas beyond its snapshot; the client falls
	// back to a full fetch and receives the old bundle.
	return nil, errNoDelta
}

// ---- forked-zone mirror ----

// forkMirror serves an alternative history: the real zone with extra
// records, re-signed under the fork operator's own key. The signature
// cannot verify against the publisher's anchors, so a refresher must
// reject every bundle and quarantine the source.
type forkMirror struct {
	d      *DistFaults
	inner  dist.Source
	signer *dnssec.Signer
	window Window
}

// ForkMirror wraps a source as a forked-history mirror signing with its
// own (unanchored) key during the window.
func (d *DistFaults) ForkMirror(inner dist.Source, signer *dnssec.Signer, w Window) dist.Source {
	return &forkMirror{d: d, inner: inner, signer: signer, window: w}
}

func (m *forkMirror) Fetch(ctx context.Context) (*dist.Bundle, error) {
	b, err := m.inner.Fetch(ctx)
	if err != nil {
		return nil, err
	}
	now := m.d.clock()
	if !m.window.contains(now) {
		return b, nil
	}
	forked, err := forkZone(b, m.signer, now, 1000)
	if err != nil {
		return nil, err
	}
	m.d.count(func(s *DistStats) { s.ForksServed++ })
	return forked, nil
}

func (m *forkMirror) FetchDeltaChain(ctx context.Context, from uint32) ([]*dist.DeltaBundle, error) {
	if !m.window.contains(m.d.clock()) {
		return deltaChain(ctx, m.inner, from)
	}
	// A fork's chain anchors can never match the canonical history.
	return nil, errNoDelta
}

// forkZone decodes a bundle's zone, plants a record, bumps the serial
// ahead of the real history, and re-signs everything with the given
// signer.
func forkZone(b *dist.Bundle, signer *dnssec.Signer, now time.Time, serialJump uint32) (*dist.Bundle, error) {
	z, err := zone.Decompress(b.Compressed, dnswire.Root)
	if err != nil {
		return nil, err
	}
	fz := z.Clone()
	soaRRs := fz.Lookup(fz.Origin, dnswire.TypeSOA)
	if len(soaRRs) != 1 {
		return nil, errors.New("faults: forked zone has no SOA")
	}
	soa := soaRRs[0].Data.(dnswire.SOA)
	soa.Serial += serialJump
	ttl := soaRRs[0].TTL
	fz.Remove(fz.Origin, dnswire.TypeSOA)
	if err := fz.Add(dnswire.NewRR(fz.Origin, ttl, soa)); err != nil {
		return nil, err
	}
	if err := fz.Add(dnswire.NewRR("forked.", 172800, dnswire.NS{Host: "ns.forked."})); err != nil {
		return nil, err
	}
	if err := signer.SignZone(fz, now); err != nil {
		return nil, err
	}
	return dist.MakeBundle(fz, signer)
}

// ---- delta-chain truncation ----

// chainTruncator removes the leading links of every delta chain it
// serves, so the chain no longer applies to the client's serial. Full
// bundles pass through untouched — the self-healing fallback path.
type chainTruncator struct {
	d      *DistFaults
	inner  dist.Source
	window Window
}

// TruncateChain wraps a source so its delta chains arrive with the first
// link missing during the window.
func (d *DistFaults) TruncateChain(inner dist.Source, w Window) dist.Source {
	return &chainTruncator{d: d, inner: inner, window: w}
}

func (m *chainTruncator) Fetch(ctx context.Context) (*dist.Bundle, error) {
	return m.inner.Fetch(ctx)
}

func (m *chainTruncator) FetchDeltaChain(ctx context.Context, from uint32) ([]*dist.DeltaBundle, error) {
	chain, err := deltaChain(ctx, m.inner, from)
	if err != nil || len(chain) == 0 || !m.window.contains(m.d.clock()) {
		return chain, err
	}
	m.d.count(func(s *DistStats) { s.ChainTruncations++ })
	return chain[1:], nil
}

// ---- flapping source ----

// flappingSource alternates between reachable and dead on a fixed period —
// the mirror with a broken load balancer that works every other refresh.
type flappingSource struct {
	d      *DistFaults
	inner  dist.Source
	period time.Duration
	window Window
}

// Flapping wraps a source that is down every other period during the
// window.
func (d *DistFaults) Flapping(inner dist.Source, period time.Duration, w Window) dist.Source {
	return &flappingSource{d: d, inner: inner, period: period, window: w}
}

func (m *flappingSource) down() bool {
	now := m.d.clock()
	if !m.window.contains(now) {
		return false
	}
	return (now.Unix()/int64(m.period/time.Second))%2 == 1
}

func (m *flappingSource) Fetch(ctx context.Context) (*dist.Bundle, error) {
	if m.down() {
		m.d.count(func(s *DistStats) { s.Flaps++ })
		return nil, errors.New("faults: source is flapping")
	}
	return m.inner.Fetch(ctx)
}

func (m *flappingSource) FetchDeltaChain(ctx context.Context, from uint32) ([]*dist.DeltaBundle, error) {
	if m.down() {
		m.d.count(func(s *DistStats) { s.Flaps++ })
		return nil, errors.New("faults: source is flapping")
	}
	return deltaChain(ctx, m.inner, from)
}

// ---- mid-rollover KSK compromise ----

// stolenKeyMirror models the attacker who obtained the outgoing KSK
// during a rollover: it serves the real zone with a planted record,
// re-signed with the stolen key. Until the publisher's revocation
// propagates, these bundles verify; afterwards every trust store must
// report ErrRevokedKey and refuse them.
type stolenKeyMirror struct {
	d      *DistFaults
	inner  dist.Source
	stolen *dnssec.Signer
	window Window
}

// StolenKey wraps a source as a mirror controlled by an attacker holding
// the compromised signer during the window.
func (d *DistFaults) StolenKey(inner dist.Source, stolen *dnssec.Signer, w Window) dist.Source {
	return &stolenKeyMirror{d: d, inner: inner, stolen: stolen, window: w}
}

func (m *stolenKeyMirror) Fetch(ctx context.Context) (*dist.Bundle, error) {
	b, err := m.inner.Fetch(ctx)
	if err != nil {
		return nil, err
	}
	now := m.d.clock()
	if !m.window.contains(now) {
		return b, nil
	}
	forged, err := forkZone(b, m.stolen, now, 2000)
	if err != nil {
		return nil, err
	}
	m.d.count(func(s *DistStats) { s.StolenKeyBundles++ })
	return forged, nil
}

func (m *stolenKeyMirror) FetchDeltaChain(ctx context.Context, from uint32) ([]*dist.DeltaBundle, error) {
	if !m.window.contains(m.d.clock()) {
		return deltaChain(ctx, m.inner, from)
	}
	return nil, errNoDelta
}
