package faults

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"rootless/internal/anycast"
	"rootless/internal/dnswire"
	"rootless/internal/netsim"
	"rootless/internal/obs"
)

var (
	vaddr  = netip.MustParseAddr("192.0.2.1")
	vaddr2 = netip.MustParseAddr("192.0.2.2")
	london = anycast.GeoPoint{Lat: 51.5, Lon: -0.1}
	tokyo  = anycast.GeoPoint{Lat: 35.7, Lon: 139.7}
	sydney = anycast.GeoPoint{Lat: -33.9, Lon: 151.2}
)

func okHandler() netsim.Handler {
	return netsim.HandlerFunc(func(q *dnswire.Message, _ netip.Addr) *dnswire.Message {
		return &dnswire.Message{
			ID: q.ID, Response: true, Authoritative: true,
			Questions: q.Questions,
			Answers: []dnswire.RR{dnswire.NewRR(q.Questions[0].Name, 60,
				dnswire.A{Addr: netip.MustParseAddr("203.0.113.9")})},
		}
	})
}

func testNet(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.New(1, time.Unix(1555000000, 0))
	n.AddHost("v1.example", vaddr, london, okHandler())
	n.AddHost("v2.example", vaddr2, tokyo, okHandler())
	return n
}

func query(t *testing.T) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(42, "www.example.", dnswire.TypeA)
	q.RecursionDesired = false
	return q
}

func TestOutageWindow(t *testing.T) {
	n := testNet(t)
	in := NewInjector(7)
	start := n.Now()
	in.Add(Rule{
		Target: Target{Addr: vaddr},
		Kind:   Outage,
		Window: Window{From: start.Add(time.Hour), To: start.Add(2 * time.Hour)},
	})
	n.SetFaultPolicy(in)

	if _, _, err := n.Exchange(london, vaddr, query(t)); err != nil {
		t.Fatalf("before window: %v", err)
	}
	n.Advance(time.Hour)
	if _, _, err := n.Exchange(london, vaddr, query(t)); !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("inside window: err = %v, want timeout", err)
	}
	// The timeout itself advanced the clock 3 s; jump past the window end.
	n.Advance(time.Hour)
	if _, _, err := n.Exchange(london, vaddr, query(t)); err != nil {
		t.Fatalf("after window: %v", err)
	}
	if st := in.Stats(); st.OutageSkips == 0 {
		t.Error("OutageSkips not counted")
	}
}

func TestOutageWithdrawsAnycastInstance(t *testing.T) {
	n := netsim.New(1, time.Unix(1555000000, 0))
	n.AddHost("x.near", vaddr, london, okHandler())
	n.AddHost("x.far", vaddr, sydney, okHandler())
	in := NewInjector(7)
	in.Add(Rule{Target: Target{NamePrefix: "x.near"}, Kind: Outage})
	n.SetFaultPolicy(in)

	// The near instance is withdrawn, so the exchange succeeds via the far
	// one at a visibly larger RTT.
	_, rtt, err := n.Exchange(london, vaddr, query(t))
	if err != nil {
		t.Fatal(err)
	}
	if rtt < anycast.RTT(london, sydney) {
		t.Errorf("rtt %v: near instance not withdrawn", rtt)
	}
}

func TestLossAndDeterminism(t *testing.T) {
	outcomes := func(seed int64) []bool {
		n := testNet(t)
		in := NewInjector(seed)
		in.Add(Rule{Target: Target{Addr: vaddr}, Kind: Loss, Rate: 0.5})
		n.SetFaultPolicy(in)
		var out []bool
		for i := 0; i < 32; i++ {
			_, _, err := n.Exchange(london, vaddr, query(t))
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(3), outcomes(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at exchange %d", i)
		}
	}
	drops := 0
	for _, ok := range a {
		if !ok {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Errorf("loss 0.5 dropped %d/%d", drops, len(a))
	}
}

func TestLatencyFault(t *testing.T) {
	n := testNet(t)
	base := anycast.RTT(london, london)
	in := NewInjector(7)
	in.Add(Rule{Target: Target{Addr: vaddr}, Kind: Latency, Extra: 250 * time.Millisecond})
	n.SetFaultPolicy(in)
	_, rtt, err := n.Exchange(london, vaddr, query(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := rtt - base; got < 250*time.Millisecond {
		t.Errorf("extra rtt = %v, want >= 250ms", got)
	}
}

func TestResponseFaults(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		want dnswire.Rcode
	}{
		{ServFail, dnswire.RcodeServFail},
		{Refused, dnswire.RcodeRefused},
	} {
		n := testNet(t)
		in := NewInjector(7)
		in.Add(Rule{Target: Target{Addr: vaddr}, Kind: tc.kind})
		n.SetFaultPolicy(in)
		resp, _, err := n.Exchange(london, vaddr, query(t))
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if resp.Rcode != tc.want {
			t.Errorf("%s: rcode = %s, want %s", tc.kind, resp.Rcode, tc.want)
		}
		if resp.ID != 42 {
			t.Errorf("%s: reply ID %d not matched to query", tc.kind, resp.ID)
		}
	}
}

func TestLameDelegationFault(t *testing.T) {
	n := testNet(t)
	in := NewInjector(7)
	in.Add(Rule{Target: Target{Addr: vaddr}, Kind: LameDelegation})
	n.SetFaultPolicy(in)
	resp, _, err := n.Exchange(london, vaddr, query(t))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Authoritative || len(resp.Answers) != 0 || len(resp.Authority) == 0 {
		t.Fatalf("not a referral shape: %+v", resp)
	}
	if resp.Authority[0].Type != dnswire.TypeNS {
		t.Errorf("authority type = %v, want NS", resp.Authority[0].Type)
	}
}

func TestTruncateFault(t *testing.T) {
	n := testNet(t)
	in := NewInjector(7)
	in.Add(Rule{Target: Target{Addr: vaddr}, Kind: Truncate})
	n.SetFaultPolicy(in)
	resp, _, err := n.Exchange(london, vaddr, query(t))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || len(resp.Answers) != 0 {
		t.Errorf("want truncated empty reply, got TC=%v answers=%d", resp.Truncated, len(resp.Answers))
	}
}

func TestPartition(t *testing.T) {
	n := testNet(t)
	in := NewInjector(7)
	europe := &Region{MinLat: 35, MaxLat: 70, MinLon: -10, MaxLon: 40}
	in.Add(Rule{Target: Target{Addr: vaddr}, Kind: Partition, From: europe})
	n.SetFaultPolicy(in)
	if _, _, err := n.Exchange(london, vaddr, query(t)); !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("partitioned client: err = %v, want timeout", err)
	}
	if _, _, err := n.Exchange(sydney, vaddr, query(t)); err != nil {
		t.Fatalf("unpartitioned client: %v", err)
	}
	if st := in.Stats(); st.PartitionDrops != 1 {
		t.Errorf("PartitionDrops = %d, want 1", st.PartitionDrops)
	}
}

func TestScenarioCompile(t *testing.T) {
	start := time.Unix(1555000000, 0)
	sc := Scenario{
		Name: "tld-brownout",
		Seed: 11,
		Events: []Event{
			{At: time.Hour, For: time.Hour, Kind: Outage, Addrs: []netip.Addr{vaddr, vaddr2}},
			{Kind: Latency, Target: Target{Addr: vaddr2}, Extra: 100 * time.Millisecond},
		},
	}
	in := sc.Compile(start)
	h := &netsim.Host{Name: "v1.example", Addr: vaddr}
	if !in.HostAvailable(start, london, h) {
		t.Error("outage active before At")
	}
	if in.HostAvailable(start.Add(90*time.Minute), london, h) {
		t.Error("outage inactive inside window")
	}
	if !in.HostAvailable(start.Add(3*time.Hour), london, h) {
		t.Error("outage active after window")
	}
	f := in.QueryFault(start, london, &netsim.Host{Name: "v2", Addr: vaddr2}, query(t))
	if f.ExtraRTT < 100*time.Millisecond {
		t.Errorf("open-ended latency event not active at start: %+v", f)
	}
}

func TestOutageSample(t *testing.T) {
	var pool []netip.Addr
	for i := 1; i <= 13; i++ {
		pool = append(pool, netip.AddrFrom4([4]byte{198, 41, 0, byte(i)}))
	}
	a := OutageSample(99, pool, 0.5)
	b := OutageSample(99, pool, 0.5)
	if len(a) != 7 { // ceil(0.5 * 13)
		t.Fatalf("len = %d, want 7", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	// Monotone: a smaller fraction is a prefix of a larger one.
	small := OutageSample(99, pool, 0.25)
	for i := range small {
		if small[i] != a[i] {
			t.Fatal("failure sets are not nested across fractions")
		}
	}
	if got := OutageSample(99, pool, 1.0); len(got) != len(pool) {
		t.Errorf("fraction 1.0 sampled %d of %d", len(got), len(pool))
	}
	if got := OutageSample(99, pool, 0); got != nil {
		t.Errorf("fraction 0 sampled %d", len(got))
	}
}

func TestInjectorCollect(t *testing.T) {
	in := NewInjector(1)
	in.Add(Rule{Kind: Loss, Rate: 1})
	reg := obs.NewRegistry()
	in.Collect(reg)
	names := map[string]bool{}
	for _, s := range reg.Snapshot() {
		names[s.Name] = true
	}
	for _, want := range []string{"rootless_faults_drops_total", "rootless_faults_rules"} {
		if !names[want] {
			t.Errorf("scrape missing %s", want)
		}
	}
}
