// Package faults is a composable fault-injection layer for the simulated
// network: scheduled outage windows, per-host loss and latency, broken
// responders (SERVFAIL/REFUSED, lame delegations, truncation), and
// network partitions. An Injector implements netsim.FaultPolicy, so a
// single SetFaultPolicy call puts a whole failure scenario on the wire.
// All randomness comes from one seeded generator, so a chaos run is
// deterministic and replayable from (seed, scenario) alone — the property
// the §4 robustness experiments need to be regression tests rather than
// anecdotes.
package faults

import (
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"rootless/internal/anycast"
	"rootless/internal/dnswire"
	"rootless/internal/netsim"
	"rootless/internal/obs"
)

// Kind enumerates fault behaviours.
type Kind int

// Fault kinds.
const (
	// Outage withdraws the targeted hosts entirely: anycast routing skips
	// them, and an address with no surviving instance times out.
	Outage Kind = iota
	// Partition drops queries from clients inside From to the target.
	Partition
	// Loss drops each query to the target with probability Rate.
	Loss
	// Latency adds Extra (plus uniform jitter up to Jitter) to each
	// exchange with the target.
	Latency
	// ServFail makes the target answer SERVFAIL instead of resolving.
	ServFail
	// Refused makes the target answer REFUSED.
	Refused
	// LameDelegation makes the target answer with a non-descending
	// referral — the classic misconfigured-secondary failure.
	LameDelegation
	// Truncate delivers real replies with TC set and sections stripped.
	Truncate
	// ForgedAnswer answers with an attacker-controlled positive record
	// for the query name (pointing at ForgedAddr) instead of the real
	// response — the classic cache-poisoning spoof. The forgery carries
	// no RRSIG, so a validating resolver must reject it as bogus.
	ForgedAnswer
	// TamperSig delivers the real reply with every RRSIG's signature
	// bytes corrupted — an on-path attacker who can rewrite packets but
	// not forge signatures. Validation must fail closed.
	TamperSig
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Outage:
		return "outage"
	case Partition:
		return "partition"
	case Loss:
		return "loss"
	case Latency:
		return "latency"
	case ServFail:
		return "servfail"
	case Refused:
		return "refused"
	case LameDelegation:
		return "lame"
	case Truncate:
		return "truncate"
	case ForgedAnswer:
		return "forged-answer"
	case TamperSig:
		return "tamper-sig"
	}
	return "unknown"
}

// ForgedAddr is the address ForgedAnswer rules plant: a TEST-NET-1
// address standing in for attacker-controlled infrastructure. Trials
// assert poisoning by looking for exactly this address in the cache.
var ForgedAddr = netip.MustParseAddr("192.0.2.66")

// Target selects the hosts a rule applies to. Zero fields match
// everything, so Target{} is "the whole network".
type Target struct {
	// Addr matches one service address (all anycast instances of it).
	Addr netip.Addr
	// NamePrefix matches hosts whose name starts with the prefix (e.g.
	// "a.root" for every instance of one letter).
	NamePrefix string
}

func (t Target) matches(h *netsim.Host) bool {
	if t.Addr.IsValid() && h.Addr != t.Addr {
		return false
	}
	if t.NamePrefix != "" && !strings.HasPrefix(h.Name, t.NamePrefix) {
		return false
	}
	return true
}

// Region is a latitude/longitude bounding box; partitions use it to
// select the client side of a cut.
type Region struct {
	MinLat, MaxLat float64
	MinLon, MaxLon float64
}

func (r Region) contains(p anycast.GeoPoint) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Window is a virtual-time interval; a zero To leaves the fault active
// forever (an unrepaired failure).
type Window struct {
	From, To time.Time
}

func (w Window) contains(now time.Time) bool {
	if !w.From.IsZero() && now.Before(w.From) {
		return false
	}
	if !w.To.IsZero() && !now.Before(w.To) {
		return false
	}
	return true
}

// Rule applies one fault Kind to a Target during a Window.
type Rule struct {
	Target Target
	Kind   Kind
	Window Window
	// Rate is the per-query probability for probabilistic kinds (Loss);
	// 0 means 1.0 for the deterministic response kinds.
	Rate float64
	// Extra and Jitter parameterise Latency.
	Extra  time.Duration
	Jitter time.Duration
	// From restricts Partition to clients inside the region; nil
	// partitions every client from the target.
	From *Region
}

// Stats counts injected faults by effect.
type Stats struct {
	OutageSkips    int64 // host-selection verdicts that withdrew a host
	Drops          int64 // queries lost (Loss)
	PartitionDrops int64 // queries lost (Partition)
	Delays         int64 // exchanges with added latency
	ServFails      int64
	Refusals       int64
	LameReferrals  int64
	Truncations    int64
	Forgeries      int64 // spoofed positive answers injected (ForgedAnswer)
	SigTampers     int64 // replies with corrupted RRSIGs delivered (TamperSig)
}

// Injector holds the active rule set and implements netsim.FaultPolicy.
// Safe for concurrent use; never calls back into the Network.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	stats Stats
}

// NewInjector creates an empty injector whose probabilistic faults draw
// from a deterministic seeded generator.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add installs a rule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	in.rules = append(in.rules, r)
	in.mu.Unlock()
}

// Clear removes every rule (stats are kept).
func (in *Injector) Clear() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Collect implements obs.Collector so chaos runs can scrape what was
// actually injected next to what the resolver survived.
func (in *Injector) Collect(reg *obs.Registry) {
	obs.SetCountersFromStruct(reg, "rootless_faults", "injected fault effects", nil, in.Stats())
	in.mu.Lock()
	active := len(in.rules)
	in.mu.Unlock()
	reg.Gauge("rootless_faults_rules", "installed fault rules", nil).Set(float64(active))
}

// HostAvailable implements netsim.FaultPolicy: false while an Outage rule
// covers the host.
func (in *Injector) HostAvailable(now time.Time, from anycast.GeoPoint, h *netsim.Host) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.rules {
		r := &in.rules[i]
		if r.Kind == Outage && r.Window.contains(now) && r.Target.matches(h) {
			in.stats.OutageSkips++
			return false
		}
	}
	return true
}

// QueryFault implements netsim.FaultPolicy: the combined verdict of every
// active rule matching the exchange. Drops win over replies; among reply
// faults the first matching rule wins; latency accumulates.
func (in *Injector) QueryFault(now time.Time, from anycast.GeoPoint, h *netsim.Host, q *dnswire.Message) netsim.Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	var f netsim.Fault
	for i := range in.rules {
		r := &in.rules[i]
		if !r.Window.contains(now) || !r.Target.matches(h) {
			continue
		}
		switch r.Kind {
		case Partition:
			if r.From == nil || r.From.contains(from) {
				in.stats.PartitionDrops++
				f.Drop = true
			}
		case Loss:
			if in.rng.Float64() < r.Rate {
				in.stats.Drops++
				f.Drop = true
			}
		case Latency:
			extra := r.Extra
			if r.Jitter > 0 {
				extra += time.Duration(in.rng.Int63n(int64(r.Jitter)))
			}
			in.stats.Delays++
			f.ExtraRTT += extra
		case ServFail:
			if f.Reply == nil {
				in.stats.ServFails++
				f.Reply = rcodeReply(q, dnswire.RcodeServFail)
			}
		case Refused:
			if f.Reply == nil {
				in.stats.Refusals++
				f.Reply = rcodeReply(q, dnswire.RcodeRefused)
			}
		case LameDelegation:
			if f.Reply == nil {
				in.stats.LameReferrals++
				f.Reply = lameReferral(q)
			}
		case Truncate:
			in.stats.Truncations++
			f.TruncateReply = true
		case ForgedAnswer:
			if f.Reply == nil {
				in.stats.Forgeries++
				f.Reply = forgedReply(q)
			}
		case TamperSig:
			if f.Tamper == nil {
				in.stats.SigTampers++
				f.Tamper = tamperSigs
			}
		}
	}
	if f.Drop {
		f.Reply = nil
		f.TruncateReply = false
		f.Tamper = nil
	}
	return f
}

// rcodeReply builds an empty response with the given rcode.
func rcodeReply(q *dnswire.Message, rcode dnswire.Rcode) *dnswire.Message {
	return &dnswire.Message{
		ID:        q.ID,
		Response:  true,
		Rcode:     rcode,
		Questions: q.Questions,
	}
}

// lameReferral builds a referral that does not descend toward the query
// name — the resolver must classify it as lame rather than follow it.
func lameReferral(q *dnswire.Message) *dnswire.Message {
	return &dnswire.Message{
		ID:        q.ID,
		Response:  true,
		Questions: q.Questions,
		Authority: []dnswire.RR{
			dnswire.NewRR(dnswire.Root, 86400, dnswire.NS{Host: "ns.lame.invalid."}),
		},
	}
}

// forgedReply builds the spoofed answer: an unsigned A record at the
// query name pointing at ForgedAddr. An rcode-success answer with
// records is terminal for the resolver, so without validation this
// poisons the cache for the record's full TTL.
func forgedReply(q *dnswire.Message) *dnswire.Message {
	m := &dnswire.Message{
		ID:        q.ID,
		Response:  true,
		Questions: q.Questions,
	}
	if len(q.Questions) > 0 {
		m.Answers = []dnswire.RR{
			dnswire.NewRR(q.Questions[0].Name, 86400, dnswire.A{Addr: ForgedAddr}),
		}
	}
	return m
}

// tamperSigs corrupts every RRSIG in the reply in place: the signature
// bytes are copied (the reply aliases the wire buffer) and bit-flipped,
// leaving structure and key tags intact so only cryptographic
// verification can tell.
func tamperSigs(m *dnswire.Message) {
	corrupt := func(section []dnswire.RR) {
		for i, rr := range section {
			sig, ok := rr.Data.(dnswire.RRSIG)
			if !ok || len(sig.Signature) == 0 {
				continue
			}
			mangled := append([]byte(nil), sig.Signature...)
			mangled[0] ^= 0xFF
			mangled[len(mangled)-1] ^= 0xFF
			sig.Signature = mangled
			section[i].Data = sig
		}
	}
	corrupt(m.Answers)
	corrupt(m.Authority)
	corrupt(m.Additional)
}

// OutageSample deterministically picks ⌈fraction·len(addrs)⌉ addresses
// from the pool — the "this fraction of the infrastructure is down"
// primitive chaos sweeps are built on. The same (seed, pool, fraction)
// always yields the same subset, and growing the fraction only adds
// victims (a nested failure set), so sweeps are monotone by construction.
func OutageSample(seed int64, addrs []netip.Addr, fraction float64) []netip.Addr {
	if fraction <= 0 || len(addrs) == 0 {
		return nil
	}
	pool := append([]netip.Addr(nil), addrs...)
	sort.Slice(pool, func(i, j int) bool { return pool[i].Less(pool[j]) })
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	k := int(math.Ceil(fraction * float64(len(pool))))
	if k > len(pool) {
		k = len(pool)
	}
	return pool[:k]
}
