//go:build linux && (amd64 || arm64)

package udpengine

import (
	"encoding/binary"
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// The Linux fast path: recvmmsg pulls a vector of datagrams per
// syscall, the handler runs over each slot reusing the slot's buffers,
// and sendmmsg pushes the whole response vector back out. At small
// message sizes the syscall boundary dominates per-packet cost, so
// moving M messages per crossing amortizes it ~M-fold; this is the
// same structure BIND and Knot use via libuv/epoll worker loops.
//
// Restricted to 64-bit ports (amd64, arm64) because mmsghdr embeds
// syscall.Msghdr, whose layout — and therefore the trailing pad that
// keeps the array stride at the kernel's expectation — differs on
// 32-bit ABIs. Other Linux ports fall back to the portable loop.

// mmsghdr mirrors struct mmsghdr: a msghdr plus the per-message byte
// count the kernel fills in. On LP64 the struct is padded to 64 bytes.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

const (
	batchIOSupported = true
	// rsaSize is the sockaddr storage per slot, large enough for IPv6.
	rsaSize = syscall.SizeofSockaddrInet6
	// ctrlSize holds one cmsghdr + a uint32 SO_RXQ_OVFL counter.
	ctrlSize = syscall.SizeofCmsghdr + 8
)

// mmsgIO is one worker's vector transport state. Everything is
// allocated once: rx/tx buffers, sockaddr and control storage, and the
// two mmsghdr arrays all live for the worker's lifetime, so the steady
// state allocates nothing.
type mmsgIO struct {
	uconn *net.UDPConn
	rc    syscall.RawConn

	batch int
	rx    [][]byte
	tx    [][]byte
	rsa   []byte // batch * rsaSize sockaddr slots, shared rx→tx
	ctrl  []byte // batch * ctrlSize cmsg slots
	riov  []syscall.Iovec
	tiov  []syscall.Iovec
	rhdr  []mmsghdr
	thdr  []mmsghdr
}

func newWorkerIO(conn net.PacketConn, batch, maxPacket int) workerIO {
	uconn, ok := conn.(*net.UDPConn)
	if !ok || batch <= 1 {
		return newPortableIO(conn, maxPacket)
	}
	rc, err := uconn.SyscallConn()
	if err != nil {
		return newPortableIO(conn, maxPacket)
	}
	// Drop accounting for pre-opened sockets too (engine-opened
	// reuseport listeners already set this in their Control hook).
	_ = rc.Control(func(fd uintptr) {
		_ = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soRxqOvfl, 1)
	})
	io := &mmsgIO{uconn: uconn, rc: rc, batch: batch}
	io.rx = make([][]byte, batch)
	io.tx = make([][]byte, batch)
	io.rsa = make([]byte, batch*rsaSize)
	io.ctrl = make([]byte, batch*ctrlSize)
	io.riov = make([]syscall.Iovec, batch)
	io.tiov = make([]syscall.Iovec, batch)
	io.rhdr = make([]mmsghdr, batch)
	io.thdr = make([]mmsghdr, batch)
	for i := 0; i < batch; i++ {
		io.rx[i] = make([]byte, maxPacket)
		io.tx[i] = make([]byte, 0, maxPacket)
		io.riov[i] = syscall.Iovec{Base: &io.rx[i][0]}
		io.riov[i].SetLen(maxPacket)
		h := &io.rhdr[i].hdr
		h.Name = &io.rsa[i*rsaSize]
		h.Iov = &io.riov[i]
		h.Iovlen = 1
		h.Control = &io.ctrl[i*ctrlSize]
	}
	return io
}

func (m *mmsgIO) serve(w *worker, h Handler) error {
	for {
		n, err := m.recv()
		if err != nil {
			return err
		}
		w.reads.Add(1)
		w.packets.Add(int64(n))

		// Serve each received slot; responses go into the tx vector,
		// reusing the rx slot's sockaddr for the return path.
		sendCount := 0
		for i := 0; i < n; i++ {
			got := int(m.rhdr[i].n)
			if got > len(m.rx[i]) {
				got = len(m.rx[i]) // truncated datagram
			}
			m.harvestRxqDrops(w, i)
			peer := Peer{Addr: m.peerAddr(i), uconn: m.uconn, w: w}
			resp := h.ServeDatagram(m.rx[i][:got], peer, m.tx[i][:0])
			if len(resp) == 0 {
				w.dropped.Add(1)
				continue
			}
			m.tx[i] = resp[:0] // adopt a possibly-grown buffer
			j := sendCount
			m.tiov[j].Base = &resp[0]
			m.tiov[j].SetLen(len(resp))
			th := &m.thdr[j].hdr
			th.Name = m.rhdr[i].hdr.Name
			th.Namelen = m.rhdr[i].hdr.Namelen
			th.Iov = &m.tiov[j]
			th.Iovlen = 1
			th.Control = nil
			th.Controllen = 0
			sendCount++
		}
		if sendCount == 0 {
			continue
		}
		delivered, failed, err := m.send(sendCount)
		w.writes.Add(int64(delivered))
		w.writeErrs.Add(int64(failed))
		if err != nil {
			w.writeErrs.Add(int64(sendCount - delivered - failed))
			return err
		}
	}
}

// recv blocks until at least one datagram arrives, then drains up to
// batch messages in one recvmmsg call.
func (m *mmsgIO) recv() (int, error) {
	var n int
	var operr error
	err := m.rc.Read(func(fd uintptr) bool {
		for i := range m.rhdr {
			// Reset the kernel-written lengths before each call.
			m.rhdr[i].hdr.Namelen = rsaSize
			m.rhdr[i].hdr.SetControllen(ctrlSize)
			m.rhdr[i].hdr.Flags = 0
			m.rhdr[i].n = 0
		}
		r1, _, errno := syscall.Syscall6(sysRECVMMSG,
			fd, uintptr(unsafe.Pointer(&m.rhdr[0])), uintptr(len(m.rhdr)),
			syscall.MSG_DONTWAIT, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park on the poller until readable
		}
		if errno != 0 {
			operr = errno
			return true
		}
		n = int(r1)
		return true
	})
	if err != nil {
		return 0, err
	}
	return n, operr
}

// send pushes count queued responses with sendmmsg, retrying the
// unsent tail across writability waits. A per-destination error (e.g.
// a vanished peer) fails only the message at the head of the vector;
// the rest still go out.
func (m *mmsgIO) send(count int) (delivered, failed int, err error) {
	idx := 0
	err = m.rc.Write(func(fd uintptr) bool {
		for idx < count {
			r1, _, errno := syscall.Syscall6(sysSENDMMSG,
				fd, uintptr(unsafe.Pointer(&m.thdr[idx])), uintptr(count-idx),
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EAGAIN {
				return false // wait for writability, then resume
			}
			if errno != 0 {
				idx++
				failed++
				continue
			}
			idx += int(r1)
			delivered += int(r1)
		}
		return true
	})
	return delivered, failed, err
}

// peerAddr decodes slot i's sockaddr without allocating.
func (m *mmsgIO) peerAddr(i int) netip.AddrPort {
	b := m.rsa[i*rsaSize:]
	family := binary.LittleEndian.Uint16(b) // sa_family_t is host-order; Linux LP64 ports here are LE
	switch family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&b[0]))
		port := uint16(b[2])<<8 | uint16(b[3]) // sin_port is big-endian on the wire
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port)
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&b[0]))
		port := uint16(b[2])<<8 | uint16(b[3])
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), port)
	}
	return netip.AddrPort{}
}

// harvestRxqDrops parses slot i's control messages for the SO_RXQ_OVFL
// cumulative drop counter and records the high-water mark.
func (m *mmsgIO) harvestRxqDrops(w *worker, i int) {
	clen := int(m.rhdr[i].hdr.Controllen)
	if clen < syscall.SizeofCmsghdr {
		return
	}
	b := m.ctrl[i*ctrlSize : i*ctrlSize+clen]
	cm := (*syscall.Cmsghdr)(unsafe.Pointer(&b[0]))
	if cm.Level != syscall.SOL_SOCKET || cm.Type != soRxqOvfl ||
		int(cm.Len) < syscall.SizeofCmsghdr+4 {
		return
	}
	drops := int64(binary.LittleEndian.Uint32(b[syscall.SizeofCmsghdr:]))
	// The kernel counter is cumulative per socket; keep the max seen.
	for {
		cur := w.rxqDrops.Load()
		if drops <= cur || w.rxqDrops.CompareAndSwap(cur, drops) {
			return
		}
	}
}
