// Package udpengine is the shared multi-core UDP serving core behind
// authd and resolverd. One Engine drives N worker goroutines, each
// pinned to its own SO_REUSEPORT listener where the platform supports
// it (Linux), or sharing a single listener elsewhere. Workers reuse
// their rx/tx buffers across datagrams and, on Linux, move vectors of
// messages per syscall with recvmmsg/sendmmsg — the transport-side
// counterpart of the zero-alloc codec and packed-answer cache: it turns
// per-message ns/op wins into served throughput.
//
// # Buffer ownership contract
//
// The engine owns every buffer it hands a Handler. ServeDatagram's req
// slice aliases the worker's receive buffer and is valid ONLY for the
// duration of the call: the next read into that slot overwrites it, so
// a handler that needs the bytes later (an async responder like the
// resolver) must copy them first. The resp slice is the worker's
// per-slot transmit buffer with length 0; the handler appends its
// response and returns the extended slice, which the engine transmits
// before the slot is reused and then adopts as the slot's buffer (so a
// response that outgrew the slot keeps its larger backing array).
// Returning a slice that does not share resp's backing array is a
// contract violation — the engine would adopt it and append the next
// response into it. Return nil to send nothing.
//
// Messages decoded with dnswire.UnpackShared from req follow the same
// rule: rdata fields alias req, so nothing decoded from it may be
// retained past the call. authserver's packed-answer path satisfies
// this — cache templates only retain Name strings and Question values,
// never rdata slices (pinned by TestEngineHandlerRetention).
package udpengine

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"rootless/internal/obs"
)

// Handler processes one datagram synchronously. See the package comment
// for the buffer ownership contract.
type Handler interface {
	ServeDatagram(req []byte, src Peer, resp []byte) []byte
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req []byte, src Peer, resp []byte) []byte

// ServeDatagram calls f.
func (f HandlerFunc) ServeDatagram(req []byte, src Peer, resp []byte) []byte {
	return f(req, src, resp)
}

// Peer identifies a datagram's source and carries the reply path for
// handlers that answer asynchronously (after ServeDatagram returned).
// It is a value type: capturing it in a goroutine is safe and does not
// pin any engine buffer.
type Peer struct {
	// Addr is the datagram's source address.
	Addr netip.AddrPort

	uconn *net.UDPConn
	pconn net.PacketConn
	w     *worker
}

// Detach records that the handler has taken ownership of this datagram
// and will answer (or deliberately not) via Reply after ServeDatagram
// returns. Call it before returning nil from an asynchronous handler:
// the nil return then counts toward Async instead of Dropped, so an
// async daemon does not report every answered query as a drop.
func (p Peer) Detach() {
	if p.w != nil {
		p.w.detached.Add(1)
	}
}

// Reply sends b to the peer, bypassing the engine's transmit batch.
// Synchronous handlers should return the response from ServeDatagram
// instead (it batches); Reply exists for handlers that answer after
// ServeDatagram returned, like the resolver's per-query goroutines.
// The transmission is counted in the owning worker's Writes/WriteErrs.
func (p Peer) Reply(b []byte) error {
	var err error
	switch {
	case p.uconn != nil:
		_, err = p.uconn.WriteToUDPAddrPort(b, p.Addr)
	case p.pconn != nil:
		_, err = p.pconn.WriteTo(b, net.UDPAddrFromAddrPort(p.Addr))
	default:
		return errors.New("udpengine: zero Peer")
	}
	if p.w != nil {
		if err != nil {
			p.w.writeErrs.Add(1)
		} else {
			p.w.writes.Add(1)
		}
	}
	return err
}

// Config describes an Engine.
type Config struct {
	// Addr is the UDP listen address ("host:port"). Ignored when Conns
	// is non-empty.
	Addr string

	// Conns, when non-empty, are pre-opened listeners the engine serves
	// instead of opening its own. Workers defaults to len(Conns); more
	// workers than conns share them round-robin. The engine closes them
	// when Serve's context ends.
	Conns []net.PacketConn

	// Workers is the number of serving goroutines. 0 defaults to
	// GOMAXPROCS. With 1 worker and Batch <= 1 the engine behaves
	// exactly like the classic single-loop ServeUDP.
	Workers int

	// Batch is the number of messages moved per syscall where the
	// platform supports vector I/O (Linux recvmmsg/sendmmsg). <= 1, or
	// any value on other platforms, means one ReadFrom/WriteTo per
	// datagram.
	Batch int

	// Handler serves each datagram. Required.
	Handler Handler

	// MaxPacket is the per-slot receive buffer size. 0 defaults to
	// 4096 bytes — larger than any real query; oversized datagrams are
	// truncated at the socket, exactly as a fixed ReadFrom buffer
	// would. Raise it for trusted links carrying jumbo messages.
	MaxPacket int
}

// WorkerStats is one worker's cumulative activity.
type WorkerStats struct {
	// Reads counts read syscalls; Packets counts datagrams received.
	// Packets/Reads is the realized batch amortization (1.0 without
	// vector I/O).
	Reads   int64
	Packets int64
	// Writes counts datagrams sent from the synchronous path; WriteErrs
	// counts failed transmissions.
	Writes    int64
	WriteErrs int64
	// Dropped counts datagrams the handler declined to answer (nil
	// return) — rate-limited, shed, or malformed. Nil returns preceded
	// by Peer.Detach count toward Async instead.
	Dropped int64
	// Async counts datagrams a handler detached for asynchronous reply
	// (Peer.Detach + Peer.Reply), like the resolver's per-query
	// goroutines.
	Async int64
	// RxQueueDrops is the kernel's SO_RXQ_OVFL cumulative counter: how
	// many datagrams the socket's receive queue overflowed and lost.
	// Only populated on the Linux batch path.
	RxQueueDrops int64
}

// EngineStats snapshots the whole engine.
type EngineStats struct {
	Workers   int
	Batch     int
	ReusePort bool // one listener per worker (Linux SO_REUSEPORT)
	PerWorker []WorkerStats
	Total     WorkerStats
}

type worker struct {
	id   int
	conn net.PacketConn
	io   workerIO

	reads     atomic.Int64
	packets   atomic.Int64
	writes    atomic.Int64
	writeErrs atomic.Int64
	dropped   atomic.Int64
	detached  atomic.Int64
	rxqDrops  atomic.Int64
}

func (w *worker) stats() WorkerStats {
	// dropped counts every nil handler return; detached marks the nil
	// returns that were async takeovers. Detach runs before the return
	// is counted, so a snapshot between the two can transiently see
	// more detaches than nil returns — clamp instead of going negative.
	dropped := w.dropped.Load() - w.detached.Load()
	if dropped < 0 {
		dropped = 0
	}
	return WorkerStats{
		Reads:        w.reads.Load(),
		Packets:      w.packets.Load(),
		Writes:       w.writes.Load(),
		WriteErrs:    w.writeErrs.Load(),
		Dropped:      dropped,
		Async:        w.detached.Load(),
		RxQueueDrops: w.rxqDrops.Load(),
	}
}

// workerIO is one worker's transport: the portable single-datagram loop
// or the Linux recvmmsg/sendmmsg batcher.
type workerIO interface {
	// serve reads datagrams, invokes the handler, and transmits the
	// responses until the conn is closed or a fatal error occurs.
	serve(w *worker, h Handler) error
}

// Engine serves UDP datagrams across worker goroutines.
type Engine struct {
	cfg       Config
	conns     []net.PacketConn
	workers   []*worker
	reusePort bool
	ownConns  bool

	mu      sync.Mutex
	started bool
}

// New builds an engine. When cfg.Conns is empty it opens the listeners
// itself: on Linux, one SO_REUSEPORT socket per worker so the kernel
// spreads flows across them; elsewhere a single socket shared by every
// worker.
func New(cfg Config) (*Engine, error) {
	if cfg.Handler == nil {
		return nil, errors.New("udpengine: Config.Handler is required")
	}
	if cfg.Workers <= 0 {
		if len(cfg.Conns) > 0 {
			cfg.Workers = len(cfg.Conns)
		} else {
			cfg.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	if cfg.MaxPacket <= 0 {
		cfg.MaxPacket = 4096
	}

	e := &Engine{cfg: cfg}
	if len(cfg.Conns) > 0 {
		e.conns = cfg.Conns
	} else {
		if cfg.Addr == "" {
			return nil, errors.New("udpengine: Config.Addr or Config.Conns is required")
		}
		conns, reuse, err := openListeners(cfg.Addr, cfg.Workers)
		if err != nil {
			return nil, err
		}
		e.conns = conns
		e.reusePort = reuse
		e.ownConns = true
	}

	for i := 0; i < cfg.Workers; i++ {
		conn := e.conns[i%len(e.conns)]
		w := &worker{id: i, conn: conn}
		w.io = newWorkerIO(conn, cfg.Batch, cfg.MaxPacket)
		e.workers = append(e.workers, w)
	}
	return e, nil
}

// LocalAddr returns the first listener's address (all listeners share
// it under SO_REUSEPORT).
func (e *Engine) LocalAddr() net.Addr { return e.conns[0].LocalAddr() }

// ReusePort reports whether the engine opened one listener per worker.
func (e *Engine) ReusePort() bool { return e.reusePort }

// Workers returns the serving goroutine count.
func (e *Engine) Workers() int { return len(e.workers) }

// Batch returns the configured messages-per-syscall vector size.
func (e *Engine) Batch() int { return e.cfg.Batch }

// BatchSupported reports whether this platform has kernel vector I/O
// (Linux recvmmsg/sendmmsg); elsewhere Batch degrades to 1.
func BatchSupported() bool { return batchIOSupported }

// Serve runs the workers until ctx is cancelled or a listener fails.
// It closes the listeners on the way out, including pre-opened ones
// from Config.Conns (matching the classic ServeUDP contract).
func (e *Engine) Serve(ctx context.Context) error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("udpengine: Serve called twice")
	}
	e.started = true
	e.mu.Unlock()

	// Close the sockets when ctx ends so blocked reads unwind; the
	// done channel keeps the closer from outliving Serve when workers
	// exit on their own.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		for _, c := range e.conns {
			c.Close()
		}
	}()

	errs := make(chan error, len(e.workers))
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			err := w.io.serve(w, e.cfg.Handler)
			if err != nil && ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// Stats snapshots every worker plus the engine-wide total.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Workers:   len(e.workers),
		Batch:     e.cfg.Batch,
		ReusePort: e.reusePort,
	}
	for _, w := range e.workers {
		ws := w.stats()
		st.PerWorker = append(st.PerWorker, ws)
		st.Total.Reads += ws.Reads
		st.Total.Packets += ws.Packets
		st.Total.Writes += ws.Writes
		st.Total.WriteErrs += ws.WriteErrs
		st.Total.Dropped += ws.Dropped
		st.Total.Async += ws.Async
		st.Total.RxQueueDrops += ws.RxQueueDrops
	}
	return st
}

// Collect implements obs.Collector: per-worker counters labeled by
// worker index, plus engine-shape gauges.
func (e *Engine) Collect(reg *obs.Registry) {
	st := e.Stats()
	reg.Gauge("rootless_udpengine_workers", "UDP engine worker goroutines", nil).
		Set(float64(st.Workers))
	reg.Gauge("rootless_udpengine_batch", "configured messages per recvmmsg/sendmmsg vector", nil).
		Set(float64(st.Batch))
	reuse := 0.0
	if st.ReusePort {
		reuse = 1
	}
	reg.Gauge("rootless_udpengine_reuseport", "1 when each worker owns an SO_REUSEPORT listener", nil).
		Set(reuse)
	for i, ws := range st.PerWorker {
		l := obs.Labels{"worker": strconv.Itoa(i)}
		reg.Counter("rootless_udpengine_reads_total", "read syscalls per engine worker", l).Set(ws.Reads)
		reg.Counter("rootless_udpengine_packets_total", "datagrams received per engine worker", l).Set(ws.Packets)
		reg.Counter("rootless_udpengine_writes_total", "datagrams sent per engine worker", l).Set(ws.Writes)
		reg.Counter("rootless_udpengine_write_errors_total", "failed transmissions per engine worker", l).Set(ws.WriteErrs)
		reg.Counter("rootless_udpengine_handler_drops_total", "datagrams the handler declined to answer, per engine worker", l).Set(ws.Dropped)
		reg.Counter("rootless_udpengine_async_total", "datagrams detached for asynchronous reply, per engine worker", l).Set(ws.Async)
		reg.Counter("rootless_udpengine_rxq_drops_total", "kernel receive-queue overflow drops (SO_RXQ_OVFL), per engine worker", l).Set(ws.RxQueueDrops)
	}
}

// StatusDoc returns the /statusz fields daemons merge into their status
// documents.
func (e *Engine) StatusDoc() map[string]any {
	st := e.Stats()
	doc := map[string]any{
		"udp_workers":       st.Workers,
		"udp_batch":         st.Batch,
		"udp_reuseport":     st.ReusePort,
		"udp_reads":         st.Total.Reads,
		"udp_packets":       st.Total.Packets,
		"udp_writes":        st.Total.Writes,
		"udp_write_errors":  st.Total.WriteErrs,
		"udp_handler_drops": st.Total.Dropped,
		"udp_async_replies": st.Total.Async,
		"udp_rxqueue_drops": st.Total.RxQueueDrops,
	}
	if st.Total.Reads > 0 {
		doc["udp_msgs_per_read"] = float64(st.Total.Packets) / float64(st.Total.Reads)
	}
	return doc
}

// portableIO is the fallback transport: one datagram per syscall via
// the portable net.PacketConn interface, with the *net.UDPConn
// AddrPort fast paths when available (they avoid the per-read
// net.Addr allocation).
type portableIO struct {
	uconn *net.UDPConn
	pconn net.PacketConn
	rx    []byte
	tx    []byte
}

func newPortableIO(conn net.PacketConn, maxPacket int) *portableIO {
	io := &portableIO{pconn: conn, rx: make([]byte, maxPacket), tx: make([]byte, 0, maxPacket)}
	if u, ok := conn.(*net.UDPConn); ok {
		io.uconn = u
	}
	return io
}

func (p *portableIO) serve(w *worker, h Handler) error {
	for {
		var (
			n    int
			src  netip.AddrPort
			addr net.Addr
			err  error
		)
		if p.uconn != nil {
			n, src, err = p.uconn.ReadFromUDPAddrPort(p.rx)
		} else {
			n, addr, err = p.pconn.ReadFrom(p.rx)
			if err == nil {
				src = addrPortFrom(addr)
			}
		}
		if err != nil {
			return err
		}
		w.reads.Add(1)
		w.packets.Add(1)
		peer := Peer{Addr: src, uconn: p.uconn, pconn: p.pconn, w: w}
		resp := h.ServeDatagram(p.rx[:n], peer, p.tx[:0])
		if len(resp) == 0 {
			w.dropped.Add(1)
			continue
		}
		p.tx = resp[:0] // adopt a possibly-grown buffer
		if p.uconn != nil {
			_, err = p.uconn.WriteToUDPAddrPort(resp, src)
		} else {
			_, err = p.pconn.WriteTo(resp, addr)
		}
		if err != nil {
			w.writeErrs.Add(1)
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			continue
		}
		w.writes.Add(1)
	}
}

// addrPortFrom converts a net.Addr to netip.AddrPort.
func addrPortFrom(a net.Addr) netip.AddrPort {
	switch v := a.(type) {
	case *net.UDPAddr:
		return v.AddrPort()
	default:
		if ap, err := netip.ParseAddrPort(a.String()); err == nil {
			return ap
		}
		return netip.AddrPort{}
	}
}

// openPortable is the non-reuseport listener path shared by both build
// variants: one socket, every worker reads from it concurrently.
func openPortable(addr string) ([]net.PacketConn, bool, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, false, fmt.Errorf("udpengine: listen %s: %w", addr, err)
	}
	return []net.PacketConn{conn}, false, nil
}
