//go:build !linux || !(amd64 || arm64)

package udpengine

import "net"

const batchIOSupported = false

// newWorkerIO without kernel vector I/O always serves one datagram per
// syscall; Config.Batch degrades gracefully to 1.
func newWorkerIO(conn net.PacketConn, batch, maxPacket int) workerIO {
	return newPortableIO(conn, maxPacket)
}
