//go:build linux && amd64

package udpengine

// The stdlib syscall tables for linux/amd64 are frozen at a kernel
// vintage that predates sendmmsg (3.0); both vector-I/O numbers are
// spelled out here instead of pulling in golang.org/x/sys.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
