package udpengine

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// echoHandler is the deterministic parity handler: response = 'R' +
// request bytes. Any lost, duplicated, or corrupted datagram shows up
// as a sequence-set mismatch.
var echoHandler = HandlerFunc(func(req []byte, src Peer, resp []byte) []byte {
	resp = append(resp, 'R')
	return append(resp, req...)
})

func startEngine(t *testing.T, workers, batch int, h Handler) (*Engine, context.CancelFunc, chan error) {
	t.Helper()
	eng, err := New(Config{Addr: "127.0.0.1:0", Workers: workers, Batch: batch, Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Serve(ctx) }()
	return eng, cancel, done
}

// TestParityAcrossConfigs is the engine behavioral parity suite: the
// same handler behind 1 worker, N workers, and N workers with batch
// I/O must yield identical response bytes with no datagram lost or
// duplicated at a fixed query count.
func TestParityAcrossConfigs(t *testing.T) {
	const queries = 400
	configs := []struct {
		name           string
		workers, batch int
	}{
		{"1worker", 1, 1},
		{"4workers", 4, 1},
		{"1worker_batch8", 1, 8},
		{"4workers_batch8", 4, 8},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			eng, cancel, done := startEngine(t, tc.workers, tc.batch, echoHandler)
			defer func() {
				cancel()
				if err := <-done; err != nil {
					t.Errorf("Serve: %v", err)
				}
			}()

			client, err := net.Dial("udp", eng.LocalAddr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			// Receiver first, so early responses are not lost.
			type recv struct {
				seq  uint32
				body []byte
			}
			got := make(chan recv, queries)
			go func() {
				buf := make([]byte, 64)
				for {
					client.SetReadDeadline(time.Now().Add(3 * time.Second))
					n, err := client.Read(buf)
					if err != nil {
						close(got)
						return
					}
					if n < 5 || buf[0] != 'R' {
						continue
					}
					body := make([]byte, n)
					copy(body, buf[:n])
					got <- recv{binary.BigEndian.Uint32(buf[1:5]), body}
				}
			}()

			for i := 0; i < queries; i++ {
				var msg [12]byte
				binary.BigEndian.PutUint32(msg[0:4], uint32(i))
				copy(msg[4:], "payload!")
				if _, err := client.Write(msg[:]); err != nil {
					t.Fatal(err)
				}
				if i%64 == 63 {
					// Light pacing so the loopback rx queue never overflows:
					// the suite asserts zero loss, not max throughput.
					time.Sleep(time.Millisecond)
				}
			}

			seen := make(map[uint32]int, queries)
			for len(seen) < queries {
				r, ok := <-got
				if !ok {
					break
				}
				seen[r.seq]++
				want := append([]byte{'R'}, make([]byte, 12)...)
				binary.BigEndian.PutUint32(want[1:5], r.seq)
				copy(want[5:], "payload!")
				if !bytes.Equal(r.body, want) {
					t.Fatalf("seq %d: response %x, want %x", r.seq, r.body, want)
				}
			}
			if len(seen) != queries {
				t.Fatalf("received %d distinct responses, want %d", len(seen), queries)
			}
			for seq, n := range seen {
				if n != 1 {
					t.Fatalf("seq %d received %d times", seq, n)
				}
			}

			st := eng.Stats()
			if st.Total.Packets < queries {
				t.Errorf("stats: %d packets received, want >= %d", st.Total.Packets, queries)
			}
			if st.Total.Writes < queries {
				t.Errorf("stats: %d writes, want >= %d", st.Total.Writes, queries)
			}
			if st.Total.Reads > st.Total.Packets {
				t.Errorf("stats: reads %d > packets %d", st.Total.Reads, st.Total.Packets)
			}
			if tc.workers > 1 && BatchSupported() && !eng.ReusePort() {
				t.Errorf("expected SO_REUSEPORT listeners on this platform")
			}
		})
	}
}

// TestBatchAmortization: with vector I/O available, a burst that is
// queued before the worker wakes must drain in fewer read syscalls
// than packets (the whole point of recvmmsg).
func TestBatchAmortization(t *testing.T) {
	if !BatchSupported() {
		t.Skip("no kernel vector I/O on this platform")
	}
	block := make(chan struct{})
	var once sync.Once
	h := HandlerFunc(func(req []byte, src Peer, resp []byte) []byte {
		once.Do(func() { <-block }) // hold the worker so a burst queues up
		return append(resp, req...)
	})
	eng, cancel, done := startEngine(t, 1, 16, h)
	defer func() {
		cancel()
		<-done
	}()

	client, err := net.Dial("udp", eng.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const burst = 64
	for i := 0; i < burst; i++ {
		if _, err := client.Write([]byte(fmt.Sprintf("q-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the burst reach the socket
	close(block)

	buf := make([]byte, 64)
	for i := 0; i < burst; i++ {
		client.SetReadDeadline(time.Now().Add(3 * time.Second))
		if _, err := client.Read(buf); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
	}
	st := eng.Stats()
	if st.Total.Reads >= st.Total.Packets {
		t.Errorf("reads %d >= packets %d: batching never amortized a syscall",
			st.Total.Reads, st.Total.Packets)
	}
}

// TestServeStopsOnCancel: cancelling the context unblocks every worker
// and Serve returns nil.
func TestServeStopsOnCancel(t *testing.T) {
	_, cancel, done := startEngine(t, 2, 4, echoHandler)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}

// TestPreopenedConn: the Conns path (the classic ServeUDP contract)
// serves from a caller-opened socket and closes it on shutdown.
func TestPreopenedConn(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Conns: []net.PacketConn{conn}, Handler: echoHandler})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != 1 {
		t.Fatalf("workers = %d, want 1 (defaults to len(Conns))", eng.Workers())
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Serve(ctx) }()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	client.SetReadDeadline(time.Now().Add(3 * time.Second))
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "Rping" {
		t.Fatalf("read %q, %v; want Rping", buf[:n], err)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	// The engine closed the pre-opened conn on the way out.
	if _, _, err := conn.ReadFrom(buf); err == nil {
		t.Error("conn still open after Serve returned")
	}
}

// TestDropAccounting: nil handler returns count as drops, not writes.
func TestDropAccounting(t *testing.T) {
	drop := HandlerFunc(func(req []byte, src Peer, resp []byte) []byte { return nil })
	eng, cancel, done := startEngine(t, 1, 1, drop)
	defer func() {
		cancel()
		<-done
	}()
	client, err := net.Dial("udp", eng.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 10; i++ {
		client.Write([]byte("x"))
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if eng.Stats().Total.Dropped == 10 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := eng.Stats()
	if st.Total.Dropped != 10 || st.Total.Writes != 0 {
		t.Fatalf("dropped=%d writes=%d, want 10/0", st.Total.Dropped, st.Total.Writes)
	}
}

// TestAsyncReply: a handler that returns nil and answers later through
// Peer.Reply (the resolver pattern) still reaches the client.
func TestAsyncReply(t *testing.T) {
	async := HandlerFunc(func(req []byte, src Peer, resp []byte) []byte {
		pkt := append([]byte(nil), req...) // must copy: req dies at return
		src.Detach()
		go func() {
			time.Sleep(5 * time.Millisecond)
			src.Reply(append([]byte("later:"), pkt...))
		}()
		return nil
	})
	eng, cancel, done := startEngine(t, 2, 4, async)
	defer func() {
		cancel()
		<-done
	}()
	client, err := net.Dial("udp", eng.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	client.SetReadDeadline(time.Now().Add(3 * time.Second))
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "later:ping" {
		t.Fatalf("read %q, %v; want later:ping", buf[:n], err)
	}
	// Detach + Reply must account as an async write, not a drop.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if st := eng.Stats().Total; st.Async == 1 && st.Writes == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := eng.Stats().Total
	if st.Async != 1 || st.Writes != 1 || st.Dropped != 0 {
		t.Errorf("async stats: Async=%d Writes=%d Dropped=%d, want 1/1/0",
			st.Async, st.Writes, st.Dropped)
	}
}

// TestConcurrentClientsRace hammers a multi-worker batch engine from
// many client goroutines — under -race this checks the worker loops,
// stats, and buffer handoffs share nothing they shouldn't.
func TestConcurrentClientsRace(t *testing.T) {
	eng, cancel, done := startEngine(t, 4, 8, echoHandler)
	defer func() {
		cancel()
		<-done
	}()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := net.Dial("udp", eng.LocalAddr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			buf := make([]byte, 64)
			for i := 0; i < 50; i++ {
				msg := fmt.Sprintf("c%d-%d", c, i)
				if _, err := client.Write([]byte(msg)); err != nil {
					t.Error(err)
					return
				}
				client.SetReadDeadline(time.Now().Add(3 * time.Second))
				n, err := client.Read(buf)
				if err != nil {
					t.Errorf("client %d read %d: %v", c, i, err)
					return
				}
				if string(buf[:n]) != "R"+msg {
					t.Errorf("client %d: got %q want %q", c, buf[:n], "R"+msg)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}
