//go:build linux && arm64

package udpengine

// linux/arm64 uses the generic syscall table.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
