//go:build !linux

package udpengine

import "net"

// openListeners on platforms without a portable SO_REUSEPORT story
// opens one socket; all workers read from it concurrently. Parallelism
// still helps (handler work overlaps) but reads serialize on the one
// receive queue.
func openListeners(addr string, n int) ([]net.PacketConn, bool, error) {
	return openPortable(addr)
}
