//go:build linux

package udpengine

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// Socket options absent from the stdlib syscall tables (they predate
// the x/sys split). Values are identical across Linux architectures.
const (
	soReusePort = 0xf  // SO_REUSEPORT, kernel >= 3.9
	soRxqOvfl   = 0x28 // SO_RXQ_OVFL: cmsg carrying the rx-queue drop counter
)

// openListeners opens n SO_REUSEPORT sockets bound to the same
// address, one per worker, so the kernel hashes flows across them —
// the standard multi-core UDP serving arrangement (nginx, Knot, NSD
// all do this). SO_RXQ_OVFL is enabled on each so the batch reader can
// report kernel-side drops. Falls back to a single shared socket when
// the kernel refuses SO_REUSEPORT.
func openListeners(addr string, n int) ([]net.PacketConn, bool, error) {
	if n <= 1 {
		return openPortable(addr)
	}
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			if serr == nil {
				// Best-effort: drop accounting is diagnostic only.
				_ = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soRxqOvfl, 1)
			}
		})
		if err != nil {
			return err
		}
		return serr
	}}
	conns := make([]net.PacketConn, 0, n)
	for i := 0; i < n; i++ {
		// After the first bind the remaining listeners must target the
		// exact port the kernel picked (matters for ":0" test listeners).
		bindAddr := addr
		if len(conns) > 0 {
			bindAddr = conns[0].LocalAddr().String()
		}
		conn, err := lc.ListenPacket(context.Background(), "udp", bindAddr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			if i == 0 {
				// SO_REUSEPORT itself failed: serve everything from one
				// portable socket rather than refusing to start.
				return openPortable(addr)
			}
			return nil, false, fmt.Errorf("udpengine: reuseport listener %d: %w", i, err)
		}
		conns = append(conns, conn)
	}
	return conns, true, nil
}
