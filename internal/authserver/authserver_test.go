package authserver

import (
	"context"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

const testZoneSrc = `
$ORIGIN .
. 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. 2019041100 1800 900 604800 86400
. 518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 198.41.0.4
com. 172800 IN NS a.gtld-servers.net.
com. 172800 IN NS b.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
b.gtld-servers.net. 172800 IN A 192.33.14.30
org. 172800 IN NS a0.org.afilias-nst.info.
`

func testServer(t testing.TB) *Server {
	t.Helper()
	z, err := zone.Parse(strings.NewReader(testZoneSrc), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return New(z)
}

func query(name dnswire.Name, typ dnswire.Type) *dnswire.Message {
	q := dnswire.NewQuery(42, name, typ)
	q.SetEDNS(dnswire.DefaultEDNSSize, false)
	return q
}

func TestHandleReferral(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("www.example.com.", dnswire.TypeA), netip.Addr{})
	if resp.Rcode != dnswire.RcodeSuccess || resp.Authoritative {
		t.Fatalf("rcode=%v aa=%v", resp.Rcode, resp.Authoritative)
	}
	if len(resp.Answers) != 0 || len(resp.Authority) != 2 || len(resp.Additional) < 2 {
		t.Fatalf("sections: an=%d ns=%d ar=%d", len(resp.Answers), len(resp.Authority), len(resp.Additional))
	}
	if resp.ID != 42 {
		t.Error("ID not echoed")
	}
	if s.Stats().Referrals != 1 {
		t.Errorf("stats: %+v", s.Stats())
	}
}

func TestHandleNXDomain(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query("foo.bogustld.", dnswire.TypeA), netip.Addr{})
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %v", resp.Rcode)
	}
	if s.Stats().NXDomain != 1 {
		t.Errorf("stats: %+v", s.Stats())
	}
}

func TestHandleApexAnswer(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query(dnswire.Root, dnswire.TypeNS), netip.Addr{})
	if !resp.Authoritative || len(resp.Answers) != 1 {
		t.Fatalf("apex NS: %+v", resp)
	}
	if s.Stats().Answers != 1 {
		t.Errorf("stats: %+v", s.Stats())
	}
}

func TestHandleFormErrAndNotImpl(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(&dnswire.Message{ID: 1}, netip.Addr{})
	if resp.Rcode != dnswire.RcodeFormat {
		t.Errorf("no question: %v", resp.Rcode)
	}
	m := query("example.com.", dnswire.TypeA)
	m.Opcode = dnswire.OpcodeUpdate
	resp = s.Handle(m, netip.Addr{})
	if resp.Rcode != dnswire.RcodeNotImpl {
		t.Errorf("update opcode: %v", resp.Rcode)
	}
}

func TestHandleRefusesAXFROverUDP(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(query(dnswire.Root, dnswire.TypeAXFR), netip.Addr{})
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("AXFR over UDP: %v", resp.Rcode)
	}
}

func TestTruncationWithoutEDNS(t *testing.T) {
	// Build a zone with a fat RRset that cannot fit in 512 bytes.
	z := zone.New(dnswire.Root)
	_ = z.Add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{MName: "m.", RName: "r.", Serial: 1, Minimum: 60}))
	for i := 0; i < 40; i++ {
		_ = z.Add(dnswire.NewRR("fat.example.", 60,
			dnswire.TXT{Strings: []string{strings.Repeat("x", 100) + string(rune('a'+i%26))}}))
	}
	// Many TXT strings at one name are one RRset of 40 records.
	s := New(z)
	q := dnswire.NewQuery(7, "fat.example.", dnswire.TypeTXT) // no EDNS: 512 limit
	resp := s.Handle(q, netip.Addr{})
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > 512 {
		t.Errorf("response %d bytes exceeds 512", len(wire))
	}
	if !resp.Truncated {
		t.Error("TC bit not set")
	}
	if s.Stats().Truncated != 1 {
		t.Errorf("stats: %+v", s.Stats())
	}
}

func TestSetZoneSwap(t *testing.T) {
	s := testServer(t)
	z2 := zone.New(dnswire.Root)
	_ = z2.Add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{MName: "m.", RName: "r.", Serial: 99, Minimum: 60}))
	s.SetZone(z2)
	if s.Zone().Serial() != 99 {
		t.Error("zone swap failed")
	}
}

func TestServeUDPRealSocket(t *testing.T) {
	s := testServer(t)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.ServeUDP(ctx, conn) }()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wire, _ := query("www.example.com.", dnswire.TypeA).Pack()
	if _, err := client.Write(wire); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 65536)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	var resp dnswire.Message
	if err := resp.Unpack(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if len(resp.Authority) != 2 {
		t.Errorf("UDP referral authority = %d", len(resp.Authority))
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("ServeUDP: %v", err)
	}
}

func TestServeTCPAndAXFR(t *testing.T) {
	s := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.ServeTCP(ctx, l) }()

	// Plain query over TCP.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTCPMessage(conn, query("www.example.org.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Authority) != 1 {
		t.Errorf("TCP referral authority = %d", len(resp.Authority))
	}
	conn.Close()

	// Full zone transfer.
	tctx, tcancel := context.WithTimeout(ctx, 5*time.Second)
	defer tcancel()
	got, err := AXFR(tctx, l.Addr().String(), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Zone().Len() {
		t.Errorf("AXFR transferred %d records, want %d", got.Len(), s.Zone().Len())
	}
	if got.Serial() != 2019041100 {
		t.Errorf("AXFR serial = %d", got.Serial())
	}
	if s.Stats().AXFRs != 1 {
		t.Errorf("stats: %+v", s.Stats())
	}

	// AXFR for a zone we are not authoritative for must fail.
	if _, err := AXFR(tctx, l.Addr().String(), "com."); err == nil {
		t.Error("foreign-origin AXFR should fail")
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("ServeTCP: %v", err)
	}
}

// TestTCPWriteDeadlineUnsticksStalledClient pins the per-write deadline:
// a client that sends an AXFR question and then never reads the stream
// must not park the connection goroutine forever.
func TestTCPWriteDeadlineUnsticksStalledClient(t *testing.T) {
	s := testServer(t)
	s.TCPTimeout = 50 * time.Millisecond
	client, server := net.Pipe()
	defer client.Close()

	handlerDone := make(chan struct{})
	go func() {
		s.serveTCPConn(server)
		close(handlerDone)
	}()

	// The query write is synchronous on a net.Pipe, so the handler has
	// read it once this returns; after that the client goes silent.
	if err := WriteTCPMessage(client, query(dnswire.Root, dnswire.TypeAXFR)); err != nil {
		t.Fatal(err)
	}

	select {
	case <-handlerDone:
		// The write deadline fired and the handler gave up on the stalled
		// client instead of blocking on the pipe forever.
	case <-time.After(5 * time.Second):
		t.Fatal("handler still blocked writing to a client that never reads")
	}
}
