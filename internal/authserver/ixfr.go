package authserver

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// IXFR (RFC 1995) gives the DNS-native counterpart of the rsync-delta
// distribution path: a client holding serial N asks the server for just
// the changes up to the current serial. The server keeps a bounded
// journal of recent zone versions to serve deltas from; requests older
// than the journal fall back to a full AXFR-style response, exactly as
// the RFC specifies.

// ixfrJournal remembers recent zone versions for delta service.
type ixfrJournal struct {
	mu       sync.Mutex
	window   int
	versions []*zone.Zone // oldest first; last is current
}

func newIXFRJournal(window int) *ixfrJournal {
	if window <= 0 {
		window = 8
	}
	return &ixfrJournal{window: window}
}

func (j *ixfrJournal) push(z *zone.Zone) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n := len(j.versions); n > 0 && j.versions[n-1].Serial() == z.Serial() {
		j.versions[n-1] = z
		return
	}
	j.versions = append(j.versions, z)
	if len(j.versions) > j.window {
		j.versions = j.versions[len(j.versions)-j.window:]
	}
}

// find returns the journal entry with the given serial, or nil.
func (j *ixfrJournal) find(serial uint32) *zone.Zone {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, z := range j.versions {
		if z.Serial() == serial {
			return z
		}
	}
	return nil
}

// EnableIXFR turns on journaling; every SetZone after this point records
// the version for delta service. Keeps up to window versions.
func (s *Server) EnableIXFR(window int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = newIXFRJournal(window)
	if s.zone != nil {
		s.journal.push(s.zone)
	}
}

// recordVersion is called by SetZone when journaling is enabled.
func (s *Server) recordVersion(z *zone.Zone) {
	if s.journal != nil {
		s.journal.push(z)
	}
}

// ixfrDiff computes the deleted/added RRsets between two versions in
// IXFR stream order: oldSOA, deletions, newSOA, additions.
func ixfrDiff(old, new *zone.Zone) (deleted, added []dnswire.RR) {
	oldSet := make(map[string]dnswire.RR)
	for _, rr := range old.Records() {
		if rr.Type == dnswire.TypeSOA && rr.Name == old.Origin {
			continue
		}
		oldSet[rr.String()] = rr
	}
	newSet := make(map[string]dnswire.RR)
	for _, rr := range new.Records() {
		if rr.Type == dnswire.TypeSOA && rr.Name == new.Origin {
			continue
		}
		newSet[rr.String()] = rr
	}
	for _, rr := range old.Records() {
		key := rr.String()
		if _, ok := newSet[key]; !ok && oldSet[key].Data != nil {
			deleted = append(deleted, rr)
		}
	}
	for _, rr := range new.Records() {
		key := rr.String()
		if _, ok := oldSet[key]; !ok {
			if rr.Type == dnswire.TypeSOA && rr.Name == new.Origin {
				continue
			}
			added = append(added, rr)
		}
	}
	return deleted, added
}

// streamIXFR answers an IXFR question over TCP. The client's current
// serial arrives in the authority section's SOA (RFC 1995 §3).
func (s *Server) streamIXFR(w io.Writer, q *dnswire.Message) error {
	z := s.Zone()
	if q.Questions[0].Name != z.Origin {
		return WriteTCPMessage(w, &dnswire.Message{
			ID: q.ID, Response: true, Rcode: dnswire.RcodeNotAuth, Questions: q.Questions})
	}
	curSOA, ok := z.SOA()
	if !ok {
		return WriteTCPMessage(w, &dnswire.Message{
			ID: q.ID, Response: true, Rcode: dnswire.RcodeServFail, Questions: q.Questions})
	}

	var clientSerial uint32
	haveSerial := false
	for _, rr := range q.Authority {
		if soa, okSOA := rr.Data.(dnswire.SOA); okSOA {
			clientSerial = soa.Serial
			haveSerial = true
		}
	}

	// Up to date: single-SOA response.
	if haveSerial && clientSerial == z.Serial() {
		return WriteTCPMessage(w, &dnswire.Message{
			ID: q.ID, Response: true, Authoritative: true,
			Questions: q.Questions, Answers: []dnswire.RR{curSOA}})
	}

	s.mu.RLock()
	journal := s.journal
	s.mu.RUnlock()
	var oldZone *zone.Zone
	if haveSerial && journal != nil {
		oldZone = journal.find(clientSerial)
	}
	if oldZone == nil {
		// Serial outside the journal: full zone, AXFR-style (RFC 1995 §4).
		return s.streamAXFR(w, q)
	}

	oldSOA, _ := oldZone.SOA()
	deleted, added := ixfrDiff(oldZone, z)
	var answers []dnswire.RR
	answers = append(answers, curSOA, oldSOA)
	answers = append(answers, deleted...)
	answers = append(answers, curSOA)
	answers = append(answers, added...)
	answers = append(answers, curSOA)

	// Batch into messages.
	const batch = 100
	for off := 0; off < len(answers); off += batch {
		end := off + batch
		if end > len(answers) {
			end = len(answers)
		}
		m := &dnswire.Message{ID: q.ID, Response: true, Authoritative: true,
			Questions: q.Questions, Answers: answers[off:end]}
		if err := WriteTCPMessage(w, m); err != nil {
			return err
		}
	}
	return nil
}

// IXFR fetches the changes from a client-held zone copy to the server's
// current version over TCP, applies them, and returns the updated zone.
// If the server answers with a full transfer, that zone is returned
// instead. The returned bool reports whether the reply was incremental.
func IXFR(addr string, have *zone.Zone) (*zone.Zone, bool, error) {
	conn, err := dialTCP(addr)
	if err != nil {
		return nil, false, err
	}
	defer conn.Close()

	haveSOA, ok := have.SOA()
	if !ok {
		return nil, false, errors.New("authserver: IXFR requires a zone with a SOA")
	}
	q := &dnswire.Message{
		ID:        2,
		Opcode:    dnswire.OpcodeQuery,
		Questions: []dnswire.Question{{Name: have.Origin, Type: dnswire.TypeIXFR, Class: dnswire.ClassINET}},
		Authority: []dnswire.RR{haveSOA},
	}
	if err := WriteTCPMessage(conn, q); err != nil {
		return nil, false, err
	}

	// Collect the full answer stream first (bounded by the SOA grammar).
	var answers []dnswire.RR
	for {
		m, err := ReadTCPMessage(conn)
		if err != nil {
			return nil, false, fmt.Errorf("authserver: IXFR stream: %w", err)
		}
		if m.Rcode != dnswire.RcodeSuccess {
			return nil, false, fmt.Errorf("authserver: IXFR refused: %s", m.Rcode)
		}
		answers = append(answers, m.Answers...)
		if done, err := ixfrStreamComplete(answers, have.Origin); err != nil {
			return nil, false, err
		} else if done {
			break
		}
	}
	return applyIXFR(have, answers)
}

// ixfrStreamComplete decides whether the collected answers form a
// complete IXFR/AXFR response. An incremental reply carries the current
// SOA three times (opening, before additions, closing); a full transfer
// carries it twice (bracketing); an up-to-date reply carries it once and
// nothing else.
func ixfrStreamComplete(answers []dnswire.RR, origin dnswire.Name) (bool, error) {
	if len(answers) == 0 {
		return false, nil
	}
	first, ok := answers[0].Data.(dnswire.SOA)
	if !ok || answers[0].Name != origin {
		return false, errors.New("authserver: IXFR reply does not start with SOA")
	}
	if len(answers) == 1 {
		// Up-to-date single-SOA form (our server never splits smaller).
		return true, nil
	}
	curSOAs := 0
	for _, rr := range answers {
		if soa, isSOA := rr.Data.(dnswire.SOA); isSOA && rr.Name == origin && soa.Serial == first.Serial {
			curSOAs++
		}
	}
	incremental := false
	if soa, isSOA := answers[1].Data.(dnswire.SOA); isSOA && answers[1].Name == origin && soa.Serial != first.Serial {
		incremental = true
	}
	last := answers[len(answers)-1]
	lastSOA, isSOA := last.Data.(dnswire.SOA)
	if !isSOA || last.Name != origin || lastSOA.Serial != first.Serial {
		return false, nil
	}
	if incremental {
		return curSOAs >= 3, nil
	}
	return curSOAs >= 2, nil
}

// applyIXFR interprets an IXFR answer stream against the held zone.
func applyIXFR(have *zone.Zone, answers []dnswire.RR) (*zone.Zone, bool, error) {
	origin := have.Origin
	if len(answers) == 0 {
		return nil, false, errors.New("authserver: empty IXFR reply")
	}
	firstSOA := answers[0]
	if len(answers) == 1 {
		// Up to date.
		return have, true, nil
	}
	// AXFR-style: second record is not a SOA.
	if _, isSOA := answers[1].Data.(dnswire.SOA); !isSOA || answers[1].Name != origin {
		full := zone.New(origin)
		if err := full.Add(firstSOA); err != nil {
			return nil, false, err
		}
		for _, rr := range answers[1 : len(answers)-1] {
			if err := full.Add(rr); err != nil {
				return nil, false, err
			}
		}
		return full, false, nil
	}

	// Incremental: SOA(new) SOA(old) del... SOA(new) add... SOA(new).
	updated := have.Clone()
	updated.Remove(origin, dnswire.TypeSOA)
	deleting := true
	for _, rr := range answers[2 : len(answers)-1] {
		if soa, isSOA := rr.Data.(dnswire.SOA); isSOA && rr.Name == origin {
			_ = soa
			deleting = false
			continue
		}
		if deleting {
			removeRR(updated, rr)
		} else {
			if err := updated.Add(rr); err != nil {
				return nil, false, err
			}
		}
	}
	if err := updated.Add(firstSOA); err != nil {
		return nil, false, err
	}
	return updated, true, nil
}

// removeRR deletes one specific record (by rdata) from a zone.
func removeRR(z *zone.Zone, rr dnswire.RR) {
	existing := z.Lookup(rr.Name, rr.Type)
	z.Remove(rr.Name, rr.Type)
	for _, e := range existing {
		if e.Data.String() != rr.Data.String() {
			_ = z.Add(e)
		}
	}
}
