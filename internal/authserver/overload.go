package authserver

import (
	"strings"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/overload"
)

// OverloadConfig wires overload protection into a Server. Zero values
// disable each mechanism individually, so a partially filled config is
// fine: a root instance might want RRL only, a TLD secondary the gate.
type OverloadConfig struct {
	// MaxInflight bounds concurrently handled queries; over-capacity
	// queries wait up to QueueDeadline for a slot, then are dropped
	// (0 = unlimited / drop immediately when full).
	MaxInflight   int
	QueueDeadline time.Duration
	// PerClientQPS token-buckets each client address (0 = unlimited);
	// PerClientBurst defaults to PerClientQPS.
	PerClientQPS   float64
	PerClientBurst float64
	// RRLRate enables response-rate-limiting at this many identical
	// responses per second per client network (0 = disabled); every
	// RRLSlip-th suppressed response goes out truncated instead of
	// dropped (0 = drop all).
	RRLRate int
	RRLSlip int
	// Clock supplies time for the rate limiters; nil means time.Now.
	// Experiments pass the simulated network's virtual clock.
	Clock func() time.Time
}

// SetOverload installs overload protection. Call before serving; the
// zero config removes all protection.
func (s *Server) SetOverload(cfg OverloadConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate = overload.NewGate(cfg.MaxInflight, cfg.QueueDeadline)
	s.clients = overload.NewClientLimiter(cfg.PerClientQPS, cfg.PerClientBurst, 0)
	s.rrl = overload.NewRRL(cfg.RRLRate, cfg.RRLSlip, 0)
	s.clock = cfg.Clock
}

// overloadState snapshots the protection pointers; all are nil-tolerant.
func (s *Server) overloadState() (*overload.Gate, *overload.ClientLimiter, *overload.RRL) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gate, s.clients, s.rrl
}

// now reads the configured clock.
func (s *Server) now() time.Time {
	s.mu.RLock()
	clock := s.clock
	s.mu.RUnlock()
	if clock != nil {
		return clock()
	}
	return time.Now()
}

// responseToken classifies a response for RRL accounting: rcode plus
// query name, so a flood of one spoofed question rate-limits without
// touching answers for other names.
func responseToken(resp *dnswire.Message) string {
	var sb strings.Builder
	sb.WriteString(resp.Rcode.String())
	if len(resp.Questions) > 0 {
		sb.WriteByte('/')
		sb.WriteString(string(resp.Questions[0].Name))
	}
	return sb.String()
}

// slipResponse turns a response into the RRL "slip": truncated, with
// every record section stripped, so a legitimate client behind a
// spoofed source can still fall back to TCP.
func slipResponse(resp *dnswire.Message) *dnswire.Message {
	resp.Truncated = true
	resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
	return resp
}
