package authserver

import (
	"bytes"
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/udpengine"
)

// TestServeWireMatchesServeUDP: the extracted datagram handler must be
// byte-identical to what the classic ServeUDP loop wrote — same packed
// cache patching (ID, RD bit) and same fresh-pack fallback.
func TestServeWireMatchesServeUDP(t *testing.T) {
	s := testServer(t)
	from := netip.MustParseAddr("192.0.2.1")
	cases := []*dnswire.Message{
		query("www.example.com.", dnswire.TypeA), // referral, cacheable
		query("foo.bogustld.", dnswire.TypeA),    // NXDomain
		query(dnswire.Root, dnswire.TypeNS),      // apex answer
	}
	for _, q := range cases {
		q.RecursionDesired = true
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		// First call warms the packed cache, second hits it; both must
		// agree with a reference rebuild through Handle+Pack.
		var got []byte
		for pass := 0; pass < 2; pass++ {
			got = s.ServeWire(wire, from, nil)
			if got == nil {
				t.Fatalf("%v: dropped", q.Questions)
			}
		}
		var ref dnswire.Message
		if err := ref.Unpack(got); err != nil {
			t.Fatalf("%v: response does not parse: %v", q.Questions, err)
		}
		if ref.ID != q.ID || !ref.Response || !ref.RecursionDesired {
			t.Errorf("%v: header: id=%d qr=%v rd=%v", q.Questions, ref.ID, ref.Response, ref.RecursionDesired)
		}
		// The hit-path wire must equal the cold-path wire for the same query.
		s2 := testServer(t)
		want := s2.ServeWire(wire, from, nil)
		if !bytes.Equal(got, want) {
			t.Errorf("%v: hit-path wire differs from cold-path wire", q.Questions)
		}
	}
}

// TestServeWireAppends: ServeWire appends after existing bytes and
// patches the header at the right offset, so engine buffer adoption
// composes with any prefix the caller keeps.
func TestServeWireAppends(t *testing.T) {
	s := testServer(t)
	q := query("www.example.com.", dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	plain := s.ServeWire(wire, netip.Addr{}, nil)
	prefixed := s.ServeWire(wire, netip.Addr{}, []byte("head"))
	if string(prefixed[:4]) != "head" || !bytes.Equal(prefixed[4:], plain) {
		t.Fatal("ServeWire did not append cleanly after a prefix")
	}
}

// TestServeWireAllocs pins the packed-answer hit path: reading the
// datagram is the engine's job (zero-alloc there), and handling it costs
// only the small constant below — the response struct copy pair in
// answer() — with no per-query buffer, name, or rdata allocations. A
// regression here means UnpackShared interning or the packed cache
// quietly stopped working.
func TestServeWireAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts not meaningful under -race")
	}
	s := testServer(t)
	q := query("www.example.com.", dnswire.TypeA)
	q.RecursionDesired = true
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 0, 1024)
	if s.ServeWire(wire, netip.Addr{}, out) == nil { // warm the packed cache
		t.Fatal("warmup dropped")
	}
	got := testing.AllocsPerRun(500, func() {
		if s.ServeWire(wire, netip.Addr{}, out[:0]) == nil {
			t.Fatal("dropped")
		}
	})
	// The per-query constant: UnpackShared's query-side boxes (section
	// slices and the OPT rdata) plus the two response structs that escape
	// in answer() — and nothing proportional to the response, which is a
	// byte copy of the cached wire into the caller's buffer. The classic
	// ServeUDP loop paid all of these plus a net.Addr per ReadFrom, so
	// this is the engine-path ceiling: anything above it means interning,
	// the packed cache, or buffer reuse quietly stopped working.
	if got > 7 {
		t.Errorf("ServeWire packed hit: %v allocs/op, want <= 7", got)
	}
}

// TestEngineHandlerRetentionRace hammers the real authd handler through
// a multi-worker batch engine with EDNS queries under concurrent load.
// Under -race this checks the buffer-ownership contract end to end:
// UnpackShared aliases the engine's per-slot rx buffer, so any handler
// retention of query bytes past ServeDatagram shows up as a race with
// the next recvmmsg into the same slot.
func TestEngineHandlerRetentionRace(t *testing.T) {
	s := testServer(t)
	eng, err := udpengine.New(udpengine.Config{
		Addr: "127.0.0.1:0", Workers: 4, Batch: 8,
		Handler: s.DatagramHandler(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Serve(ctx) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	names := []dnswire.Name{"www.example.com.", "x.org.", "foo.bogustld.", "."}
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := net.Dial("udp", eng.LocalAddr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			buf := make([]byte, 64*1024)
			for i := 0; i < 60; i++ {
				q := query(names[(c+i)%len(names)], dnswire.TypeA)
				q.ID = uint16(c<<8 | i)
				wire, err := q.Pack()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := client.Write(wire); err != nil {
					t.Error(err)
					return
				}
				client.SetReadDeadline(time.Now().Add(5 * time.Second))
				n, err := client.Read(buf)
				if err != nil {
					t.Errorf("client %d query %d: %v", c, i, err)
					return
				}
				var resp dnswire.Message
				if err := resp.Unpack(buf[:n]); err != nil {
					t.Errorf("client %d: bad response: %v", c, err)
					return
				}
				if resp.ID != q.ID {
					t.Errorf("client %d: response ID %d for query %d — cross-slot mixup", c, resp.ID, q.ID)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if st := eng.Stats(); st.Total.Packets < 6*60 {
		t.Errorf("engine saw %d packets, want >= %d", st.Total.Packets, 6*60)
	}
}
