package authserver

import (
	"net/netip"
	"testing"

	"rootless/internal/dnswire"
)

// BenchmarkHandle measures one admitted referral query end to end.
// PackedHit is the steady state for a hot TLD: the packs/op metric must
// be zero, proving hits never serialize a message. ColdBuild disables
// the answer cache to show what every query cost before precompilation.
func BenchmarkHandle(b *testing.B) {
	run := func(b *testing.B, s *Server) {
		q := query("www.example.com.", dnswire.TypeA)
		s.Handle(q, netip.Addr{}) // warm (a no-op when the cache is off)
		packs0 := s.Stats().WirePacks
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := s.Handle(q, netip.Addr{}); resp == nil {
				b.Fatal("no response")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(s.Stats().WirePacks-packs0)/float64(b.N), "packs/op")
	}
	b.Run("PackedHit", func(b *testing.B) {
		run(b, testServer(b))
	})
	b.Run("ColdBuild", func(b *testing.B) {
		s := testServer(b)
		s.SetAnswerCache(0)
		run(b, s)
	})
}

// BenchmarkServeWire is the full UDP datagram path minus the socket:
// parse the query with the shared-buffer unpacker, handle it, and
// produce response bytes — patched from the cached wire on a hit.
func BenchmarkServeWire(b *testing.B) {
	s := testServer(b)
	qwire, err := query("www.example.com.", dnswire.TypeA).Pack()
	if err != nil {
		b.Fatal(err)
	}
	var respBuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q dnswire.Message
		if err := q.UnpackShared(qwire); err != nil {
			b.Fatal(err)
		}
		resp, wire := s.handle(nil, &q, netip.Addr{})
		if resp == nil {
			b.Fatal("no response")
		}
		if wire != nil {
			respBuf = append(respBuf[:0], wire...)
			respBuf[0] = byte(q.ID >> 8)
			respBuf[1] = byte(q.ID)
			if q.RecursionDesired {
				respBuf[2] |= 0x01
			}
		} else {
			respBuf, err = resp.AppendPack(respBuf[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	_ = respBuf
}
