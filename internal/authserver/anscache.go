package authserver

import (
	"sync"

	"rootless/internal/dnswire"
)

// The packed-answer cache is the NSD/Knot "precompiled answers" trick:
// for an immutable zone, the full response to (qname, qtype, EDNS mode)
// never changes, so the server memoizes both the built Message and its
// packed wire image. A hit serves the stored bytes with only the 2-byte
// message ID (and the echoed RD bit) rewritten — zero zone lookups,
// zero DNSSEC assembly, zero Pack calls. SetZone swaps in a fresh cache,
// which is the entire invalidation story.

// ansKey identifies one precompiled answer. The EDNS mode folds the two
// response-shaping query attributes into the key: 0 = no OPT, 1 = OPT
// without DO, 2 = OPT with DO (DNSSEC material attached).
type ansKey struct {
	name dnswire.Name
	typ  dnswire.Type
	edns uint8
}

// statClass records which Stats counter a cached answer bumps on every
// hit, so the per-rcode accounting stays exact whether or not a query
// was served from the cache.
type statClass uint8

const (
	ansAnswer statClass = iota
	ansReferral
	ansNXDomain
	ansNoData
	ansRefused
)

func (c statClass) bump(st *Stats) {
	switch c {
	case ansAnswer:
		st.Answers++
	case ansReferral:
		st.Referrals++
	case ansNXDomain:
		st.NXDomain++
	case ansNoData:
		st.NoData++
	case ansRefused:
		st.Refused++
	}
}

// ansEntry is one precompiled answer. template (ID 0, RD clear) and wire
// are immutable after insertion; hits copy the struct and patch the copy.
type ansEntry struct {
	template dnswire.Message
	wire     []byte
	class    statClass
}

// answerCache is a bounded map of precompiled answers. There is no LRU:
// entries live until the zone changes (the common case for a root zone)
// or until capacity pressure evicts an arbitrary entry — cheap, and good
// enough for a workload where the hot set is a few thousand TLD keys.
type answerCache struct {
	capacity int
	mu       sync.RWMutex
	entries  map[ansKey]*ansEntry
}

func newAnswerCache(capacity int) *answerCache {
	return &answerCache{
		capacity: capacity,
		entries:  make(map[ansKey]*ansEntry, capacity/4),
	}
}

func (c *answerCache) get(k ansKey) *ansEntry {
	c.mu.RLock()
	e := c.entries[k]
	c.mu.RUnlock()
	return e
}

func (c *answerCache) put(k ansKey, e *ansEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[k]; !exists && c.capacity > 0 && len(c.entries) >= c.capacity {
		for victim := range c.entries { // arbitrary eviction
			delete(c.entries, victim)
			break
		}
	}
	c.entries[k] = e
}

func (c *answerCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
