package authserver

import (
	"context"
	"net"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

func TestPackedAnswerHitMatchesFreshBuild(t *testing.T) {
	s := testServer(t)
	q1 := query("www.example.com.", dnswire.TypeA)
	fresh := s.Handle(q1, netip.Addr{})
	if fresh == nil {
		t.Fatal("no response")
	}
	st := s.Stats()
	if st.PackedMisses != 1 || st.PackedHits != 0 {
		t.Fatalf("after first query: hits=%d misses=%d", st.PackedHits, st.PackedMisses)
	}

	q2 := query("www.example.com.", dnswire.TypeA)
	q2.ID = 9999
	q2.RecursionDesired = true
	hit := s.Handle(q2, netip.Addr{})
	if hit == nil {
		t.Fatal("no response on hit")
	}
	st = s.Stats()
	if st.PackedHits != 1 || st.PackedMisses != 1 {
		t.Fatalf("after second query: hits=%d misses=%d", st.PackedHits, st.PackedMisses)
	}
	if hit.ID != 9999 || !hit.RecursionDesired {
		t.Errorf("hit header not patched: id=%d rd=%v", hit.ID, hit.RecursionDesired)
	}
	// Everything but the patched header fields must match a fresh build.
	if !reflect.DeepEqual(hit.Answers, fresh.Answers) ||
		!reflect.DeepEqual(hit.Authority, fresh.Authority) ||
		!reflect.DeepEqual(hit.Additional, fresh.Additional) ||
		hit.Rcode != fresh.Rcode || hit.Authoritative != fresh.Authoritative {
		t.Errorf("cached answer differs from fresh build:\nhit:   %+v\nfresh: %+v", hit, fresh)
	}
	// Hits keep the per-class accounting exact: two referrals served.
	if st.Referrals != 2 {
		t.Errorf("Referrals = %d, want 2", st.Referrals)
	}
}

func TestPackedAnswerWireIsPatchedTemplate(t *testing.T) {
	s := testServer(t)
	q := query("com.", dnswire.TypeNS)
	s.Handle(q, netip.Addr{}) // prime

	q2 := query("com.", dnswire.TypeNS)
	q2.ID = 777
	resp, wire := s.handle(nil, q2, netip.Addr{})
	if wire == nil {
		t.Fatal("second identical query did not return cached wire")
	}
	// The stored wire is the neutral template: ID zero, RD clear.
	var tmpl dnswire.Message
	if err := tmpl.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if tmpl.ID != 0 || tmpl.RecursionDesired {
		t.Errorf("cached wire: id=%d rd=%v, want neutral template", tmpl.ID, tmpl.RecursionDesired)
	}
	if !reflect.DeepEqual(tmpl.Answers, resp.Answers) ||
		!reflect.DeepEqual(tmpl.Authority, resp.Authority) {
		t.Error("cached wire sections differ from the returned message")
	}
	if resp.ID != 777 {
		t.Errorf("returned message ID = %d, want 777", resp.ID)
	}
}

func TestPackedAnswerEDNSModesAreDistinct(t *testing.T) {
	s := testServer(t)
	plain := dnswire.NewQuery(1, "com.", dnswire.TypeNS) // no OPT
	edns := query("com.", dnswire.TypeNS)                // OPT, DO clear
	do := query("com.", dnswire.TypeNS)
	do.SetEDNS(dnswire.DefaultEDNSSize, true) // OPT, DO set

	rPlain := s.Handle(plain, netip.Addr{})
	rEDNS := s.Handle(edns, netip.Addr{})
	rDO := s.Handle(do, netip.Addr{})
	if opt, _, _ := rPlain.EDNS(); opt != nil {
		t.Error("no-EDNS query got an OPT record back")
	}
	if opt, _, _ := rEDNS.EDNS(); opt == nil {
		t.Error("EDNS query got no OPT record back")
	}
	if _, _, gotDO := rDO.EDNS(); !gotDO {
		t.Error("DO bit not echoed")
	}
	if ac := s.anscache.Load(); ac.len() != 3 {
		t.Errorf("cache holds %d entries, want 3 (one per EDNS mode)", ac.len())
	}
	if st := s.Stats(); st.PackedHits != 0 || st.PackedMisses != 3 {
		t.Errorf("hits=%d misses=%d, want 0/3", st.PackedHits, st.PackedMisses)
	}
}

func TestPackedAnswerInvalidatedOnZoneReload(t *testing.T) {
	s := testServer(t)
	q := func() *dnswire.Message { return query("com.", dnswire.TypeNS) }
	s.Handle(q(), netip.Addr{})
	s.Handle(q(), netip.Addr{})
	if st := s.Stats(); st.PackedHits != 1 {
		t.Fatalf("hits = %d, want 1", st.PackedHits)
	}

	z2, err := zone.Parse(strings.NewReader(`
$ORIGIN .
. 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. 2019041101 1800 900 604800 86400
. 518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 198.41.0.4
com. 172800 IN NS z.gtld-servers.net.
z.gtld-servers.net. 172800 IN A 192.5.6.99
`), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	s.SetZone(z2)
	if ac := s.anscache.Load(); ac.len() != 0 {
		t.Fatalf("cache not flushed on SetZone: %d entries", ac.len())
	}
	resp := s.Handle(q(), netip.Addr{})
	if len(resp.Authority) != 1 || resp.Authority[0].Data.(dnswire.NS).Host != "z.gtld-servers.net." {
		t.Errorf("post-reload answer still reflects the old zone: %+v", resp.Authority)
	}
	if st := s.Stats(); st.PackedHits != 1 || st.PackedMisses != 2 {
		t.Errorf("hits=%d misses=%d after reload, want 1/2", st.PackedHits, st.PackedMisses)
	}
}

func TestPackedAnswerTruncationNotCached(t *testing.T) {
	// A fat RRset that fits 4096 bytes but not 512. A big-buffer client
	// populates the cache; a small-buffer client with the same EDNS mode
	// must get a freshly truncated build, not the oversized cached wire.
	z := zone.New(dnswire.Root)
	_ = z.Add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{MName: "m.", RName: "r.", Serial: 1, Minimum: 60}))
	for i := 0; i < 40; i++ {
		_ = z.Add(dnswire.NewRR("fat.example.", 60,
			dnswire.TXT{Strings: []string{strings.Repeat("x", 100) + string(rune('a'+i%26))}}))
	}
	s := New(z)

	// No EDNS (512 limit): truncated, so never cached.
	noEDNS := dnswire.NewQuery(1, "fat.example.", dnswire.TypeTXT)
	if resp := s.Handle(noEDNS, netip.Addr{}); !resp.Truncated {
		t.Fatal("expected truncation at 512")
	}
	if ac := s.anscache.Load(); ac.len() != 0 {
		t.Fatalf("truncated response was cached (%d entries)", ac.len())
	}

	// Big buffer: full answer, cached.
	big := dnswire.NewQuery(2, "fat.example.", dnswire.TypeTXT)
	big.SetEDNS(16384, false)
	if resp := s.Handle(big, netip.Addr{}); resp.Truncated {
		t.Fatal("16k buffer should fit the full RRset")
	}
	if ac := s.anscache.Load(); ac.len() != 1 {
		t.Fatalf("full response not cached (%d entries)", ac.len())
	}

	// Small buffer, same EDNS mode: cached wire is too big, so the hit is
	// refused and a fresh truncated response built instead.
	small := dnswire.NewQuery(3, "fat.example.", dnswire.TypeTXT)
	small.SetEDNS(512, false)
	if resp := s.Handle(small, netip.Addr{}); !resp.Truncated {
		t.Fatal("512-buffer client should get a truncated response")
	}
	if st := s.Stats(); st.PackedHits != 0 {
		t.Errorf("oversized cached wire served as a hit (hits=%d)", st.PackedHits)
	}

	// The big client still hits.
	big2 := dnswire.NewQuery(4, "fat.example.", dnswire.TypeTXT)
	big2.SetEDNS(16384, false)
	s.Handle(big2, netip.Addr{})
	if st := s.Stats(); st.PackedHits != 1 {
		t.Errorf("big-buffer repeat should hit (hits=%d)", st.PackedHits)
	}
}

func TestPackedAnswerDisabled(t *testing.T) {
	s := testServer(t)
	s.SetAnswerCache(0)
	for i := 0; i < 3; i++ {
		if resp := s.Handle(query("com.", dnswire.TypeNS), netip.Addr{}); resp == nil {
			t.Fatal("no response")
		}
	}
	if st := s.Stats(); st.PackedHits != 0 || st.PackedMisses != 0 {
		t.Errorf("disabled cache still counting: hits=%d misses=%d", st.PackedHits, st.PackedMisses)
	}
	if st := s.Stats(); st.Referrals != 3 {
		t.Errorf("Referrals = %d, want 3", st.Referrals)
	}
}

func TestPackedAnswerCapacityBound(t *testing.T) {
	s := testServer(t)
	s.SetAnswerCache(4)
	for i := 0; i < 20; i++ {
		name := dnswire.Name(strings.Repeat("x", i%10+1) + ".bogus.")
		s.Handle(query(name, dnswire.TypeA), netip.Addr{})
	}
	if n := s.anscache.Load().len(); n > 4 {
		t.Errorf("cache grew to %d entries, capacity 4", n)
	}
}

func TestPackedAnswerUDPWirePatch(t *testing.T) {
	// End-to-end over a real socket: the second, cache-served response is
	// byte-identical apart from the patched ID and RD bit.
	s := testServer(t)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeUDP(ctx, conn) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeUDP: %v", err)
		}
	}()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	exchange := func(id uint16, rd bool) []byte {
		q := query("www.example.com.", dnswire.TypeA)
		q.ID = id
		q.RecursionDesired = rd
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Write(wire); err != nil {
			t.Fatal(err)
		}
		_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 65536)
		n, err := client.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf[:n]
	}

	first := exchange(0x1234, false)
	second := exchange(0xBEEF, true)
	if s.Stats().PackedHits == 0 {
		t.Fatal("second exchange did not hit the packed-answer cache")
	}
	var m1, m2 dnswire.Message
	if err := m1.Unpack(first); err != nil {
		t.Fatal(err)
	}
	if err := m2.Unpack(second); err != nil {
		t.Fatal(err)
	}
	if m1.ID != 0x1234 || m2.ID != 0xBEEF {
		t.Errorf("IDs = %#x, %#x", m1.ID, m2.ID)
	}
	if m1.RecursionDesired || !m2.RecursionDesired {
		t.Errorf("RD bits = %v, %v", m1.RecursionDesired, m2.RecursionDesired)
	}
	// Beyond the 4 header bytes carrying ID and flags, the wire images of
	// the fresh and cache-served responses must agree byte for byte.
	if len(first) != len(second) {
		t.Fatalf("wire lengths differ: %d vs %d", len(first), len(second))
	}
	for i := 4; i < len(first); i++ {
		if first[i] != second[i] {
			t.Fatalf("wire images diverge at byte %d: %#x vs %#x", i, first[i], second[i])
		}
	}
}

func TestPackedAnswerConcurrent(t *testing.T) {
	s := testServer(t)
	names := []dnswire.Name{"com.", "org.", "www.example.com.", "nonexistent.test."}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if i%50 == 25 && g == 0 {
					s.SetZone(s.Zone()) // force invalidation mid-stream
				}
				q := query(names[i%len(names)], dnswire.TypeNS)
				q.ID = uint16(g*1000 + i)
				if resp := s.Handle(q, netip.Addr{}); resp == nil || resp.ID != q.ID {
					t.Error("bad response under concurrency")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
