//go:build !race

package authserver

const raceEnabled = false
