package authserver

import (
	"context"
	"net"
	"reflect"
	"strings"
	"testing"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// zoneV builds a versioned test zone: serial plus a per-version TLD set.
func zoneV(t *testing.T, serial uint32, extraTLDs ...string) *zone.Zone {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(". 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. ")
	sb.WriteString(uitoa(serial))
	sb.WriteString(" 1800 900 604800 86400\n")
	sb.WriteString(". 518400 IN NS a.root-servers.net.\na.root-servers.net. 518400 IN A 198.41.0.4\n")
	sb.WriteString("com. 172800 IN NS a.gtld-servers.net.\na.gtld-servers.net. 172800 IN A 192.5.6.30\n")
	for _, tld := range extraTLDs {
		sb.WriteString(tld + ". 172800 IN NS ns0.nic." + tld + ".\n")
		sb.WriteString("ns0.nic." + tld + ". 172800 IN A 100.2.3.4\n")
	}
	z, err := zone.Parse(strings.NewReader(sb.String()), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestIXFRDiff(t *testing.T) {
	old := zoneV(t, 1, "alpha")
	new := zoneV(t, 2, "beta")
	deleted, added := ixfrDiff(old, new)
	delNames := map[dnswire.Name]bool{}
	for _, rr := range deleted {
		delNames[rr.Name] = true
	}
	addNames := map[dnswire.Name]bool{}
	for _, rr := range added {
		addNames[rr.Name] = true
	}
	if !delNames["alpha."] || !delNames["ns0.nic.alpha."] {
		t.Errorf("deleted = %v", delNames)
	}
	if !addNames["beta."] || !addNames["ns0.nic.beta."] {
		t.Errorf("added = %v", addNames)
	}
	if delNames["com."] || addNames["com."] {
		t.Error("unchanged records appear in the diff")
	}
}

// ixfrServer spins a TCP-serving authserver with IXFR journaling.
func ixfrServer(t *testing.T, versions ...*zone.Zone) (string, *Server, func()) {
	t.Helper()
	srv := New(versions[0])
	srv.EnableIXFR(8)
	for _, z := range versions[1:] {
		srv.SetZone(z)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeTCP(ctx, l) }()
	return l.Addr().String(), srv, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeTCP: %v", err)
		}
	}
}

func TestIXFRIncremental(t *testing.T) {
	v1 := zoneV(t, 1, "alpha")
	v2 := zoneV(t, 2, "alpha", "beta")
	v3 := zoneV(t, 3, "beta", "gamma")
	addr, srv, stop := ixfrServer(t, v1, v2, v3)
	defer stop()

	// Client holds v1, syncs to v3 incrementally.
	got, incremental, err := IXFR(addr, v1.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !incremental {
		t.Error("expected incremental transfer")
	}
	if got.Serial() != 3 {
		t.Errorf("serial = %d", got.Serial())
	}
	if !reflect.DeepEqual(recordsOf(got), recordsOf(v3)) {
		t.Errorf("IXFR result differs from v3:\n%v\nvs\n%v", recordsOf(got), recordsOf(v3))
	}
	if srv.Stats().IXFRs != 1 {
		t.Errorf("stats: %+v", srv.Stats())
	}
}

func TestIXFRUpToDate(t *testing.T) {
	v3 := zoneV(t, 3, "beta", "gamma")
	addr, _, stop := ixfrServer(t, v3)
	defer stop()
	got, incremental, err := IXFR(addr, v3.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !incremental || got.Serial() != 3 {
		t.Errorf("up-to-date: incr=%v serial=%d", incremental, got.Serial())
	}
}

func TestIXFRFallbackToFull(t *testing.T) {
	// A client serial outside the journal gets a full transfer.
	v2 := zoneV(t, 2, "alpha", "beta")
	v3 := zoneV(t, 3, "beta", "gamma")
	addr, _, stop := ixfrServer(t, v2, v3)
	defer stop()

	ancient := zoneV(t, 1, "prehistoric")
	got, incremental, err := IXFR(addr, ancient)
	if err != nil {
		t.Fatal(err)
	}
	if incremental {
		t.Error("expected full-transfer fallback")
	}
	if got.Serial() != 3 {
		t.Errorf("serial = %d", got.Serial())
	}
	if !reflect.DeepEqual(recordsOf(got), recordsOf(v3)) {
		t.Error("fallback result differs from current zone")
	}
}

func TestIXFRWrongOrigin(t *testing.T) {
	v1 := zoneV(t, 1, "alpha")
	addr, _, stop := ixfrServer(t, v1)
	defer stop()
	foreign := zone.New("com.")
	_ = foreign.Add(dnswire.NewRR("com.", 60, dnswire.SOA{MName: "m.", RName: "r.", Serial: 9}))
	if _, _, err := IXFR(addr, foreign); err == nil {
		t.Error("foreign-origin IXFR should fail")
	}
}

func TestIXFRNoSOA(t *testing.T) {
	if _, _, err := IXFR("127.0.0.1:1", zone.New(dnswire.Root)); err == nil {
		t.Error("IXFR without SOA should fail before dialing")
	}
}

func TestIXFRSequentialSyncs(t *testing.T) {
	// A client can ride serial to serial as the publisher re-publishes.
	v1 := zoneV(t, 1, "alpha")
	srv := New(v1)
	srv.EnableIXFR(8)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.ServeTCP(ctx, l) }()

	client := v1.Clone()
	for serial := uint32(2); serial <= 5; serial++ {
		srv.SetZone(zoneV(t, serial, "alpha", "tld"+uitoa(serial)))
		got, incremental, err := IXFR(l.Addr().String(), client)
		if err != nil {
			t.Fatalf("serial %d: %v", serial, err)
		}
		if !incremental {
			t.Errorf("serial %d: not incremental", serial)
		}
		client = got
		if client.Serial() != serial {
			t.Fatalf("client at %d, want %d", client.Serial(), serial)
		}
	}
	if !reflect.DeepEqual(recordsOf(client), recordsOf(srv.Zone())) {
		t.Error("final client state differs from server")
	}
}

func TestIXFRDeltaSmallerThanFull(t *testing.T) {
	// The point of IXFR: a one-TLD change moves O(change), not O(zone).
	big := make([]string, 120)
	for i := range big {
		big[i] = "tld" + uitoa(uint32(i))
	}
	v1 := zoneV(t, 1, big...)
	v2 := zoneV(t, 2, append(big, "brandnew")...)
	srv := New(v1)
	srv.EnableIXFR(4)
	srv.SetZone(v2)

	var ixfrBuf, axfrBuf lenWriter
	q := &dnswire.Message{ID: 1, Questions: []dnswire.Question{{Name: dnswire.Root, Type: dnswire.TypeIXFR, Class: dnswire.ClassINET}}}
	soa, _ := v1.SOA()
	q.Authority = []dnswire.RR{soa}
	if err := srv.streamIXFR(&ixfrBuf, q); err != nil {
		t.Fatal(err)
	}
	qa := &dnswire.Message{ID: 1, Questions: []dnswire.Question{{Name: dnswire.Root, Type: dnswire.TypeAXFR, Class: dnswire.ClassINET}}}
	if err := srv.streamAXFR(&axfrBuf, qa); err != nil {
		t.Fatal(err)
	}
	if ixfrBuf.n*5 > axfrBuf.n {
		t.Errorf("IXFR %d bytes vs AXFR %d bytes: not a meaningful saving", ixfrBuf.n, axfrBuf.n)
	}
}

type lenWriter struct{ n int }

func (w *lenWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func recordsOf(z *zone.Zone) []string {
	var out []string
	for _, rr := range z.Records() {
		out = append(out, rr.String())
	}
	return out
}
