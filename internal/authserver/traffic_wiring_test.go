package authserver

import (
	"net/netip"
	"testing"

	"rootless/internal/dnswire"
	"rootless/internal/obs/traffic"
)

// TestServerTrafficObserved pins the authserver analyzer hook: arriving
// queries are classified before the answer path (drops included) and
// valid client sources feed the client sketches.
func TestServerTrafficObserved(t *testing.T) {
	s := testServer(t)
	an := traffic.NewAnalyzer(traffic.NewTLDSet([]dnswire.Name{"com.", "org."}), 8)
	s.SetTraffic(an)

	from := netip.MustParseAddr("192.0.2.7")
	s.Handle(query("www.example.com.", dnswire.TypeA), from)
	s.Handle(query("printer.local.", dnswire.TypeA), from)
	s.Handle(query("nx.example.org.", dnswire.TypeA), netip.Addr{}) // anonymous source

	counts := an.Counts()
	if counts[traffic.ClassValid] != 2 || counts[traffic.ClassBogusTLD] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if an.Observed() != 3 {
		t.Fatalf("observed = %d", an.Observed())
	}
	// Two observations of one address, none for the invalid source.
	if got := an.UniqueClients(); got < 1 || got > 2 {
		t.Fatalf("unique clients = %v, want ~1", got)
	}
}
