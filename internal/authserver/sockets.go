package authserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/udpengine"
	"rootless/internal/zone"
)

// ServeWire answers one raw query datagram: parse, run the overload
// pipeline and lookup, and append the response wire format to out.
// Returns nil when the query is malformed or dropped by rate limiting
// or admission control. req is only read during the call (UnpackShared
// aliases it, which is safe: the server retains only Name strings and
// Question values from the query, never rdata byte slices), matching
// the udpengine buffer-ownership contract.
func (s *Server) ServeWire(req []byte, from netip.Addr, out []byte) []byte {
	var q dnswire.Message
	if err := q.UnpackShared(req); err != nil {
		return nil
	}
	tr, tc := s.joinRemoteTrace(&q)
	resp, wire := s.handle(tr, &q, from)
	if tr != nil {
		wire = s.attachTrace(tr, tc, resp, wire)
	}
	if resp == nil {
		return nil // dropped by rate limiting or admission control
	}
	start := len(out)
	if wire != nil {
		// Precompiled answer: copy the cached wire (ID 0, RD clear) and
		// patch the two query-specific header bits in place.
		out = append(out, wire...)
		binary.BigEndian.PutUint16(out[start:start+2], q.ID)
		if q.RecursionDesired {
			out[start+2] |= 0x01
		}
		return out
	}
	out, err := resp.AppendPack(out)
	if err != nil {
		return nil
	}
	return out
}

// DatagramHandler adapts the server to the udpengine handler contract.
func (s *Server) DatagramHandler() udpengine.Handler {
	return udpengine.HandlerFunc(func(req []byte, src udpengine.Peer, resp []byte) []byte {
		return s.ServeWire(req, src.Addr.Addr(), resp)
	})
}

// ServeUDP answers queries on conn until the connection is closed or ctx
// is cancelled. Malformed packets are dropped silently, as real servers
// do. This is the single-socket compatibility path: one engine worker on
// the caller's conn performs exactly the classic read→handle→write loop.
// Multi-core serving builds the engine directly (see cmd/authd).
func (s *Server) ServeUDP(ctx context.Context, conn net.PacketConn) error {
	eng, err := udpengine.New(udpengine.Config{
		Conns:     []net.PacketConn{conn},
		Handler:   s.DatagramHandler(),
		MaxPacket: 64 * 1024,
	})
	if err != nil {
		return err
	}
	return eng.Serve(ctx)
}

// ServeTCP accepts DNS-over-TCP connections (RFC 1035 §4.2.2 two-byte
// length framing) on l. AXFR questions stream the whole zone.
func (s *Server) ServeTCP(ctx context.Context, l net.Listener) error {
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveTCPConn(conn)
	}
}

// tcpTimeout returns the per-I/O deadline for TCP connections.
func (s *Server) tcpTimeout() time.Duration {
	if s.TCPTimeout > 0 {
		return s.TCPTimeout
	}
	return 30 * time.Second
}

// deadlineWriter refreshes the write deadline before every Write, so a
// peer that accepts a connection but stops reading cannot park the
// handler goroutine — including mid-AXFR/IXFR stream — indefinitely.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

func (d deadlineWriter) Write(p []byte) (int, error) {
	_ = d.conn.SetWriteDeadline(time.Now().Add(d.timeout))
	return d.conn.Write(p)
}

func (s *Server) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	timeout := s.tcpTimeout()
	w := deadlineWriter{conn: conn, timeout: timeout}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		q, err := ReadTCPMessage(conn)
		if err != nil {
			return
		}
		if len(q.Questions) == 1 && q.Questions[0].Type == dnswire.TypeAXFR {
			s.count(func(st *Stats) { st.AXFRs++; st.Queries++ })
			if err := s.streamAXFR(w, q); err != nil {
				return
			}
			continue
		}
		if len(q.Questions) == 1 && q.Questions[0].Type == dnswire.TypeIXFR {
			s.count(func(st *Stats) { st.IXFRs++; st.Queries++ })
			if err := s.streamIXFR(w, q); err != nil {
				return
			}
			continue
		}
		// The zero from-address exempts TCP from per-client limiting and
		// RRL (the connection already validates the return path), but the
		// admission gate still applies: a shed query closes the
		// connection rather than promising an answer that never comes.
		resp := s.Handle(q, netip.Addr{})
		if resp == nil {
			return
		}
		resp.Truncated = false // no truncation over TCP
		if err := WriteTCPMessage(w, resp); err != nil {
			return
		}
	}
}

// streamAXFR sends the zone as a record stream bracketed by the SOA.
func (s *Server) streamAXFR(w io.Writer, q *dnswire.Message) error {
	z := s.Zone()
	if q.Questions[0].Name != z.Origin {
		resp := &dnswire.Message{ID: q.ID, Response: true, Rcode: dnswire.RcodeNotAuth,
			Questions: q.Questions}
		return WriteTCPMessage(w, resp)
	}
	soa, ok := z.SOA()
	if !ok {
		resp := &dnswire.Message{ID: q.ID, Response: true, Rcode: dnswire.RcodeServFail,
			Questions: q.Questions}
		return WriteTCPMessage(w, resp)
	}
	records := z.Records()
	// Batch records into messages of ~100 RRs, SOA first and last.
	const batch = 100
	var out []dnswire.RR
	out = append(out, soa)
	flush := func(final bool) error {
		if final {
			out = append(out, soa)
		}
		if len(out) == 0 {
			return nil
		}
		m := &dnswire.Message{ID: q.ID, Response: true, Authoritative: true,
			Questions: q.Questions, Answers: out}
		out = nil
		return WriteTCPMessage(w, m)
	}
	for _, rr := range records {
		if rr.Type == dnswire.TypeSOA && rr.Name == z.Origin {
			continue
		}
		out = append(out, rr)
		if len(out) >= batch {
			if err := flush(false); err != nil {
				return err
			}
		}
	}
	return flush(true)
}

// ReadTCPMessage reads one length-framed DNS message.
func ReadTCPMessage(r io.Reader) (*dnswire.Message, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	var m dnswire.Message
	if err := m.Unpack(buf); err != nil {
		return nil, err
	}
	return &m, nil
}

// WriteTCPMessage writes one length-framed DNS message.
func WriteTCPMessage(w io.Writer, m *dnswire.Message) error {
	wire, err := m.Pack()
	if err != nil {
		return err
	}
	if len(wire) > 0xFFFF {
		return errors.New("authserver: message exceeds TCP frame limit")
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(wire)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(wire)
	return err
}

// AXFR fetches a zone over TCP from addr ("host:port").
func AXFR(ctx context.Context, addr string, origin dnswire.Name) (*zone.Zone, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	// With a ctx deadline the whole transfer is bounded by it; without
	// one, fall back to a rolling per-message deadline so a stalled
	// server still cannot hang the client forever.
	deadline, bounded := ctx.Deadline()
	if bounded {
		_ = conn.SetDeadline(deadline)
	} else {
		_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	}

	q := &dnswire.Message{
		ID:        1,
		Opcode:    dnswire.OpcodeQuery,
		Questions: []dnswire.Question{{Name: origin, Type: dnswire.TypeAXFR, Class: dnswire.ClassINET}},
	}
	if err := WriteTCPMessage(conn, q); err != nil {
		return nil, err
	}

	z := zone.New(origin)
	soaSeen := 0
	for soaSeen < 2 {
		if !bounded {
			_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		}
		m, err := ReadTCPMessage(conn)
		if err != nil {
			return nil, fmt.Errorf("authserver: AXFR stream: %w", err)
		}
		if m.Rcode != dnswire.RcodeSuccess {
			return nil, fmt.Errorf("authserver: AXFR refused: %s", m.Rcode)
		}
		if len(m.Answers) == 0 {
			return nil, errors.New("authserver: empty AXFR message")
		}
		for _, rr := range m.Answers {
			if rr.Type == dnswire.TypeSOA && rr.Name == origin {
				soaSeen++
				if soaSeen == 2 {
					break
				}
			}
			if err := z.Add(rr); err != nil {
				return nil, err
			}
		}
	}
	return z, nil
}

func addrFrom(a net.Addr) netip.Addr {
	if ap, err := netip.ParseAddrPort(a.String()); err == nil {
		return ap.Addr()
	}
	return netip.Addr{}
}

// dialTCP opens a TCP connection with a sane deadline for transfers.
func dialTCP(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(60 * time.Second))
	return conn, nil
}
