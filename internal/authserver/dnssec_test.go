package authserver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) { return d.r.Read(p) }

// signedTestServer serves a signed root-like zone with an NSEC chain.
func signedTestServer(t *testing.T) (*Server, *dnssec.Signer, time.Time) {
	t.Helper()
	signer, err := dnssec.NewSigner(dnswire.Root, detRand{rand.New(rand.NewSource(31))})
	if err != nil {
		t.Fatal(err)
	}
	signer.AddNSEC = true
	now := time.Unix(1559900000, 0)
	z := zoneV(t, 2019060700, "alpha", "omega")
	// A DS at alpha. so the referral carries signed DS material.
	if err := z.Add(dnswire.NewRR("alpha.", 86400, dnswire.DS{
		KeyTag: 1, Algorithm: 15, DigestType: 2, Digest: []byte{1}})); err != nil {
		t.Fatal(err)
	}
	if err := signer.SignZone(z, now); err != nil {
		t.Fatal(err)
	}
	return New(z), signer, now
}

func doQuery(name dnswire.Name, typ dnswire.Type) *dnswire.Message {
	q := dnswire.NewQuery(5, name, typ)
	q.SetEDNS(dnswire.DefaultEDNSSize, true)
	return q
}

func TestDNSSECAnswerCarriesSignatures(t *testing.T) {
	s, signer, now := signedTestServer(t)
	resp := s.Handle(doQuery(dnswire.Root, dnswire.TypeSOA), netip.Addr{})
	var soaSet []dnswire.RR
	var sig *dnswire.RR
	for i, rr := range resp.Answers {
		if rr.Type == dnswire.TypeSOA {
			soaSet = append(soaSet, rr)
		}
		if rsig, ok := rr.Data.(dnswire.RRSIG); ok && rsig.TypeCovered == dnswire.TypeSOA {
			sig = &resp.Answers[i]
		}
	}
	if len(soaSet) != 1 || sig == nil {
		t.Fatalf("answer lacks SOA+RRSIG: %+v", resp.Answers)
	}
	// The in-band signature actually validates.
	keys := []dnswire.DNSKEY{signer.ZSK.DNSKEY}
	if err := dnssec.VerifyRRset(soaSet, *sig, keys, now); err != nil {
		t.Fatalf("served signature invalid: %v", err)
	}
	// The DO bit is echoed.
	if _, _, do := resp.EDNS(); !do {
		t.Error("DO bit not echoed")
	}
}

func TestDNSSECReferralCarriesDSSignature(t *testing.T) {
	s, _, _ := signedTestServer(t)
	resp := s.Handle(doQuery("www.example.alpha.", dnswire.TypeA), netip.Addr{})
	var hasDS, hasDSSig bool
	for _, rr := range resp.Authority {
		if rr.Type == dnswire.TypeDS {
			hasDS = true
		}
		if sig, ok := rr.Data.(dnswire.RRSIG); ok && sig.TypeCovered == dnswire.TypeDS {
			hasDSSig = true
		}
	}
	if !hasDS || !hasDSSig {
		t.Fatalf("referral DS/RRSIG missing (DS=%v sig=%v): %+v", hasDS, hasDSSig, resp.Authority)
	}
}

func TestDNSSECNXDomainCarriesNSEC(t *testing.T) {
	s, signer, now := signedTestServer(t)
	resp := s.Handle(doQuery("zzz-nonexistent.", dnswire.TypeA), netip.Addr{})
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %v", resp.Rcode)
	}
	var nsecSet []dnswire.RR
	var nsecSig *dnswire.RR
	var soaSig bool
	for i, rr := range resp.Authority {
		switch d := rr.Data.(type) {
		case dnswire.NSEC:
			nsecSet = append(nsecSet, rr)
		case dnswire.RRSIG:
			if d.TypeCovered == dnswire.TypeNSEC {
				nsecSig = &resp.Authority[i]
			}
			if d.TypeCovered == dnswire.TypeSOA {
				soaSig = true
			}
		}
	}
	if len(nsecSet) != 1 || nsecSig == nil {
		t.Fatalf("NXDOMAIN lacks NSEC proof: %+v", resp.Authority)
	}
	if !soaSig {
		t.Error("negative answer SOA is unsigned")
	}
	// The NSEC must actually cover the query name: owner < qname < next
	// in canonical order (or wrap).
	owner := nsecSet[0].Name
	next := nsecSet[0].Data.(dnswire.NSEC).NextName
	q := dnswire.Name("zzz-nonexistent.")
	covers := owner.Compare(q) < 0 && (q.Compare(next) < 0 || next.Compare(owner) <= 0)
	if !covers {
		t.Errorf("NSEC %s -> %s does not cover %s", owner, next, q)
	}
	if err := dnssec.VerifyRRset(nsecSet, *nsecSig, []dnswire.DNSKEY{signer.ZSK.DNSKEY}, now); err != nil {
		t.Fatalf("NSEC signature invalid: %v", err)
	}
}

func TestDNSSECNodataCarriesNSEC(t *testing.T) {
	s, _, _ := signedTestServer(t)
	// alpha. exists (delegation) but has no TXT; the parent proves the
	// type absence via alpha.'s own NSEC.
	resp := s.Handle(doQuery("alpha.", dnswire.TypeDS), netip.Addr{})
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) == 0 {
		// alpha has a DS: this is an answer, not NODATA. Use omega (no DS).
		resp = s.Handle(doQuery("omega.", dnswire.TypeDS), netip.Addr{})
	}
	_ = resp // covered below

	resp = s.Handle(doQuery("omega.", dnswire.TypeDS), netip.Addr{})
	if resp.Rcode != dnswire.RcodeSuccess || len(resp.Answers) != 0 {
		t.Fatalf("omega DS should be NODATA: rcode=%v answers=%d", resp.Rcode, len(resp.Answers))
	}
	found := false
	for _, rr := range resp.Authority {
		if rr.Type == dnswire.TypeNSEC && rr.Name == "omega." {
			found = true
			for _, typ := range rr.Data.(dnswire.NSEC).Types {
				if typ == dnswire.TypeDS {
					t.Error("omega NSEC claims a DS")
				}
			}
		}
	}
	if !found {
		t.Fatalf("NODATA lacks the NSEC at omega.: %+v", resp.Authority)
	}
}

func TestDNSSECWithoutDOIsClean(t *testing.T) {
	s, _, _ := signedTestServer(t)
	q := dnswire.NewQuery(5, dnswire.Root, dnswire.TypeSOA)
	q.SetEDNS(dnswire.DefaultEDNSSize, false)
	resp := s.Handle(q, netip.Addr{})
	for _, rr := range resp.Answers {
		if rr.Type == dnswire.TypeRRSIG || rr.Type == dnswire.TypeNSEC {
			t.Fatalf("DNSSEC record served without DO: %s", rr.Type)
		}
	}
}

func TestNSECCoveringWrapAround(t *testing.T) {
	s, _, _ := signedTestServer(t)
	z := s.Zone()
	// A name canonically after every owner wraps to the last NSEC.
	rr, ok := z.NSECCovering("zzzzzz.")
	if !ok {
		t.Fatal("no NSEC chain")
	}
	if rr.Data.(dnswire.NSEC).NextName != dnswire.Root {
		t.Errorf("wrap NSEC next = %s, want apex", rr.Data.(dnswire.NSEC).NextName)
	}
	// An unsigned zone reports no chain.
	if _, ok := zone.New(dnswire.Root).NSECCovering("x."); ok {
		t.Error("unsigned zone claimed an NSEC")
	}
}
