package authserver

import (
	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// Cross-process trace propagation, authoritative side. A resolver with
// TracePropagate on stamps a sampled EDNS0 trace option on its queries;
// the UDP serve loop joins a local trace to that ID (so this daemon's
// /tracez?traceid= finds the auth-side share) and ships the finished
// span tree back inside the response's trace option for the resolver to
// graft. Everything here is opt-in: without SetTracer, or for queries
// without a sampled option, the hot path is untouched.

// joinRemoteTrace begins a trace joined to the querier's trace when the
// arriving query carries a sampled trace option and a tracer is
// installed. Returns (nil, zero) otherwise.
func (s *Server) joinRemoteTrace(q *dnswire.Message) (*obs.Trace, dnswire.TraceContext) {
	t := s.tracer.Load()
	if t == nil {
		return nil, dnswire.TraceContext{}
	}
	tc, _, ok := q.TraceOption()
	if !ok || !tc.Sampled {
		return nil, dnswire.TraceContext{}
	}
	var qname, qtype string
	if len(q.Questions) == 1 {
		qname = string(q.Questions[0].Name)
		qtype = q.Questions[0].Type.String()
	}
	return t.BeginRemote(qname, qtype, tc.TraceID, tc.SpanID), tc
}

// attachTrace finishes a joined trace (recording it on this daemon's
// ring) and ships its span tree back in the response's trace option.
// Returns the precompiled wire image to use for the reply: attaching a
// payload invalidates it (the response must be re-packed), and the
// response's Additional section is deep-copied first so the packed-answer
// template's shared slices are never mutated. Dropped queries (nil resp)
// still finish the trace — the drop verdict is exactly what the far side
// wants to see on this daemon's /tracez.
func (s *Server) attachTrace(tr *obs.Trace, tc dnswire.TraceContext, resp *dnswire.Message, wire []byte) []byte {
	if resp == nil {
		tr.Finish("DROPPED", 0, 1, nil)
		return nil
	}
	payload := tr.SpanPayload()
	tr.Finish(resp.Rcode.String(), 0, 1, nil)
	if payload == nil {
		return wire
	}
	resp.Additional = append([]dnswire.RR(nil), resp.Additional...)
	resp.SetTraceOption(dnswire.TraceContext{TraceID: tc.TraceID, SpanID: tc.SpanID}, payload)
	return nil
}
