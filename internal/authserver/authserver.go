// Package authserver implements an authoritative DNS server over a zone:
// the referral/answer/NXDOMAIN logic of RFC 1034 §4.3.2, response-size
// truncation, and statistics. The same engine serves three transports:
// the netsim simulated network (experiments), real UDP sockets, and real
// TCP with AXFR zone transfer (one of the paper's §3 distribution paths).
package authserver

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
	"rootless/internal/overload"
	"rootless/internal/zone"
)

// Stats counts server activity, broken down the way the paper's root
// traffic analysis needs.
type Stats struct {
	Queries   int64
	Answers   int64
	Referrals int64
	NXDomain  int64
	NoData    int64
	Refused   int64
	FormErr   int64
	Truncated int64
	AXFRs     int64
	IXFRs     int64
	// Overload-protection outcomes (PR 3): queries dropped by the
	// per-client limiter, shed at the admission gate, and responses
	// suppressed or slipped (sent truncated) by response-rate-limiting.
	RateLimited int64
	Shed        int64
	RRLDropped  int64
	RRLSlipped  int64
	// Packed-answer cache outcomes (PR 5): queries served from the
	// precompiled-answer cache vs built from the zone, and how many
	// wire-format Pack calls the server has made (hits make none).
	PackedHits   int64
	PackedMisses int64
	WirePacks    int64
}

// Server answers queries for one zone. The zone may be swapped atomically
// while serving (SetZone), which is how a local root instance refreshes.
type Server struct {
	// TCPTimeout bounds each individual TCP read and write (default
	// 30 s), so a stalled peer can never park a connection goroutine —
	// or an AXFR/IXFR stream — forever. Set before serving.
	TCPTimeout time.Duration

	mu      sync.RWMutex
	zone    *zone.Zone
	stats   Stats
	journal *ixfrJournal // non-nil once EnableIXFR is called
	// secondaries receive a NOTIFY on every zone change.
	secondaries []string
	// Overload protection, installed by SetOverload (all nil-tolerant:
	// a nil gate/limiter/RRL admits everything).
	gate    *overload.Gate
	clients *overload.ClientLimiter
	rrl     *overload.RRL
	clock   func() time.Time

	// anscache holds precompiled answers (nil = disabled); packs counts
	// Pack calls outside the mutex so the truncation loop stays cheap.
	anscache atomic.Pointer[answerCache]
	packs    atomic.Int64

	// traffic, when installed with SetTraffic, classifies every arriving
	// query — including ones the limiters drop, which is the point of a
	// junk-composition view. Opt-in so the packed-answer hit path stays
	// sketch-free by default.
	traffic atomic.Pointer[traffic.Analyzer]

	// tracer, when installed with SetTracer, joins sampled EDNS0 trace
	// options on arriving UDP queries to the querier's trace ID and ships
	// the auth-side span tree back in the response option, so either
	// daemon can serve /tracez?traceid= for the stitched resolution.
	tracer atomic.Pointer[obs.Tracer]

	// latency, when installed with InstrumentLatency, observes per-query
	// handle time into an HDR summary. Opt-in: uninstrumented handling
	// pays only one atomic load, no clock reads.
	latency atomic.Pointer[obs.HDR]
}

// DefaultAnswerCacheSize bounds the precompiled-answer cache New installs.
// The root zone has ~1500 TLDs × a handful of live qtypes × 3 EDNS modes,
// so 4096 entries cover the realistic hot set.
const DefaultAnswerCacheSize = 4096

// New creates a server for z with the packed-answer cache enabled at
// DefaultAnswerCacheSize. Use SetAnswerCache to resize or disable it.
func New(z *zone.Zone) *Server {
	s := &Server{zone: z}
	s.SetAnswerCache(DefaultAnswerCacheSize)
	return s
}

// SetTraffic installs a streaming traffic analyzer (nil uninstalls).
func (s *Server) SetTraffic(a *traffic.Analyzer) { s.traffic.Store(a) }

// SetTracer installs (or removes, with nil) the tracer that joins
// propagated traces arriving over UDP. Safe to call while serving.
func (s *Server) SetTracer(t *obs.Tracer) { s.tracer.Store(t) }

// InstrumentLatency wires an HDR summary observing wall time per handled
// query (admission through answer/RRL) as
// rootless_authserver_handle_seconds{quantile=...}. Opt-in so the packed
// answer hot path stays clock-free by default.
func (s *Server) InstrumentLatency(reg *obs.Registry) {
	s.latency.Store(reg.HDRTimer("rootless_authserver_handle_seconds",
		"wall time per handled query (admission, answer, RRL)", nil))
}

// Tracer returns the installed tracer (nil when none).
func (s *Server) Tracer() *obs.Tracer { return s.tracer.Load() }

// TailLatencySeconds returns the handle-latency HDR tail
// (obs.TailQuantiles: p50/p99/p999/p9999, in seconds) and whether
// InstrumentLatency has installed the histogram.
func (s *Server) TailLatencySeconds() ([4]float64, bool) {
	h := s.latency.Load()
	if h == nil {
		return [4]float64{}, false
	}
	return h.TailSeconds(), true
}

// Traffic returns the installed analyzer (nil when none).
func (s *Server) Traffic() *traffic.Analyzer { return s.traffic.Load() }

// SetAnswerCache installs a fresh packed-answer cache bounded to capacity
// entries, discarding any precompiled answers. capacity <= 0 disables
// answer caching entirely.
func (s *Server) SetAnswerCache(capacity int) {
	if capacity <= 0 {
		s.anscache.Store(nil)
		return
	}
	s.anscache.Store(newAnswerCache(capacity))
}

// pack is Pack with accounting: Stats.WirePacks is how benchmarks prove
// the packed-answer hit path never serializes a message.
func (s *Server) pack(m *dnswire.Message) ([]byte, error) {
	s.packs.Add(1)
	return m.Pack()
}

// Zone returns the currently served zone.
func (s *Server) Zone() *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.zone
}

// SetZone atomically replaces the served zone. With IXFR enabled the
// version is journaled for incremental transfer service. Every
// precompiled answer is invalidated: the packed-answer cache is swapped
// for an empty one of the same capacity.
func (s *Server) SetZone(z *zone.Zone) {
	s.mu.Lock()
	s.zone = z
	s.mu.Unlock()
	if old := s.anscache.Load(); old != nil {
		s.anscache.Store(newAnswerCache(old.capacity))
	}
	s.recordVersion(z)
	s.notifySecondaries(z)
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	st := s.stats
	s.mu.RUnlock()
	st.WirePacks = s.packs.Load()
	return st
}

func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Collect implements obs.Collector: the Stats counters plus gauges for
// the served zone's serial and size.
func (s *Server) Collect(reg *obs.Registry) {
	obs.SetCountersFromStruct(reg, "rootless_authserver", "authoritative server activity", nil, s.Stats())
	z := s.Zone()
	reg.Gauge("rootless_authserver_zone_serial", "serial of the served zone", nil).
		Set(float64(z.Serial()))
	reg.Gauge("rootless_authserver_zone_records", "records in the served zone", nil).
		Set(float64(z.Len()))
	if ac := s.anscache.Load(); ac != nil {
		reg.Gauge("rootless_authserver_packed_answers", "precompiled answers resident in the packed-answer cache", nil).
			Set(float64(ac.len()))
	}
	gate, clients, rrl := s.overloadState()
	if gate != nil {
		reg.Gauge("rootless_authserver_gate_in_use", "admission slots currently held", nil).
			Set(float64(gate.InUse()))
		reg.Gauge("rootless_authserver_gate_capacity", "admission slot capacity", nil).
			Set(float64(gate.Capacity()))
	}
	if clients != nil {
		reg.Gauge("rootless_authserver_limited_clients", "client token buckets resident", nil).
			Set(float64(clients.Tracked()))
	}
	if rrl != nil {
		reg.Gauge("rootless_authserver_rrl_states", "RRL response-class states resident", nil).
			Set(float64(rrl.Tracked()))
	}
	if an := s.traffic.Load(); an != nil {
		an.Collect(reg)
	}
}

// Handle implements netsim.Handler: it answers one query message. A nil
// return means "send nothing" — the per-client limiter and the admission
// gate drop over-rate and over-capacity queries silently, and RRL may
// drop (or slip, truncated) a response after it is built. Transports
// must treat nil as a dropped packet; netsim charges the querier a
// timeout. An invalid from address (netsim's anonymous source, TCP)
// bypasses the per-client and RRL checks but not the gate.
func (s *Server) Handle(q *dnswire.Message, from netip.Addr) *dnswire.Message {
	return s.HandleTraced(nil, q, from)
}

// HandleTraced is Handle carrying the querier's trace (netsim's
// TracedHandler): the auth span covers admission, zone lookup, and RRL,
// and overload verdicts become trace events so a client-side trace shows
// *why* a query died server-side. A nil trace costs nothing.
func (s *Server) HandleTraced(tr *obs.Trace, q *dnswire.Message, from netip.Addr) *dnswire.Message {
	resp, _ := s.handle(tr, q, from)
	return resp
}

// handle runs the full admission/answer/RRL pipeline. The second return
// is the precompiled wire image for the response — ID zero and RD clear,
// valid only when non-nil and only for unslipped responses — which lets
// the UDP transport answer with a byte copy instead of a Pack call.
func (s *Server) handle(tr *obs.Trace, q *dnswire.Message, from netip.Addr) (*dnswire.Message, []byte) {
	if h := s.latency.Load(); h != nil {
		start := time.Now()
		defer func() { h.RecordDuration(time.Since(start)) }()
	}
	sp := tr.StartSpan(obs.PhaseAuth, "auth")
	defer sp.End()
	s.count(func(st *Stats) { st.Queries++ })
	if an := s.traffic.Load(); an != nil {
		if len(q.Questions) == 1 {
			class := an.Observe(q.Questions[0].Name, q.Questions[0].Type)
			tr.SetClass(class.String())
		}
		if from.IsValid() {
			an.ObserveClient(from)
		}
	}
	gate, clients, rrl := s.overloadState()
	var now time.Time
	if clients != nil || rrl != nil {
		now = s.now() // one clock read shared by both limiters
	}
	if !clients.Allow(from, now) {
		s.count(func(st *Stats) { st.RateLimited++ })
		sp.SetDetail("rate-limited")
		tr.Eventf("auth-drop", "per-client limit exceeded")
		return nil, nil
	}
	if !gate.Acquire() {
		s.count(func(st *Stats) { st.Shed++ })
		sp.SetDetail("shed")
		tr.Eventf("auth-drop", "server admission gate full")
		return nil, nil
	}
	defer gate.Release()
	resp, wire := s.answer(q)
	switch rrl.Decide(from, responseToken(resp), now) {
	case overload.RRLDrop:
		s.count(func(st *Stats) { st.RRLDropped++ })
		sp.SetDetail("rrl-dropped")
		tr.Eventf("auth-drop", "response rate-limited (dropped)")
		return nil, nil
	case overload.RRLSlip:
		s.count(func(st *Stats) { st.RRLSlipped++ })
		sp.SetDetail("rrl-slipped")
		tr.Eventf("auth-slip", "response rate-limited (slipped truncated)")
		return slipResponse(resp), nil // precompiled wire no longer matches
	}
	return resp, wire
}

// answer builds the response for one already-admitted query, consulting
// the packed-answer cache first. The second return is the cached wire
// image (see handle); it is nil when the answer was built fresh.
func (s *Server) answer(q *dnswire.Message) (*dnswire.Message, []byte) {
	resp := &dnswire.Message{
		ID:               q.ID,
		Response:         true,
		Opcode:           q.Opcode,
		RecursionDesired: q.RecursionDesired,
		Questions:        q.Questions,
	}
	if q.Opcode != dnswire.OpcodeQuery || len(q.Questions) != 1 {
		s.count(func(st *Stats) { st.FormErr++ })
		resp.Rcode = dnswire.RcodeFormat
		if q.Opcode != dnswire.OpcodeQuery {
			resp.Rcode = dnswire.RcodeNotImpl
		}
		return resp, nil
	}
	question := q.Questions[0]
	if question.Class != dnswire.ClassINET ||
		question.Type == dnswire.TypeAXFR || question.Type == dnswire.TypeIXFR {
		s.count(func(st *Stats) { st.Refused++ })
		resp.Rcode = dnswire.RcodeRefused
		return resp, nil
	}

	// The response depends on the question plus two EDNS attributes: the
	// advertised size (truncation limit) and the DO bit (DNSSEC records).
	_, size, do := q.EDNS()
	limit := dnswire.MaxUDPSize
	if int(size) > limit {
		limit = int(size)
	}
	var ednsMode uint8
	if size > 0 {
		ednsMode = 1
		if do {
			ednsMode = 2
		}
	}

	key := ansKey{name: question.Name, typ: question.Type, edns: ednsMode}
	ac := s.anscache.Load()
	if ac != nil {
		// Cached entries are never truncated, so any entry that fits this
		// client's limit is exactly what a fresh build would produce; a
		// client advertising a smaller size falls through to a fresh
		// (possibly truncated) build without polluting the cache.
		if e := ac.get(key); e != nil && len(e.wire) <= limit {
			s.count(func(st *Stats) {
				st.PackedHits++
				e.class.bump(st)
			})
			m := e.template // struct copy; sections shared and read-only
			m.ID = q.ID
			m.RecursionDesired = q.RecursionDesired
			return &m, e.wire
		}
		s.count(func(st *Stats) { st.PackedMisses++ })
	}

	ans := s.Zone().Query(question.Name, question.Type)
	resp.Rcode = ans.Rcode
	resp.Authoritative = ans.Authoritative
	resp.Answers = ans.Answer
	resp.Authority = ans.Authority
	resp.Additional = ans.Additional

	var class statClass
	switch {
	case ans.Rcode == dnswire.RcodeRefused:
		class = ansRefused
	case ans.Rcode == dnswire.RcodeNXDomain:
		class = ansNXDomain
	case len(ans.Answer) > 0:
		class = ansAnswer
	case !ans.Authoritative && len(ans.Authority) > 0:
		class = ansReferral
	default:
		class = ansNoData
	}
	s.count(func(st *Stats) { class.bump(st) })

	// Echo EDNS: advertise our own buffer size and respect the client's
	// for truncation purposes. With the DO bit set, attach DNSSEC proof
	// material (RRSIGs and NSEC denial records) from the signed zone.
	if size > 0 {
		if do {
			s.addDNSSEC(resp, question)
		}
		resp.SetEDNS(dnswire.DefaultEDNSSize, do)
	}
	s.truncateTo(resp, limit)
	if resp.Truncated {
		s.count(func(st *Stats) { st.Truncated++ })
	}

	if ac != nil && !resp.Truncated {
		tmpl := *resp
		tmpl.ID = 0
		tmpl.RecursionDesired = false
		if wire, err := s.pack(&tmpl); err == nil {
			ac.put(key, &ansEntry{template: tmpl, wire: wire, class: class})
		}
	}
	return resp, nil
}

// truncateTo marks the message truncated and drops records until the
// packed size fits limit. Additional goes first, then authority, then
// answers, per common server practice.
func (s *Server) truncateTo(m *dnswire.Message, limit int) {
	for {
		wire, err := s.pack(m)
		if err != nil || len(wire) <= limit {
			return
		}
		m.Truncated = true
		switch {
		case len(m.Additional) > 0:
			m.Additional = m.Additional[:len(m.Additional)-1]
		case len(m.Authority) > 0:
			m.Authority = m.Authority[:len(m.Authority)-1]
		case len(m.Answers) > 0:
			m.Answers = m.Answers[:len(m.Answers)-1]
		default:
			return
		}
	}
}

// addDNSSEC augments a response with signatures and denial proofs when
// the client signalled DNSSEC awareness (DO). Unsigned zones yield no
// extra records.
func (s *Server) addDNSSEC(resp *dnswire.Message, question dnswire.Question) {
	z := s.Zone()

	// Signatures covering each RRset already in the message.
	signFor := func(section []dnswire.RR) []dnswire.RR {
		keys, _ := dnswire.GroupRRsets(section)
		var sigs []dnswire.RR
		for _, k := range keys {
			if k.Type == dnswire.TypeRRSIG {
				continue
			}
			sigs = append(sigs, z.SignaturesFor(k.Name, k.Type)...)
		}
		return sigs
	}
	resp.Answers = append(resp.Answers, signFor(resp.Answers)...)
	resp.Authority = append(resp.Authority, signFor(resp.Authority)...)

	// Denial proofs: NXDOMAIN needs the covering NSEC; NODATA and
	// unsigned-delegation referrals need the NSEC at the closest signed
	// name (proving the type, or the DS, does not exist).
	needDenial := resp.Rcode == dnswire.RcodeNXDomain ||
		(resp.Rcode == dnswire.RcodeSuccess && len(resp.Answers) == 0)
	if !needDenial {
		return
	}
	nsec, ok := z.NSECCovering(question.Name)
	if !ok {
		return
	}
	resp.Authority = append(resp.Authority, nsec)
	resp.Authority = append(resp.Authority, z.SignaturesFor(nsec.Name, dnswire.TypeNSEC)...)
}
