//go:build race

package authserver

// The race detector makes sync.Pool drop items at random, so allocation
// counts that depend on pool hits are not meaningful under -race.
const raceEnabled = true
