package authserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// NOTIFY (RFC 1996) completes the DNS-native distribution triangle:
// instead of secondaries polling the SOA, the primary pushes a change
// notification and the secondary pulls the delta with IXFR immediately.
// For root zone distribution this turns the §5.3 new-TLD lag into
// seconds.

// AddSecondary registers a NOTIFY target ("host:port", UDP). Every
// SetZone afterwards pushes a notification there.
func (s *Server) AddSecondary(addr string) {
	s.mu.Lock()
	s.secondaries = append(s.secondaries, addr)
	s.mu.Unlock()
}

// notifySecondaries fires one NOTIFY datagram per registered secondary.
// Failures are ignored: NOTIFY is advisory and secondaries still poll.
func (s *Server) notifySecondaries(z *zone.Zone) {
	s.mu.RLock()
	targets := append([]string(nil), s.secondaries...)
	s.mu.RUnlock()
	if len(targets) == 0 {
		return
	}
	soa, ok := z.SOA()
	if !ok {
		return
	}
	msg := &dnswire.Message{
		ID:            uint16(z.Serial()), // any id; serial low bits are fine
		Opcode:        dnswire.OpcodeNotify,
		Authoritative: true,
		Questions: []dnswire.Question{{
			Name: z.Origin, Type: dnswire.TypeSOA, Class: dnswire.ClassINET}},
		Answers: []dnswire.RR{soa},
	}
	wire, err := msg.Pack()
	if err != nil {
		return
	}
	for _, target := range targets {
		conn, err := net.Dial("udp", target)
		if err != nil {
			continue
		}
		_, _ = conn.Write(wire)
		conn.Close()
	}
}

// Secondary maintains a replica of a zone: it answers NOTIFY pushes by
// IXFR-ing from the primary, and can also poll. The replica zone is
// exposed for serving (e.g. behind another Server).
type Secondary struct {
	origin     dnswire.Name
	primaryTCP string
	mu         sync.Mutex
	zone       *zone.Zone
	onUpdate   func(*zone.Zone)
	transfers  int64
	notifies   int64
	ackErrs    int64
	lastErr    error
}

// NewSecondary creates a replica that transfers from primaryTCP
// ("host:port"). An initial AXFR fetches the first copy.
func NewSecondary(ctx context.Context, origin dnswire.Name, primaryTCP string) (*Secondary, error) {
	z, err := AXFR(ctx, primaryTCP, origin)
	if err != nil {
		return nil, fmt.Errorf("authserver: secondary bootstrap: %w", err)
	}
	return &Secondary{origin: origin, primaryTCP: primaryTCP, zone: z}, nil
}

// Zone returns the current replica.
func (sec *Secondary) Zone() *zone.Zone {
	sec.mu.Lock()
	defer sec.mu.Unlock()
	return sec.zone
}

// OnUpdate registers a callback invoked with each new replica version.
func (sec *Secondary) OnUpdate(fn func(*zone.Zone)) {
	sec.mu.Lock()
	sec.onUpdate = fn
	sec.mu.Unlock()
}

// Stats returns (transfers completed, notifies received, last error).
func (sec *Secondary) Stats() (int64, int64, error) {
	sec.mu.Lock()
	defer sec.mu.Unlock()
	return sec.transfers, sec.notifies, sec.lastErr
}

// AckErrs returns how many NOTIFY acknowledgements failed to send. The
// transfer still proceeds on a failed ACK (the primary will simply
// retry the NOTIFY), but a persistently nonzero counter means the
// return path to the primary is broken.
func (sec *Secondary) AckErrs() int64 {
	sec.mu.Lock()
	defer sec.mu.Unlock()
	return sec.ackErrs
}

// Refresh performs one IXFR (or fallback AXFR) against the primary.
func (sec *Secondary) Refresh() error {
	sec.mu.Lock()
	cur := sec.zone
	sec.mu.Unlock()
	updated, _, err := IXFR(sec.primaryTCP, cur)
	if err != nil {
		sec.mu.Lock()
		sec.lastErr = err
		sec.mu.Unlock()
		return err
	}
	sec.mu.Lock()
	changed := updated.Serial() != sec.zone.Serial()
	sec.zone = updated
	sec.transfers++
	sec.lastErr = nil
	fn := sec.onUpdate
	sec.mu.Unlock()
	if changed && fn != nil {
		fn(updated)
	}
	return nil
}

// ServeNotify listens for NOTIFY datagrams on conn and refreshes on each
// one, until ctx ends or the connection closes. Cancelling ctx closes
// conn to unblock the read; the closer goroutine itself is released
// when ServeNotify returns for any reason, so a conn closed from
// elsewhere does not strand it for the life of the process.
func (sec *Secondary) ServeNotify(ctx context.Context, conn net.PacketConn) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	buf := make([]byte, 4096)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		var m dnswire.Message
		if err := m.Unpack(buf[:n]); err != nil {
			continue
		}
		if m.Opcode != dnswire.OpcodeNotify || len(m.Questions) != 1 ||
			m.Questions[0].Name != sec.origin {
			continue
		}
		sec.mu.Lock()
		sec.notifies++
		sec.mu.Unlock()

		// Acknowledge (RFC 1996 §4.7), then transfer.
		resp := &dnswire.Message{
			ID: m.ID, Opcode: dnswire.OpcodeNotify, Response: true,
			Authoritative: true, Questions: m.Questions,
		}
		if wire, err := resp.Pack(); err == nil {
			if _, werr := conn.WriteTo(wire, addr); werr != nil {
				sec.mu.Lock()
				sec.ackErrs++
				sec.lastErr = fmt.Errorf("authserver: NOTIFY ack to %v: %w", addr, werr)
				sec.mu.Unlock()
			}
		}
		_ = sec.Refresh()
	}
}
