package authserver

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"rootless/internal/dnswire"
)

// fakeClock is a hand-cranked clock for driving the rate limiters.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestPerClientLimiterDropsFlood: one abusive client is token-bucketed
// while an unrelated client keeps getting answers; refill restores
// service to the abuser.
func TestPerClientLimiterDropsFlood(t *testing.T) {
	s := testServer(t)
	clk := &fakeClock{t: time.Unix(1555000000, 0)}
	s.SetOverload(OverloadConfig{PerClientQPS: 5, Clock: clk.now})

	abuser := netip.MustParseAddr("203.0.113.7")
	victim := netip.MustParseAddr("198.51.100.9")

	answered := 0
	for i := 0; i < 100; i++ {
		if resp := s.Handle(query("com.", dnswire.TypeNS), abuser); resp != nil {
			answered++
		}
	}
	if answered != 5 {
		t.Errorf("abuser got %d answers from a 5 qps bucket, want 5", answered)
	}
	st := s.Stats()
	if st.RateLimited != 95 {
		t.Errorf("RateLimited = %d, want 95", st.RateLimited)
	}
	if st.Queries != 100 {
		t.Errorf("Queries = %d, want 100 (drops still count as queries)", st.Queries)
	}

	// A different client is unaffected.
	if resp := s.Handle(query("org.", dnswire.TypeNS), victim); resp == nil {
		t.Error("victim client was starved by the abuser's bucket")
	}

	// Refill: a second later the abuser gets exactly the refilled tokens.
	clk.advance(time.Second)
	refilled := 0
	for i := 0; i < 20; i++ {
		if resp := s.Handle(query("com.", dnswire.TypeNS), abuser); resp != nil {
			refilled++
		}
	}
	if refilled != 5 {
		t.Errorf("abuser got %d answers after refill, want 5", refilled)
	}
}

// TestRRLSlipsTruncated: over-rate identical responses are mostly
// dropped, but every slip-th goes out truncated with empty sections so a
// real client behind a spoofed source can retry over TCP.
func TestRRLSlipsTruncated(t *testing.T) {
	s := testServer(t)
	clk := &fakeClock{t: time.Unix(1555000000, 0)}
	s.SetOverload(OverloadConfig{RRLRate: 2, RRLSlip: 3, Clock: clk.now})

	client := netip.MustParseAddr("203.0.113.50")
	var sent, dropped, slipped int
	for i := 0; i < 20; i++ {
		resp := s.Handle(query("foo.bogustld.", dnswire.TypeA), client)
		switch {
		case resp == nil:
			dropped++
		case resp.Truncated:
			slipped++
			if len(resp.Answers)+len(resp.Authority)+len(resp.Additional) != 0 {
				t.Fatalf("slip carried records: %+v", resp)
			}
		default:
			sent++
			if resp.Rcode != dnswire.RcodeNXDomain {
				t.Fatalf("rcode = %v", resp.Rcode)
			}
		}
	}
	// Rate 2 → first 2 sent; of the 18 suppressed, every 3rd slips.
	if sent != 2 || slipped != 6 || dropped != 12 {
		t.Errorf("sent=%d slipped=%d dropped=%d, want 2/6/12", sent, slipped, dropped)
	}
	st := s.Stats()
	if st.RRLDropped != 12 || st.RRLSlipped != 6 {
		t.Errorf("stats RRLDropped=%d RRLSlipped=%d, want 12/6", st.RRLDropped, st.RRLSlipped)
	}

	// A different response class (another qname) has its own budget.
	if resp := s.Handle(query("bar.bogustld.", dnswire.TypeA), client); resp == nil || resp.Truncated {
		t.Error("distinct response class was charged to the flooded one")
	}
	// A client in a different /24 has its own budget too.
	other := netip.MustParseAddr("203.0.114.50")
	if resp := s.Handle(query("foo.bogustld.", dnswire.TypeA), other); resp == nil || resp.Truncated {
		t.Error("distinct client network was charged to the flooded one")
	}
}

// TestGateShedsWhenSaturated: with every admission slot held the server
// drops new queries (nil response) and counts them as Shed; releasing a
// slot restores service. The zero from-address (netsim, TCP) does not
// bypass the gate.
func TestGateShedsWhenSaturated(t *testing.T) {
	s := testServer(t)
	s.SetOverload(OverloadConfig{MaxInflight: 2})

	// Saturate the gate from outside Handle: grab its slots directly.
	gate, _, _ := s.overloadState()
	if gate == nil {
		t.Fatal("gate not installed")
	}
	if !gate.Acquire() || !gate.Acquire() {
		t.Fatal("could not saturate gate")
	}
	if resp := s.Handle(query("com.", dnswire.TypeNS), netip.Addr{}); resp != nil {
		t.Error("saturated server still answered")
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	gate.Release()
	if resp := s.Handle(query("com.", dnswire.TypeNS), netip.Addr{}); resp == nil {
		t.Error("server did not recover after a slot freed")
	}
	gate.Release()
}

// TestOverloadDisabledIsTransparent: the zero config removes every
// protection, and invalid source addresses bypass the per-client checks.
func TestOverloadDisabledIsTransparent(t *testing.T) {
	s := testServer(t)
	s.SetOverload(OverloadConfig{PerClientQPS: 1, RRLRate: 1, Clock: func() time.Time { return time.Unix(1555000000, 0) }})

	// The anonymous source (netsim, TCP) is never client-limited or RRLed.
	for i := 0; i < 10; i++ {
		if resp := s.Handle(query("com.", dnswire.TypeNS), netip.Addr{}); resp == nil {
			t.Fatal("anonymous source was rate-limited")
		}
	}

	// Clearing the config restores unlimited service for everyone.
	s.SetOverload(OverloadConfig{})
	client := netip.MustParseAddr("203.0.113.99")
	for i := 0; i < 10; i++ {
		if resp := s.Handle(query("com.", dnswire.TypeNS), client); resp == nil {
			t.Fatal("zero overload config still limited a client")
		}
	}
	st := s.Stats()
	if st.RateLimited != 0 || st.RRLDropped != 0 || st.RRLSlipped != 0 || st.Shed != 0 {
		t.Errorf("protection fired while disabled: %+v", st)
	}
}
