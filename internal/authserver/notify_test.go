package authserver

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// TestNotifyDrivenReplication exercises the full RFC 1996 loop over real
// sockets: primary publishes, pushes NOTIFY, the secondary acknowledges
// and IXFRs the delta — no polling anywhere.
func TestNotifyDrivenReplication(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Primary: TCP for transfers, IXFR journal on.
	primary := New(zoneV(t, 1, "alpha"))
	primary.EnableIXFR(8)
	tl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = primary.ServeTCP(ctx, tl) }()

	// Secondary: bootstrap AXFR, then listen for NOTIFY on UDP.
	bctx, bcancel := context.WithTimeout(ctx, 5*time.Second)
	defer bcancel()
	sec, err := NewSecondary(bctx, dnswire.Root, tl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if sec.Zone().Serial() != 1 {
		t.Fatalf("bootstrap serial = %d", sec.Zone().Serial())
	}
	notifyConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = sec.ServeNotify(ctx, notifyConn) }()

	got := make(chan uint32, 8)
	sec.OnUpdate(func(z *zone.Zone) { got <- z.Serial() })

	primary.AddSecondary(notifyConn.LocalAddr().String())

	// Publish a new serial: the secondary should converge with no poll.
	primary.SetZone(zoneV(t, 2, "alpha", "beta"))
	select {
	case serial := <-got:
		if serial != 2 {
			t.Fatalf("converged to %d", serial)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("secondary did not converge after NOTIFY")
	}
	if !reflect.DeepEqual(recordsOf(sec.Zone()), recordsOf(primary.Zone())) {
		t.Fatal("replica differs from primary")
	}
	transfers, notifies, lastErr := sec.Stats()
	if transfers < 1 || notifies != 1 || lastErr != nil {
		t.Errorf("stats: transfers=%d notifies=%d err=%v", transfers, notifies, lastErr)
	}

	// A second publish converges too.
	primary.SetZone(zoneV(t, 3, "beta", "gamma"))
	select {
	case serial := <-got:
		if serial != 3 {
			t.Fatalf("converged to %d", serial)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("secondary missed the second NOTIFY")
	}
}

func TestSecondaryManualRefresh(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	primary := New(zoneV(t, 1, "alpha"))
	primary.EnableIXFR(8)
	tl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = primary.ServeTCP(ctx, tl) }()

	sec, err := NewSecondary(ctx, dnswire.Root, tl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Refresh with nothing new is a no-op success.
	if err := sec.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sec.Zone().Serial() != 1 {
		t.Error("serial drifted")
	}
	primary.SetZone(zoneV(t, 2, "alpha", "beta"))
	if err := sec.Refresh(); err != nil {
		t.Fatal(err)
	}
	if sec.Zone().Serial() != 2 {
		t.Errorf("serial = %d after refresh", sec.Zone().Serial())
	}
}

// TestServeNotifyCancelUnblocks: cancelling the context must unblock
// the ReadFrom and return promptly — the shutdown path for cmd users.
func TestServeNotifyCancelUnblocks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	primary := New(zoneV(t, 1, "alpha"))
	primary.EnableIXFR(8)
	tl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	go func() { _ = primary.ServeTCP(ctx, tl) }()

	bctx, bcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer bcancel()
	sec, err := NewSecondary(bctx, dnswire.Root, tl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	notifyConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sec.ServeNotify(ctx, notifyConn) }()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeNotify after cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeNotify did not return after cancel")
	}
}

// TestServeNotifyExternalClose: a conn closed from outside (not via
// ctx) also ends ServeNotify without stranding the closer goroutine.
func TestServeNotifyExternalClose(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	primary := New(zoneV(t, 1, "alpha"))
	primary.EnableIXFR(8)
	tl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	go func() { _ = primary.ServeTCP(ctx, tl) }()

	bctx, bcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer bcancel()
	sec, err := NewSecondary(bctx, dnswire.Root, tl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	notifyConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sec.ServeNotify(ctx, notifyConn) }()

	notifyConn.Close()
	select {
	case err := <-done:
		// A non-ctx close surfaces as an error (the caller closed the
		// socket out from under the loop); either way it must return.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("ServeNotify did not return after external close")
	}
}

func TestSecondaryBootstrapFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := NewSecondary(ctx, dnswire.Root, "127.0.0.1:1"); err == nil {
		t.Fatal("bootstrap from a dead primary succeeded")
	}
}
