package zone

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"rootless/internal/dnswire"
)

// randomDelegationZone builds a random root-like zone with nested names
// to stress the authoritative lookup algorithm.
func randomDelegationZone(r *rand.Rand) *Zone {
	z := New(dnswire.Root)
	_ = z.Add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{
		MName: "m.", RName: "r.", Serial: uint32(r.Intn(1 << 30)), Minimum: 300}))
	nTLDs := 1 + r.Intn(12)
	for i := 0; i < nTLDs; i++ {
		tld := dnswire.Name(fmt.Sprintf("t%d.", i))
		host := dnswire.Name(fmt.Sprintf("ns.nic.t%d.", i))
		_ = z.Add(dnswire.NewRR(tld, 172800, dnswire.NS{Host: host}))
		var a4 [4]byte
		r.Read(a4[:])
		_ = z.Add(dnswire.NewRR(host, 172800, dnswire.A{Addr: netip.AddrFrom4(a4)}))
		if r.Intn(2) == 0 {
			_ = z.Add(dnswire.NewRR(tld, 86400, dnswire.DS{
				KeyTag: uint16(r.Intn(1 << 16)), Algorithm: 15, DigestType: 2,
				Digest: []byte{1, 2, 3}}))
		}
	}
	return z
}

// randomQueryName produces names at assorted depths, some existing.
func randomQueryName(r *rand.Rand) dnswire.Name {
	switch r.Intn(5) {
	case 0:
		return dnswire.Root
	case 1:
		return dnswire.Name(fmt.Sprintf("t%d.", r.Intn(16)))
	case 2:
		return dnswire.Name(fmt.Sprintf("www.example.t%d.", r.Intn(16)))
	case 3:
		return dnswire.Name(fmt.Sprintf("ns.nic.t%d.", r.Intn(16)))
	default:
		return dnswire.Name(fmt.Sprintf("bogus%d.", r.Intn(1000)))
	}
}

// TestZoneQueryInvariantsProperty checks structural invariants of the
// RFC 1034 lookup over random zones and queries:
//   - never panics, rcode is NOERROR/NXDOMAIN/REFUSED
//   - a referral is never authoritative and always carries NS records
//     for a name enclosing the query name
//   - NXDOMAIN always carries the SOA
//   - answers only contain records at the query name
func TestZoneQueryInvariantsProperty(t *testing.T) {
	types := []dnswire.Type{dnswire.TypeA, dnswire.TypeNS, dnswire.TypeDS,
		dnswire.TypeSOA, dnswire.TypeTXT, dnswire.TypeANY}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z := randomDelegationZone(r)
		for i := 0; i < 40; i++ {
			qname := randomQueryName(r)
			qtype := types[r.Intn(len(types))]
			ans := z.Query(qname, qtype)
			switch ans.Rcode {
			case dnswire.RcodeSuccess, dnswire.RcodeNXDomain:
			default:
				return false
			}
			if ans.Rcode == dnswire.RcodeNXDomain {
				if len(ans.Answer) != 0 {
					return false
				}
				if len(ans.Authority) != 1 || ans.Authority[0].Type != dnswire.TypeSOA {
					return false
				}
			}
			isReferral := !ans.Authoritative && ans.Rcode == dnswire.RcodeSuccess &&
				len(ans.Authority) > 0
			if isReferral {
				sawNS := false
				for _, rr := range ans.Authority {
					if rr.Type == dnswire.TypeNS {
						sawNS = true
						if !qname.IsSubdomainOf(rr.Name) {
							return false
						}
					}
				}
				if !sawNS {
					return false
				}
			}
			for _, rr := range ans.Answer {
				if rr.Name != qname {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestZoneAddRemoveIdempotencyProperty: adding a record twice equals
// adding it once; removing then re-adding restores the lookup.
func TestZoneAddRemoveIdempotencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z := randomDelegationZone(r)
		before := z.Len()
		rr := dnswire.NewRR("t0.", 172800, dnswire.NS{Host: "ns.nic.t0."})
		_ = z.Add(rr)
		if z.Len() != before {
			return false // duplicate changed the zone
		}
		got := z.Lookup("t0.", dnswire.TypeNS)
		z.Remove("t0.", dnswire.TypeNS)
		if z.Lookup("t0.", dnswire.TypeNS) != nil {
			return false
		}
		for _, e := range got {
			if z.Add(e) != nil {
				return false
			}
		}
		return len(z.Lookup("t0.", dnswire.TypeNS)) == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
