package zone

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"rootless/internal/dnswire"
)

// ParseError reports a master-file syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("zone: line %d: %s", e.Line, e.Msg)
}

// Parse reads an RFC 1035 §5 master file into a Zone rooted at origin.
// Supported syntax: $ORIGIN and $TTL directives, "@" owners, inherited
// owners, optional TTL and class in either order, parenthesized
// multi-line records, ';' comments, and quoted strings.
func Parse(r io.Reader, origin dnswire.Name) (*Zone, error) {
	z := New(origin)
	p := &parser{
		zone:       z,
		origin:     origin,
		defaultTTL: 86400,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	var pending []token
	parenDepth := 0
	pendingStart := 0
	for sc.Scan() {
		lineNo++
		tokens, depth, err := tokenize(sc.Text(), parenDepth)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
		if len(pending) == 0 {
			pendingStart = lineNo
			// Leading whitespace means "inherit the previous owner"; the
			// tokenizer marks it.
		}
		pending = append(pending, tokens...)
		parenDepth = depth
		if parenDepth > 0 {
			continue
		}
		if len(pending) > 0 {
			if err := p.record(pending); err != nil {
				return nil, &ParseError{Line: pendingStart, Msg: err.Error()}
			}
		}
		pending = nil
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if parenDepth > 0 {
		return nil, &ParseError{Line: lineNo, Msg: "unclosed parenthesis"}
	}
	if len(pending) > 0 {
		if err := p.record(pending); err != nil {
			return nil, &ParseError{Line: pendingStart, Msg: err.Error()}
		}
	}
	return z, nil
}

// token is one master-file token; quoted strings are marked.
type token struct {
	text      string
	quoted    bool
	leadingWS bool // token began a line that started with whitespace
}

// tokenize splits one line into tokens, tracking parenthesis depth across
// lines and stripping comments.
func tokenize(line string, depth int) ([]token, int, error) {
	var tokens []token
	i := 0
	startsWithWS := len(line) > 0 && (line[0] == ' ' || line[0] == '\t')
	first := true
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == ';':
			return tokens, depth, nil
		case c == '(':
			depth++
			i++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, 0, fmt.Errorf("unbalanced ')'")
			}
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' && j+1 < len(line) {
					sb.WriteByte(line[j+1])
					j += 2
					continue
				}
				sb.WriteByte(line[j])
				j++
			}
			if j >= len(line) {
				return nil, 0, fmt.Errorf("unterminated quoted string")
			}
			tokens = append(tokens, token{text: sb.String(), quoted: true, leadingWS: first && startsWithWS})
			first = false
			i = j + 1
		default:
			j := i
			for j < len(line) && !strings.ContainsRune(" \t;()\"", rune(line[j])) {
				j++
			}
			tokens = append(tokens, token{text: line[i:j], leadingWS: first && startsWithWS})
			first = false
			i = j
		}
	}
	return tokens, depth, nil
}

type parser struct {
	zone       *Zone
	origin     dnswire.Name
	defaultTTL uint32
	lastOwner  dnswire.Name
	haveOwner  bool
}

// name resolves a possibly-relative presentation name against $ORIGIN.
func (p *parser) name(s string) (dnswire.Name, error) {
	if s == "@" {
		return p.origin, nil
	}
	if strings.HasSuffix(s, ".") && !strings.HasSuffix(s, "\\.") {
		return dnswire.ParseName(s)
	}
	if p.origin.IsRoot() {
		return dnswire.ParseName(s)
	}
	return dnswire.ParseName(s + "." + string(p.origin))
}

func (p *parser) record(tokens []token) error {
	if len(tokens) == 0 {
		return nil
	}
	// Directives.
	switch strings.ToUpper(tokens[0].text) {
	case "$ORIGIN":
		if len(tokens) != 2 {
			return fmt.Errorf("$ORIGIN needs one argument")
		}
		n, err := dnswire.ParseName(tokens[1].text)
		if err != nil {
			return err
		}
		p.origin = n
		return nil
	case "$TTL":
		if len(tokens) != 2 {
			return fmt.Errorf("$TTL needs one argument")
		}
		ttl, err := parseTTL(tokens[1].text)
		if err != nil {
			return err
		}
		p.defaultTTL = ttl
		return nil
	case "$INCLUDE":
		return fmt.Errorf("$INCLUDE is not supported")
	}

	// Owner: explicit unless the line started with whitespace.
	idx := 0
	owner := p.lastOwner
	if tokens[0].leadingWS {
		if !p.haveOwner {
			return fmt.Errorf("record with no prior owner")
		}
	} else {
		n, err := p.name(tokens[0].text)
		if err != nil {
			return fmt.Errorf("bad owner %q: %v", tokens[0].text, err)
		}
		owner = n
		idx = 1
	}

	// Optional TTL and class, in either order.
	ttl := p.defaultTTL
	class := dnswire.ClassINET
	sawTTL, sawClass := false, false
	for idx < len(tokens) {
		tok := tokens[idx].text
		if !sawTTL {
			if v, err := parseTTL(tok); err == nil {
				ttl = v
				sawTTL = true
				idx++
				continue
			}
		}
		if !sawClass {
			if c, err := dnswire.ParseClass(strings.ToUpper(tok)); err == nil {
				class = c
				sawClass = true
				idx++
				continue
			}
		}
		break
	}
	if idx >= len(tokens) {
		return fmt.Errorf("missing record type")
	}
	typ, err := dnswire.ParseType(strings.ToUpper(tokens[idx].text))
	if err != nil {
		return fmt.Errorf("bad type %q", tokens[idx].text)
	}
	idx++
	data, err := p.rdata(typ, tokens[idx:])
	if err != nil {
		return fmt.Errorf("%s rdata: %v", typ, err)
	}
	p.lastOwner = owner
	p.haveOwner = true
	return p.zone.Add(dnswire.RR{Name: owner, Type: typ, Class: class, TTL: ttl, Data: data})
}

// parseTTL accepts plain seconds or BIND-style unit suffixes (1h30m, 2d, 1w).
func parseTTL(s string) (uint32, error) {
	if s == "" {
		return 0, fmt.Errorf("empty ttl")
	}
	if v, err := strconv.ParseUint(s, 10, 32); err == nil {
		return uint32(v), nil
	}
	total := uint64(0)
	num := uint64(0)
	haveNum := false
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= '0' && c <= '9':
			num = num*10 + uint64(c-'0')
			haveNum = true
		case c == 's' || c == 'm' || c == 'h' || c == 'd' || c == 'w':
			if !haveNum {
				return 0, fmt.Errorf("bad ttl %q", s)
			}
			mult := map[rune]uint64{'s': 1, 'm': 60, 'h': 3600, 'd': 86400, 'w': 604800}[c]
			total += num * mult
			num, haveNum = 0, false
		default:
			return 0, fmt.Errorf("bad ttl %q", s)
		}
	}
	if haveNum {
		return 0, fmt.Errorf("bad ttl %q", s)
	}
	if total > 1<<32-1 {
		return 0, fmt.Errorf("ttl overflow")
	}
	return uint32(total), nil
}

func (p *parser) rdata(typ dnswire.Type, toks []token) (dnswire.RData, error) {
	text := func(i int) string { return toks[i].text }
	need := func(n int) error {
		if len(toks) < n {
			return fmt.Errorf("want %d fields, have %d", n, len(toks))
		}
		return nil
	}
	switch typ {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(text(0))
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad IPv4 %q", text(0))
		}
		return dnswire.A{Addr: addr}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(text(0))
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return nil, fmt.Errorf("bad IPv6 %q", text(0))
		}
		return dnswire.AAAA{Addr: addr}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(text(0))
		if err != nil {
			return nil, err
		}
		return dnswire.NS{Host: n}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(text(0))
		if err != nil {
			return nil, err
		}
		return dnswire.CNAME{Target: n}, nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(text(0))
		if err != nil {
			return nil, err
		}
		return dnswire.PTR{Target: n}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		mname, err := p.name(text(0))
		if err != nil {
			return nil, err
		}
		rname, err := p.name(text(1))
		if err != nil {
			return nil, err
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := parseTTL(text(2 + i))
			if err != nil {
				return nil, err
			}
			nums[i] = v
		}
		return dnswire.SOA{MName: mname, RName: rname, Serial: nums[0],
			Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4]}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(text(0), 10, 16)
		if err != nil {
			return nil, err
		}
		host, err := p.name(text(1))
		if err != nil {
			return nil, err
		}
		return dnswire.MX{Preference: uint16(pref), Host: host}, nil
	case dnswire.TypeTXT:
		if err := need(1); err != nil {
			return nil, err
		}
		var ss []string
		for i := range toks {
			ss = append(ss, toks[i].text)
		}
		return dnswire.TXT{Strings: ss}, nil
	case dnswire.TypeSRV:
		if err := need(4); err != nil {
			return nil, err
		}
		var nums [3]uint16
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseUint(text(i), 10, 16)
			if err != nil {
				return nil, err
			}
			nums[i] = uint16(v)
		}
		target, err := p.name(text(3))
		if err != nil {
			return nil, err
		}
		return dnswire.SRV{Priority: nums[0], Weight: nums[1], Port: nums[2], Target: target}, nil
	case dnswire.TypeDS:
		if err := need(4); err != nil {
			return nil, err
		}
		tag, err := strconv.ParseUint(text(0), 10, 16)
		if err != nil {
			return nil, err
		}
		alg, err := strconv.ParseUint(text(1), 10, 8)
		if err != nil {
			return nil, err
		}
		dt, err := strconv.ParseUint(text(2), 10, 8)
		if err != nil {
			return nil, err
		}
		digest, err := hex.DecodeString(strings.ToLower(strings.Join(texts(toks[3:]), "")))
		if err != nil {
			return nil, err
		}
		return dnswire.DS{KeyTag: uint16(tag), Algorithm: uint8(alg),
			DigestType: uint8(dt), Digest: digest}, nil
	case dnswire.TypeDNSKEY:
		if err := need(4); err != nil {
			return nil, err
		}
		flags, err := strconv.ParseUint(text(0), 10, 16)
		if err != nil {
			return nil, err
		}
		proto, err := strconv.ParseUint(text(1), 10, 8)
		if err != nil {
			return nil, err
		}
		alg, err := strconv.ParseUint(text(2), 10, 8)
		if err != nil {
			return nil, err
		}
		key, err := base64.StdEncoding.DecodeString(strings.Join(texts(toks[3:]), ""))
		if err != nil {
			return nil, err
		}
		return dnswire.DNSKEY{Flags: uint16(flags), Protocol: uint8(proto),
			Algorithm: uint8(alg), PublicKey: key}, nil
	case dnswire.TypeRRSIG:
		if err := need(9); err != nil {
			return nil, err
		}
		covered, err := dnswire.ParseType(strings.ToUpper(text(0)))
		if err != nil {
			return nil, err
		}
		alg, err := strconv.ParseUint(text(1), 10, 8)
		if err != nil {
			return nil, err
		}
		labels, err := strconv.ParseUint(text(2), 10, 8)
		if err != nil {
			return nil, err
		}
		origTTL, err := strconv.ParseUint(text(3), 10, 32)
		if err != nil {
			return nil, err
		}
		exp, err := strconv.ParseUint(text(4), 10, 32)
		if err != nil {
			return nil, err
		}
		inc, err := strconv.ParseUint(text(5), 10, 32)
		if err != nil {
			return nil, err
		}
		tag, err := strconv.ParseUint(text(6), 10, 16)
		if err != nil {
			return nil, err
		}
		signer, err := p.name(text(7))
		if err != nil {
			return nil, err
		}
		sig, err := base64.StdEncoding.DecodeString(strings.Join(texts(toks[8:]), ""))
		if err != nil {
			return nil, err
		}
		return dnswire.RRSIG{TypeCovered: covered, Algorithm: uint8(alg),
			Labels: uint8(labels), OrigTTL: uint32(origTTL), Expiration: uint32(exp),
			Inception: uint32(inc), KeyTag: uint16(tag), SignerName: signer,
			Signature: sig}, nil
	case dnswire.TypeNSEC:
		if err := need(1); err != nil {
			return nil, err
		}
		next, err := p.name(text(0))
		if err != nil {
			return nil, err
		}
		var types []dnswire.Type
		for _, tok := range toks[1:] {
			t, err := dnswire.ParseType(strings.ToUpper(tok.text))
			if err != nil {
				return nil, err
			}
			types = append(types, t)
		}
		return dnswire.NSEC{NextName: next, Types: types}, nil
	case dnswire.TypeZONEMD:
		if err := need(4); err != nil {
			return nil, err
		}
		serial, err := strconv.ParseUint(text(0), 10, 32)
		if err != nil {
			return nil, err
		}
		scheme, err := strconv.ParseUint(text(1), 10, 8)
		if err != nil {
			return nil, err
		}
		hash, err := strconv.ParseUint(text(2), 10, 8)
		if err != nil {
			return nil, err
		}
		digest, err := hex.DecodeString(strings.ToLower(strings.Join(texts(toks[3:]), "")))
		if err != nil {
			return nil, err
		}
		return dnswire.ZONEMD{Serial: uint32(serial), Scheme: uint8(scheme),
			Hash: uint8(hash), Digest: digest}, nil
	case dnswire.TypeCAA:
		if err := need(3); err != nil {
			return nil, err
		}
		flags, err := strconv.ParseUint(text(0), 10, 8)
		if err != nil {
			return nil, err
		}
		return dnswire.CAA{Flags: uint8(flags), Tag: text(1), Value: text(2)}, nil
	default:
		// RFC 3597 generic syntax: \# length hexdata
		if len(toks) >= 2 && text(0) == "\\#" {
			n, err := strconv.Atoi(text(1))
			if err != nil {
				return nil, err
			}
			data, err := hex.DecodeString(strings.Join(texts(toks[2:]), ""))
			if err != nil {
				return nil, err
			}
			if len(data) != n {
				return nil, fmt.Errorf("\\# length %d != data length %d", n, len(data))
			}
			return dnswire.Unknown{RRType: typ, Data: data}, nil
		}
		return nil, fmt.Errorf("unsupported type %s", typ)
	}
}

func texts(toks []token) []string {
	out := make([]string, len(toks))
	for i := range toks {
		out[i] = toks[i].text
	}
	return out
}

// Write serializes the zone in master-file form: a $ORIGIN and $TTL header
// followed by records in canonical order.
func Write(w io.Writer, z *Zone) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "$ORIGIN %s\n", z.Origin); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "$TTL 86400\n"); err != nil {
		return err
	}
	for _, rr := range z.Records() {
		if _, err := fmt.Fprintln(bw, rr.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Text returns the zone's master-file serialization as a string.
func Text(z *Zone) string {
	var sb strings.Builder
	_ = Write(&sb, z)
	return sb.String()
}
