// Package zone implements DNS zones: an in-memory store of resource
// records with the authoritative-lookup operations a nameserver needs
// (answers, referrals with glue, NXDOMAIN determination), plus an RFC 1035
// §5 master-file parser and serializer and a compressed container format.
//
// The root zone — the object this whole system is about — is just a Zone
// whose origin is the root name.
package zone

import (
	"fmt"
	"sort"
	"sync"

	"rootless/internal/dnswire"
)

// Zone is a set of resource records rooted at Origin.
//
// A Zone is safe for concurrent readers once built; mutation (Add/Remove)
// is guarded internally, so a Zone may also be updated while being served.
type Zone struct {
	Origin dnswire.Name

	mu      sync.RWMutex
	records map[dnswire.Name]map[dnswire.Type][]dnswire.RR
	// delegations caches the set of names that own NS rrsets other than
	// the origin — the zone cuts.
	delegations map[dnswire.Name]bool
	// nsecNames counts owners carrying NSEC records, so unsigned zones
	// skip denial-proof scans entirely.
	nsecNames int
}

// New returns an empty zone for the given origin.
func New(origin dnswire.Name) *Zone {
	return &Zone{
		Origin:      origin,
		records:     make(map[dnswire.Name]map[dnswire.Type][]dnswire.RR),
		delegations: make(map[dnswire.Name]bool),
	}
}

// Add inserts a record. Records outside the zone's origin are rejected.
// Duplicate records (same name, type, class, rdata) are ignored.
func (z *Zone) Add(rr dnswire.RR) error {
	if !rr.Name.IsSubdomainOf(z.Origin) {
		return fmt.Errorf("zone: record %s outside origin %s", rr.Name, z.Origin)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	byType, ok := z.records[rr.Name]
	if !ok {
		byType = make(map[dnswire.Type][]dnswire.RR)
		z.records[rr.Name] = byType
	}
	for _, existing := range byType[rr.Type] {
		if existing.Class == rr.Class && existing.Data.String() == rr.Data.String() {
			return nil
		}
	}
	if rr.Type == dnswire.TypeNSEC && len(byType[dnswire.TypeNSEC]) == 0 {
		z.nsecNames++
	}
	byType[rr.Type] = append(byType[rr.Type], rr)
	if rr.Type == dnswire.TypeNS && rr.Name != z.Origin {
		z.delegations[rr.Name] = true
	}
	return nil
}

// Remove deletes all records of the given name and type. A type of
// dnswire.TypeANY removes every record at the name.
func (z *Zone) Remove(name dnswire.Name, typ dnswire.Type) {
	z.mu.Lock()
	defer z.mu.Unlock()
	byType, ok := z.records[name]
	if !ok {
		return
	}
	if typ == dnswire.TypeANY {
		if len(byType[dnswire.TypeNSEC]) > 0 {
			z.nsecNames--
		}
		delete(z.records, name)
		delete(z.delegations, name)
		return
	}
	if typ == dnswire.TypeNSEC && len(byType[dnswire.TypeNSEC]) > 0 {
		z.nsecNames--
	}
	delete(byType, typ)
	if typ == dnswire.TypeNS {
		delete(z.delegations, name)
	}
	if len(byType) == 0 {
		delete(z.records, name)
	}
}

// Lookup returns the RRset for (name, type), or nil.
func (z *Zone) Lookup(name dnswire.Name, typ dnswire.Type) []dnswire.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	rrs := z.records[name][typ]
	if len(rrs) == 0 {
		return nil
	}
	out := make([]dnswire.RR, len(rrs))
	copy(out, rrs)
	return out
}

// LookupAll returns every record at name, across types.
func (z *Zone) LookupAll(name dnswire.Name) []dnswire.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []dnswire.RR
	for _, rrs := range z.records[name] {
		out = append(out, rrs...)
	}
	return out
}

// HasName reports whether any record exists at name.
func (z *Zone) HasName(name dnswire.Name) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.records[name]) > 0
}

// SOA returns the zone's SOA record, or false if absent.
func (z *Zone) SOA() (dnswire.RR, bool) {
	rrs := z.Lookup(z.Origin, dnswire.TypeSOA)
	if len(rrs) == 0 {
		return dnswire.RR{}, false
	}
	return rrs[0], true
}

// Serial returns the zone's SOA serial, or 0 if there is no SOA.
func (z *Zone) Serial() uint32 {
	if soa, ok := z.SOA(); ok {
		return soa.Data.(dnswire.SOA).Serial
	}
	return 0
}

// Names returns every owner name in the zone in DNSSEC canonical order.
func (z *Zone) Names() []dnswire.Name {
	z.mu.RLock()
	names := make([]dnswire.Name, 0, len(z.records))
	for n := range z.records {
		names = append(names, n)
	}
	z.mu.RUnlock()
	sort.Slice(names, func(i, j int) bool { return names[i].Compare(names[j]) < 0 })
	return names
}

// Records returns every record in the zone in canonical name order with
// deterministic within-name ordering (by type, then rdata).
func (z *Zone) Records() []dnswire.RR {
	names := z.Names()
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []dnswire.RR
	for _, n := range names {
		byType := z.records[n]
		types := make([]dnswire.Type, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			rrs := append([]dnswire.RR(nil), byType[t]...)
			sort.Slice(rrs, func(i, j int) bool {
				return rrs[i].Data.String() < rrs[j].Data.String()
			})
			out = append(out, rrs...)
		}
	}
	return out
}

// Len returns the number of records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, byType := range z.records {
		for _, rrs := range byType {
			n += len(rrs)
		}
	}
	return n
}

// RRsetCount returns the number of distinct (name, type) RRsets.
func (z *Zone) RRsetCount() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, byType := range z.records {
		n += len(byType)
	}
	return n
}

// Delegations returns the names of all zone cuts in canonical order.
func (z *Zone) Delegations() []dnswire.Name {
	z.mu.RLock()
	names := make([]dnswire.Name, 0, len(z.delegations))
	for n := range z.delegations {
		names = append(names, n)
	}
	z.mu.RUnlock()
	sort.Slice(names, func(i, j int) bool { return names[i].Compare(names[j]) < 0 })
	return names
}

// Answer is the result of an authoritative lookup in a zone.
type Answer struct {
	// Rcode is NOERROR or NXDOMAIN.
	Rcode dnswire.Rcode
	// Authoritative is false for referrals.
	Authoritative bool
	// Answer holds the matching RRset (possibly empty for NODATA).
	Answer []dnswire.RR
	// Authority holds the delegation NS set (referral), or the SOA
	// (NXDOMAIN / NODATA).
	Authority []dnswire.RR
	// Additional holds glue addresses for authority-section nameservers.
	Additional []dnswire.RR
}

// Query performs the authoritative lookup algorithm (RFC 1034 §4.3.2,
// restricted to the in-zone cases: answer, referral, NODATA, NXDOMAIN).
func (z *Zone) Query(name dnswire.Name, typ dnswire.Type) Answer {
	if !name.IsSubdomainOf(z.Origin) {
		return Answer{Rcode: dnswire.RcodeRefused}
	}

	// Walk from the query name up toward the origin looking for a zone cut
	// strictly between the origin and the name. A cut at the query name
	// itself is a referral unless the query is for DS (which the parent
	// answers authoritatively).
	if cut, ok := z.findCut(name, typ); ok {
		return z.referral(cut)
	}

	z.mu.RLock()
	byType, exists := z.records[name]
	z.mu.RUnlock()

	if exists {
		if rrs := byType[typ]; len(rrs) > 0 {
			return Answer{
				Rcode:         dnswire.RcodeSuccess,
				Authoritative: true,
				Answer:        append([]dnswire.RR(nil), rrs...),
			}
		}
		if typ == dnswire.TypeANY {
			var all []dnswire.RR
			for _, rrs := range byType {
				all = append(all, rrs...)
			}
			return Answer{Rcode: dnswire.RcodeSuccess, Authoritative: true, Answer: all}
		}
		// CNAME at the name answers any type except CNAME itself.
		if rrs := byType[dnswire.TypeCNAME]; len(rrs) > 0 {
			return Answer{
				Rcode:         dnswire.RcodeSuccess,
				Authoritative: true,
				Answer:        append([]dnswire.RR(nil), rrs...),
			}
		}
		// NODATA: name exists, type does not.
		return Answer{
			Rcode:         dnswire.RcodeSuccess,
			Authoritative: true,
			Authority:     z.soaAuthority(),
		}
	}

	// Name does not exist, but it may be an empty non-terminal (a name
	// with descendants), which is NODATA rather than NXDOMAIN.
	if z.hasDescendants(name) {
		return Answer{
			Rcode:         dnswire.RcodeSuccess,
			Authoritative: true,
			Authority:     z.soaAuthority(),
		}
	}
	return Answer{
		Rcode:         dnswire.RcodeNXDomain,
		Authoritative: true,
		Authority:     z.soaAuthority(),
	}
}

// findCut locates the closest delegation at-or-above name, excluding the
// origin. A cut exactly at name does not count for DS queries.
func (z *Zone) findCut(name dnswire.Name, typ dnswire.Type) (dnswire.Name, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for n := name; n != z.Origin && !n.IsRoot(); n = n.Parent() {
		if z.delegations[n] {
			if n == name && typ == dnswire.TypeDS {
				continue
			}
			return n, true
		}
	}
	return "", false
}

func (z *Zone) referral(cut dnswire.Name) Answer {
	z.mu.RLock()
	defer z.mu.RUnlock()
	ans := Answer{Rcode: dnswire.RcodeSuccess}
	nsSet := z.records[cut][dnswire.TypeNS]
	ans.Authority = append(ans.Authority, nsSet...)
	// DS records live at the cut in the parent and accompany referrals.
	ans.Authority = append(ans.Authority, z.records[cut][dnswire.TypeDS]...)
	for _, ns := range nsSet {
		host := ns.Data.(dnswire.NS).Host
		if !host.IsSubdomainOf(z.Origin) {
			continue
		}
		ans.Additional = append(ans.Additional, z.records[host][dnswire.TypeA]...)
		ans.Additional = append(ans.Additional, z.records[host][dnswire.TypeAAAA]...)
	}
	return ans
}

func (z *Zone) soaAuthority() []dnswire.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return append([]dnswire.RR(nil), z.records[z.Origin][dnswire.TypeSOA]...)
}

// hasDescendants reports whether any stored name is strictly below name.
func (z *Zone) hasDescendants(name dnswire.Name) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for n := range z.records {
		if n != name && n.IsSubdomainOf(name) {
			return true
		}
	}
	return false
}

// SignaturesFor returns the RRSIG records at name covering the given
// type, for building DNSSEC-aware responses.
func (z *Zone) SignaturesFor(name dnswire.Name, covered dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range z.Lookup(name, dnswire.TypeRRSIG) {
		if sig, ok := rr.Data.(dnswire.RRSIG); ok && sig.TypeCovered == covered {
			out = append(out, rr)
		}
	}
	return out
}

// NSECCovering returns the NSEC record whose owner-to-next span covers
// name in canonical order (the authenticated denial proof for name), or
// false if the zone carries no NSEC chain. A name that owns an NSEC is
// covered by its own record.
func (z *Zone) NSECCovering(name dnswire.Name) (dnswire.RR, bool) {
	type link struct {
		owner dnswire.Name
		rr    dnswire.RR
	}
	var chain []link
	z.mu.RLock()
	if z.nsecNames == 0 {
		z.mu.RUnlock()
		return dnswire.RR{}, false
	}
	for n, byType := range z.records {
		if rrs := byType[dnswire.TypeNSEC]; len(rrs) > 0 {
			chain = append(chain, link{owner: n, rr: rrs[0]})
		}
	}
	z.mu.RUnlock()
	if len(chain) == 0 {
		return dnswire.RR{}, false
	}
	sort.Slice(chain, func(i, j int) bool { return chain[i].owner.Compare(chain[j].owner) < 0 })
	// Find the last owner <= name; it covers the span up to the next
	// owner. Names before the first owner wrap around to the last link.
	idx := sort.Search(len(chain), func(i int) bool {
		return chain[i].owner.Compare(name) > 0
	}) - 1
	if idx < 0 {
		idx = len(chain) - 1
	}
	return chain[idx].rr, true
}

// Clone returns a deep-enough copy of the zone (records are value types
// except rdata, which is immutable by convention).
func (z *Zone) Clone() *Zone {
	c := New(z.Origin)
	for _, rr := range z.Records() {
		_ = c.Add(rr)
	}
	return c
}
