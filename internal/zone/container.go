package zone

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"io"
	"strings"

	"rootless/internal/dnswire"
)

// Compress returns the zone's master file serialization compressed with
// gzip — the paper's "root zone file is roughly 1.1 MB compressed" object.
func Compress(z *Zone) ([]byte, error) {
	var buf bytes.Buffer
	gz, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		return nil, err
	}
	if err := Write(gz, z); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress parses a zone from its gzip-compressed master file form.
func Decompress(data []byte, origin dnswire.Name) (*Zone, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	return Parse(gz, origin)
}

// ExtractTLD scans a gzip-compressed root zone file and returns every
// record pertaining to one TLD: records owned at or under the TLD name,
// plus glue address records for the TLD's nameservers. This is the
// paper's §5.1 "Python script" experiment — a rudimentary lookaside that
// decompresses and scans the whole file per lookup.
func ExtractTLD(compressed []byte, tld dnswire.Name) ([]dnswire.RR, error) {
	gz, err := gzip.NewReader(bytes.NewReader(compressed))
	if err != nil {
		return nil, err
	}
	defer gz.Close()

	// First pass over the stream: collect records under the TLD and note
	// nameserver hosts whose glue we need. Root-zone glue is in-bailiwick
	// (under the TLD) in the common case, but out-of-bailiwick NS hosts
	// require remembering addresses seen anywhere, so we retain address
	// records by owner as we scan.
	var matched []dnswire.RR
	nsHosts := make(map[dnswire.Name]bool)
	addrByOwner := make(map[dnswire.Name][]dnswire.RR)

	full, err := Parse(gz, dnswire.Root)
	if err != nil {
		return nil, err
	}
	for _, rr := range full.Records() {
		if rr.Name.IsSubdomainOf(tld) && !rr.Name.IsRoot() {
			matched = append(matched, rr)
			if rr.Type == dnswire.TypeNS {
				nsHosts[rr.Data.(dnswire.NS).Host] = true
			}
		}
		if rr.Type == dnswire.TypeA || rr.Type == dnswire.TypeAAAA {
			addrByOwner[rr.Name] = append(addrByOwner[rr.Name], rr)
		}
	}
	for host := range nsHosts {
		if host.IsSubdomainOf(tld) {
			continue // already included
		}
		matched = append(matched, addrByOwner[host]...)
	}
	return matched, nil
}

// TLDIndex is the "load the root zone into a database" alternative the
// paper sketches: a per-TLD index over the parsed zone allowing O(1)
// retrieval instead of a full-file scan.
type TLDIndex struct {
	byTLD map[dnswire.Name][]dnswire.RR
}

// BuildTLDIndex indexes a root zone by TLD, attaching out-of-bailiwick
// glue to each TLD's record list.
func BuildTLDIndex(z *Zone) *TLDIndex {
	idx := &TLDIndex{byTLD: make(map[dnswire.Name][]dnswire.RR)}
	addrByOwner := make(map[dnswire.Name][]dnswire.RR)
	for _, rr := range z.Records() {
		if rr.Type == dnswire.TypeA || rr.Type == dnswire.TypeAAAA {
			addrByOwner[rr.Name] = append(addrByOwner[rr.Name], rr)
		}
	}
	needGlue := make(map[dnswire.Name][]dnswire.Name) // tld -> external hosts
	for _, rr := range z.Records() {
		if rr.Name.IsRoot() {
			continue
		}
		tld := rr.Name.TLD()
		idx.byTLD[tld] = append(idx.byTLD[tld], rr)
		if rr.Type == dnswire.TypeNS {
			host := rr.Data.(dnswire.NS).Host
			if !host.IsSubdomainOf(tld) {
				needGlue[tld] = append(needGlue[tld], host)
			}
		}
	}
	for tld, hosts := range needGlue {
		seen := make(map[dnswire.Name]bool)
		for _, h := range hosts {
			if seen[h] {
				continue
			}
			seen[h] = true
			idx.byTLD[tld] = append(idx.byTLD[tld], addrByOwner[h]...)
		}
	}
	return idx
}

// Lookup returns the records for one TLD, or nil.
func (idx *TLDIndex) Lookup(tld dnswire.Name) []dnswire.RR {
	return idx.byTLD[tld]
}

// TLDs returns the number of indexed TLDs.
func (idx *TLDIndex) TLDs() int { return len(idx.byTLD) }

// ReadNames streams just the owner names from a master-file reader without
// building a zone, used by analysis tools that only need name census data.
func ReadNames(r io.Reader) ([]dnswire.Name, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var names []dnswire.Name
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == ';' || line[0] == '$' ||
			line[0] == ' ' || line[0] == '\t' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		n, err := dnswire.ParseName(fields[0])
		if err != nil {
			continue
		}
		names = append(names, n)
	}
	return names, sc.Err()
}
