package zone

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"rootless/internal/dnswire"
)

const sampleMaster = `
; Example zone in the style of the root zone.
$ORIGIN .
$TTL 86400
.            86400 IN SOA  a.root-servers.net. nstld.verisign-grs.com. (
                               2019041100 ; serial
                               1800       ; refresh
                               900        ; retry
                               604800     ; expire
                               86400 )    ; minimum
.            518400 IN NS   a.root-servers.net.
com.         172800 IN NS   a.gtld-servers.net.
             172800 IN NS   b.gtld-servers.net.
com.          86400 IN DS   30909 8 2 E2D3C916F6DEEAC73294E8268FB5885044A833FC5459588F4A9184CFC41A5766
a.gtld-servers.net. 172800 IN A    192.5.6.30
a.gtld-servers.net. 172800 IN AAAA 2001:503:a83e::2:30
example.com.   3600 IN MX   10 mail.example.com.
example.com.   3600 IN TXT  "v=spf1 -all" "note with ; semicolon"
www.example.com. 60 IN CNAME example.com.
_sip._tcp.example.com. 600 IN SRV 1 5 5060 sip.example.com.
example.com.  86400 IN CAA  0 issue "ca.example.net"
`

func TestParseMasterFile(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleMaster), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	soa, ok := z.SOA()
	if !ok {
		t.Fatal("no SOA parsed")
	}
	if soa.Data.(dnswire.SOA).Serial != 2019041100 {
		t.Errorf("serial = %d", soa.Data.(dnswire.SOA).Serial)
	}
	if got := len(z.Lookup("com.", dnswire.TypeNS)); got != 2 {
		t.Errorf("com. NS = %d, want 2 (owner inheritance)", got)
	}
	ds := z.Lookup("com.", dnswire.TypeDS)
	if len(ds) != 1 || ds[0].Data.(dnswire.DS).KeyTag != 30909 {
		t.Errorf("DS = %+v", ds)
	}
	txt := z.Lookup("example.com.", dnswire.TypeTXT)
	if len(txt) != 1 {
		t.Fatalf("TXT = %+v", txt)
	}
	ss := txt[0].Data.(dnswire.TXT).Strings
	if len(ss) != 2 || ss[1] != "note with ; semicolon" {
		t.Errorf("TXT strings = %q", ss)
	}
	aaaa := z.Lookup("a.gtld-servers.net.", dnswire.TypeAAAA)
	if len(aaaa) != 1 || aaaa[0].Data.(dnswire.AAAA).Addr != netip.MustParseAddr("2001:503:a83e::2:30") {
		t.Errorf("AAAA = %+v", aaaa)
	}
	srv := z.Lookup("_sip._tcp.example.com.", dnswire.TypeSRV)
	if len(srv) != 1 || srv[0].Data.(dnswire.SRV).Port != 5060 {
		t.Errorf("SRV = %+v", srv)
	}
}

func TestParseRelativeNamesAndOrigin(t *testing.T) {
	src := `
$ORIGIN example.com.
$TTL 3600
@       IN NS  ns1
ns1     IN A   192.0.2.1
www     IN CNAME @
`
	z, err := Parse(strings.NewReader(src), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	ns := z.Lookup("example.com.", dnswire.TypeNS)
	if len(ns) != 1 || ns[0].Data.(dnswire.NS).Host != "ns1.example.com." {
		t.Errorf("NS = %+v", ns)
	}
	cn := z.Lookup("www.example.com.", dnswire.TypeCNAME)
	if len(cn) != 1 || cn[0].Data.(dnswire.CNAME).Target != "example.com." {
		t.Errorf("CNAME = %+v", cn)
	}
	if ns[0].TTL != 3600 {
		t.Errorf("TTL = %d, want $TTL 3600", ns[0].TTL)
	}
}

func TestParseTTLUnits(t *testing.T) {
	cases := map[string]uint32{
		"300": 300, "1m": 60, "1h30m": 5400, "2d": 172800, "1w": 604800, "1d12h": 129600,
	}
	for in, want := range cases {
		got, err := parseTTL(in)
		if err != nil || got != want {
			t.Errorf("parseTTL(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "h", "1x", "12.5", "99999999999999999999"} {
		if _, err := parseTTL(bad); err == nil {
			t.Errorf("parseTTL(%q) should fail", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unclosed paren", ". 60 IN SOA a. b. ( 1 2 3"},
		{"unbalanced close", ". 60 IN NS )a."},
		{"bad type", ". 60 IN BOGUS data"},
		{"bad ipv4", ". 60 IN A 999.1.1.1"},
		{"bad ipv6", ". 60 IN AAAA zz::1"},
		{"v4 in aaaa", ". 60 IN AAAA 1.2.3.4"},
		{"missing rdata", ". 60 IN MX"},
		{"inherit with no owner", " 60 IN NS a."},
		{"unterminated quote", `. 60 IN TXT "abc`},
		{"origin args", "$ORIGIN"},
		{"ttl args", "$TTL"},
		{"include unsupported", "$INCLUDE other.zone"},
		{"soa fields", ". 60 IN SOA a. b. 1 2 3"},
		{"bad ds hex", ". 60 IN DS 1 8 2 XYZ"},
		{"bad dnskey b64", ". 60 IN DNSKEY 256 3 15 !!!!"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src), dnswire.Root); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseUnknownTypeRFC3597(t *testing.T) {
	src := "example. 60 IN TYPE999 \\# 3 010203\n"
	z, err := Parse(strings.NewReader(src), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	rrs := z.Lookup("example.", dnswire.Type(999))
	if len(rrs) != 1 {
		t.Fatalf("unknown-type rrs = %+v", rrs)
	}
	u := rrs[0].Data.(dnswire.Unknown)
	if !reflect.DeepEqual(u.Data, []byte{1, 2, 3}) {
		t.Errorf("data = %v", u.Data)
	}
	// Length mismatch must fail.
	bad := "example. 60 IN TYPE999 \\# 4 010203\n"
	if _, err := Parse(strings.NewReader(bad), dnswire.Root); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleMaster), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	text := Text(z)
	z2, err := Parse(strings.NewReader(text), dnswire.Root)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	r1, r2 := z.Records(), z2.Records()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("round trip differs:\n%v\nvs\n%v", r1, r2)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleMaster), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Compress(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= len(Text(z)) {
		t.Errorf("compression did not shrink: %d >= %d", len(blob), len(Text(z)))
	}
	z2, err := Decompress(blob, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(z.Records(), z2.Records()) {
		t.Error("compressed round trip differs")
	}
	if _, err := Decompress([]byte("not gzip"), dnswire.Root); err == nil {
		t.Error("bad gzip should fail")
	}
}

func TestExtractTLD(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleMaster), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Compress(z)
	if err != nil {
		t.Fatal(err)
	}
	rrs, err := ExtractTLD(blob, "com.")
	if err != nil {
		t.Fatal(err)
	}
	// Expect: 2 NS + 1 DS at com., everything under example.com (6 rrs),
	// plus out-of-bailiwick glue for *.gtld-servers.net (2 rrs).
	var nsCount, glueCount int
	for _, rr := range rrs {
		if rr.Type == dnswire.TypeNS && rr.Name == "com." {
			nsCount++
		}
		if rr.Name.TLD() == "net." {
			glueCount++
		}
	}
	if nsCount != 2 {
		t.Errorf("NS at com. = %d, want 2", nsCount)
	}
	if glueCount != 2 {
		t.Errorf("out-of-bailiwick glue = %d, want 2", glueCount)
	}
}

func TestTLDIndex(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleMaster), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildTLDIndex(z)
	comRRs := idx.Lookup("com.")
	if len(comRRs) == 0 {
		t.Fatal("no records for com.")
	}
	var hasNS, hasGlue bool
	for _, rr := range comRRs {
		if rr.Type == dnswire.TypeNS && rr.Name == "com." {
			hasNS = true
		}
		if rr.Name == "a.gtld-servers.net." {
			hasGlue = true
		}
	}
	if !hasNS || !hasGlue {
		t.Errorf("index missing NS (%v) or glue (%v)", hasNS, hasGlue)
	}
	if idx.Lookup("nosuch.") != nil {
		t.Error("missing TLD should be nil")
	}
}

func TestReadNames(t *testing.T) {
	names, err := ReadNames(strings.NewReader(sampleMaster))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[dnswire.Name]bool)
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []dnswire.Name{"com.", "example.com.", "www.example.com."} {
		if !seen[want] {
			t.Errorf("ReadNames missing %q", want)
		}
	}
}

// randomZone builds a random zone of printable records for round-trip
// property testing.
func randomZone(r *rand.Rand) *Zone {
	z := New(dnswire.Root)
	_ = z.Add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{
		MName: "m.example.", RName: "r.example.", Serial: uint32(r.Intn(1 << 30)),
		Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400}))
	tldChars := "abcdefghijklmnopqrstuvwxyz"
	for i := 0; i < 1+r.Intn(30); i++ {
		b := make([]byte, 2+r.Intn(8))
		for j := range b {
			b[j] = tldChars[r.Intn(len(tldChars))]
		}
		tld := dnswire.Name(string(b) + ".")
		host := dnswire.Name("ns" + string(rune('a'+r.Intn(26))) + ".nic." + string(tld))
		_ = z.Add(dnswire.NewRR(tld, 172800, dnswire.NS{Host: host}))
		var a4 [4]byte
		r.Read(a4[:])
		_ = z.Add(dnswire.NewRR(host, 172800, dnswire.A{Addr: netip.AddrFrom4(a4)}))
	}
	return z
}

func TestZoneSerializationRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z := randomZone(r)
		z2, err := Parse(strings.NewReader(Text(z)), dnswire.Root)
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		return reflect.DeepEqual(z.Records(), z2.Records())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z := randomZone(r)
		blob, err := Compress(z)
		if err != nil {
			return false
		}
		z2, err := Decompress(blob, dnswire.Root)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(z.Records(), z2.Records())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
