package zone

import (
	"net/netip"
	"testing"

	"rootless/internal/dnswire"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// testRootZone builds a miniature root zone with two delegated TLDs.
func testRootZone(t *testing.T) *Zone {
	t.Helper()
	z := New(dnswire.Root)
	add := func(rr dnswire.RR) {
		t.Helper()
		if err := z.Add(rr); err != nil {
			t.Fatal(err)
		}
	}
	add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{
		MName: "a.root-servers.net.", RName: "nstld.verisign-grs.com.",
		Serial: 2019041100, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}))
	add(dnswire.NewRR(dnswire.Root, 518400, dnswire.NS{Host: "a.root-servers.net."}))
	add(dnswire.NewRR("a.root-servers.net.", 518400, dnswire.A{Addr: addr("198.41.0.4")}))
	// com. delegation with in-bailiwick glue.
	add(dnswire.NewRR("com.", 172800, dnswire.NS{Host: "a.gtld-servers.net."}))
	add(dnswire.NewRR("com.", 172800, dnswire.NS{Host: "b.gtld-servers.net."}))
	add(dnswire.NewRR("a.gtld-servers.net.", 172800, dnswire.A{Addr: addr("192.5.6.30")}))
	add(dnswire.NewRR("a.gtld-servers.net.", 172800, dnswire.AAAA{Addr: addr("2001:503:a83e::2:30")}))
	add(dnswire.NewRR("b.gtld-servers.net.", 172800, dnswire.A{Addr: addr("192.33.14.30")}))
	add(dnswire.NewRR("com.", 86400, dnswire.DS{KeyTag: 30909, Algorithm: 8, DigestType: 2, Digest: []byte{1, 2}}))
	// org. delegation.
	add(dnswire.NewRR("org.", 172800, dnswire.NS{Host: "a0.org.afilias-nst.info."}))
	add(dnswire.NewRR("a0.org.afilias-nst.info.", 172800, dnswire.A{Addr: addr("199.19.56.1")}))
	return z
}

func TestZoneAddLookup(t *testing.T) {
	z := testRootZone(t)
	if got := len(z.Lookup("com.", dnswire.TypeNS)); got != 2 {
		t.Errorf("com. NS count = %d, want 2", got)
	}
	if z.Lookup("net.", dnswire.TypeNS) != nil {
		t.Error("net. should not exist")
	}
	if z.Len() != 11 {
		t.Errorf("Len = %d, want 11", z.Len())
	}
	if z.RRsetCount() != 10 {
		t.Errorf("RRsetCount = %d, want 10", z.RRsetCount())
	}
	// Duplicate add is a no-op.
	if err := z.Add(dnswire.NewRR("com.", 172800, dnswire.NS{Host: "a.gtld-servers.net."})); err != nil {
		t.Fatal(err)
	}
	if got := len(z.Lookup("com.", dnswire.TypeNS)); got != 2 {
		t.Errorf("after dup add, com. NS count = %d, want 2", got)
	}
	if z.Serial() != 2019041100 {
		t.Errorf("Serial = %d", z.Serial())
	}
}

func TestZoneRejectsOutOfOrigin(t *testing.T) {
	z := New("com.")
	err := z.Add(dnswire.NewRR("example.org.", 60, dnswire.NS{Host: "ns.example.org."}))
	if err == nil {
		t.Fatal("expected out-of-origin rejection")
	}
}

func TestZoneQueryReferral(t *testing.T) {
	z := testRootZone(t)
	ans := z.Query("www.example.com.", dnswire.TypeA)
	if ans.Rcode != dnswire.RcodeSuccess || ans.Authoritative {
		t.Fatalf("referral rcode=%v auth=%v", ans.Rcode, ans.Authoritative)
	}
	if len(ans.Answer) != 0 {
		t.Error("referral should have no answer")
	}
	nsCount, dsCount := 0, 0
	for _, rr := range ans.Authority {
		switch rr.Type {
		case dnswire.TypeNS:
			nsCount++
		case dnswire.TypeDS:
			dsCount++
		}
	}
	if nsCount != 2 || dsCount != 1 {
		t.Errorf("authority NS=%d DS=%d, want 2,1", nsCount, dsCount)
	}
	if len(ans.Additional) != 3 {
		t.Errorf("glue count = %d, want 3", len(ans.Additional))
	}
}

func TestZoneQueryApex(t *testing.T) {
	z := testRootZone(t)
	ans := z.Query(dnswire.Root, dnswire.TypeNS)
	if !ans.Authoritative || len(ans.Answer) != 1 {
		t.Fatalf("apex NS: auth=%v answers=%d", ans.Authoritative, len(ans.Answer))
	}
	ans = z.Query(dnswire.Root, dnswire.TypeSOA)
	if !ans.Authoritative || len(ans.Answer) != 1 {
		t.Fatalf("apex SOA: auth=%v answers=%d", ans.Authoritative, len(ans.Answer))
	}
}

func TestZoneQueryDSAtCut(t *testing.T) {
	z := testRootZone(t)
	// DS at a zone cut is answered authoritatively by the parent.
	ans := z.Query("com.", dnswire.TypeDS)
	if !ans.Authoritative || len(ans.Answer) != 1 || ans.Answer[0].Type != dnswire.TypeDS {
		t.Fatalf("DS query: %+v", ans)
	}
	// But an A query at the cut is a referral.
	ans = z.Query("com.", dnswire.TypeA)
	if ans.Authoritative || len(ans.Authority) == 0 {
		t.Fatalf("A at cut should refer: %+v", ans)
	}
}

func TestZoneQueryNXDomain(t *testing.T) {
	z := testRootZone(t)
	ans := z.Query("nonexistent-tld.", dnswire.TypeA)
	if ans.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %v, want NXDOMAIN", ans.Rcode)
	}
	if len(ans.Authority) != 1 || ans.Authority[0].Type != dnswire.TypeSOA {
		t.Error("NXDOMAIN should carry the SOA")
	}
}

func TestZoneQueryNodata(t *testing.T) {
	z := testRootZone(t)
	ans := z.Query("a.root-servers.net.", dnswire.TypeAAAA)
	if ans.Rcode != dnswire.RcodeSuccess || len(ans.Answer) != 0 {
		t.Fatalf("NODATA: %+v", ans)
	}
	if len(ans.Authority) != 1 || ans.Authority[0].Type != dnswire.TypeSOA {
		t.Error("NODATA should carry the SOA")
	}
}

func TestZoneQueryEmptyNonTerminal(t *testing.T) {
	z := New(dnswire.Root)
	if err := z.Add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{MName: "m.", RName: "r.", Serial: 1})); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(dnswire.NewRR("a.b.example.", 60, dnswire.A{Addr: addr("192.0.2.1")})); err != nil {
		t.Fatal(err)
	}
	ans := z.Query("b.example.", dnswire.TypeA)
	if ans.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("empty non-terminal should be NODATA, got %v", ans.Rcode)
	}
}

func TestZoneQueryRefusedOutside(t *testing.T) {
	z := New("com.")
	ans := z.Query("example.org.", dnswire.TypeA)
	if ans.Rcode != dnswire.RcodeRefused {
		t.Fatalf("rcode = %v, want REFUSED", ans.Rcode)
	}
}

func TestZoneQueryANY(t *testing.T) {
	z := testRootZone(t)
	ans := z.Query("a.gtld-servers.net.", dnswire.TypeANY)
	if len(ans.Answer) != 2 {
		t.Fatalf("ANY answers = %d, want 2", len(ans.Answer))
	}
}

func TestZoneQueryCNAME(t *testing.T) {
	z := New("example.com.")
	if err := z.Add(dnswire.NewRR("www.example.com.", 60, dnswire.CNAME{Target: "example.com."})); err != nil {
		t.Fatal(err)
	}
	ans := z.Query("www.example.com.", dnswire.TypeA)
	if len(ans.Answer) != 1 || ans.Answer[0].Type != dnswire.TypeCNAME {
		t.Fatalf("CNAME answer: %+v", ans)
	}
}

func TestZoneRemove(t *testing.T) {
	z := testRootZone(t)
	z.Remove("org.", dnswire.TypeNS)
	if z.Lookup("org.", dnswire.TypeNS) != nil {
		t.Error("org. NS should be removed")
	}
	// With the delegation gone, the query becomes NXDOMAIN.
	ans := z.Query("org.", dnswire.TypeA)
	if ans.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("after delegation removal, rcode = %v", ans.Rcode)
	}
	z.Remove("a.gtld-servers.net.", dnswire.TypeANY)
	if z.HasName("a.gtld-servers.net.") {
		t.Error("ANY removal should drop the name")
	}
}

func TestZoneNamesCanonicalOrder(t *testing.T) {
	z := testRootZone(t)
	names := z.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1].Compare(names[i]) >= 0 {
			t.Fatalf("names out of order: %q >= %q", names[i-1], names[i])
		}
	}
	if names[0] != dnswire.Root {
		t.Errorf("first name = %q, want root", names[0])
	}
}

func TestZoneDelegations(t *testing.T) {
	z := testRootZone(t)
	dels := z.Delegations()
	if len(dels) != 2 || dels[0] != "com." || dels[1] != "org." {
		t.Errorf("Delegations = %v", dels)
	}
}

func TestZoneClone(t *testing.T) {
	z := testRootZone(t)
	c := z.Clone()
	if c.Len() != z.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), z.Len())
	}
	c.Remove("com.", dnswire.TypeNS)
	if len(z.Lookup("com.", dnswire.TypeNS)) != 2 {
		t.Error("mutating clone affected original")
	}
}
