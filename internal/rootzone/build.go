package rootzone

import (
	"fmt"
	"net/netip"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

// TTL values mirroring the real root zone (§2.1 of the paper).
const (
	TTLApexNS     = 518400  // 6 days
	TTLDelegation = 172800  // 2 days — the TTL the paper's analysis leans on
	TTLDS         = 86400   // 1 day
	TTLHints      = 3600000 // ~42 days, the root hints TTL
)

// RootLetter is one of the 13 named root servers.
type RootLetter struct {
	Letter byte
	Host   dnswire.Name
	V4     netip.Addr
	V6     netip.Addr
}

// rootLetterData holds the real 13 root-server addresses.
var rootLetterData = []struct{ v4, v6 string }{
	{"198.41.0.4", "2001:503:ba3e::2:30"},   // a (Verisign)
	{"199.9.14.201", "2001:500:200::b"},     // b (USC-ISI)
	{"192.33.4.12", "2001:500:2::c"},        // c (Cogent)
	{"199.7.91.13", "2001:500:2d::d"},       // d (UMD)
	{"192.203.230.10", "2001:500:a8::e"},    // e (NASA)
	{"192.5.5.241", "2001:500:2f::f"},       // f (ISC)
	{"192.112.36.4", "2001:500:12::d0d"},    // g (DISA)
	{"198.97.190.53", "2001:500:1::53"},     // h (ARL)
	{"192.36.148.17", "2001:7fe::53"},       // i (Netnod)
	{"192.58.128.30", "2001:503:c27::2:30"}, // j (Verisign)
	{"193.0.14.129", "2001:7fd::1"},         // k (RIPE)
	{"199.7.83.42", "2001:500:9f::42"},      // l (ICANN)
	{"202.12.27.33", "2001:dc3::35"},        // m (WIDE)
}

// RootLetters returns the 13 named root servers a–m.
func RootLetters() []RootLetter {
	out := make([]RootLetter, 13)
	for i := range out {
		letter := byte('a' + i)
		out[i] = RootLetter{
			Letter: letter,
			Host:   dnswire.Name(string(letter) + ".root-servers.net."),
			V4:     netip.MustParseAddr(rootLetterData[i].v4),
			V6:     netip.MustParseAddr(rootLetterData[i].v6),
		}
	}
	return out
}

// Hints returns the root hints file contents: 13 NS records plus an A and
// AAAA per named root — 39 records, the paper's ~3 KB bootstrap file.
func Hints() []dnswire.RR {
	var rrs []dnswire.RR
	for _, rl := range RootLetters() {
		rrs = append(rrs, dnswire.NewRR(dnswire.Root, TTLHints, dnswire.NS{Host: rl.Host}))
	}
	for _, rl := range RootLetters() {
		rrs = append(rrs,
			dnswire.NewRR(rl.Host, TTLHints, dnswire.A{Addr: rl.V4}),
			dnswire.NewRR(rl.Host, TTLHints, dnswire.AAAA{Addr: rl.V6}))
	}
	return rrs
}

// HintsText serializes the hints in master-file form.
func HintsText() string {
	z := zone.New(dnswire.Root)
	for _, rr := range Hints() {
		_ = z.Add(rr)
	}
	return zone.Text(z)
}

// addrEpochs returns the address-generation epochs for each of a TLD's
// nameserver hosts at a date. Static TLDs use epoch 0 for every host;
// rotating TLDs advance each host's epoch on a staggered 28-day schedule;
// churning TLDs bump every host once a year on ChurnDay.
func addrEpochs(t TLDInfo, nsCount int, at time.Time) []int64 {
	epochs := make([]int64, nsCount)
	switch {
	case t.Rotating:
		days := at.Unix() / 86400
		for i := range epochs {
			epochs[i] = (days + int64(i)*7) / 28
		}
	case t.ChurnDay > 0:
		year := int64(at.Year())
		if at.YearDay() < t.ChurnDay {
			year--
		}
		for i := range epochs {
			epochs[i] = year
		}
	}
	return epochs
}

// nsHostCount derives a TLD's nameserver count (2–9, averaging ~5.5)
// from its name.
func nsHostCount(name dnswire.Name) int {
	return 2 + int(hash64("nscount", string(name))%8)
}

// nsHost names the i-th nameserver of a TLD. Most TLDs — as in the real
// root zone, where a few registry back-ends (Afilias, Neustar,
// CentralNic, Verisign) serve hundreds of TLDs — use hosts under a shared
// operator domain, so glue is heavily deduplicated; the rest host their
// servers in-bailiwick under nic.<tld>. Rotating and churning TLDs always
// stay in-bailiwick so their renumbering cannot leak into other TLDs
// through shared hosts.
func nsHost(t TLDInfo, i int) dnswire.Name {
	if !t.Rotating && t.ChurnDay == 0 && hash64("oob", string(t.Name))%10 < 6 {
		op := hash64("operator", string(t.Name)) % 20
		return dnswire.Name(fmt.Sprintf("ns%d.operator%02d.registry-ops.net.", i, op))
	}
	return dnswire.Name(fmt.Sprintf("ns%d.nic.%s", i, t.Name))
}

// v4For derives a deterministic public-looking IPv4 address for a host at
// an address epoch.
func v4For(host dnswire.Name, epoch int64) netip.Addr {
	h := hash64("v4", string(host), fmt.Sprint(epoch))
	return netip.AddrFrom4([4]byte{
		byte(100 + h%100), // 100–199, avoids reserved low ranges
		byte(h >> 8),
		byte(h >> 16),
		byte(1 + (h>>24)%254),
	})
}

// v6For derives a deterministic IPv6 address for a host at an epoch.
func v6For(host dnswire.Name, epoch int64) netip.Addr {
	h := hash64("v6", string(host), fmt.Sprint(epoch))
	var a [16]byte
	a[0], a[1] = 0x20, 0x01 // 2001::/16
	for i := 2; i < 16; i++ {
		a[i] = byte(h >> ((i % 8) * 8))
	}
	return netip.AddrFrom16(a)
}

// hasAAAA reports whether a host publishes an IPv6 address (~70 % do).
func hasAAAA(host dnswire.Name) bool {
	return hash64("hasaaaa", string(host))%10 < 7
}

// hasDS reports whether a TLD is DNSSEC-signed (~90 % are).
func hasDS(name dnswire.Name) bool {
	return hash64("hasds", string(name))%10 < 9
}

// TLDRecords generates the root-zone records for one TLD at a date:
// its NS set, glue addresses, and DS record.
func TLDRecords(t TLDInfo, at time.Time) []dnswire.RR {
	n := nsHostCount(t.Name)
	epochs := addrEpochs(t, n, at)
	var rrs []dnswire.RR
	seenHost := make(map[dnswire.Name]bool)
	for i := 0; i < n; i++ {
		host := nsHost(t, i)
		rrs = append(rrs, dnswire.NewRR(t.Name, TTLDelegation, dnswire.NS{Host: host}))
		if seenHost[host] {
			continue
		}
		seenHost[host] = true
		rrs = append(rrs, dnswire.NewRR(host, TTLDelegation, dnswire.A{Addr: v4For(host, epochs[i])}))
		if hasAAAA(host) {
			rrs = append(rrs, dnswire.NewRR(host, TTLDelegation, dnswire.AAAA{Addr: v6For(host, epochs[i])}))
		}
	}
	if hasDS(t.Name) {
		h := hash64("dsdigest", string(t.Name))
		digest := make([]byte, 32)
		for i := range digest {
			digest[i] = byte(h >> ((i % 8) * 8))
		}
		rrs = append(rrs, dnswire.NewRR(t.Name, TTLDS, dnswire.DS{
			KeyTag:     uint16(h),
			Algorithm:  dnswire.AlgEd25519,
			DigestType: 2,
			Digest:     digest,
		}))
	}
	return rrs
}

// Build synthesizes the (unsigned) root zone as of a date.
func Build(at time.Time) (*zone.Zone, error) {
	z := zone.New(dnswire.Root)
	if err := z.Add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{
		MName:   "a.root-servers.net.",
		RName:   "nstld.verisign-grs.com.",
		Serial:  SerialFor(at),
		Refresh: 1800,
		Retry:   900,
		Expire:  604800,
		Minimum: 86400,
	})); err != nil {
		return nil, err
	}
	for _, rl := range RootLetters() {
		if err := z.Add(dnswire.NewRR(dnswire.Root, TTLApexNS, dnswire.NS{Host: rl.Host})); err != nil {
			return nil, err
		}
		if err := z.Add(dnswire.NewRR(rl.Host, TTLApexNS, dnswire.A{Addr: rl.V4})); err != nil {
			return nil, err
		}
		if err := z.Add(dnswire.NewRR(rl.Host, TTLApexNS, dnswire.AAAA{Addr: rl.V6})); err != nil {
			return nil, err
		}
	}
	for _, t := range TLDsAt(at) {
		for _, rr := range TLDRecords(t, at) {
			if err := z.Add(rr); err != nil {
				return nil, err
			}
		}
	}
	return z, nil
}
