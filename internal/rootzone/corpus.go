package rootzone

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"rootless/internal/dnswire"
)

// Category classifies a TLD in the corpus.
type Category int

// TLD categories.
const (
	CategoryLegacy  Category = iota // original gTLDs (com, net, org, ...)
	CategoryCC                      // country codes
	CategoryNewGTLD                 // 2013+ new-gTLD program
	CategoryIDN                     // internationalized (xn--) TLDs
)

func (c Category) String() string {
	switch c {
	case CategoryLegacy:
		return "legacy"
	case CategoryCC:
		return "cc"
	case CategoryNewGTLD:
		return "new-gtld"
	case CategoryIDN:
		return "idn"
	}
	return "unknown"
}

// TLDInfo describes one TLD in the corpus.
type TLDInfo struct {
	Name     dnswire.Name
	Category Category
	Added    time.Time  // date the TLD entered the root zone
	Removed  *time.Time // date it left, if ever
	// Rotating marks the five NeuStar-style TLDs whose nameserver
	// addresses rotate on a schedule (§5.2).
	Rotating bool
	// ChurnDay, if non-zero, is the day-of-year on which the TLD
	// renumbers its entire NS set annually — the slow churn that makes
	// ~3% of TLDs unreachable from a year-old zone (§5.2). Churn days
	// avoid April so that any single April is churn-free, matching the
	// paper's April 2019 snapshot analysis.
	ChurnDay int
}

var legacyTLDs = []string{
	"com", "net", "org", "edu", "gov", "mil", "int", "arpa",
	"biz", "info", "name", "pro", "aero", "coop", "museum",
	"jobs", "mobi", "travel", "cat", "tel", "asia", "post", "xxx",
}

var ccTLDs = []string{
	"ac", "ad", "ae", "af", "ag", "ai", "al", "am", "ao", "aq", "ar", "as",
	"at", "au", "aw", "ax", "az", "ba", "bb", "bd", "be", "bf", "bg", "bh",
	"bi", "bj", "bm", "bn", "bo", "br", "bs", "bt", "bw", "by", "bz", "ca",
	"cc", "cd", "cf", "cg", "ch", "ci", "ck", "cl", "cm", "cn", "co", "cr",
	"cu", "cv", "cw", "cx", "cy", "cz", "de", "dj", "dk", "dm", "do", "dz",
	"ec", "ee", "eg", "er", "es", "et", "eu", "fi", "fj", "fk", "fm", "fo",
	"fr", "ga", "gd", "ge", "gf", "gg", "gh", "gi", "gl", "gm", "gn", "gp",
	"gq", "gr", "gs", "gt", "gu", "gw", "gy", "hk", "hm", "hn", "hr", "ht",
	"hu", "id", "ie", "il", "im", "in", "io", "iq", "ir", "is", "it", "je",
	"jm", "jo", "jp", "ke", "kg", "kh", "ki", "km", "kn", "kp", "kr", "kw",
	"ky", "kz", "la", "lb", "lc", "li", "lk", "lr", "ls", "lt", "lu", "lv",
	"ly", "ma", "mc", "md", "me", "mg", "mh", "mk", "ml", "mm", "mn", "mo",
	"mp", "mq", "mr", "ms", "mt", "mu", "mv", "mw", "mx", "my", "mz", "na",
	"nc", "ne", "nf", "ng", "ni", "nl", "no", "np", "nr", "nu", "nz", "om",
	"pa", "pe", "pf", "pg", "ph", "pk", "pl", "pm", "pn", "pr", "ps", "pt",
	"pw", "py", "qa", "re", "ro", "rs", "ru", "rw", "sa", "sb", "sc", "sd",
	"se", "sg", "sh", "si", "sk", "sl", "sm", "sn", "so", "sr", "ss", "st",
	"sv", "sx", "sy", "sz", "tc", "td", "tf", "tg", "th", "tj", "tk", "tl",
	"tm", "tn", "to", "tr", "tt", "tv", "tw", "tz", "ua", "ug", "uk", "us",
	"uy", "uz", "va", "vc", "ve", "vg", "vi", "vn", "vu", "wf", "ws", "ye",
	"yt", "za", "zm", "zw",
}

// notableNewGTLDs are real new-gTLD names placed early in the corpus so
// workloads can reference familiar strings. "llc" carries its real
// addition date (2018-02-23), which the §5.3 experiment depends on.
var notableNewGTLDs = []string{
	"xyz", "top", "club", "online", "site", "shop", "app", "dev", "blog",
	"cloud", "store", "tech", "space", "live", "fun", "email", "news",
	"agency", "digital", "guru", "today", "world", "life", "media",
	"network", "systems", "solutions", "ventures", "capital", "partners",
}

// syllables drive the synthetic new-gTLD name generator.
var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "ca", "ce", "co", "da", "de", "di", "do",
	"fa", "fe", "fi", "fo", "ga", "ge", "go", "ha", "he", "hi", "ho", "ka",
	"ke", "ki", "ko", "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo",
	"na", "ne", "ni", "no", "pa", "pe", "pi", "po", "ra", "re", "ri", "ro",
	"sa", "se", "si", "so", "ta", "te", "ti", "to", "va", "ve", "vi", "vo",
	"za", "zo", "zu", "ny", "ster", "ton", "ville", "land", "zone", "mark",
}

// hash64 is the deterministic per-name hash all modeled attributes key off.
func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// llcAdded is the real addition date of the .llc TLD.
var llcAdded = date(2018, time.February, 23)

var (
	corpusOnce sync.Once
	corpus     []TLDInfo
)

// Corpus returns the full dated TLD corpus, built once. TLDs are ordered
// by addition date.
func Corpus() []TLDInfo {
	corpusOnce.Do(buildCorpus)
	return corpus
}

func buildCorpus() {
	epoch := date(2000, time.January, 1)
	var all []TLDInfo
	seen := make(map[string]bool)
	addName := func(name string, cat Category, added time.Time) {
		if seen[name] {
			return
		}
		seen[name] = true
		all = append(all, TLDInfo{
			Name:     dnswire.Name(name + "."),
			Category: cat,
			Added:    added,
		})
	}

	for _, s := range legacyTLDs {
		addName(s, CategoryLegacy, epoch)
	}
	for _, s := range ccTLDs {
		addName(s, CategoryCC, epoch)
	}
	// 2009–2013 trickle of IDN ccTLDs brings the count from 280 to 317,
	// tracking the growth model month by month so the paper's anchor
	// (317 TLDs on June 15, 2013) lands exactly.
	idn := 0
	for at := date(2009, time.June, 15); at.Before(date(2014, time.January, 1)); at = at.AddDate(0, 1, 0) {
		for len(all) < TLDCountModel(at) {
			addName(fmt.Sprintf("xn--idn%02d", idn), CategoryIDN, at)
			idn++
		}
	}

	// New-gTLD program: generate enough names to cover peak count plus
	// removals, assign addition dates by inverting the growth curve.
	peak := 1600
	var newNames []string
	newNames = append(newNames, notableNewGTLDs...)
	newNames = append(newNames, "llc") // dated specially below
	for i := 0; len(newNames) < peak; i++ {
		h := hash64("newgtld", fmt.Sprint(i))
		s := syllables[h%uint64(len(syllables))] +
			syllables[(h>>8)%uint64(len(syllables))] +
			syllables[(h>>16)%uint64(len(syllables))]
		if !seen[s] && !contains(newNames, s) {
			newNames = append(newNames, s)
		}
	}
	// Every ~25th new gTLD is an IDN.
	program := date(2014, time.January, 15)
	end := date(2019, time.December, 1)
	idx := 0
	for at := program; at.Before(end); at = at.AddDate(0, 0, 7) {
		want := TLDCountModel(at)
		for len(all)-removedBy(all, at) < want && idx < len(newNames) {
			name := newNames[idx]
			cat := CategoryNewGTLD
			if idx%25 == 24 {
				name = "xn--" + name
				cat = CategoryIDN
			}
			if name == "llc" {
				// Hold llc for its true date.
				idx++
				continue
			}
			addName(name, cat, at)
			idx++
		}
	}
	addName("llc", CategoryNewGTLD, llcAdded)

	// Removals: the plateau after early 2018 shrinks slightly; retire a
	// handful of 2015-vintage names, including exactly one during April
	// 2019 (the paper observes one deletion that month).
	removedCount := 0
	wantRemoved := 16
	removalClock := date(2018, time.March, 10)
	for i := range all {
		if removedCount >= wantRemoved {
			break
		}
		t := &all[i]
		if t.Category != CategoryNewGTLD || t.Name == "llc." {
			continue
		}
		if t.Added.Year() != 2015 {
			continue
		}
		if hash64("removed", string(t.Name))%7 != 0 {
			continue
		}
		rm := removalClock
		removalClock = removalClock.AddDate(0, 1, 3)
		if removedCount == 12 {
			rm = date(2019, time.April, 17) // the April 2019 deletion
		}
		t.Removed = &rm
		removedCount++
	}

	// Mark the five rotating-NS TLDs: stable new gTLDs present from 2014.
	rotated := 0
	for i := range all {
		t := &all[i]
		if t.Category == CategoryNewGTLD && t.Removed == nil &&
			t.Added.Year() == 2014 && hash64("rotate", string(t.Name))%11 == 0 {
			t.Rotating = true
			rotated++
			if rotated == 5 {
				break
			}
		}
	}

	// Annual-churn TLDs: ~3% of the steady-state population renumbers its
	// full NS set once a year on a day outside April.
	for i := range all {
		t := &all[i]
		if t.Rotating || t.Removed != nil {
			continue
		}
		h := hash64("churn", string(t.Name))
		if h%33 == 0 { // ~3%
			day := int(h>>8) % 300
			// Map into day-of-year ranges that skip April (days 91–120).
			if day >= 90 {
				day += 31
			}
			t.ChurnDay = day + 1
		}
	}

	sort.SliceStable(all, func(i, j int) bool { return all[i].Added.Before(all[j].Added) })
	corpus = all
}

func removedBy(all []TLDInfo, at time.Time) int {
	n := 0
	for i := range all {
		if all[i].Removed != nil && all[i].Removed.Before(at) {
			n++
		}
	}
	return n
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TLDsAt returns the TLDs present in the root zone on a date, ordered by
// addition date.
func TLDsAt(at time.Time) []TLDInfo {
	var out []TLDInfo
	for _, t := range Corpus() {
		if t.Added.After(at) {
			continue
		}
		if t.Removed != nil && !t.Removed.After(at) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Find returns the corpus entry for a TLD name.
func Find(name dnswire.Name) (TLDInfo, bool) {
	for _, t := range Corpus() {
		if t.Name == name {
			return t, true
		}
	}
	return TLDInfo{}, false
}
