// Package rootzone synthesizes root zones. It models the real root zone's
// composition and history closely enough to drive every experiment in the
// paper: a TLD corpus with dated additions and removals reproducing the
// growth curve of Figure 1 (317 TLDs in June 2013 growing past 1,500 by
// 2017, ~22 K records at steady state), per-TLD NS/glue/DS record sets,
// the 13-letter root hints file, NeuStar-style rotating-nameserver TLDs
// and slow NS-renumbering churn for the §5.2 staleness analysis, and the
// ".llc" late addition for the §5.3 new-TLD-lag analysis.
//
// Everything is deterministic: the same date always yields the same zone.
package rootzone

import (
	"time"
)

// date is a compact constructor for UTC dates.
func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// growthAnchor pins the TLD count at a moment in time. Between anchors the
// count is interpolated linearly; the anchors encode the paper's Figure 1:
// stability through 2013, five-fold growth 2014→2017, then a plateau with
// slight shrinkage.
type growthAnchor struct {
	at    time.Time
	count int
}

var growthAnchors = []growthAnchor{
	{date(2009, time.April, 1), 280},
	{date(2013, time.June, 15), 317},
	{date(2014, time.January, 1), 335},
	{date(2015, time.January, 1), 700},
	{date(2016, time.January, 1), 1100},
	{date(2017, time.June, 15), 1534},
	{date(2018, time.February, 1), 1543},
	{date(2019, time.April, 1), 1532},
	{date(2020, time.June, 1), 1527},
}

// TLDCountModel returns the modeled number of TLDs at a date, per the
// Figure 1 growth curve. Dates outside the modeled window clamp to the
// nearest anchor.
func TLDCountModel(at time.Time) int {
	if !at.After(growthAnchors[0].at) {
		return growthAnchors[0].count
	}
	last := growthAnchors[len(growthAnchors)-1]
	if !at.Before(last.at) {
		return last.count
	}
	for i := 1; i < len(growthAnchors); i++ {
		a, b := growthAnchors[i-1], growthAnchors[i]
		if at.Before(b.at) {
			span := b.at.Sub(a.at)
			into := at.Sub(a.at)
			return a.count + int(float64(b.count-a.count)*float64(into)/float64(span))
		}
	}
	return last.count
}

// SerialFor derives the zone's SOA serial for a date: YYYYMMDD00, the
// convention the real root zone uses.
func SerialFor(at time.Time) uint32 {
	return uint32(at.Year()*1000000 + int(at.Month())*10000 + at.Day()*100)
}
