package rootzone

import (
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/zone"
)

func TestTLDCountModelAnchors(t *testing.T) {
	cases := []struct {
		at   time.Time
		want int
	}{
		{date(2013, time.June, 15), 317},
		{date(2017, time.June, 15), 1534},
		{date(2008, time.January, 1), 280},  // clamps low
		{date(2025, time.January, 1), 1527}, // clamps high
	}
	for _, c := range cases {
		if got := TLDCountModel(c.at); got != c.want {
			t.Errorf("TLDCountModel(%s) = %d, want %d", c.at.Format("2006-01-02"), got, c.want)
		}
	}
	// Monotone growth through the expansion era.
	prev := 0
	for y := 2014; y <= 2017; y++ {
		got := TLDCountModel(date(y, time.June, 1))
		if got < prev {
			t.Errorf("growth not monotone at %d: %d < %d", y, got, prev)
		}
		prev = got
	}
}

func TestCorpusMatchesModel(t *testing.T) {
	for _, at := range []time.Time{
		date(2013, time.June, 15),
		date(2016, time.January, 15),
		date(2018, time.April, 11),
		date(2019, time.April, 1),
	} {
		model := TLDCountModel(at)
		got := len(TLDsAt(at))
		diff := got - model
		if diff < -20 || diff > 20 {
			t.Errorf("TLDsAt(%s) = %d, model %d (diff %d)", at.Format("2006-01-02"), got, model, diff)
		}
	}
}

func TestCorpusSpecialTLDs(t *testing.T) {
	llc, ok := Find("llc.")
	if !ok {
		t.Fatal("llc. missing from corpus")
	}
	if !llc.Added.Equal(llcAdded) {
		t.Errorf("llc added %s, want 2018-02-23", llc.Added)
	}
	// llc must be absent before its date and present at DITL 2018.
	for _, ti := range TLDsAt(date(2018, time.January, 1)) {
		if ti.Name == "llc." {
			t.Error("llc present before addition date")
		}
	}
	found := false
	for _, ti := range TLDsAt(date(2018, time.April, 11)) {
		if ti.Name == "llc." {
			found = true
		}
	}
	if !found {
		t.Error("llc absent at DITL 2018 date")
	}
	// com must exist since forever.
	if _, ok := Find("com."); !ok {
		t.Error("com. missing")
	}
}

func TestCorpusRotatingAndChurn(t *testing.T) {
	rotating, churning := 0, 0
	for _, ti := range Corpus() {
		if ti.Rotating {
			rotating++
			if ti.ChurnDay != 0 {
				t.Error("rotating TLD also churns")
			}
		}
		if ti.ChurnDay > 0 {
			churning++
			// Churn day must fall outside April (days 91–120).
			if ti.ChurnDay >= 91 && ti.ChurnDay <= 120 {
				t.Errorf("%s churn day %d falls in April", ti.Name, ti.ChurnDay)
			}
		}
	}
	if rotating != 5 {
		t.Errorf("rotating TLDs = %d, want 5", rotating)
	}
	pop := len(TLDsAt(date(2019, time.April, 1)))
	share := float64(churning) / float64(pop)
	if share < 0.015 || share > 0.06 {
		t.Errorf("churning share = %.3f (%d/%d), want ~3%%", share, churning, pop)
	}
}

func TestCorpusOneRemovalInApril2019(t *testing.T) {
	n := 0
	for _, ti := range Corpus() {
		if ti.Removed != nil && ti.Removed.Year() == 2019 && ti.Removed.Month() == time.April {
			n++
		}
	}
	if n != 1 {
		t.Errorf("April 2019 removals = %d, want 1", n)
	}
}

func TestHints(t *testing.T) {
	rrs := Hints()
	if len(rrs) != 39 {
		t.Fatalf("hints records = %d, want 39", len(rrs))
	}
	ns, a, aaaa := 0, 0, 0
	for _, rr := range rrs {
		if rr.TTL != TTLHints {
			t.Errorf("hint TTL = %d, want %d", rr.TTL, TTLHints)
		}
		switch rr.Type {
		case dnswire.TypeNS:
			ns++
		case dnswire.TypeA:
			a++
		case dnswire.TypeAAAA:
			aaaa++
		}
	}
	if ns != 13 || a != 13 || aaaa != 13 {
		t.Errorf("hints NS/A/AAAA = %d/%d/%d, want 13 each", ns, a, aaaa)
	}
	text := HintsText()
	// The paper calls the hints file "roughly 3KB".
	if len(text) < 1500 || len(text) > 5000 {
		t.Errorf("hints file size = %d bytes, want roughly 3KB", len(text))
	}
}

func TestRootLetters(t *testing.T) {
	letters := RootLetters()
	if len(letters) != 13 {
		t.Fatalf("letters = %d", len(letters))
	}
	if letters[0].Host != "a.root-servers.net." || letters[12].Host != "m.root-servers.net." {
		t.Error("letter hosts wrong")
	}
	seen := make(map[string]bool)
	for _, rl := range letters {
		if seen[rl.V4.String()] {
			t.Errorf("duplicate v4 %s", rl.V4)
		}
		seen[rl.V4.String()] = true
		if !rl.V4.Is4() || !rl.V6.Is6() {
			t.Error("address families wrong")
		}
	}
}

func TestBuildZoneShape(t *testing.T) {
	at := date(2019, time.June, 7)
	z, err := Build(at)
	if err != nil {
		t.Fatal(err)
	}
	// The unsigned zone carries ~16K records; DNSSEC (NSEC chain and
	// RRSIGs) brings the published zone to the paper's ~22K records and
	// ~14K RRsets — asserted in the experiments package, which owns the
	// signing config.
	n := z.Len()
	if n < 13000 || n > 19000 {
		t.Errorf("record count = %d, want ~16K unsigned", n)
	}
	rrsets := z.RRsetCount()
	if rrsets < 7000 || rrsets > 12000 {
		t.Errorf("RRset count = %d, want ~9K unsigned", rrsets)
	}
	dels := len(z.Delegations())
	model := TLDCountModel(at)
	if dels < model-20 || dels > model+20 {
		t.Errorf("delegations = %d, model %d", dels, model)
	}
	if z.Serial() != 2019060700 {
		t.Errorf("serial = %d", z.Serial())
	}
	// The unsigned zone compresses heavily (the paper's ~1.1 MB figure is
	// for the signed zone, whose RRSIGs are incompressible; the signed
	// size is checked in the experiments package). Sanity-check scale.
	blob, err := zone.Compress(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 100*1024 || len(blob) > 2*1024*1024 {
		t.Errorf("compressed size = %d bytes, out of expected scale", len(blob))
	}
}

func TestBuildDeterministic(t *testing.T) {
	at := date(2018, time.April, 11)
	z1, err := Build(at)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := Build(at)
	if err != nil {
		t.Fatal(err)
	}
	if zone.Text(z1) != zone.Text(z2) {
		t.Error("Build is not deterministic")
	}
}

func TestBuildQueryable(t *testing.T) {
	z, err := Build(date(2018, time.April, 11))
	if err != nil {
		t.Fatal(err)
	}
	ans := z.Query("www.example.com.", dnswire.TypeA)
	if ans.Authoritative || len(ans.Authority) == 0 {
		t.Error("com. referral failed")
	}
	ans = z.Query("www.example.bogus-tld-xyz.", dnswire.TypeA)
	if ans.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("bogus TLD rcode = %v", ans.Rcode)
	}
}

func TestRotationOverlapWindows(t *testing.T) {
	// Find a rotating TLD and verify the §5.2 reachability property:
	// a zone ≤14 days stale shares at least one NS address with the
	// current zone; a zone 30+ days stale shares none.
	var rot TLDInfo
	for _, ti := range Corpus() {
		if ti.Rotating {
			rot = ti
			break
		}
	}
	if rot.Name == "" {
		t.Fatal("no rotating TLD")
	}
	base := date(2019, time.April, 1)
	addrsAt := func(at time.Time) map[string]bool {
		m := make(map[string]bool)
		for _, rr := range TLDRecords(rot, at) {
			if rr.Type == dnswire.TypeA || rr.Type == dnswire.TypeAAAA {
				m[rr.Data.String()] = true
			}
		}
		return m
	}
	overlap := func(a, b map[string]bool) int {
		n := 0
		for k := range a {
			if b[k] {
				n++
			}
		}
		return n
	}
	cur := addrsAt(base)
	for _, staleDays := range []int{1, 7, 14} {
		old := addrsAt(base.AddDate(0, 0, -staleDays))
		if overlap(cur, old) == 0 {
			t.Errorf("%d-day-old zone shares no address for rotating TLD", staleDays)
		}
	}
	old := addrsAt(base.AddDate(0, 0, -30))
	if overlap(cur, old) != 0 {
		t.Errorf("30-day-old zone still shares addresses for rotating TLD")
	}
}

func TestChurnWithinAprilStable(t *testing.T) {
	// Every non-rotating TLD must keep all NS addresses constant across
	// April 2019, matching the paper's snapshot analysis.
	a1 := date(2019, time.April, 1)
	a30 := date(2019, time.April, 30)
	for _, ti := range TLDsAt(a30) {
		if ti.Rotating {
			continue
		}
		r1 := TLDRecords(ti, a1)
		r2 := TLDRecords(ti, a30)
		if len(r1) != len(r2) {
			t.Fatalf("%s record count changed in April", ti.Name)
		}
		for i := range r1 {
			if r1[i].String() != r2[i].String() {
				t.Fatalf("%s changed in April: %s -> %s", ti.Name, r1[i], r2[i])
			}
		}
	}
}

func TestChurnAcrossYear(t *testing.T) {
	// A churning TLD must renumber between April 2018 and April 2019.
	var churn TLDInfo
	for _, ti := range Corpus() {
		if ti.ChurnDay > 0 && !ti.Added.After(date(2018, time.January, 1)) && ti.Removed == nil {
			churn = ti
			break
		}
	}
	if churn.Name == "" {
		t.Fatal("no churning TLD present in 2018")
	}
	r1 := TLDRecords(churn, date(2018, time.April, 1))
	r2 := TLDRecords(churn, date(2019, time.April, 1))
	same := 0
	for i := range r1 {
		if r1[i].String() == r2[i].String() {
			same++
		}
	}
	// NS and DS records stay; A/AAAA must all change.
	for i := range r1 {
		if (r1[i].Type == dnswire.TypeA || r1[i].Type == dnswire.TypeAAAA) &&
			r1[i].String() == r2[i].String() {
			t.Errorf("churning TLD %s kept address %s across a year", churn.Name, r1[i])
		}
	}
}
