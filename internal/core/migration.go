package core

import (
	"math"
	"time"
)

// MigrationConfig parameterises the §3 deployment model: resolvers adopt
// the local root zone independently (no flag day), root traffic drains in
// proportion, and the operator community rolls back instances as load
// falls.
type MigrationConfig struct {
	// Resolvers is the worldwide recursive resolver population.
	Resolvers int
	// RootQPS is the aggregate query rate the roots carry before any
	// adoption (the paper's DITL-scale ~66K q/s × 13 letters).
	RootQPS float64
	// Midpoint is when half the population has adopted.
	Midpoint time.Time
	// Steepness is the logistic growth rate per year (default 1.5).
	Steepness float64
	// InitialInstances is the root deployment at the start (~1000).
	InitialInstances int
	// MinInstances is the floor kept during the long tail (operators
	// retain a skeleton service until the end; default 50).
	MinInstances int
	// CapacityQPS is the per-instance load target used when shrinking
	// the fleet (default: initial load spread over initial instances).
	CapacityQPS float64
}

// MigrationPoint is the modeled state at one moment.
type MigrationPoint struct {
	Time time.Time
	// AdoptedShare is the fraction of resolvers using a local root.
	AdoptedShare float64
	// RootQPS is the remaining aggregate root traffic.
	RootQPS float64
	// InstancesNeeded is the root fleet still required for that load.
	InstancesNeeded int
	// DistributionMBPerDay is the aggregate mirror traffic for serving
	// adopted resolvers their ~1.1 MB zone every two days.
	DistributionMBPerDay float64
}

// Migration evaluates the adoption model.
type Migration struct {
	cfg MigrationConfig
}

// NewMigration applies defaults.
func NewMigration(cfg MigrationConfig) *Migration {
	if cfg.Resolvers == 0 {
		cfg.Resolvers = 4_100_000
	}
	if cfg.RootQPS == 0 {
		cfg.RootQPS = 66_000 * 13 // DITL j-root scaled to all letters
	}
	if cfg.Steepness == 0 {
		cfg.Steepness = 1.5
	}
	if cfg.InitialInstances == 0 {
		cfg.InitialInstances = 1000
	}
	if cfg.MinInstances == 0 {
		cfg.MinInstances = 50
	}
	if cfg.CapacityQPS == 0 {
		cfg.CapacityQPS = cfg.RootQPS / float64(cfg.InitialInstances)
	}
	if cfg.Midpoint.IsZero() {
		cfg.Midpoint = time.Date(2023, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Migration{cfg: cfg}
}

// AdoptedShare returns the logistic adoption fraction at a time.
func (m *Migration) AdoptedShare(at time.Time) float64 {
	years := at.Sub(m.cfg.Midpoint).Hours() / (24 * 365.25)
	return 1 / (1 + math.Exp(-m.cfg.Steepness*years))
}

// zoneMBCompressed is the paper's compressed root zone size.
const zoneMBCompressed = 1.1

// At evaluates the model at a time.
func (m *Migration) At(at time.Time) MigrationPoint {
	share := m.AdoptedShare(at)
	qps := m.cfg.RootQPS * (1 - share)
	needed := int(math.Ceil(qps / m.cfg.CapacityQPS))
	if needed < m.cfg.MinInstances && share < 0.999 {
		needed = m.cfg.MinInstances
	}
	if share >= 0.999 {
		// The end state the paper argues for: no root nameservers.
		needed = 0
	}
	adopted := float64(m.cfg.Resolvers) * share
	// Each adopted resolver fetches ~1.1 MB every two days.
	distMBPerDay := adopted * zoneMBCompressed / 2
	return MigrationPoint{
		Time:                 at,
		AdoptedShare:         share,
		RootQPS:              qps,
		InstancesNeeded:      needed,
		DistributionMBPerDay: distMBPerDay,
	}
}

// Series samples the model monthly across [from, to].
func (m *Migration) Series(from, to time.Time) []MigrationPoint {
	var out []MigrationPoint
	for at := from; !at.After(to); at = at.AddDate(0, 1, 0) {
		out = append(out, m.At(at))
	}
	return out
}
