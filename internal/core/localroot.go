// Package core implements the paper's proposal: eliminate the root
// nameservers by giving every recursive resolver a verified local copy of
// the root zone.
//
// LocalRoot is the orchestrator a resolver operator runs. It obtains the
// root zone out of band through any dist.Source (HTTP mirror, AXFR,
// rsync-delta, peer-to-peer), verifies it cryptographically (the detached
// whole-file signature by default, or the full DNSSEC per-RRset chain),
// installs it into the serving path for the chosen root mode (cache
// preload, per-transaction lookaside, or an RFC 7706-style loopback
// authoritative server), and keeps it fresh on the paper's TTL-derived
// schedule — refresh at X+42 h with retries through hour 48, after which
// the copy is stale and lookups would be impacted.
//
// Migration models §3's deployment story: resolvers adopt local root
// independently, root traffic drains, and the root server infrastructure
// can be decommissioned gradually.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rootless/internal/authserver"
	"rootless/internal/dist"
	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/resolver"
	"rootless/internal/zone"
)

// VerifyMode selects how fetched zones are validated.
type VerifyMode int

// Verification modes.
const (
	// VerifyDetached checks the single whole-file signature — the
	// paper's "sign the entire root zone file" fast path.
	VerifyDetached VerifyMode = iota
	// VerifyFullDNSSEC validates every RRset signature against the DS
	// trust anchor plus the zone digest.
	VerifyFullDNSSEC
	// VerifyBoth requires both to pass.
	VerifyBoth
)

// Config configures a LocalRoot.
type Config struct {
	// Source supplies root zone bundles; required.
	Source dist.Source
	// Fallbacks are alternative bundle sources (gossip peers, secondary
	// mirrors) tried in order when Source fails. Every fallback's bundle
	// passes the same verification pipeline as the primary's.
	Fallbacks []dist.Source
	// KSK is the publisher's key-signing key (detached verification).
	KSK dnswire.DNSKEY
	// Anchor is the DS trust anchor (full DNSSEC verification).
	Anchor dnswire.DS
	// Verify selects the validation mode (default VerifyDetached).
	Verify VerifyMode

	// Resolver, when set, receives verified zones via SetLocalZone —
	// used with resolver.RootModePreload and RootModeLookaside.
	Resolver *resolver.Resolver
	// AuthServer, when set, receives verified zones via SetZone — the
	// RFC 7706 loopback instance for resolver.RootModeLocalAuth.
	AuthServer *authserver.Server

	// Refresh/Retry/Expiry tune the schedule; zero values take the
	// paper's defaults (42 h / 1 h / 48 h). Failed refreshes back off
	// with decorrelated jitter up to RetryCap (default Expiry); Seed
	// makes that jitter deterministic in experiments.
	Refresh  time.Duration
	Retry    time.Duration
	RetryCap time.Duration
	Expiry   time.Duration
	Seed     int64

	// AdditionsSource, when set, is polled between full refreshes for
	// the §5.3 "recent additions" supplement, so TLDs added to the root
	// after our last fetch become resolvable without waiting for the
	// next full refresh (or for a longer TTL to run out).
	AdditionsSource AdditionsSource
	// AdditionsInterval is the poll cadence (default 6 h).
	AdditionsInterval time.Duration

	// Clock supplies time; nil means time.Now.
	Clock func() time.Time
}

// AdditionsSource serves recent-additions supplements; implemented by
// dist.HTTPClient.
type AdditionsSource interface {
	FetchAdditions(ctx context.Context, fromSerial uint32) (*dist.AdditionsBundle, error)
}

// LocalRoot keeps one resolver's local root zone fetched, verified,
// installed and fresh.
type LocalRoot struct {
	cfg       Config
	refresher *dist.Refresher
	installed int64
	current   *zone.Zone

	// Additions state.
	baseSerial    uint32 // serial of the last full fetch
	lastAdditions time.Time
	additionsOK   int64
	additionsErr  int64
}

// Errors.
var (
	ErrNoTarget = errors.New("core: config needs a Resolver or AuthServer to install into")
	ErrNoSource = errors.New("core: config needs a Source")
)

// New validates the configuration and builds the LocalRoot.
func New(cfg Config) (*LocalRoot, error) {
	if cfg.Source == nil {
		return nil, ErrNoSource
	}
	if cfg.Resolver == nil && cfg.AuthServer == nil {
		return nil, ErrNoTarget
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	lr := &LocalRoot{cfg: cfg}

	// The refresher's Source wrapper layers the selected verification on
	// top of the raw fetch; dist.Refresher itself always checks the
	// detached signature, so full-DNSSEC modes verify here first.
	var fallbacks []dist.Source
	for _, src := range cfg.Fallbacks {
		fallbacks = append(fallbacks, lr.verifying(src))
	}
	r, err := dist.NewRefresher(dist.RefresherConfig{
		Source:    lr.verifying(cfg.Source),
		KSK:       cfg.KSK,
		Install:   lr.install,
		Refresh:   cfg.Refresh,
		Retry:     cfg.Retry,
		RetryCap:  cfg.RetryCap,
		Expiry:    cfg.Expiry,
		Fallbacks: fallbacks,
		Seed:      cfg.Seed,
		Clock:     cfg.Clock,
	})
	if err != nil {
		return nil, err
	}
	lr.refresher = r
	return lr, nil
}

// verifying wraps a source with full-DNSSEC validation when configured;
// detached-signature validation always runs in the refresher, and every
// source — primary or fallback — goes through the same pipeline.
func (lr *LocalRoot) verifying(src dist.Source) dist.Source {
	return dist.SourceFunc(func(ctx context.Context) (*dist.Bundle, error) {
		b, err := src.Fetch(ctx)
		if err != nil {
			return nil, err
		}
		if lr.cfg.Verify == VerifyFullDNSSEC || lr.cfg.Verify == VerifyBoth {
			if _, err := b.VerifyFull(lr.cfg.Anchor, lr.cfg.Clock()); err != nil {
				return nil, fmt.Errorf("core: full DNSSEC validation: %w", err)
			}
		}
		return b, nil
	})
}

// install pushes a verified zone into the configured serving paths.
func (lr *LocalRoot) install(z *zone.Zone) error {
	if lr.cfg.Resolver != nil {
		lr.cfg.Resolver.SetLocalZone(z)
	}
	if lr.cfg.AuthServer != nil {
		lr.cfg.AuthServer.SetZone(z)
	}
	lr.current = z
	lr.installed++
	return nil
}

// Tick attempts a fetch if one is due; returns true if a new zone was
// installed (by full refresh or by an applied additions supplement).
// Experiments drive this on a virtual clock; daemons use Run.
func (lr *LocalRoot) Tick(ctx context.Context) bool {
	if lr.refresher.Tick(ctx) {
		lr.baseSerial = lr.refresher.State().Serial
		lr.lastAdditions = lr.cfg.Clock()
		return true
	}
	return lr.tickAdditions(ctx)
}

// tickAdditions polls the recent-additions channel when due and applies
// any new-TLD records on top of the installed zone.
func (lr *LocalRoot) tickAdditions(ctx context.Context) bool {
	if lr.cfg.AdditionsSource == nil || lr.current == nil {
		return false
	}
	interval := lr.cfg.AdditionsInterval
	if interval == 0 {
		interval = 6 * time.Hour
	}
	now := lr.cfg.Clock()
	if now.Sub(lr.lastAdditions) < interval {
		return false
	}
	lr.lastAdditions = now
	bundle, err := lr.cfg.AdditionsSource.FetchAdditions(ctx, lr.baseSerial)
	if err != nil {
		lr.additionsErr++
		return false
	}
	if bundle.FromSerial != lr.baseSerial {
		lr.additionsErr++
		return false
	}
	rrs, err := bundle.Verify(lr.cfg.KSK)
	if err != nil {
		lr.additionsErr++
		return false
	}
	if len(rrs) == 0 {
		return false // nothing new; not an install
	}
	patched := lr.current.Clone()
	for _, rr := range rrs {
		if err := patched.Add(rr); err != nil {
			lr.additionsErr++
			return false
		}
	}
	if err := lr.install(patched); err != nil {
		lr.additionsErr++
		return false
	}
	lr.additionsOK++
	return true
}

// AdditionsApplied returns how many additions supplements were installed,
// and how many attempts failed.
func (lr *LocalRoot) AdditionsApplied() (ok, failed int64) {
	return lr.additionsOK, lr.additionsErr
}

// Run drives the refresh loop on wall-clock time until ctx ends.
func (lr *LocalRoot) Run(ctx context.Context) { lr.refresher.Run(ctx) }

// State reports freshness, serial, age, and fetch/failure counts.
func (lr *LocalRoot) State() dist.State { return lr.refresher.State() }

// Zone returns the currently installed zone, or nil before the first
// successful fetch.
func (lr *LocalRoot) Zone() *zone.Zone { return lr.current }

// Healthy reports whether a fresh (unexpired) zone is installed.
func (lr *LocalRoot) Healthy() bool {
	st := lr.refresher.State()
	return st.HaveZone && st.Fresh
}

// Installs returns how many zones have been installed over the lifetime.
func (lr *LocalRoot) Installs() int64 { return lr.installed }

// BuildTrustAnchor is a convenience for operators bootstrapping from a
// signer (tests, examples, and the zone publisher side).
func BuildTrustAnchor(s *dnssec.Signer) (dnswire.DNSKEY, dnswire.DS) {
	return s.KSK.DNSKEY, s.TrustAnchor()
}
