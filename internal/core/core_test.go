package core

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"rootless/internal/anycast"
	"rootless/internal/authserver"
	"rootless/internal/dist"
	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/netsim"
	"rootless/internal/resolver"
	"rootless/internal/rootzone"
	"rootless/internal/zone"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) { return d.r.Read(p) }

type vclock struct{ t time.Time }

func (v *vclock) now() time.Time          { return v.t }
func (v *vclock) advance(d time.Duration) { v.t = v.t.Add(d) }

func signer(t *testing.T) *dnssec.Signer {
	t.Helper()
	s, err := dnssec.NewSigner(dnswire.Root, detRand{rand.New(rand.NewSource(11))})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rootAt(t *testing.T, at time.Time) *zone.Zone {
	t.Helper()
	z, err := rootzone.Build(at)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestLocalRootLifecycle(t *testing.T) {
	s := signer(t)
	clk := &vclock{t: time.Date(2019, time.June, 1, 0, 0, 0, 0, time.UTC)}

	publishDate := clk.t
	source := dist.SourceFunc(func(context.Context) (*dist.Bundle, error) {
		return dist.MakeBundle(rootAt(t, publishDate), s)
	})

	// A lookaside resolver on a tiny simulated network (transport is
	// unused for root consults but required by the resolver).
	net := netsim.New(1, clk.t)
	r := resolver.New(resolver.Config{
		Mode:      resolver.RootModeLookaside,
		Transport: net.Client(anycast.GeoPoint{}),
		Clock:     clk.now,
	})

	lr, err := New(Config{
		Source:   source,
		KSK:      s.KSK.DNSKEY,
		Resolver: r,
		Clock:    clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Healthy() {
		t.Error("healthy before first fetch")
	}
	if !lr.Tick(context.Background()) {
		t.Fatal("bootstrap fetch failed")
	}
	if !lr.Healthy() || lr.Zone() == nil || lr.Installs() != 1 {
		t.Fatalf("state after bootstrap: healthy=%v installs=%d", lr.Healthy(), lr.Installs())
	}

	// The resolver can now answer a bogus TLD from the local zone with
	// zero network traffic.
	res, err := r.Resolve("whatever.not-a-tld-at-all.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain || res.Queries != 0 {
		t.Fatalf("local NXDOMAIN: rcode=%v queries=%d", res.Rcode, res.Queries)
	}

	// Two days later a new serial is published and picked up on schedule.
	publishDate = publishDate.AddDate(0, 0, 2)
	clk.advance(42 * time.Hour)
	if !lr.Tick(context.Background()) {
		t.Fatal("scheduled refresh did not run")
	}
	if lr.State().Serial != rootzone.SerialFor(publishDate) {
		t.Errorf("serial = %d", lr.State().Serial)
	}
}

func TestLocalRootLocalAuthTarget(t *testing.T) {
	s := signer(t)
	clk := &vclock{t: time.Date(2019, time.June, 1, 0, 0, 0, 0, time.UTC)}
	source := dist.SourceFunc(func(context.Context) (*dist.Bundle, error) {
		return dist.MakeBundle(rootAt(t, clk.t), s)
	})
	srv := authserver.New(zone.New(dnswire.Root))
	lr, err := New(Config{Source: source, KSK: s.KSK.DNSKEY, AuthServer: srv, Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Tick(context.Background()) {
		t.Fatal("fetch failed")
	}
	// The loopback server now serves referrals for real TLDs.
	q := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA)
	q.SetEDNS(dnswire.DefaultEDNSSize, false)
	resp := srv.Handle(q, netip.Addr{})
	if len(resp.Authority) == 0 {
		t.Error("loopback server has no delegation for com.")
	}
}

func TestLocalRootFullDNSSECVerify(t *testing.T) {
	s := signer(t)
	clk := &vclock{t: time.Date(2019, time.June, 1, 0, 0, 0, 0, time.UTC)}
	z := rootAt(t, clk.t)
	if err := s.SignZone(z, clk.t); err != nil {
		t.Fatal(err)
	}
	good, err := dist.MakeBundle(z, s)
	if err != nil {
		t.Fatal(err)
	}
	source := dist.SourceFunc(func(context.Context) (*dist.Bundle, error) { return good, nil })
	srv := authserver.New(zone.New(dnswire.Root))
	lr, err := New(Config{
		Source: source, KSK: s.KSK.DNSKEY, Anchor: s.TrustAnchor(),
		Verify: VerifyBoth, AuthServer: srv, Clock: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Tick(context.Background()) {
		t.Fatalf("verified fetch failed: %+v", lr.State().LastErr)
	}

	// An unsigned zone fails full verification even with a valid
	// detached signature.
	unsigned, err := dist.MakeBundle(rootAt(t, clk.t), s)
	if err != nil {
		t.Fatal(err)
	}
	badSource := dist.SourceFunc(func(context.Context) (*dist.Bundle, error) { return unsigned, nil })
	lr2, err := New(Config{
		Source: badSource, KSK: s.KSK.DNSKEY, Anchor: s.TrustAnchor(),
		Verify: VerifyFullDNSSEC, AuthServer: authserver.New(zone.New(dnswire.Root)),
		Clock: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lr2.Tick(context.Background()) {
		t.Error("unsigned zone passed full verification")
	}
}

func TestLocalRootStaleness(t *testing.T) {
	s := signer(t)
	clk := &vclock{t: time.Date(2019, time.June, 1, 0, 0, 0, 0, time.UTC)}
	failing := false
	source := dist.SourceFunc(func(context.Context) (*dist.Bundle, error) {
		if failing {
			return nil, errors.New("all mirrors down")
		}
		return dist.MakeBundle(rootAt(t, clk.t), s)
	})
	srv := authserver.New(zone.New(dnswire.Root))
	lr, err := New(Config{Source: source, KSK: s.KSK.DNSKEY, AuthServer: srv, Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	lr.Tick(context.Background())
	failing = true
	// Healthy through hour 47 even with a dead source (retry window).
	clk.advance(47 * time.Hour)
	lr.Tick(context.Background())
	if !lr.Healthy() {
		t.Error("unhealthy inside the 48h window")
	}
	// Past 48 h the copy is stale.
	clk.advance(2 * time.Hour)
	lr.Tick(context.Background())
	if lr.Healthy() {
		t.Error("still healthy past expiry with no refresh")
	}
	// But the zone keeps serving (stale) rather than vanishing.
	if lr.Zone() == nil {
		t.Error("zone discarded on staleness")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoSource) {
		t.Errorf("no source: %v", err)
	}
	src := dist.SourceFunc(func(context.Context) (*dist.Bundle, error) { return nil, nil })
	if _, err := New(Config{Source: src}); !errors.Is(err, ErrNoTarget) {
		t.Errorf("no target: %v", err)
	}
}

func TestMigrationModel(t *testing.T) {
	m := NewMigration(MigrationConfig{})
	start := time.Date(2020, time.January, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC)

	early := m.At(start)
	mid := m.At(time.Date(2023, time.January, 1, 0, 0, 0, 0, time.UTC))
	late := m.At(end)

	if early.AdoptedShare > 0.05 {
		t.Errorf("early adoption = %.3f", early.AdoptedShare)
	}
	if mid.AdoptedShare < 0.45 || mid.AdoptedShare > 0.55 {
		t.Errorf("midpoint adoption = %.3f", mid.AdoptedShare)
	}
	if late.AdoptedShare < 0.95 {
		t.Errorf("late adoption = %.3f", late.AdoptedShare)
	}

	// Root traffic and fleet drain monotonically.
	series := m.Series(start, end)
	for i := 1; i < len(series); i++ {
		if series[i].RootQPS > series[i-1].RootQPS {
			t.Fatal("root traffic grew during migration")
		}
		if series[i].InstancesNeeded > series[i-1].InstancesNeeded {
			t.Fatal("fleet grew during migration")
		}
	}
	// Distribution load at full adoption: ~4.1M resolvers * 1.1MB / 2d
	// ≈ 2.3 TB/day — large in aggregate, trivial per resolver.
	if late.DistributionMBPerDay < 1e6 || late.DistributionMBPerDay > 4e6 {
		t.Errorf("distribution MB/day = %.0f", late.DistributionMBPerDay)
	}
	// The end state: no root nameservers.
	if end2 := m.At(end.AddDate(10, 0, 0)); end2.InstancesNeeded != 0 {
		t.Errorf("instances at full adoption = %d, want 0", end2.InstancesNeeded)
	}
}
