package core

import (
	"context"
	"testing"
	"time"

	"math/rand"

	"rootless/internal/anycast"
	"rootless/internal/dist"
	"rootless/internal/dnssec"
	"rootless/internal/dnswire"
	"rootless/internal/netsim"
	"rootless/internal/resolver"
	"rootless/internal/rootzone"
)

// TestAdditionsChannelClosesNewTLDGap exercises the §5.3 mitigation end
// to end: a TLD appears in the root zone right after a resolver's full
// refresh; with the additions channel the resolver learns it within the
// poll interval instead of waiting out the refresh cycle.
func TestAdditionsChannelClosesNewTLDGap(t *testing.T) {
	s := signer(t)
	clk := &vclock{t: rootzone.Corpus()[0].Added} // any fixed instant
	clk.t = time.Date(2018, time.February, 20, 0, 0, 0, 0, time.UTC)

	// Publisher state: zone snapshots around llc's addition (2018-02-23).
	publishAt := clk.t
	currentZone := func() *dist.Bundle {
		z := rootAt(t, publishAt)
		b, err := dist.MakeBundle(z, s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	source := dist.SourceFunc(func(context.Context) (*dist.Bundle, error) {
		return currentZone(), nil
	})
	additions := additionsSourceFunc(func(_ context.Context, from uint32) (*dist.AdditionsBundle, error) {
		// The publisher diffs the requested base against the current zone.
		baseDate, err := dateFromSerial(from)
		if err != nil {
			return nil, err
		}
		oldZone := rootAt(t, baseDate)
		newZone := rootAt(t, publishAt)
		return dist.MakeAdditions(oldZone, newZone, s)
	})

	net := netsim.New(1, clk.t)
	r := resolver.New(resolver.Config{
		Mode:      resolver.RootModeLookaside,
		Transport: net.Client(anycast.GeoPoint{}),
		Clock:     clk.now,
	})
	lr, err := New(Config{
		Source:            source,
		KSK:               s.KSK.DNSKEY,
		Resolver:          r,
		Clock:             clk.now,
		AdditionsSource:   additions,
		AdditionsInterval: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Tick(context.Background()) {
		t.Fatal("bootstrap failed")
	}

	// llc. does not exist yet: NXDOMAIN, locally.
	res, err := r.Resolve("www.startup.llc.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("pre-addition: %v %v", res, err)
	}

	// Three days later llc has been added to the published zone, but the
	// resolver's next full refresh is still far off (42h schedule ticked
	// just now, so pretend a long refresh: bump clock only 12h past the
	// publish event and rely on the additions channel).
	publishAt = time.Date(2018, time.February, 24, 0, 0, 0, 0, time.UTC)
	clk.advance(12 * time.Hour) // additions due (6h), refresh not (42h)

	if !lr.Tick(context.Background()) {
		t.Fatal("additions tick did not install")
	}
	ok, failed := lr.AdditionsApplied()
	if ok != 1 || failed != 0 {
		t.Fatalf("additions applied=%d failed=%d", ok, failed)
	}

	// The local zone now knows llc: a DS query at the cut is answered
	// authoritatively from the local copy, with zero network traffic.
	// (The simulated network has no llc TLD servers, so a full resolution
	// under llc would stall at the next delegation level — irrelevant to
	// what the additions channel provides.)
	res, err = r.Resolve("llc.", dnswire.TypeDS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode == dnswire.RcodeNXDomain {
		t.Fatal("llc still unknown after additions were applied")
	}
	if res.Queries != 0 {
		t.Errorf("llc DS lookup used %d network queries", res.Queries)
	}
}

func TestAdditionsRejectedOnBadSignature(t *testing.T) {
	s := signer(t)
	evil := signerWithSeed(t, 666)
	clk := &vclock{t: time.Date(2018, time.March, 1, 0, 0, 0, 0, time.UTC)}
	base := rootAt(t, clk.t)
	source := dist.SourceFunc(func(context.Context) (*dist.Bundle, error) {
		return dist.MakeBundle(base, s)
	})
	additions := additionsSourceFunc(func(context.Context, uint32) (*dist.AdditionsBundle, error) {
		newer := rootAt(t, clk.t.AddDate(0, 1, 0))
		return dist.MakeAdditions(base, newer, evil) // wrong key
	})
	net := netsim.New(1, clk.t)
	r := resolver.New(resolver.Config{
		Mode: resolver.RootModeLookaside, Transport: net.Client(anycast.GeoPoint{}), Clock: clk.now,
	})
	lr, err := New(Config{
		Source: source, KSK: s.KSK.DNSKEY, Resolver: r, Clock: clk.now,
		AdditionsSource: additions, AdditionsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr.Tick(context.Background())
	clk.advance(2 * time.Hour)
	if lr.Tick(context.Background()) {
		t.Fatal("forged additions installed")
	}
	if _, failed := lr.AdditionsApplied(); failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
}

// additionsSourceFunc adapts a function to AdditionsSource.
type additionsSourceFunc func(ctx context.Context, from uint32) (*dist.AdditionsBundle, error)

func (f additionsSourceFunc) FetchAdditions(ctx context.Context, from uint32) (*dist.AdditionsBundle, error) {
	return f(ctx, from)
}

// dateFromSerial inverts rootzone.SerialFor (YYYYMMDD00).
func dateFromSerial(serial uint32) (time.Time, error) {
	v := serial / 100
	return time.Date(int(v/10000), time.Month(v/100%100), int(v%100), 0, 0, 0, 0, time.UTC), nil
}

func signerWithSeed(t *testing.T, seed int64) *dnssec.Signer {
	t.Helper()
	s, err := dnssec.NewSigner(dnswire.Root, detRand{rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return s
}
