// Package benchfmt turns `go test -bench` output into a schema-stable
// JSON report, validates such reports, and diffs two of them — the
// perf-trajectory pipeline behind `make bench`. Each PR commits a
// BENCH_<pr>.json snapshot; because the schema is fixed and benchmark
// names are machine-independent (the -GOMAXPROCS suffix is stripped),
// successive snapshots diff cleanly and the repo accumulates a latency
// trajectory alongside the code.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the report layout. Bump only with a migration path:
// committed snapshots from earlier PRs must keep validating or Diff
// loses the trajectory.
const Schema = "rootless-bench/v1"

// Entry is one benchmark result. Extra carries custom units emitted via
// testing.B.ReportMetric (e.g. upstream-queries/op), which is how
// experiment-derived figures travel through the standard bench format.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the committed artifact.
type Report struct {
	Schema    string `json:"schema"`
	Label     string `json:"label"`
	GoVersion string `json:"go_version"`
	// Benchmarks are sorted by name so snapshots diff cleanly in git.
	Benchmarks []Entry `json:"benchmarks"`
	// Derived holds headline figures computed from the raw entries
	// (throughputs, overhead deltas) — see Derive.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// Parse reads `go test -bench` text output and returns the benchmark
// entries, sorted by name. Non-benchmark lines (PASS, ok, goos: ...)
// are ignored, so the output of several packages can be concatenated.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmarking..." chatter, not a result line
		}
		e := Entry{Name: stripProcSuffix(fields[0]), Iterations: iters}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q on line %q", fields[i], sc.Text())
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			default:
				if e.Extra == nil {
					e.Extra = make(map[string]float64)
				}
				e.Extra[unit] = v
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// stripProcSuffix removes the trailing -GOMAXPROCS from a benchmark
// name (BenchmarkResolve/NoTracer-8 → BenchmarkResolve/NoTracer) so
// names are stable across machines.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Validate checks a report's structural invariants: the schema tag, a
// non-empty label, and well-formed deduplicated entries. min is the
// smallest acceptable benchmark count (0 to skip the check).
func Validate(rep *Report, min int) error {
	if rep.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", rep.Schema, Schema)
	}
	if rep.Label == "" {
		return fmt.Errorf("benchfmt: empty label")
	}
	if len(rep.Benchmarks) < min {
		return fmt.Errorf("benchfmt: %d benchmarks, want at least %d", len(rep.Benchmarks), min)
	}
	seen := make(map[string]bool, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		switch {
		case e.Name == "" || !strings.HasPrefix(e.Name, "Benchmark"):
			return fmt.Errorf("benchfmt: bad benchmark name %q", e.Name)
		case seen[e.Name]:
			return fmt.Errorf("benchfmt: duplicate benchmark %q (use -count=1)", e.Name)
		case e.Iterations <= 0:
			return fmt.Errorf("benchfmt: %s: iterations %d", e.Name, e.Iterations)
		case e.NsPerOp < 0 || e.BytesPerOp < 0 || e.AllocsPerOp < 0:
			return fmt.Errorf("benchfmt: %s: negative metric", e.Name)
		}
		seen[e.Name] = true
	}
	return nil
}

// NoiseBandFrac is the fraction of the baseline ns/op below which a
// derived overhead delta is considered measurement noise. Two runs of
// the same code routinely differ by a few percent; without the clamp a
// lucky run yields nonsense like a negative tracing overhead.
const NoiseBandFrac = 0.05

// NoiseFloorNs is the absolute ns/op delta below which a cross-snapshot
// comparison is timer-granularity noise, whatever the ratio says.
// Snapshots are taken on whatever host the PR ran on; for single-digit-ns
// micro-ops (an 8 ns disabled-tracer check) a 2 ns host-to-host drift
// reads as a 25% "regression" while the code is byte-identical. The
// relative band alone cannot express that, so the regression gate also
// requires the absolute delta to clear this floor.
const NoiseFloorNs = 3.0

// Derive computes the headline figures a snapshot is read for: hot-path
// resolution throughput, the cost of enabling tracing, and the
// coalescing shield factor. Missing benchmarks simply yield no figure,
// so Derive works on partial runs too.
//
// Overhead deltas smaller than NoiseBandFrac of their baseline are
// clamped to zero and flagged with a companion <key>_within_noise=1
// entry, so a snapshot never reports a spurious (possibly negative)
// overhead that a reader might mistake for a real speedup.
func Derive(entries []Entry) map[string]float64 {
	byName := make(map[string]Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	d := make(map[string]float64)
	overhead := func(key string, base, with float64) {
		delta := with - base
		// A negative overhead is physically impossible — the measured
		// path strictly includes the baseline's work — so any delta
		// below the band is noise, not just small-magnitude ones.
		if delta < NoiseBandFrac*base {
			d[key] = 0
			d[key+"_within_noise"] = 1
			return
		}
		d[key] = delta
	}
	if e, ok := byName["BenchmarkResolve/NoTracer"]; ok && e.NsPerOp > 0 {
		d["resolve_ops_per_sec"] = 1e9 / e.NsPerOp
		if t, ok := byName["BenchmarkResolve/TracerEnabled"]; ok {
			overhead("tracing_enabled_overhead_ns_per_op", e.NsPerOp, t.NsPerOp)
		}
		if t, ok := byName["BenchmarkResolve/TracerDisabled"]; ok {
			overhead("tracing_disabled_overhead_ns_per_op", e.NsPerOp, t.NsPerOp)
		}
	}
	if e, ok := byName["BenchmarkResolveConcurrent/Coalesce"]; ok && e.NsPerOp > 0 {
		d["resolve_concurrent_ops_per_sec"] = 1e9 / e.NsPerOp
		if q, ok := e.Extra["upstream-queries/op"]; ok {
			d["coalesce_upstream_queries_per_op"] = q
		}
	}
	// PR 5 hot-path memory figures: codec allocation counts, the sharded
	// cache's contention ratio, and the packed-answer cache payoff.
	if e, ok := byName["BenchmarkMessagePack"]; ok {
		d["wire_pack_allocs_per_op"] = e.AllocsPerOp
	}
	if e, ok := byName["BenchmarkMessageUnpack"]; ok {
		d["wire_unpack_allocs_per_op"] = e.AllocsPerOp
	}
	if e, ok := byName["BenchmarkCache/Get"]; ok {
		d["cache_get_allocs_per_op"] = e.AllocsPerOp
	}
	if par, ok := byName["BenchmarkCache/GetParallel"]; ok && par.NsPerOp > 0 {
		if single, ok := byName["BenchmarkCache/GetParallelSingleShard"]; ok {
			// >1 means sharding beats the single-lock design under the
			// same parallel load. Both source benchmarks are in
			// wallClockUnreliable: on a runner without real parallelism
			// the ratio can dip below 1 (BENCH_PR5 recorded 0.76), which
			// says nothing about the sharding design. The companion flag
			// marks the figure so snapshot readers and the regression
			// gate treat it as wall-clock-unreliable too.
			d["cache_shard_speedup"] = single.NsPerOp / par.NsPerOp
			d["cache_shard_speedup_wall_clock_unreliable"] = 1
		}
	}
	// PR 6 traffic-analytics figures: the streaming classifier rides the
	// resolve/handle hot paths, so its per-observation cost is a headline
	// number (the acceptance bound is ~20 ns and zero allocations).
	if e, ok := byName["BenchmarkTrafficClassify"]; ok {
		d["traffic_classify_ns_per_op"] = e.NsPerOp
	}
	if e, ok := byName["BenchmarkTrafficObserve"]; ok {
		d["traffic_observe_ns_per_op"] = e.NsPerOp
		d["traffic_observe_allocs_per_op"] = e.AllocsPerOp
	}
	if e, ok := byName["BenchmarkTrafficTopKHit"]; ok {
		d["traffic_topk_hit_ns_per_op"] = e.NsPerOp
	}
	// PR 7 validation figures: the full DNSSEC chain-walk cost per
	// validated answer, and the cost of synthesizing a denial from the
	// aggressive NSEC cache — the price of absorbing a junk query without
	// any upstream traffic, so it must stay far below a network RTT.
	if e, ok := byName["BenchmarkValidate"]; ok {
		d["dnssec_validate_ns_per_op"] = e.NsPerOp
		d["dnssec_validate_allocs_per_op"] = e.AllocsPerOp
	}
	if e, ok := byName["BenchmarkNSECSynthesize"]; ok {
		d["nsec_synthesize_ns_per_op"] = e.NsPerOp
		d["nsec_synthesize_allocs_per_op"] = e.AllocsPerOp
	}
	// PR 8 distribution figures: catching up via a signed daily delta
	// must beat re-verifying a full bundle — the O(delta) vs O(zone)
	// claim of the self-healing distribution channel, in wall time. The
	// speedup is bounded by the zone-copy cost Apply shares with full
	// verification, so it is smaller than the sig-check ratio t_dist
	// reports; >1 is the requirement.
	if ap, ok := byName["BenchmarkDeltaApply"]; ok {
		d["delta_verify_ns_per_op"] = ap.NsPerOp
		d["delta_verify_allocs_per_op"] = ap.AllocsPerOp
		if full, ok := byName["BenchmarkFullBundleVerify"]; ok && ap.NsPerOp > 0 {
			d["delta_verify_speedup"] = full.NsPerOp / ap.NsPerOp
		}
	}
	// PR 9 observability figures: the HDR histogram rides every hot-path
	// latency observation (acceptance: ≤20 ns, zero allocations), and
	// stamping + grafting the EDNS0 trace option must stay within 5% of a
	// traced resolution — the _frac figure is what the acceptance gate
	// reads.
	if e, ok := byName["BenchmarkHDRRecord"]; ok {
		d["hdr_record_ns_per_op"] = e.NsPerOp
		d["hdr_record_allocs_per_op"] = e.AllocsPerOp
	}
	if e, ok := byName["BenchmarkHDRQuantile"]; ok {
		d["hdr_quantile_ns_per_op"] = e.NsPerOp
		if re, ok := e.Extra["p999-rel-err"]; ok {
			d["hdr_p999_relative_error"] = re
		}
	}
	if base, ok := byName["BenchmarkResolve/TracerEnabled"]; ok && base.NsPerOp > 0 {
		if p, ok := byName["BenchmarkResolve/TracePropagate"]; ok {
			overhead("trace_propagation_overhead_ns_per_op", base.NsPerOp, p.NsPerOp)
			frac := (p.NsPerOp - base.NsPerOp) / base.NsPerOp
			if frac < 0 {
				frac = 0
			}
			d["trace_propagation_overhead_frac"] = frac
		}
	}
	if hit, ok := byName["BenchmarkHandle/PackedHit"]; ok && hit.NsPerOp > 0 {
		if p, ok := hit.Extra["packs/op"]; ok {
			d["authserver_packed_hit_packs_per_op"] = p
		}
		if cold, ok := byName["BenchmarkHandle/ColdBuild"]; ok {
			d["authserver_packed_hit_speedup"] = cold.NsPerOp / hit.NsPerOp
		}
	}
	// PR 10 multi-core serving figures, measured by the real-socket
	// loadgen in saturation mode. served_qps_* is achieved rate x
	// response rate — the serving capacity bound of the in-process authd.
	// Every figure here shares the generator's core(s) with the server,
	// so all carry the wall-clock-unreliable companion: on a single-core
	// runner the 4-worker ratio cannot exceed ~1 (there is no second core
	// to win — the same physics as cache_shard_speedup's 0.76 in
	// BENCH_PR5), while udpengine_batch_msgs_per_read is a syscall count
	// ratio and stays meaningful on any host.
	if w1, ok := byName["BenchmarkServedQPS/Workers1"]; ok {
		if q1, ok := w1.Extra["served-qps"]; ok && q1 > 0 {
			peak := q1
			d["served_qps_1w"] = q1
			if w4, ok := byName["BenchmarkServedQPS/Workers4"]; ok {
				if q4, ok := w4.Extra["served-qps"]; ok {
					d["udpengine_scaling_4w"] = q4 / q1
					d["udpengine_scaling_4w_wall_clock_unreliable"] = 1
					if q4 > peak {
						peak = q4
					}
				}
			}
			if wb, ok := byName["BenchmarkServedQPS/Workers4Batch8"]; ok {
				if qb, ok := wb.Extra["served-qps"]; ok && qb > peak {
					peak = qb
				}
				if m, ok := wb.Extra["msgs-per-read"]; ok {
					d["udpengine_batch_msgs_per_read"] = m
				}
				if p, ok := wb.Extra["p999-ms"]; ok {
					d["served_p999_ms"] = p
				}
			}
			d["served_qps_peak"] = peak
			d["served_qps_peak_wall_clock_unreliable"] = 1
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// Delta is one benchmark's movement between two reports.
type Delta struct {
	Name     string
	OldNs    float64
	NewNs    float64
	Ratio    float64 // NewNs/OldNs; 1.0 = unchanged, >1 = slower
	OldAlloc float64
	NewAlloc float64
}

// DiffResult pairs up two reports benchmark by benchmark.
type DiffResult struct {
	Common  []Delta
	Added   []string // in new only
	Removed []string // in old only
}

// Diff compares two reports. Benchmarks are matched by name; the result
// is ordered by name within each category.
func Diff(old, cur *Report) DiffResult {
	oldBy := make(map[string]Entry, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		oldBy[e.Name] = e
	}
	var res DiffResult
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		seen[e.Name] = true
		o, ok := oldBy[e.Name]
		if !ok {
			res.Added = append(res.Added, e.Name)
			continue
		}
		d := Delta{Name: e.Name, OldNs: o.NsPerOp, NewNs: e.NsPerOp,
			OldAlloc: o.AllocsPerOp, NewAlloc: e.AllocsPerOp}
		if o.NsPerOp > 0 {
			d.Ratio = e.NsPerOp / o.NsPerOp
		}
		res.Common = append(res.Common, d)
	}
	for _, e := range old.Benchmarks {
		if !seen[e.Name] {
			res.Removed = append(res.Removed, e.Name)
		}
	}
	sort.Slice(res.Common, func(i, j int) bool { return res.Common[i].Name < res.Common[j].Name })
	sort.Strings(res.Added)
	sort.Strings(res.Removed)
	return res
}

// wallClockUnreliable lists benchmarks whose ns/op is a scheduler
// artifact: parallel herds whose wall time depends on core count and
// timer granularity, not on the code under test (their own comments say
// to trust the Extra metrics — upstream-queries/op, the shard-speedup
// ratio — instead). The regression gate skips their ns/op.
var wallClockUnreliable = map[string]bool{
	"BenchmarkResolveConcurrent/Coalesce":   true,
	"BenchmarkResolveConcurrent/NoCoalesce": true,
	"BenchmarkCache/GetParallel":            true,
	"BenchmarkCache/GetParallelSingleShard": true,
	// The loadgen saturation benches time-slice the generator against
	// the server on whatever cores the runner has; their ns/op includes
	// the drain window too. Read the served-qps / msgs-per-read Extra
	// metrics instead.
	"BenchmarkServedQPS/Workers1":       true,
	"BenchmarkServedQPS/Workers4":       true,
	"BenchmarkServedQPS/Workers4Batch8": true,
}

// Regressions returns the benchmarks common to both reports whose ns/op
// grew by more than frac (0.15 = fail anything >15% slower). Added and
// removed benchmarks are never regressions — new code legitimately
// reshapes the suite — deltas inside NoiseBandFrac are ignored even
// when frac is set tighter than the noise band, absolute deltas under
// NoiseFloorNs are cross-host timer noise, and benchmarks in
// wallClockUnreliable are exempt.
func Regressions(old, cur *Report, frac float64) []Delta {
	if frac < NoiseBandFrac {
		frac = NoiseBandFrac
	}
	var out []Delta
	for _, d := range Diff(old, cur).Common {
		if d.Ratio > 1+frac && d.NewNs-d.OldNs >= NoiseFloorNs && !wallClockUnreliable[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

// Render writes a human-readable diff table.
func (r DiffResult) Render(w io.Writer, oldLabel, newLabel string) {
	fmt.Fprintf(w, "bench diff: %s → %s\n", oldLabel, newLabel)
	for _, d := range r.Common {
		marker := ""
		switch {
		case d.Ratio > 1.10:
			marker = "  (slower)"
		case d.Ratio != 0 && d.Ratio < 0.90:
			marker = "  (faster)"
		}
		fmt.Fprintf(w, "  %-55s %12.1f → %12.1f ns/op  %5.2fx%s\n",
			d.Name, d.OldNs, d.NewNs, d.Ratio, marker)
	}
	for _, n := range r.Added {
		fmt.Fprintf(w, "  %-55s new\n", n)
	}
	for _, n := range r.Removed {
		fmt.Fprintf(w, "  %-55s removed\n", n)
	}
}
