package benchfmt

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: rootless/internal/resolver
cpu: Some CPU @ 2.00GHz
BenchmarkResolve/NoTracer-8         	  500000	      2050 ns/op	     120 B/op	       3 allocs/op
BenchmarkResolve/TracerEnabled-8    	  400000	      3100 ns/op	     600 B/op	       9 allocs/op
BenchmarkResolveConcurrent/Coalesce-8 	     100	     65000 ns/op	         0.131 upstream-queries/op	    2100 B/op	      40 allocs/op
PASS
ok  	rootless/internal/resolver	3.210s
BenchmarkSpan/Disabled-8 	100000000	        12.01 ns/op	       0 B/op	       0 allocs/op
ok  	rootless/internal/obs	1.402s
`

func parseSample(t *testing.T) []Entry {
	t.Helper()
	entries, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestParse(t *testing.T) {
	entries := parseSample(t)
	if len(entries) != 4 {
		t.Fatalf("got %d entries, want 4: %+v", len(entries), entries)
	}
	byName := make(map[string]Entry)
	for i, e := range entries {
		if i > 0 && entries[i-1].Name > e.Name {
			t.Errorf("entries not sorted: %q after %q", e.Name, entries[i-1].Name)
		}
		byName[e.Name] = e
	}
	r := byName["BenchmarkResolve/NoTracer"]
	if r.Iterations != 500000 || r.NsPerOp != 2050 || r.BytesPerOp != 120 || r.AllocsPerOp != 3 {
		t.Errorf("NoTracer entry wrong: %+v", r)
	}
	c := byName["BenchmarkResolveConcurrent/Coalesce"]
	if got := c.Extra["upstream-queries/op"]; got != 0.131 {
		t.Errorf("custom unit: got %v, want 0.131", got)
	}
	if s := byName["BenchmarkSpan/Disabled"]; s.NsPerOp != 12.01 {
		t.Errorf("fractional ns/op: got %v", s.NsPerOp)
	}
}

func TestValidate(t *testing.T) {
	good := &Report{Schema: Schema, Label: "PR4", GoVersion: "go1.22",
		Benchmarks: []Entry{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 10}}}
	if err := Validate(good, 1); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "other/v9" }},
		{"empty label", func(r *Report) { r.Label = "" }},
		{"bad name", func(r *Report) { r.Benchmarks[0].Name = "TestX" }},
		{"zero iterations", func(r *Report) { r.Benchmarks[0].Iterations = 0 }},
		{"negative metric", func(r *Report) { r.Benchmarks[0].NsPerOp = -1 }},
		{"duplicate", func(r *Report) { r.Benchmarks = append(r.Benchmarks, r.Benchmarks[0]) }},
	}
	for _, tc := range bad {
		rep := &Report{Schema: Schema, Label: "PR4", GoVersion: "go1.22",
			Benchmarks: []Entry{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 10}}}
		tc.mutate(rep)
		if err := Validate(rep, 1); err == nil {
			t.Errorf("%s: validated but should not", tc.name)
		}
	}
	if err := Validate(good, 5); err == nil {
		t.Error("min-count check did not fire")
	}
}

func TestDerive(t *testing.T) {
	d := Derive(parseSample(t))
	if d["resolve_ops_per_sec"] == 0 {
		t.Error("missing resolve_ops_per_sec")
	}
	if got := d["tracing_enabled_overhead_ns_per_op"]; got != 3100-2050 {
		t.Errorf("tracing overhead: got %v, want %v", got, 3100-2050)
	}
	if got := d["coalesce_upstream_queries_per_op"]; got != 0.131 {
		t.Errorf("coalesce figure: got %v, want 0.131", got)
	}
	if Derive(nil) != nil {
		t.Error("Derive(nil) should be nil")
	}
}

func TestDiff(t *testing.T) {
	old := &Report{Schema: Schema, Label: "PR3", Benchmarks: []Entry{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkGone", Iterations: 1, NsPerOp: 5},
	}}
	cur := &Report{Schema: Schema, Label: "PR4", Benchmarks: []Entry{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 150},
		{Name: "BenchmarkNew", Iterations: 1, NsPerOp: 7},
	}}
	res := Diff(old, cur)
	if len(res.Common) != 1 || res.Common[0].Ratio != 1.5 {
		t.Errorf("common: %+v", res.Common)
	}
	if len(res.Added) != 1 || res.Added[0] != "BenchmarkNew" {
		t.Errorf("added: %v", res.Added)
	}
	if len(res.Removed) != 1 || res.Removed[0] != "BenchmarkGone" {
		t.Errorf("removed: %v", res.Removed)
	}
	var sb strings.Builder
	res.Render(&sb, old.Label, cur.Label)
	for _, want := range []string{"PR3 → PR4", "BenchmarkA", "1.50x", "(slower)", "new", "removed"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered diff missing %q:\n%s", want, sb.String())
		}
	}
}

// TestCommittedSnapshot is the schema smoke in `make verify`: the
// snapshot committed at the repo root must parse, validate against the
// current schema, and carry enough benchmarks to be a useful
// trajectory point.
func TestCommittedSnapshot(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_PR4.json")
	if err != nil {
		t.Fatalf("committed snapshot missing (run `make bench`): %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if err := Validate(&rep, 8); err != nil {
		t.Fatal(err)
	}
	if len(rep.Derived) == 0 {
		t.Error("snapshot has no derived figures")
	}
}
