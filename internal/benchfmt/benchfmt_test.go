package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: rootless/internal/resolver
cpu: Some CPU @ 2.00GHz
BenchmarkResolve/NoTracer-8         	  500000	      2050 ns/op	     120 B/op	       3 allocs/op
BenchmarkResolve/TracerEnabled-8    	  400000	      3100 ns/op	     600 B/op	       9 allocs/op
BenchmarkResolveConcurrent/Coalesce-8 	     100	     65000 ns/op	         0.131 upstream-queries/op	    2100 B/op	      40 allocs/op
PASS
ok  	rootless/internal/resolver	3.210s
BenchmarkSpan/Disabled-8 	100000000	        12.01 ns/op	       0 B/op	       0 allocs/op
ok  	rootless/internal/obs	1.402s
`

func parseSample(t *testing.T) []Entry {
	t.Helper()
	entries, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestParse(t *testing.T) {
	entries := parseSample(t)
	if len(entries) != 4 {
		t.Fatalf("got %d entries, want 4: %+v", len(entries), entries)
	}
	byName := make(map[string]Entry)
	for i, e := range entries {
		if i > 0 && entries[i-1].Name > e.Name {
			t.Errorf("entries not sorted: %q after %q", e.Name, entries[i-1].Name)
		}
		byName[e.Name] = e
	}
	r := byName["BenchmarkResolve/NoTracer"]
	if r.Iterations != 500000 || r.NsPerOp != 2050 || r.BytesPerOp != 120 || r.AllocsPerOp != 3 {
		t.Errorf("NoTracer entry wrong: %+v", r)
	}
	c := byName["BenchmarkResolveConcurrent/Coalesce"]
	if got := c.Extra["upstream-queries/op"]; got != 0.131 {
		t.Errorf("custom unit: got %v, want 0.131", got)
	}
	if s := byName["BenchmarkSpan/Disabled"]; s.NsPerOp != 12.01 {
		t.Errorf("fractional ns/op: got %v", s.NsPerOp)
	}
}

func TestValidate(t *testing.T) {
	good := &Report{Schema: Schema, Label: "PR4", GoVersion: "go1.22",
		Benchmarks: []Entry{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 10}}}
	if err := Validate(good, 1); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "other/v9" }},
		{"empty label", func(r *Report) { r.Label = "" }},
		{"bad name", func(r *Report) { r.Benchmarks[0].Name = "TestX" }},
		{"zero iterations", func(r *Report) { r.Benchmarks[0].Iterations = 0 }},
		{"negative metric", func(r *Report) { r.Benchmarks[0].NsPerOp = -1 }},
		{"duplicate", func(r *Report) { r.Benchmarks = append(r.Benchmarks, r.Benchmarks[0]) }},
	}
	for _, tc := range bad {
		rep := &Report{Schema: Schema, Label: "PR4", GoVersion: "go1.22",
			Benchmarks: []Entry{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 10}}}
		tc.mutate(rep)
		if err := Validate(rep, 1); err == nil {
			t.Errorf("%s: validated but should not", tc.name)
		}
	}
	if err := Validate(good, 5); err == nil {
		t.Error("min-count check did not fire")
	}
}

func TestDerive(t *testing.T) {
	d := Derive(parseSample(t))
	if d["resolve_ops_per_sec"] == 0 {
		t.Error("missing resolve_ops_per_sec")
	}
	if got := d["tracing_enabled_overhead_ns_per_op"]; got != 3100-2050 {
		t.Errorf("tracing overhead: got %v, want %v", got, 3100-2050)
	}
	if got := d["coalesce_upstream_queries_per_op"]; got != 0.131 {
		t.Errorf("coalesce figure: got %v, want 0.131", got)
	}
	if Derive(nil) != nil {
		t.Error("Derive(nil) should be nil")
	}
}

func TestDeriveTrafficAndShardFlag(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkTrafficClassify", Iterations: 1, NsPerOp: 28},
		{Name: "BenchmarkTrafficObserve", Iterations: 1, NsPerOp: 50, AllocsPerOp: 0},
		{Name: "BenchmarkTrafficTopKHit", Iterations: 1, NsPerOp: 13},
		{Name: "BenchmarkCache/GetParallel", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkCache/GetParallelSingleShard", Iterations: 1, NsPerOp: 76},
	}
	d := Derive(entries)
	if d["traffic_classify_ns_per_op"] != 28 || d["traffic_observe_ns_per_op"] != 50 ||
		d["traffic_topk_hit_ns_per_op"] != 13 {
		t.Errorf("traffic figures: %+v", d)
	}
	if _, ok := d["traffic_observe_allocs_per_op"]; !ok {
		t.Error("missing traffic_observe_allocs_per_op")
	}
	// The shard-speedup ratio comes from two wall-clock-unreliable
	// benchmarks, so it must always carry the companion flag — a sub-1.0
	// value on a core-starved runner is an artifact, not a regression.
	if d["cache_shard_speedup"] != 0.76 {
		t.Errorf("cache_shard_speedup = %v, want 0.76", d["cache_shard_speedup"])
	}
	if d["cache_shard_speedup_wall_clock_unreliable"] != 1 {
		t.Error("cache_shard_speedup not flagged wall-clock-unreliable")
	}
}

func TestDeriveObservability(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkHDRRecord", Iterations: 1, NsPerOp: 17.4, AllocsPerOp: 0},
		{Name: "BenchmarkHDRQuantile", Iterations: 1, NsPerOp: 900,
			Extra: map[string]float64{"p999-rel-err": 0.0004}},
		{Name: "BenchmarkResolve/TracerEnabled", Iterations: 1, NsPerOp: 3000},
		{Name: "BenchmarkResolve/TracePropagate", Iterations: 1, NsPerOp: 3090},
	}
	d := Derive(entries)
	if d["hdr_record_ns_per_op"] != 17.4 {
		t.Errorf("hdr_record_ns_per_op = %v", d["hdr_record_ns_per_op"])
	}
	if _, ok := d["hdr_record_allocs_per_op"]; !ok {
		t.Error("missing hdr_record_allocs_per_op")
	}
	if d["hdr_quantile_ns_per_op"] != 900 || d["hdr_p999_relative_error"] != 0.0004 {
		t.Errorf("hdr quantile figures = %v / %v",
			d["hdr_quantile_ns_per_op"], d["hdr_p999_relative_error"])
	}
	// 3% propagation overhead: inside the 5% noise band, so the ns figure
	// clamps — but the _frac acceptance figure keeps the raw ratio.
	if got := d["trace_propagation_overhead_ns_per_op"]; got != 0 {
		t.Errorf("within-noise propagation overhead = %v, want 0", got)
	}
	if got := d["trace_propagation_overhead_frac"]; got < 0.029 || got > 0.031 {
		t.Errorf("trace_propagation_overhead_frac = %v, want 0.03", got)
	}
	// A regressed propagation path reports through both figures.
	entries[3].NsPerOp = 3600
	d = Derive(entries)
	if got := d["trace_propagation_overhead_ns_per_op"]; got != 600 {
		t.Errorf("real propagation overhead = %v, want 600", got)
	}
	if got := d["trace_propagation_overhead_frac"]; got != 0.2 {
		t.Errorf("trace_propagation_overhead_frac = %v, want 0.2", got)
	}
}

func TestDeriveNoiseClamp(t *testing.T) {
	// A "negative overhead" smaller than the noise band is a measurement
	// artifact and must come out as exactly zero, flagged as noise.
	entries := []Entry{
		{Name: "BenchmarkResolve/NoTracer", Iterations: 1, NsPerOp: 385},
		{Name: "BenchmarkResolve/TracerDisabled", Iterations: 1, NsPerOp: 380},
	}
	d := Derive(entries)
	if got := d["tracing_disabled_overhead_ns_per_op"]; got != 0 {
		t.Errorf("within-noise overhead = %v, want 0", got)
	}
	if d["tracing_disabled_overhead_ns_per_op_within_noise"] != 1 {
		t.Error("noise flag not set")
	}
	// A delta beyond the band passes through un-clamped and un-flagged.
	entries[1].NsPerOp = 500
	d = Derive(entries)
	if got := d["tracing_disabled_overhead_ns_per_op"]; got != 115 {
		t.Errorf("real overhead = %v, want 115", got)
	}
	if _, flagged := d["tracing_disabled_overhead_ns_per_op_within_noise"]; flagged {
		t.Error("noise flag set on a real overhead")
	}
}

func TestRegressions(t *testing.T) {
	old := &Report{Schema: Schema, Label: "PR4", Benchmarks: []Entry{
		{Name: "BenchmarkSteady", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkSlower", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkGone", Iterations: 1, NsPerOp: 100},
	}}
	cur := &Report{Schema: Schema, Label: "PR5", Benchmarks: []Entry{
		{Name: "BenchmarkSteady", Iterations: 1, NsPerOp: 110},  // +10%: allowed
		{Name: "BenchmarkSlower", Iterations: 1, NsPerOp: 140},  // +40%: regression
		{Name: "BenchmarkBrandNew", Iterations: 1, NsPerOp: 50}, // added: never a regression
	}}
	regs := Regressions(old, cur, 0.15)
	if len(regs) != 1 || regs[0].Name != "BenchmarkSlower" {
		t.Fatalf("regressions: %+v", regs)
	}
	// A threshold tighter than the noise band is widened to the band, so
	// +10% still passes under frac=0.01.
	if regs := Regressions(old, cur, 0.01); len(regs) != 2 {
		t.Errorf("frac below noise band: %+v", regs)
	}
}

func TestDiff(t *testing.T) {
	old := &Report{Schema: Schema, Label: "PR3", Benchmarks: []Entry{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkGone", Iterations: 1, NsPerOp: 5},
	}}
	cur := &Report{Schema: Schema, Label: "PR4", Benchmarks: []Entry{
		{Name: "BenchmarkA", Iterations: 1, NsPerOp: 150},
		{Name: "BenchmarkNew", Iterations: 1, NsPerOp: 7},
	}}
	res := Diff(old, cur)
	if len(res.Common) != 1 || res.Common[0].Ratio != 1.5 {
		t.Errorf("common: %+v", res.Common)
	}
	if len(res.Added) != 1 || res.Added[0] != "BenchmarkNew" {
		t.Errorf("added: %v", res.Added)
	}
	if len(res.Removed) != 1 || res.Removed[0] != "BenchmarkGone" {
		t.Errorf("removed: %v", res.Removed)
	}
	var sb strings.Builder
	res.Render(&sb, old.Label, cur.Label)
	for _, want := range []string{"PR3 → PR4", "BenchmarkA", "1.50x", "(slower)", "new", "removed"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered diff missing %q:\n%s", want, sb.String())
		}
	}
}

// TestCommittedSnapshot is the schema smoke in `make verify`: every
// snapshot committed at the repo root must parse, validate against the
// current schema, and carry enough benchmarks to be a useful
// trajectory point.
func TestCommittedSnapshot(t *testing.T) {
	paths, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed snapshots (run `make bench`)")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if err := Validate(&rep, 8); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(rep.Derived) == 0 {
			t.Errorf("%s: snapshot has no derived figures", path)
		}
	}
}
