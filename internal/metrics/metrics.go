// Package metrics provides the small statistics toolkit the experiment
// harness uses: counters, streaming histograms with percentiles, rates,
// and time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter (lock-free).
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Histogram collects float64 observations and reports order statistics.
// It stores raw samples; experiments here are small enough that exact
// percentiles beat sketch approximations.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank; 0 with no samples or p out of range. Note p <= 0 is
// rejected rather than mapped to the minimum: nearest-rank rounds a tiny
// p to rank 1, which stops being the smallest sample once n exceeds
// 100/p — use Min instead.
func (h *Histogram) Percentile(p float64) float64 {
	if p <= 0 || p > 100 {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	min := h.samples[0]
	for _, v := range h.samples[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	max := h.samples[0]
	for _, v := range h.samples[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Summary formats count/mean/p50/p95/p99 on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99))
}

// Series is a labeled (x, y) sequence for figure-style outputs.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders the series as aligned text rows.
func (s *Series) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n# %s\t%s\n", s.Name, s.XLabel, s.YLabel)
	for i := range s.X {
		fmt.Fprintf(&sb, "%.2f\t%.2f\n", s.X[i], s.Y[i])
	}
	return sb.String()
}

// AsciiPlot renders the series as a crude terminal plot, useful for
// eyeballing figure shapes from cmd/experiments.
func (s *Series) AsciiPlot(width, height int) string {
	if len(s.Y) == 0 || width < 8 || height < 2 {
		return ""
	}
	minY, maxY := s.Y[0], s.Y[0]
	for _, v := range s.Y {
		minY = math.Min(minY, v)
		maxY = math.Max(maxY, v)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i := range s.Y {
		x := i * (width - 1) / maxInt(len(s.Y)-1, 1)
		y := int(float64(height-1) * (s.Y[i] - minY) / (maxY - minY))
		grid[height-1-y][x] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (y: %.0f..%.0f)\n", s.Name, minY, maxY)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "\n")
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
