package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Error("empty histogram should be zero-valued")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %f", h.Mean())
	}
	if got := h.Percentile(50); got != 50 {
		t.Errorf("p50 = %f", got)
	}
	if got := h.Percentile(95); got != 95 {
		t.Errorf("p95 = %f", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Errorf("p99 = %f", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %f/%f", h.Min(), h.Max())
	}
	if !strings.Contains(h.Summary(), "n=100") {
		t.Error("Summary missing count")
	}
}

func TestHistogramDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(250 * time.Millisecond)
	if h.Mean() != 250 {
		t.Errorf("Mean = %f ms", h.Mean())
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	var h Histogram
	h.Observe(5)
	_ = h.Percentile(50)
	h.Observe(1) // must re-sort
	if got := h.Percentile(1); got != 1 {
		t.Errorf("p1 after new observation = %f", got)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var h Histogram
		min, max := 1e18, -1e18
		for i := 0; i < 1+r.Intn(200); i++ {
			v := r.NormFloat64() * 100
			h.Observe(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		p50 := h.Percentile(50)
		return p50 >= min && p50 <= max &&
			h.Percentile(10) <= h.Percentile(90)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "test", XLabel: "x", YLabel: "y"}
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	table := s.Table()
	if !strings.Contains(table, "test") || !strings.Contains(table, "81.00") {
		t.Errorf("Table output wrong:\n%s", table)
	}
	plot := s.AsciiPlot(40, 8)
	if !strings.Contains(plot, "*") {
		t.Error("plot has no points")
	}
	if lines := strings.Count(plot, "\n"); lines != 10 {
		t.Errorf("plot has %d lines", lines)
	}
	// Degenerate cases must not panic.
	if (&Series{}).AsciiPlot(40, 8) != "" {
		t.Error("empty series should produce no plot")
	}
	flat := Series{Name: "flat"}
	flat.Append(0, 5)
	flat.Append(1, 5)
	_ = flat.AsciiPlot(10, 3)
}

// TestMinLargeSampleCount is the regression test for the old
// Min-via-Percentile(0.0001) implementation: nearest-rank maps p=0.0001
// to rank 2 once n exceeds 10⁶, silently returning the wrong sample.
func TestMinLargeSampleCount(t *testing.T) {
	var h Histogram
	const n = 1_000_001
	for i := 0; i < n; i++ {
		h.Observe(float64(i) + 10)
	}
	h.Observe(-3) // the true minimum, observed last
	if got := h.Min(); got != -3 {
		t.Errorf("Min = %f, want -3", got)
	}
	if got := h.Max(); got != float64(n-1)+10 {
		t.Errorf("Max = %f, want %f", got, float64(n-1)+10)
	}
}

func TestPercentileRejectsOutOfRange(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(2)
	for _, p := range []float64{0, -1, 0.0, 100.0001, 200} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("Percentile(%f) = %f, want 0 (rejected)", p, got)
		}
	}
	if got := h.Percentile(100); got != 2 {
		t.Errorf("Percentile(100) = %f", got)
	}
}

func TestMinMaxAfterMixedObservations(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, -2, 7, 0} {
		h.Observe(v)
	}
	_ = h.Percentile(50) // sort, then observe more (must not stale Min/Max)
	h.Observe(-9)
	h.Observe(99)
	if h.Min() != -9 || h.Max() != 99 {
		t.Errorf("min/max = %f/%f", h.Min(), h.Max())
	}
}
