package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"time"
)

// Admin serves the operational endpoints every daemon exposes behind the
// -admin flag:
//
//	GET /metrics     registry in Prometheus text format (?format=json for JSON)
//	GET /healthz     "ok" (503 + error text when the Health check fails)
//	GET /tracez      recent slow-query traces (?format=json, ?class=bogus_tld)
//	GET /statusz     daemon status document (root mode, serial, staleness, ...)
//	GET /timeseries  recorded metric history (when Timeseries is set)
//	GET /topk        traffic composition and heavy hitters (when TopK is set)
//
// Endpoint contract (pinned by the admin audit test): every endpoint
// sets an explicit Content-Type, and unknown values for recognised
// query parameters get a 400 rather than a silent fallback.
//
// With Pprof set, the net/http/pprof profiling endpoints are mounted at
// /debug/pprof/ (daemons gate this behind a -pprof flag: profiling
// handlers can be abused, so they are opt-in).
type Admin struct {
	Registry *Registry
	Tracer   *Tracer // optional
	// Health reports readiness; nil means always healthy.
	Health func() error
	// Status supplies the /statusz document; nil serves {}.
	Status func() map[string]any
	// Pprof mounts /debug/pprof/ (CPU, heap, goroutine, block profiles).
	Pprof bool
	// Timeseries, when set, is mounted at /timeseries (a *tsdb.Recorder;
	// typed as http.Handler so obs does not import its own subpackages).
	Timeseries http.Handler
	// TopK, when set, is mounted at /topk (a traffic analyzer's Handler).
	TopK http.Handler
	// Flight, when set, is mounted at /flightrecorder (a *FlightRecorder's
	// Handler: the retained query digests as JSON).
	Flight http.Handler
}

// Handler returns the admin mux.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.serveMetrics)
	mux.HandleFunc("/healthz", a.serveHealth)
	mux.HandleFunc("/tracez", a.serveTraces)
	mux.HandleFunc("/statusz", a.serveStatus)
	endpoints := "rootless admin endpoints: /metrics /healthz /tracez /statusz"
	if a.Timeseries != nil {
		mux.Handle("/timeseries", a.Timeseries)
		endpoints += " /timeseries"
	}
	if a.TopK != nil {
		mux.Handle("/topk", a.TopK)
		endpoints += " /topk"
	}
	if a.Flight != nil {
		mux.Handle("/flightrecorder", a.Flight)
		endpoints += " /flightrecorder"
	}
	if a.Pprof {
		// The admin server uses its own mux, so the profiling handlers
		// must be mounted explicitly rather than relying on the side
		// effects of importing net/http/pprof on DefaultServeMux.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		endpoints += " /debug/pprof/"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, endpoints+"\n")
	})
	return mux
}

func (a *Admin) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if a.Registry == nil {
		http.Error(w, "no registry", http.StatusServiceUnavailable)
		return
	}
	switch r.URL.Query().Get("format") {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = a.Registry.WriteJSON(w)
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = a.Registry.WritePrometheus(w)
	default:
		http.Error(w, "bad format parameter (want text or json)", http.StatusBadRequest)
	}
}

func (a *Admin) serveHealth(w http.ResponseWriter, _ *http.Request) {
	if a.Health != nil {
		if err := a.Health(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *Admin) serveTraces(w http.ResponseWriter, r *http.Request) {
	if a.Tracer == nil {
		http.Error(w, "tracing not configured", http.StatusNotFound)
		return
	}
	// ?traceid=<hex> serves the stitched document for one trace ID.
	if id := r.URL.Query().Get("traceid"); id != "" {
		a.serveTraceByID(w, id)
		return
	}
	// ?class= keeps only traces tagged with that traffic class (SetClass).
	traces := a.Tracer.RecentByClass(r.URL.Query().Get("class"))
	switch r.URL.Query().Get("format") {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !a.Tracer.Enabled() {
			fmt.Fprintln(w, "tracer disabled (start the daemon with -trace)")
		}
		_ = writeTraceTrees(w, traces)
	default:
		http.Error(w, "bad format parameter (want text or json)", http.StatusBadRequest)
	}
}

// serveTraceByID answers /tracez?traceid=<hex>: the retained traces
// carrying that ID, oldest first — on the resolver that is the stitched
// tree (remote spans grafted under their attempts), on the authoritative
// side its joined share. Non-hex IDs get 400, unknown ones 404.
func (a *Admin) serveTraceByID(w http.ResponseWriter, id string) {
	tid, err := ParseTraceID(id)
	if err != nil {
		http.Error(w, "bad traceid parameter (want up to 16 hex digits)", http.StatusBadRequest)
		return
	}
	traces := a.Tracer.ByID(tid)
	if len(traces) == 0 {
		http.Error(w, "trace not found (it may have aged out of the ring)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"trace_id": FormatTraceID(tid),
		"traces":   traces,
	})
}

func (a *Admin) serveStatus(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{}
	if a.Status != nil {
		doc = a.Status()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json sorts map keys, so output is deterministic.
	_ = enc.Encode(doc)
}

// ListenAndServe runs the admin server on addr until ctx ends. It returns
// once the listener closes; the bound address is logged through logger
// (useful with ":0").
func (a *Admin) ListenAndServe(ctx context.Context, addr string, logger *slog.Logger) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if logger != nil {
		logger.Info("admin endpoint listening", "addr", l.Addr().String())
	}
	srv := &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		_ = srv.Close()
	}()
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// RegisterProcessMetrics adds runtime gauges: goroutines, heap bytes,
// GC count and pause p99, GOMAXPROCS, and uptime. A single collector
// reads MemStats once per scrape (ReadMemStats stops the world briefly,
// so one read serves every gauge).
func RegisterProcessMetrics(r *Registry, start time.Time) {
	r.GaugeFunc("rootless_process_goroutines", "live goroutines", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("rootless_process_gomaxprocs", "GOMAXPROCS", nil,
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("rootless_process_uptime_seconds", "seconds since start", nil,
		func() float64 { return time.Since(start).Seconds() })
	heap := r.Gauge("rootless_process_heap_bytes", "heap in use", nil)
	gcs := r.Counter("rootless_process_gc_total", "completed GC cycles", nil)
	pause := r.Gauge("rootless_process_gc_pause_p99_seconds",
		"p99 GC pause over the runtime's recent-pause window", nil)
	r.AddCollector(CollectorFunc(func(*Registry) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(float64(ms.HeapAlloc))
		gcs.Set(int64(ms.NumGC))
		pause.Set(gcPauseP99(&ms))
	}))
}

// gcPauseP99 computes the 99th-percentile GC pause from the MemStats
// circular pause buffer (the runtime keeps the most recent 256 pauses).
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (99*n + 99) / 100 // ceil(0.99*n), 1-based rank
	if idx > n {
		idx = n
	}
	return float64(pauses[idx-1]) / 1e9
}
