package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"time"
)

// Admin serves the operational endpoints every daemon exposes behind the
// -admin flag:
//
//	GET /metrics   registry in Prometheus text format (?format=json for JSON)
//	GET /healthz   "ok" (503 + error text when the Health check fails)
//	GET /tracez    recent slow-query traces (?format=json for JSON)
//	GET /statusz   daemon status document (root mode, serial, staleness, ...)
type Admin struct {
	Registry *Registry
	Tracer   *Tracer // optional
	// Health reports readiness; nil means always healthy.
	Health func() error
	// Status supplies the /statusz document; nil serves {}.
	Status func() map[string]any
}

// Handler returns the admin mux.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.serveMetrics)
	mux.HandleFunc("/healthz", a.serveHealth)
	mux.HandleFunc("/tracez", a.serveTraces)
	mux.HandleFunc("/statusz", a.serveStatus)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "rootless admin endpoints: /metrics /healthz /tracez /statusz\n")
	})
	return mux
}

func (a *Admin) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if a.Registry == nil {
		http.Error(w, "no registry", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = a.Registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.Registry.WritePrometheus(w)
}

func (a *Admin) serveHealth(w http.ResponseWriter, _ *http.Request) {
	if a.Health != nil {
		if err := a.Health(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

func (a *Admin) serveTraces(w http.ResponseWriter, r *http.Request) {
	if a.Tracer == nil {
		http.Error(w, "tracing not configured", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = a.Tracer.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !a.Tracer.Enabled() {
		fmt.Fprintln(w, "tracer disabled (start the daemon with -trace)")
	}
	_ = a.Tracer.WriteText(w)
}

func (a *Admin) serveStatus(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{}
	if a.Status != nil {
		doc = a.Status()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json sorts map keys, so output is deterministic.
	_ = enc.Encode(doc)
}

// ListenAndServe runs the admin server on addr until ctx ends. It returns
// once the listener closes; the bound address is logged through logger
// (useful with ":0").
func (a *Admin) ListenAndServe(ctx context.Context, addr string, logger *slog.Logger) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if logger != nil {
		logger.Info("admin endpoint listening", "addr", l.Addr().String())
	}
	srv := &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		_ = srv.Close()
	}()
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// RegisterProcessMetrics adds goroutine, heap, and uptime gauges.
func RegisterProcessMetrics(r *Registry, start time.Time) {
	r.GaugeFunc("rootless_process_goroutines", "live goroutines", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("rootless_process_heap_bytes", "heap in use", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("rootless_process_uptime_seconds", "seconds since start", nil,
		func() float64 { return time.Since(start).Seconds() })
}
