// Package obs is the process-wide observability layer: a labeled metrics
// registry with lock-free instruments and Prometheus/JSON exposition, a
// query tracer with a near-zero-cost disabled path, an HTTP admin
// endpoint, and structured-logging helpers. Every subsystem that keeps a
// Stats struct wires itself in through the Collector interface so one
// scrape sees the whole system — the always-on instrumentation the
// paper's §2.2/§5.2/§5.3 measurements presuppose.
package obs

import (
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimension values to a metric series ({mode="lookaside"}).
type Labels map[string]string

// Kind distinguishes exposition semantics.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindSummary // HDR-backed quantile summary (see Registry.HDRTimer)
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSummary:
		return "summary"
	}
	return fmt.Sprintf("kind%d", int(k))
}

// Counter is a lock-free monotonic counter. Snapshot-style collectors may
// also Set it from an existing Stats field at scrape time.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Set overwrites the value (for collectors republishing a snapshot).
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket, lock-free histogram: an atomic count per
// bucket plus sum and count. Unlike metrics.Histogram it never stores raw
// samples, so it is safe on hot paths under unbounded traffic.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// DefBuckets is a latency-oriented default (seconds), covering cache hits
// through multi-second retry storms.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// exposition returns a self-consistent snapshot for the writers: the
// per-bucket counts, the emitted sample count, and the sum. The emitted
// count is the sum of the bucket counts — the exposition self-check —
// rather than h.count read separately: Observe increments the bucket
// before the count, so under concurrent writers a bucket scan followed
// by a later h.Count() read could report _count > the +Inf bucket, an
// exposition Prometheus rejects. Deriving _count from the buckets keeps
// sum(buckets) == count true in every scrape by construction.
func (h *Histogram) exposition() (buckets []int64, count int64, sum float64) {
	buckets = make([]int64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.Sum()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Collector contributes scrape-time samples to a registry. Implementations
// republish their internal Stats snapshot by calling the registry's
// Counter/Gauge getters and Set — idempotent because the registry returns
// the same series for the same (name, labels).
type Collector interface {
	Collect(r *Registry)
}

// CollectorFunc adapts a function to Collector.
type CollectorFunc func(r *Registry)

// Collect implements Collector.
func (f CollectorFunc) Collect(r *Registry) { f(r) }

// series is one labeled instance of a metric family.
type series struct {
	labels    Labels
	labelSig  string
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
	hdr       *HDR
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
	bySig  map[string]*series
}

// Registry holds metric families and scrape-time collectors. All methods
// are safe for concurrent use; instrument updates (Inc/Observe/Set) are
// lock-free once the instrument is created.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string
	collectors []Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelSig(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(l[k])
		sb.WriteByte(',')
	}
	return sb.String()
}

func (r *Registry) getSeries(name, help string, kind Kind, labels Labels) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bySig: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	sig := labelSig(labels)
	s, ok := f.bySig[sig]
	if !ok {
		copied := make(Labels, len(labels))
		for k, v := range labels {
			copied[k] = v
		}
		s = &series{labels: copied, labelSig: sig}
		f.bySig[sig] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns (creating on first use) the counter series for
// (name, labels).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.getSeries(name, help, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns (creating on first use) the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.getSeries(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time
// (e.g. runtime.NumGoroutine).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.getSeries(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gaugeFn = fn
}

// Histogram returns (creating on first use) the fixed-bucket histogram
// series for (name, labels). Bounds are only consulted on first creation.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	s := r.getSeries(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.histogram == nil {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		s.histogram = newHistogram(bounds)
	}
	return s.histogram
}

// HDRTimer returns (creating on first use) a nanosecond-valued HDR
// histogram series for (name, labels), exposed as a Prometheus summary:
// name{quantile="0.5|0.99|0.999|0.9999"} in seconds plus name_sum and
// name_count. The HDR's fixed memory and ≤20 ns atomic Record make it
// the instrument for hot-path latency series where the fixed-bucket
// Histogram's resolution is too coarse for tail percentiles.
func (r *Registry) HDRTimer(name, help string, labels Labels) *HDR {
	s := r.getSeries(name, help, KindSummary, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hdr == nil {
		s.hdr = NewHDR()
	}
	return s.hdr
}

// AddCollector registers scrape-time collectors.
func (r *Registry) AddCollector(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, cs...)
}

// runCollectors invokes every collector so snapshot-backed series are
// fresh. Collectors call back into the registry, so no lock is held.
func (r *Registry) runCollectors() {
	r.mu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	for _, c := range cs {
		c.Collect(r)
	}
}

// sortedFamilies snapshots families in name order (deterministic output).
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		out = append(out, r.families[n])
	}
	return out
}

func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gaugeFn != nil:
		return s.gaugeFn()
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// Sample is one flattened (name, labels, value) for tests and JSON.
// Histogram series flatten to two samples: name_count and name_sum.
type Sample struct {
	Name   string
	Labels Labels
	Kind   Kind
	Value  float64
}

// Snapshot runs collectors and returns every series flattened.
func (r *Registry) Snapshot() []Sample {
	r.runCollectors()
	var out []Sample
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			if f.kind == KindHistogram && s.histogram != nil {
				_, count, sum := s.histogram.exposition()
				out = append(out,
					Sample{Name: f.name + "_count", Labels: s.labels, Kind: f.kind, Value: float64(count)},
					Sample{Name: f.name + "_sum", Labels: s.labels, Kind: f.kind, Value: sum})
				continue
			}
			if f.kind == KindSummary && s.hdr != nil {
				tails := s.hdr.TailSeconds()
				for i, q := range TailQuantiles {
					ql := make(Labels, len(s.labels)+1)
					for k, v := range s.labels {
						ql[k] = v
					}
					ql["quantile"] = formatValue(q)
					out = append(out, Sample{Name: f.name, Labels: ql, Kind: f.kind,
						Value: tails[i]})
				}
				out = append(out,
					Sample{Name: f.name + "_count", Labels: s.labels, Kind: f.kind, Value: float64(s.hdr.Count())},
					Sample{Name: f.name + "_sum", Labels: s.labels, Kind: f.kind, Value: float64(s.hdr.Sum()) / 1e9})
				continue
			}
			out = append(out, Sample{Name: f.name, Labels: s.labels, Kind: f.kind, Value: s.value()})
		}
	}
	return out
}

// formatLabels renders {k="v",...} with keys sorted, or "".
func formatLabels(l Labels, extra ...string) string {
	if len(l) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	put := func(k, v string) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "%s=%q", k, v)
	}
	for _, k := range keys {
		put(k, l[k])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		put(extra[i], extra[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus runs collectors and writes the registry in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollectors()
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if f.kind == KindHistogram && s.histogram != nil {
				h := s.histogram
				buckets, count, sum := h.exposition()
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += buckets[i]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						formatLabels(s.labels, "le", formatValue(bound)), cum); err != nil {
						return err
					}
				}
				cum += buckets[len(h.bounds)]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					formatLabels(s.labels, "le", "+Inf"), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
					formatLabels(s.labels), formatValue(sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
					formatLabels(s.labels), count); err != nil {
					return err
				}
				continue
			}
			if f.kind == KindSummary && s.hdr != nil {
				tails := s.hdr.TailSeconds()
				for i, q := range TailQuantiles {
					if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
						formatLabels(s.labels, "quantile", formatValue(q)),
						formatValue(tails[i])); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
					formatLabels(s.labels), formatValue(float64(s.hdr.Sum())/1e9)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
					formatLabels(s.labels), s.hdr.Count()); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
				formatLabels(s.labels), formatValue(s.value())); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON runs collectors and writes an expvar-style JSON object:
// {"metric_name": [{"labels": {...}, "value": N}, ...], ...}.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.runCollectors()
	fams := r.sortedFamilies()
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	firstFam := true
	for _, f := range fams {
		if !firstFam {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		firstFam = false
		if _, err := fmt.Fprintf(w, "%q:{%q:%q,%q:[", f.name, "kind", f.kind.String(), "series"); err != nil {
			return err
		}
		for i, s := range f.series {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			var sb strings.Builder
			sb.WriteString("{\"labels\":{")
			keys := make([]string, 0, len(s.labels))
			for k := range s.labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for j, k := range keys {
				if j > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%q:%q", k, s.labels[k])
			}
			sb.WriteString("},")
			if f.kind == KindHistogram && s.histogram != nil {
				_, count, sum := s.histogram.exposition()
				fmt.Fprintf(&sb, "\"count\":%d,\"sum\":%s}", count, formatValue(sum))
			} else if f.kind == KindSummary && s.hdr != nil {
				tails := s.hdr.TailSeconds()
				sb.WriteString("\"quantiles\":{")
				for i, q := range TailQuantiles {
					if i > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, "%q:%s", formatValue(q), formatValue(tails[i]))
				}
				fmt.Fprintf(&sb, "},\"count\":%d,\"sum\":%s}",
					s.hdr.Count(), formatValue(float64(s.hdr.Sum())/1e9))
			} else {
				fmt.Fprintf(&sb, "\"value\":%s}", formatValue(s.value()))
			}
			if _, err := io.WriteString(w, sb.String()); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "]}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

// SetCountersFromStruct republishes every exported integer field of a flat
// Stats struct as a counter named prefix_<snake_case_field>_total. Using
// reflection here means a Stats struct can grow a field without anyone
// remembering to extend a hand-written mapping — the exposition can never
// silently drop a counter (obs's coverage test pins this contract).
func SetCountersFromStruct(r *Registry, prefix, help string, labels Labels, stats any) {
	v := reflect.ValueOf(stats)
	for v.Kind() == reflect.Pointer {
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		panic(fmt.Sprintf("obs: SetCountersFromStruct needs a struct, got %T", stats))
	}
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		var n int64
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			n = v.Field(i).Int()
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			n = int64(v.Field(i).Uint())
		default:
			continue
		}
		name := prefix + "_" + snakeCase(f.Name) + "_total"
		r.Counter(name, help+" ("+f.Name+")", labels).Set(n)
	}
}

// snakeCase converts CamelCase (with acronyms) to snake_case:
// CacheAnswers → cache_answers, NXDomain → nx_domain, AXFRs → axfrs.
func snakeCase(s string) string {
	var sb strings.Builder
	runes := []rune(s)
	for i, r := range runes {
		if i > 0 && isUpper(r) {
			prev := runes[i-1]
			// Boundary after a lowercase/digit, or at an acronym's end
			// (upper followed by a lowercase run of length ≥ 2, so the
			// plural 's' in AXFRs does not split).
			if !isUpper(prev) {
				sb.WriteByte('_')
			} else if i+2 < len(runes) && !isUpper(runes[i+1]) && !isUpper(runes[i+2]) {
				sb.WriteByte('_')
			} else if i+2 == len(runes) && !isUpper(runes[i+1]) && runes[i+1] != 's' {
				sb.WriteByte('_')
			}
		}
		sb.WriteRune(toLower(r))
	}
	return sb.String()
}

func isUpper(r rune) bool { return r >= 'A' && r <= 'Z' }

func toLower(r rune) rune {
	if isUpper(r) {
		return r + ('a' - 'A')
	}
	return r
}
