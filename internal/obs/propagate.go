package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// Cross-process trace propagation. A resolver-side trace carries a
// process-unique TraceID; when propagation is on, the resolver stamps
// (TraceID, parent span ID, sampled) into an EDNS0 option on upstream
// queries, the authoritative side joins its own trace to that ID
// (Tracer.BeginRemote), and ships its finished span tree back in the
// response option (Trace.SpanPayload), which the resolver grafts under
// the in-flight attempt span (Trace.GraftRemote). Either daemon can then
// resolve /tracez?traceid=<hex> from its own ring: the resolver holds the
// fully-stitched tree, the authoritative side its joined share.

// traceIDState is a Weyl-sequence generator: one atomic add per Begin,
// process-unique, seeded from the clock so two daemons never collide in
// practice (and a collision only ever conflates two /tracez views).
var traceIDState atomic.Uint64

func init() { traceIDState.Store(uint64(time.Now().UnixNano())) }

func nextTraceID() uint64 {
	id := traceIDState.Add(0x9E3779B97F4A7C15)
	if id == 0 { // 0 means "no trace" on the wire
		id = traceIDState.Add(0x9E3779B97F4A7C15)
	}
	return id
}

// FormatTraceID renders a trace ID the way /tracez exposes and accepts it.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses the /tracez?traceid= form (16 hex digits, upper or
// lower case; shorter forms are accepted for hand-typed IDs).
func ParseTraceID(s string) (uint64, error) {
	if s == "" || len(s) > 16 {
		return 0, fmt.Errorf("obs: bad trace id %q", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q", s)
	}
	return v, nil
}

// ID returns the trace's process-unique identifier (0 for a nil trace).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.TraceID
}

// BeginRemote starts a trace joined to a remote parent: the far side's
// trace ID is adopted (instead of generating a fresh one) and the parent
// span recorded, so /tracez?traceid= on this daemon finds the joined
// share. Returns nil when tracing is off, like Begin.
func (t *Tracer) BeginRemote(qname, qtype string, traceID, parentSpanID uint64) *Trace {
	tr := t.Begin(qname, qtype)
	if tr == nil {
		return nil
	}
	tr.TraceID = traceID
	tr.ParentSpanID = parentSpanID
	return tr
}

// ByID returns the retained traces carrying the given trace ID, oldest
// first. Nil-safe. (The resolver's stitched tree and the auth side's
// joined share live under the same ID on their respective daemons.)
func (t *Tracer) ByID(id uint64) []*Trace {
	if t == nil || id == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Trace
	for _, tr := range t.ring {
		if tr.TraceID == id {
			out = append(out, tr)
		}
	}
	return out
}

// SpanID returns the span's identifier, assigning one on first use (IDs
// share the trace-ID generator). Nil-safe (returns 0).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.id == 0 {
		s.id = nextTraceID()
	}
	return s.id
}

// CurrentSpanID returns the innermost open span's ID (0 when none).
// Nil-safe. This is the parent-span reference propagated on the wire.
func (tr *Trace) CurrentSpanID() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	cur := tr.cur
	tr.mu.Unlock()
	return cur.SpanID()
}

// SpanPayload exports the trace's span tree as the compact JSON payload
// shipped inside the response's EDNS0 trace option. Open spans are
// closed at the current wall offset first (the caller is about to send
// the response, so their work is done). Returns nil when there are no
// spans or the trace is nil.
func (tr *Trace) SpanPayload() []byte {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) == 0 {
		return nil
	}
	closeOpenSpans(tr.spans, time.Since(tr.Start))
	out := make([]*SpanJSON, 0, len(tr.spans))
	for _, s := range tr.spans {
		out = append(out, s.export())
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil
	}
	return b
}

// GraftRemote attaches a far side's span payload (SpanPayload bytes)
// under the innermost open span — the resolver's in-flight network
// attempt — so the stitched tree shows auth-side gate/RRL/answer spans
// nested inside the exchange that paid for them. Remote offsets are
// rebased so the earliest remote span starts where the local parent
// does; durations are preserved. Nil-safe; malformed payloads are
// dropped (a trace must never fail a resolution).
func (tr *Trace) GraftRemote(payload []byte) {
	if tr == nil || len(payload) == 0 {
		return
	}
	var remote []*SpanJSON
	if err := json.Unmarshal(payload, &remote); err != nil || len(remote) == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	parent := tr.cur
	base := time.Duration(0)
	if parent != nil {
		base = parent.start
	}
	earliest := remote[0].StartNS
	for _, r := range remote[1:] {
		if r.StartNS < earliest {
			earliest = r.StartNS
		}
	}
	for _, r := range remote {
		s := spanFromJSON(tr, parent, r, base, earliest)
		if parent != nil {
			parent.children = append(parent.children, s)
		} else {
			tr.spans = append(tr.spans, s)
		}
	}
}

// spanFromJSON rebuilds a span subtree from its export form, rebasing
// start offsets. Caller holds tr.mu.
func spanFromJSON(tr *Trace, parent *Span, j *SpanJSON, base time.Duration, earliest int64) *Span {
	s := &Span{
		tr:     tr,
		parent: parent,
		Name:   j.Name,
		phase:  phaseFromString(j.Phase),
		detail: j.Detail,
		start:  base + time.Duration(j.StartNS-earliest),
		dur:    time.Duration(j.DurNS),
		ended:  true,
		remote: true,
	}
	for _, c := range j.Children {
		s.children = append(s.children, spanFromJSON(tr, s, c, base, earliest))
	}
	return s
}

// phaseFromString inverts Phase.String (unknown labels → other).
func phaseFromString(name string) Phase {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i)
		}
	}
	return PhaseOther
}
