package obs

// Percentile estimates the q-quantile (q in [0,1]) of a fixed-bucket
// histogram by nearest rank over the cumulative bucket counts, linearly
// interpolated inside the selected bucket.
//
// Boundary semantics: the rank-th sample is one of bucketCount samples
// spread across [lower, upper), at interpolated position
// (rank - cumBefore - 1) / bucketCount. A rank falling at the bucket
// floor (the bucket's first sample) therefore returns the bucket's
// *lower* edge — not the upper edge, which would overestimate by a full
// bucket width exactly when the quantile sits on a boundary. Samples in
// the +Inf overflow bucket report the highest finite bound (there is no
// upper edge to interpolate toward). An empty histogram reports 0.
func (h *Histogram) Percentile(q float64) float64 {
	return h.quantileFrom(q, h.cumulative())
}

// Quantiles estimates a batch of quantiles in one snapshot: every
// estimate is computed from the same cumulative view, so a concurrent
// Observe can never make the returned slice non-monotonic for ascending
// qs (per-call Percentile snapshots could).
func (h *Histogram) Quantiles(qs []float64) []float64 {
	cum := h.cumulative()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.quantileFrom(q, cum)
	}
	return out
}

// cumulative snapshots the bucket counts as a cumulative array (one
// entry per bucket including +Inf).
func (h *Histogram) cumulative() []int64 {
	cum := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return cum
}

func (h *Histogram) quantileFrom(q float64, cum []int64) float64 {
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.9999999999) // ceil(q*total)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	// First bucket whose cumulative count reaches the rank.
	i := 0
	for cum[i] < rank {
		i++
	}
	var before int64
	if i > 0 {
		before = cum[i-1]
	}
	inBucket := cum[i] - before
	if i == len(h.bounds) {
		// Overflow bucket: no finite upper edge. Report the highest
		// finite bound (or 0 for a boundless histogram).
		if len(h.bounds) == 0 {
			return 0
		}
		return h.bounds[len(h.bounds)-1]
	}
	lower := 0.0
	if i > 0 {
		lower = h.bounds[i-1]
	}
	upper := h.bounds[i]
	// Position of the rank-th sample among the bucket's samples; the
	// bucket's first sample sits at the lower edge (see doc comment).
	frac := float64(rank-before-1) / float64(inBucket)
	return lower + frac*(upper-lower)
}
