package obs

import "testing"

// BenchmarkSpan measures the tracing layer itself: one Begin, two spans
// (cache probe + attempt, the warm-resolution shape), and Finish with
// attribution. Disabled is the always-on cost every resolution pays —
// it must stay within noise of no instrumentation at all; Enabled is
// the budget -trace adds on top of real resolution work.
func BenchmarkSpan(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		t := NewTracer(8, 0)
		t.SetEnabled(enabled)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := t.Begin("www.example.com.", "A")
			sp := tr.StartSpan(PhaseCache, "cache-probe")
			sp.End()
			x := tr.StartSpan(PhaseNet, "attempt")
			x.End()
			tr.Finish("NOERROR", 0, 1, nil)
		}
	}
	b.Run("Disabled", func(b *testing.B) { run(b, false) })
	b.Run("Enabled", func(b *testing.B) { run(b, true) })
}

// BenchmarkHistogramObserve is the per-sample cost of the registry
// histograms the attribution pipeline feeds on every finished trace.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_seconds", "bench", nil, []float64{
		0.001, 0.005, 0.025, 0.1, 0.5, 2.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}
