package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter", Labels{"mode": "hints"})
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d", c.Value())
	}
	// Same (name, labels) returns the same series.
	if r.Counter("test_total", "a counter", Labels{"mode": "hints"}) != c {
		t.Error("counter series not deduplicated")
	}
	// Different labels make a new series.
	c2 := r.Counter("test_total", "a counter", Labels{"mode": "preload"})
	if c2 == c {
		t.Error("label variants must be distinct series")
	}

	g := r.Gauge("test_gauge", "a gauge", nil)
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %f", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter should panic")
		}
	}()
	r.Gauge("x", "", nil)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", nil, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.56) > 1e-9 {
		t.Errorf("sum = %f", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(2.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 8000*2.5 {
		t.Errorf("sum = %f", h.Sum())
	}
}

func TestCollectorRunsAtScrape(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.AddCollector(CollectorFunc(func(r *Registry) {
		calls++
		r.Gauge("scrapes", "", nil).Set(float64(calls))
	}))
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)
	_ = r.WritePrometheus(&buf)
	if calls != 2 {
		t.Errorf("collector ran %d times, want 2", calls)
	}
	samples := r.Snapshot()
	if len(samples) != 1 || samples[0].Value != 3 {
		t.Errorf("snapshot = %+v", samples)
	}
}

// TestPrometheusGolden pins the full text exposition format against a
// golden file so format drift is an explicit decision.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("rootless_resolver_resolutions_total", "total resolutions", Labels{"mode": "lookaside"}).Set(120)
	r.Counter("rootless_resolver_resolutions_total", "total resolutions", Labels{"mode": "hints"}).Set(80)
	r.Gauge("rootless_cache_rrsets", "cached RRsets", nil).Set(4321)
	r.GaugeFunc("rootless_zone_age_seconds", "staleness age", Labels{"serial": "2019060700"},
		func() float64 { return 151.5 })
	h := r.Histogram("rootless_resolver_resolution_seconds", "resolution latency", nil,
		[]float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.03)
	h.ObserveDuration(250 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteJSONIsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", Labels{"x": "1"}).Set(7)
	r.Gauge("b", "", nil).Set(1.5)
	r.Histogram("c", "", nil, []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	for _, name := range []string{"a_total", "b", "c"} {
		if _, ok := doc[name]; !ok {
			t.Errorf("JSON missing %q", name)
		}
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Resolutions":     "resolutions",
		"CacheAnswers":    "cache_answers",
		"NegCacheAnswers": "neg_cache_answers",
		"NXDomain":        "nx_domain",
		"TLDQueries":      "tld_queries",
		"SRTTUpdates":     "srtt_updates",
		"CNAMEChases":     "cname_chases",
		"AXFRs":           "axfrs",
		"IXFRs":           "ixfrs",
		"Hits":            "hits",
		"BundleBytes":     "bundle_bytes",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSetCountersFromStruct(t *testing.T) {
	type demo struct {
		Hits      int64
		Misses    int64
		Rounds    int
		Serial    uint32
		Rate      float64 // non-integer: skipped
		unexposed int64   // unexported: skipped
	}
	_ = demo{}.unexposed
	r := NewRegistry()
	SetCountersFromStruct(r, "demo", "demo stats", Labels{"id": "1"},
		demo{Hits: 10, Misses: 3, Rounds: 2, Serial: 9, Rate: 0.5})
	samples := r.Snapshot()
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4: %+v", len(samples), samples)
	}
	want := map[string]float64{
		"demo_hits_total":   10,
		"demo_misses_total": 3,
		"demo_rounds_total": 2,
		"demo_serial_total": 9,
	}
	for _, s := range samples {
		if v, ok := want[s.Name]; !ok || v != s.Value {
			t.Errorf("sample %s = %f, want %f", s.Name, s.Value, v)
		}
		delete(want, s.Name)
	}
	if len(want) != 0 {
		t.Errorf("missing samples: %v", want)
	}
}
