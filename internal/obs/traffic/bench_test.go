package traffic

import (
	"fmt"
	"net/netip"
	"testing"

	"rootless/internal/dnswire"
)

// The hot-path cost budget: Classify and each sketch at ≤ ~20 ns/op and
// zero allocations (the alloc half is pinned deterministically by
// TestObserveAllocs; the ns/op travels through BENCH_PR6.json).

func BenchmarkTrafficClassify(b *testing.B) {
	tlds := testTLDs()
	names := [4]dnswire.Name{
		"www.example.com.", "junk.bogus.", "abcdefghij.", "4.3.2.10.in-addr.arpa.",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Classify(names[i&3], dnswire.TypeA, tlds)
	}
}

// BenchmarkTrafficObserve is the full per-query cost the resolver hot
// path pays: classify + dup filter + top-K (steady-state hit) + HLL.
func BenchmarkTrafficObserve(b *testing.B) {
	a := NewAnalyzer(testTLDs(), 20)
	names := [4]dnswire.Name{
		"www.example.com.", "junk.bogus.", "mail.example.org.", "www.example.net.",
	}
	for _, n := range names {
		a.Observe(n, dnswire.TypeA) // warm the top-K
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Observe(names[i&3], dnswire.TypeA)
	}
}

func BenchmarkTrafficObserveClient(b *testing.B) {
	a := NewAnalyzer(testTLDs(), 20)
	addrs := [4]netip.Addr{
		netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2"),
		netip.MustParseAddr("198.51.100.3"), netip.MustParseAddr("203.0.113.4"),
	}
	for _, ad := range addrs {
		a.ObserveClient(ad)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ObserveClient(addrs[i&3])
	}
}

// BenchmarkTrafficTopKHit is the lock-free already-tracked path alone.
func BenchmarkTrafficTopKHit(b *testing.B) {
	tk := NewTopK[string](16)
	keys := [4]string{"a.com.", "b.com.", "c.com.", "d.com."}
	hs := [4]uint64{}
	for i, k := range keys {
		hs[i] = mix64(uint64(i) + 7)
		tk.Offer(k, hs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Offer(keys[i&3], hs[i&3])
	}
}

// BenchmarkTrafficTopKMiss is the cold-key path: one admission-counter
// increment, no mutex once the table is full and the key stays cold.
func BenchmarkTrafficTopKMiss(b *testing.B) {
	tk := NewTopK[string](4)
	for i := 0; i < 4; i++ {
		tk.Offer(fmt.Sprintf("warm%d.com.", i), mix64(uint64(i)))
	}
	// Pin the residents far above any admission estimate b.N can build,
	// so the cold keys stay cold for the whole run.
	for _, e := range *tk.live.Load() {
		e.count.Store(1 << 40)
	}
	tk.minAt.Store(1 << 40)
	cold := [4]string{"w.org.", "x.org.", "y.org.", "z.org."}
	hs := [4]uint64{mix64(1001), mix64(1002), mix64(1003), mix64(1004)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Offer(cold[i&3], hs[i&3])
	}
}

func BenchmarkTrafficHLLAdd(b *testing.B) {
	h := NewHLL(DefaultHLLPrecision)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(mix64(uint64(i)))
	}
}
