package traffic

import (
	"encoding/json"
	"fmt"
	"hash/maphash"
	"math/rand"
	"net/http/httptest"
	"net/netip"
	"sync"
	"testing"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

func testTLDs() *TLDSet {
	return NewTLDSet([]dnswire.Name{"com.", "org.", "net.", "arpa.", "llc."})
}

func TestClassify(t *testing.T) {
	tlds := testTLDs()
	cases := []struct {
		name  dnswire.Name
		qtype dnswire.Type
		want  Class
	}{
		{"www.example.com.", dnswire.TypeA, ClassValid},
		{"com.", dnswire.TypeNS, ClassValid},
		{".", dnswire.TypeNS, ClassValid}, // priming query
		{"printer.local.", dnswire.TypeA, ClassBogusTLD},
		{"host.corp.", dnswire.TypeA, ClassBogusTLD},
		{"x1234-zz.", dnswire.TypeA, ClassBogusTLD},             // single label, not probe-shaped
		{"abcdefg.", dnswire.TypeA, ClassChromiumProbe},         // 7 lowercase letters
		{"qwertyuiopasdfg.", dnswire.TypeA, ClassChromiumProbe}, // 15
		{"abcdef.", dnswire.TypeA, ClassBogusTLD},               // 6: too short for a probe
		{"qwertyuiopasdfgh.", dnswire.TypeA, ClassBogusTLD},     // 16: too long
		{"abcdefgh.com.", dnswire.TypeA, ClassValid},            // probe shape under a valid TLD
		{"4.3.2.10.in-addr.arpa.", dnswire.TypePTR, ClassPTRPrivate},
		{"1.0.0.127.in-addr.arpa.", dnswire.TypePTR, ClassPTRPrivate},
		{"9.8.168.192.in-addr.arpa.", dnswire.TypePTR, ClassPTRPrivate},
		{"1.1.16.172.in-addr.arpa.", dnswire.TypePTR, ClassPTRPrivate},
		{"1.1.31.172.in-addr.arpa.", dnswire.TypePTR, ClassPTRPrivate},
		{"1.1.32.172.in-addr.arpa.", dnswire.TypePTR, ClassValid}, // 172.32 is public
		{"7.7.254.169.in-addr.arpa.", dnswire.TypePTR, ClassPTRPrivate},
		{"4.3.2.8.in-addr.arpa.", dnswire.TypePTR, ClassValid}, // 8.2.3.4 is public
		{"4.3.2.10.in-addr.arpa.", dnswire.TypeA, ClassValid},  // not a PTR query
		{"x.in-addr.arpa.", dnswire.TypePTR, ClassValid},       // malformed octet
	}
	for _, c := range cases {
		if got := Classify(c.name, c.qtype, tlds); got != c.want {
			t.Errorf("Classify(%q, %v) = %v, want %v", c.name, c.qtype, got, c.want)
		}
	}
}

func TestClassifyNilSet(t *testing.T) {
	if got := Classify("www.example.com.", dnswire.TypeA, nil); got != ClassBogusTLD {
		t.Errorf("nil TLD set should make every TLD bogus, got %v", got)
	}
}

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		s := c.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("class %d has bad or duplicate label %q", c, s)
		}
		seen[s] = true
	}
	if !ClassBogusTLD.InvalidTLD() || !ClassChromiumProbe.InvalidTLD() || ClassPTRPrivate.InvalidTLD() {
		t.Error("InvalidTLD must cover exactly the invalid-TLD classes")
	}
	if ClassValid.Junk() || !ClassValidRepeat.Junk() {
		t.Error("Junk: valid is not junk, everything else is")
	}
}

func TestAnalyzerRepeats(t *testing.T) {
	a := NewAnalyzer(testTLDs(), 8)
	if got := a.Observe("www.example.com.", dnswire.TypeA); got != ClassValid {
		t.Fatalf("first observation = %v", got)
	}
	if got := a.Observe("www.example.com.", dnswire.TypeA); got != ClassValidRepeat {
		t.Fatalf("second observation = %v, want repeat", got)
	}
	// A repeat of a bogus name stays in its junk class.
	a.Observe("bogus.invalid.", dnswire.TypeA)
	if got := a.Observe("bogus.invalid.", dnswire.TypeA); got != ClassBogusTLD {
		t.Fatalf("bogus repeat = %v, want bogus_tld", got)
	}
	counts := a.Counts()
	if counts[ClassValid] != 1 || counts[ClassValidRepeat] != 1 || counts[ClassBogusTLD] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestAnalyzerJunkShare(t *testing.T) {
	a := NewAnalyzer(testTLDs(), 8)
	for i := 0; i < 60; i++ {
		a.Observe(dnswire.Name(fmt.Sprintf("host%d.nonexistent.", i)), dnswire.TypeA)
	}
	for i := 0; i < 40; i++ {
		a.Observe(dnswire.Name(fmt.Sprintf("host%d.example.com.", i)), dnswire.TypeA)
	}
	if got := a.JunkShare(); got < 0.59 || got > 0.61 {
		t.Errorf("junk share = %f, want 0.60", got)
	}
}

func TestTopKHeavyHitters(t *testing.T) {
	const k = 8
	tk := NewTopK[string](k)
	seed := maphash.MakeSeed()
	hash := func(s string) uint64 { return maphash.String(seed, s) }
	truth := map[string]int64{}
	// Zipf-ish: a few heavy names amid a long random tail.
	rng := rand.New(rand.NewSource(7))
	heavy := []string{"a.com.", "b.com.", "c.com."}
	for i := 0; i < 50000; i++ {
		var key string
		switch {
		case rng.Intn(10) < 6:
			key = heavy[rng.Intn(len(heavy))]
		default:
			key = fmt.Sprintf("tail%d.com.", rng.Intn(5000))
		}
		truth[key]++
		tk.Offer(key, hash(key))
	}
	top := tk.Top(k)
	if len(top) != k {
		t.Fatalf("top size = %d", len(top))
	}
	byKey := map[string]Counted[string]{}
	for _, e := range top {
		byKey[e.Key] = e
	}
	for _, h := range heavy {
		e, ok := byKey[h]
		if !ok {
			t.Fatalf("heavy hitter %q missing from top-%d", h, k)
		}
		// Space-Saving guarantee: count overestimates truth by ≤ Err.
		if e.Count < truth[h] || e.Count-e.Err > truth[h] {
			t.Errorf("%q: reported %d (±%d), truth %d", h, e.Count, e.Err, truth[h])
		}
	}
}

func TestHLLAccuracy(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Add(mix64(uint64(i) + 0x1234))
	}
	est := h.Estimate()
	if est < 0.95*n || est > 1.05*n {
		t.Errorf("estimate %f for %d distinct (want within 5%%)", est, n)
	}
	// Small range: linear counting keeps tiny cardinalities near-exact.
	small := NewHLL(DefaultHLLPrecision)
	for i := 0; i < 10; i++ {
		small.Add(mix64(uint64(i) + 99))
	}
	if est := small.Estimate(); est < 9 || est > 11 {
		t.Errorf("small estimate %f, want ~10", est)
	}
}

func TestAnalyzerCollect(t *testing.T) {
	a := NewAnalyzer(testTLDs(), 8)
	a.Observe("www.example.com.", dnswire.TypeA)
	a.Observe("junk.bogus.", dnswire.TypeA)
	a.ObserveClient(netip.MustParseAddr("192.0.2.1"))
	reg := obs.NewRegistry()
	reg.AddCollector(a)
	byKey := map[string]float64{}
	for _, s := range reg.Snapshot() {
		byKey[s.Name+"/"+s.Labels["class"]] = s.Value
	}
	if byKey["rootless_traffic_class_total/valid"] != 1 ||
		byKey["rootless_traffic_class_total/bogus_tld"] != 1 {
		t.Errorf("class counters: %v", byKey)
	}
	if byKey["rootless_traffic_observed_total/"] != 2 {
		t.Errorf("observed total: %v", byKey["rootless_traffic_observed_total/"])
	}
	if byKey["rootless_traffic_unique_clients/"] < 0.5 {
		t.Errorf("unique clients: %v", byKey["rootless_traffic_unique_clients/"])
	}
}

func TestAnalyzerNilSafe(t *testing.T) {
	var a *Analyzer
	if got := a.Observe("x.com.", dnswire.TypeA); got != ClassValid {
		t.Errorf("nil Observe = %v", got)
	}
	a.ObserveClient(netip.MustParseAddr("192.0.2.1"))
	a.SetTLDs(nil)
	a.Collect(obs.NewRegistry())
	if a.Observed() != 0 || a.JunkShare() != 0 || a.TopQnames(5) != nil || a.UniqueQnames() != 0 {
		t.Error("nil analyzer must report zeroes")
	}
}

func TestAnalyzerConcurrent(t *testing.T) {
	a := NewAnalyzer(testTLDs(), 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a.Observe(dnswire.Name(fmt.Sprintf("h%d.example.com.", i%50)), dnswire.TypeA)
				a.ObserveClient(netip.AddrFrom4([4]byte{10, 0, byte(g), byte(i)}))
			}
		}(g)
	}
	wg.Wait()
	if a.Observed() != 16000 {
		t.Errorf("observed = %d", a.Observed())
	}
	if est := a.UniqueQnames(); est < 40 || est > 60 {
		t.Errorf("unique qnames = %f, want ~50", est)
	}
}

// TestObserveAllocs pins the hot-path contract: classifying a query and
// feeding every sketch allocates nothing.
func TestObserveAllocs(t *testing.T) {
	a := NewAnalyzer(testTLDs(), 8)
	name := dnswire.Name("www.example.com.")
	bogus := dnswire.Name("probe.invalid.")
	addr := netip.MustParseAddr("192.0.2.7")
	// Warm the top-K tables so the measured path is the steady state.
	a.Observe(name, dnswire.TypeA)
	a.ObserveClient(addr)
	if n := testing.AllocsPerRun(1000, func() {
		a.Observe(name, dnswire.TypeA)
		a.Observe(bogus, dnswire.TypeA)
	}); n != 0 {
		t.Errorf("Observe allocates %f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		a.ObserveClient(addr)
	}); n != 0 {
		t.Errorf("ObserveClient allocates %f per run, want 0", n)
	}
	tlds := testTLDs()
	if n := testing.AllocsPerRun(1000, func() {
		Classify(name, dnswire.TypeA, tlds)
	}); n != 0 {
		t.Errorf("Classify allocates %f per run, want 0", n)
	}
}

func TestHandler(t *testing.T) {
	a := NewAnalyzer(testTLDs(), 8)
	a.Observe("www.example.com.", dnswire.TypeA)
	a.Observe("junk.bogus.", dnswire.TypeA)
	a.ObserveClient(netip.MustParseAddr("192.0.2.1"))
	h := a.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/topk", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "text/plain; charset=utf-8" {
		t.Errorf("text view: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/topk?format=json&n=3", nil))
	if rec.Code != 200 {
		t.Fatalf("json view: %d", rec.Code)
	}
	var doc topkDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Observed != 2 || doc.Classes["valid"] != 1 || len(doc.TopQnames) != 2 {
		t.Errorf("doc = %+v", doc)
	}

	for _, bad := range []string{"/topk?format=xml", "/topk?n=0", "/topk?n=x"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 400 {
			t.Errorf("%s: code %d, want 400", bad, rec.Code)
		}
	}
}
