package traffic

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HLL is a HyperLogLog cardinality sketch over pre-hashed 64-bit values.
// With precision p it keeps 2^p registers and estimates distinct counts
// with a standard error of ~1.04/sqrt(2^p) — p=12 (4 KiB of state as
// bytes; 16 KiB here because registers are atomic.Uint32 for lock-free
// hot-path updates) gives ~1.6 %. Add is a shift, a leading-zero count,
// and a CAS-max: a handful of nanoseconds, safe from any goroutine.
type HLL struct {
	p    uint8
	regs []atomic.Uint32
}

// DefaultHLLPrecision balances memory (4096 registers) against a ~1.6 %
// standard error — far below the shares the composition story needs.
const DefaultHLLPrecision = 12

// NewHLL creates a sketch with 2^p registers (4 ≤ p ≤ 16).
func NewHLL(p uint8) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	return &HLL{p: p, regs: make([]atomic.Uint32, 1<<p)}
}

// Add observes one hashed value.
func (h *HLL) Add(x uint64) {
	if h == nil {
		return
	}
	idx := x >> (64 - h.p)
	// Rank = position of the first 1-bit in the remaining 64-p bits,
	// capped when they are all zero.
	rank := uint32(bits.LeadingZeros64(x<<h.p|1<<(uint(h.p)-1))) + 1
	reg := &h.regs[idx]
	for {
		cur := reg.Load()
		if rank <= cur || reg.CompareAndSwap(cur, rank) {
			return
		}
	}
}

// Estimate returns the approximate number of distinct values added.
func (h *HLL) Estimate() float64 {
	if h == nil {
		return 0
	}
	m := float64(uint64(1) << h.p)
	sum := 0.0
	zeros := 0
	for i := range h.regs {
		r := h.regs[i].Load()
		if r == 0 {
			zeros++
		}
		sum += 1 / float64(uint64(1)<<r)
	}
	est := alpha(h.p) * m * m / sum
	// Small-range correction: linear counting while registers are sparse.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// alpha is the standard HyperLogLog bias-correction constant.
func alpha(p uint8) float64 {
	switch p {
	case 4:
		return 0.673
	case 5:
		return 0.697
	case 6:
		return 0.709
	}
	m := float64(uint64(1) << p)
	return 0.7213 / (1 + 1.079/m)
}
