package traffic

import (
	"hash/maphash"
	"net/netip"
	"sync/atomic"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// dupBits sizes the recent-duplicate filter: 2^dupBits fingerprint slots,
// giving a "recently" window of one-to-two times 2^dupBits observations.
const dupBits = 13

// Analyzer is the streaming composition analyzer a daemon installs on
// its query path. Observe classifies one query (~tens of nanoseconds,
// zero allocations) and feeds the sketches; ObserveClient does the same
// for the client address on the socket path. All state is atomic or
// lock-free-read, so one Analyzer serves every serving goroutine. All
// methods are nil-receiver-safe: instrumented code needs no enabled
// checks, mirroring the tracer's contract.
type Analyzer struct {
	seed maphash.Seed
	tlds atomic.Pointer[TLDSet]

	observed atomic.Int64 // queries seen (Observe calls)
	clients  atomic.Int64 // client addresses seen (ObserveClient calls)
	classes  [NumClasses]counter

	// dup detects exact (qname,qtype-agnostic) repeats within a recent
	// window: a fingerprint table stamped with an epoch byte derived from
	// the observation count, so entries age out without any sweeper.
	dup [1 << dupBits]atomic.Uint64

	topQnames  *TopK[string]
	topClients *TopK[netip.Addr]
	uqQnames   *HLL
	uqClients  *HLL
}

// NewAnalyzer builds an analyzer over the given valid-TLD universe,
// tracking the k heaviest qnames and clients (k <= 0 defaults to 20).
func NewAnalyzer(tlds *TLDSet, k int) *Analyzer {
	if k <= 0 {
		k = 20
	}
	a := &Analyzer{
		seed:       maphash.MakeSeed(),
		topQnames:  NewTopK[string](k),
		topClients: NewTopK[netip.Addr](k),
		uqQnames:   NewHLL(DefaultHLLPrecision),
		uqClients:  NewHLL(DefaultHLLPrecision),
	}
	a.tlds.Store(tlds)
	return a
}

// SetTLDs swaps in a fresh valid-TLD universe (zone reload). Nil-safe.
func (a *Analyzer) SetTLDs(tlds *TLDSet) {
	if a != nil {
		a.tlds.Store(tlds)
	}
}

// Observe classifies one query, updates the per-class counters and the
// qname sketches, and returns the class (for span tagging). Zero
// allocations; nil-safe (a nil analyzer reports ClassValid).
func (a *Analyzer) Observe(name dnswire.Name, qtype dnswire.Type) Class {
	if a == nil {
		return ClassValid
	}
	c := Classify(name, qtype, a.tlds.Load())
	n := a.observed.Add(1)
	h := maphash.String(a.seed, string(name))
	if a.seenRecently(h, n) && c == ClassValid {
		c = ClassValidRepeat
	}
	a.classes[c].Add(1)
	a.uqQnames.Add(h)
	a.topQnames.Offer(string(name), h)
	return c
}

// ObserveClient records one query's source address into the client
// sketches. Zero allocations on the hot path (the address is only
// rendered to a string if it is promoted into the top-K). Nil-safe.
func (a *Analyzer) ObserveClient(addr netip.Addr) {
	if a == nil || !addr.IsValid() {
		return
	}
	a.clients.Add(1)
	h := addrHash(addr)
	a.uqClients.Add(h)
	a.topClients.Offer(addr, h)
}

// addrHash mixes an address's 16-byte form into a 64-bit hash without
// maphash (whose []byte path would force the array to escape).
func addrHash(addr netip.Addr) uint64 {
	b := addr.As16()
	hi := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	lo := uint64(b[8])<<56 | uint64(b[9])<<48 | uint64(b[10])<<40 | uint64(b[11])<<32 |
		uint64(b[12])<<24 | uint64(b[13])<<16 | uint64(b[14])<<8 | uint64(b[15])
	return mix64(hi ^ mix64(lo^0x9e3779b97f4a7c15))
}

// mix64 is the splitmix64 finalizer: cheap, well-distributed, stateless.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// seenRecently reports whether h was observed within the last ~2^dupBits
// observations, then stamps it. Each slot stores a fingerprint (the high
// bits of h) plus an epoch byte; an entry whose epoch is current or
// one old counts as recent, so the effective window slides between
// 2^dupBits and 2^(dupBits+1) observations without any cleanup pass.
func (a *Analyzer) seenRecently(h uint64, n int64) bool {
	epoch := uint64(n>>dupBits) & 0xff
	slot := &a.dup[h&(1<<dupBits-1)]
	want := h&^uint64(0xff) | epoch
	old := slot.Load()
	slot.Store(want)
	if old&^uint64(0xff) != h&^uint64(0xff) {
		return false
	}
	oldEpoch := old & 0xff
	return oldEpoch == epoch || oldEpoch == (epoch-1)&0xff
}

// Observed returns how many queries Observe has classified. Nil-safe.
func (a *Analyzer) Observed() int64 {
	if a == nil {
		return 0
	}
	return a.observed.Load()
}

// Counts returns the per-class query counts. Nil-safe.
func (a *Analyzer) Counts() [NumClasses]int64 {
	var out [NumClasses]int64
	if a == nil {
		return out
	}
	for i := range out {
		out[i] = a.classes[i].Load()
	}
	return out
}

// JunkShare is the fraction of observed queries in any junk class.
func (a *Analyzer) JunkShare() float64 {
	counts := a.Counts()
	total, junk := int64(0), int64(0)
	for c, n := range counts {
		total += n
		if Class(c).Junk() {
			junk += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(junk) / float64(total)
}

// UniqueQnames estimates the distinct-qname cardinality. Nil-safe.
func (a *Analyzer) UniqueQnames() float64 {
	if a == nil {
		return 0
	}
	return a.uqQnames.Estimate()
}

// UniqueClients estimates the distinct-client cardinality. Nil-safe.
func (a *Analyzer) UniqueClients() float64 {
	if a == nil {
		return 0
	}
	return a.uqClients.Estimate()
}

// TopQnames returns the heaviest-hitter qnames, heaviest first. Nil-safe.
func (a *Analyzer) TopQnames(n int) []Counted[string] {
	if a == nil {
		return nil
	}
	return a.topQnames.Top(n)
}

// TopClients returns the heaviest-hitter clients, heaviest first. Nil-safe.
func (a *Analyzer) TopClients(n int) []Counted[netip.Addr] {
	if a == nil {
		return nil
	}
	return a.topClients.Top(n)
}

// Collect implements obs.Collector: the rootless_traffic_* families.
// Nil-safe so daemons can register unconditionally.
func (a *Analyzer) Collect(r *obs.Registry) {
	if a == nil {
		return
	}
	counts := a.Counts()
	for _, c := range Classes() {
		r.Counter("rootless_traffic_class_total",
			"queries observed by composition class (§2.2 taxonomy)",
			obs.Labels{"class": c.String()}).Set(counts[c])
	}
	r.Counter("rootless_traffic_observed_total",
		"queries classified by the traffic analyzer", nil).Set(a.Observed())
	r.Counter("rootless_traffic_clients_observed_total",
		"client addresses observed by the traffic analyzer", nil).Set(a.clients.Load())
	r.Gauge("rootless_traffic_unique_qnames",
		"HyperLogLog estimate of distinct qnames observed", nil).Set(a.UniqueQnames())
	r.Gauge("rootless_traffic_unique_clients",
		"HyperLogLog estimate of distinct client addresses observed", nil).Set(a.UniqueClients())
}
