package traffic

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// topkDoc is the JSON shape of the /topk admin view.
type topkDoc struct {
	Observed      int64            `json:"observed"`
	Clients       int64            `json:"clients_observed"`
	Classes       map[string]int64 `json:"classes"`
	JunkShare     float64          `json:"junk_share"`
	UniqueQnames  float64          `json:"unique_qnames"`
	UniqueClients float64          `json:"unique_clients"`
	TopQnames     []topkRow        `json:"top_qnames"`
	TopClients    []topkRow        `json:"top_clients"`
}

type topkRow struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
	Err   int64  `json:"err"`
}

// Handler serves the /topk admin view: composition shares, cardinality
// estimates, and the heavy-hitter tables. Text by default,
// ?format=json for JSON; ?n= bounds the table size. Bad query
// parameters get a 400, matching the admin endpoint contract.
func (a *Analyzer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 1 {
				http.Error(w, "bad n parameter (want a positive integer)", http.StatusBadRequest)
				return
			}
			n = v
		}
		switch r.URL.Query().Get("format") {
		case "", "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			a.writeText(w, n)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(a.doc(n))
		default:
			http.Error(w, "bad format parameter (want text or json)", http.StatusBadRequest)
		}
	})
}

func (a *Analyzer) doc(n int) topkDoc {
	counts := a.Counts()
	doc := topkDoc{
		Observed:      a.Observed(),
		Clients:       a.clients.Load(),
		Classes:       make(map[string]int64, NumClasses),
		JunkShare:     a.JunkShare(),
		UniqueQnames:  a.UniqueQnames(),
		UniqueClients: a.UniqueClients(),
	}
	for _, c := range Classes() {
		doc.Classes[c.String()] = counts[c]
	}
	for _, e := range a.TopQnames(n) {
		doc.TopQnames = append(doc.TopQnames, topkRow{Key: e.Key, Count: e.Count, Err: e.Err})
	}
	for _, e := range a.TopClients(n) {
		doc.TopClients = append(doc.TopClients, topkRow{Key: e.Key.String(), Count: e.Count, Err: e.Err})
	}
	return doc
}

func (a *Analyzer) writeText(w http.ResponseWriter, n int) {
	doc := a.doc(n)
	fmt.Fprintf(w, "traffic composition: %d queries, %d client observations\n", doc.Observed, doc.Clients)
	for _, c := range Classes() {
		share := 0.0
		if doc.Observed > 0 {
			share = float64(doc.Classes[c.String()]) / float64(doc.Observed)
		}
		fmt.Fprintf(w, "  %-15s %10d  %5.1f%%\n", c.String(), doc.Classes[c.String()], 100*share)
	}
	fmt.Fprintf(w, "junk share: %.1f%%; unique qnames ~%.0f, unique clients ~%.0f\n",
		100*doc.JunkShare, doc.UniqueQnames, doc.UniqueClients)
	writeTable := func(title string, rows []topkRow) {
		fmt.Fprintf(w, "%s:\n", title)
		if len(rows) == 0 {
			fmt.Fprintf(w, "  (none)\n")
			return
		}
		for _, row := range rows {
			fmt.Fprintf(w, "  %10d (±%d)  %s\n", row.Count, row.Err, row.Key)
		}
	}
	writeTable("top qnames", doc.TopQnames)
	writeTable("top clients", doc.TopClients)
}
