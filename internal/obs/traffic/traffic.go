// Package traffic is the streaming query-composition analyzer: the §2.2
// junk taxonomy applied not to an offline DITL trace but to the live
// query stream on the resolver and authserver hot paths. A pure,
// allocation-free classifier buckets each query into the shared class
// enum (valid, repeated, bogus TLD, Chromium-probe-shaped, private-space
// PTR), and sketch-based aggregates — a Filtered Space-Saving top-K for
// heavy-hitter qnames/clients and a HyperLogLog for unique-qname/
// unique-client cardinality — answer "what is the traffic composed of,
// right now?" in fixed memory. internal/ditl's offline analyzer routes
// its bogus-TLD determination through the same Classify, so the live and
// offline taxonomies cannot drift (pinned by a parity test).
package traffic

import (
	"sync/atomic"

	"rootless/internal/dnswire"
)

// Class is one bucket of the query-composition taxonomy. The zero value
// is ClassValid so a nil analyzer's Observe can return it harmlessly.
type Class uint8

// The taxonomy. Order is stable: counters and exposition index by it.
const (
	// ClassValid names an existing TLD and none of the junk shapes apply.
	ClassValid Class = iota
	// ClassValidRepeat is a valid query whose exact (qname, qtype) was
	// observed recently — the redundancy an upstream cache would absorb.
	ClassValidRepeat
	// ClassBogusTLD names a TLD that does not exist in the root zone.
	ClassBogusTLD
	// ClassChromiumProbe is the single-label random-alpha probe shape
	// Chromium issues to detect NXDOMAIN-rewriting middleboxes (7-15
	// lowercase letters, no dots) — a large, identifiable junk family.
	ClassChromiumProbe
	// ClassPTRPrivate is a PTR query under in-addr.arpa for RFC 1918 /
	// loopback / link-local space — leaked reverse lookups that can never
	// have a public answer.
	ClassPTRPrivate

	// NumClasses sizes per-class arrays.
	NumClasses = int(ClassPTRPrivate) + 1
)

// classNames are the exposition labels; fixed array so String is
// allocation-free on the hot path.
var classNames = [NumClasses]string{
	"valid", "valid_repeat", "bogus_tld", "chromium_probe", "ptr_private",
}

// String returns the stable exposition label ("bogus_tld", ...).
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "unknown"
}

// Classes lists every class in counter order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// InvalidTLD reports whether the class means "the TLD does not exist" —
// the paper's bogus-TLD bucket. ditl's offline analyzer counts exactly
// these as BogusTLD, keeping the two taxonomies share-for-share equal.
func (c Class) InvalidTLD() bool {
	return c == ClassBogusTLD || c == ClassChromiumProbe
}

// Junk reports whether the query is junk in the §2.2 sense: it should
// never have reached a root server (bogus TLD, probe, leaked private
// PTR) or would have been absorbed by any reasonable cache (repeat).
func (c Class) Junk() bool { return c != ClassValid }

// TLDSet is the valid-TLD universe the classifier checks names against.
// Immutable once built; swap a fresh set atomically via Analyzer.SetTLDs
// when the zone reloads.
type TLDSet struct {
	m map[string]struct{}
}

// NewTLDSet builds a set from canonical TLD names ("com.", "llc.", ...).
// The trailing dot is optional; names are stored bare.
func NewTLDSet(tlds []dnswire.Name) *TLDSet {
	s := &TLDSet{m: make(map[string]struct{}, len(tlds))}
	for _, t := range tlds {
		k := string(t)
		if n := len(k); n > 0 && k[n-1] == '.' {
			k = k[:n-1]
		}
		if k != "" {
			s.m[k] = struct{}{}
		}
	}
	return s
}

// Contains reports whether the bare (no trailing dot) TLD is in the set.
func (s *TLDSet) Contains(tld string) bool {
	if s == nil {
		return false
	}
	_, ok := s.m[tld]
	return ok
}

// Len returns the universe size.
func (s *TLDSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Classify buckets one query into the static taxonomy. It never
// allocates: the TLD is located by scanning the canonical name string
// and checked as a substring, so the hot paths can classify every query.
// The stateful refinement ClassValid → ClassValidRepeat is the
// Analyzer's job; Classify alone never returns ClassValidRepeat.
//
// Precedence: TLD validity is decided first (an invalid TLD is bogus
// regardless of shape, with the Chromium-probe shape split out), then
// private-space PTR, then valid.
func Classify(name dnswire.Name, qtype dnswire.Type, tlds *TLDSet) Class {
	s := string(name)
	if len(s) <= 1 {
		// The root itself: priming queries (./NS) are valid root traffic.
		return ClassValid
	}
	tld := lastLabel(s)
	if !tlds.Contains(tld) {
		if chromiumShaped(s, tld) {
			return ClassChromiumProbe
		}
		return ClassBogusTLD
	}
	if qtype == dnswire.TypePTR && privateReverse(s) {
		return ClassPTRPrivate
	}
	return ClassValid
}

// lastLabel returns the final label of a canonical absolute name (the
// bare TLD) as a substring — no allocation. Escaped dots ("\.") do not
// terminate a label. A malformed name yields "" (never in any TLD set).
func lastLabel(s string) string {
	if len(s) < 2 || s[len(s)-1] != '.' {
		return ""
	}
	end := len(s) - 1
	for i := end - 1; i >= 0; i-- {
		if s[i] == '.' && !escaped(s, i) {
			return s[i+1 : end]
		}
	}
	return s[:end]
}

// escaped reports whether the byte at i is preceded by an odd run of
// backslashes (i.e. "\." is a literal dot, "\\." is a label boundary).
func escaped(s string, i int) bool {
	n := 0
	for j := i - 1; j >= 0 && s[j] == '\\'; j-- {
		n++
	}
	return n%2 == 1
}

// chromiumShaped matches Chromium's middlebox probes: a single label of
// 7-15 lowercase ASCII letters. tld is the name's last label; the name
// is single-label exactly when that label spans the whole name.
func chromiumShaped(s, tld string) bool {
	if len(tld) != len(s)-1 || len(tld) < 7 || len(tld) > 15 {
		return false
	}
	for i := 0; i < len(tld); i++ {
		if tld[i] < 'a' || tld[i] > 'z' {
			return false
		}
	}
	return true
}

// privateReverse reports whether a canonical in-addr.arpa name reverses
// an address in private (RFC 1918), loopback, or link-local space. The
// label adjacent to "in-addr.arpa." is the address's first octet
// ("4.3.2.10.in-addr.arpa." reverses 10.2.3.4).
const inAddrSuffix = ".in-addr.arpa."

func privateReverse(s string) bool {
	if len(s) <= len(inAddrSuffix) || s[len(s)-len(inAddrSuffix):] != inAddrSuffix {
		return false
	}
	rest := s[:len(s)-len(inAddrSuffix)+1] // keep the leading dot boundary
	o1, rest, ok := trailingOctet(rest)
	if !ok {
		return false
	}
	switch o1 {
	case 10, 127:
		return true
	case 192, 172, 169:
		o2, _, ok := trailingOctet(rest)
		if !ok {
			return false
		}
		switch o1 {
		case 192:
			return o2 == 168
		case 172:
			return o2 >= 16 && o2 <= 31
		default: // 169
			return o2 == 254
		}
	}
	return false
}

// trailingOctet parses the last dot-terminated label of rest (which ends
// in '.') as a decimal octet, returning the value and the remainder.
func trailingOctet(rest string) (int, string, bool) {
	if len(rest) == 0 || rest[len(rest)-1] != '.' {
		return 0, "", false
	}
	end := len(rest) - 1
	start := end
	for start > 0 && rest[start-1] != '.' {
		start--
	}
	if start == end || end-start > 3 {
		return 0, "", false
	}
	v := 0
	for i := start; i < end; i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return 0, "", false
		}
		v = v*10 + int(rest[i]-'0')
	}
	return v, rest[:start], v <= 255
}

// counter is a cache-line-friendly atomic counter (no padding: the class
// array is tiny and written from many cores only under synthetic floods).
type counter = atomic.Int64
