package traffic

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TopK tracks the k heaviest keys of a stream in O(k) memory using
// Filtered Space-Saving. The hit path — a key already among the k — is
// lock-free: one lookup in an immutable map published through an atomic
// pointer, plus one atomic increment, so a heavy hitter (the common case
// in Zipf-shaped DNS traffic) costs ~two cache references. Misses
// increment a fixed array of admission counters; only when a bucket
// outgrows the current minimum does the slow path take a mutex, evict
// the minimum entry Space-Saving-style, and publish a rebuilt map.
//
// Guarantees are the classic Space-Saving ones: every key with true
// count > N/k is present, and each reported count overestimates the true
// count by at most the entry's Err (the evicted minimum at promotion
// time, further tightened by the shared admission bucket).
type TopK[K comparable] struct {
	k      int
	live   atomic.Pointer[map[K]*topEntry[K]]
	minAt  atomic.Int64    // smallest entry count at last publish
	filter []atomic.Uint32 // admission counters (power-of-two sized)
	mask   uint64
	mu     sync.Mutex // guards promotion / map rebuild
}

type topEntry[K comparable] struct {
	key   K
	count atomic.Int64
	err   int64 // overestimate bound, fixed at promotion
}

// NewTopK tracks the heaviest k keys with 4*k admission buckets.
func NewTopK[K comparable](k int) *TopK[K] {
	if k <= 0 {
		k = 16
	}
	buckets := 1
	for buckets < 4*k {
		buckets <<= 1
	}
	t := &TopK[K]{k: k, filter: make([]atomic.Uint32, buckets), mask: uint64(buckets - 1)}
	m := make(map[K]*topEntry[K])
	t.live.Store(&m)
	return t
}

// Offer counts one occurrence of key; h is the caller's hash of key
// (computed once and shared with the HLL).
func (t *TopK[K]) Offer(key K, h uint64) {
	m := *t.live.Load()
	if e, ok := m[key]; ok {
		e.count.Add(1)
		return
	}
	est := int64(t.filter[h&t.mask].Add(1))
	if len(m) >= t.k && est <= t.minAt.Load() {
		return // cold key: not yet a contender, stay off the mutex
	}
	t.promote(key, est)
}

// promote admits key under the mutex, evicting the current minimum when
// the table is full. est is the admission-bucket estimate of key's count.
func (t *TopK[K]) promote(key K, est int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.live.Load()
	if e, ok := old[key]; ok { // raced with another promoter
		e.count.Add(1)
		return
	}
	if len(old) < t.k {
		next := make(map[K]*topEntry[K], len(old)+1)
		for k2, e := range old {
			next[k2] = e
		}
		e := &topEntry[K]{key: key}
		e.count.Store(1)
		next[key] = e
		t.live.Store(&next)
		t.minAt.Store(0) // table not yet full: admit everything
		return
	}
	// Find the minimum entry.
	var minE *topEntry[K]
	minC := int64(1<<62 - 1)
	for _, e := range old {
		if c := e.count.Load(); c < minC {
			minC, minE = c, e
		}
	}
	if est <= minC {
		// The admission estimate no longer beats the (grown) minimum.
		t.minAt.Store(minC)
		return
	}
	next := make(map[K]*topEntry[K], len(old))
	for k2, e := range old {
		if e != minE {
			next[k2] = e
		}
	}
	// Space-Saving: the newcomer inherits the evicted minimum as both
	// floor and error bound.
	e := &topEntry[K]{key: key, err: minC}
	e.count.Store(minC + 1)
	next[key] = e
	t.live.Store(&next)
	t.minAt.Store(minC)
}

// Counted is one reported heavy hitter. Count overestimates the true
// count by at most Err.
type Counted[K comparable] struct {
	Key   K
	Count int64
	Err   int64
}

// Top returns up to n entries, heaviest first.
func (t *TopK[K]) Top(n int) []Counted[K] {
	if t == nil {
		return nil
	}
	m := *t.live.Load()
	out := make([]Counted[K], 0, len(m))
	for _, e := range m {
		out = append(out, Counted[K]{Key: e.key, Count: e.count.Load(), Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
