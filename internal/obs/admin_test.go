package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func adminFixture() *Admin {
	reg := NewRegistry()
	reg.Counter("rootless_test_queries_total", "queries", nil).Set(5)
	tc := NewTracer(4, 0)
	tc.SetEnabled(true)
	tr := tc.Begin("slow.example.", "A")
	tr.Eventf("cache", "miss")
	tr.Finish("NOERROR", 80*time.Millisecond, 4, nil)
	return &Admin{
		Registry: reg,
		Tracer:   tc,
		Status: func() map[string]any {
			return map[string]any{"mode": "lookaside", "zone_serial": 2019060700}
		},
	}
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMetrics(t *testing.T) {
	a := adminFixture()
	code, body := get(t, a.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "rootless_test_queries_total 5") ||
		!strings.Contains(body, "# TYPE rootless_test_queries_total counter") {
		t.Errorf("metrics body:\n%s", body)
	}
	code, body = get(t, a.Handler(), "/metrics?format=json")
	if code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Errorf("json metrics: status %d body %q", code, body)
	}
}

func TestAdminHealth(t *testing.T) {
	a := adminFixture()
	if code, body := get(t, a.Handler(), "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
	a.Health = func() error { return errors.New("zone copy expired") }
	if code, body := get(t, a.Handler(), "/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "zone copy expired") {
		t.Errorf("unhealthy = %d %q", code, body)
	}
}

func TestAdminTracez(t *testing.T) {
	a := adminFixture()
	code, body := get(t, a.Handler(), "/tracez")
	if code != http.StatusOK || !strings.Contains(body, "slow.example. A") {
		t.Errorf("tracez = %d %q", code, body)
	}
	code, body = get(t, a.Handler(), "/tracez?format=json")
	if code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Errorf("tracez json = %d %q", code, body)
	}
	a.Tracer = nil
	if code, _ := get(t, a.Handler(), "/tracez"); code != http.StatusNotFound {
		t.Errorf("tracez without tracer = %d", code)
	}
}

func TestAdminStatusz(t *testing.T) {
	a := adminFixture()
	code, body := get(t, a.Handler(), "/statusz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if doc["mode"] != "lookaside" {
		t.Errorf("statusz = %v", doc)
	}
}

func TestProcessMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg, time.Now().Add(-time.Minute))
	samples := reg.Snapshot()
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if byName["rootless_process_goroutines"] < 1 {
		t.Error("no goroutines reported")
	}
	if byName["rootless_process_heap_bytes"] <= 0 {
		t.Error("no heap reported")
	}
	if byName["rootless_process_uptime_seconds"] < 59 {
		t.Errorf("uptime = %f", byName["rootless_process_uptime_seconds"])
	}
}
