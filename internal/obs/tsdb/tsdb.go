// Package tsdb is an embedded, fixed-memory time-series recorder for an
// obs.Registry: every tick it snapshots the registry and appends each
// sample to a per-metric ring buffer, downsampling into coarser rings as
// points age (a Prometheus-less answer to "how did this metric trend
// over the run?"). Daemons expose the rings as /timeseries on the admin
// endpoint; experiments embed a Recorder on virtual time so a t_* trial
// can emit per-tick series instead of only final rows. Memory is bounded
// by construction: levels × points-per-level × live series, regardless
// of run length.
package tsdb

import (
	"context"
	"sort"
	"sync"
	"time"

	"rootless/internal/obs"
)

// Options parameterises a Recorder; zero fields take defaults.
type Options struct {
	// Interval is the level-0 tick (default 1s). Run uses it for its
	// ticker; manual Record calls may space samples however they like
	// (experiments tick virtual time).
	Interval time.Duration
	// PointsPerLevel is each ring's capacity (default 600: ten minutes
	// of 1 s points at level 0).
	PointsPerLevel int
	// Levels is the resolution-level count (default 3).
	Levels int
	// Factor is the downsampling ratio between adjacent levels (default
	// 10: with the defaults, level 1 holds 100 minutes at 10 s, level 2
	// holds ~16 h at 100 s).
	Factor int
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.PointsPerLevel <= 0 {
		o.PointsPerLevel = 600
	}
	if o.Levels <= 0 {
		o.Levels = 3
	}
	if o.Factor < 2 {
		o.Factor = 10
	}
	return o
}

// Point is one recorded sample.
type Point struct {
	T time.Time
	V float64
}

// ring is a fixed-capacity circular buffer of points.
type ring struct {
	pts  []Point
	head int // index of the oldest point
	n    int
}

func newRing(capacity int) *ring { return &ring{pts: make([]Point, capacity)} }

func (r *ring) push(p Point) {
	if r.n < len(r.pts) {
		r.pts[(r.head+r.n)%len(r.pts)] = p
		r.n++
		return
	}
	r.pts[r.head] = p
	r.head = (r.head + 1) % len(r.pts)
}

// snapshot returns the points oldest-first.
func (r *ring) snapshot() []Point {
	out := make([]Point, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.pts[(r.head+i)%len(r.pts)]
	}
	return out
}

// series is one metric's rings across every level.
type series struct {
	name   string
	labels obs.Labels
	kind   obs.Kind
	levels []*ring
}

// Recorder snapshots a registry on each Record call and keeps the
// multi-resolution history. Safe for concurrent use (Record vs the
// /timeseries handler).
type Recorder struct {
	reg *obs.Registry
	opt Options

	mu    sync.Mutex
	byKey map[string]*series
	order []string // creation order; exposition sorts by name
	ticks int64
}

// NewRecorder builds a recorder over reg.
func NewRecorder(reg *obs.Registry, opt Options) *Recorder {
	return &Recorder{reg: reg, opt: opt.withDefaults(), byKey: make(map[string]*series)}
}

// Interval returns the configured level-0 tick.
func (rec *Recorder) Interval() time.Duration { return rec.opt.Interval }

// Record takes one snapshot of the registry, stamping every sample with
// now. Metrics appearing mid-run simply start recording at the current
// tick (their coarser rings fill from now on, like everyone else's).
func (rec *Recorder) Record(now time.Time) {
	samples := rec.reg.Snapshot() // runs collectors; do not hold mu yet
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.ticks++
	// stride[l] = how many level-0 ticks one level-l point covers.
	stride := 1
	strides := make([]int, rec.opt.Levels)
	for l := 0; l < rec.opt.Levels; l++ {
		strides[l] = stride
		stride *= rec.opt.Factor
	}
	for _, s := range samples {
		key := s.Name + "{" + labelKey(s.Labels) + "}"
		se, ok := rec.byKey[key]
		if !ok {
			se = &series{name: s.Name, labels: s.Labels, kind: s.Kind,
				levels: make([]*ring, rec.opt.Levels)}
			for l := range se.levels {
				se.levels[l] = newRing(rec.opt.PointsPerLevel)
			}
			rec.byKey[key] = se
			rec.order = append(rec.order, key)
		}
		p := Point{T: now, V: s.Value}
		se.levels[0].push(p)
		// Downsample by decimation with "last value" semantics: cheap,
		// and exact for the cumulative counters rates are computed from.
		for l := 1; l < rec.opt.Levels; l++ {
			if rec.ticks%int64(strides[l]) == 0 {
				se.levels[l].push(p)
			}
		}
	}
}

// Run records every Options.Interval until ctx ends.
func (rec *Recorder) Run(ctx context.Context) {
	t := time.NewTicker(rec.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			rec.Record(now)
		}
	}
}

// labelKey renders labels deterministically for the series key.
func labelKey(l obs.Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k + "=" + l[k]
	}
	return out
}

// SeriesData is one exported series at one level.
type SeriesData struct {
	Name   string
	Labels obs.Labels
	Kind   obs.Kind
	Points []Point
}

// Series returns every recorded series at the given level, oldest point
// first, sorted by (name, labels). prefix filters by metric-name prefix
// ("" keeps everything).
func (rec *Recorder) Series(level int, prefix string) []SeriesData {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if level < 0 || level >= rec.opt.Levels {
		return nil
	}
	keys := append([]string(nil), rec.order...)
	sort.Strings(keys)
	var out []SeriesData
	for _, key := range keys {
		se := rec.byKey[key]
		if prefix != "" && !hasPrefix(se.name, prefix) {
			continue
		}
		out = append(out, SeriesData{
			Name:   se.name,
			Labels: se.labels,
			Kind:   se.kind,
			Points: se.levels[level].snapshot(),
		})
	}
	return out
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Levels returns the configured level count.
func (rec *Recorder) Levels() int { return rec.opt.Levels }

// Rate converts cumulative points (counters, histogram _count/_sum) to
// per-second rates between adjacent points. A negative delta — a counter
// reset after a daemon restart — clamps to zero instead of rendering as
// a negative rate. Returns len(pts)-1 points stamped at the later end of
// each interval (empty for fewer than two points).
func Rate(pts []Point) []Point {
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := pts[i].T.Sub(pts[i-1].T).Seconds()
		if dt <= 0 {
			continue
		}
		dv := pts[i].V - pts[i-1].V
		if dv < 0 {
			dv = 0 // counter reset
		}
		out = append(out, Point{T: pts[i].T, V: dv / dt})
	}
	return out
}
