package tsdb

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"rootless/internal/obs"
)

// timeseriesDoc is the JSON shape of /timeseries.
type timeseriesDoc struct {
	IntervalSeconds float64      `json:"interval_seconds"`
	Level           int          `json:"level"`
	Rate            bool         `json:"rate"`
	Series          []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Name   string       `json:"name"`
	Labels obs.Labels   `json:"labels,omitempty"`
	Kind   string       `json:"kind"`
	Points [][2]float64 `json:"points"` // [unix_seconds, value]
}

// ServeHTTP implements the /timeseries admin endpoint.
//
//	?format=json|csv   output format (default json)
//	?level=N           resolution level, 0 = finest (default 0)
//	?metric=PREFIX     keep only metrics whose name has this prefix
//	?rate=1            per-second rates for cumulative kinds (counters,
//	                   histogram _count/_sum); resets clamp to zero
//
// Bad parameters get a 400, matching the admin endpoint contract.
func (rec *Recorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	level := 0
	if raw := q.Get("level"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 || v >= rec.Levels() {
			http.Error(w, fmt.Sprintf("bad level parameter (want 0..%d)", rec.Levels()-1),
				http.StatusBadRequest)
			return
		}
		level = v
	}
	rate := false
	switch q.Get("rate") {
	case "", "0", "false":
	case "1", "true":
		rate = true
	default:
		http.Error(w, "bad rate parameter (want 0 or 1)", http.StatusBadRequest)
		return
	}
	series := rec.Series(level, q.Get("metric"))
	if rate {
		for i := range series {
			if series[i].Kind == obs.KindCounter || series[i].Kind == obs.KindHistogram {
				series[i].Points = Rate(series[i].Points)
			}
		}
	}
	switch q.Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		doc := timeseriesDoc{
			IntervalSeconds: rec.Interval().Seconds(),
			Level:           level,
			Rate:            rate,
			Series:          make([]seriesJSON, 0, len(series)),
		}
		for _, se := range series {
			sj := seriesJSON{Name: se.Name, Labels: se.Labels, Kind: se.Kind.String(),
				Points: make([][2]float64, len(se.Points))}
			for i, p := range se.Points {
				sj.Points[i] = [2]float64{float64(p.T.UnixNano()) / 1e9, p.V}
			}
			doc.Series = append(doc.Series, sj)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(doc)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		cw := csv.NewWriter(w)
		_ = cw.Write([]string{"name", "labels", "unix_seconds", "value"})
		for _, se := range series {
			lk := labelKey(se.Labels)
			for _, p := range se.Points {
				_ = cw.Write([]string{
					se.Name, lk,
					strconv.FormatFloat(float64(p.T.UnixNano())/1e9, 'f', 3, 64),
					strconv.FormatFloat(p.V, 'g', -1, 64),
				})
			}
		}
		cw.Flush()
	default:
		http.Error(w, "bad format parameter (want json or csv)", http.StatusBadRequest)
	}
}
