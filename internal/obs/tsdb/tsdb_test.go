package tsdb

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rootless/internal/obs"
)

var t0 = time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)

func tick(rec *Recorder, now *time.Time, n int) {
	for i := 0; i < n; i++ {
		*now = now.Add(rec.Interval())
		rec.Record(*now)
	}
}

func find(series []SeriesData, name string) *SeriesData {
	for i := range series {
		if series[i].Name == name {
			return &series[i]
		}
	}
	return nil
}

func TestRecorderBasics(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("rootless_test_total", "t", nil)
	rec := NewRecorder(reg, Options{Interval: time.Second, PointsPerLevel: 10, Levels: 2, Factor: 5})
	now := t0
	for i := 1; i <= 3; i++ {
		c.Set(int64(10 * i))
		tick(rec, &now, 1)
	}
	se := find(rec.Series(0, ""), "rootless_test_total")
	if se == nil || len(se.Points) != 3 {
		t.Fatalf("series = %+v", se)
	}
	if se.Points[0].V != 10 || se.Points[2].V != 30 {
		t.Errorf("points = %v", se.Points)
	}
	if se.Kind != obs.KindCounter {
		t.Errorf("kind = %v", se.Kind)
	}
}

// TestRingWrapAround: pushing past capacity drops the oldest points and
// keeps chronological order.
func TestRingWrapAround(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("rootless_wrap_total", "t", nil)
	rec := NewRecorder(reg, Options{Interval: time.Second, PointsPerLevel: 4, Levels: 1})
	now := t0
	for i := 1; i <= 10; i++ {
		c.Set(int64(i))
		tick(rec, &now, 1)
	}
	se := find(rec.Series(0, ""), "rootless_wrap_total")
	if len(se.Points) != 4 {
		t.Fatalf("ring holds %d points, want 4", len(se.Points))
	}
	for i, p := range se.Points {
		if want := float64(7 + i); p.V != want {
			t.Errorf("point %d = %v, want %v", i, p.V, want)
		}
		if i > 0 && !se.Points[i].T.After(se.Points[i-1].T) {
			t.Errorf("points out of order at %d", i)
		}
	}
}

// TestDownsampling: coarser levels receive every Factor-th point.
func TestDownsampling(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("rootless_ds_total", "t", nil)
	rec := NewRecorder(reg, Options{Interval: time.Second, PointsPerLevel: 100, Levels: 3, Factor: 4})
	now := t0
	for i := 1; i <= 33; i++ {
		c.Set(int64(i))
		tick(rec, &now, 1)
	}
	l0 := find(rec.Series(0, ""), "rootless_ds_total")
	l1 := find(rec.Series(1, ""), "rootless_ds_total")
	l2 := find(rec.Series(2, ""), "rootless_ds_total")
	if len(l0.Points) != 33 {
		t.Errorf("level 0: %d points", len(l0.Points))
	}
	if len(l1.Points) != 8 { // ticks 4,8,...,32
		t.Errorf("level 1: %d points, want 8", len(l1.Points))
	}
	if len(l2.Points) != 2 { // ticks 16, 32
		t.Errorf("level 2: %d points, want 2", len(l2.Points))
	}
	// Last-value decimation: the level-1 point at tick 4 carries value 4.
	if l1.Points[0].V != 4 || l2.Points[0].V != 16 {
		t.Errorf("decimated values: l1[0]=%v l2[0]=%v", l1.Points[0].V, l2.Points[0].V)
	}
}

// TestMidRunSeries: a metric created after recording started begins its
// rings at the current tick without disturbing existing series.
func TestMidRunSeries(t *testing.T) {
	reg := obs.NewRegistry()
	early := reg.Counter("rootless_early_total", "t", nil)
	rec := NewRecorder(reg, Options{Interval: time.Second, PointsPerLevel: 16, Levels: 2, Factor: 2})
	now := t0
	early.Set(1)
	tick(rec, &now, 3)
	late := reg.Counter("rootless_late_total", "t", nil)
	late.Set(7)
	tick(rec, &now, 2)
	l0 := rec.Series(0, "")
	e, l := find(l0, "rootless_early_total"), find(l0, "rootless_late_total")
	if len(e.Points) != 5 {
		t.Errorf("early series: %d points, want 5", len(e.Points))
	}
	if l == nil || len(l.Points) != 2 {
		t.Fatalf("late series = %+v, want 2 points", l)
	}
	if l.Points[0].V != 7 {
		t.Errorf("late first point = %v", l.Points[0].V)
	}
	// The late series joins the shared downsampling cadence: at tick 4
	// (global), level 1 received a point from both.
	if l1 := find(rec.Series(1, ""), "rootless_late_total"); len(l1.Points) != 1 {
		t.Errorf("late level-1: %d points, want 1", len(l1.Points))
	}
}

// TestCounterResetRate: a counter that goes backwards (daemon restart)
// must never render a negative rate.
func TestCounterResetRate(t *testing.T) {
	pts := []Point{
		{T: t0, V: 100},
		{T: t0.Add(time.Second), V: 150},
		{T: t0.Add(2 * time.Second), V: 5}, // reset
		{T: t0.Add(3 * time.Second), V: 30},
	}
	rates := Rate(pts)
	if len(rates) != 3 {
		t.Fatalf("%d rates", len(rates))
	}
	want := []float64{50, 0, 25}
	for i, r := range rates {
		if r.V != want[i] {
			t.Errorf("rate %d = %v, want %v", i, r.V, want[i])
		}
		if r.V < 0 {
			t.Errorf("negative rate %v", r.V)
		}
	}
	if Rate(pts[:1]) != nil || Rate(nil) != nil {
		t.Error("degenerate inputs must yield no rates")
	}
}

func TestHandlerJSONAndCSV(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("rootless_h_total", "t", obs.Labels{"mode": "x"})
	g := reg.Gauge("rootless_h_gauge", "t", nil)
	rec := NewRecorder(reg, Options{Interval: time.Second, PointsPerLevel: 8, Levels: 2, Factor: 2})
	now := t0
	for i := 1; i <= 4; i++ {
		c.Set(int64(i * 10))
		g.Set(float64(i))
		tick(rec, &now, 1)
	}

	get := func(url string) (int, string, string) {
		w := httptest.NewRecorder()
		rec.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		return w.Code, w.Header().Get("Content-Type"), w.Body.String()
	}

	code, ct, body := get("/timeseries")
	if code != 200 || ct != "application/json" {
		t.Fatalf("json: %d %q", code, ct)
	}
	var doc timeseriesDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 2 || doc.IntervalSeconds != 1 {
		t.Errorf("doc = %+v", doc)
	}

	// rate=1 turns the counter into per-second deltas, leaves the gauge.
	code, _, body = get("/timeseries?rate=1&metric=rootless_h_total")
	if code != 200 {
		t.Fatal(code)
	}
	doc = timeseriesDoc{}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || len(doc.Series[0].Points) != 3 || doc.Series[0].Points[0][1] != 10 {
		t.Errorf("rated doc = %+v", doc)
	}

	code, ct, body = get("/timeseries?format=csv&level=1")
	if code != 200 || ct != "text/csv; charset=utf-8" {
		t.Fatalf("csv: %d %q", code, ct)
	}
	if !strings.HasPrefix(body, "name,labels,unix_seconds,value\n") ||
		!strings.Contains(body, "rootless_h_total,mode=x,") {
		t.Errorf("csv body:\n%s", body)
	}

	for _, bad := range []string{
		"/timeseries?format=xml", "/timeseries?level=9", "/timeseries?level=x", "/timeseries?rate=maybe",
	} {
		if code, _, _ := get(bad); code != 400 {
			t.Errorf("%s: code %d, want 400", bad, code)
		}
	}
}

func TestRunTicks(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rootless_run_total", "t", nil).Set(1)
	rec := NewRecorder(reg, Options{Interval: 5 * time.Millisecond, PointsPerLevel: 64})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { rec.Run(ctx); close(done) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if se := find(rec.Series(0, ""), "rootless_run_total"); se != nil && len(se.Points) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recorder never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}
