package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestHDRIndexRoundTrip pins the bucket geometry: every value maps to a
// bucket whose [lower, next-lower) range contains it, and the midpoint
// estimate is within the advertised relative error bound.
func TestHDRIndexRoundTrip(t *testing.T) {
	values := []int64{0, 1, 2, 127, 128, 129, 255, 256, 1000, 4095, 4096,
		1e6, 1e9, 3e9, int64(1e12), int64(1<<62) + 12345}
	for _, v := range values {
		idx := hdrIndex(v)
		lo := hdrLower(idx)
		if lo > v {
			t.Errorf("hdrLower(%d)=%d > value %d", idx, lo, v)
		}
		if idx+1 < hdrBuckets {
			if hi := hdrLower(idx + 1); hi <= v {
				t.Errorf("value %d beyond bucket %d (next lower %d)", v, idx, hi)
			}
		}
		mid := hdrMid(idx)
		if v > 0 {
			relErr := math.Abs(float64(mid-v)) / float64(v)
			if relErr > 1.0/hdrSubCount {
				t.Errorf("value %d: midpoint %d rel err %.4f > %.4f",
					v, mid, relErr, 1.0/hdrSubCount)
			}
		}
	}
}

// TestHDRQuantileAccuracy records a known distribution and checks every
// quantile estimate is within 1% of the exact order statistic.
func TestHDRQuantileAccuracy(t *testing.T) {
	h := NewHDR()
	rng := rand.New(rand.NewSource(9))
	n := 50000
	exact := make([]int64, n)
	for i := range exact {
		// Log-uniform over ~5 decades: 1µs .. 100ms in nanoseconds.
		v := int64(1000 * math.Pow(10, rng.Float64()*5))
		exact[i] = v
		h.Record(v)
	}
	sortInt64s(exact)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		rank := int(math.Ceil(q * float64(n)))
		if rank < 1 {
			rank = 1
		}
		want := exact[rank-1]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-want)) / float64(want)
		if relErr > 0.01 {
			t.Errorf("q=%v: got %d want %d (rel err %.4f > 1%%)", q, got, want, relErr)
		}
	}
	if h.Count() != int64(n) {
		t.Errorf("count %d want %d", h.Count(), n)
	}
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestHDRQuantilesBatchMatchesSingle(t *testing.T) {
	h := NewHDR()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	qs := []float64{0, 0.5, 0.99, 0.999, 1}
	batch := h.Quantiles(qs)
	for i, q := range qs {
		if single := h.Quantile(q); single != batch[i] {
			t.Errorf("q=%v: batch %d != single %d", q, batch[i], single)
		}
	}
	// Descending input still resolves correctly (fallback path).
	desc := h.Quantiles([]float64{0.99, 0.5})
	if desc[0] != h.Quantile(0.99) || desc[1] != h.Quantile(0.5) {
		t.Errorf("descending quantiles wrong: %v", desc)
	}
}

func TestHDRMerge(t *testing.T) {
	a, b := NewHDR(), NewHDR()
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count %d", a.Count())
	}
	if got := a.Quantile(1); got < 1000 {
		t.Errorf("merged max quantile %d, want ≥ 1000", got)
	}
	if a.Sum() != NewHDR().Sum()+99*100/2+(1000+1099)*100/2 {
		t.Errorf("merged sum %d", a.Sum())
	}
	a.Merge(nil) // nil-safe
}

func TestHDREmptyAndNil(t *testing.T) {
	var h *HDR
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("nil HDR must read as zero")
	}
	e := NewHDR()
	if e.Quantile(0.5) != 0 || len(e.Quantiles([]float64{0.5, 0.99})) != 2 {
		t.Error("empty HDR must report zeros")
	}
	e.Record(-5) // clamps to 0
	if e.Count() != 1 || e.Quantile(1) != 0 {
		t.Error("negative record must clamp to zero")
	}
}

// TestHDRRecordAllocs pins the acceptance bar: Record allocates nothing.
func TestHDRRecordAllocs(t *testing.T) {
	h := NewHDR()
	if n := testing.AllocsPerRun(1000, func() { h.Record(123456) }); n != 0 {
		t.Errorf("Record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.RecordDuration(5 * time.Millisecond) }); n != 0 {
		t.Errorf("RecordDuration allocates %v/op, want 0", n)
	}
}

// TestRegistryHDRTimerExposition checks the summary exposition surfaces:
// quantile-labelled series in seconds on both Prometheus and JSON forms.
func TestRegistryHDRTimerExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.HDRTimer("rootless_test_latency_seconds", "t", nil)
	for i := 0; i < 1000; i++ {
		h.RecordDuration(time.Millisecond)
	}
	h.RecordDuration(time.Second) // the tail outlier

	samples := reg.Snapshot()
	var p50, p9999, count float64
	for _, s := range samples {
		switch {
		case s.Name == "rootless_test_latency_seconds" && s.Labels["quantile"] == "0.5":
			p50 = s.Value
		case s.Name == "rootless_test_latency_seconds" && s.Labels["quantile"] == "0.9999":
			p9999 = s.Value
		case s.Name == "rootless_test_latency_seconds_count":
			count = s.Value
		}
	}
	if count != 1001 {
		t.Fatalf("count %v", count)
	}
	if p50 < 0.00099 || p50 > 0.00101 {
		t.Errorf("p50 %v, want ~1ms", p50)
	}
	if p9999 < 0.99 || p9999 > 1.01 {
		t.Errorf("p9999 %v, want ~1s", p9999)
	}

	// Same instrument for the same (name, labels).
	if reg.HDRTimer("rootless_test_latency_seconds", "t", nil) != h {
		t.Error("HDRTimer must return the same series")
	}
}

// BenchmarkHDRRecord is the hot-path cost of one observation — the
// acceptance bound is ≤20 ns and zero allocations (BENCH_PR9 pins it).
func BenchmarkHDRRecord(b *testing.B) {
	h := NewHDR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 17)
	}
}

// BenchmarkHDRQuantile prices a scrape-time tail read (p999 over a
// populated histogram) and reports the estimate's relative error
// against the known uniform distribution — the deterministic p999
// accuracy figure BENCH_PR9 derives.
func BenchmarkHDRQuantile(b *testing.B) {
	h := NewHDR()
	const n = 1 << 16
	for i := 1; i <= n; i++ {
		h.Record(int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var v int64
	for i := 0; i < b.N; i++ {
		v = h.Quantile(0.999)
	}
	exact := 0.999 * n
	b.ReportMetric(math.Abs(float64(v)-exact)/exact, "p999-rel-err")
}
