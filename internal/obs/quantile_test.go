package obs

import (
	"math"
	"testing"
)

// TestHistogramPercentile pins the bucketed-quantile boundary semantics:
// a rank landing exactly at a bucket's floor returns the bucket's lower
// edge, interior ranks interpolate, and the overflow bucket reports the
// highest finite bound.
func TestHistogramPercentile(t *testing.T) {
	mk := func(bounds []float64, obs []float64) *Histogram {
		h := newHistogram(bounds)
		for _, v := range obs {
			h.Observe(v)
		}
		return h
	}
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		q      float64
		want   float64
	}{
		// 10 samples in (1,2]: the p50 rank (5th of 10) interpolates to
		// 1 + (5-1)/10 of the bucket span.
		{"interior interpolation", []float64{1, 2}, repeat(1.5, 10), 0.5, 1.4},
		// Rank 1 is the bucket's first sample: the LOWER edge, not the
		// upper — the boundary case the old interpolation got wrong.
		{"rank at bucket floor", []float64{1, 2}, repeat(1.5, 10), 0.05, 1.0},
		// The quantile falls exactly on a bucket boundary: 4 samples in
		// (0,1], 4 in (1,2]; the p50 rank (4th) is the first bucket's
		// last sample, interpolated inside the FIRST bucket.
		{"boundary rank stays in lower bucket", []float64{1, 2},
			append(repeat(0.5, 4), repeat(1.5, 4)...), 0.5, 0.75},
		// The next rank (5th) is the second bucket's floor sample.
		{"next rank is upper bucket floor", []float64{1, 2},
			append(repeat(0.5, 4), repeat(1.5, 4)...), 0.625, 1.0},
		// All mass in the overflow bucket: report the last finite bound.
		{"overflow bucket", []float64{1, 2}, repeat(5, 3), 0.5, 2},
		// Single sample: every quantile is that sample's bucket floor.
		{"single sample", []float64{1, 2}, []float64{1.5}, 0.99, 1.0},
		// q=1 is the max rank: the sole sample of bucket (2,4], at its floor.
		{"q=1", []float64{1, 2, 4}, append(repeat(1.5, 9), 3), 1, 2},
	}
	for _, c := range cases {
		h := mk(c.bounds, c.obs)
		if got := h.Percentile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Percentile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}

	// Empty histogram and clamped q values.
	h := newHistogram([]float64{1})
	if h.Percentile(0.5) != 0 {
		t.Error("empty histogram must report 0")
	}
	h.Observe(0.5)
	if h.Percentile(-1) != h.Percentile(0) || h.Percentile(2) != h.Percentile(1) {
		t.Error("q must clamp to [0,1]")
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestHistogramQuantilesBatch: one snapshot serves every quantile, and
// ascending inputs yield monotonically non-decreasing estimates.
func TestHistogramQuantilesBatch(t *testing.T) {
	h := newHistogram(DefBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 0.0001) // 0 .. 100ms
	}
	qs := []float64{0.1, 0.5, 0.9, 0.99, 0.999}
	got := h.Quantiles(qs)
	if len(got) != len(qs) {
		t.Fatalf("len %d", len(got))
	}
	for i, q := range qs {
		if single := h.Percentile(q); math.Abs(single-got[i]) > 1e-12 {
			t.Errorf("q=%v: batch %v != single %v", q, got[i], single)
		}
		if i > 0 && got[i] < got[i-1] {
			t.Errorf("non-monotonic: q=%v → %v < previous %v", q, got[i], got[i-1])
		}
	}
}
