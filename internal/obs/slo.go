package obs

import (
	"fmt"
	"sync"
	"time"
)

// Declarative SLOs with multi-window burn-rate alerting. Each tracker
// counts good/bad events into a fixed ring of per-second buckets; the
// burn rate over a window is the bad fraction divided by the error
// budget (burn 1.0 = spending budget exactly as fast as the SLO allows;
// 14.4 = the classic page-worthy rate that exhausts a 30-day budget in
// ~2 days). An alert fires only when BOTH the fast and slow windows
// burn above the threshold — the standard two-window trick that makes
// alerts quick to fire on real incidents and quick to clear after them,
// without flapping on momentary spikes.

// sloRingSeconds is the tracker's memory: per-second buckets covering
// the largest supported slow window (~68 min). Fixed size, zero
// allocation per observation.
const sloRingSeconds = 4096

type sloBucket struct{ good, bad int64 }

// SLOConfig declares one objective.
type SLOConfig struct {
	// Name labels the rootless_slo_* series, e.g. "latency_p99".
	Name string
	// Budget is the allowed bad fraction, e.g. 0.01 for a 99% target.
	Budget float64
	// FastWindow and SlowWindow are the two burn-rate windows
	// (defaults 1 min and 10 min; both capped by the ring's ~68 min).
	FastWindow, SlowWindow time.Duration
	// BurnThreshold is the multi-window alert threshold (default 10:
	// both windows burning ≥10× budget pages).
	BurnThreshold float64
	// MinEvents is the minimum event count in the slow window before the
	// alert may fire (default 50) — a handful of early failures must not
	// read as a 100% burn.
	MinEvents int64
}

func (c *SLOConfig) defaults() {
	if c.Budget <= 0 {
		c.Budget = 0.01
	}
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 10 * time.Minute
	}
	if max := (sloRingSeconds - 1) * time.Second; c.SlowWindow > max {
		c.SlowWindow = max
	}
	if c.FastWindow > c.SlowWindow {
		c.FastWindow = c.SlowWindow
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 10
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 50
	}
}

// SLOTracker tracks one objective. Observe is safe for concurrent use.
type SLOTracker struct {
	cfg SLOConfig

	mu       sync.Mutex
	ring     [sloRingSeconds]sloBucket
	lastUnix int64 // unix second the ring head corresponds to
	alerting bool
	onAlert  func(name string, fast, slow float64)
	clock    func() time.Time
}

// Observe records one event outcome and re-evaluates the alert state
// when the wall second rolls over.
func (s *SLOTracker) Observe(good bool) {
	if s == nil {
		return
	}
	now := s.clock().Unix()
	s.mu.Lock()
	s.advance(now)
	b := &s.ring[now%sloRingSeconds]
	if good {
		b.good++
	} else {
		b.bad++
	}
	s.evaluateLocked()
	s.mu.Unlock()
}

// advance zeroes buckets between the last seen second and now, so stale
// counts from a previous ring lap never leak into a window. Caller
// holds s.mu.
func (s *SLOTracker) advance(now int64) {
	if s.lastUnix == 0 {
		s.lastUnix = now
		s.ring[now%sloRingSeconds] = sloBucket{}
		return
	}
	steps := now - s.lastUnix
	if steps <= 0 {
		return
	}
	if steps > sloRingSeconds {
		steps = sloRingSeconds
	}
	for i := int64(1); i <= steps; i++ {
		s.ring[(s.lastUnix+i)%sloRingSeconds] = sloBucket{}
	}
	s.lastUnix = now
}

// windowLocked sums the buckets of the trailing window. Caller holds s.mu.
func (s *SLOTracker) windowLocked(d time.Duration) (good, bad int64) {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > sloRingSeconds {
		secs = sloRingSeconds
	}
	for i := int64(0); i < secs; i++ {
		b := s.ring[(s.lastUnix-i+2*sloRingSeconds)%sloRingSeconds]
		good += b.good
		bad += b.bad
	}
	return good, bad
}

// burnLocked computes the burn rate over one window (0 when idle).
// Caller holds s.mu.
func (s *SLOTracker) burnLocked(d time.Duration) float64 {
	good, bad := s.windowLocked(d)
	total := good + bad
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / s.cfg.Budget
}

func (s *SLOTracker) evaluateLocked() {
	fast := s.burnLocked(s.cfg.FastWindow)
	if s.alerting {
		// Hysteresis: an active alert clears only when the fast window
		// calms down. The slow window hovering around the threshold as
		// samples trickle in must not flap the alert (and re-fire the
		// dump callback) during one ongoing incident.
		s.alerting = fast >= s.cfg.BurnThreshold
		return
	}
	slow := s.burnLocked(s.cfg.SlowWindow)
	good, bad := s.windowLocked(s.cfg.SlowWindow)
	if good+bad >= s.cfg.MinEvents &&
		fast >= s.cfg.BurnThreshold && slow >= s.cfg.BurnThreshold {
		// Rising edge: fire the callback (a flight-recorder dump) once.
		s.alerting = true
		if cb := s.onAlert; cb != nil {
			s.mu.Unlock()
			cb(s.cfg.Name, fast, slow)
			s.mu.Lock()
		}
	}
}

// BurnRates returns the current fast- and slow-window burn rates.
func (s *SLOTracker) BurnRates() (fast, slow float64) {
	if s == nil {
		return 0, 0
	}
	now := s.clock().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(now)
	return s.burnLocked(s.cfg.FastWindow), s.burnLocked(s.cfg.SlowWindow)
}

// Alerting reports the current alert state (set on a multi-window burn,
// cleared with fast-window hysteresis — see evaluateLocked).
func (s *SLOTracker) Alerting() bool {
	if s == nil {
		return false
	}
	now := s.clock().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(now)
	if s.alerting && s.burnLocked(s.cfg.FastWindow) < s.cfg.BurnThreshold {
		s.alerting = false
	}
	return s.alerting
}

// Watchdog owns a set of SLO trackers and their exposition.
type Watchdog struct {
	mu       sync.Mutex
	trackers []*SLOTracker
	clock    func() time.Time
	onAlert  func(name string, fast, slow float64)
}

// NewWatchdog creates an empty watchdog; clock nil means time.Now.
func NewWatchdog(clock func() time.Time) *Watchdog {
	if clock == nil {
		clock = time.Now
	}
	return &Watchdog{clock: clock}
}

// Add registers one SLO and returns its tracker.
func (w *Watchdog) Add(cfg SLOConfig) *SLOTracker {
	cfg.defaults()
	t := &SLOTracker{cfg: cfg, clock: w.clock}
	w.mu.Lock()
	t.onAlert = w.onAlert
	w.trackers = append(w.trackers, t)
	w.mu.Unlock()
	return t
}

// OnAlert installs the rising-edge alert callback (e.g. a flight
// recorder dump) on every present and future tracker.
func (w *Watchdog) OnAlert(f func(name string, fast, slow float64)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onAlert = f
	for _, t := range w.trackers {
		t.mu.Lock()
		t.onAlert = f
		t.mu.Unlock()
	}
}

// Collect registers the rootless_slo_* gauges on reg:
//
//	rootless_slo_burn_rate{slo=...,window="fast"|"slow"}
//	rootless_slo_alert{slo=...}  (1 while firing)
//	rootless_slo_budget{slo=...} (the configured bad-fraction budget)
func (w *Watchdog) Collect(reg *Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, t := range w.trackers {
		t := t
		reg.GaugeFunc("rootless_slo_burn_rate", "SLO error-budget burn rate",
			Labels{"slo": t.cfg.Name, "window": "fast"},
			func() float64 { f, _ := t.BurnRates(); return f })
		reg.GaugeFunc("rootless_slo_burn_rate", "SLO error-budget burn rate",
			Labels{"slo": t.cfg.Name, "window": "slow"},
			func() float64 { _, s := t.BurnRates(); return s })
		reg.GaugeFunc("rootless_slo_alert", "1 while the SLO multi-window alert fires",
			Labels{"slo": t.cfg.Name},
			func() float64 {
				if t.Alerting() {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("rootless_slo_budget", "configured allowed bad fraction",
			Labels{"slo": t.cfg.Name},
			func() float64 { return t.cfg.Budget })
	}
}

// Status returns the /statusz fragment for every tracked SLO.
func (w *Watchdog) Status() map[string]any {
	w.mu.Lock()
	trackers := append([]*SLOTracker(nil), w.trackers...)
	w.mu.Unlock()
	out := map[string]any{}
	for _, t := range trackers {
		fast, slow := t.BurnRates()
		out[t.cfg.Name] = map[string]any{
			"budget":         t.cfg.Budget,
			"burn_fast":      fast,
			"burn_slow":      slow,
			"fast_window":    t.cfg.FastWindow.String(),
			"slow_window":    t.cfg.SlowWindow.String(),
			"burn_threshold": t.cfg.BurnThreshold,
			"alerting":       t.Alerting(),
		}
	}
	return out
}

// String summarizes the watchdog for logs.
func (w *Watchdog) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return fmt.Sprintf("watchdog(%d slos)", len(w.trackers))
}
