package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FlightRecorder keeps a fixed-memory ring of compact per-query digests
// — the last N resolutions in cheap, always-on form — and dumps it to
// disk when something goes wrong (an SLO burn-rate alert, or SIGUSR1).
// Unlike the tracer, which retains full span trees for slow queries
// only, the recorder sees *every* query, so a post-incident dump shows
// the shed and failed queries that never got a trace.

// FlightDigest is one recorded query outcome. Fields are compact
// summaries, never full packets: the recorder must stay cheap enough to
// leave on in production.
type FlightDigest struct {
	UnixNanos int64  `json:"ts"`
	TraceID   string `json:"trace_id,omitempty"` // set when the query was traced
	Class     string `json:"class,omitempty"`    // traffic classification
	Qtype     string `json:"qtype,omitempty"`
	Rcode     string `json:"rcode"`
	LatencyNS int64  `json:"latency_ns"`
	Queries   int    `json:"queries"` // upstream queries spent
	Answers   int    `json:"answers"`
	FromCache bool   `json:"from_cache,omitempty"`
	Shed      bool   `json:"shed,omitempty"` // refused by overload protection
	Err       string `json:"err,omitempty"`
}

// FlightRecorder is safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FlightDigest
	next  int
	full  bool
	seen  int64
	dumps int64
	dir   string // dump directory ("" = dumps disabled)
	clock func() time.Time
}

// NewFlightRecorder creates a recorder retaining the last size digests
// (default 4096) and dumping JSON files into dir on Dump ("" disables
// disk dumps; Snapshot and the HTTP handler still work).
func NewFlightRecorder(size int, dir string) *FlightRecorder {
	if size <= 0 {
		size = 4096
	}
	return &FlightRecorder{ring: make([]FlightDigest, size), dir: dir, clock: time.Now}
}

// SetClock overrides the timestamp source (virtual time in experiments).
func (f *FlightRecorder) SetClock(clock func() time.Time) {
	if f == nil || clock == nil {
		return
	}
	f.mu.Lock()
	f.clock = clock
	f.mu.Unlock()
}

// Record adds one digest, stamping its timestamp if unset. Nil-safe.
func (f *FlightRecorder) Record(d FlightDigest) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if d.UnixNanos == 0 {
		d.UnixNanos = f.clock().UnixNano()
	}
	f.ring[f.next] = d
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
	f.seen++
	f.mu.Unlock()
}

// Snapshot returns the retained digests, oldest first.
func (f *FlightRecorder) Snapshot() []FlightDigest {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []FlightDigest
	if f.full {
		out = make([]FlightDigest, 0, len(f.ring))
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring[:f.next]...)
	}
	return out
}

// Seen returns how many digests were ever recorded (not just retained).
func (f *FlightRecorder) Seen() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

// flightDump is the on-disk and HTTP document shape.
type flightDump struct {
	Reason   string         `json:"reason,omitempty"`
	DumpedAt time.Time      `json:"dumped_at"`
	Seen     int64          `json:"seen"`
	Retained int            `json:"retained"`
	Digests  []FlightDigest `json:"digests"`
}

func (f *FlightRecorder) dump(reason string) flightDump {
	digests := f.Snapshot()
	f.mu.Lock()
	now := f.clock()
	seen := f.seen
	f.mu.Unlock()
	return flightDump{Reason: reason, DumpedAt: now, Seen: seen,
		Retained: len(digests), Digests: digests}
}

// Dump writes the retained digests as one JSON file into the configured
// directory, named flight-<unixnanos>.json, and returns its path. A
// recorder with no dump directory returns "" without error — auto-dump
// hooks can call it unconditionally.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	dir := f.dir
	f.mu.Unlock()
	if dir == "" {
		return "", nil
	}
	doc := f.dump(reason)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%d.json", doc.DumpedAt.UnixNano()))
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	f.mu.Lock()
	f.dumps++
	f.mu.Unlock()
	return path, nil
}

// Dumps returns how many disk dumps completed.
func (f *FlightRecorder) Dumps() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// Handler serves the current ring as JSON at /flightrecorder.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.dump(""))
	})
}

// Collect registers recorder gauges on reg.
func (f *FlightRecorder) Collect(reg *Registry) {
	reg.GaugeFunc("rootless_flight_recorded_total", "digests ever recorded", nil,
		func() float64 { return float64(f.Seen()) })
	reg.GaugeFunc("rootless_flight_dumps_total", "disk dumps completed", nil,
		func() float64 { return float64(f.Dumps()) })
}
