package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records per-query resolution traces into a bounded ring of the
// most recent slow queries. The disabled path costs one atomic load in
// Begin plus nil-receiver no-ops for every event, so it can stay compiled
// into the hot path permanently.
type Tracer struct {
	enabled   atomic.Bool
	slowNanos atomic.Int64 // keep only traces at least this slow (0 = all)
	ringSize  int

	// Per-phase attribution accumulates for every finished trace, even
	// ones the slow threshold keeps out of the ring, so trial-level
	// breakdowns are complete.
	attrNanos  [numPhases]atomic.Int64
	attrTraces atomic.Int64
	attrHist   atomic.Pointer[[numPhases]*Histogram]

	mu   sync.Mutex
	ring []*Trace // oldest first
	seen int64    // total finished traces (kept or not)
}

// NewTracer creates a disabled tracer retaining the last ringSize traces
// whose wall time is ≥ slow (slow = 0 keeps every trace).
func NewTracer(ringSize int, slow time.Duration) *Tracer {
	if ringSize <= 0 {
		ringSize = 128
	}
	t := &Tracer{ringSize: ringSize}
	t.slowNanos.Store(int64(slow))
	return t
}

// SetEnabled switches tracing on or off. Nil-safe.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether traces are being recorded. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSlowThreshold changes the keep threshold. Nil-safe.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.slowNanos.Store(int64(d))
	}
}

// Begin starts a trace for one resolution, or returns nil when tracing is
// off (every Trace method is a no-op on a nil receiver).
func (t *Tracer) Begin(qname, qtype string) *Trace {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Trace{tracer: t, TraceID: nextTraceID(), Qname: qname, Qtype: qtype, Start: time.Now()}
}

// InstrumentAttribution registers per-phase latency-attribution
// histograms (rootless_trace_phase_seconds{phase=...}) and routes every
// finished trace's breakdown into them. Nil-safe.
func (t *Tracer) InstrumentAttribution(r *Registry) {
	if t == nil || r == nil {
		return
	}
	var hs [numPhases]*Histogram
	for _, p := range Phases() {
		hs[p] = r.Histogram("rootless_trace_phase_seconds",
			"per-trace latency attribution by phase",
			Labels{"phase": p.String()}, nil)
	}
	t.attrHist.Store(&hs)
}

// AttributionTotals returns the cumulative per-phase breakdown across
// every finished trace. Nil-safe. Experiment trials snapshot this
// before and after a run and Sub the two.
func (t *Tracer) AttributionTotals() Attribution {
	var a Attribution
	if t == nil {
		return a
	}
	for _, p := range Phases() {
		a.add(p, t.attrNanos[p].Load())
	}
	return a
}

// AttributedTraces returns how many traces contributed to
// AttributionTotals. Nil-safe.
func (t *Tracer) AttributedTraces() int64 {
	if t == nil {
		return 0
	}
	return t.attrTraces.Load()
}

// recordAttribution folds one trace's breakdown into the totals and, if
// instrumented, the per-phase histograms.
func (t *Tracer) recordAttribution(a Attribution) {
	t.attrTraces.Add(1)
	hs := t.attrHist.Load()
	for _, p := range Phases() {
		ns := a.ByPhase(p)
		if ns != 0 {
			t.attrNanos[p].Add(ns)
		}
		if hs != nil {
			hs[p].Observe(float64(ns) / 1e9)
		}
	}
}

// record files a finished trace into the ring.
func (t *Tracer) record(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if tr.Wall < time.Duration(t.slowNanos.Load()) {
		return
	}
	if len(t.ring) >= t.ringSize {
		copy(t.ring, t.ring[1:])
		t.ring = t.ring[:len(t.ring)-1]
	}
	t.ring = append(t.ring, tr)
}

// Recent returns the retained traces, oldest first. Nil-safe.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Trace(nil), t.ring...)
}

// RecentByClass returns the retained traces whose classification tag
// equals class, oldest first ("" returns everything). Nil-safe.
func (t *Tracer) RecentByClass(class string) []*Trace {
	all := t.Recent()
	if class == "" {
		return all
	}
	out := all[:0]
	for _, tr := range all {
		if tr.QueryClass() == class {
			out = append(out, tr)
		}
	}
	return out
}

// Seen returns how many traces finished (kept or not). Nil-safe.
func (t *Tracer) Seen() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen
}

// WriteJSON dumps the retained traces as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Recent())
}

// WriteText dumps the retained traces as human-readable trace trees.
func (t *Tracer) WriteText(w io.Writer) error {
	return writeTraceTrees(w, t.Recent())
}

func writeTraceTrees(w io.Writer, traces []*Trace) error {
	if len(traces) == 0 {
		_, err := io.WriteString(w, "no traces recorded\n")
		return err
	}
	for i, tr := range traces {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, tr.Tree()); err != nil {
			return err
		}
	}
	return nil
}

// Collect implements Collector: tracer occupancy metrics.
func (t *Tracer) Collect(r *Registry) {
	en := 0.0
	if t.Enabled() {
		en = 1
	}
	r.Gauge("rootless_tracer_enabled", "whether query tracing is on", nil).Set(en)
	r.Counter("rootless_tracer_traces_total", "finished traces since start", nil).Set(t.Seen())
	r.Gauge("rootless_tracer_ring_occupancy", "slow traces currently retained", nil).Set(float64(len(t.Recent())))
}

// Event is one step of a resolution's iterative walk.
type Event struct {
	At     time.Duration `json:"at"`    // offset from trace start
	Depth  int           `json:"depth"` // referral / glue-chase depth
	Kind   string        `json:"kind"`  // cache-hit, referral, send, timeout, ...
	Detail string        `json:"detail"`
}

// Trace is one resolution's span: qname/qtype, outcome, and the ordered
// events of the iterative walk. All methods are nil-receiver-safe so
// instrumented code needs no enabled checks.
type Trace struct {
	tracer *Tracer
	// TraceID is the process-unique identifier assigned by Begin (or
	// adopted from the far side by BeginRemote); /tracez?traceid= keys
	// on it, and cross-process propagation carries it on the wire.
	TraceID uint64 `json:"-"`
	// ParentSpanID is the remote parent span this trace joined under
	// (BeginRemote); zero for locally-originated traces.
	ParentSpanID uint64 `json:"-"`
	Qname        string    `json:"qname"`
	Qtype        string    `json:"qtype"`
	Start        time.Time `json:"start"`
	// Rcode and Err describe the outcome (set by Finish).
	Rcode string `json:"rcode"`
	Err   string `json:"err,omitempty"`
	// Latency is the (possibly virtual) network time the resolution
	// reported; Wall is real elapsed time; Queries counts network sends.
	Latency time.Duration `json:"latency"`
	Wall    time.Duration `json:"wall"`
	Queries int           `json:"queries"`

	// Class is the traffic classification tag (obs/traffic class name,
	// e.g. "bogus_tld"), set by SetClass when the daemon runs a traffic
	// analyzer; /tracez can filter on it with ?class=.
	Class string `json:"class,omitempty"`

	// Attr is the per-phase latency breakdown computed by Finish from
	// the span tree.
	Attr Attribution `json:"attribution"`

	mu     sync.Mutex
	depth  int
	Events []Event `json:"events"`
	spans  []*Span // top-level spans, in start order
	cur    *Span   // innermost open span (nesting cursor)
}

// Eventf appends a formatted event at the current depth.
func (tr *Trace) Eventf(kind, format string, args ...any) {
	if tr == nil {
		return
	}
	at := time.Since(tr.Start)
	tr.mu.Lock()
	tr.Events = append(tr.Events, Event{At: at, Depth: tr.depth, Kind: kind, Detail: fmt.Sprintf(format, args...)})
	tr.mu.Unlock()
}

// SetClass tags the trace with its traffic classification. Nil-safe.
func (tr *Trace) SetClass(class string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.Class = class
	tr.mu.Unlock()
}

// QueryClass returns the traffic classification tag ("" when untagged).
// Nil-safe; reads under the trace lock so scrapes never race SetClass.
func (tr *Trace) QueryClass() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.Class
}

// Push increases the depth (entering a referral hop or glue chase).
func (tr *Trace) Push() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.depth++
	tr.mu.Unlock()
}

// Pop decreases the depth.
func (tr *Trace) Pop() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.depth > 0 {
		tr.depth--
	}
	tr.mu.Unlock()
}

// Finish closes the trace with the resolution outcome and files it with
// the tracer.
func (tr *Trace) Finish(rcode string, latency time.Duration, queries int, err error) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.Rcode = rcode
	tr.Latency = latency
	tr.Queries = queries
	if err != nil {
		tr.Err = err.Error()
	}
	tr.Wall = time.Since(tr.Start)
	tr.Attr = tr.computeAttribution(tr.Wall)
	attr := tr.Attr
	tr.mu.Unlock()
	tr.tracer.recordAttribution(attr)
	tr.tracer.record(tr)
}

// traceJSON is the locked export form of a Trace; MarshalJSON uses it so
// concurrent span/event writers never race a /tracez scrape.
type traceJSON struct {
	TraceID      string       `json:"trace_id"`
	ParentSpanID string       `json:"parent_span_id,omitempty"`
	Qname       string        `json:"qname"`
	Qtype       string        `json:"qtype"`
	Start       time.Time     `json:"start"`
	Rcode       string        `json:"rcode"`
	Err         string        `json:"err,omitempty"`
	Latency     time.Duration `json:"latency"`
	Wall        time.Duration `json:"wall"`
	Queries     int           `json:"queries"`
	Class       string        `json:"class,omitempty"`
	Attribution Attribution   `json:"attribution"`
	Events      []Event       `json:"events"`
	Spans       []*SpanJSON   `json:"spans"`
}

// MarshalJSON snapshots the trace under its lock. Without this, a scrape
// of a still-running trace races Eventf/StartSpan appends.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	tr.mu.Lock()
	out := traceJSON{
		TraceID:     FormatTraceID(tr.TraceID),
		Qname:       tr.Qname,
		Qtype:       tr.Qtype,
		Start:       tr.Start,
		Rcode:       tr.Rcode,
		Err:         tr.Err,
		Latency:     tr.Latency,
		Wall:        tr.Wall,
		Queries:     tr.Queries,
		Class:       tr.Class,
		Attribution: tr.Attr,
		Events:      append([]Event(nil), tr.Events...),
	}
	if tr.ParentSpanID != 0 {
		out.ParentSpanID = FormatTraceID(tr.ParentSpanID)
	}
	for _, s := range tr.spans {
		out.Spans = append(out.Spans, s.export())
	}
	tr.mu.Unlock()
	return json.Marshal(out)
}

// Tree renders the trace as an indented, human-readable walk.
func (tr *Trace) Tree() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s rcode=%s latency=%v queries=%d wall=%v",
		tr.Qname, tr.Qtype, tr.Rcode, tr.Latency, tr.Queries, tr.Wall)
	if tr.Class != "" {
		fmt.Fprintf(&sb, " class=%s", tr.Class)
	}
	if tr.Err != "" {
		fmt.Fprintf(&sb, " err=%q", tr.Err)
	}
	sb.WriteByte('\n')
	if tr.Attr != (Attribution{}) {
		fmt.Fprintf(&sb, "  attribution: cache=%v net=%v auth=%v backoff=%v overload_wait=%v validate=%v other=%v\n",
			time.Duration(tr.Attr.CacheNS).Round(time.Microsecond),
			time.Duration(tr.Attr.NetNS).Round(time.Microsecond),
			time.Duration(tr.Attr.AuthNS).Round(time.Microsecond),
			time.Duration(tr.Attr.BackoffNS).Round(time.Microsecond),
			time.Duration(tr.Attr.OverloadWaitNS).Round(time.Microsecond),
			time.Duration(tr.Attr.ValidateNS).Round(time.Microsecond),
			time.Duration(tr.Attr.OtherNS).Round(time.Microsecond))
	}
	for _, s := range tr.spans {
		s.writeTree(&sb, 0)
	}
	for _, e := range tr.Events {
		fmt.Fprintf(&sb, "  %s%-10s +%-8v %s\n",
			strings.Repeat("  ", e.Depth), "["+e.Kind+"]", e.At.Round(time.Microsecond), e.Detail)
	}
	return sb.String()
}
