package obs

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestTraceIDFormatParse(t *testing.T) {
	for _, id := range []uint64{1, 0xDEADBEEF, ^uint64(0)} {
		s := FormatTraceID(id)
		if len(s) != 16 {
			t.Errorf("FormatTraceID(%d) = %q, want 16 hex digits", id, s)
		}
		back, err := ParseTraceID(s)
		if err != nil || back != id {
			t.Errorf("round trip %d -> %q -> %d (%v)", id, s, back, err)
		}
	}
	for _, bad := range []string{"", "xyz", "00112233445566778899", "-1", "0x12"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
	// Short hand-typed forms parse.
	if id, err := ParseTraceID("ff"); err != nil || id != 255 {
		t.Errorf("short form: %d, %v", id, err)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	tc := enabledTracer(8)
	a, b := tc.Begin("a.", "A"), tc.Begin("b.", "A")
	if a.ID() == 0 || b.ID() == 0 || a.ID() == b.ID() {
		t.Errorf("trace IDs not unique: %x %x", a.ID(), b.ID())
	}
	var nilTr *Trace
	if nilTr.ID() != 0 {
		t.Error("nil trace must have ID 0")
	}
}

func TestBeginRemoteAndByID(t *testing.T) {
	tc := enabledTracer(8)
	tr := tc.BeginRemote("www.example.com.", "A", 42, 99)
	if tr.ID() != 42 || tr.ParentSpanID != 99 {
		t.Fatalf("joined trace: id=%d parent=%d", tr.ID(), tr.ParentSpanID)
	}
	tr.Finish("NOERROR", 0, 1, nil)
	got := tc.ByID(42)
	if len(got) != 1 || got[0] != tr {
		t.Fatalf("ByID(42) = %v", got)
	}
	if tc.ByID(7) != nil || tc.ByID(0) != nil {
		t.Error("unknown/zero IDs must return nil")
	}
	var nilTc *Tracer
	if nilTc.ByID(42) != nil {
		t.Error("nil tracer must return nil")
	}
	if nilTc.BeginRemote("x.", "A", 1, 2) != nil {
		t.Error("nil tracer BeginRemote must return nil")
	}
	// parent_span_id appears in the JSON export.
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"parent_span_id":"`+FormatTraceID(99)+`"`) {
		t.Errorf("export lacks parent_span_id: %s", b)
	}
}

// TestGraftRemote pins the stitching mechanics: the far side's payload
// lands under the innermost open span, rebased to the parent's start,
// marked remote, with durations preserved.
func TestGraftRemote(t *testing.T) {
	tc := enabledTracer(8)

	// The "auth side": a trace whose payload we ship.
	remote := tc.BeginRemote("www.example.com.", "A", 42, 0)
	rsp := remote.StartSpan(PhaseAuth, "auth")
	rsp.SetDetail("answered")
	rsp.EndWithDuration(3 * time.Millisecond)
	payload := remote.SpanPayload()
	if payload == nil {
		t.Fatal("no payload")
	}

	// The "resolver side": graft while the attempt span is open.
	local := tc.Begin("www.example.com.", "A")
	att := local.StartSpan(PhaseNet, "attempt")
	local.GraftRemote(payload)
	att.EndWithDuration(10 * time.Millisecond)
	local.Finish("NOERROR", 10*time.Millisecond, 1, nil)

	local.mu.Lock()
	defer local.mu.Unlock()
	if len(local.spans) != 1 {
		t.Fatalf("top-level spans: %d", len(local.spans))
	}
	a := local.spans[0]
	if len(a.children) != 1 {
		t.Fatalf("attempt children: %d", len(a.children))
	}
	g := a.children[0]
	if g.Name != "auth" || !g.remote || !g.ended || g.phase != PhaseAuth {
		t.Errorf("grafted span: %+v", g)
	}
	if g.dur != 3*time.Millisecond {
		t.Errorf("grafted duration %v", g.dur)
	}
	if g.start != a.start {
		t.Errorf("graft not rebased: %v != %v", g.start, a.start)
	}
	if g.detail != "answered" {
		t.Errorf("detail %q", g.detail)
	}

	// Malformed payloads are dropped, never panic.
	local2 := tc.Begin("x.", "A")
	local2.GraftRemote([]byte("not json"))
	local2.GraftRemote(nil)
	var nilTr *Trace
	nilTr.GraftRemote(payload)
}

// TestTracezStitchedSchemaGolden pins the /tracez?traceid= stitched
// document schema by key paths, the cross-process analogue of the
// /tracez list golden. Run with -update-golden after a deliberate
// schema change.
func TestTracezStitchedSchemaGolden(t *testing.T) {
	tc := enabledTracer(8)
	// Build a deterministic stitched trace: the usual fixture shape plus
	// a grafted remote span carrying a detail.
	remote := tc.BeginRemote("www.example.com.", "A", 0, 77)
	rsp := remote.StartSpan(PhaseAuth, "auth")
	rsp.SetDetail("rrl-ok")
	rsp.EndWithDuration(2 * time.Millisecond)
	payload := remote.SpanPayload()

	local := tc.Begin("www.example.com.", "A")
	local.SetClass("valid")
	att := local.StartSpan(PhaseNet, "attempt")
	att.SetDetail("192.0.2.1 zone com.")
	local.GraftRemote(payload)
	att.EndWithDuration(10 * time.Millisecond)
	local.Eventf("recv", "rcode NOERROR")
	local.Finish("NOERROR", 10*time.Millisecond, 1, nil)

	// The auth-side share under the same ID exercises parent_span_id in
	// the same document.
	remote.TraceID = local.TraceID
	remote.Finish("NOERROR", 0, 1, nil)

	a := &Admin{Tracer: tc, Registry: NewRegistry()}
	code, body := get(t, a.Handler(), "/tracez?traceid="+FormatTraceID(local.TraceID))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var decoded any
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatal(err)
	}
	paths := make(map[string]bool)
	keyPaths(decoded, "$", paths)
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"

	golden := filepath.Join("testdata", "tracez_stitched_schema.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("stitched /tracez schema drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
