package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HDR is a log-linear high-dynamic-range histogram over non-negative
// int64 values (by convention nanoseconds). The value axis is split into
// octaves of hdrSubCount linearly-spaced buckets each, so the relative
// quantile-estimation error is bounded by 2^-hdrSubBits (~0.8%) at any
// magnitude — unlike the fixed-bucket Histogram, whose error explodes
// between its hand-picked bounds. Memory is fixed (~57 KB), Record is a
// bucket-index computation plus three uncontended atomic adds (no locks,
// no allocations — cheap enough for the per-resolution hot path), and
// histograms merge losslessly bucket-by-bucket, so per-worker instances
// can be combined at scrape time.
type HDR struct {
	counts [hdrBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

const (
	// hdrSubBits sets the precision: each octave has 2^hdrSubBits
	// linear buckets, bounding relative error at 2^-hdrSubBits ≈ 0.8%.
	hdrSubBits = 7
	hdrSubCount = 1 << hdrSubBits
	// hdrBuckets covers the full non-negative int64 range: a linear
	// region [0, hdrSubCount) plus (63-hdrSubBits) octaves.
	hdrBuckets = (64 - hdrSubBits) * hdrSubCount
)

// NewHDR creates an empty histogram.
func NewHDR() *HDR { return new(HDR) }

// hdrIndex maps a non-negative value to its bucket. Values below
// hdrSubCount are exact (one bucket per value); above, the value's top
// hdrSubBits+1 bits select a bucket whose width is 2^exp.
func hdrIndex(v int64) int {
	u := uint64(v)
	if u < hdrSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - hdrSubBits - 1
	return exp*hdrSubCount + int(u>>uint(exp))
}

// hdrLower returns the smallest value mapping to bucket idx.
func hdrLower(idx int) int64 {
	block := idx / hdrSubCount
	if block == 0 {
		return int64(idx)
	}
	exp := block - 1
	mantissa := int64(idx - exp*hdrSubCount) // in [hdrSubCount, 2*hdrSubCount)
	return mantissa << uint(exp)
}

// hdrMid returns the midpoint of bucket idx — the quantile estimate for
// ranks landing inside it, halving the worst-case relative error again.
func hdrMid(idx int) int64 {
	block := idx / hdrSubCount
	if block == 0 {
		return int64(idx)
	}
	width := int64(1) << uint(block-1)
	return hdrLower(idx) + width/2
}

// Record adds one observation. Negative values clamp to zero.
func (h *HDR) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// RecordDuration records d in nanoseconds.
func (h *HDR) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of observations. Nil-safe.
func (h *HDR) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations. Nil-safe.
func (h *HDR) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Merge folds o's observations into h (both keep serving concurrent
// Records; the merge is per-bucket atomic, not a consistent snapshot).
func (h *HDR) Merge(o *HDR) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded values:
// the bucket midpoint where the ceil(q*count)-th smallest observation
// lands, so the estimate is within 2^-(hdrSubBits+1) relative error of
// the true order statistic. Returns 0 when empty. Nil-safe.
func (h *HDR) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			return hdrMid(i)
		}
	}
	return hdrMid(len(h.counts) - 1)
}

// Quantiles estimates several quantiles in one bucket walk. qs must be
// ascending for a single pass; out-of-order entries still resolve
// correctly but cost extra walks. Nil-safe (returns zeros).
func (h *HDR) Quantiles(qs []float64) []int64 {
	out := make([]int64, len(qs))
	if h == nil {
		return out
	}
	prev := -1.0
	ascending := true
	for _, q := range qs {
		if q < prev {
			ascending = false
			break
		}
		prev = q
	}
	if !ascending {
		for i, q := range qs {
			out[i] = h.Quantile(q)
		}
		return out
	}
	total := h.count.Load()
	if total <= 0 {
		return out
	}
	var cum int64
	idx := 0
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		rank := int64(q*float64(total) + 0.9999999999)
		if rank < 1 {
			rank = 1
		}
		if rank > total {
			rank = total
		}
		for idx < len(h.counts) && cum < rank {
			cum += h.counts[idx].Load()
			idx++
		}
		if idx > 0 {
			out[i] = hdrMid(idx - 1)
		}
	}
	return out
}

// Max returns the midpoint of the highest occupied bucket (0 when
// empty). Nil-safe.
func (h *HDR) Max() int64 {
	if h == nil {
		return 0
	}
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i].Load() != 0 {
			return hdrMid(i)
		}
	}
	return 0
}

// Mean returns the exact arithmetic mean of recorded values (the sum is
// tracked exactly, not reconstructed from buckets). Nil-safe.
func (h *HDR) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// TailQuantiles are the latency quantiles every exposition surface
// (metrics, statusz, rootlesstop, experiments) reports for HDR series.
var TailQuantiles = []float64{0.5, 0.99, 0.999, 0.9999}

// TailSeconds returns the TailQuantiles of a nanosecond-valued HDR in
// seconds, in order (p50, p99, p999, p9999). Nil-safe.
func (h *HDR) TailSeconds() [4]float64 {
	var out [4]float64
	for i, v := range h.Quantiles(TailQuantiles) {
		out[i] = float64(v) / 1e9
	}
	return out
}
