// Admin endpoint contract audit. This lives in an external test package
// so it can mount the real /timeseries and /topk handlers (obs/tsdb and
// obs/traffic import obs, so obs's own tests cannot import them back).
//
// The contract under audit, for every admin endpoint:
//   - a successful response carries an explicit Content-Type
//   - an unknown value for a recognised query parameter is a 400, not a
//     silent fallback to the default rendering
package obs_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
	"rootless/internal/obs/tsdb"
)

// auditAdmin builds a fully-populated Admin: registry with a counter,
// tracer with two class-tagged traces, a ticked recorder, a traffic
// analyzer that has observed a small mixed workload, a flight-recorder
// ring with one digest, and an SLO watchdog in the status document.
// The second return is the formatted trace ID of the first trace, for
// the /tracez?traceid= cases.
func auditAdmin(t *testing.T) (*obs.Admin, string) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("rootless_audit_total", "t", nil).Set(3)

	tc := obs.NewTracer(8, 0)
	tc.SetEnabled(true)
	var traceID string
	for _, q := range []struct{ name, class string }{
		{"www.example.com.", "valid"},
		{"printer.local.", "bogus_tld"},
	} {
		tr := tc.Begin(q.name, "A")
		if traceID == "" {
			traceID = obs.FormatTraceID(tr.ID())
		}
		tr.SetClass(q.class)
		tr.Finish("NOERROR", time.Millisecond, 1, nil)
	}

	rec := tsdb.NewRecorder(reg, tsdb.Options{Interval: time.Second, PointsPerLevel: 8, Levels: 2})
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		now = now.Add(time.Second)
		rec.Record(now)
	}

	an := traffic.NewAnalyzer(traffic.NewTLDSet([]dnswire.Name{"com.", "net."}), 8)
	an.Observe("www.example.com.", dnswire.TypeA)
	an.Observe("printer.local.", dnswire.TypeA)

	fr := obs.NewFlightRecorder(8, "")
	fr.Record(obs.FlightDigest{Class: "valid", Qtype: "A", Rcode: "NOERROR"})

	wd := obs.NewWatchdog(nil)
	wd.Add(obs.SLOConfig{Name: "errors", Budget: 0.01}).Observe(true)

	return &obs.Admin{
		Registry: reg,
		Tracer:   tc,
		Status: func() map[string]any {
			return map[string]any{"mode": "audit", "slo": wd.Status()}
		},
		Timeseries: rec,
		TopK:       an.Handler(),
		Flight:     fr.Handler(),
	}, traceID
}

func TestAdminEndpointContract(t *testing.T) {
	admin, traceID := auditAdmin(t)
	h := admin.Handler()
	cases := []struct {
		url      string
		wantCode int
		wantCT   string // exact match; "" = don't care (error responses)
	}{
		{"/tracez?traceid=" + traceID, 200, "application/json"},
		{"/tracez?traceid=zz-not-hex", 400, ""},
		{"/tracez?traceid=deadbeef00000000", 404, ""},

		{"/flightrecorder", 200, "application/json"},

		{"/metrics", 200, "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics?format=text", 200, "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics?format=json", 200, "application/json"},
		{"/metrics?format=xml", 400, ""},

		{"/healthz", 200, "text/plain; charset=utf-8"},

		{"/tracez", 200, "text/plain; charset=utf-8"},
		{"/tracez?format=json", 200, "application/json"},
		{"/tracez?format=json&class=bogus_tld", 200, "application/json"},
		{"/tracez?class=nonexistent_class", 200, "text/plain; charset=utf-8"},
		{"/tracez?format=yaml", 400, ""},

		{"/statusz", 200, "application/json"},

		{"/timeseries", 200, "application/json"},
		{"/timeseries?format=json&rate=1", 200, "application/json"},
		{"/timeseries?format=csv&level=1", 200, "text/csv; charset=utf-8"},
		{"/timeseries?format=xml", 400, ""},
		{"/timeseries?level=9", 400, ""},
		{"/timeseries?level=x", 400, ""},
		{"/timeseries?rate=maybe", 400, ""},

		{"/topk", 200, "text/plain; charset=utf-8"},
		{"/topk?format=text&n=5", 200, "text/plain; charset=utf-8"},
		{"/topk?format=json", 200, "application/json"},
		{"/topk?format=xml", 400, ""},
		{"/topk?n=0", 400, ""},
		{"/topk?n=x", 400, ""},

		{"/", 200, "text/plain; charset=utf-8"},
		{"/no-such-endpoint", 404, ""},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", c.url, nil))
		if w.Code != c.wantCode {
			t.Errorf("%s: code %d, want %d (body %q)", c.url, w.Code, c.wantCode, w.Body.String())
			continue
		}
		if c.wantCT != "" && w.Header().Get("Content-Type") != c.wantCT {
			t.Errorf("%s: Content-Type %q, want %q", c.url, w.Header().Get("Content-Type"), c.wantCT)
		}
		if w.Code == 200 && w.Header().Get("Content-Type") == "" {
			t.Errorf("%s: 200 with no Content-Type", c.url)
		}
	}
}

// TestStatuszSLOAndFlight checks the /statusz document carries the SLO
// watchdog block (per-SLO burn rates and alert state) and that the
// /flightrecorder document reflects the recorded digests — the fields
// rootlesstop and the runbooks read.
func TestStatuszSLOAndFlight(t *testing.T) {
	admin, _ := auditAdmin(t)
	h := admin.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/statusz", nil))
	var status struct {
		Mode string `json:"mode"`
		SLO  map[string]struct {
			Budget   float64 `json:"budget"`
			BurnFast float64 `json:"burn_fast"`
			BurnSlow float64 `json:"burn_slow"`
			Alerting bool    `json:"alerting"`
		} `json:"slo"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &status); err != nil {
		t.Fatalf("statusz: %v (body %q)", err, w.Body.String())
	}
	errSLO, ok := status.SLO["errors"]
	if !ok {
		t.Fatalf("statusz slo block missing %q: %+v", "errors", status.SLO)
	}
	if errSLO.Budget != 0.01 || errSLO.Alerting {
		t.Errorf("errors SLO status = %+v, want budget 0.01, not alerting", errSLO)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/flightrecorder", nil))
	var flight struct {
		Seen     int64 `json:"seen"`
		Retained int   `json:"retained"`
		Digests  []struct {
			Class string `json:"class"`
			Rcode string `json:"rcode"`
		} `json:"digests"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &flight); err != nil {
		t.Fatalf("flightrecorder: %v (body %q)", err, w.Body.String())
	}
	if flight.Seen != 1 || flight.Retained != 1 || len(flight.Digests) != 1 ||
		flight.Digests[0].Class != "valid" || flight.Digests[0].Rcode != "NOERROR" {
		t.Errorf("flightrecorder document = %+v, want the one recorded digest", flight)
	}
}

// TestTracezClassFilter checks /tracez?class= semantics, not just codes:
// the filtered document contains exactly the traces tagged with the class.
func TestTracezClassFilter(t *testing.T) {
	admin, _ := auditAdmin(t)
	h := admin.Handler()
	get := func(url string) []struct {
		Qname string `json:"qname"`
		Class string `json:"class"`
	} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		if w.Code != 200 {
			t.Fatalf("%s: code %d", url, w.Code)
		}
		var traces []struct {
			Qname string `json:"qname"`
			Class string `json:"class"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &traces); err != nil && !strings.Contains(w.Body.String(), "null") {
			t.Fatalf("%s: %v", url, err)
		}
		return traces
	}
	all := get("/tracez?format=json")
	if len(all) != 2 {
		t.Fatalf("unfiltered traces: %d, want 2", len(all))
	}
	bogus := get("/tracez?format=json&class=bogus_tld")
	if len(bogus) != 1 || bogus[0].Qname != "printer.local." || bogus[0].Class != "bogus_tld" {
		t.Errorf("class filter returned %+v", bogus)
	}
	if none := get("/tracez?format=json&class=ptr_private"); len(none) != 0 {
		t.Errorf("empty filter returned %+v", none)
	}
}

var _ http.Handler = (*tsdb.Recorder)(nil) // Recorder must stay mountable as Admin.Timeseries
