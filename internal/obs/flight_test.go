package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4, "")
	for i := 0; i < 6; i++ {
		f.Record(FlightDigest{LatencyNS: int64(i), Rcode: "NOERROR"})
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d", len(got))
	}
	// Oldest first: 2,3,4,5 survive.
	for i, d := range got {
		if d.LatencyNS != int64(i+2) {
			t.Fatalf("order: %+v", got)
		}
		if d.UnixNanos == 0 {
			t.Error("timestamp not stamped")
		}
	}
	if f.Seen() != 6 {
		t.Errorf("seen %d", f.Seen())
	}

	var nilRec *FlightRecorder
	nilRec.Record(FlightDigest{}) // nil-safe
	if nilRec.Snapshot() != nil || nilRec.Seen() != 0 || nilRec.Dumps() != 0 {
		t.Error("nil recorder must read as empty")
	}
	if p, err := nilRec.Dump("x"); p != "" || err != nil {
		t.Error("nil recorder Dump must no-op")
	}
}

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8, filepath.Join(dir, "flights"))
	f.SetClock(func() time.Time { return time.Unix(1700000000, 42) })
	f.Record(FlightDigest{Rcode: "SERVFAIL", Shed: true, Err: "overloaded"})

	path, err := f.Dump("slo-burn:errors")
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason   string         `json:"reason"`
		Seen     int64          `json:"seen"`
		Retained int            `json:"retained"`
		Digests  []FlightDigest `json:"digests"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Reason != "slo-burn:errors" || doc.Seen != 1 || doc.Retained != 1 {
		t.Fatalf("dump doc: %+v", doc)
	}
	if len(doc.Digests) != 1 || !doc.Digests[0].Shed || doc.Digests[0].Err != "overloaded" {
		t.Fatalf("digests: %+v", doc.Digests)
	}
	if f.Dumps() != 1 {
		t.Errorf("dumps %d", f.Dumps())
	}

	// No dump directory: Dump is a silent no-op for unconditional hooks.
	none := NewFlightRecorder(8, "")
	none.Record(FlightDigest{})
	if p, err := none.Dump("x"); p != "" || err != nil {
		t.Errorf("dirless dump: %q %v", p, err)
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	f := NewFlightRecorder(8, "")
	f.Record(FlightDigest{Rcode: "NOERROR", Class: "valid", FromCache: true})
	a := &Admin{Registry: NewRegistry(), Flight: f.Handler()}

	req := httptest.NewRequest("GET", "/flightrecorder", nil)
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc struct {
		Digests []FlightDigest `json:"digests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Digests) != 1 || doc.Digests[0].Class != "valid" || !doc.Digests[0].FromCache {
		t.Fatalf("handler digests: %+v", doc.Digests)
	}

	// Without Flight set, the endpoint is absent (404 via the root mux).
	bare := &Admin{Registry: NewRegistry()}
	rec = httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/flightrecorder", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unmounted endpoint = %d, want 404", rec.Code)
	}

	// Collect exposes the counters.
	reg := NewRegistry()
	f.Collect(reg)
	var seen float64
	for _, s := range reg.Snapshot() {
		if s.Name == "rootless_flight_recorded_total" {
			seen = s.Value
		}
	}
	if seen != 1 {
		t.Errorf("recorded_total = %v", seen)
	}
}
