// Coverage tests live in an external package so they can import the
// instrumented components (which themselves import obs) and pin the
// contract that every exported counter field of every Stats struct in the
// system shows up in a scrape — exactly once, under the expected prefix.
// Adding a field to any Stats struct passes automatically (reflection
// exports it); renaming a metric or forgetting a Collect wire-up fails.
package obs_test

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"rootless/internal/authserver"
	"rootless/internal/cache"
	"rootless/internal/dist"
	"rootless/internal/dnswire"
	"rootless/internal/faults"
	"rootless/internal/obs"
	"rootless/internal/resolver"
	"rootless/internal/zone"
)

// stubTransport satisfies resolver.Transport without a network.
type stubTransport struct{}

func (stubTransport) Exchange(netip.Addr, *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	return nil, 0, dnswire.ErrMessageTruncated
}

const testZoneSrc = `
. 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. 2019041100 1800 900 604800 3600
. 518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 198.41.0.4
`

func testZone(t *testing.T) *zone.Zone {
	t.Helper()
	z, err := zone.Parse(strings.NewReader(testZoneSrc), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

// expectCounters verifies that scraping collector yields exactly one
// sample for every exported integer field of stats under prefix, by
// comparing against what SetCountersFromStruct itself would emit.
func expectCounters(t *testing.T, collector obs.Collector, prefix string, stats any) {
	t.Helper()
	scratch := obs.NewRegistry()
	obs.SetCountersFromStruct(scratch, prefix, "want", nil, stats)
	want := scratch.Snapshot()

	// Every exported int field must have produced a scratch sample —
	// guards against SetCountersFromStruct silently skipping fields.
	sv := reflect.ValueOf(stats)
	intFields := 0
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Type().Field(i)
		if !f.IsExported() {
			continue
		}
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			intFields++
		}
	}
	if len(want) != intFields {
		t.Fatalf("%s: SetCountersFromStruct emitted %d samples for %d int fields",
			prefix, len(want), intFields)
	}

	reg := obs.NewRegistry()
	collector.Collect(reg)
	got := reg.Snapshot()
	for _, w := range want {
		n := 0
		for _, g := range got {
			if g.Name == w.Name {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%s: scrape has %d samples named %s, want exactly 1", prefix, n, w.Name)
		}
	}
}

func TestEveryStatsFieldIsExported(t *testing.T) {
	r := resolver.New(resolver.Config{
		Mode:      resolver.RootModeHints,
		Transport: stubTransport{},
	})
	expectCounters(t, r, "rootless_resolver", r.Stats())
	// Resolver.Collect also republishes its cache.
	expectCounters(t, r, "rootless_cache", r.Cache().Stats())

	c := cache.New(64, time.Now)
	expectCounters(t, c, "rootless_cache", c.Stats())

	srv := authserver.New(testZone(t))
	expectCounters(t, srv, "rootless_authserver", srv.Stats())

	m := dist.NewMirror(nil, 4)
	expectCounters(t, m, "rootless_mirror", m.Stats())

	g := dist.NewGossip(3, 1)
	expectCounters(t, g, "rootless_gossip", g.Stats())

	in := faults.NewInjector(1)
	expectCounters(t, in, "rootless_faults", in.Stats())
}

// TestRefresherCollectNames pins the refresher's hand-named series (its
// counters live in unexported fields, so they are named explicitly rather
// than reflected).
func TestRefresherCollectNames(t *testing.T) {
	ref, err := dist.NewRefresher(dist.RefresherConfig{
		Source:  dist.SourceFunc(nil),
		Install: func(*zone.Zone) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ref.Collect(reg)
	names := map[string]bool{}
	for _, s := range reg.Snapshot() {
		names[s.Name] = true
	}
	for _, want := range []string{
		"rootless_refresher_fetches_total",
		"rootless_refresher_failures_total",
		"rootless_refresher_installs_total",
		"rootless_refresher_fallback_fetches_total",
		"rootless_refresher_retry_delay_seconds",
		"rootless_refresher_fresh",
		"rootless_refresher_zone_serial",
	} {
		if !names[want] {
			t.Errorf("refresher scrape missing %s", want)
		}
	}
}
