package obs

import (
	"strings"
	"time"
)

// Phase classifies where a span's time is attributed in the per-trace
// latency breakdown. The taxonomy mirrors the paper's cost model: cache
// work, productive network exchanges, authoritative-side processing,
// wasted time on failed attempts (timeouts, lame servers — the price of
// retry/backoff), and time spent queued behind overload controls.
type Phase uint8

const (
	PhaseOther        Phase = iota // uninstrumented resolver compute
	PhaseCache                     // cache probes (positive, negative, NXDOMAIN cut)
	PhaseNet                       // productive upstream exchanges (charged virtual RTT)
	PhaseAuth                      // authoritative handling: local-root consults, authserver work
	PhaseBackoff                   // failed attempts: timeouts, lame servers, bad referrals
	PhaseOverloadWait              // admission-gate queueing and coalesced-flight waits
	PhaseValidate                  // DNSSEC validation: chain walks, RRSIG checks, denial proofs
	numPhases
)

var phaseNames = [numPhases]string{
	"other", "cache", "net", "auth", "backoff", "overload_wait", "validate",
}

// String returns the snake_case phase label used in histogram labels and
// JSON exports.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "other"
}

// Phases lists every phase in attribution order.
func Phases() []Phase {
	ps := make([]Phase, numPhases)
	for i := range ps {
		ps[i] = Phase(i)
	}
	return ps
}

// Attribution is a per-phase latency breakdown in nanoseconds for one
// trace (or, summed, for a whole trial). Each span contributes its
// self-time — duration minus the duration of its children — to its
// phase, so nested spans never double-count. Because network spans may
// be charged virtual RTTs larger than real elapsed time, the total can
// exceed the trace's wall time; it equals the trace's reported latency
// plus real compute.
type Attribution struct {
	CacheNS        int64 `json:"cache_ns"`
	NetNS          int64 `json:"net_ns"`
	AuthNS         int64 `json:"auth_ns"`
	BackoffNS      int64 `json:"backoff_ns"`
	OverloadWaitNS int64 `json:"overload_wait_ns"`
	ValidateNS     int64 `json:"validate_ns"`
	OtherNS        int64 `json:"other_ns"`
}

func (a *Attribution) add(p Phase, ns int64) {
	if ns <= 0 {
		return
	}
	switch p {
	case PhaseCache:
		a.CacheNS += ns
	case PhaseNet:
		a.NetNS += ns
	case PhaseAuth:
		a.AuthNS += ns
	case PhaseBackoff:
		a.BackoffNS += ns
	case PhaseOverloadWait:
		a.OverloadWaitNS += ns
	case PhaseValidate:
		a.ValidateNS += ns
	default:
		a.OtherNS += ns
	}
}

// ByPhase returns the nanoseconds attributed to one phase.
func (a Attribution) ByPhase(p Phase) int64 {
	switch p {
	case PhaseCache:
		return a.CacheNS
	case PhaseNet:
		return a.NetNS
	case PhaseAuth:
		return a.AuthNS
	case PhaseBackoff:
		return a.BackoffNS
	case PhaseOverloadWait:
		return a.OverloadWaitNS
	case PhaseValidate:
		return a.ValidateNS
	default:
		return a.OtherNS
	}
}

// Total sums all phases.
func (a Attribution) Total() int64 {
	return a.CacheNS + a.NetNS + a.AuthNS + a.BackoffNS + a.OverloadWaitNS + a.ValidateNS + a.OtherNS
}

// Add returns a + b, phase by phase.
func (a Attribution) Add(b Attribution) Attribution {
	a.CacheNS += b.CacheNS
	a.NetNS += b.NetNS
	a.AuthNS += b.AuthNS
	a.BackoffNS += b.BackoffNS
	a.OverloadWaitNS += b.OverloadWaitNS
	a.ValidateNS += b.ValidateNS
	a.OtherNS += b.OtherNS
	return a
}

// Sub returns a - b, phase by phase (for before/after trial snapshots).
func (a Attribution) Sub(b Attribution) Attribution {
	a.CacheNS -= b.CacheNS
	a.NetNS -= b.NetNS
	a.AuthNS -= b.AuthNS
	a.BackoffNS -= b.BackoffNS
	a.OverloadWaitNS -= b.OverloadWaitNS
	a.ValidateNS -= b.ValidateNS
	a.OtherNS -= b.OtherNS
	return a
}

// Span is one timed, phase-tagged step of a trace. Spans form a tree
// under the trace; a trace on one goroutine keeps a cursor so StartSpan
// nests under the most recently started unfinished span. A span costs
// one allocation when tracing is enabled and nothing at all (nil
// receiver no-ops) when it is not.
type Span struct {
	tr     *Trace
	parent *Span

	Name   string
	phase  Phase
	detail string

	start    time.Duration // offset from trace start
	dur      time.Duration // set by End/EndWithDuration, or at Finish
	ended    bool
	id       uint64 // lazily assigned by SpanID (wire propagation)
	remote   bool   // grafted from a far daemon's span payload
	children []*Span
}

// StartSpan opens a child of the current span (or a top-level span) and
// makes it current. Nil-safe: on a nil trace it returns nil, and every
// Span method no-ops on a nil receiver.
func (tr *Trace) StartSpan(p Phase, name string) *Span {
	if tr == nil {
		return nil
	}
	s := &Span{tr: tr, Name: name, phase: p, start: time.Since(tr.Start)}
	tr.mu.Lock()
	s.parent = tr.cur
	if s.parent != nil {
		s.parent.children = append(s.parent.children, s)
	} else {
		tr.spans = append(tr.spans, s)
	}
	tr.cur = s
	tr.mu.Unlock()
	return s
}

// SetPhase reclassifies the span (e.g. a network attempt that turned out
// to be a timeout becomes backoff time). Nil-safe.
func (s *Span) SetPhase(p Phase) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.phase = p
	s.tr.mu.Unlock()
}

// SetDetail attaches a short annotation (server address, decision).
// Nil-safe; callers should guard any allocation needed to build the
// string with a nil check on the span.
func (s *Span) SetDetail(d string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.detail = d
	s.tr.mu.Unlock()
}

// End closes the span with its wall duration. Ending out of order is
// tolerated: the cursor pops to the span's parent, and any still-open
// children are closed when the trace finishes. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endWith(time.Since(s.tr.Start) - s.start)
}

// EndWithDuration closes the span charging an explicit duration instead
// of wall time — used for virtual network RTTs from the simulator, and
// for charging a measured wait to a span created after the fact.
func (s *Span) EndWithDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.endWith(d)
}

func (s *Span) endWith(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = d
		if s.tr.cur == s {
			s.tr.cur = s.parent
		}
	}
	s.tr.mu.Unlock()
}

// closeOpenSpans assigns wall durations to spans left open at Finish.
// Caller holds tr.mu.
func closeOpenSpans(spans []*Span, wall time.Duration) {
	for _, s := range spans {
		if !s.ended {
			s.ended = true
			if d := wall - s.start; d > 0 {
				s.dur = d
			}
		}
		closeOpenSpans(s.children, wall)
	}
}

// attribute walks the span tree adding each span's self-time to its
// phase; returns the subtree's root duration. Caller holds tr.mu.
func attribute(s *Span, a *Attribution) time.Duration {
	var children time.Duration
	for _, c := range s.children {
		children += attribute(c, a)
	}
	if self := s.dur - children; self > 0 {
		a.add(s.phase, int64(self))
	}
	return s.dur
}

// computeAttribution closes open spans, tallies per-phase self-times,
// and charges the trace's remaining wall time to "other". Caller holds
// tr.mu.
func (tr *Trace) computeAttribution(wall time.Duration) Attribution {
	closeOpenSpans(tr.spans, wall)
	var a Attribution
	var spans time.Duration
	for _, s := range tr.spans {
		spans += attribute(s, &a)
	}
	if rest := wall - spans; rest > 0 {
		a.add(PhaseOther, int64(rest))
	}
	return a
}

// SpanJSON is the export form of one span in the /tracez JSON schema.
type SpanJSON struct {
	Name     string      `json:"name"`
	Phase    string      `json:"phase"`
	StartNS  int64       `json:"start_ns"`
	DurNS    int64       `json:"dur_ns"`
	Detail   string      `json:"detail,omitempty"`
	Remote   bool        `json:"remote,omitempty"`
	Children []*SpanJSON `json:"children,omitempty"`
}

// export converts a span subtree to its JSON form. Caller holds tr.mu.
func (s *Span) export() *SpanJSON {
	out := &SpanJSON{
		Name:    s.Name,
		Phase:   s.phase.String(),
		StartNS: int64(s.start),
		DurNS:   int64(s.dur),
		Detail:  s.detail,
		Remote:  s.remote,
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.export())
	}
	return out
}

// writeTree renders a span subtree into the /tracez text view. Caller
// holds tr.mu.
func (s *Span) writeTree(sb *strings.Builder, indent int) {
	sb.WriteString("  ")
	sb.WriteString(strings.Repeat("  ", indent))
	sb.WriteString("• ")
	sb.WriteString(s.Name)
	sb.WriteString(" [")
	sb.WriteString(s.phase.String())
	sb.WriteString("] ")
	sb.WriteString(s.dur.Round(time.Microsecond).String())
	if s.detail != "" {
		sb.WriteString(" (")
		sb.WriteString(s.detail)
		sb.WriteString(")")
	}
	sb.WriteByte('\n')
	for _, c := range s.children {
		c.writeTree(sb, indent+1)
	}
}
