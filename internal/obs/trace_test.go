package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestDisabledTracerReturnsNil(t *testing.T) {
	tr := NewTracer(4, 0)
	if got := tr.Begin("example.com.", "A"); got != nil {
		t.Fatal("disabled tracer must hand out nil traces")
	}
	// A nil tracer is also fully usable.
	var none *Tracer
	if none.Enabled() || none.Begin("x.", "A") != nil || none.Recent() != nil || none.Seen() != 0 {
		t.Error("nil tracer must be inert")
	}
	none.SetEnabled(true)
	none.SetSlowThreshold(time.Second)
}

func TestNilTraceMethodsAreNoOps(t *testing.T) {
	var tr *Trace
	tr.Eventf("cache", "miss %s", "a.")
	tr.Push()
	tr.Pop()
	tr.Finish("NOERROR", time.Millisecond, 1, nil)
	if tr.Tree() != "" {
		t.Error("nil trace tree should be empty")
	}
}

func TestTraceLifecycle(t *testing.T) {
	tc := NewTracer(4, 0)
	tc.SetEnabled(true)
	tr := tc.Begin("www.example.com.", "A")
	if tr == nil {
		t.Fatal("enabled tracer returned nil trace")
	}
	tr.Eventf("cache", "miss %s A", "www.example.com.")
	tr.Push()
	tr.Eventf("referral", "zone=com. servers=2")
	tr.Pop()
	tr.Finish("NOERROR", 42*time.Millisecond, 3, nil)

	recent := tc.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring has %d traces", len(recent))
	}
	tree := recent[0].Tree()
	for _, want := range []string{"www.example.com. A", "rcode=NOERROR", "queries=3", "[cache]", "[referral]"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	if tc.Seen() != 1 {
		t.Errorf("seen = %d", tc.Seen())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tc := NewTracer(2, 0)
	tc.SetEnabled(true)
	for i, name := range []string{"a.", "b.", "c."} {
		tr := tc.Begin(name, "A")
		tr.Finish("NOERROR", time.Duration(i)*time.Millisecond, 1, nil)
	}
	recent := tc.Recent()
	if len(recent) != 2 || recent[0].Qname != "b." || recent[1].Qname != "c." {
		t.Errorf("ring = %v", []string{recent[0].Qname, recent[1].Qname})
	}
	if tc.Seen() != 3 {
		t.Errorf("seen = %d", tc.Seen())
	}
}

func TestSlowThresholdFilters(t *testing.T) {
	tc := NewTracer(8, 10*time.Millisecond)
	tc.SetEnabled(true)
	fast := tc.Begin("fast.", "A")
	fast.Finish("NOERROR", 0, 1, nil) // wall ≈ 0 < threshold
	if len(tc.Recent()) != 0 {
		t.Error("fast trace should not be retained")
	}
	slow := tc.Begin("slow.", "A")
	slow.Start = slow.Start.Add(-time.Second) // simulate a 1 s resolution
	slow.Finish("NOERROR", time.Second, 9, nil)
	if len(tc.Recent()) != 1 {
		t.Error("slow trace should be retained")
	}
}

func TestTraceJSONDump(t *testing.T) {
	tc := NewTracer(4, 0)
	tc.SetEnabled(true)
	tr := tc.Begin("x.example.", "AAAA")
	tr.Eventf("send", "to 192.0.2.1 srtt=30ms")
	tr.Finish("SERVFAIL", 5*time.Millisecond, 2, nil)
	var buf bytes.Buffer
	if err := tc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Qname  string `json:"qname"`
		Rcode  string `json:"rcode"`
		Events []struct {
			Kind   string `json:"kind"`
			Detail string `json:"detail"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].Qname != "x.example." || got[0].Rcode != "SERVFAIL" ||
		len(got[0].Events) != 1 || got[0].Events[0].Kind != "send" {
		t.Errorf("decoded = %+v", got)
	}
}

func TestTracerCollect(t *testing.T) {
	tc := NewTracer(4, 0)
	tc.SetEnabled(true)
	tc.Begin("a.", "A").Finish("NOERROR", 0, 1, nil)
	r := NewRegistry()
	r.AddCollector(tc)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rootless_tracer_enabled 1", "rootless_tracer_traces_total 1", "rootless_tracer_ring_occupancy 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}
