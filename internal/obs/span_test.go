package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

func enabledTracer(ring int) *Tracer {
	t := NewTracer(ring, 0)
	t.SetEnabled(true)
	return t
}

// spanFixture builds one deterministic-shape trace: a cache span with a
// nested net attempt (explicitly charged durations), an event, and an
// error outcome — every field of the export schema populated.
func spanFixture(tc *Tracer) *Trace {
	tr := tc.Begin("www.example.com.", "A")
	tr.SetClass("valid") // class is omitempty: set it so the golden pins it
	sp := tr.StartSpan(PhaseCache, "cache-probe")
	sp.SetDetail("probe")
	att := tr.StartSpan(PhaseNet, "attempt")
	att.SetDetail("192.0.2.1 zone com.")
	att.EndWithDuration(10 * time.Millisecond)
	sp.EndWithDuration(15 * time.Millisecond)
	tr.Eventf("send", "www.example.com. A -> 192.0.2.1")
	tr.Finish("SERVFAIL", 25*time.Millisecond, 2, errors.New("boom"))
	return tr
}

func TestSpanAttributionExact(t *testing.T) {
	tc := enabledTracer(4)
	tr := spanFixture(tc)
	// The attempt nests under the cache probe, so the probe's self-time
	// is its charged 15ms minus the child's 10ms.
	if tr.Attr.NetNS != int64(10*time.Millisecond) {
		t.Errorf("net: got %d", tr.Attr.NetNS)
	}
	if tr.Attr.CacheNS != int64(5*time.Millisecond) {
		t.Errorf("cache self-time: got %d, want 5ms", tr.Attr.CacheNS)
	}
	if tr.Attr.BackoffNS != 0 || tr.Attr.OverloadWaitNS != 0 || tr.Attr.AuthNS != 0 {
		t.Errorf("unexpected phases: %+v", tr.Attr)
	}
	// Tracer-level totals saw the same breakdown.
	if got := tc.AttributionTotals(); got.NetNS != tr.Attr.NetNS || got.CacheNS != tr.Attr.CacheNS {
		t.Errorf("tracer totals %+v != trace %+v", got, tr.Attr)
	}
	if tc.AttributedTraces() != 1 {
		t.Errorf("attributed traces: %d", tc.AttributedTraces())
	}
}

func TestSpanPhaseReclassification(t *testing.T) {
	tc := enabledTracer(4)
	tr := tc.Begin("www.example.com.", "A")
	sp := tr.StartSpan(PhaseNet, "attempt")
	sp.SetPhase(PhaseBackoff) // the attempt timed out: its time is waste
	sp.EndWithDuration(3 * time.Second)
	tr.Finish("SERVFAIL", 0, 1, nil)
	if tr.Attr.NetNS != 0 || tr.Attr.BackoffNS != int64(3*time.Second) {
		t.Errorf("reclassified attempt not in backoff: %+v", tr.Attr)
	}
}

func TestSpanOutOfOrderEnd(t *testing.T) {
	tc := enabledTracer(4)
	tr := tc.Begin("www.example.com.", "A")
	parent := tr.StartSpan(PhaseCache, "parent")
	child := tr.StartSpan(PhaseNet, "child")
	parent.EndWithDuration(time.Millisecond) // ends before its child
	child.EndWithDuration(4 * time.Millisecond)
	// The cursor recovered: a new span is top-level-or-parented sanely
	// and the trace still finishes without panicking.
	after := tr.StartSpan(PhaseAuth, "after")
	after.EndWithDuration(2 * time.Millisecond)
	tr.Finish("NOERROR", 0, 0, nil)
	// Parent self-time clamps at zero (child outlived it); nothing negative.
	for _, p := range Phases() {
		if tr.Attr.ByPhase(p) < 0 {
			t.Errorf("negative attribution for %s: %+v", p, tr.Attr)
		}
	}
	if tr.Attr.NetNS != int64(4*time.Millisecond) || tr.Attr.AuthNS != int64(2*time.Millisecond) {
		t.Errorf("attribution: %+v", tr.Attr)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tc := enabledTracer(4)
	tr := tc.Begin("www.example.com.", "A")
	sp := tr.StartSpan(PhaseNet, "attempt")
	sp.EndWithDuration(5 * time.Millisecond)
	sp.EndWithDuration(99 * time.Millisecond) // ignored
	sp.End()                                  // ignored
	tr.Finish("NOERROR", 0, 1, nil)
	if tr.Attr.NetNS != int64(5*time.Millisecond) {
		t.Errorf("second End changed the span: %+v", tr.Attr)
	}
}

func TestUnendedSpansClosedAtFinish(t *testing.T) {
	tc := enabledTracer(4)
	tr := tc.Begin("www.example.com.", "A")
	tr.StartSpan(PhaseCache, "open-parent")
	tr.StartSpan(PhaseNet, "open-child")
	time.Sleep(time.Millisecond)
	tr.Finish("NOERROR", 0, 0, nil)
	var dump strings.Builder
	if err := tc.WriteJSON(&dump); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Spans []SpanJSON `json:"spans"`
	}
	if err := json.Unmarshal([]byte(dump.String()), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Spans) != 1 {
		t.Fatalf("trace dump: %s", dump.String())
	}
	root := got[0].Spans[0]
	if root.DurNS <= 0 || len(root.Children) != 1 || root.Children[0].DurNS <= 0 {
		t.Errorf("open spans not closed with wall time: %+v", root)
	}
	// Everything was open, so all attributed time is wall time and the
	// total can't exceed it.
	if tr.Attr.Total() > int64(tr.Wall) {
		t.Errorf("attribution %d exceeds wall %d with no charged spans", tr.Attr.Total(), tr.Wall)
	}
}

// TestDisabledTracerSpansAllocateNothing pins the acceptance bar for the
// always-on path: with tracing disabled the whole Begin/span/Finish
// sequence performs zero allocations.
func TestDisabledTracerSpansAllocateNothing(t *testing.T) {
	tc := NewTracer(4, 0) // disabled
	allocs := testing.AllocsPerRun(1000, func() {
		tr := tc.Begin("www.example.com.", "A")
		sp := tr.StartSpan(PhaseCache, "cache-probe")
		sp.End()
		att := tr.StartSpan(PhaseNet, "attempt")
		att.SetPhase(PhaseBackoff)
		att.EndWithDuration(time.Millisecond)
		tr.Finish("NOERROR", 0, 1, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per resolution, want 0", allocs)
	}
}

func TestTraceTreeShowsSpansAndAttribution(t *testing.T) {
	tc := enabledTracer(4)
	tr := spanFixture(tc)
	tree := tr.Tree()
	for _, want := range []string{
		"• cache-probe [cache]",
		"• attempt [net] 10ms (192.0.2.1 zone com.)",
		"attribution: cache=5ms net=10ms",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// Child spans indent one level deeper than their parents.
	probe := strings.Index(tree, "• cache-probe")
	attempt := strings.Index(tree, "• attempt")
	if probe < 0 || attempt < 0 ||
		probe-strings.LastIndex(tree[:probe], "\n") >= attempt-strings.LastIndex(tree[:attempt], "\n") {
		t.Errorf("attempt not nested under cache-probe:\n%s", tree)
	}
}

// keyPaths flattens a decoded JSON value into its set of key paths
// (arrays become "[]"), the shape-without-values of an export schema.
func keyPaths(v any, prefix string, into map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := prefix + "." + k
			into[p] = true
			keyPaths(child, p, into)
		}
	case []any:
		for _, child := range x {
			keyPaths(child, prefix+"[]", into)
		}
	}
}

// TestTracezJSONSchemaGolden pins the /tracez?format=json schema: the
// sorted set of key paths served for a fully-populated trace must match
// the committed golden file. Run with -update-golden after a deliberate
// schema change.
func TestTracezJSONSchemaGolden(t *testing.T) {
	tc := enabledTracer(4)
	spanFixture(tc)
	a := &Admin{Tracer: tc, Registry: NewRegistry()}
	code, body := get(t, a.Handler(), "/tracez?format=json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var decoded any
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatal(err)
	}
	paths := make(map[string]bool)
	keyPaths(decoded, "$", paths)
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"

	golden := filepath.Join("testdata", "tracez_schema.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("/tracez JSON schema drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSpanJSONRoundTrip checks the span export itself: names, phases,
// nesting, and charged durations survive into the JSON document.
func TestSpanJSONRoundTrip(t *testing.T) {
	tc := enabledTracer(4)
	spanFixture(tc)
	var buf strings.Builder
	if err := tc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Attr  Attribution `json:"attribution"`
		Spans []SpanJSON  `json:"spans"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("traces: %d", len(got))
	}
	root := got[0].Spans[0]
	if root.Name != "cache-probe" || root.Phase != "cache" || root.DurNS != int64(15*time.Millisecond) {
		t.Errorf("root span: %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "attempt" ||
		root.Children[0].Phase != "net" || root.Children[0].Detail != "192.0.2.1 zone com." {
		t.Errorf("child span: %+v", root.Children)
	}
	if got[0].Attr.NetNS != int64(10*time.Millisecond) {
		t.Errorf("attribution in JSON: %+v", got[0].Attr)
	}
}

// TestAttributionHistograms checks InstrumentAttribution: finished
// traces surface as rootless_trace_phase_seconds histograms, one per
// phase, and every phase series stays bucket-consistent.
func TestAttributionHistograms(t *testing.T) {
	tc := enabledTracer(4)
	reg := NewRegistry()
	tc.InstrumentAttribution(reg)
	spanFixture(tc)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, p := range Phases() {
		want := fmt.Sprintf(`rootless_trace_phase_seconds_count{phase=%q} 1`, p.String())
		if !strings.Contains(body, want) {
			t.Errorf("missing %s\n%s", want, body)
		}
	}
	if !strings.Contains(body, `rootless_trace_phase_seconds_bucket{phase="net",le="+Inf"} 1`) {
		t.Errorf("net histogram lacks +Inf bucket:\n%s", body)
	}
}
