package obs

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseHistogramSeries pulls one histogram's cumulative +Inf bucket and
// _count out of a Prometheus exposition.
func parseHistogramSeries(t *testing.T, body, name string) (inf, count int64) {
	t.Helper()
	inf, count = -1, -1
	for _, line := range strings.Split(body, "\n") {
		var target *int64
		switch {
		case strings.HasPrefix(line, name+`_bucket{le="+Inf"}`):
			target = &inf
		case strings.HasPrefix(line, name+"_count "):
			target = &count
		default:
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad exposition line %q: %v", line, err)
		}
		*target = v
	}
	if inf < 0 || count < 0 {
		t.Fatalf("histogram %s not found in exposition:\n%s", name, body)
	}
	return inf, count
}

// TestHistogramExpositionTornState is the regression test for the
// exposition self-check: Observe bumps a bucket before the count, so a
// scrape can land between the two writes. The writer must derive _count
// from the bucket sums; emitting the raw count would produce +Inf <
// _count, which Prometheus rejects as an invalid histogram.
func TestHistogramExpositionTornState(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rootless_torn_seconds", "torn", nil, []float64{0.1})
	h.Observe(0.05)
	// Simulate the torn state directly: a bucket increment whose count
	// increment has not landed yet.
	h.counts[0].Add(1)
	if h.Count() != 1 {
		t.Fatalf("setup: raw count %d, want the stale 1", h.Count())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	inf, count := parseHistogramSeries(t, buf.String(), "rootless_torn_seconds")
	if inf != count {
		t.Errorf("+Inf bucket %d != _count %d (writer must derive count from buckets)", inf, count)
	}
	if inf != 2 {
		t.Errorf("+Inf bucket %d, want 2 (both bucket increments)", inf)
	}
}

// TestHistogramScrapeWhileObserving hammers the same invariant under
// real concurrency: every scrape taken mid-flight must be internally
// consistent, +Inf == _count, whatever the writers are doing.
func TestHistogramScrapeWhileObserving(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rootless_live_seconds", "live", nil, []float64{0.001, 0.1, 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(i%200) / 100)
				}
			}
		}(g)
	}
	for i := 0; i < 300; i++ {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		inf, count := parseHistogramSeries(t, buf.String(), "rootless_live_seconds")
		if inf != count {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d inconsistent: +Inf %d != _count %d", i, inf, count)
		}
	}
	close(stop)
	wg.Wait()
	// Settled state agrees with the raw counter again.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	inf, count := parseHistogramSeries(t, buf.String(), "rootless_live_seconds")
	if inf != count || count != h.Count() {
		t.Errorf("settled: +Inf %d, _count %d, raw %d", inf, count, h.Count())
	}
}

// TestHistogramBucketsAreCumulative guards the other half of Prometheus
// validity: bucket values must be non-decreasing in le order.
func TestHistogramBucketsAreCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rootless_cum_seconds", "cum", nil, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	seen := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "rootless_cum_seconds_bucket") {
			continue
		}
		seen++
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket regressed: %q after %d", line, prev)
		}
		prev = v
	}
	if seen != 4 {
		t.Errorf("saw %d bucket lines, want 4", seen)
	}
	if prev != 5 {
		t.Errorf("+Inf cumulative %d, want 5", prev)
	}
}
