package obs

import (
	"strings"
	"testing"
	"time"
)

// virtualClock is a hand-advanced time source for SLO tests.
type virtualClock struct{ now time.Time }

func (c *virtualClock) Now() time.Time          { return c.now }
func (c *virtualClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestSLOBurnRateAndAlert(t *testing.T) {
	clk := &virtualClock{now: time.Unix(1700000000, 0)}
	w := NewWatchdog(clk.Now)
	var alerts []string
	w.OnAlert(func(name string, fast, slow float64) {
		alerts = append(alerts, name)
		if fast < 10 || slow < 10 {
			t.Errorf("alert with burn %v/%v below threshold", fast, slow)
		}
	})
	tr := w.Add(SLOConfig{Name: "errors", Budget: 0.01,
		FastWindow: 5 * time.Second, SlowWindow: 20 * time.Second, BurnThreshold: 10})

	// Healthy traffic: 1% bad is exactly budget (burn 1), far from 10.
	for i := 0; i < 20; i++ {
		for j := 0; j < 100; j++ {
			tr.Observe(j != 0)
		}
		clk.Advance(time.Second)
	}
	if fast, slow := tr.BurnRates(); fast > 1.5 || slow > 1.5 {
		t.Fatalf("healthy burn rates %v/%v", fast, slow)
	}
	if tr.Alerting() || len(alerts) != 0 {
		t.Fatal("alert fired on healthy traffic")
	}

	// Incident: 50% bad (burn 50). The slow window needs enough bad
	// seconds before both windows cross the threshold.
	for i := 0; i < 20; i++ {
		for j := 0; j < 100; j++ {
			tr.Observe(j%2 == 0)
		}
		clk.Advance(time.Second)
	}
	if !tr.Alerting() {
		fast, slow := tr.BurnRates()
		t.Fatalf("no alert during incident (burn %v/%v)", fast, slow)
	}
	if len(alerts) != 1 || alerts[0] != "errors" {
		t.Fatalf("alert callbacks: %v (want exactly one rising edge)", alerts)
	}

	// Recovery: good traffic ages the bad seconds out of both windows.
	for i := 0; i < 30; i++ {
		for j := 0; j < 100; j++ {
			tr.Observe(true)
		}
		clk.Advance(time.Second)
	}
	if tr.Alerting() {
		t.Fatal("alert still firing after recovery")
	}
	// A second incident is a fresh rising edge.
	for i := 0; i < 25; i++ {
		for j := 0; j < 100; j++ {
			tr.Observe(false)
		}
		clk.Advance(time.Second)
	}
	if len(alerts) != 2 {
		t.Fatalf("alert callbacks after second incident: %v", alerts)
	}
}

func TestSLOIdleAndNil(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(true) // nil-safe
	if f, s := tr.BurnRates(); f != 0 || s != 0 || tr.Alerting() {
		t.Error("nil tracker must read as zero")
	}
	clk := &virtualClock{now: time.Unix(1700000000, 0)}
	w := NewWatchdog(clk.Now)
	live := w.Add(SLOConfig{Name: "idle"})
	if f, s := live.BurnRates(); f != 0 || s != 0 {
		t.Error("idle tracker must read 0 burn")
	}
	// A long idle gap ages everything out rather than leaking a ring lap.
	live.Observe(false)
	clk.Advance(2 * sloRingSeconds * time.Second)
	if f, s := live.BurnRates(); f != 0 || s != 0 {
		t.Errorf("burn after ring-lap gap: %v/%v", f, s)
	}
}

func TestWatchdogExposition(t *testing.T) {
	clk := &virtualClock{now: time.Unix(1700000000, 0)}
	w := NewWatchdog(clk.Now)
	tr := w.Add(SLOConfig{Name: "latency_p99", Budget: 0.05,
		FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second, BurnThreshold: 5,
		MinEvents: 1})
	for i := 0; i < 4; i++ {
		tr.Observe(false) // 100% bad: burn = 1/0.05 = 20
		clk.Advance(time.Second)
	}

	reg := NewRegistry()
	w.Collect(reg)
	var burnFast, alert, budget float64
	for _, s := range reg.Snapshot() {
		switch {
		case s.Name == "rootless_slo_burn_rate" && s.Labels["window"] == "fast" && s.Labels["slo"] == "latency_p99":
			burnFast = s.Value
		case s.Name == "rootless_slo_alert" && s.Labels["slo"] == "latency_p99":
			alert = s.Value
		case s.Name == "rootless_slo_budget" && s.Labels["slo"] == "latency_p99":
			budget = s.Value
		}
	}
	if burnFast < 19 || burnFast > 21 {
		t.Errorf("burn_rate{fast} = %v, want ~20", burnFast)
	}
	if alert != 1 {
		t.Errorf("alert gauge = %v, want 1", alert)
	}
	if budget != 0.05 {
		t.Errorf("budget gauge = %v", budget)
	}

	st := w.Status()
	doc, ok := st["latency_p99"].(map[string]any)
	if !ok {
		t.Fatalf("status: %v", st)
	}
	if doc["alerting"] != true {
		t.Errorf("status alerting = %v", doc["alerting"])
	}
	if !strings.Contains(w.String(), "1 slos") {
		t.Errorf("String() = %q", w.String())
	}
}
