package obs

import (
	"io"
	"log/slog"
	"os"
	"strings"
)

// NewLogger builds the structured logger the daemons share: text handler,
// component attribute, level parsed from a -log-level style string
// (debug, info, warn, error; unknown strings mean info).
func NewLogger(w io.Writer, component, level string) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: ParseLevel(level)})
	return slog.New(h).With("component", component)
}

// ParseLevel maps a string to a slog level, defaulting to info.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
