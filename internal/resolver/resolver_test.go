package resolver

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"rootless/internal/anycast"
	"rootless/internal/authserver"
	"rootless/internal/dnswire"
	"rootless/internal/netsim"
	"rootless/internal/zone"
)

var (
	rootV4    = netip.MustParseAddr("198.41.0.4")
	root2V4   = netip.MustParseAddr("199.9.14.201")
	comV4     = netip.MustParseAddr("192.5.6.30")
	exampleV4 = netip.MustParseAddr("192.0.2.53")
	localV4   = netip.MustParseAddr("127.8.8.8")

	locClient = anycast.GeoPoint{Lat: 51.5, Lon: -0.1}  // London
	locRoot   = anycast.GeoPoint{Lat: 40.7, Lon: -74.0} // NYC
	locCom    = anycast.GeoPoint{Lat: 39.0, Lon: -77.5} // Ashburn
	locAuth   = anycast.GeoPoint{Lat: 50.1, Lon: 8.7}   // Frankfurt
)

const rootZoneSrc = `
. 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. 2019041100 1800 900 604800 3600
. 518400 IN NS a.root-servers.net.
. 518400 IN NS b.root-servers.net.
a.root-servers.net. 518400 IN A 198.41.0.4
b.root-servers.net. 518400 IN A 199.9.14.201
com. 172800 IN NS a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
org. 172800 IN NS a.gtld-servers.net.
`

const comZoneSrc = `
$ORIGIN com.
com. 86400 IN SOA a.gtld-servers.net. nstld.verisign-grs.com. 7 1800 900 604800 900
com. 86400 IN NS a.gtld-servers.net.
example.com. 172800 IN NS ns1.example.com.
ns1.example.com. 172800 IN A 192.0.2.53
`

const exampleZoneSrc = `
$ORIGIN example.com.
example.com. 86400 IN SOA ns1.example.com. admin.example.com. 3 1800 900 604800 300
example.com. 86400 IN NS ns1.example.com.
ns1.example.com. 86400 IN A 192.0.2.53
www.example.com. 3600 IN A 192.0.2.80
alias.example.com. 3600 IN CNAME www.example.com.
text.example.com. 3600 IN TXT "hello"
deep.sub.example.com. 3600 IN A 192.0.2.81
`

// topo is the simulated internet every resolver test runs on.
type topo struct {
	net      *netsim.Network
	rootZone *zone.Zone
	rootSrv  *authserver.Server
	comSrv   *authserver.Server
	exSrv    *authserver.Server
	start    time.Time
}

func mustZone(t testing.TB, src string, origin dnswire.Name) *zone.Zone {
	t.Helper()
	z, err := zone.Parse(strings.NewReader(src), origin)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func newTopo(t testing.TB) *topo {
	t.Helper()
	start := time.Unix(1555000000, 0)
	n := netsim.New(1, start)
	tp := &topo{
		net:      n,
		rootZone: mustZone(t, rootZoneSrc, dnswire.Root),
		start:    start,
	}
	tp.rootSrv = authserver.New(tp.rootZone)
	tp.comSrv = authserver.New(mustZone(t, comZoneSrc, "com."))
	tp.exSrv = authserver.New(mustZone(t, exampleZoneSrc, "example.com."))
	n.AddHost("a-root", rootV4, locRoot, tp.rootSrv)
	n.AddHost("b-root", root2V4, locRoot, tp.rootSrv)
	n.AddHost("gtld", comV4, locCom, tp.comSrv)
	n.AddHost("ns1.example", exampleV4, locAuth, tp.exSrv)
	return tp
}

// hints returns a two-letter hints set matching the topology.
func testHints() []dnswire.RR {
	return []dnswire.RR{
		dnswire.NewRR(dnswire.Root, 3600000, dnswire.NS{Host: "a.root-servers.net."}),
		dnswire.NewRR(dnswire.Root, 3600000, dnswire.NS{Host: "b.root-servers.net."}),
		dnswire.NewRR("a.root-servers.net.", 3600000, dnswire.A{Addr: rootV4}),
		dnswire.NewRR("b.root-servers.net.", 3600000, dnswire.A{Addr: root2V4}),
	}
}

func (tp *topo) resolver(t testing.TB, mode RootMode, opts ...func(*Config)) *Resolver {
	t.Helper()
	cfg := Config{
		Mode:      mode,
		Hints:     testHints(),
		Transport: tp.net.Client(locClient),
		Clock:     tp.net.Now,
		Seed:      7,
	}
	switch mode {
	case RootModePreload, RootModeLookaside:
		cfg.LocalZone = tp.rootZone.Clone()
	case RootModeLocalAuth:
		cfg.LocalAuthAddr = localV4
		// Loopback root server: same zone, colocated with the client.
		tp.net.AddHost("localroot", localV4, locClient, authserver.New(tp.rootZone.Clone()))
	}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func allModes() []RootMode {
	return []RootMode{RootModeHints, RootModePreload, RootModeLookaside, RootModeLocalAuth}
}

func TestResolveAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			tp := newTopo(t)
			r := tp.resolver(t, mode)
			res, err := r.Resolve("www.example.com.", dnswire.TypeA)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rcode != dnswire.RcodeSuccess {
				t.Fatalf("rcode = %v", res.Rcode)
			}
			if len(res.Answers) != 1 || res.Answers[0].Data.(dnswire.A).Addr.String() != "192.0.2.80" {
				t.Fatalf("answers = %+v", res.Answers)
			}
			if res.Latency <= 0 || res.Queries == 0 {
				t.Errorf("latency=%v queries=%d", res.Latency, res.Queries)
			}
			st := r.Stats()
			switch mode {
			case RootModeHints:
				if st.RootQueries == 0 {
					t.Error("hints mode did not query the root")
				}
			default:
				if st.RootQueries != 0 {
					t.Errorf("%s mode sent %d root queries", mode, st.RootQueries)
				}
			}
		})
	}
}

func TestCachingEliminatesRepeatTraffic(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	res1, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Queries != 0 || !res2.FromCache {
		t.Errorf("second resolution used %d queries", res2.Queries)
	}
	if res2.Latency != 0 {
		t.Errorf("cache hit cost %v", res2.Latency)
	}
	if res1.Queries == 0 {
		t.Error("first resolution should use the network")
	}
	// A sibling name skips root and com (delegations cached).
	before := r.Stats()
	if _, err := r.Resolve("text.example.com.", dnswire.TypeTXT); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.RootQueries != before.RootQueries {
		t.Error("sibling lookup re-queried the root")
	}
	if after.TotalQueries-before.TotalQueries != 1 {
		t.Errorf("sibling lookup used %d queries, want 1", after.TotalQueries-before.TotalQueries)
	}
}

func TestNXDomainAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			tp := newTopo(t)
			r := tp.resolver(t, mode)
			res, err := r.Resolve("anything.bogustld12345.", dnswire.TypeA)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rcode != dnswire.RcodeNXDomain {
				t.Fatalf("rcode = %v", res.Rcode)
			}
			// In the local modes a bogus TLD must cost zero network queries
			// — the heart of the paper's junk-traffic argument.
			if mode != RootModeHints && mode != RootModeLocalAuth && res.Queries != 0 {
				t.Errorf("bogus TLD cost %d network queries in %s mode", res.Queries, mode)
			}
			// Negative caching: the repeat is free in every mode.
			res2, err := r.Resolve("anything.bogustld12345.", dnswire.TypeA)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Queries != 0 {
				t.Errorf("negative answer not cached: %d queries", res2.Queries)
			}
		})
	}
}

func TestCNAMEChase(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	res, err := r.Resolve("alias.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	var sawCNAME, sawA bool
	for _, rr := range res.Answers {
		if rr.Type == dnswire.TypeCNAME {
			sawCNAME = true
		}
		if rr.Type == dnswire.TypeA && rr.Name == "www.example.com." {
			sawA = true
		}
	}
	if !sawCNAME || !sawA {
		t.Fatalf("CNAME chain incomplete: %+v", res.Answers)
	}
	if r.Stats().CNAMEChases == 0 {
		t.Error("CNAME chase not counted")
	}
}

func TestNodata(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	res, err := r.Resolve("www.example.com.", dnswire.TypeAAAA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeSuccess || len(res.Answers) != 0 {
		t.Fatalf("NODATA: rcode=%v answers=%d", res.Rcode, len(res.Answers))
	}
}

func TestRootOutageFailover(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	// Kill a-root; b-root still answers (the robustness §4 describes).
	tp.net.SetAddrDown(rootV4, true)
	res, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("rcode = %v", res.Rcode)
	}
	if r.Stats().Timeouts == 0 {
		t.Error("expected at least one timeout against the dead root")
	}
}

func TestTotalRootOutage(t *testing.T) {
	// With every root letter dead, classic resolution of an uncached TLD
	// fails, while lookaside keeps working — §4 Robustness.
	tp := newTopo(t)
	classic := tp.resolver(t, RootModeHints)
	local := tp.resolver(t, RootModeLookaside)
	tp.net.SetAddrDown(rootV4, true)
	tp.net.SetAddrDown(root2V4, true)

	if _, err := classic.Resolve("www.example.com.", dnswire.TypeA); err == nil {
		t.Error("classic resolution should fail with all roots down")
	}
	res, err := local.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Errorf("lookaside resolution failed during root outage: %v %v", res, err)
	}
}

func TestLocalModesSendNoRootQueries(t *testing.T) {
	// Drive many distinct TLD lookups; local modes must never touch a
	// root address.
	tp := newTopo(t)
	for _, mode := range []RootMode{RootModePreload, RootModeLookaside} {
		r := tp.resolver(t, mode)
		names := []dnswire.Name{
			"www.example.com.", "x.example.org.", "nothere.zz-bogus.", "text.example.com.",
		}
		for _, n := range names {
			_, _ = r.Resolve(n, dnswire.TypeA)
		}
		if st := r.Stats(); st.RootQueries != 0 {
			t.Errorf("%s: %d root queries", mode, st.RootQueries)
		}
	}
}

func TestLookasideCountsConsults(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeLookaside)
	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if r.Stats().LocalRootConsults == 0 {
		t.Error("lookaside consult not counted")
	}
	// Second, different .com name: delegation is cached, so no new consult.
	before := r.Stats().LocalRootConsults
	if _, err := r.Resolve("text.example.com.", dnswire.TypeTXT); err != nil {
		t.Fatal(err)
	}
	if r.Stats().LocalRootConsults != before {
		t.Error("cached delegation still consulted local root")
	}
}

func TestQNameMinimisation(t *testing.T) {
	tp := newTopo(t)
	// Observe what the root sees with and without QMIN.
	var rootSees []dnswire.Name
	tp.net.AddObserver(func(_ anycast.GeoPoint, dst netip.Addr, q *dnswire.Message) {
		if dst == rootV4 || dst == root2V4 {
			rootSees = append(rootSees, q.Questions[0].Name)
		}
	})

	r := tp.resolver(t, RootModeHints, func(c *Config) { c.QNameMinimisation = true })
	res, err := r.Resolve("deep.sub.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeSuccess || len(res.Answers) == 0 {
		t.Fatalf("qmin resolution failed: %+v", res)
	}
	for _, n := range rootSees {
		if n != "com." {
			t.Errorf("root saw %q with QMIN on, want only com.", n)
		}
	}
	if len(rootSees) == 0 {
		t.Error("root saw nothing; expected the minimised com. query")
	}

	// Without QMIN the root sees the full name.
	rootSees = nil
	tp2 := newTopo(t)
	var rootSees2 []dnswire.Name
	tp2.net.AddObserver(func(_ anycast.GeoPoint, dst netip.Addr, q *dnswire.Message) {
		if dst == rootV4 || dst == root2V4 {
			rootSees2 = append(rootSees2, q.Questions[0].Name)
		}
	})
	r2 := tp2.resolver(t, RootModeHints)
	if _, err := r2.Resolve("deep.sub.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	full := false
	for _, n := range rootSees2 {
		if n == "deep.sub.example.com." {
			full = true
		}
	}
	if !full {
		t.Errorf("root did not see the full qname without QMIN: %v", rootSees2)
	}
}

func TestSRTTPrefersFasterRoot(t *testing.T) {
	// Client in London; add a root instance in London for b-root only.
	// After a few resolutions the resolver should prefer b-root.
	tp := newTopo(t)
	tp.net.AddHost("b-root-lon", root2V4, locClient, tp.rootSrv)
	r := tp.resolver(t, RootModeHints)
	// Force repeated root queries by resolving distinct bogus TLDs
	// (NXDOMAIN is cached per-name, so each costs a root query).
	for i := 0; i < 12; i++ {
		name := dnswire.Name(strings.Repeat(string(rune('a'+i)), 3) + "-bogus.")
		_, _ = r.Resolve(name, dnswire.TypeA)
	}
	if r.SRTTStateSize() < 2 {
		t.Fatalf("srtt state = %d entries", r.SRTTStateSize())
	}
	st := r.Stats()
	if st.ServerSelections == 0 || st.SRTTUpdates == 0 {
		t.Errorf("selection machinery idle: %+v", st)
	}
	// The last root queries should mostly hit the fast (London) instance:
	// measure by one more resolution's latency being small.
	res, err := r.Resolve("final-bogus-check.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %v", res.Rcode)
	}
	if res.Latency > 50*time.Millisecond {
		t.Errorf("after SRTT warmup, root query took %v (not using London instance?)", res.Latency)
	}
}

func TestLocalAuthUsesLoopback(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeLocalAuth)
	res, err := r.Resolve("nothere.bogus-xyz.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %v", res.Rcode)
	}
	st := r.Stats()
	if st.RootQueries != 0 {
		t.Errorf("localauth sent %d root queries", st.RootQueries)
	}
	if st.LocalRootConsults == 0 {
		t.Error("localauth consult not counted")
	}
	// Loopback query should be fast (colocated).
	if res.Latency > 20*time.Millisecond {
		t.Errorf("loopback root query took %v", res.Latency)
	}
}

func TestQueryBudget(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetLossRate(1.0) // nothing ever answers
	r := tp.resolver(t, RootModeHints, func(c *Config) { c.MaxQueries = 5 })
	_, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err == nil {
		t.Fatal("expected failure with full loss")
	}
	if r.Stats().TotalQueries > 5 {
		t.Errorf("budget exceeded: %d queries", r.Stats().TotalQueries)
	}
}

func TestSetLocalZoneRefresh(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeLookaside)
	// Replace the local zone with one lacking com.: resolution must now
	// see NXDOMAIN for com names (stale/err zone swapped in).
	empty := zone.New(dnswire.Root)
	_ = empty.Add(dnswire.NewRR(dnswire.Root, 86400, dnswire.SOA{
		MName: "m.", RName: "r.", Serial: 2, Minimum: 300}))
	r.SetLocalZone(empty)
	res, err := r.Resolve("brandnew.example2.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("rcode = %v after zone swap", res.Rcode)
	}
}

func TestMinimiseHelper(t *testing.T) {
	cases := []struct {
		zone, qname dnswire.Name
		wantName    dnswire.Name
		wantType    dnswire.Type
	}{
		{dnswire.Root, "www.example.com.", "com.", dnswire.TypeNS},
		{"com.", "www.example.com.", "example.com.", dnswire.TypeNS},
		{"example.com.", "www.example.com.", "www.example.com.", dnswire.TypeA},
		{dnswire.Root, "com.", "com.", dnswire.TypeA},
	}
	for _, c := range cases {
		name, typ := minimise(c.zone, c.qname, dnswire.TypeA)
		if name != c.wantName || typ != c.wantType {
			t.Errorf("minimise(%q, %q) = %q/%v, want %q/%v",
				c.zone, c.qname, name, typ, c.wantName, c.wantType)
		}
	}
}

func TestPreloadPinsCache(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModePreload)
	if r.Cache().PinnedLen() == 0 {
		t.Fatal("preload mode cached nothing")
	}
	// The com. delegation must be answerable without any network query.
	res, err := r.Resolve("com.", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 0 {
		t.Errorf("com. NS needed %d queries in preload mode", res.Queries)
	}
}

func TestServeStaleRobustness(t *testing.T) {
	// RFC 8767 serve-stale: with every nameserver unreachable, a warmed
	// resolver keeps answering previously-seen names from expired cache —
	// but unlike a local root zone, it cannot answer anything new.
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.ServeStale = true
		c.StaleLimit = 24 * time.Hour
	})
	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}

	// Expire everything (www TTL 3600) and kill the whole infrastructure.
	tp.net.Advance(2 * time.Hour)
	tp.net.SetAddrDown(rootV4, true)
	tp.net.SetAddrDown(root2V4, true)
	tp.net.SetAddrDown(comV4, true)
	tp.net.SetAddrDown(exampleV4, true)

	res, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("serve-stale failed: %v", err)
	}
	if res.Rcode != dnswire.RcodeSuccess || len(res.Answers) == 0 {
		t.Fatalf("stale answer: %+v", res)
	}
	if res.Answers[0].TTL != 30 {
		t.Errorf("stale TTL = %d, want 30", res.Answers[0].TTL)
	}
	if r.Stats().StaleAnswers == 0 {
		t.Error("stale answer not counted")
	}

	// A name never seen before still fails — the limit of serve-stale.
	if _, err := r.Resolve("fresh.example.com.", dnswire.TypeA); err == nil {
		t.Error("unseen name should fail with everything down")
	}

	// StaleLimit is honored: once the entry has been expired for longer
	// than the limit, serve-stale refuses it and the resolution fails.
	staleBefore := r.Stats().StaleAnswers
	tp.net.Advance(25 * time.Hour)
	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err == nil {
		t.Error("expected failure once the entry outlived StaleLimit")
	}
	if r.Stats().StaleAnswers != staleBefore {
		t.Error("stale answer served beyond StaleLimit")
	}

	// Without ServeStale the same situation fails outright.
	tp2 := newTopo(t)
	r2 := tp2.resolver(t, RootModeHints)
	if _, err := r2.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	tp2.net.Advance(2 * time.Hour)
	tp2.net.SetAddrDown(rootV4, true)
	tp2.net.SetAddrDown(root2V4, true)
	tp2.net.SetAddrDown(comV4, true)
	tp2.net.SetAddrDown(exampleV4, true)
	if _, err := r2.Resolve("www.example.com.", dnswire.TypeA); err == nil {
		t.Error("expected failure without serve-stale")
	}
}
