// Package resolver implements an iterative recursive DNS resolver — the
// component the paper proposes to change. It supports four root modes:
//
//   - RootModeHints: the classic arrangement; bootstrap from the root
//     hints file and query root nameservers, with the SRTT-based root
//     server selection machinery real resolvers carry (§4 "Complexity").
//   - RootModePreload: read the whole local root zone into the cache as
//     pinned entries (§3, first implementation option).
//   - RootModeLookaside: consult the local root zone each time a root
//     nameserver would have been queried (§3, second option).
//   - RootModeLocalAuth: send root queries to a loopback authoritative
//     server carrying the root zone (§3, third option; RFC 7706).
//
// The resolver runs over an abstract Transport, so the same code drives
// the netsim simulated internet and real UDP sockets.
package resolver

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"rootless/internal/cache"
	"rootless/internal/dist"
	"rootless/internal/dnssec"
	"rootless/internal/dnssec/validator"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
	"rootless/internal/overload"
	"rootless/internal/zone"
)

// RootMode selects how the resolver learns about the root of the namespace.
type RootMode int

// Root modes.
const (
	RootModeHints RootMode = iota
	RootModePreload
	RootModeLookaside
	RootModeLocalAuth
)

// String names the mode.
func (m RootMode) String() string {
	switch m {
	case RootModeHints:
		return "hints"
	case RootModePreload:
		return "preload"
	case RootModeLookaside:
		return "lookaside"
	case RootModeLocalAuth:
		return "localauth"
	}
	return fmt.Sprintf("mode%d", int(m))
}

// Transport sends one DNS query and returns the reply and round-trip cost.
type Transport interface {
	Exchange(dst netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error)
}

// TracedTransport is optionally implemented by transports that can carry
// a trace to the far side (netsim does), so authoritative-side spans —
// transit, auth handling, gate/RRL decisions — nest inside the
// resolver's attempt span. Wrapping transports should forward it.
type TracedTransport interface {
	ExchangeTraced(tr *obs.Trace, dst netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error)
}

// Config configures a Resolver.
type Config struct {
	Mode RootMode
	// Hints is the root hints RRset (required for RootModeHints; used as
	// a last-resort fallback by other modes if no local zone is set).
	Hints []dnswire.RR
	// LocalZone is the local root zone copy (RootModePreload and
	// RootModeLookaside).
	LocalZone *zone.Zone
	// LocalAuthAddr is the loopback root server (RootModeLocalAuth).
	LocalAuthAddr netip.Addr
	// Transport carries queries; required.
	Transport Transport
	// Clock supplies time for cache TTLs; nil means time.Now.
	Clock func() time.Time
	// CacheCapacity bounds the cache in RRsets; 0 = unlimited.
	CacheCapacity int
	// QNameMinimisation sends only the germane name labels to each zone's
	// servers (RFC 7816), the §4 privacy mitigation we compare against.
	QNameMinimisation bool
	// MaxQueries bounds network queries per resolution (default 64).
	MaxQueries int
	// ServeStale answers from expired cache entries when every upstream
	// server fails (RFC 8767) — the incumbent robustness mechanism the
	// paper's local-root approach is compared against. StaleLimit bounds
	// how old a stale answer may be (default 24 h).
	ServeStale bool
	StaleLimit time.Duration
	// RetryBudget bounds failed attempts (timeouts and lame responses)
	// per resolution, independently of MaxQueries: a resolution may be
	// allowed 64 queries yet should not burn them all waiting out dead
	// servers. 0 = default 16; negative disables the budget.
	RetryBudget int
	// HoldDownAfter is how many consecutive failures trip a server's
	// hold-down circuit breaker (0 = default 3; negative disables all
	// per-server health tracking). HoldDown is the initial hold period
	// (default 30 s), doubling on each failed re-admission probe.
	HoldDownAfter int
	HoldDown      time.Duration
	// BackoffBase and BackoffCap bound the per-server decorrelated-jitter
	// backoff applied after each failure (defaults 500 ms / 30 s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Coalesce merges concurrent identical (qname, qtype) resolutions:
	// one leader does the upstream work, everyone else shares its result
	// — the singleflight defence against thundering herds of cache
	// misses.
	Coalesce bool
	// MaxInflight bounds concurrently admitted upstream resolutions
	// (0 = unlimited). Cache hits, negative answers, and local root zone
	// consults are never gated: under a junk flood the resolver keeps
	// answering what it already knows and sheds only new upstream work.
	MaxInflight int
	// QueueDeadline is how long an over-capacity resolution may wait for
	// an admission slot before being shed (0 = shed immediately). Shed
	// resolutions still fall back to serve-stale when enabled.
	QueueDeadline time.Duration
	// NXDomainCut enables RFC 8020 aggressive negative caching: an
	// authoritative NXDOMAIN from the root zone proves the whole TLD
	// undelegated, so every later query under it is answered NXDOMAIN
	// from cache — the paper's 61 %-bogus workload mostly dies here.
	NXDomainCut bool
	// CacheShards sets the cache's lock-shard count (rounded down to a
	// power of two; 0 = cache.DefaultShards). One shard restores strict
	// global LRU order at the cost of reader contention.
	CacheShards int
	// Validate selects the DNSSEC validation policy: PolicyStrict turns
	// bogus answers into SERVFAIL-class errors and keeps them out of the
	// cache, PolicyPermissive counts them but serves them (without AD),
	// PolicyOff (the default) skips validation entirely.
	Validate validator.Policy
	// TrustAnchor is the DS-form trust anchor for the root zone, required
	// whenever Validate is not PolicyOff.
	TrustAnchor dnswire.DS
	// DNSSECSkew widens every RRSIG validity window on both ends to
	// tolerate bounded clock skew (0 = exact windows).
	DNSSECSkew time.Duration
	// NSECAggressive enables RFC 8198 aggressive use of validated NSEC
	// ranges: any qname falling in a proven denial range is answered
	// NXDOMAIN/NODATA from the cache with zero upstream queries. Requires
	// Validate (only validated NSECs are trusted); strictly subsumes the
	// observational NXDomainCut mechanism.
	NSECAggressive bool
	// ZoneExpiry enables staged staleness degradation for the local root
	// zone copy: its age is placed on the distribution freshness state
	// machine (fresh → aging → stale-serve → expired). While stale-serve,
	// local consults still answer but with TTLs capped at ZoneStaleTTLCap;
	// once expired, consults fail closed (SERVFAIL) — an expired copy must
	// not steer resolution. Zero (the default) disables staging and the
	// copy never expires, the pre-refresher behavior.
	ZoneExpiry time.Duration
	// ZoneRefresh is the fresh→aging boundary (default 7/8 of ZoneExpiry,
	// the paper's 42 h within the 48 h window).
	ZoneRefresh time.Duration
	// ZoneStaleFor is the stale-serve window past ZoneExpiry before the
	// copy is fully expired (default 0: expiry is final).
	ZoneStaleFor time.Duration
	// ZoneStaleTTLCap caps TTLs on answers consulted from a stale-serve
	// copy, so downstream caches re-ask soon after the copy heals
	// (default 30 s, the RFC 8767 recommendation).
	ZoneStaleTTLCap time.Duration
	// TracePropagate stamps an EDNS0 trace option (trace ID, parent span,
	// sampled flag) on upstream queries and grafts the span payload a
	// cooperating authoritative server returns, stitching a cross-process
	// trace. Off (the default) leaves queries byte-identical to a build
	// without propagation; it only takes effect on traced resolutions.
	TracePropagate bool
	// Seed makes server tie-breaking deterministic.
	Seed int64
}

// Stats counts resolver activity. Every counter the paper's experiments
// compare across root modes lives here.
type Stats struct {
	Resolutions       int64
	Failures          int64
	CacheAnswers      int64 // resolutions answered fully from cache
	NegCacheAnswers   int64
	TotalQueries      int64 // network queries sent
	RootQueries       int64 // sent to root nameserver addresses
	LocalRootConsults int64 // local root zone consultations (lookaside)
	// Staged staleness outcomes for the local zone copy (PR 8).
	LocalStaleConsults   int64 // consults answered from a stale-serve copy (TTLs capped)
	LocalExpiredRefusals int64 // consults refused because the copy expired (fail closed)
	TLDQueries        int64 // sent to TLD servers
	OtherQueries      int64
	Timeouts          int64
	LameResponses     int64 // SERVFAIL/REFUSED answers from upstreams
	GlueChases        int64 // sub-resolutions for nameserver addresses
	StaleAnswers      int64 // resolutions served from expired cache entries
	ServerSelections  int64 // SRTT-based choices among multiple servers
	SRTTUpdates       int64
	CNAMEChases       int64
	HoldDowns         int64 // circuit-breaker trips (server held down)
	HeldDownSkips     int64 // candidate servers skipped while held down
	Probes            int64 // re-admission attempts after a hold-down
	RetryBudgetStops  int64 // resolutions aborted by the retry budget
	// Overload-protection outcomes (PR 3).
	CoalescedResolutions int64 // resolutions that shared another's in-flight result
	ShedResolutions      int64 // resolutions refused an admission slot
	NXDomainCutHits      int64 // queries answered by an RFC 8020 NXDOMAIN cut
	// DNSSEC validation outcomes (PR 7), per validated upstream response.
	SecureAnswers        int64 // responses whose chain of trust verified
	InsecureAnswers      int64 // responses from provably-unsigned zones
	BogusAnswers         int64 // responses that failed validation
	IndeterminateAnswers int64 // responses with no applicable chain state
	BogusRejected        int64 // bogus responses refused under PolicyStrict
	NSECSynthesized      int64 // queries answered from validated NSEC ranges (RFC 8198)
	DNSKEYFetches        int64 // DNSKEY sub-queries issued to establish zone keys
}

// Result is the outcome of one resolution.
type Result struct {
	Rcode   dnswire.Rcode
	Answers []dnswire.RR
	// Latency is the total (virtual) network time spent.
	Latency time.Duration
	// Queries is the number of network queries used.
	Queries int
	// FromCache reports a resolution that needed no network traffic.
	FromCache bool
	// AuthData reports that every step of this resolution validated
	// Secure — the resolver-side truth behind the response AD bit. Only
	// freshly-validated answers, NSEC-synthesized denials, and local-zone
	// answers from a VerifyZone-checked copy qualify; plain cache hits
	// are served without it (the cache does not record chain state).
	AuthData bool
}

// Errors. ErrAllServersFail wraps the last per-server cause, so callers
// can distinguish dead infrastructure from misconfigured infrastructure:
// errors.Is(err, ErrTimeout) vs errors.Is(err, ErrLame).
var (
	ErrBudgetExceeded = errors.New("resolver: query budget exceeded")
	ErrAllServersFail = errors.New("resolver: all nameservers failed")
	ErrNoRootConfig   = errors.New("resolver: no usable root configuration")
	ErrLame           = errors.New("resolver: lame or malformed delegation")
	ErrTimeout        = errors.New("resolver: upstream query timed out")
	ErrRetryBudget    = errors.New("resolver: retry budget exhausted")
	ErrOverloaded     = errors.New("resolver: shed by admission gate")
	ErrBogus          = errors.New("resolver: answer failed DNSSEC validation")
)

// Resolver is an iterative resolver with a shared cache. Safe for
// concurrent use: the daemon's UDP server runs one goroutine per query
// against a single shared resolver.
type Resolver struct {
	cfg   Config
	cache *cache.Cache

	// tracer records per-query walk traces when enabled; nil or disabled
	// costs one atomic load per resolution. latency is the hot-path HDR
	// latency summary wired in by Instrument (nil until then): log-linear
	// buckets, so p999/p9999 survive without per-sample memory.
	tracer  *obs.Tracer
	latency *obs.HDR

	// sloObserve, when set via SetSLOObserver, is called once per
	// completed top-level resolution with its outcome; the daemon wires
	// it to SLO trackers. flightRec, when set, receives a compact digest
	// of every resolution for post-incident dumps.
	sloObserve func(latency time.Duration, rcode dnswire.Rcode, err error)
	flightRec  *obs.FlightRecorder

	// traffic, when installed with SetTraffic, classifies every Resolve
	// call into the shared junk taxonomy and feeds the heavy-hitter /
	// cardinality sketches (a few tens of ns per call; nil = off).
	traffic *traffic.Analyzer

	// flight coalesces concurrent identical resolutions (nil when
	// Coalesce is off); gate bounds admitted upstream work (nil when
	// MaxInflight is 0). Both are internally synchronised.
	flight *overload.Flight
	gate   *overload.Gate

	// validator holds the DNSSEC chain-of-trust state (nil when
	// Config.Validate is PolicyOff). localSecure records that the local
	// root zone copy passed whole-zone validation (VerifyZone) at
	// install, so local consults count as Secure; guarded by mu.
	validator   *validator.Validator
	localSecure bool

	mu         sync.Mutex
	rng        *rand.Rand // guarded by mu: Resolve runs concurrently
	stats      Stats
	srtt       map[netip.Addr]time.Duration
	health     map[netip.Addr]*serverHealth // backoff/hold-down state
	rootAddrs  map[netip.Addr]bool
	inflight   map[dnswire.Name]bool // glue chases underway (loop guard)
	zoneLoaded time.Time             // when cfg.LocalZone was installed (staleness age)
}

// New creates a resolver. It panics if cfg.Transport is nil and the mode
// needs one (all modes do — even lookaside queries TLD servers).
func New(cfg Config) *Resolver {
	if cfg.Transport == nil {
		panic("resolver: Config.Transport is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MaxQueries == 0 {
		cfg.MaxQueries = 64
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = cache.DefaultShards
	}
	if cfg.ZoneExpiry > 0 {
		if cfg.ZoneRefresh == 0 {
			cfg.ZoneRefresh = cfg.ZoneExpiry * 7 / 8
		}
		if cfg.ZoneStaleTTLCap == 0 {
			cfg.ZoneStaleTTLCap = 30 * time.Second
		}
	}
	r := &Resolver{
		cfg:       cfg,
		cache:     cache.NewSharded(cfg.CacheCapacity, cfg.CacheShards, cfg.Clock),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		srtt:      make(map[netip.Addr]time.Duration),
		health:    make(map[netip.Addr]*serverHealth),
		rootAddrs: make(map[netip.Addr]bool),
		inflight:  make(map[dnswire.Name]bool),
		gate:      overload.NewGate(cfg.MaxInflight, cfg.QueueDeadline),
	}
	if cfg.Coalesce {
		r.flight = overload.NewFlight()
	}
	for _, rr := range cfg.Hints {
		switch d := rr.Data.(type) {
		case dnswire.A:
			r.rootAddrs[d.Addr] = true
		case dnswire.AAAA:
			r.rootAddrs[d.Addr] = true
		}
	}
	if cfg.Validate != validator.PolicyOff {
		r.validator = validator.New(validator.Config{
			Anchor:     cfg.TrustAnchor,
			AnchorZone: dnswire.Root,
			Skew:       cfg.DNSSECSkew,
			Now:        cfg.Clock,
		})
	}
	if cfg.LocalZone != nil {
		r.zoneLoaded = cfg.Clock()
		r.localSecure = r.verifyLocalZone(cfg.LocalZone)
	}
	if cfg.Mode == RootModePreload && cfg.LocalZone != nil {
		r.PreloadRootZone(cfg.LocalZone)
	}
	return r
}

// Cache exposes the resolver's cache for inspection by experiments.
func (r *Resolver) Cache() *cache.Cache { return r.cache }

// Stats returns a snapshot of the counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Mode returns the configured root mode.
func (r *Resolver) Mode() RootMode { return r.cfg.Mode }

// SetLocalZone swaps in a fresh local root zone copy (after a refresh).
// In preload mode the new zone is re-pinned into the cache. With
// validation enabled the copy is re-verified against the trust anchor.
func (r *Resolver) SetLocalZone(z *zone.Zone) {
	secure := r.verifyLocalZone(z)
	r.mu.Lock()
	r.cfg.LocalZone = z
	r.zoneLoaded = r.cfg.Clock()
	r.localSecure = secure
	r.mu.Unlock()
	if r.cfg.Mode == RootModePreload {
		r.PreloadRootZone(z)
	}
}

// verifyLocalZone runs the paper's §3 out-of-band validation path: the
// whole local root zone copy is checked against the trust anchor
// (DNSKEY chain, every RRSIG, NSEC chain links, ZONEMD digest). Answers
// consulted from a verified copy count as Secure without per-response
// work. Returns false — and the copy is served unvalidated, without AD
// — when validation is off or the zone does not verify.
func (r *Resolver) verifyLocalZone(z *zone.Zone) bool {
	if r.validator == nil || z == nil {
		return false
	}
	return dnssec.VerifyZone(z, r.cfg.TrustAnchor, r.cfg.Clock()) == nil
}

// LocalZoneStatus reports the local root zone copy's serial and staleness
// age — the §5.3 freshness metric /statusz surfaces. ok is false when the
// mode carries no local zone.
func (r *Resolver) LocalZoneStatus() (serial uint32, age time.Duration, ok bool) {
	r.mu.Lock()
	lz := r.cfg.LocalZone
	loaded := r.zoneLoaded
	r.mu.Unlock()
	if lz == nil {
		return 0, 0, false
	}
	return lz.Serial(), r.cfg.Clock().Sub(loaded), true
}

// ZoneFreshness places the local zone copy's age on the distribution
// staleness state machine. FreshnessNone when staging is disabled
// (Config.ZoneExpiry zero) or no local zone is installed.
func (r *Resolver) ZoneFreshness() dist.Freshness {
	if r.cfg.ZoneExpiry <= 0 {
		return dist.FreshnessNone
	}
	r.mu.Lock()
	lz, loaded := r.cfg.LocalZone, r.zoneLoaded
	r.mu.Unlock()
	if lz == nil {
		return dist.FreshnessNone
	}
	return dist.FreshnessOf(r.cfg.Clock().Sub(loaded),
		r.cfg.ZoneRefresh, r.cfg.ZoneExpiry, r.cfg.ZoneStaleFor)
}

// SetTracer installs a query tracer. Call before serving; a nil or
// disabled tracer leaves only an atomic load on the resolution path.
func (r *Resolver) SetTracer(t *obs.Tracer) { r.tracer = t }

// SetTraffic installs a streaming traffic analyzer. Call before serving.
func (r *Resolver) SetTraffic(a *traffic.Analyzer) { r.traffic = a }

// SetSLOObserver installs a per-resolution outcome callback (latency,
// rcode, error) for SLO tracking. Call before serving; the resolver
// stays ignorant of SLO semantics — the daemon decides what "good"
// means.
func (r *Resolver) SetSLOObserver(f func(latency time.Duration, rcode dnswire.Rcode, err error)) {
	r.sloObserve = f
}

// SetFlightRecorder installs a flight recorder receiving one compact
// digest per resolution. Call before serving.
func (r *Resolver) SetFlightRecorder(f *obs.FlightRecorder) { r.flightRec = f }

// Traffic returns the installed analyzer (nil when none).
func (r *Resolver) Traffic() *traffic.Analyzer { return r.traffic }

// TailLatencySeconds returns the resolver's HDR latency tail
// (obs.TailQuantiles: p50/p99/p999/p9999, in seconds) and whether
// Instrument has installed the underlying histogram.
func (r *Resolver) TailLatencySeconds() ([4]float64, bool) {
	if r.latency == nil {
		return [4]float64{}, false
	}
	return r.latency.TailSeconds(), true
}

// Instrument wires the resolver into reg: a scrape-time collector
// republishes the Stats counters, cache statistics and SRTT state size,
// and an HDR summary observes per-resolution latency on the hot path
// (≲1% relative error at every quantile, so the exposed p999/p9999 are
// real tail measurements rather than bucket-edge artifacts). If a
// tracer is installed, its per-phase attribution histograms are
// registered too (SetTracer first).
func (r *Resolver) Instrument(reg *obs.Registry) {
	r.latency = reg.HDRTimer("rootless_resolver_resolution_seconds",
		"total (possibly virtual) network latency per resolution", nil)
	r.tracer.InstrumentAttribution(reg)
	reg.AddCollector(r)
}

// Collect implements obs.Collector.
func (r *Resolver) Collect(reg *obs.Registry) {
	labels := obs.Labels{"mode": r.cfg.Mode.String()}
	obs.SetCountersFromStruct(reg, "rootless_resolver", "resolver activity", labels, r.Stats())
	reg.Gauge("rootless_resolver_srtt_entries",
		"per-server timing entries held (the §4 complexity metric)", labels).
		Set(float64(r.SRTTStateSize()))
	held, backing := r.HealthCounts()
	reg.Gauge("rootless_resolver_held_down_servers",
		"servers currently held down by the circuit breaker", labels).
		Set(float64(held))
	reg.Gauge("rootless_resolver_backoff_servers",
		"servers currently in failure backoff", labels).
		Set(float64(backing))
	if r.gate != nil {
		reg.Gauge("rootless_resolver_gate_in_use",
			"admission slots currently held by upstream resolutions", labels).
			Set(float64(r.gate.InUse()))
		reg.Gauge("rootless_resolver_gate_capacity",
			"admission slot capacity (Config.MaxInflight)", labels).
			Set(float64(r.gate.Capacity()))
		reg.Counter("rootless_resolver_gate_waited_total",
			"admissions that queued for a slot before proceeding", labels).
			Set(r.gate.Stats().Waited)
	}
	if r.flight != nil {
		reg.Gauge("rootless_resolver_coalesce_inflight",
			"distinct (qname,qtype) resolutions currently in flight", labels).
			Set(float64(r.flight.Inflight()))
	}
	if r.traffic != nil {
		r.traffic.Collect(reg)
	}
	if serial, age, ok := r.LocalZoneStatus(); ok {
		reg.Gauge("rootless_zone_serial", "local root zone serial", nil).Set(float64(serial))
		reg.Gauge("rootless_zone_age_seconds", "staleness age of the local root zone copy", nil).
			Set(age.Seconds())
		if r.cfg.ZoneExpiry > 0 {
			reg.Gauge("rootless_zone_freshness_state",
				"local zone staleness stage: 0 none, 1 fresh, 2 aging, 3 stale-serve, 4 expired", nil).
				Set(float64(r.ZoneFreshness()))
		}
	}
	r.cache.Collect(reg)
}

// PreloadRootZone loads every RRset of z into the cache as pinned entries
// — the paper's "place all records from the root zone file in the cache".
func (r *Resolver) PreloadRootZone(z *zone.Zone) {
	_, sets := dnswire.GroupRRsets(z.Records())
	for key, rrs := range sets {
		if key.Type == dnswire.TypeSOA && key.Name.IsRoot() {
			// keep the SOA too; it answers negative proofs
		}
		r.cache.Put(rrs, true)
	}
}

// count is the single mutation path for Stats: every counter write in the
// package goes through here (pinned by TestAllCounterWritesUseCount), so
// Stats() snapshots can never observe a torn or unsynchronised update.
func (r *Resolver) count(f func(*Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// randID draws a query ID under the lock: Resolve runs concurrently and
// math/rand.Rand is not goroutine-safe.
func (r *Resolver) randID() uint16 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint16(r.rng.Intn(1 << 16))
}

// srttFor reads one server's smoothed RTT estimate (0 when unknown).
func (r *Resolver) srttFor(addr netip.Addr) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.srtt[addr]
}

// Resolve performs a full iterative resolution of (qname, qtype). With
// coalescing enabled, concurrent identical calls collapse onto one
// leader: it alone does the work, and every waiter shares its result.
func (r *Resolver) Resolve(qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	// Classify before the coalescing branch so waiters and duplicates
	// count toward the composition too (they are real arriving queries).
	var class string
	if r.traffic != nil {
		class = r.traffic.Observe(qname, qtype).String()
	}
	if r.flight == nil {
		return r.resolveTop(qname, qtype, class)
	}
	var flightStart time.Time
	if r.tracer.Enabled() {
		flightStart = time.Now()
	}
	v, err, shared := r.flight.Do(flightKey(qname, qtype), func() (any, error) {
		return r.resolveTop(qname, qtype, class)
	})
	res, _ := v.(*Result)
	if res == nil {
		res = &Result{Rcode: dnswire.RcodeServFail}
	}
	if !shared {
		return res, err
	}
	// A waiter: count it as its own resolution (every Resolve call is
	// one) and hand back a copy so callers cannot alias each other.
	r.count(func(s *Stats) { s.Resolutions++; s.CoalescedResolutions++ })
	if tr := r.tracer.Begin(string(qname), qtype.String()); tr != nil {
		tr.SetClass(class)
		// The waiter's whole life was spent blocked on the leader's
		// flight: charge it to overload_wait in the attribution.
		wsp := tr.StartSpan(obs.PhaseOverloadWait, "coalesce-wait")
		wsp.EndWithDuration(time.Since(flightStart))
		tr.Eventf("coalesced", "shared an in-flight resolution (rcode %s, %d RRs)",
			res.Rcode, len(res.Answers))
		tr.Finish(res.Rcode.String(), res.Latency, 0, err)
	}
	cp := *res
	return &cp, err
}

// flightKey keys the singleflight table by question.
func flightKey(qname dnswire.Name, qtype dnswire.Type) string {
	return string(qname) + "|" + qtype.String()
}

// resolveTop runs one top-level resolution: trace lifecycle, admission
// token, and latency observation. Glue chases re-enter resolve directly,
// sharing the parent's token and trace.
func (r *Resolver) resolveTop(qname dnswire.Name, qtype dnswire.Type, class string) (*Result, error) {
	tr := r.tracer.Begin(string(qname), qtype.String())
	if class != "" {
		tr.SetClass(class)
	}
	var tok gateToken
	res, err := r.resolve(qname, qtype, tr, &tok)
	if tok.held {
		r.gate.Release()
	}
	if tr != nil {
		tr.Finish(res.Rcode.String(), res.Latency, res.Queries, err)
	}
	if r.latency != nil {
		r.latency.RecordDuration(res.Latency)
	}
	if r.flightRec != nil {
		d := obs.FlightDigest{
			UnixNanos: r.cfg.Clock().UnixNano(),
			Class:     class,
			Qtype:     qtype.String(),
			Rcode:     res.Rcode.String(),
			LatencyNS: int64(res.Latency),
			Queries:   res.Queries,
			Answers:   len(res.Answers),
			FromCache: res.FromCache,
			Shed:      errors.Is(err, ErrOverloaded),
		}
		if tr != nil {
			d.TraceID = obs.FormatTraceID(tr.ID())
		}
		if err != nil {
			d.Err = err.Error()
		}
		r.flightRec.Record(d)
	}
	// The SLO observer runs after the digest is recorded so a burn-rate
	// alert fired from inside it dumps a ring that already includes the
	// query that tripped the alert.
	if r.sloObserve != nil {
		r.sloObserve(res.Latency, res.Rcode, err)
	}
	return res, err
}

// gateToken tracks one top-level resolution's admission slot. The slot
// is claimed lazily at the first upstream need — cache hits, NXDOMAIN
// cuts, and local-zone consults never touch the gate — and held across
// glue chases and referral hops, so one resolution occupies at most one
// slot (a second claim could deadlock a full gate against its own
// sub-work). resolveTop releases it.
type gateToken struct {
	held bool
	shed bool // the gate refused; don't ask again this resolution
}

// admit claims the admission slot before upstream work. ErrOverloaded
// means this resolution is shed: the caller unwinds to iterate's error
// path, which still tries the serve-stale fallback (RFC 8767).
func (r *Resolver) admit(tok *gateToken, tr *obs.Trace) error {
	if r.gate == nil || tok.held {
		return nil
	}
	if !tok.shed {
		wsp := tr.StartSpan(obs.PhaseOverloadWait, "admission")
		ok := r.gate.Acquire()
		wsp.End()
		if ok {
			tok.held = true
			return nil
		}
		tok.shed = true
		r.count(func(s *Stats) { s.ShedResolutions++ })
		tr.Eventf("shed", "admission gate full; shedding upstream work")
	}
	return ErrOverloaded
}

// resolve is the trace-carrying resolution core (glue chases re-enter
// here so their events land in the parent's trace).
func (r *Resolver) resolve(qname dnswire.Name, qtype dnswire.Type, tr *obs.Trace, tok *gateToken) (*Result, error) {
	r.count(func(s *Stats) { s.Resolutions++ })
	res := &Result{Rcode: dnswire.RcodeServFail}
	budget := r.cfg.MaxQueries
	retries := r.retryBudget()

	target := qname
	var chain []dnswire.RR
	// AD holds only if every link of a CNAME chain validated Secure.
	authAll := true
	for depth := 0; depth < 9; depth++ {
		res.AuthData = false
		rcode, rrs, err := r.iterate(target, qtype, res, &budget, &retries, tr, tok)
		if err != nil {
			r.count(func(s *Stats) { s.Failures++ })
			tr.Eventf("fail", "%s: %v", target, err)
			return res, err
		}
		res.Rcode = rcode
		authAll = authAll && res.AuthData
		// Follow a CNAME unless that is what was asked for.
		if rcode == dnswire.RcodeSuccess && qtype != dnswire.TypeCNAME {
			if cn, ok := terminalCNAME(rrs, target); ok {
				chain = append(chain, rrs...)
				target = cn
				r.count(func(s *Stats) { s.CNAMEChases++ })
				tr.Eventf("cname", "chasing %s -> %s", qname, cn)
				continue
			}
		}
		res.Answers = append(chain, rrs...)
		res.FromCache = res.Queries == 0
		res.AuthData = authAll
		return res, nil
	}
	r.count(func(s *Stats) { s.Failures++ })
	return res, errors.New("resolver: CNAME chain too long")
}

// terminalCNAME reports whether rrs answers name only via a CNAME.
func terminalCNAME(rrs []dnswire.RR, name dnswire.Name) (dnswire.Name, bool) {
	var cn dnswire.Name
	for _, rr := range rrs {
		if rr.Name == name && rr.Type == dnswire.TypeCNAME {
			cn = rr.Data.(dnswire.CNAME).Target
		}
	}
	if cn == "" {
		return "", false
	}
	// If the set already contains records at the target, no chase needed.
	for _, rr := range rrs {
		if rr.Name == cn && rr.Type != dnswire.TypeCNAME {
			return "", false
		}
	}
	return cn, true
}

// nsSet is a delegation: the zone name and its servers.
type nsSet struct {
	zone  dnswire.Name
	hosts []dnswire.Name
	// local marks "consult the local root zone" (lookaside mode).
	local bool
}

// iterate resolves one name without following CNAMEs.
func (r *Resolver) iterate(qname dnswire.Name, qtype dnswire.Type, res *Result, budget, retries *int, tr *obs.Trace, tok *gateToken) (dnswire.Rcode, []dnswire.RR, error) {
	// Full answer from cache? The Eventf calls here sit on the cache-hit
	// fast path, so they are guarded: a nil-trace Eventf is itself free,
	// but evaluating its variadic arguments is not. The cache-probe span
	// covers every probe (positive, CNAME, NXDOMAIN cut) up to the
	// hit/miss verdict.
	csp := tr.StartSpan(obs.PhaseCache, "cache-probe")
	if hit, ok := r.cache.Get(qname, qtype); ok {
		if hit.Negative {
			r.count(func(s *Stats) { s.NegCacheAnswers++; s.CacheAnswers++ })
			if tr != nil {
				tr.Eventf("cache-hit", "negative %s %s", qname, qtype)
			}
			csp.End()
			// Replay the faithful rcode: NXDOMAIN if the name was proven
			// absent, NODATA (Success, no answers) if only the type was.
			if hit.NXDomain {
				return dnswire.RcodeNXDomain, nil, nil
			}
			return dnswire.RcodeSuccess, nil, nil
		}
		r.count(func(s *Stats) { s.CacheAnswers++ })
		if tr != nil {
			tr.Eventf("cache-hit", "%s %s (%d RRs)", qname, qtype, len(hit.RRs))
		}
		csp.End()
		// CopyRRs: the Result shares the cache's storage; callers get a
		// private set with decayed TTLs.
		return dnswire.RcodeSuccess, hit.CopyRRs(), nil
	}
	// Cached CNAME at the name also answers.
	if qtype != dnswire.TypeCNAME {
		if hit, ok := r.cache.Get(qname, dnswire.TypeCNAME); ok && !hit.Negative {
			r.count(func(s *Stats) { s.CacheAnswers++ })
			if tr != nil {
				tr.Eventf("cache-hit", "%s CNAME", qname)
			}
			csp.End()
			return dnswire.RcodeSuccess, hit.CopyRRs(), nil
		}
	}
	// A validated NSEC range covering qname answers with cryptographic
	// certainty (RFC 8198): the denial was proven, not observed, so the
	// synthesized answer even carries AD. Checked before the RFC 8020
	// cut — when both apply, the stronger mechanism takes the hit.
	if r.cfg.NSECAggressive {
		if nx, ok := r.cache.NSECSynthesize(qname, qtype); ok {
			r.count(func(s *Stats) { s.NSECSynthesized++; s.NegCacheAnswers++; s.CacheAnswers++ })
			if tr != nil {
				tr.Eventf("cache-hit", "validated NSEC range covers %s %s", qname, qtype)
			}
			csp.End()
			res.AuthData = true
			if nx {
				return dnswire.RcodeNXDomain, nil, nil
			}
			return dnswire.RcodeSuccess, nil, nil
		}
	}
	// An NXDOMAIN cut at any ancestor (in practice: the TLD) answers the
	// miss without any upstream work — the aggressive negative cache the
	// paper's junk-dominated workload rewards.
	if r.cfg.NXDomainCut && r.cache.NXDomainCovered(qname) {
		r.count(func(s *Stats) { s.NXDomainCutHits++; s.NegCacheAnswers++; s.CacheAnswers++ })
		if tr != nil {
			tr.Eventf("cache-hit", "NXDOMAIN cut covers %s", qname)
		}
		csp.End()
		return dnswire.RcodeNXDomain, nil, nil
	}
	csp.End()
	if tr != nil {
		tr.Eventf("cache-miss", "%s %s", qname, qtype)
	}

	cur := r.closestNameservers(qname)
	for hop := 0; hop < 24; hop++ {
		if cur.local {
			tr.Eventf("local-root", "consulting local zone for %s %s", qname, qtype)
			asp := tr.StartSpan(obs.PhaseAuth, "local-root")
			next, rcode, rrs, done := r.consultLocalRoot(qname, qtype)
			asp.End()
			if done {
				r.mu.Lock()
				res.AuthData = r.localSecure
				r.mu.Unlock()
				return rcode, rrs, nil
			}
			tr.Eventf("referral", "local zone -> %s (%d servers)", next.zone, len(next.hosts))
			cur = next
			continue
		}

		resp, err := r.queryZoneServers(cur, qname, qtype, res, budget, retries, tr, tok)
		if err != nil {
			if rrs, ok := r.staleAnswer(qname, qtype); ok {
				tr.Eventf("stale", "served %s %s from expired cache", qname, qtype)
				return dnswire.RcodeSuccess, rrs, nil
			}
			return dnswire.RcodeServFail, nil, err
		}

		secure := false
		if r.validator != nil {
			vsp := tr.StartSpan(obs.PhaseValidate, "validate")
			outcome, verr := r.validateResponse(cur, qname, qtype, resp, res, budget, retries, tr, tok)
			vsp.End()
			if outcome == validator.Bogus && r.cfg.Validate == validator.PolicyStrict {
				// Strict policy: the answer is discarded before any of it
				// can reach the cache, and the resolution fails closed.
				r.count(func(s *Stats) { s.BogusRejected++ })
				return dnswire.RcodeServFail, nil, fmt.Errorf("%w: %w", ErrBogus, verr)
			}
			secure = outcome == validator.Secure
		}

		rcode, rrs, next, done := r.processResponse(cur, qname, qtype, resp)
		if done {
			res.AuthData = secure
			return rcode, rrs, nil
		}
		tr.Eventf("referral", "hop=%d %s -> %s (%d servers)", hop+1, cur.zone, next.zone, len(next.hosts))
		cur = next
	}
	return dnswire.RcodeServFail, nil, ErrLame
}

// staleAnswer consults the expired cache when serve-stale is enabled.
func (r *Resolver) staleAnswer(qname dnswire.Name, qtype dnswire.Type) ([]dnswire.RR, bool) {
	if !r.cfg.ServeStale {
		return nil, false
	}
	limit := r.cfg.StaleLimit
	if limit == 0 {
		limit = 24 * time.Hour
	}
	if hit, ok := r.cache.GetStale(qname, qtype, limit); ok {
		r.count(func(s *Stats) { s.StaleAnswers++ })
		return hit.CopyRRs(), true
	}
	return nil, false
}

// consultLocalRoot performs the lookaside step: read the referral (or
// terminal answer) straight from the local root zone. With staleness
// staging enabled, the copy's freshness stage gates the consult: a
// stale-serve copy still answers but with capped TTLs, an expired copy
// fails closed.
func (r *Resolver) consultLocalRoot(qname dnswire.Name, qtype dnswire.Type) (nsSet, dnswire.Rcode, []dnswire.RR, bool) {
	r.count(func(s *Stats) { s.LocalRootConsults++ })
	r.mu.Lock()
	lz := r.cfg.LocalZone
	loaded := r.zoneLoaded
	r.mu.Unlock()
	if lz == nil {
		return nsSet{}, dnswire.RcodeServFail, nil, true
	}
	var ttlCap uint32
	if r.cfg.ZoneExpiry > 0 {
		age := r.cfg.Clock().Sub(loaded)
		switch dist.FreshnessOf(age, r.cfg.ZoneRefresh, r.cfg.ZoneExpiry, r.cfg.ZoneStaleFor) {
		case dist.FreshnessExpired:
			// Fail closed: a copy past its stale-serve window must not
			// steer resolution toward long-gone servers.
			r.count(func(s *Stats) { s.LocalExpiredRefusals++ })
			return nsSet{}, dnswire.RcodeServFail, nil, true
		case dist.FreshnessStaleServe:
			r.count(func(s *Stats) { s.LocalStaleConsults++ })
			ttlCap = uint32(r.cfg.ZoneStaleTTLCap / time.Second)
			if ttlCap == 0 {
				ttlCap = 1
			}
		}
	}
	ans := lz.Query(qname, qtype)
	if ttlCap > 0 {
		ans.Answer = capTTLs(ans.Answer, ttlCap)
		ans.Authority = capTTLs(ans.Authority, ttlCap)
		ans.Additional = capTTLs(ans.Additional, ttlCap)
	}
	switch {
	case ans.Rcode == dnswire.RcodeNXDomain:
		if len(ans.Authority) > 0 {
			r.cache.PutNegative(qname, qtype, ans.Authority[0], true)
			// The local root zone just proved the TLD undelegated.
			if tld := qname.TLD(); r.cfg.NXDomainCut && !tld.IsRoot() {
				r.cache.PutNXDomainCut(tld, ans.Authority[0])
			}
		}
		return nsSet{}, dnswire.RcodeNXDomain, nil, true
	case len(ans.Answer) > 0:
		r.cacheSets(ans.Answer, false)
		return nsSet{}, dnswire.RcodeSuccess, ans.Answer, true
	case !ans.Authoritative && len(ans.Authority) > 0:
		// Referral: cache the NS set and glue, then continue iterating
		// at the TLD servers.
		r.cacheSets(ans.Authority, false)
		r.cacheSets(ans.Additional, false)
		next := nsSet{zone: ans.Authority[0].Name}
		for _, rr := range ans.Authority {
			if rr.Type == dnswire.TypeNS {
				next.hosts = append(next.hosts, rr.Data.(dnswire.NS).Host)
			}
		}
		return next, 0, nil, false
	default:
		// NODATA at the root (e.g. TLD apex, wrong type).
		if len(ans.Authority) > 0 {
			r.cache.PutNegative(qname, qtype, ans.Authority[0], false)
		}
		return nsSet{}, dnswire.RcodeSuccess, nil, true
	}
}

// capTTLs returns a copy of rrs with every TTL capped — answers from a
// stale-serve zone copy must not linger in downstream caches.
func capTTLs(rrs []dnswire.RR, cap uint32) []dnswire.RR {
	out := make([]dnswire.RR, len(rrs))
	copy(out, rrs)
	for i := range out {
		if out[i].TTL > cap {
			out[i].TTL = cap
		}
	}
	return out
}

// closestNameservers finds the deepest delegation the resolver already
// knows that encloses qname, falling back to the root per the configured
// mode.
func (r *Resolver) closestNameservers(qname dnswire.Name) nsSet {
	for n := qname; !n.IsRoot(); n = n.Parent() {
		if hit, ok := r.cache.Get(n, dnswire.TypeNS); ok && !hit.Negative {
			set := nsSet{zone: n}
			for _, rr := range hit.RRs {
				if ns, ok := rr.Data.(dnswire.NS); ok {
					set.hosts = append(set.hosts, ns.Host)
				}
			}
			if len(set.hosts) > 0 {
				return set
			}
		}
	}
	return r.rootSet()
}

// rootSet returns the starting point for a resolution that must begin at
// the root, per the configured mode.
func (r *Resolver) rootSet() nsSet {
	switch r.cfg.Mode {
	case RootModeLookaside:
		return nsSet{zone: dnswire.Root, local: true}
	case RootModeLocalAuth:
		return nsSet{zone: dnswire.Root, hosts: []dnswire.Name{"localroot."}}
	case RootModePreload:
		// Preload pins TLD NS sets in the cache, so reaching here means
		// the name's TLD does not exist in the local zone — consult it
		// directly so NXDOMAIN is answered without any network traffic.
		r.mu.Lock()
		lz := r.cfg.LocalZone
		r.mu.Unlock()
		if lz != nil {
			return nsSet{zone: dnswire.Root, local: true}
		}
	}
	// Classic: the hints file.
	set := nsSet{zone: dnswire.Root}
	for _, rr := range r.cfg.Hints {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			set.hosts = append(set.hosts, ns.Host)
		}
	}
	return set
}

// serverAddrs resolves a delegation's nameserver hosts to addresses using
// hints, cached glue, and (if allowed) glue-chasing sub-resolutions.
func (r *Resolver) serverAddrs(set nsSet, res *Result, budget *int, chase bool, tr *obs.Trace, tok *gateToken) []netip.Addr {
	var addrs []netip.Addr
	seen := make(map[netip.Addr]bool)
	add := func(a netip.Addr) {
		if a.IsValid() && !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	if r.cfg.Mode == RootModeLocalAuth && set.zone.IsRoot() && !set.local {
		add(r.cfg.LocalAuthAddr)
		return addrs
	}
	for _, host := range set.hosts {
		if set.zone.IsRoot() {
			for _, rr := range r.cfg.Hints {
				if rr.Name != host {
					continue
				}
				if a, ok := rr.Data.(dnswire.A); ok {
					add(a.Addr)
				}
			}
		}
		if hit, ok := r.cache.Get(host, dnswire.TypeA); ok && !hit.Negative {
			for _, rr := range hit.RRs {
				if a, ok := rr.Data.(dnswire.A); ok {
					add(a.Addr)
				}
			}
		}
	}
	if len(addrs) > 0 || !chase {
		return addrs
	}
	// No glue anywhere: chase one nameserver's address out of band.
	for _, host := range set.hosts {
		if *budget <= 0 {
			break
		}
		r.mu.Lock()
		busy := r.inflight[host]
		if !busy {
			r.inflight[host] = true
		}
		r.mu.Unlock()
		if busy {
			continue // a chase for this host encloses us; avoid the loop
		}
		r.count(func(s *Stats) { s.GlueChases++ })
		tr.Eventf("glue-chase", "resolving %s A out of band", host)
		gsp := tr.StartSpan(obs.PhaseOther, "glue-chase")
		if gsp != nil {
			gsp.SetDetail(string(host))
		}
		tr.Push()
		sub, err := r.resolve(host, dnswire.TypeA, tr, tok)
		tr.Pop()
		gsp.End()
		r.mu.Lock()
		delete(r.inflight, host)
		r.mu.Unlock()
		res.Queries += sub.Queries
		res.Latency += sub.Latency
		*budget -= sub.Queries
		if err != nil || sub.Rcode != dnswire.RcodeSuccess {
			continue
		}
		for _, rr := range sub.Answers {
			if a, ok := rr.Data.(dnswire.A); ok {
				add(a.Addr)
			}
		}
		if len(addrs) > 0 {
			break
		}
	}
	return addrs
}

// queryZoneServers sends the (possibly minimised) query to the best
// servers of the current delegation until one answers. Server order is
// SRTT with health overlaid: backing-off servers are demoted, held-down
// servers are skipped (or probed, once the hold-down expires). Each
// timeout or lame answer consumes one unit of the resolution's retry
// budget and feeds the server's backoff/hold-down state.
func (r *Resolver) queryZoneServers(set nsSet, qname dnswire.Name, qtype dnswire.Type, res *Result, budget, retries *int, tr *obs.Trace, tok *gateToken) (*dnswire.Message, error) {
	// Everything past this point is upstream work: claim the admission
	// slot first (held for the rest of the resolution), shed if refused.
	if err := r.admit(tok, tr); err != nil {
		return nil, err
	}
	sendName, sendType := qname, qtype
	if r.cfg.QNameMinimisation {
		sendName, sendType = minimise(set.zone, qname, qtype)
	}

	addrs := r.serverAddrs(set, res, budget, true, tr, tok)
	if len(addrs) == 0 {
		return nil, ErrAllServersFail
	}
	r.orderBySRTT(addrs)
	candidates, heldCount, probes := r.planAttempts(addrs, r.cfg.Clock())
	if heldCount > 0 {
		r.count(func(s *Stats) { s.HeldDownSkips += int64(heldCount) })
		if tr != nil {
			tr.Eventf("hold-down", "zone=%s skipping %d held-down servers", set.zone, heldCount)
		}
	}
	if len(candidates) > 1 {
		r.count(func(s *Stats) { s.ServerSelections++ })
		if tr != nil { // srttFor takes the lock; skip entirely when not tracing
			tr.Eventf("select", "zone=%s picked %s by SRTT (%v) of %d servers",
				set.zone, candidates[0], r.srttFor(candidates[0]), len(candidates))
		}
	}

	var lastErr error
	for attempt, addr := range candidates {
		if *budget <= 0 {
			return nil, ErrBudgetExceeded
		}
		*budget--
		q := dnswire.NewQuery(r.randID(), sendName, sendType)
		q.RecursionDesired = false
		q.SetEDNS(dnswire.DefaultEDNSSize, true)
		if attempt > 0 {
			tr.Eventf("retry", "attempt=%d trying %s", attempt+1, addr)
		}
		if probes[addr] {
			r.count(func(s *Stats) { s.Probes++ })
			tr.Eventf("probe", "re-admitting %s after hold-down", addr)
		}

		r.count(func(s *Stats) {
			s.TotalQueries++
			switch {
			case r.rootAddrs[addr] || (set.zone.IsRoot() && r.cfg.Mode == RootModeHints):
				s.RootQueries++
			case addr == r.cfg.LocalAuthAddr && r.cfg.Mode == RootModeLocalAuth:
				s.LocalRootConsults++
			case set.zone.LabelCount() == 1:
				s.TLDQueries++
			default:
				s.OtherQueries++
			}
		})

		tr.Eventf("send", "%s %s -> %s (zone %s)", sendName, sendType, addr, set.zone)
		// The attempt span is charged the (possibly virtual) RTT rather
		// than wall time, and reclassified as backoff when the attempt
		// turns out to be wasted — a timeout or a lame answer is retry
		// cost, not productive network time.
		xsp := tr.StartSpan(obs.PhaseNet, "attempt")
		if xsp != nil {
			xsp.SetDetail(addr.String() + " zone " + string(set.zone))
			if r.cfg.TracePropagate {
				q.SetTraceOption(dnswire.TraceContext{
					TraceID: tr.ID(), SpanID: xsp.SpanID(), Sampled: true,
				}, nil)
			}
		}
		resp, rtt, err := r.exchange(tr, addr, q)
		res.Queries++
		res.Latency += rtt
		if err != nil {
			xsp.SetPhase(obs.PhaseBackoff)
			xsp.EndWithDuration(rtt)
			r.count(func(s *Stats) { s.Timeouts++ })
			r.updateSRTT(addr, rtt, true)
			tr.Eventf("timeout", "%s after %v: %v", addr, rtt, err)
			lastErr = fmt.Errorf("%w: %v", ErrTimeout, err)
			if err := r.recordFailure(addr, retries, tr); err != nil {
				return nil, fmt.Errorf("%w: %w", err, lastErr)
			}
			continue
		}
		r.updateSRTT(addr, rtt, false)
		if resp.Rcode == dnswire.RcodeServFail || resp.Rcode == dnswire.RcodeRefused {
			xsp.SetPhase(obs.PhaseBackoff)
			xsp.EndWithDuration(rtt)
			r.count(func(s *Stats) { s.LameResponses++ })
			tr.Eventf("lame", "%s from %s", resp.Rcode, addr)
			lastErr = fmt.Errorf("%w: %s from %s", ErrLame, resp.Rcode, addr)
			if err := r.recordFailure(addr, retries, tr); err != nil {
				return nil, fmt.Errorf("%w: %w", err, lastErr)
			}
			continue
		}
		if nonDescendingReferral(set.zone, resp) {
			// A lame referral burns the server, not the resolution: fail
			// over to the next candidate like any other lame answer.
			xsp.SetPhase(obs.PhaseBackoff)
			xsp.EndWithDuration(rtt)
			r.count(func(s *Stats) { s.LameResponses++ })
			tr.Eventf("lame", "non-descending referral from %s", addr)
			lastErr = fmt.Errorf("%w: non-descending referral from %s", ErrLame, addr)
			if err := r.recordFailure(addr, retries, tr); err != nil {
				return nil, fmt.Errorf("%w: %w", err, lastErr)
			}
			continue
		}
		r.noteSuccess(addr)
		xsp.EndWithDuration(rtt)
		tr.Eventf("recv", "%s rtt=%v rcode=%s ans=%d auth=%d",
			addr, rtt, resp.Rcode, len(resp.Answers), len(resp.Authority))
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	return nil, fmt.Errorf("%w: %w", ErrAllServersFail, lastErr)
}

// exchange sends one query through the transport, forwarding the trace
// when both ends support it so far-side spans (netsim transit, auth
// handling) nest inside the caller's attempt span.
func (r *Resolver) exchange(tr *obs.Trace, dst netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	if tr != nil {
		if tt, ok := r.cfg.Transport.(TracedTransport); ok {
			return tt.ExchangeTraced(tr, dst, q)
		}
	}
	resp, rtt, err := r.cfg.Transport.Exchange(dst, q)
	if err == nil && tr != nil && r.cfg.TracePropagate {
		// A cooperating far side ships its span tree back in the response
		// option; graft it under the in-flight attempt span so the stitched
		// tree shows auth-side work inside the exchange that paid for it.
		if _, payload, ok := resp.TraceOption(); ok && payload != nil {
			tr.GraftRemote(payload)
		}
	}
	return resp, rtt, err
}

// recordFailure feeds one failed attempt into the server's health state
// and the resolution's retry budget. A non-nil return (ErrRetryBudget)
// aborts the resolution.
func (r *Resolver) recordFailure(addr netip.Addr, retries *int, tr *obs.Trace) error {
	backoff, hold := r.noteFailure(addr, r.cfg.Clock())
	if hold > 0 {
		r.count(func(s *Stats) { s.HoldDowns++ })
		tr.Eventf("hold-down", "tripped %s for %v", addr, hold)
	} else if backoff > 0 && tr != nil {
		tr.Eventf("backoff", "%s backing off %v", addr, backoff)
	}
	*retries--
	if *retries > 0 {
		return nil
	}
	r.count(func(s *Stats) { s.RetryBudgetStops++ })
	tr.Eventf("retry-budget", "exhausted at %s", addr)
	return ErrRetryBudget
}

// nonDescendingReferral reports whether resp is a referral whose target
// zone does not properly descend from the queried zone — the classic
// misconfigured-secondary answer. Mirrors processResponse's terminal
// check, but detecting it per-server lets queryZoneServers fail over.
func nonDescendingReferral(zoneName dnswire.Name, resp *dnswire.Message) bool {
	if !isReferral(resp) {
		return false
	}
	var next dnswire.Name
	for _, rr := range resp.Authority {
		if rr.Type == dnswire.TypeNS {
			next = rr.Name
			break
		}
	}
	return next == "" || next == zoneName || !next.IsSubdomainOf(zoneName)
}

// minimise computes the QNAME-minimised (name, type) to send to servers
// of zone for the eventual target qname (RFC 7816).
func minimise(zoneName, qname dnswire.Name, qtype dnswire.Type) (dnswire.Name, dnswire.Type) {
	zl, ql := zoneName.LabelCount(), qname.LabelCount()
	if ql <= zl+1 {
		return qname, qtype
	}
	labels := qname.Labels()
	// Keep zl+1 trailing labels.
	keep := labels[len(labels)-(zl+1):]
	var name dnswire.Name = dnswire.Root
	for i := len(keep) - 1; i >= 0; i-- {
		child, err := name.Child(string(keep[i]))
		if err != nil {
			return qname, qtype
		}
		name = child
	}
	return name, dnswire.TypeNS
}

// processResponse classifies a response and updates the cache. It returns
// either a terminal (rcode, rrs) or the next delegation to chase.
func (r *Resolver) processResponse(cur nsSet, qname dnswire.Name, qtype dnswire.Type, resp *dnswire.Message) (dnswire.Rcode, []dnswire.RR, nsSet, bool) {
	sentName := qname
	sentType := qtype
	if r.cfg.QNameMinimisation {
		sentName, sentType = minimise(cur.zone, qname, qtype)
	}

	switch {
	case resp.Rcode == dnswire.RcodeNXDomain:
		soa := findSOA(resp.Authority)
		if soa != nil {
			r.cache.PutNegative(sentName, sentType, *soa, true)
			// An NXDOMAIN whose SOA is the root zone's proves the TLD is
			// not delegated at all (the root would have referred
			// otherwise), so record an RFC 8020 cut at the TLD.
			if tld := sentName.TLD(); r.cfg.NXDomainCut && soa.Name.IsRoot() && !tld.IsRoot() {
				r.cache.PutNXDomainCut(tld, *soa)
			}
		}
		// NXDOMAIN for an ancestor name dooms the full qname too.
		return dnswire.RcodeNXDomain, nil, nsSet{}, true

	case len(resp.Answers) > 0:
		r.cacheSets(resp.Answers, false)
		if sentName != qname || sentType != qtype {
			// Minimised intermediate answer (e.g. NS at a cut we asked
			// about): descend within the same or delegated servers.
			next := nsSet{zone: sentName}
			for _, rr := range resp.Answers {
				if rr.Name == sentName && rr.Type == dnswire.TypeNS {
					next.hosts = append(next.hosts, rr.Data.(dnswire.NS).Host)
				}
			}
			if len(next.hosts) > 0 {
				r.cacheSets(resp.Additional, false)
				return 0, nil, next, false
			}
			// CNAME at an intermediate minimised name: rare; restart from
			// the full name against the same servers.
			return 0, nil, cur, false
		}
		return dnswire.RcodeSuccess, resp.Answers, nsSet{}, true

	case isReferral(resp):
		r.cacheSets(referralNS(resp), false)
		r.cacheSets(resp.Additional, false)
		next := nsSet{}
		for _, rr := range resp.Authority {
			if rr.Type == dnswire.TypeNS {
				if next.zone == "" {
					next.zone = rr.Name
				}
				if rr.Name == next.zone {
					next.hosts = append(next.hosts, rr.Data.(dnswire.NS).Host)
				}
			}
		}
		// A referral that does not descend is lame; stop.
		if next.zone == "" || next.zone == cur.zone || !next.zone.IsSubdomainOf(cur.zone) {
			return dnswire.RcodeServFail, nil, nsSet{}, true
		}
		return 0, nil, next, false

	default:
		// NODATA. For a minimised intermediate name this means an empty
		// non-terminal: descend one more label against the same servers.
		if sentName != qname || sentType != qtype {
			deeper := cur
			deeper.zone = sentName
			// The zone does not actually cut here, but using sentName as
			// the floor makes minimise() reveal one more label while we
			// keep asking the same servers.
			deeper.hosts = cur.hosts
			return 0, nil, deeper, false
		}
		soa := findSOA(resp.Authority)
		if soa != nil {
			r.cache.PutNegative(sentName, sentType, *soa, false)
		}
		return dnswire.RcodeSuccess, nil, nsSet{}, true
	}
}

// cacheSets groups records into RRsets and caches each.
func (r *Resolver) cacheSets(rrs []dnswire.RR, pinned bool) {
	if len(rrs) == 0 {
		return
	}
	_, sets := dnswire.GroupRRsets(rrs)
	for key, set := range sets {
		if key.Type == dnswire.TypeOPT {
			continue
		}
		r.cache.Put(set, pinned)
	}
}

func findSOA(rrs []dnswire.RR) *dnswire.RR {
	for i := range rrs {
		if rrs[i].Type == dnswire.TypeSOA {
			return &rrs[i]
		}
	}
	return nil
}

func isReferral(resp *dnswire.Message) bool {
	if resp.Authoritative || len(resp.Answers) > 0 {
		return false
	}
	for _, rr := range resp.Authority {
		if rr.Type == dnswire.TypeNS {
			return true
		}
	}
	return false
}

func referralNS(resp *dnswire.Message) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range resp.Authority {
		if rr.Type == dnswire.TypeNS || rr.Type == dnswire.TypeDS {
			out = append(out, rr)
		}
	}
	return out
}

// orderBySRTT sorts candidate servers by smoothed RTT, unknown servers
// first at a small optimistic default so new servers get explored —
// the selection machinery §4 notes local-root modes can delete.
func (r *Resolver) orderBySRTT(addrs []netip.Addr) {
	const unknownSRTT = 30 * time.Millisecond
	r.mu.Lock()
	key := func(a netip.Addr) time.Duration {
		if v, ok := r.srtt[a]; ok {
			return v
		}
		return unknownSRTT
	}
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && key(addrs[j]) < key(addrs[j-1]); j-- {
			addrs[j], addrs[j-1] = addrs[j-1], addrs[j]
		}
	}
	r.mu.Unlock()
}

// updateSRTT folds a measurement into the per-server estimate (EWMA with
// BIND-style decay; timeouts penalize multiplicatively).
func (r *Resolver) updateSRTT(addr netip.Addr, rtt time.Duration, timedOut bool) {
	r.count(func(s *Stats) { s.SRTTUpdates++ })
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.srtt[addr]
	switch {
	case timedOut && ok:
		r.srtt[addr] = old*2 + time.Second
	case timedOut:
		r.srtt[addr] = 10 * time.Second
	case ok:
		r.srtt[addr] = (old*7 + rtt*3) / 10
	default:
		r.srtt[addr] = rtt
	}
}

// SRTTStateSize returns how many per-server timing entries the resolver
// maintains (the §4 complexity metric).
func (r *Resolver) SRTTStateSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.srtt)
}
