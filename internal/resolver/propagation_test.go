package resolver

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rootless/internal/authserver"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// captureTransport records the wire form of every upstream query it
// forwards. It deliberately does NOT implement TracedTransport, so the
// resolver exercises the plain-Exchange path (stamp + graft) even over
// netsim.
type captureTransport struct {
	inner Transport
	wires [][]byte
}

func (c *captureTransport) Exchange(dst netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	w, err := q.Pack()
	if err != nil {
		return nil, 0, err
	}
	c.wires = append(c.wires, w)
	return c.inner.Exchange(dst, q)
}

// TestTracePropagateOffByteIdentical pins the off-by-default guarantee:
// with propagation off, a resolver with an enabled tracer sends the
// exact same query bytes as one with tracing fully disabled. (Seeded ID
// generation makes the comparison deterministic.)
func TestTracePropagateOffByteIdentical(t *testing.T) {
	capture := func(traced bool) [][]byte {
		tp := newTopo(t)
		var ct *captureTransport
		r := tp.resolver(t, RootModeHints, func(c *Config) {
			ct = &captureTransport{inner: c.Transport}
			c.Transport = ct
		})
		if traced {
			tr := obs.NewTracer(16, 0)
			tr.SetEnabled(true)
			r.SetTracer(tr)
		}
		if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
		return ct.wires
	}
	plain, traced := capture(false), capture(true)
	if len(plain) == 0 || len(plain) != len(traced) {
		t.Fatalf("query counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if !bytes.Equal(plain[i], traced[i]) {
			t.Errorf("query %d differs with tracing on but propagation off:\n%x\n%x",
				i, plain[i], traced[i])
		}
	}
}

// TestTracePropagateStampsQueries: with propagation on and a trace
// active, every upstream query carries a sampled trace option bearing
// the resolution's trace ID.
func TestTracePropagateStampsQueries(t *testing.T) {
	tp := newTopo(t)
	var ct *captureTransport
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		ct = &captureTransport{inner: c.Transport}
		c.Transport = ct
		c.TracePropagate = true
	})
	tracer := obs.NewTracer(16, 0)
	tracer.SetEnabled(true)
	r.SetTracer(tracer)
	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	recent := tracer.RecentByClass("")
	if len(recent) != 1 {
		t.Fatalf("recorded %d traces", len(recent))
	}
	wantID := recent[0].TraceID
	if wantID == 0 {
		t.Fatal("trace has no ID")
	}
	if len(ct.wires) == 0 {
		t.Fatal("no queries captured")
	}
	for i, w := range ct.wires {
		var q dnswire.Message
		if err := q.Unpack(w); err != nil {
			t.Fatal(err)
		}
		tc, payload, ok := q.TraceOption()
		if !ok || !tc.Sampled {
			t.Fatalf("query %d not stamped (ok=%v sampled=%v)", i, ok, tc.Sampled)
		}
		if tc.TraceID != wantID {
			t.Errorf("query %d trace ID %016x, want %016x", i, tc.TraceID, wantID)
		}
		if tc.SpanID == 0 {
			t.Errorf("query %d has no parent span ID", i)
		}
		if payload != nil {
			t.Errorf("query %d carries a span payload (responses only)", i)
		}
	}

	// Propagation only stamps traced resolutions: a cache-warm repeat
	// resolution that does go upstream for a new name with tracing later
	// disabled must not stamp.
	tracer.SetEnabled(false)
	ct.wires = nil
	if _, err := r.Resolve("text.example.com.", dnswire.TypeTXT); err != nil {
		t.Fatal(err)
	}
	for i, w := range ct.wires {
		var q dnswire.Message
		if err := q.Unpack(w); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := q.TraceOption(); ok {
			t.Errorf("untraced query %d stamped", i)
		}
	}
}

// TestTracePropagationEndToEnd runs a real authserver on a loopback UDP
// socket and a resolver with propagation on against it, then asserts the
// acceptance criterion: a query by trace ID on EITHER daemon's /tracez
// returns the stitched resolution — the resolver's copy with the auth
// span grafted (remote) under its network attempt span, and the auth
// side's joined share under the same ID.
func TestTracePropagationEndToEnd(t *testing.T) {
	z := mustZone(t, rootZoneSrc, dnswire.Root)
	srv := authserver.New(z)
	authTracer := obs.NewTracer(16, 0)
	authTracer.SetEnabled(true)
	srv.SetTracer(authTracer)

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.ServeUDP(ctx, pc) }()
	port := uint16(pc.LocalAddr().(*net.UDPAddr).Port)

	loop := netip.MustParseAddr("127.0.0.1")
	r := New(Config{
		Mode: RootModeHints,
		Hints: []dnswire.RR{
			dnswire.NewRR(dnswire.Root, 3600000, dnswire.NS{Host: "a.root-servers.net."}),
			dnswire.NewRR("a.root-servers.net.", 3600000, dnswire.A{Addr: loop}),
		},
		Transport: &UDPTransport{
			Timeout:       2 * time.Second,
			PortOverrides: map[netip.Addr]uint16{loop: port},
		},
		TracePropagate: true,
		Seed:           7,
	})
	resTracer := obs.NewTracer(16, 0)
	resTracer.SetEnabled(true)
	r.SetTracer(resTracer)

	// ". SOA" is answered authoritatively by the root server itself: one
	// real socket round trip, no referral chasing beyond loopback.
	res, err := r.Resolve(".", dnswire.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeSuccess || len(res.Answers) == 0 {
		t.Fatalf("rcode=%v answers=%d", res.Rcode, len(res.Answers))
	}

	recent := resTracer.RecentByClass("")
	if len(recent) != 1 {
		t.Fatalf("resolver recorded %d traces", len(recent))
	}
	id := recent[0].TraceID
	hexID := obs.FormatTraceID(id)

	// Resolver side: the stitched tree must nest a remote auth span under
	// the resolver's network attempt span.
	resDoc := tracezByID(t, &obs.Admin{Tracer: resTracer, Registry: obs.NewRegistry()}, hexID)
	attempt := findSpan(resDoc, "attempt")
	if attempt == nil {
		t.Fatalf("no attempt span in stitched trace: %s", resDoc)
	}
	var auth map[string]any
	for _, c := range childSpans(attempt) {
		if c["name"] == "auth" {
			auth = c
		}
	}
	if auth == nil {
		t.Fatalf("no auth span under the attempt span: %s", resDoc)
	}
	if auth["remote"] != true || auth["phase"] != "auth" {
		t.Errorf("grafted auth span not marked remote: %v", auth)
	}

	// Auth side: the same trace ID resolves to the joined share, linked
	// to the resolver's parent span.
	// (The UDP serve loop finishes the trace before writing the response,
	// so by the time Resolve returned it is in the ring.)
	authDoc := tracezByID(t, &obs.Admin{Tracer: authTracer, Registry: obs.NewRegistry()}, hexID)
	if findSpan(authDoc, "auth") == nil {
		t.Fatalf("auth daemon has no auth span for trace %s: %s", hexID, authDoc)
	}
	var parsed struct {
		Traces []struct {
			ParentSpanID string `json:"parent_span_id"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(authDoc, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Traces) != 1 || parsed.Traces[0].ParentSpanID == "" {
		t.Errorf("auth-side trace not joined to a parent span: %s", authDoc)
	}

	// The admin contract around the parameter.
	for _, c := range []struct {
		param string
		code  int
	}{{"traceid=zzzz", http.StatusBadRequest}, {"traceid=00000000deadbeef", http.StatusNotFound}} {
		req := httptest.NewRequest("GET", "/tracez?"+c.param, nil)
		rec := httptest.NewRecorder()
		(&obs.Admin{Tracer: resTracer, Registry: obs.NewRegistry()}).Handler().ServeHTTP(rec, req)
		if rec.Code != c.code {
			t.Errorf("/tracez?%s = %d, want %d", c.param, rec.Code, c.code)
		}
	}
}

// tracezByID fetches /tracez?traceid= and returns the body (fatal on
// non-200).
func tracezByID(t *testing.T, a *obs.Admin, hexID string) []byte {
	t.Helper()
	req := httptest.NewRequest("GET", "/tracez?traceid="+hexID, nil)
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/tracez?traceid=%s = %d: %s", hexID, rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	return rec.Body.Bytes()
}

// findSpan depth-first searches the stitched /tracez?traceid= document
// for a span with the given name.
func findSpan(doc []byte, name string) map[string]any {
	var parsed struct {
		Traces []struct {
			Spans []map[string]any `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		return nil
	}
	var walk func(spans []map[string]any) map[string]any
	walk = func(spans []map[string]any) map[string]any {
		for _, s := range spans {
			if s["name"] == name {
				return s
			}
			if found := walk(childSpans(s)); found != nil {
				return found
			}
		}
		return nil
	}
	for _, tr := range parsed.Traces {
		if found := walk(tr.Spans); found != nil {
			return found
		}
	}
	return nil
}

func childSpans(s map[string]any) []map[string]any {
	raw, _ := s["children"].([]any)
	out := make([]map[string]any, 0, len(raw))
	for _, c := range raw {
		if m, ok := c.(map[string]any); ok {
			out = append(out, m)
		}
	}
	return out
}
