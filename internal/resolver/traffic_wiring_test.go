package resolver

import (
	"strings"
	"testing"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
)

// TestResolverTrafficWiring pins the hot-path analyzer hook: every
// Resolve call is classified (valid and junk alike), traces carry the
// class tag so /tracez can filter on it, and Collect republishes the
// composition as rootless_traffic_* metrics.
func TestResolverTrafficWiring(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	tracer := obs.NewTracer(8, 0)
	tracer.SetEnabled(true)
	r.SetTracer(tracer)
	an := traffic.NewAnalyzer(traffic.NewTLDSet([]dnswire.Name{"com.", "net."}), 8)
	r.SetTraffic(an)

	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	_, _ = r.Resolve("printer.local.", dnswire.TypeA) // junk: outcome is irrelevant

	counts := an.Counts()
	if counts[traffic.ClassValid] != 1 || counts[traffic.ClassBogusTLD] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if an.Observed() != 2 {
		t.Fatalf("observed = %d", an.Observed())
	}

	bogus := tracer.RecentByClass("bogus_tld")
	if len(bogus) != 1 || bogus[0].Qname != "printer.local." {
		t.Fatalf("class-filtered traces = %+v", bogus)
	}
	if valid := tracer.RecentByClass("valid"); len(valid) != 1 || valid[0].Qname != "www.example.com." {
		t.Fatalf("valid traces = %+v", valid)
	}

	reg := obs.NewRegistry()
	reg.AddCollector(r)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`rootless_traffic_class_total{class="valid"} 1`,
		`rootless_traffic_class_total{class="bogus_tld"} 1`,
		`rootless_traffic_observed_total 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestResolverTrafficCoalesceWaiters: waiters of a coalesced flight are
// real arriving queries, so each one must count in the composition.
func TestResolverTrafficCoalesceWaiters(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints, func(c *Config) { c.Coalesce = true })
	an := traffic.NewAnalyzer(traffic.NewTLDSet([]dnswire.Name{"com."}), 8)
	r.SetTraffic(an)
	for i := 0; i < 3; i++ {
		if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if an.Observed() != 3 {
		t.Fatalf("observed = %d, want every Resolve call counted", an.Observed())
	}
	// Identical back-to-back names are repeats once the duplicate filter
	// has seen the first one.
	counts := an.Counts()
	if counts[traffic.ClassValid]+counts[traffic.ClassValidRepeat] != 3 || counts[traffic.ClassValidRepeat] < 2 {
		t.Fatalf("counts = %v", counts)
	}
}
