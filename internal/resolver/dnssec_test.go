package resolver

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"rootless/internal/dnssec"
	"rootless/internal/dnssec/validator"
	"rootless/internal/dnswire"
	"rootless/internal/faults"
)

type sigRand struct{ r *rand.Rand }

func (d sigRand) Read(p []byte) (int, error) { return d.r.Read(p) }

// signRoot signs the topology's root zone in place (with an NSEC chain)
// and returns the signer whose KSK is the trust anchor. The root servers
// share the zone pointer, so they serve the signed data immediately. The
// TLDs stay unsigned and carry no DS, making com. and org. provably
// insecure delegations — the islands-of-security shape the paper's
// transition argument assumes.
func signRoot(t testing.TB, tp *topo) *dnssec.Signer {
	t.Helper()
	s, err := dnssec.NewSigner(dnswire.Root, sigRand{rand.New(rand.NewSource(11))})
	if err != nil {
		t.Fatal(err)
	}
	s.AddNSEC = true
	if err := s.SignZone(tp.rootZone, tp.start); err != nil {
		t.Fatal(err)
	}
	return s
}

// withValidation turns on DNSSEC validation anchored at the signer.
func withValidation(s *dnssec.Signer, pol validator.Policy) func(*Config) {
	return func(c *Config) {
		c.Validate = pol
		c.TrustAnchor = s.TrustAnchor()
	}
}

func TestValidateStrictSecureAndInsecureChains(t *testing.T) {
	tp := newTopo(t)
	signer := signRoot(t, tp)
	r := tp.resolver(t, RootModeHints, withValidation(signer, validator.PolicyStrict))

	// Root-zone data validates all the way from the anchor: AD set.
	res, err := r.Resolve("a.root-servers.net.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("signed root data: res=%+v err=%v", res, err)
	}
	if !res.AuthData {
		t.Error("validated root answer should carry AD")
	}
	st := r.Stats()
	if st.SecureAnswers == 0 {
		t.Errorf("SecureAnswers = %d, want > 0", st.SecureAnswers)
	}
	if st.DNSKEYFetches != 1 {
		t.Errorf("DNSKEYFetches = %d, want 1", st.DNSKEYFetches)
	}

	// A cache hit for the same name is served without AD: the cache keeps
	// records, not chain state.
	res, err = r.Resolve("a.root-servers.net.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 0 || res.AuthData {
		t.Errorf("cache hit: queries=%d AD=%v, want 0 and false", res.Queries, res.AuthData)
	}

	// com. has no DS and the root's NSEC proves it: everything below is
	// Insecure — served fine, never AD, and never bogus under strict.
	res, err = r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("insecure-subtree name: res=%+v err=%v", res, err)
	}
	if res.AuthData {
		t.Error("answer below an insecure delegation must not carry AD")
	}
	st = r.Stats()
	if st.InsecureAnswers == 0 {
		t.Errorf("InsecureAnswers = %d, want > 0", st.InsecureAnswers)
	}
	if st.BogusAnswers != 0 || st.BogusRejected != 0 {
		t.Errorf("bogus counters = %d/%d, want 0/0", st.BogusAnswers, st.BogusRejected)
	}
}

// TestNSECAggressiveAbsorbsBogusTLD mirrors TestNXDomainCutAbsorbsBogusTLD
// for the validated path: one proven NXDOMAIN caches the root NSEC range,
// and every later name inside that range — including under *other* bogus
// TLDs — is synthesized locally with zero upstream queries (RFC 8198).
func TestNSECAggressiveAbsorbsBogusTLD(t *testing.T) {
	tp := newTopo(t)
	signer := signRoot(t, tp)
	r := tp.resolver(t, RootModeHints, withValidation(signer, validator.PolicyStrict),
		func(c *Config) { c.NSECAggressive = true })

	res, err := r.Resolve("one.invalid-zz.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain || res.Queries == 0 {
		t.Fatalf("first bogus lookup: rcode=%v queries=%d", res.Rcode, res.Queries)
	}
	if !res.AuthData {
		t.Error("validated NXDOMAIN should carry AD")
	}

	// The com.→org. NSEC covers every name in the gap, not just the TLD
	// that was queried: invalid-zz. repeats AND a different bogus TLD
	// (dd.) are all absorbed without any network traffic.
	before := r.Stats()
	for _, name := range []dnswire.Name{"two.invalid-zz.", "a.b.invalid-zz.", "invalid-zz.", "foo.dd."} {
		res, err := r.Resolve(name, dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rcode != dnswire.RcodeNXDomain {
			t.Fatalf("%s: rcode = %v", name, res.Rcode)
		}
		if res.Queries != 0 {
			t.Errorf("%s hit upstream (%d queries) despite validated NSEC range", name, res.Queries)
		}
		if !res.AuthData {
			t.Errorf("%s: synthesized denial should carry AD", name)
		}
	}
	after := r.Stats()
	if after.TotalQueries != before.TotalQueries {
		t.Errorf("range-covered lookups sent %d network queries", after.TotalQueries-before.TotalQueries)
	}
	if got := after.NSECSynthesized - before.NSECSynthesized; got != 4 {
		t.Errorf("NSECSynthesized = %d, want 4", got)
	}

	// Real names are untouched: www.example.com. sits below the com.
	// delegation, which the parent-side NSEC must not deny (RFC 8198 §5.1).
	if res, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("real name with NSEC ranges cached: res=%+v err=%v", res, err)
	}

	// Past the NSEC TTL (86400 s) the proof is stale and lookups go
	// upstream again.
	tp.net.Advance(25 * time.Hour)
	pre := r.Stats().TotalQueries
	res, err = r.Resolve("three.invalid-zz.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("post-expiry rcode = %v", res.Rcode)
	}
	if r.Stats().TotalQueries == pre {
		t.Error("expired NSEC range still answered from cache")
	}
}

// TestNSECRangesSurviveFlush pins the property NXDomainCut lacks: the
// proofs are cryptographic, so flushing the observational cache does not
// reopen the junk floodgate.
func TestNSECRangesSurviveFlush(t *testing.T) {
	tp := newTopo(t)
	signer := signRoot(t, tp)
	r := tp.resolver(t, RootModeHints, withValidation(signer, validator.PolicyStrict),
		func(c *Config) { c.NSECAggressive = true })

	if _, err := r.Resolve("one.invalid-zz.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	r.cache.Flush()
	pre := r.Stats().TotalQueries
	res, err := r.Resolve("two.invalid-zz.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain || res.Queries != 0 || r.Stats().TotalQueries != pre {
		t.Errorf("after Flush: rcode=%v queries=%d, want synthesized NXDOMAIN with zero upstream", res.Rcode, res.Queries)
	}
}

func TestForgedAnswerStrictRejected(t *testing.T) {
	tp := newTopo(t)
	signer := signRoot(t, tp)
	in := faults.NewInjector(1)
	in.Add(faults.Rule{Kind: faults.ForgedAnswer}) // every host spoofs
	tp.net.SetFaultPolicy(in)
	r := tp.resolver(t, RootModeHints, withValidation(signer, validator.PolicyStrict))

	_, err := r.Resolve("a.root-servers.net.", dnswire.TypeA)
	if !errors.Is(err, ErrBogus) {
		t.Fatalf("forged answer under strict: err = %v, want ErrBogus", err)
	}
	st := r.Stats()
	if st.BogusAnswers == 0 || st.BogusRejected == 0 {
		t.Errorf("bogus counters = %d/%d, want both > 0", st.BogusAnswers, st.BogusRejected)
	}
	// Nothing from the forgery may have reached the cache.
	if hit, ok := r.cache.Get("a.root-servers.net.", dnswire.TypeA); ok {
		for _, rr := range hit.CopyRRs() {
			if a, isA := rr.Data.(dnswire.A); isA && a.Addr == faults.ForgedAddr {
				t.Fatal("forged address poisoned the cache under strict policy")
			}
		}
	}

	// Once the attacker is gone, the same resolver recovers.
	in.Clear()
	res, err := r.Resolve("a.root-servers.net.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess || !res.AuthData {
		t.Fatalf("after attack: res=%+v err=%v, want validated success", res, err)
	}
}

func TestForgedAnswerPermissiveServedWithoutAD(t *testing.T) {
	tp := newTopo(t)
	signer := signRoot(t, tp)
	in := faults.NewInjector(1)
	in.Add(faults.Rule{Kind: faults.ForgedAnswer})
	tp.net.SetFaultPolicy(in)
	r := tp.resolver(t, RootModeHints, withValidation(signer, validator.PolicyPermissive))

	// Permissive counts the failure but serves the (poisoned) answer —
	// the rollout mode's documented trade.
	res, err := r.Resolve("a.root-servers.net.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("permissive forged: res=%+v err=%v", res, err)
	}
	if res.AuthData {
		t.Error("bogus answer must not carry AD")
	}
	if len(res.Answers) == 0 || res.Answers[0].Data.(dnswire.A).Addr != faults.ForgedAddr {
		t.Fatalf("expected the forged answer to be served, got %+v", res.Answers)
	}
	st := r.Stats()
	if st.BogusAnswers == 0 {
		t.Errorf("BogusAnswers = %d, want > 0", st.BogusAnswers)
	}
	if st.BogusRejected != 0 {
		t.Errorf("BogusRejected = %d, want 0 under permissive", st.BogusRejected)
	}
}

func TestTamperedRRSIGStrictRejected(t *testing.T) {
	tp := newTopo(t)
	signer := signRoot(t, tp)
	in := faults.NewInjector(1)
	in.Add(faults.Rule{Kind: faults.TamperSig})
	tp.net.SetFaultPolicy(in)
	r := tp.resolver(t, RootModeHints, withValidation(signer, validator.PolicyStrict))

	// The on-path attacker leaves the records intact and corrupts only
	// signature bytes: structurally valid, cryptographically dead.
	_, err := r.Resolve("a.root-servers.net.", dnswire.TypeA)
	if !errors.Is(err, ErrBogus) {
		t.Fatalf("tampered RRSIG under strict: err = %v, want ErrBogus", err)
	}
	if st := in.Stats(); st.SigTampers == 0 {
		t.Error("injector reported no tampered replies")
	}
}

func TestValidateOffUnchanged(t *testing.T) {
	tp := newTopo(t)
	signRoot(t, tp)
	// No Validate option: PolicyOff. Signed zones resolve exactly as
	// before, no validation stats move, and AD stays clear.
	r := tp.resolver(t, RootModeHints)
	res, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if res.AuthData {
		t.Error("AD set with validation off")
	}
	st := r.Stats()
	if st.SecureAnswers != 0 || st.InsecureAnswers != 0 || st.DNSKEYFetches != 0 {
		t.Errorf("validation counters moved with PolicyOff: %+v", st)
	}
}

// TestLookasideLocalZoneVerified pins the paper's §3 out-of-band path: a
// resolver consulting a VerifyZone-checked local root copy answers root
// data with AD, while an unverifiable copy is served without it.
// (Preload mode moves the same records into the plain cache, which never
// claims AD — only the live zone consult carries the verified status.)
func TestLookasideLocalZoneVerified(t *testing.T) {
	tp := newTopo(t)
	signer := signRoot(t, tp)
	r := tp.resolver(t, RootModeLookaside, withValidation(signer, validator.PolicyStrict))
	res, err := r.Resolve("a.root-servers.net.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("lookaside resolve: res=%+v err=%v", res, err)
	}
	if res.Queries != 0 {
		t.Errorf("lookaside used %d network queries for root data", res.Queries)
	}
	if !res.AuthData {
		t.Error("VerifyZone-checked local copy should answer with AD")
	}

	// Same setup, wrong anchor: the copy cannot be verified, answers are
	// still served (availability) but never claim authenticity.
	other, err := dnssec.NewSigner(dnswire.Root, sigRand{rand.New(rand.NewSource(12))})
	if err != nil {
		t.Fatal(err)
	}
	r2 := tp.resolver(t, RootModeLookaside, withValidation(other, validator.PolicyStrict))
	res, err = r2.Resolve("a.root-servers.net.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("unverified lookaside resolve: res=%+v err=%v", res, err)
	}
	if res.AuthData {
		t.Error("unverifiable local copy must not claim AD")
	}
}
