package resolver

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rootless/internal/cache"
	"rootless/internal/dnswire"
)

// TestNXDomainCutAbsorbsBogusTLD pins the aggressive-negative-caching
// satellite: once the root proves a TLD does not exist, every later name
// under that TLD — not just the exact qname — is answered from cache
// until the negative TTL runs out. This is what makes the paper's §2.2
// junk traffic (61% bogus TLDs) absorbable at the resolver.
func TestNXDomainCutAbsorbsBogusTLD(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints, func(c *Config) { c.NXDomainCut = true })

	res, err := r.Resolve("one.invalid-zz.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain || res.Queries == 0 {
		t.Fatalf("first bogus lookup: rcode=%v queries=%d", res.Rcode, res.Queries)
	}

	// Distinct names under the same bogus TLD must never reach upstream
	// within the negative TTL — the cut covers the whole subtree.
	before := r.Stats()
	for _, name := range []dnswire.Name{"two.invalid-zz.", "a.b.invalid-zz.", "invalid-zz."} {
		res, err := r.Resolve(name, dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rcode != dnswire.RcodeNXDomain {
			t.Fatalf("%s: rcode = %v", name, res.Rcode)
		}
		if res.Queries != 0 {
			t.Errorf("%s hit upstream (%d queries) despite NXDOMAIN cut", name, res.Queries)
		}
	}
	after := r.Stats()
	if after.TotalQueries != before.TotalQueries {
		t.Errorf("cut-covered lookups sent %d network queries", after.TotalQueries-before.TotalQueries)
	}
	if after.NXDomainCutHits != 3 {
		// All three — including the TLD itself — land on the cut entry.
		t.Errorf("NXDomainCutHits = %d, want 3", after.NXDomainCutHits)
	}

	// Real names are untouched by the cut.
	if res, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("real name after cut: res=%+v err=%v", res, err)
	}

	// The cut honours the root SOA minimum (3600 s): past it, lookups go
	// upstream again.
	tp.net.Advance(2 * time.Hour)
	pre := r.Stats().TotalQueries
	res, err = r.Resolve("three.invalid-zz.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("post-expiry rcode = %v", res.Rcode)
	}
	if r.Stats().TotalQueries == pre {
		t.Error("expired NXDOMAIN cut still answered from cache")
	}
}

// TestNXDomainCutRequiresRootSOA verifies the RFC 8020 inference is only
// drawn from the root: an NXDOMAIN whose SOA is a deeper zone (here
// example.com.) proves nothing about the TLD, so no cut may be cached.
func TestNXDomainCutRequiresRootSOA(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints, func(c *Config) { c.NXDomainCut = true })

	if res, err := r.Resolve("nope.example.com.", dnswire.TypeA); err != nil || res.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	// A different nonexistent sibling must still consult upstream.
	before := r.Stats()
	if res, err := r.Resolve("alsonope.example.com.", dnswire.TypeA); err != nil || res.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	after := r.Stats()
	if after.NXDomainCutHits != 0 {
		t.Errorf("NXDomainCutHits = %d after non-root NXDOMAIN", after.NXDomainCutHits)
	}
	if after.TotalQueries == before.TotalQueries {
		t.Error("sibling of a non-root NXDOMAIN was wrongly absorbed")
	}
	// And the real subtree is intact.
	if res, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("real name: res=%+v err=%v", res, err)
	}
}

// TestNXDomainCutLocalModes: with a local copy of the root zone the cut
// comes from the local consult, so bogus TLD floods cost zero network
// queries from the second distinct name onward — and zero root queries
// always.
func TestNXDomainCutLocalModes(t *testing.T) {
	for _, mode := range []RootMode{RootModePreload, RootModeLookaside} {
		t.Run(mode.String(), func(t *testing.T) {
			tp := newTopo(t)
			r := tp.resolver(t, mode, func(c *Config) { c.NXDomainCut = true })
			names := []dnswire.Name{"a.printer-zz.", "b.printer-zz.", "c.d.printer-zz."}
			for _, name := range names {
				res, err := r.Resolve(name, dnswire.TypeA)
				if err != nil {
					t.Fatal(err)
				}
				if res.Rcode != dnswire.RcodeNXDomain || res.Queries != 0 {
					t.Fatalf("%s: rcode=%v queries=%d", name, res.Rcode, res.Queries)
				}
			}
			st := r.Stats()
			if st.RootQueries != 0 || st.TotalQueries != 0 {
				t.Errorf("local mode sent traffic: root=%d total=%d", st.RootQueries, st.TotalQueries)
			}
			if st.NXDomainCutHits != 2 {
				t.Errorf("NXDomainCutHits = %d, want 2", st.NXDomainCutHits)
			}
		})
	}
}

// blockingTransport parks Exchange for queries about one name until
// released, letting tests hold the admission gate occupied at a precise
// point. All other queries pass straight through.
type blockingTransport struct {
	inner   Transport
	name    dnswire.Name
	started chan struct{} // closed once the blocked query arrives
	release chan struct{} // close to let it proceed
	once    sync.Once
}

func (b *blockingTransport) Exchange(dst netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	if len(q.Questions) == 1 && q.Questions[0].Name == b.name {
		b.once.Do(func() { close(b.started) })
		<-b.release
	}
	return b.inner.Exchange(dst, q)
}

// slowTransport adds a fixed real-time delay to every exchange, opening
// a window in which concurrent identical queries overlap — the condition
// coalescing and the admission gate exist for. (netsim itself only
// advances virtual time, so without this everything finishes instantly.)
type slowTransport struct {
	inner Transport
	delay time.Duration
}

func (s slowTransport) Exchange(dst netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	time.Sleep(s.delay)
	return s.inner.Exchange(dst, q)
}

// TestAdmissionGateSheds: with the one admission slot held by an in-flight
// resolution, a second cache-missing resolution is shed with ErrOverloaded
// — but cache hits keep flowing, because the gate only guards upstream
// work.
func TestAdmissionGateSheds(t *testing.T) {
	tp := newTopo(t)
	bt := &blockingTransport{
		inner:   tp.net.Client(locClient),
		name:    "hang.example.com.",
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.Transport = bt
		c.MaxInflight = 1 // QueueDeadline 0: shed immediately when full
	})
	// Warm the delegation chain and one answer.
	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := r.Resolve("hang.example.com.", dnswire.TypeA)
		if err != nil || res.Rcode != dnswire.RcodeNXDomain {
			t.Errorf("blocked resolution finished res=%+v err=%v", res, err)
		}
	}()
	<-bt.started // the single slot is now held inside Exchange

	// Upstream-needing work is shed...
	if _, err := r.Resolve("text.example.com.", dnswire.TypeTXT); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	// ...but cache hits never touch the gate.
	res, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil || !res.FromCache {
		t.Fatalf("cache hit during overload: res=%+v err=%v", res, err)
	}

	close(bt.release)
	wg.Wait()
	st := r.Stats()
	if st.ShedResolutions != 1 {
		t.Errorf("ShedResolutions = %d, want 1", st.ShedResolutions)
	}
	// The slot was released: upstream work flows again.
	if _, err := r.Resolve("text.example.com.", dnswire.TypeTXT); err != nil {
		t.Fatalf("post-overload resolution failed: %v", err)
	}
}

// TestShedFallsBackToServeStale pins the RFC 8767 interplay: a shed
// resolution with an expired cache entry degrades to the stale answer
// (re-stamped with cache.StaleTTL) instead of failing — load shedding
// looks like slightly old data, not an outage.
func TestShedFallsBackToServeStale(t *testing.T) {
	tp := newTopo(t)
	bt := &blockingTransport{
		inner:   tp.net.Client(locClient),
		name:    "hang.example.com.",
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.Transport = bt
		c.MaxInflight = 1
		c.ServeStale = true
	})
	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// Let the answer (TTL 3600) expire; the delegations (TTL 172800) stay.
	tp.net.Advance(2 * time.Hour)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = r.Resolve("hang.example.com.", dnswire.TypeA)
	}()
	<-bt.started

	res, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("shed resolution with stale data failed: %v", err)
	}
	if res.Rcode != dnswire.RcodeSuccess || len(res.Answers) != 1 {
		t.Fatalf("stale fallback res = %+v", res)
	}
	if got := res.Answers[0].TTL; got != uint32(cache.StaleTTL/time.Second) {
		t.Errorf("stale answer TTL = %d, want %d", got, uint32(cache.StaleTTL/time.Second))
	}
	close(bt.release)
	wg.Wait()
	st := r.Stats()
	if st.StaleAnswers == 0 || st.ShedResolutions == 0 {
		t.Errorf("StaleAnswers=%d ShedResolutions=%d, want both > 0", st.StaleAnswers, st.ShedResolutions)
	}
}

// TestCoalesceSharesOneFlight: concurrent identical queries ride one
// upstream resolution. The blocking transport guarantees all waiters
// arrive while the leader is in flight.
func TestCoalesceSharesOneFlight(t *testing.T) {
	tp := newTopo(t)
	bt := &blockingTransport{
		inner:   tp.net.Client(locClient),
		name:    "www.example.com.",
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.Transport = bt
		c.Coalesce = true
	})

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*Result, callers)
	resolveOne := func(i int) {
		defer wg.Done()
		res, err := r.Resolve("www.example.com.", dnswire.TypeA)
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
			return
		}
		results[i] = res
	}
	wg.Add(1)
	go resolveOne(0) // the leader
	<-bt.started     // leader is parked inside Exchange, flight registered
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go resolveOne(i)
	}
	// The flight stays registered while the leader is parked, so every
	// follower must join it; wait until all have, then let them land.
	for r.flight.Stats().Waiters < callers-1 {
		time.Sleep(time.Millisecond)
	}
	close(bt.release)
	wg.Wait()

	st := r.Stats()
	if st.Resolutions != callers {
		t.Errorf("Resolutions = %d, want %d (waiters count too)", st.Resolutions, callers)
	}
	if st.CoalescedResolutions != callers-1 {
		t.Errorf("CoalescedResolutions = %d, want %d", st.CoalescedResolutions, callers-1)
	}
	// Coalescing means exactly one resolution paid for the network.
	if fs := r.flight.Stats(); fs.Leaders != 1 {
		t.Errorf("flight leaders = %d, want 1", fs.Leaders)
	}
	for i, res := range results {
		if res == nil || res.Rcode != dnswire.RcodeSuccess {
			t.Fatalf("caller %d result = %+v", i, res)
		}
		if len(res.Answers) != 1 {
			t.Fatalf("caller %d answers = %+v", i, res.Answers)
		}
	}
}
