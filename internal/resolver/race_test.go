package resolver

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"sync"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// TestConcurrentResolveAndScrape hammers one Resolver from many goroutines
// the way resolverd's UDP server does (one goroutine per query) while
// other goroutines scrape Stats, Collect, and the tracer — the exact
// interleaving an admin /metrics scrape produces in production. Run with
// -race; it pins the "Safe for concurrent use" claim on Resolver.
func TestConcurrentResolveAndScrape(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	reg := obs.NewRegistry()
	r.Instrument(reg)
	tr := obs.NewTracer(16, 0)
	tr.SetEnabled(true)
	r.SetTracer(tr)

	names := []dnswire.Name{
		"www.example.com.", "alias.example.com.", "text.example.com.",
		"deep.sub.example.com.", "nope.example.com.", "example.com.",
	}
	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qname := names[(w+i)%len(names)]
				qtype := dnswire.TypeA
				if qname == "text.example.com." {
					qtype = dnswire.TypeTXT
				}
				_, _ = r.Resolve(qname, qtype)
			}
		}(w)
	}
	// Scrapers run concurrently with the resolvers.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = r.Stats()
				_ = r.SRTTStateSize()
				_, _, _ = r.LocalZoneStatus()
				scrapeReg := obs.NewRegistry()
				r.Collect(scrapeReg)
				_ = tr.Recent()
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	st := r.Stats()
	if st.Resolutions < workers*perWorker {
		t.Fatalf("Resolutions = %d, want >= %d", st.Resolutions, workers*perWorker)
	}
	if tr.Seen() == 0 {
		t.Fatal("tracer saw no resolutions")
	}
}

// TestConcurrentCoalescedResolve hammers the overload machinery under
// -race: singleflight coalescing, the admission gate (with queue waits
// and sheds), the NXDOMAIN cut, and metric scrapes all interleave. A slow
// transport keeps resolutions overlapping so flights genuinely coalesce
// and the gate genuinely fills. The invariant: every Resolve call counts
// exactly one Resolution, whether it led, coalesced, or was shed.
func TestConcurrentCoalescedResolve(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.Transport = slowTransport{inner: tp.net.Client(locClient), delay: 200 * time.Microsecond}
		c.Coalesce = true
		c.MaxInflight = 4
		c.QueueDeadline = 50 * time.Millisecond
		c.NXDomainCut = true
		c.ServeStale = true
	})
	reg := obs.NewRegistry()
	r.Instrument(reg)

	names := []dnswire.Name{
		"www.example.com.", "alias.example.com.", "text.example.com.",
		"deep.sub.example.com.", "nope.example.com.",
		"junk.printer-zz.", // bogus TLD: establishes the NXDOMAIN cut
	}
	const workers = 12
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qname := names[(w*3+i)%len(names)]
				if (w+i)%8 == 7 {
					// A never-repeated label under the bogus TLD: only the
					// cut (not the exact-name negative cache) can absorb it.
					qname = dnswire.Name(fmt.Sprintf("u%d-%d.printer-zz.", w, i))
				}
				_, err := r.Resolve(qname, dnswire.TypeA)
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("%s: %v", qname, err)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = r.Stats()
				scrapeReg := obs.NewRegistry()
				r.Collect(scrapeReg)
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	st := r.Stats()
	if st.Resolutions != workers*perWorker {
		t.Fatalf("Resolutions = %d, want exactly %d", st.Resolutions, workers*perWorker)
	}
	if st.CoalescedResolutions == 0 {
		t.Error("overlapping identical queries never coalesced")
	}
	if st.NXDomainCutHits == 0 {
		t.Error("bogus-TLD queries never hit the NXDOMAIN cut")
	}
}

// TestAllCounterWritesUseCount parses every non-test file in the package
// and verifies every access to the stats field goes through count() or
// the Stats() snapshot — the single-mutation-path rule that makes the
// Stats struct safe to grow without auditing lock sites.
func TestAllCounterWritesUseCount(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{"Stats": true, "count": true}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "stats" {
						return true
					}
					if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "r" {
						return true
					}
					if !allowed[fd.Name.Name] {
						pos := fset.Position(sel.Pos())
						t.Errorf("%s accesses r.stats directly at %s; route it through count()",
							fd.Name.Name, pos)
					}
					return true
				})
			}
		}
	}
}

// TestConcurrentHealthState hammers the per-server backoff/hold-down
// machinery: workers resolve against a half-dead topology (every failure
// mutates health state) while others flap the dead servers and scrapers
// read HealthCounts/Collect. Run with -race; it pins the concurrency
// safety of the circuit-breaker state.
func TestConcurrentHealthState(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetAddrDown(rootV4, true)
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.HoldDown = 5 * time.Second // short, so trips and probes interleave
	})
	reg := obs.NewRegistry()
	r.Instrument(reg)

	names := []dnswire.Name{
		"www.example.com.", "alias.example.com.", "nope.example.com.",
		"example.com.", "deep.sub.example.com.",
	}
	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, _ = r.Resolve(names[(w+i)%len(names)], dnswire.TypeA)
			}
		}(w)
	}
	done := make(chan struct{})
	var auxWG sync.WaitGroup
	auxWG.Add(1)
	go func() { // flap the second root so successes and failures interleave
		defer auxWG.Done()
		down := true
		for {
			select {
			case <-done:
				return
			default:
			}
			tp.net.SetAddrDown(root2V4, down)
			down = !down
		}
	}()
	for s := 0; s < 2; s++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_, _ = r.HealthCounts()
				scrapeReg := obs.NewRegistry()
				r.Collect(scrapeReg)
			}
		}()
	}
	wg.Wait()
	close(done)
	auxWG.Wait()

	st := r.Stats()
	if st.Resolutions < workers*perWorker {
		t.Fatalf("Resolutions = %d, want >= %d", st.Resolutions, workers*perWorker)
	}
	if st.Timeouts == 0 {
		t.Fatal("expected timeouts against the dead root")
	}
}

// TestSRTTUpdatesCounted pins the audit fix: updateSRTT must bump
// SRTTUpdates through count(), so concurrent scrapes never see a torn
// counter and the increment shows up in Stats.
func TestSRTTUpdatesCounted(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.SRTTUpdates == 0 {
		t.Fatal("SRTTUpdates not incremented by a resolution that sent queries")
	}
	if st.SRTTUpdates < int64(r.SRTTStateSize()) {
		t.Fatalf("SRTTUpdates = %d < srtt entries %d", st.SRTTUpdates, r.SRTTStateSize())
	}
}
