package resolver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sync"
	"testing"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// TestConcurrentResolveAndScrape hammers one Resolver from many goroutines
// the way resolverd's UDP server does (one goroutine per query) while
// other goroutines scrape Stats, Collect, and the tracer — the exact
// interleaving an admin /metrics scrape produces in production. Run with
// -race; it pins the "Safe for concurrent use" claim on Resolver.
func TestConcurrentResolveAndScrape(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	reg := obs.NewRegistry()
	r.Instrument(reg)
	tr := obs.NewTracer(16, 0)
	tr.SetEnabled(true)
	r.SetTracer(tr)

	names := []dnswire.Name{
		"www.example.com.", "alias.example.com.", "text.example.com.",
		"deep.sub.example.com.", "nope.example.com.", "example.com.",
	}
	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qname := names[(w+i)%len(names)]
				qtype := dnswire.TypeA
				if qname == "text.example.com." {
					qtype = dnswire.TypeTXT
				}
				_, _ = r.Resolve(qname, qtype)
			}
		}(w)
	}
	// Scrapers run concurrently with the resolvers.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = r.Stats()
				_ = r.SRTTStateSize()
				_, _, _ = r.LocalZoneStatus()
				scrapeReg := obs.NewRegistry()
				r.Collect(scrapeReg)
				_ = tr.Recent()
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	st := r.Stats()
	if st.Resolutions < workers*perWorker {
		t.Fatalf("Resolutions = %d, want >= %d", st.Resolutions, workers*perWorker)
	}
	if tr.Seen() == 0 {
		t.Fatal("tracer saw no resolutions")
	}
}

// TestAllCounterWritesUseCount parses resolver.go and verifies every
// access to the stats field goes through count() or the Stats() snapshot —
// the single-mutation-path rule that makes the Stats struct safe to grow
// without auditing lock sites.
func TestAllCounterWritesUseCount(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "resolver.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{"Stats": true, "count": true}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "stats" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "r" {
				return true
			}
			if !allowed[fd.Name.Name] {
				pos := fset.Position(sel.Pos())
				t.Errorf("%s accesses r.stats directly at %s; route it through count()",
					fd.Name.Name, pos)
			}
			return true
		})
	}
}

// TestSRTTUpdatesCounted pins the audit fix: updateSRTT must bump
// SRTTUpdates through count(), so concurrent scrapes never see a torn
// counter and the increment shows up in Stats.
func TestSRTTUpdatesCounted(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.SRTTUpdates == 0 {
		t.Fatal("SRTTUpdates not incremented by a resolution that sent queries")
	}
	if st.SRTTUpdates < int64(r.SRTTStateSize()) {
		t.Fatalf("SRTTUpdates = %d < srtt entries %d", st.SRTTUpdates, r.SRTTStateSize())
	}
}
