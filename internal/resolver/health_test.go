package resolver

import (
	"errors"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/faults"
	"rootless/internal/netsim"
	"rootless/internal/obs"
)

// resolveFail runs a resolution that is expected to fail and returns the
// error.
func resolveFail(t *testing.T, r *Resolver, name dnswire.Name) error {
	t.Helper()
	_, err := r.Resolve(name, dnswire.TypeA)
	if err == nil {
		t.Fatalf("resolving %s unexpectedly succeeded", name)
	}
	return err
}

func TestTypedErrorTimeout(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetAddrDown(rootV4, true)
	tp.net.SetAddrDown(root2V4, true)
	r := tp.resolver(t, RootModeHints)
	err := resolveFail(t, r, "www.example.com.")
	if !errors.Is(err, ErrAllServersFail) {
		t.Errorf("err = %v, want ErrAllServersFail", err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want wrapped ErrTimeout", err)
	}
	if errors.Is(err, ErrLame) {
		t.Errorf("err = %v, should not be ErrLame", err)
	}
}

func TestTypedErrorLame(t *testing.T) {
	tp := newTopo(t)
	in := faults.NewInjector(1)
	in.Add(faults.Rule{Target: faults.Target{Addr: rootV4}, Kind: faults.ServFail})
	in.Add(faults.Rule{Target: faults.Target{Addr: root2V4}, Kind: faults.Refused})
	tp.net.SetFaultPolicy(in)
	r := tp.resolver(t, RootModeHints)
	err := resolveFail(t, r, "www.example.com.")
	if !errors.Is(err, ErrAllServersFail) {
		t.Errorf("err = %v, want ErrAllServersFail", err)
	}
	if !errors.Is(err, ErrLame) {
		t.Errorf("err = %v, want wrapped ErrLame", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, should not be ErrTimeout", err)
	}
	if st := r.Stats(); st.LameResponses < 2 {
		t.Errorf("LameResponses = %d, want >= 2", st.LameResponses)
	}
}

func TestHoldDownTripsAndSkips(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetAddrDown(rootV4, true)
	tp.net.SetAddrDown(root2V4, true)
	tr := obs.NewTracer(16, 0)
	tr.SetEnabled(true)
	r := tp.resolver(t, RootModeHints)
	r.SetTracer(tr)

	// Three failed resolutions bring both roots to the default threshold.
	for i := 0; i < 3; i++ {
		resolveFail(t, r, "www.example.com.")
	}
	st := r.Stats()
	if st.HoldDowns != 2 {
		t.Fatalf("HoldDowns = %d, want 2 (both roots tripped)", st.HoldDowns)
	}
	if held, _ := r.HealthCounts(); held != 2 {
		t.Fatalf("held = %d, want 2", held)
	}

	// With every server held, the next resolution force-probes exactly one
	// instead of burning a timeout per server.
	before := r.Stats().TotalQueries
	resolveFail(t, r, "www.example.com.")
	st = r.Stats()
	if got := st.TotalQueries - before; got != 1 {
		t.Errorf("all-held resolution sent %d queries, want 1 (the probe)", got)
	}
	if st.Probes == 0 {
		t.Error("Probes not counted")
	}
	if st.HeldDownSkips == 0 {
		t.Error("HeldDownSkips not counted")
	}

	// The hold-down and probe decisions must be visible in the trace.
	kinds := map[string]bool{}
	for _, trace := range tr.Recent() {
		for _, ev := range trace.Events {
			kinds[ev.Kind] = true
		}
	}
	for _, want := range []string{"hold-down", "probe", "backoff"} {
		if !kinds[want] {
			t.Errorf("trace missing %q event", want)
		}
	}
}

func TestHoldDownProbeReadmitsRecoveredServer(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetAddrDown(rootV4, true)
	tp.net.SetAddrDown(root2V4, true)
	r := tp.resolver(t, RootModeHints)
	for i := 0; i < 3; i++ {
		resolveFail(t, r, "www.example.com.")
	}
	if held, _ := r.HealthCounts(); held != 2 {
		t.Fatalf("held = %d, want 2", held)
	}

	// The servers recover; once the hold-down lapses a probe re-admits
	// them and resolution works again.
	tp.net.SetAddrDown(rootV4, false)
	tp.net.SetAddrDown(root2V4, false)
	tp.net.Advance(10 * time.Minute)
	res, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("post-recovery resolution failed: %v", err)
	}
	if res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("rcode = %v", res.Rcode)
	}
	if r.Stats().Probes == 0 {
		t.Error("recovery did not go through a probe")
	}
	if held, backing := r.HealthCounts(); held != 0 || backing != 0 {
		t.Errorf("health not reset after success: held=%d backing=%d", held, backing)
	}
}

func TestFailedProbeDoublesHoldDown(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetAddrDown(rootV4, true)
	tp.net.SetAddrDown(root2V4, true)
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.HoldDown = 30 * time.Second
	})
	for i := 0; i < 3; i++ {
		resolveFail(t, r, "www.example.com.")
	}
	// Let the first hold-down lapse; the probe fails (still down), so the
	// breaker re-trips for a doubled period.
	tp.net.Advance(time.Minute)
	resolveFail(t, r, "www.example.com.")
	r.mu.Lock()
	h := r.health[rootV4]
	var period time.Duration
	if h != nil {
		period = h.holdPeriod
	}
	r.mu.Unlock()
	if h == nil {
		// The force-probe may have picked the other root; check it instead.
		r.mu.Lock()
		if h2 := r.health[root2V4]; h2 != nil {
			period = h2.holdPeriod
		}
		r.mu.Unlock()
	}
	if period < 60*time.Second {
		t.Errorf("hold period after failed probe = %v, want >= 60s", period)
	}
}

func TestRetryBudgetStopsResolution(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetLossRate(1.0)
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.RetryBudget = 2
		c.MaxQueries = 64
	})
	err := resolveFail(t, r, "www.example.com.")
	if !errors.Is(err, ErrRetryBudget) {
		t.Errorf("err = %v, want ErrRetryBudget", err)
	}
	st := r.Stats()
	if st.TotalQueries != 2 {
		t.Errorf("TotalQueries = %d, want exactly the 2 budgeted attempts", st.TotalQueries)
	}
	if st.RetryBudgetStops != 1 {
		t.Errorf("RetryBudgetStops = %d, want 1", st.RetryBudgetStops)
	}
}

func TestBackoffDemotesFlakyServer(t *testing.T) {
	tp := newTopo(t)
	// Root a answers SERVFAIL (lame), root b is healthy: after the first
	// failure, a is in backoff and b is preferred, before any hold-down.
	in := faults.NewInjector(1)
	in.Add(faults.Rule{Target: faults.Target{Addr: rootV4}, Kind: faults.ServFail})
	tp.net.SetFaultPolicy(in)
	r := tp.resolver(t, RootModeHints)

	if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, backing := r.HealthCounts(); backing != 1 {
		t.Errorf("backing = %d, want 1 (the lame root)", backing)
	}
	if st := r.Stats(); st.LameResponses == 0 {
		t.Error("lame root answer not counted")
	}
}

func TestHealthDisabled(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetAddrDown(rootV4, true)
	tp.net.SetAddrDown(root2V4, true)
	r := tp.resolver(t, RootModeHints, func(c *Config) {
		c.HoldDownAfter = -1
	})
	for i := 0; i < 5; i++ {
		resolveFail(t, r, "www.example.com.")
	}
	st := r.Stats()
	if st.HoldDowns != 0 || st.Probes != 0 || st.HeldDownSkips != 0 {
		t.Errorf("health tracking ran while disabled: %+v", st)
	}
	if held, backing := r.HealthCounts(); held != 0 || backing != 0 {
		t.Errorf("health state accumulated while disabled: held=%d backing=%d", held, backing)
	}
}

func TestHealthMetricsExposed(t *testing.T) {
	tp := newTopo(t)
	tp.net.SetAddrDown(rootV4, true)
	tp.net.SetAddrDown(root2V4, true)
	r := tp.resolver(t, RootModeHints)
	for i := 0; i < 3; i++ {
		resolveFail(t, r, "www.example.com.")
	}
	reg := obs.NewRegistry()
	r.Collect(reg)
	got := map[string]float64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	if got["rootless_resolver_held_down_servers"] != 2 {
		t.Errorf("held_down_servers gauge = %v, want 2", got["rootless_resolver_held_down_servers"])
	}
	for _, name := range []string{
		"rootless_resolver_hold_downs_total",
		"rootless_resolver_probes_total",
		"rootless_resolver_held_down_skips_total",
		"rootless_resolver_lame_responses_total",
		"rootless_resolver_retry_budget_stops_total",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("scrape missing %s", name)
		}
	}
}

// Guard the netsim import: the fault injector must satisfy the network's
// policy interface from outside the netsim package.
var _ netsim.FaultPolicy = (*faults.Injector)(nil)
