package resolver

// DNSSEC validation wiring. The validator package holds the chain state
// and judges responses; this file drives it from the resolution loop:
// fetching DNSKEY RRsets when a secure zone's keys are missing, feeding
// validated NSEC ranges to the aggressive cache, and counting outcomes.

import (
	"fmt"

	"rootless/internal/dnssec/validator"
	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// validateResponse judges one upstream response from cur.zone's servers.
// It may issue a DNSKEY sub-query (sharing the resolution's budget,
// retry allowance, admission token, and trace) to establish the zone's
// keys first. The returned error explains a Bogus outcome.
func (r *Resolver) validateResponse(cur nsSet, qname dnswire.Name, qtype dnswire.Type, resp *dnswire.Message, res *Result, budget, retries *int, tr *obs.Trace, tok *gateToken) (validator.Outcome, error) {
	v := r.validator
	zone := cur.zone
	sentName, sentType := qname, qtype
	if r.cfg.QNameMinimisation {
		sentName, sentType = minimise(zone, qname, qtype)
	}

	// A signed zone's data cannot be judged without its keys.
	if v.ZoneStatus(zone) == validator.ChainSecure && !v.HasKeys(zone) {
		if sentName == zone && sentType == dnswire.TypeDNSKEY {
			// This response IS the DNSKEY answer (a client asked for it):
			// chain it directly rather than re-fetching.
			if err := v.ValidateKeys(zone, resp.Answers); err != nil {
				return r.countOutcome(validator.Bogus, zone, tr, err)
			}
		} else if err := r.fetchKeys(cur, res, budget, retries, tr, tok); err != nil {
			// No chain, no judgement: fail closed. A transient fetch
			// failure is indistinguishable from a stripped DNSKEY here.
			return r.countOutcome(validator.Bogus, zone, tr, err)
		}
	}

	vres := v.Validate(zone, sentName, sentType, resp)
	if r.cfg.NSECAggressive {
		// Every independently-verified denial range becomes ammunition
		// for RFC 8198 synthesis, whatever the overall verdict.
		for _, n := range vres.NSECs {
			r.cache.PutValidatedNSEC(n.Zone, n.Owner, n.NSEC, n.TTL)
		}
	}
	return r.countOutcome(vres.Outcome, zone, tr, vres.Err)
}

// fetchKeys issues the DNSKEY sub-query to the zone's servers and chains
// the answer to the trust anchor via the validator.
func (r *Resolver) fetchKeys(cur nsSet, res *Result, budget, retries *int, tr *obs.Trace, tok *gateToken) error {
	r.count(func(s *Stats) { s.DNSKEYFetches++ })
	tr.Eventf("dnskey", "fetching %s DNSKEY to build the chain", cur.zone)
	resp, err := r.queryZoneServers(cur, cur.zone, dnswire.TypeDNSKEY, res, budget, retries, tr, tok)
	if err != nil {
		return fmt.Errorf("DNSKEY fetch for %s: %w", cur.zone, err)
	}
	return r.validator.ValidateKeys(cur.zone, resp.Answers)
}

// countOutcome tallies a validation verdict and emits the /tracez
// `bogus` event for failed ones.
func (r *Resolver) countOutcome(o validator.Outcome, zone dnswire.Name, tr *obs.Trace, cause error) (validator.Outcome, error) {
	switch o {
	case validator.Secure:
		r.count(func(s *Stats) { s.SecureAnswers++ })
	case validator.Insecure:
		r.count(func(s *Stats) { s.InsecureAnswers++ })
	case validator.Bogus:
		r.count(func(s *Stats) { s.BogusAnswers++ })
		tr.Eventf("bogus", "zone=%s: %v", zone, cause)
	default:
		r.count(func(s *Stats) { s.IndeterminateAnswers++ })
	}
	return o, cause
}
