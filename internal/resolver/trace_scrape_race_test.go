package resolver

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// TestTraceScrapeRace hammers the HTTP-level trace export under -race:
// resolutions write spans into the tracer ring while the admin handler
// concurrently serves /tracez (text tree), /tracez?format=json, and
// /metrics — the exact traffic a dashboard refreshing against a live
// resolverd produces. The span exporter walks finished trace trees, so
// every scrape must see either a fully finished trace or none of it;
// this is the regression test for the trace-export race.
func TestTraceScrapeRace(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeHints)
	tracer := obs.NewTracer(32, 0)
	tracer.SetEnabled(true)
	r.SetTracer(tracer)
	reg := obs.NewRegistry()
	r.Instrument(reg)
	tracer.InstrumentAttribution(reg)
	h := (&obs.Admin{Registry: reg, Tracer: tracer}).Handler()

	names := []dnswire.Name{
		"www.example.com.", "alias.example.com.", "text.example.com.",
		"deep.sub.example.com.", "nope.example.com.", "example.com.",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = r.Resolve(names[(w+i)%len(names)], dnswire.TypeA)
			}
		}(w)
	}

	paths := []string{"/tracez?format=json", "/tracez", "/metrics"}
	for i := 0; i < 200; i++ {
		path := paths[i%len(paths)]
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d: GET %s -> %d", i, path, rec.Code)
		}
		if path == "/metrics" && !strings.Contains(rec.Body.String(), "rootless_trace_phase_seconds") {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d: /metrics missing attribution histograms", i)
		}
	}
	close(stop)
	wg.Wait()

	if tracer.Seen() == 0 {
		t.Fatal("tracer saw no resolutions")
	}
}
