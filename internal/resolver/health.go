package resolver

import (
	"net/netip"
	"time"
)

// Per-server health defaults. A server that keeps failing is first
// deprioritised with a decorrelated-jitter backoff, then — after
// HoldDownAfter consecutive failures — held down entirely: skipped
// across resolutions until the hold-down expires, at which point one
// attempt is re-admitted as a probe (a half-open circuit breaker). Each
// failed probe doubles the hold period up to maxHoldDownFactor× the base.
const (
	defaultHoldDownAfter = 3
	defaultHoldDown      = 30 * time.Second
	maxHoldDownFactor    = 16
	defaultBackoffBase   = 500 * time.Millisecond
	defaultBackoffCap    = 30 * time.Second
	defaultRetryBudget   = 16
)

// serverHealth is the per-server failure state, guarded by Resolver.mu.
type serverHealth struct {
	fails        int           // consecutive failures (timeouts + lame)
	backoffDelay time.Duration // last decorrelated-jitter delay drawn
	backoffUntil time.Time
	holdPeriod   time.Duration // current breaker period; doubles per re-trip
	heldUntil    time.Time
}

func (r *Resolver) healthEnabled() bool { return r.cfg.HoldDownAfter >= 0 }

func (r *Resolver) holdDownThreshold() int {
	if r.cfg.HoldDownAfter > 0 {
		return r.cfg.HoldDownAfter
	}
	return defaultHoldDownAfter
}

// planAttempts filters and reorders SRTT-sorted candidates by health:
// healthy servers first, backing-off servers demoted to the end, held-down
// servers skipped. probes marks servers whose hold-down just expired —
// their next attempt is the breaker's half-open probe. If every server is
// held, the one expiring soonest is force-probed rather than failing the
// resolution without a single packet.
func (r *Resolver) planAttempts(addrs []netip.Addr, now time.Time) (candidates []netip.Addr, held int, probes map[netip.Addr]bool) {
	if !r.healthEnabled() {
		return addrs, 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.health) == 0 {
		return addrs, 0, nil
	}
	var ready, backing, heldAddrs []netip.Addr
	for _, a := range addrs {
		h := r.health[a]
		switch {
		case h == nil:
			ready = append(ready, a)
		case now.Before(h.heldUntil):
			heldAddrs = append(heldAddrs, a)
		case !h.heldUntil.IsZero():
			if probes == nil {
				probes = make(map[netip.Addr]bool)
			}
			probes[a] = true
			ready = append(ready, a)
		case now.Before(h.backoffUntil):
			backing = append(backing, a)
		default:
			ready = append(ready, a)
		}
	}
	if len(ready)+len(backing) == 0 && len(heldAddrs) > 0 {
		soonest := heldAddrs[0]
		for _, a := range heldAddrs[1:] {
			if r.health[a].heldUntil.Before(r.health[soonest].heldUntil) {
				soonest = a
			}
		}
		if probes == nil {
			probes = make(map[netip.Addr]bool)
		}
		probes[soonest] = true
		return []netip.Addr{soonest}, len(heldAddrs) - 1, probes
	}
	return append(ready, backing...), len(heldAddrs), probes
}

// noteFailure records a failed attempt against addr: it advances the
// server's decorrelated-jitter backoff (delay = min(cap, rand[base,
// 3·prev])) and, at the hold-down threshold, trips the circuit breaker.
// It returns the new backoff delay, and the hold period iff this failure
// tripped (or re-tripped) the breaker.
func (r *Resolver) noteFailure(addr netip.Addr, now time.Time) (backoff, hold time.Duration) {
	if !r.healthEnabled() {
		return 0, 0
	}
	base, ceil := r.cfg.BackoffBase, r.cfg.BackoffCap
	if base <= 0 {
		base = defaultBackoffBase
	}
	if ceil <= 0 {
		ceil = defaultBackoffCap
	}
	holdBase := r.cfg.HoldDown
	if holdBase <= 0 {
		holdBase = defaultHoldDown
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.health[addr]
	if h == nil {
		h = &serverHealth{}
		r.health[addr] = h
	}
	h.fails++
	prev := h.backoffDelay
	if prev < base {
		prev = base
	}
	d := base
	if span := 3*prev - base; span > 0 {
		d = base + time.Duration(r.rng.Int63n(int64(span)+1))
	}
	if d > ceil {
		d = ceil
	}
	h.backoffDelay = d
	h.backoffUntil = now.Add(d)
	switch threshold := r.holdDownThreshold(); {
	case h.fails < threshold:
		return d, 0
	case h.fails == threshold:
		h.holdPeriod = holdBase
	default:
		// A failed re-admission probe: back off harder.
		h.holdPeriod *= 2
		if lim := holdBase * maxHoldDownFactor; h.holdPeriod > lim {
			h.holdPeriod = lim
		}
	}
	h.heldUntil = now.Add(h.holdPeriod)
	return d, h.holdPeriod
}

// noteSuccess clears a server's failure state — one good answer closes
// the breaker and resets the backoff.
func (r *Resolver) noteSuccess(addr netip.Addr) {
	if !r.healthEnabled() {
		return
	}
	r.mu.Lock()
	delete(r.health, addr)
	r.mu.Unlock()
}

// HealthCounts reports how many servers are currently held down and how
// many are merely backing off — the health-state gauges /metrics exposes.
func (r *Resolver) HealthCounts() (held, backing int) {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.health {
		switch {
		case now.Before(h.heldUntil):
			held++
		case now.Before(h.backoffUntil):
			backing++
		}
	}
	return held, backing
}

// retryBudget returns the per-resolution failed-attempt allowance.
func (r *Resolver) retryBudget() int {
	switch {
	case r.cfg.RetryBudget > 0:
		return r.cfg.RetryBudget
	case r.cfg.RetryBudget < 0:
		return int(^uint(0) >> 1) // disabled: effectively unbounded
	}
	return defaultRetryBudget
}
