package resolver

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/overload"
)

// Server exposes a Resolver as a recursive DNS service over UDP — what a
// stub resolver (or dig) talks to.
type Server struct {
	resolver *Resolver
	// limiter rate-limits stub clients before any resolution work is
	// spawned (nil = unlimited). Install with SetClientLimit before
	// serving.
	limiter *overload.ClientLimiter
}

// NewServer wraps a resolver.
func NewServer(r *Resolver) *Server { return &Server{resolver: r} }

// SetClientLimit token-buckets each stub client at qps queries/sec with
// the given burst (<= 0 defaults to qps). Over-rate queries are dropped
// before a resolution goroutine is spawned, so an abusive stub cannot
// monopolise the resolver. qps <= 0 disables the limit.
func (s *Server) SetClientLimit(qps, burst float64) {
	s.limiter = overload.NewClientLimiter(qps, burst, 0)
}

// ServeUDP answers stub queries on conn until ctx ends or the connection
// closes. Each query runs its own goroutine: recursion can take many
// round trips and must not head-of-line block the socket.
func (s *Server) ServeUDP(ctx context.Context, conn net.PacketConn) error {
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.limiter != nil && !s.limiter.Allow(clientAddr(addr), time.Now()) {
			continue // over-rate stub: drop before spending any work
		}
		if an := s.resolver.traffic; an != nil {
			an.ObserveClient(clientAddr(addr))
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		go func(pkt []byte, addr net.Addr) {
			var q dnswire.Message
			if err := q.Unpack(pkt); err != nil {
				return
			}
			resp := s.handle(&q)
			wire, err := resp.Pack()
			if err != nil {
				return
			}
			_, _ = conn.WriteTo(wire, addr)
		}(pkt, addr)
	}
}

// clientAddr extracts the client IP from a packet source address.
func clientAddr(a net.Addr) netip.Addr {
	if ap, err := netip.ParseAddrPort(a.String()); err == nil {
		return ap.Addr()
	}
	return netip.Addr{}
}

func (s *Server) handle(q *dnswire.Message) *dnswire.Message {
	resp := &dnswire.Message{
		ID:                 q.ID,
		Response:           true,
		Opcode:             q.Opcode,
		RecursionDesired:   q.RecursionDesired,
		RecursionAvailable: true,
		Questions:          q.Questions,
	}
	if q.Opcode != dnswire.OpcodeQuery {
		resp.Rcode = dnswire.RcodeNotImpl
		return resp
	}
	if len(q.Questions) != 1 {
		resp.Rcode = dnswire.RcodeFormat
		return resp
	}
	question := q.Questions[0]
	if question.Class != dnswire.ClassINET {
		resp.Rcode = dnswire.RcodeRefused
		return resp
	}
	res, err := s.resolver.Resolve(question.Name, question.Type)
	if err != nil {
		resp.Rcode = dnswire.RcodeServFail
		return resp
	}
	resp.Rcode = res.Rcode
	resp.Answers = res.Answers
	// AD means every record in the answer was validated Secure (RFC 4035
	// §3.2.3) — never set on unvalidated or merely-cached data.
	resp.AuthenticData = res.AuthData
	return resp
}
