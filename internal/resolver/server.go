package resolver

import (
	"context"
	"net"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/overload"
	"rootless/internal/udpengine"
)

// Server exposes a Resolver as a recursive DNS service over UDP — what a
// stub resolver (or dig) talks to.
type Server struct {
	resolver *Resolver
	// limiter rate-limits stub clients before any resolution work is
	// spawned (nil = unlimited). Install with SetClientLimit before
	// serving.
	limiter *overload.ClientLimiter
}

// NewServer wraps a resolver.
func NewServer(r *Resolver) *Server { return &Server{resolver: r} }

// SetClientLimit token-buckets each stub client at qps queries/sec with
// the given burst (<= 0 defaults to qps). Over-rate queries are dropped
// before a resolution goroutine is spawned, so an abusive stub cannot
// monopolise the resolver. qps <= 0 disables the limit.
func (s *Server) SetClientLimit(qps, burst float64) {
	s.limiter = overload.NewClientLimiter(qps, burst, 0)
}

// DatagramHandler adapts the server to the udpengine handler contract.
// Client limiting and traffic observation run synchronously on the
// worker (both are cheap and must see every arrival); the resolution
// itself runs in its own goroutine, because recursion can take many
// round trips and must not head-of-line block the socket. The request
// bytes are copied before the goroutine starts — the engine reuses req
// the moment this function returns — and the late answer goes back
// through src.Reply.
func (s *Server) DatagramHandler() udpengine.Handler {
	return udpengine.HandlerFunc(func(req []byte, src udpengine.Peer, resp []byte) []byte {
		if s.limiter != nil && !s.limiter.Allow(src.Addr.Addr(), time.Now()) {
			return nil // over-rate stub: drop before spending any work
		}
		if an := s.resolver.traffic; an != nil {
			an.ObserveClient(src.Addr.Addr())
		}
		pkt := make([]byte, len(req))
		copy(pkt, req)
		src.Detach() // answered asynchronously below, not a drop
		go func() {
			var q dnswire.Message
			if err := q.Unpack(pkt); err != nil {
				return
			}
			r := s.handle(&q)
			wire, err := r.Pack()
			if err != nil {
				return
			}
			_ = src.Reply(wire)
		}()
		return nil
	})
}

// ServeUDP answers stub queries on conn until ctx ends or the connection
// closes. Single-socket compatibility path: one engine worker on the
// caller's conn; multi-core serving builds the engine directly (see
// cmd/resolverd).
func (s *Server) ServeUDP(ctx context.Context, conn net.PacketConn) error {
	eng, err := udpengine.New(udpengine.Config{
		Conns:     []net.PacketConn{conn},
		Handler:   s.DatagramHandler(),
		MaxPacket: 64 * 1024,
	})
	if err != nil {
		return err
	}
	return eng.Serve(ctx)
}

func (s *Server) handle(q *dnswire.Message) *dnswire.Message {
	resp := &dnswire.Message{
		ID:                 q.ID,
		Response:           true,
		Opcode:             q.Opcode,
		RecursionDesired:   q.RecursionDesired,
		RecursionAvailable: true,
		Questions:          q.Questions,
	}
	if q.Opcode != dnswire.OpcodeQuery {
		resp.Rcode = dnswire.RcodeNotImpl
		return resp
	}
	if len(q.Questions) != 1 {
		resp.Rcode = dnswire.RcodeFormat
		return resp
	}
	question := q.Questions[0]
	if question.Class != dnswire.ClassINET {
		resp.Rcode = dnswire.RcodeRefused
		return resp
	}
	res, err := s.resolver.Resolve(question.Name, question.Type)
	if err != nil {
		resp.Rcode = dnswire.RcodeServFail
		return resp
	}
	resp.Rcode = res.Rcode
	resp.Answers = res.Answers
	// AD means every record in the answer was validated Secure (RFC 4035
	// §3.2.3) — never set on unvalidated or merely-cached data.
	resp.AuthenticData = res.AuthData
	return resp
}
