package resolver

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
	"rootless/internal/obs/traffic"
)

// BenchmarkResolve measures a cache-warm resolution — the hot path an
// always-on tracer check would tax. The three variants document the
// acceptance bar that a disabled tracer stays within noise of no tracer
// at all (the enabled variant shows what turning it on costs).
func BenchmarkResolve(b *testing.B) {
	run := func(b *testing.B, setup func(*Resolver), opts ...func(*Config)) {
		tp := newTopo(b)
		r := tp.resolver(b, RootModeHints, opts...)
		if setup != nil {
			setup(r)
		}
		if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("NoTracer", func(b *testing.B) { run(b, nil) })
	b.Run("TracerDisabled", func(b *testing.B) {
		run(b, func(r *Resolver) { r.SetTracer(obs.NewTracer(128, 0)) })
	})
	b.Run("TracerEnabled", func(b *testing.B) {
		run(b, func(r *Resolver) {
			tr := obs.NewTracer(128, 0)
			tr.SetEnabled(true)
			r.SetTracer(tr)
		})
	})
	// The propagation variant documents what trace stamping adds on top
	// of an enabled tracer (the acceptance bar is ≤5% over TracerEnabled;
	// on the cache-warm path no upstream queries happen, so the stamp
	// branch costs only the config check).
	b.Run("TracePropagate", func(b *testing.B) {
		run(b, func(r *Resolver) {
			tr := obs.NewTracer(128, 0)
			tr.SetEnabled(true)
			r.SetTracer(tr)
		}, func(c *Config) { c.TracePropagate = true })
	})
	// The analyzer variant documents what the streaming classification
	// sketches add to a cache-warm resolution (tens of ns against ~µs).
	b.Run("TrafficAnalyzer", func(b *testing.B) {
		run(b, func(r *Resolver) {
			r.SetTraffic(traffic.NewAnalyzer(traffic.NewTLDSet([]dnswire.Name{"com.", "net."}), 32))
		})
	})
}

// BenchmarkResolveConcurrent measures the coalescing win: parallel
// goroutines repeatedly miss on the same fresh name (the name changes
// every windowSize lookups, so each window opens with a thundering herd
// of identical cache misses). With Coalesce one flight pays the upstream
// round trips and everyone else shares it; without it every concurrent
// miss resolves independently. The headline metric is
// upstream-queries/op — coalescing exists to shield upstream servers
// from thundering herds, and it cuts that number by roughly the herd
// width (≈8× here). Wall time is comparable given GOMAXPROCS > 1; on a
// single-CPU box scheduler artifacts dominate it, so trust the query
// counts.
func BenchmarkResolveConcurrent(b *testing.B) {
	run := func(b *testing.B, coalesce bool) {
		tp := newTopo(b)
		r := tp.resolver(b, RootModeHints, func(c *Config) {
			// A real 50µs per exchange keeps flights open long enough to
			// overlap — netsim alone completes in zero wall time.
			c.Transport = slowTransport{inner: tp.net.Client(locClient), delay: 50 * time.Microsecond}
			c.Coalesce = coalesce
		})
		// Warm the delegation chain so each miss costs one upstream query.
		if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
		// Everyone chases the frontier window: while its first resolution
		// is in flight the others pile onto the same name; the CAS advances
		// the frontier once a miss lands. SetParallelism keeps a real herd
		// even on a single-CPU machine (sleeps overlap).
		var window atomic.Int64
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				w := window.Load()
				name := dnswire.Name(fmt.Sprintf("h%d.example.com.", w))
				res, err := r.Resolve(name, dnswire.TypeA)
				if err != nil {
					b.Error(err)
					return
				}
				if !res.FromCache {
					window.CompareAndSwap(w, w+1)
				}
			}
		})
		b.StopTimer()
		st := r.Stats()
		b.ReportMetric(float64(st.TotalQueries)/float64(b.N), "upstream-queries/op")
		b.ReportMetric(float64(st.CoalescedResolutions)/float64(b.N), "coalesced/op")
	}
	b.Run("Coalesce", func(b *testing.B) { run(b, true) })
	b.Run("NoCoalesce", func(b *testing.B) { run(b, false) })
}
