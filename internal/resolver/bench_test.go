package resolver

import (
	"testing"

	"rootless/internal/dnswire"
	"rootless/internal/obs"
)

// BenchmarkResolve measures a cache-warm resolution — the hot path an
// always-on tracer check would tax. The three variants document the
// acceptance bar that a disabled tracer stays within noise of no tracer
// at all (the enabled variant shows what turning it on costs).
func BenchmarkResolve(b *testing.B) {
	run := func(b *testing.B, setup func(*Resolver)) {
		tp := newTopo(b)
		r := tp.resolver(b, RootModeHints)
		if setup != nil {
			setup(r)
		}
		if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Resolve("www.example.com.", dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("NoTracer", func(b *testing.B) { run(b, nil) })
	b.Run("TracerDisabled", func(b *testing.B) {
		run(b, func(r *Resolver) { r.SetTracer(obs.NewTracer(128, 0)) })
	})
	b.Run("TracerEnabled", func(b *testing.B) {
		run(b, func(r *Resolver) {
			tr := obs.NewTracer(128, 0)
			tr.SetEnabled(true)
			r.SetTracer(tr)
		})
	})
}
