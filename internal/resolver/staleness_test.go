package resolver

import (
	"testing"
	"time"

	"rootless/internal/dist"
	"rootless/internal/dnswire"
)

// TestLocalZoneStalenessStages walks the local root zone copy through the
// staged staleness state machine: fresh and aging copies answer normally,
// a stale-serve copy answers with capped TTLs so downstream caches re-ask
// soon, and an expired copy fails closed.
func TestLocalZoneStalenessStages(t *testing.T) {
	tp := newTopo(t)
	r := tp.resolver(t, RootModeLookaside, func(c *Config) {
		c.ZoneExpiry = 48 * time.Hour
		c.ZoneStaleFor = 12 * time.Hour
	})

	res, err := r.Resolve("www.example.com.", dnswire.TypeA)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("fresh resolve: rcode %v err %v", res.Rcode, err)
	}
	if f := r.ZoneFreshness(); f != dist.FreshnessFresh {
		t.Fatalf("freshness %s, want fresh", f)
	}

	// Past expiry but within the stale-serve window: the consult still
	// answers, with the referral's TTL capped (default 30 s) so the cached
	// NS set dies quickly once the copy heals.
	tp.net.Advance(49 * time.Hour) // also past the com. NS TTL (48 h)
	if f := r.ZoneFreshness(); f != dist.FreshnessStaleServe {
		t.Fatalf("freshness %s, want stale-serve", f)
	}
	res, err = r.Resolve("text.example.com.", dnswire.TypeTXT)
	if err != nil || res.Rcode != dnswire.RcodeSuccess {
		t.Fatalf("stale-serve resolve: rcode %v err %v", res.Rcode, err)
	}
	if st := r.Stats(); st.LocalStaleConsults != 1 {
		t.Fatalf("LocalStaleConsults %d, want 1", st.LocalStaleConsults)
	}
	// The capped com. referral expires within seconds, forcing the next
	// resolution under com. (outside the cached example.com. delegation)
	// back to a root consult — proof the cap reached the cache.
	tp.net.Advance(31 * time.Second)
	if _, err := r.Resolve("other.com.", dnswire.TypeA); err != nil {
		t.Fatalf("second stale-serve resolve: %v", err)
	}
	if st := r.Stats(); st.LocalStaleConsults != 2 {
		t.Fatalf("LocalStaleConsults %d, want 2 (capped referral should have expired)", st.LocalStaleConsults)
	}

	// Past expiry + stale-serve: fail closed.
	tp.net.Advance(12 * time.Hour)
	if f := r.ZoneFreshness(); f != dist.FreshnessExpired {
		t.Fatalf("freshness %s, want expired", f)
	}
	// somewhere.org. has no cached delegation, so it must start at the
	// root — and the expired copy refuses to steer it.
	res, err = r.Resolve("somewhere.org.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("expired resolve returned transport error: %v", err)
	}
	if res.Rcode != dnswire.RcodeServFail {
		t.Fatalf("expired consult rcode %v, want SERVFAIL", res.Rcode)
	}
	if st := r.Stats(); st.LocalExpiredRefusals == 0 {
		t.Fatal("LocalExpiredRefusals not counted")
	}

	// A refreshed copy (the refresher's Install callback) heals everything:
	// the next root consult serves a referral again.
	r.SetLocalZone(tp.rootZone.Clone())
	if f := r.ZoneFreshness(); f != dist.FreshnessFresh {
		t.Fatalf("freshness after SetLocalZone %s, want fresh", f)
	}
	refusals := r.Stats().LocalExpiredRefusals
	res, err = r.Resolve("absent.com.", dnswire.TypeA)
	if err != nil || res.Rcode == dnswire.RcodeServFail {
		t.Fatalf("healed resolve: rcode %v err %v", res.Rcode, err)
	}
	if st := r.Stats(); st.LocalExpiredRefusals != refusals {
		t.Fatal("healed copy still refused consults")
	}
}
