package resolver

import (
	"fmt"
	"net"
	"net/netip"
	"time"

	"rootless/internal/dnswire"
)

// UDPTransport sends queries over real UDP sockets — the production
// counterpart of the netsim transport used in experiments.
type UDPTransport struct {
	// Timeout bounds each exchange (default 3 s).
	Timeout time.Duration
	// Port is the destination port (default 53).
	Port uint16
	// PortOverrides maps specific server addresses to alternate ports —
	// e.g. a local root instance on an unprivileged port.
	PortOverrides map[netip.Addr]uint16
}

// Exchange implements Transport.
func (t *UDPTransport) Exchange(dst netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	port := t.Port
	if p, ok := t.PortOverrides[dst]; ok {
		port = p
	}
	if port == 0 {
		port = 53
	}
	start := time.Now()
	conn, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(netip.AddrPortFrom(dst, port)))
	if err != nil {
		return nil, time.Since(start), err
	}
	defer conn.Close()
	if err := conn.SetDeadline(start.Add(timeout)); err != nil {
		return nil, time.Since(start), err
	}
	wire, err := query.Pack()
	if err != nil {
		return nil, time.Since(start), err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, time.Since(start), err
	}
	buf := make([]byte, 64*1024)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, time.Since(start), fmt.Errorf("resolver: udp exchange: %w", err)
		}
		var resp dnswire.Message
		if err := resp.Unpack(buf[:n]); err != nil {
			continue // mismatched or corrupt datagram; keep waiting
		}
		if resp.ID != query.ID {
			continue
		}
		return &resp, time.Since(start), nil
	}
}
